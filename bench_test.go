// Package mlpeering_test holds the benchmark harness: one benchmark per
// table and figure of the paper (regenerating the result each
// iteration), the §4.3 ablations called out in DESIGN.md, and component
// micro-benchmarks for the substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mlpeering_test

import (
	"bytes"
	"context"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/churn"
	"mlpeering/internal/collector"
	"mlpeering/internal/core"
	"mlpeering/internal/experiments"
	"mlpeering/internal/mrt"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

func fixture(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = experiments.NewContext(topology.TestConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// --- Per-table / per-figure benchmarks -------------------------------

func BenchmarkTable2PerIXPInference(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Table2()
		if r.TotalLinks == 0 {
			b.Fatal("no links")
		}
	}
	r := c.Table2()
	b.ReportMetric(float64(r.TotalLinks), "links")
	b.ReportMetric(float64(r.MultiIXP), "multi-ixp-links")
}

func BenchmarkTable3Validation(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if r.Tested == 0 {
			b.Fatal("nothing tested")
		}
	}
	r, _ := c.Table3()
	b.ReportMetric(r.ConfirmedFrac*100, "confirmed-%")
}

func BenchmarkFig1SessionScaling(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Figure1().Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig5PrefixCCDF(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Figure5("")
		if r.Prefixes == 0 {
			b.Fatal("no prefixes")
		}
	}
	b.ReportMetric(fixtureFig5(c)*100, "multi-member-%")
}

func fixtureFig5(c *experiments.Context) float64 { return c.Figure5("").MultiMemberFrac }

func BenchmarkFig6Visibility(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Figure6()
		if r.TotalMLPLinks == 0 {
			b.Fatal("no links")
		}
	}
	r := c.Figure6()
	b.ReportMetric(r.InvisibleFrac*100, "invisible-%")
}

func BenchmarkFig7CustomerDegrees(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Figure7()
		if r.Links == 0 {
			b.Fatal("no links")
		}
	}
	r := c.Figure7()
	b.ReportMetric(r.InvolvesStubFrac*100, "involves-stub-%")
}

func BenchmarkFig8LGComparison(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9PolicyParticipation(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Figure9().Participation) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig10PresenceMatrix(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Figure10().ASes == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig11FilterBimodality(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Figure11().Means) == 0 {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(c.Figure11().BimodalFrac*100, "bimodal-%")
}

func BenchmarkFig12PeeringDensity(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Figure12().Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig13Repellers(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Figure13().TotalExcludes == 0 {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(c.Figure13().ConeFrac*100, "cone-%")
}

func BenchmarkQueryCostOptimization(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.QueryCost()
		if err != nil {
			b.Fatal(err)
		}
		if r.Optimized == 0 {
			b.Fatal("no cost")
		}
	}
	r, _ := c.QueryCost()
	b.ReportMetric(r.NaiveFactor, "naive/optimized")
}

func BenchmarkReciprocityValidation(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Reciprocity("")
		if err != nil {
			b.Fatal(err)
		}
		if r.Violations != 0 {
			b.Fatal("violations")
		}
	}
}

func BenchmarkGlobalEstimate(b *testing.B) {
	c := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.GlobalEstimate().GlobalLinks == 0 {
			b.Fatal("empty")
		}
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------

func activeVariant(b *testing.B, mutate func(*core.ActiveConfig)) int {
	c := fixture(b)
	cfg := core.DefaultActiveConfig()
	mutate(&cfg)
	hints := make(map[bgp.ASN][]bgp.Prefix)
	for p, origin := range c.Run.Passive.PrefixOrigins {
		hints[origin] = append(hints[origin], p)
	}
	r, err := core.RunActive(context.Background(), c.Run.Dict, c.World.LGEndpoints(0),
		c.Run.Passive.Obs, hints, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r.TotalQueries()
}

func BenchmarkAblationPrefixSelection(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		with = activeVariant(b, func(c *core.ActiveConfig) {})
		without = activeVariant(b, func(c *core.ActiveConfig) { c.SortByMultiplicity = false })
	}
	b.ReportMetric(float64(with), "queries-sorted")
	b.ReportMetric(float64(without), "queries-unsorted")
}

func BenchmarkAblationPassiveExclusion(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		with = activeVariant(b, func(c *core.ActiveConfig) {})
		without = activeVariant(b, func(c *core.ActiveConfig) { c.SkipPassiveCovered = false })
	}
	b.ReportMetric(float64(with), "queries-eq2")
	b.ReportMetric(float64(without), "queries-eq1")
}

func BenchmarkAblationSamplingRate(b *testing.B) {
	var q10, q100 int
	for i := 0; i < b.N; i++ {
		q10 = activeVariant(b, func(c *core.ActiveConfig) {})
		q100 = activeVariant(b, func(c *core.ActiveConfig) { c.SamplePct = 1.0; c.MaxPrefixesPerMember = 1 << 30 })
	}
	b.ReportMetric(float64(q10), "queries-10pct")
	b.ReportMetric(float64(q100), "queries-100pct")
}

func BenchmarkAblationReciprocity(b *testing.B) {
	// Reciprocity (AND) versus a permissive OR rule: how much recall the
	// conservative rule costs and how much precision it buys.
	c := fixture(b)
	truth := c.World.Topo.AllGroundTruthMLPLinks()
	var andTP, andFP, orTP, orFP int
	for i := 0; i < b.N; i++ {
		andTP, andFP, orTP, orFP = 0, 0, 0, 0
		// AND rule: the shipped result.
		for link := range c.Run.Result.Links {
			if truth[link] {
				andTP++
			} else {
				andFP++
			}
		}
		// OR rule: link when either side allows the other.
		seen := make(map[topology.LinkKey]bool)
		for name, x := range c.Run.Result.PerIXP {
			_ = name
			covered := x.CoveredMembers()
			for i2, a := range covered {
				fa := x.Filters[a]
				for _, bb := range covered[i2+1:] {
					fb := x.Filters[bb]
					if fa.Allows(bb) || fb.Allows(a) {
						seen[topology.MakeLinkKey(a, bb)] = true
					}
				}
			}
		}
		for link := range seen {
			if truth[link] {
				orTP++
			} else {
				orFP++
			}
		}
	}
	b.ReportMetric(float64(andTP)/float64(andTP+andFP)*100, "AND-precision-%")
	b.ReportMetric(float64(orTP)/float64(orTP+orFP)*100, "OR-precision-%")
	b.ReportMetric(float64(orTP-andTP), "OR-extra-true-links")
}

// --- Component micro-benchmarks ---------------------------------------

func benchUpdate() *bgp.Update {
	return &bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.NewASPath(11666, 3356, 6695, 196615, 8359),
			NextHop: netip.MustParseAddr("80.81.192.1"),
			Communities: bgp.Communities{
				bgp.MakeCommunity(6695, 6695), bgp.MakeCommunity(0, 5410),
				bgp.MakeCommunity(0, 8732), bgp.MakeCommunity(3356, 70),
			},
		},
		NLRI: []bgp.Prefix{bgp.MustPrefix("193.0.0.0/21"), bgp.MustPrefix("193.0.22.0/23")},
	}
}

func BenchmarkBGPUpdateEncode(b *testing.B) {
	u := benchUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Encode(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGPUpdateDecode(b *testing.B) {
	wire, err := bgp.Encode(benchUpdate())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Decode(wire, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRTRIBDumpWriteRead(b *testing.B) {
	c := fixture(b)
	col := collector.New("bench", c.World.Engine, nil, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := col.WriteRIB(&buf, time.Unix(1368000000, 0)); err != nil {
			b.Fatal(err)
		}
		dump, err := mrt.ReadDump(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(dump.RIBs) == 0 {
			b.Fatal("empty dump")
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkTopologyGenerate(b *testing.B) {
	// The world generator, named the next bottleneck after the flat
	// propagation engine: test scale (~0.12x paper).
	cfg := topology.TestConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, err := topology.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(topo.Order) == 0 {
			b.Fatal("empty world")
		}
	}
}

func BenchmarkTopologyGenerateScaled(b *testing.B) {
	// The 10-100x scaling target's unit of account: the scaled-world
	// scenario at Scale 10 (33 IXPs, ~16k ASes, ~6.3k IXP members),
	// sequential versus the per-IXP worker pool. Both produce the
	// bit-identical world (TestParallelGenerationBitIdentical).
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := topology.DefaultConfig()
			cfg.Scenario = "scaled-world"
			cfg.Scale = 10
			cfg.Workers = bc.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topo, err := topology.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(topo.Order) == 0 {
					b.Fatal("empty world")
				}
			}
		})
	}
}

func BenchmarkTopologyGeneratePaperScale(b *testing.B) {
	// Paper scale (~4.7k ASes, 1.7k IXP members), the pre-PR-3 unit of
	// account, kept for perf-log continuity.
	cfg := topology.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, err := topology.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(topo.Order) == 0 {
			b.Fatal("empty world")
		}
	}
}

func BenchmarkPassiveInference(b *testing.B) {
	// RunPassive over the fixture's archives: exercises the interned
	// path store (dedup, hygiene-per-distinct-path, columnar records).
	c := fixture(b)
	dict, err := c.World.Dictionary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunPassive(c.World.Dumps, c.World.Updates, dict)
		if err != nil {
			b.Fatal(err)
		}
		if res.Paths.Len() == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkPropagationTree(b *testing.B) {
	c := fixture(b)
	topo := c.World.Topo
	engine := propagate.NewEngine(topo, 1) // cache size 1: recompute each time
	dests := topo.Order
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := engine.Tree(dests[i%len(dests)])
		if tr == nil {
			b.Fatal("nil tree")
		}
	}
}

func BenchmarkAvailableRoutes(b *testing.B) {
	// The all-paths LG enumeration, plain vs arena-backed: the arena
	// variant is what ASBackend.Lookup drives.
	c := fixture(b)
	topo := c.World.Topo
	engine := c.World.Engine
	vantages := topo.ValidationLGs
	dests := topo.Order
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := engine.Tree(dests[i%len(dests)])
			_ = tr.AvailableRoutesFrom(vantages[i%len(vantages)].ASN)
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		var arena propagate.RouteArena
		var buf []*propagate.VantageRoute
		for i := 0; i < b.N; i++ {
			tr := engine.Tree(dests[i%len(dests)])
			arena.Reset()
			buf = tr.AvailableRoutesFromArena(vantages[i%len(vantages)].ASN, &arena, buf)
		}
	})
}

func BenchmarkChurnEpoch(b *testing.B) {
	// One route-churn epoch over scaled-world@Scale-10 (33 IXPs, ~16k
	// ASes): mutate the world, then serve a fixed warm destination
	// sample. "incremental" patches the engine with Engine.Apply and
	// recomputes only invalidated trees; "full-rebuild" discards the
	// engine and rebuilds with NewEngine every epoch — the baseline the
	// incremental path must beat.
	cfg := topology.DefaultConfig()
	cfg.Scenario = "scaled-world"
	cfg.Scale = 10
	for _, bc := range []struct {
		name        string
		incremental bool
	}{
		{"incremental", true},
		{"full-rebuild", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			topo, err := topology.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng := propagate.NewEngine(topo, len(topo.Order))
			var warm []bgp.ASN
			for i := 0; i < len(topo.Order); i += 32 {
				warm = append(warm, topo.Order[i])
			}
			for _, d := range warm {
				eng.Tree(d)
			}
			runner := churn.NewRunner(eng, churn.DefaultConfig(20130501))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := runner.NextDelta()
				if bc.incremental {
					if _, err := eng.Apply(delta); err != nil {
						b.Fatal(err)
					}
				} else {
					if err := delta.ApplyToTopology(topo); err != nil {
						b.Fatal(err)
					}
					eng = propagate.NewEngine(topo, len(topo.Order))
				}
				for _, d := range warm {
					if eng.Tree(d) == nil {
						b.Fatal("nil tree")
					}
				}
			}
		})
	}
}

func BenchmarkWindowedInference(b *testing.B) {
	// Windowed inference under churn over scaled-world@Scale-10 (33
	// IXPs, ~16k ASes) with minute-scale windows: the delta-maintained
	// incremental observation store versus the re-mine-per-window
	// fallback, replaying the identical pre-built announce/withdraw
	// trace (both modes produce byte-identical meshes; the equivalence
	// tests pin that). The shared trace build is setup cost, outside
	// the timer.
	cfg := topology.DefaultConfig()
	cfg.Scenario = "scaled-world"
	cfg.Scale = 10
	ccfg := churn.DefaultConfig(20130501)
	ccfg.Epochs = 6
	ccfg.Interval = time.Minute
	ct, err := experiments.BuildChurnTrace(cfg, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		mode core.WindowsMode
	}{
		{"incremental", core.WindowsIncremental},
		{"remine", core.WindowsRemine},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Workers=0 resolves to GOMAXPROCS, so `go test -cpu=1,4,8`
				// produces the close-time scaling table directly.
				res, err := ct.Windows(bc.mode, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Windows) != ccfg.Epochs {
					b.Fatalf("ran %d windows, want %d", len(res.Windows), ccfg.Epochs)
				}
			}
			b.ReportMetric(float64(ccfg.Epochs), "windows/op")
		})
	}
}

func BenchmarkWindowedInferenceShort(b *testing.B) {
	// The bench-regression variant of BenchmarkWindowedInference: the
	// same incremental windowed replay at test scale, fast enough to
	// sample repeatedly in CI.
	ccfg := churn.DefaultConfig(20130501)
	ccfg.Epochs = 4
	ccfg.Interval = time.Minute
	ct, err := experiments.BuildChurnTrace(topology.TestConfig(), ccfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ct.Windows(core.WindowsIncremental, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Windows) != ccfg.Epochs {
			b.Fatalf("ran %d windows, want %d", len(res.Windows), ccfg.Epochs)
		}
	}
}

// horizonEnv reads an integer knob for the long-horizon benchmark.
func horizonEnv(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func BenchmarkLongHorizonWindows(b *testing.B) {
	// Long-horizon streaming replay: hours of simulated trace under a
	// flap-heavy churn schedule, windows consumed through the Stream
	// callback so no per-window Result is ever materialized. The
	// benchmark reports mean close time for the first and second half of
	// the horizon — O(churn) closes mean the two stay comparable as the
	// replay ages — and asserts a ceiling on live-heap GROWTH between
	// the first and last window close. Both samples see the pre-built
	// trace and the fully-populated miner, so the difference isolates
	// what the replay accumulates: with the dead-shape sweep it stays
	// near zero on any horizon. Knobs: MLP_HORIZON_SCALE,
	// MLP_HORIZON_EPOCHS, MLP_HORIZON_HEAP_MB (growth ceiling).
	cfg := topology.DefaultConfig()
	cfg.Scenario = "scaled-world"
	cfg.Scale = float64(horizonEnv("MLP_HORIZON_SCALE", 5))
	ccfg := churn.DefaultConfig(20130501)
	ccfg.Epochs = horizonEnv("MLP_HORIZON_EPOCHS", 48)
	ccfg.Interval = 5 * time.Minute
	ccfg.PeerFlaps *= 5
	ccfg.PrefixMoves *= 3
	heapMB := horizonEnv("MLP_HORIZON_HEAP_MB", 512)

	ct, err := experiments.BuildChurnTrace(cfg, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var firstHalf, secondHalf float64
	var msFirst, msLast runtime.MemStats
	for i := 0; i < b.N; i++ {
		var closes []time.Duration
		err := ct.StreamWindows(core.WindowsIncremental, 0, 0, func(pw *core.PassiveWindow) {
			if pw.Result != nil {
				b.Fatal("streaming window materialized a Result")
			}
			closes = append(closes, pw.CloseTime)
			// Sample the heap inside the callback, while the miner and
			// its maintained mesh/observation state are still
			// reachable: after StreamWindows returns they are garbage
			// and the samples would only reflect the trace.
			if len(closes) == 1 {
				b.StopTimer()
				runtime.GC()
				runtime.ReadMemStats(&msFirst)
				b.StartTimer()
			}
			if len(closes) == ccfg.Epochs {
				b.StopTimer()
				runtime.GC()
				runtime.ReadMemStats(&msLast)
				b.StartTimer()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(closes) != ccfg.Epochs {
			b.Fatalf("streamed %d windows, want %d", len(closes), ccfg.Epochs)
		}
		mean := func(ds []time.Duration) float64 {
			var sum time.Duration
			for _, d := range ds {
				sum += d
			}
			return float64(sum.Milliseconds()) / float64(len(ds))
		}
		firstHalf = mean(closes[:len(closes)/2])
		secondHalf = mean(closes[len(closes)/2:])
	}
	b.StopTimer()
	b.ReportMetric(float64(ccfg.Epochs), "windows/op")
	b.ReportMetric(firstHalf, "first-half-close-ms")
	b.ReportMetric(secondHalf, "second-half-close-ms")

	heap := float64(msLast.HeapAlloc) / (1 << 20)
	growth := heap - float64(msFirst.HeapAlloc)/(1<<20)
	b.ReportMetric(heap, "heap-MB")
	b.ReportMetric(growth, "heap-growth-MB")
	if growth > float64(heapMB) {
		b.Fatalf("live heap grew %.0f MB between first and last window close (ceiling %d MB)", growth, heapMB)
	}
}

func BenchmarkFullPipeline(b *testing.B) {
	// End-to-end: world generation through link inference. Expensive;
	// run explicitly with -bench=FullPipeline -benchtime=1x for wall
	// numbers.
	for i := 0; i < b.N; i++ {
		w, err := pipeline.BuildWorld(topology.TestConfig())
		if err != nil {
			b.Fatal(err)
		}
		run, err := w.RunInference(context.Background(), core.DefaultActiveConfig())
		if err != nil {
			b.Fatal(err)
		}
		if run.Result.TotalLinks() == 0 {
			b.Fatal("no links")
		}
		w.Close()
	}
}
