// Passive mode: the §4.2 workflow over MRT archives on disk. The
// example writes collector archives the way Route Views / RIPE RIS
// publish them, then runs ONLY the passive half of the pipeline over
// the files — no looking-glass queries at all.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mlpeering/internal/collector"
	"mlpeering/internal/core"
	"mlpeering/internal/irr"
	"mlpeering/internal/mrt"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := topology.TestConfig()
	topo, err := topology.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine := propagate.NewEngine(topo, 0)

	// 1. Archive the collector view to disk (TABLE_DUMP_V2 + BGP4MP).
	dir, err := os.MkdirTemp("", "mlp-passive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	col := collector.New("rrc00", engine, nil, 4)
	ts := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	ribPath := filepath.Join(dir, "bview.20130501.mrt")
	updPath := filepath.Join(dir, "updates.20130501.mrt")
	if err := col.WriteRIBFile(ribPath, ts); err != nil {
		log.Fatal(err)
	}
	if err := col.WriteUpdatesFile(updPath, ts, collector.UpdateOptions{
		Churn: 100, TransientPaths: 10, PoisonedPaths: 5, BogonPaths: 5, Seed: 7,
	}); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(ribPath)
	fmt.Printf("archived RIB dump: %s (%d bytes)\n", ribPath, fi.Size())

	// 2. Read the archives back, exactly as a downloader would.
	dump, err := mrt.ReadDumpFile(ribPath)
	if err != nil {
		log.Fatal(err)
	}
	updates, err := mrt.ReadUpdatesFile(updPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d RIB records from %d collector peers, %d updates\n",
		len(dump.RIBs), len(dump.Index.Peers), len(updates))

	// 3. Build the dictionary from IXP documentation and the IRR.
	reg := irr.Build(topo, cfg.IRRRegistrationFrac, cfg.Seed+1)
	var sites []core.WebsiteData
	for _, info := range topo.IXPs {
		s := core.WebsiteData{Name: info.Name, Scheme: info.Scheme, PublishesMemberList: info.PublishesMemberList}
		if info.PublishesMemberList {
			s.PublishedRSMembers = info.SortedRSMembers()
		}
		sites = append(sites, s)
	}
	dict, err := core.BuildDictionary(sites, reg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Passive inference.
	passive, err := core.RunPassive([]*mrt.Dump{dump}, updates, dict)
	if err != nil {
		log.Fatal(err)
	}
	result := core.InferLinks(dict, passive.Obs)

	fmt.Printf("hygiene filters dropped: %d bogon, %d cycle, %d transient paths\n",
		passive.Dropped.Bogon, passive.Dropped.Cycle, passive.Dropped.Transient)
	fmt.Printf("withdrawal churn: %d withdrawn prefixes (%d withdrawn-only updates)\n",
		passive.Withdrawals, passive.WithdrawnOnlyUpdates)
	fmt.Printf("passively covered setters per IXP:\n")
	for _, name := range passive.Obs.IXPs() {
		fmt.Printf("  %-10s %d setters\n", name, len(passive.Obs.Setters(name)))
	}
	fmt.Printf("links inferred from passive data alone: %d\n", result.TotalLinks())
	fmt.Println("(compare with the quickstart example: active queries multiply coverage)")
}
