// Quickstart: generate a small synthetic Internet with 13 IXPs, run the
// full multilateral-peering inference pipeline (passive MRT mining plus
// the active looking-glass survey over HTTP), and print what it found.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"mlpeering/internal/core"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)
	scenario := flag.String("scenario", "baseline", "world scenario (one of: "+
		strings.Join(topology.ScenarioNames(), ", ")+")")
	flag.Parse()

	// A small, fully deterministic world (~0.12x paper scale).
	cfg := topology.TestConfig()
	world, err := pipeline.BuildScenarioWorld(*scenario, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	fmt.Printf("world scenario: %s\n", world.Scenario())

	run, err := world.RunInference(context.Background(), core.DefaultActiveConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inferred %d multilateral peering links across %d IXPs\n",
		run.Result.TotalLinks(), len(run.Result.PerIXP))

	invisible := 0
	for link := range run.Result.Links {
		if !run.Passive.Links[link] {
			invisible++
		}
	}
	fmt.Printf("%d (%.0f%%) of them are invisible in public BGP paths\n",
		invisible, 100*float64(invisible)/float64(run.Result.TotalLinks()))
	fmt.Printf("the active survey needed %d looking-glass queries\n", run.Active.TotalQueries())

	// Show one reconstructed export policy.
	for _, name := range []string{"DE-CIX"} {
		x := run.Result.PerIXP[name]
		for _, m := range x.CoveredMembers() {
			f := x.Filters[m]
			if len(f.Peers) > 0 {
				fmt.Printf("example: at %s, AS%s announces via the RS with policy %s over %d peers\n",
					name, m, f.Mode, len(f.Peers))
				break
			}
		}
	}
}
