// Validation: reproduce the §5.1 methodology — confirm inferred links
// against third-party looking glasses using up to six geographically
// distant prefixes per link — and, because the world is synthetic,
// additionally score the inference against the generator's ground
// truth, which the paper could never observe.
package main

import (
	"context"
	"fmt"
	"log"

	"mlpeering/internal/core"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)

	world, err := pipeline.BuildWorld(topology.TestConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	run, err := world.RunInference(context.Background(), core.DefaultActiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred %d links; validating against %d looking glasses...\n",
		run.Result.TotalLinks(), len(world.Topo.ValidationLGs))

	v := world.Validator(run, 0)
	res, err := v.Validate(context.Background(), run.Result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LG validation: tested %d links, confirmed %d (%.1f%%; paper: 98.4%%)\n",
		res.Tested, res.Confirmed, 100*res.ConfirmedFraction())

	allPaths, bestPath := 0, 0
	for _, o := range res.PerLG {
		if o.Tested == 0 {
			continue
		}
		if o.AllPaths {
			allPaths++
		} else {
			bestPath++
		}
	}
	fmt.Printf("LGs used: %d all-paths, %d best-path-only\n", allPaths, bestPath)

	// Ground-truth scoring (impossible with real measurement data).
	truePositives, falsePositives := 0, 0
	truthTotal := 0
	for _, info := range world.Topo.IXPs {
		truth := world.Topo.GroundTruthMLPLinks(info.Name)
		truthTotal += len(truth)
		x := run.Result.PerIXP[info.Name]
		for link := range x.Links {
			if truth[link] {
				truePositives++
			} else {
				falsePositives++
			}
		}
	}
	fmt.Printf("ground truth: %d true RS peerings across IXPs\n", truthTotal)
	fmt.Printf("precision %.3f (%d TP, %d FP) — reciprocity is conservative by design\n",
		float64(truePositives)/float64(truePositives+falsePositives), truePositives, falsePositives)
	fmt.Printf("recall vs all true links %.3f (asymmetric peerings are knowingly missed, §4.4)\n",
		float64(truePositives)/float64(truthTotal))
}
