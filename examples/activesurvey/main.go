// Active survey: drive the §4.1 looking-glass algorithm against real
// HTTP looking glasses (served from the generated world) with the §4.3
// cost optimizations, and account every query like equations (1)/(2).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/core"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

func main() {
	log.SetFlags(0)

	world, err := pipeline.BuildWorld(topology.TestConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	if err := world.StartLGs(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("looking glasses served at %s\n", world.BaseURL())

	dict, err := world.Dictionary()
	if err != nil {
		log.Fatal(err)
	}

	// Survey with no passive data at all (equation 1), with a real (but
	// short, to keep the example fast) rate limit between queries.
	endpoints := world.LGEndpoints(0)
	empty := core.NewObservations()
	hints := map[bgp.ASN][]bgp.Prefix{}
	cfg := core.DefaultActiveConfig()
	cfg.SkipPassiveCovered = false

	res, err := core.RunActive(context.Background(), dict, endpoints, empty, hints, cfg)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(res.QueriesPerIXP))
	for n := range res.QueriesPerIXP {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-10s %8s %8s %10s\n", "IXP", "queries", "members", "covered")
	total := 0
	for _, n := range names {
		covered := len(res.Obs.Setters(n))
		fmt.Printf("%-10s %8d %8d %10d\n", n, res.QueriesPerIXP[n], res.MembersQueried[n], covered)
		total += res.QueriesPerIXP[n]
	}
	fmt.Printf("\ntotal cost c = %d queries (1 summary + |A_RS| neighbor queries + prefix lookups per IXP)\n", total)

	// The multiplicity optimization: show how many members one prefix
	// query covered at once at DE-CIX.
	if mult := res.PrefixMultiplicity["DE-CIX"]; len(mult) > 0 {
		best := 0
		for _, m := range mult {
			if m > best {
				best = m
			}
		}
		fmt.Printf("best single DE-CIX prefix covered %d members in one query (§4.3 sorting)\n", best)
	}

	links := core.InferLinks(dict, res.Obs)
	fmt.Printf("links inferred from active data alone: %d\n", links.TotalLinks())
}
