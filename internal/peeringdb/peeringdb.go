// Package peeringdb models the PeeringDB-style registry the paper joins
// against: self-reported peering policies, geographic scope, IXP
// participation and looking-glass endpoints (§5.2, §5.5, Fig. 13).
//
// The registry is deliberately self-reported: the topology generator may
// write records that disagree with an AS's actual behaviour, reproducing
// the paper's observation that "a network's observable MLP behavior is
// not always consistent with its reported peering policy".
package peeringdb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"mlpeering/internal/bgp"
)

// Policy is a self-reported peering policy.
type Policy int

// Peering policies, in decreasing openness. PolicyUnknown means the AS
// has no PeeringDB record (the paper could collect policy data for only
// 904 of 1,667 IXP members).
const (
	PolicyUnknown Policy = iota
	PolicyOpen
	PolicySelective
	PolicyRestrictive
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyOpen:
		return "open"
	case PolicySelective:
		return "selective"
	case PolicyRestrictive:
		return "restrictive"
	default:
		return "unknown"
	}
}

// ParsePolicy parses the String form.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "open":
		return PolicyOpen, nil
	case "selective":
		return PolicySelective, nil
	case "restrictive":
		return PolicyRestrictive, nil
	case "unknown", "":
		return PolicyUnknown, nil
	}
	return PolicyUnknown, fmt.Errorf("peeringdb: unknown policy %q", s)
}

// Scope is a self-reported geographic scope (Fig. 13's x axis).
type Scope int

// Scopes.
const (
	ScopeUnknown Scope = iota // "N/A" in the paper
	ScopeGlobal
	ScopeEurope
	ScopeRegional
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeGlobal:
		return "global"
	case ScopeEurope:
		return "europe"
	case ScopeRegional:
		return "regional"
	default:
		return "n/a"
	}
}

// ParseScope parses the String form.
func ParseScope(s string) (Scope, error) {
	switch s {
	case "global":
		return ScopeGlobal, nil
	case "europe":
		return ScopeEurope, nil
	case "regional":
		return ScopeRegional, nil
	case "n/a", "":
		return ScopeUnknown, nil
	}
	return ScopeUnknown, fmt.Errorf("peeringdb: unknown scope %q", s)
}

// Record is one network's registry entry.
type Record struct {
	ASN    bgp.ASN  `json:"asn"`
	Name   string   `json:"name"`
	Policy Policy   `json:"policy"`
	Scope  Scope    `json:"scope"`
	IXPs   []string `json:"ixps"`    // IXP names the network reports presence at
	LGURLs []string `json:"lg_urls"` // public looking glasses operated by the network
}

// Registry is an in-memory PeeringDB.
type Registry struct {
	mu sync.RWMutex
	//mlplint:guardedby mu
	records map[bgp.ASN]*Record
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{records: make(map[bgp.ASN]*Record)}
}

// Put inserts or replaces a record.
func (r *Registry) Put(rec *Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := *rec
	r.records[rec.ASN] = &cp
}

// Get returns the record for asn, or nil if the network never
// registered (the majority case in the paper's dataset).
func (r *Registry) Get(asn bgp.ASN) *Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.records[asn]
	if !ok {
		return nil
	}
	cp := *rec
	return &cp
}

// Policy returns the self-reported policy, PolicyUnknown when absent.
func (r *Registry) Policy(asn bgp.ASN) Policy {
	if rec := r.Get(asn); rec != nil {
		return rec.Policy
	}
	return PolicyUnknown
}

// Scope returns the self-reported scope, ScopeUnknown when absent.
func (r *Registry) Scope(asn bgp.ASN) Scope {
	if rec := r.Get(asn); rec != nil {
		return rec.Scope
	}
	return ScopeUnknown
}

// Len returns the number of records.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}

// ASNs returns all registered ASNs in ascending order.
func (r *Registry) ASNs() []bgp.ASN {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]bgp.ASN, 0, len(r.records))
	for a := range r.records {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WithLG returns the records advertising at least one looking glass,
// the paper's validation LG discovery step (§5.1).
func (r *Registry) WithLG() []*Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Record
	for _, rec := range r.records {
		if len(rec.LGURLs) > 0 {
			cp := *rec
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// registryJSON is the serialized form.
type registryJSON struct {
	Records []*Record `json:"records"`
}

// WriteTo serializes the registry as JSON.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	recs := make([]*Record, 0, len(r.records))
	for _, rec := range r.records {
		recs = append(recs, rec)
	}
	r.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ASN < recs[j].ASN })
	data, err := json.MarshalIndent(registryJSON{Records: recs}, "", "  ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(append(data, '\n'))
	return int64(n), err
}

// ReadFrom loads records from JSON produced by WriteTo, merging into r.
func (r *Registry) ReadFrom(rd io.Reader) (int64, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return int64(len(data)), err
	}
	var parsed registryJSON
	if err := json.Unmarshal(data, &parsed); err != nil {
		return int64(len(data)), fmt.Errorf("peeringdb: %w", err)
	}
	for _, rec := range parsed.Records {
		r.Put(rec)
	}
	return int64(len(data)), nil
}

// SaveFile writes the registry to path.
func (r *Registry) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := r.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a registry from path.
func LoadFile(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := NewRegistry()
	if _, err := r.ReadFrom(f); err != nil {
		return nil, err
	}
	return r, nil
}
