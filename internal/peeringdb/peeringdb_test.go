package peeringdb

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestPolicyScopeParsing(t *testing.T) {
	for _, p := range []Policy{PolicyUnknown, PolicyOpen, PolicySelective, PolicyRestrictive} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("policy %v: %v, %v", p, back, err)
		}
	}
	for _, s := range []Scope{ScopeUnknown, ScopeGlobal, ScopeEurope, ScopeRegional} {
		back, err := ParseScope(s.String())
		if err != nil || back != s {
			t.Errorf("scope %v: %v, %v", s, back, err)
		}
	}
	if _, err := ParsePolicy("friendly"); err == nil {
		t.Error("bad policy must error")
	}
	if _, err := ParseScope("mars"); err == nil {
		t.Error("bad scope must error")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Put(&Record{ASN: 15169, Name: "BigContent", Policy: PolicyOpen, Scope: ScopeGlobal})
	r.Put(&Record{ASN: 9002, Name: "EastISP", Policy: PolicySelective, Scope: ScopeEurope, LGURLs: []string{"http://lg.example/"}})

	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Policy(15169) != PolicyOpen || r.Scope(9002) != ScopeEurope {
		t.Fatal("lookups")
	}
	if r.Policy(1) != PolicyUnknown || r.Scope(1) != ScopeUnknown {
		t.Fatal("absent AS must report unknown")
	}
	if got := r.ASNs(); len(got) != 2 || got[0] != 9002 {
		t.Fatalf("ASNs = %v", got)
	}
	lgs := r.WithLG()
	if len(lgs) != 1 || lgs[0].ASN != 9002 {
		t.Fatalf("WithLG = %v", lgs)
	}

	// Get returns a copy; mutations must not leak back.
	rec := r.Get(15169)
	rec.Policy = PolicyRestrictive
	if r.Policy(15169) != PolicyOpen {
		t.Fatal("Get leaked internal state")
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Put(&Record{ASN: 100, Name: "A", Policy: PolicyOpen, Scope: ScopeRegional, IXPs: []string{"DE-CIX"}})
	r.Put(&Record{ASN: 200, Name: "B", Policy: PolicyRestrictive})

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if _, err := r2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 || r2.Policy(100) != PolicyOpen || len(r2.Get(100).IXPs) != 1 {
		t.Fatalf("round trip: %+v", r2.Get(100))
	}

	if _, err := NewRegistry().ReadFrom(bytes.NewBufferString("{bad")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestRegistryFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pdb.json")
	r := NewRegistry()
	r.Put(&Record{ASN: 42, Name: "X", Policy: PolicySelective})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy(42) != PolicySelective {
		t.Fatal("file round trip")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
