package collector

import (
	"io"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

// UpdateStream turns epochal world mutation into a true announce +
// withdraw BGP4MP trace: it snapshots every feeder's exported route per
// destination, and after each epoch's Engine.Apply diffs the dirty
// destinations against the snapshot, emitting withdrawals for routes
// and prefixes that disappeared and announcements for routes that
// appeared or changed — the message mix real collectors archive, unlike
// the announce-only re-broadcast churn of WriteUpdates.
type UpdateStream struct {
	col *Collector

	// Per destination: the prefix list announced at snapshot time and,
	// per feeder, a fingerprint of the route as exported to the
	// collector ("" = feeder had no exportable route). Destinations
	// absent from the maps announced nothing.
	prefixes map[bgp.ASN][]bgp.Prefix
	routes   map[bgp.ASN][]string
}

// NewUpdateStream snapshots the collector's current view (all feeders,
// all destinations) as the diff baseline. Call it on the same engine
// state the RIB dump was written from.
func NewUpdateStream(col *Collector) *UpdateStream {
	s := &UpdateStream{
		col:      col,
		prefixes: make(map[bgp.ASN][]bgp.Prefix),
		routes:   make(map[bgp.ASN][]string),
	}
	topo := col.engine.Topology()
	var arena propagate.RouteArena
	col.engine.ForEachTree(col.workers, func(tr *propagate.Tree) {
		dest := tr.Dest()
		if len(topo.ASes[dest].Prefixes) == 0 {
			return
		}
		arena.Reset()
		s.capture(tr, &arena)
	})
	return s
}

// capture records dest's per-feeder route fingerprints and prefix list.
func (s *UpdateStream) capture(tr *propagate.Tree, arena *propagate.RouteArena) {
	topo := s.col.engine.Topology()
	dest := tr.Dest()
	ps := topo.ASes[dest].Prefixes
	if len(ps) == 0 {
		delete(s.prefixes, dest)
		delete(s.routes, dest)
		return
	}
	fps := make([]string, len(s.col.feeders))
	any := false
	for i, f := range s.col.feeders {
		route := tr.RouteFromArena(f.ASN, arena)
		if route == nil || !exports(f, route.Class) {
			continue
		}
		fps[i] = routeFingerprint(route, s.col.strips[i])
		any = true
	}
	if !any {
		delete(s.prefixes, dest)
		delete(s.routes, dest)
		return
	}
	s.prefixes[dest] = append([]bgp.Prefix(nil), ps...)
	s.routes[dest] = fps
}

// routeFingerprint canonically encodes the announced path and (unless
// the feeder strips) communities: equal fingerprints ⇔ equal UPDATE
// content for the destination's prefixes.
func routeFingerprint(r *propagate.VantageRoute, feederStrips bool) string {
	b := make([]byte, 0, 4*len(r.Path)+4*len(r.Communities)+1)
	for _, a := range r.Path {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	b = append(b, 0xFF)
	if !feederStrips {
		for _, c := range r.Communities {
			b = append(b, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		}
	}
	return string(b)
}

// WriteEpoch diffs the dirty destinations (as returned by Engine.Apply)
// against the snapshot and writes the resulting withdraw/announce
// messages, updating the snapshot as it goes. Messages are timestamped
// monotonically within [ts, ts+window) so an epoch's churn lands inside
// its inference window in file order. It returns the number of
// announced and withdrawn prefixes.
func (s *UpdateStream) WriteEpoch(w io.Writer, ts time.Time, window time.Duration, dirty []bgp.ASN) (announced, withdrawn int, err error) {
	mw := mrt.NewWriter(w)
	topo := s.col.engine.Topology()
	maxOff := int(window/time.Second) - 1
	if maxOff < 0 {
		maxOff = 0
	}
	msgs := 0 // per-epoch message counter: offsets restart each window
	stamp := func() time.Time {
		off := msgs
		if off > maxOff {
			off = maxOff
		}
		msgs++
		return ts.Add(time.Duration(off) * time.Second)
	}
	var arena propagate.RouteArena
	for _, dest := range dirty {
		oldPs := s.prefixes[dest]
		oldFps := s.routes[dest]
		newPs := topo.ASes[dest].Prefixes

		tr := s.col.engine.Tree(dest)
		arena.Reset()
		// The diff pass already reconstructs every feeder's new route:
		// collect the fingerprints as it goes and refresh the snapshot
		// from them directly, instead of re-walking the tree a second
		// time through capture.
		var newFps []string
		any := false
		if tr != nil && len(newPs) > 0 {
			newFps = make([]string, len(s.col.feeders))
		}
		for i, f := range s.col.feeders {
			var oldFp string
			if oldFps != nil {
				oldFp = oldFps[i]
			}
			var newFp string
			var route *propagate.VantageRoute
			if newFps != nil {
				route = tr.RouteFromArena(f.ASN, &arena)
				if route != nil && exports(f, route.Class) {
					newFp = routeFingerprint(route, s.col.strips[i])
					newFps[i] = newFp
					any = true
				} else {
					route = nil
				}
			}
			switch {
			case oldFp != "" && newFp == "":
				// Route gone: withdraw everything previously announced.
				if err := s.writeWithdraw(mw, f, oldPs, stamp); err != nil {
					return announced, withdrawn, err
				}
				withdrawn += len(oldPs)
			case newFp != "" && (oldFp == "" || oldFp != newFp):
				// New or changed route: re-announce all current
				// prefixes (an UPDATE implicitly replaces the old
				// route), and withdraw prefixes that left the set.
				if gone := prefixesOnlyIn(oldPs, newPs); len(gone) > 0 && oldFp != "" {
					if err := s.writeWithdraw(mw, f, gone, stamp); err != nil {
						return announced, withdrawn, err
					}
					withdrawn += len(gone)
				}
				if err := s.writeAnnounce(mw, f, route, newPs, stamp); err != nil {
					return announced, withdrawn, err
				}
				announced += len(newPs)
			case newFp != "" && oldFp == newFp:
				// Same route; only the prefix set may have moved.
				if gone := prefixesOnlyIn(oldPs, newPs); len(gone) > 0 {
					if err := s.writeWithdraw(mw, f, gone, stamp); err != nil {
						return announced, withdrawn, err
					}
					withdrawn += len(gone)
				}
				if added := prefixesOnlyIn(newPs, oldPs); len(added) > 0 {
					if err := s.writeAnnounce(mw, f, route, added, stamp); err != nil {
						return announced, withdrawn, err
					}
					announced += len(added)
				}
			}
		}
		// Refresh the snapshot from the fingerprints just computed.
		if any {
			s.prefixes[dest] = append([]bgp.Prefix(nil), newPs...)
			s.routes[dest] = newFps
		} else {
			delete(s.prefixes, dest)
			delete(s.routes, dest)
		}
	}
	return announced, withdrawn, mw.Flush()
}

// writeWithdraw emits one withdrawn-only UPDATE from feeder f.
func (s *UpdateStream) writeWithdraw(mw *mrt.Writer, f topology.Feeder, ps []bgp.Prefix, stamp func() time.Time) error {
	msg := &mrt.BGP4MPMessage{
		PeerASN:   f.ASN,
		LocalASN:  collectorASN,
		PeerAddr:  s.col.addrs[f.ASN],
		LocalAddr: collectorAddr,
		Message:   &bgp.Update{Withdrawn: ps},
		AS4:       true,
	}
	return mw.WriteBGP4MP(stamp(), msg)
}

// writeAnnounce emits one UPDATE announcing ps with the feeder's
// current route attributes.
func (s *UpdateStream) writeAnnounce(mw *mrt.Writer, f topology.Feeder, route *propagate.VantageRoute, ps []bgp.Prefix, stamp func() time.Time) error {
	msg := &mrt.BGP4MPMessage{
		PeerASN:   f.ASN,
		LocalASN:  collectorASN,
		PeerAddr:  s.col.addrs[f.ASN],
		LocalAddr: collectorAddr,
		Message:   &bgp.Update{Attrs: s.col.routeAttrs(f, route), NLRI: ps},
		AS4:       true,
	}
	return mw.WriteBGP4MP(stamp(), msg)
}

// prefixesOnlyIn returns the prefixes of a that are not in b.
func prefixesOnlyIn(a, b []bgp.Prefix) []bgp.Prefix {
	var out []bgp.Prefix
	for _, p := range a {
		found := false
		for _, q := range b {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			out = append(out, p)
		}
	}
	return out
}
