package collector

import (
	"bytes"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

func testEngine(t *testing.T) *propagate.Engine {
	t.Helper()
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return propagate.NewEngine(topo, 0)
}

func TestWriteAndReadRIB(t *testing.T) {
	e := testEngine(t)
	c := New("rrc-test", e, nil, 2)
	ts := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)

	var buf bytes.Buffer
	if err := c.WriteRIB(&buf, ts); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Index == nil || len(dump.Index.Peers) != len(c.Feeders()) {
		t.Fatalf("peer index: %+v", dump.Index)
	}
	if len(dump.RIBs) == 0 {
		t.Fatal("empty RIB dump")
	}

	topo := e.Topology()
	owners := topo.PrefixOwners()
	commSeen := false
	for _, rib := range dump.RIBs {
		owner, ok := owners[rib.Prefix]
		if !ok {
			t.Fatalf("prefix %s has no owner", rib.Prefix)
		}
		for _, entry := range rib.Entries {
			path := entry.Attrs.ASPath.Flatten()
			if len(path) == 0 {
				t.Fatal("empty AS path")
			}
			// Path starts at a feeder and ends at the origin.
			feeder := dump.Index.Peers[entry.PeerIndex].ASN
			if path[0] != feeder {
				t.Fatalf("path %v does not start at feeder %s", path, feeder)
			}
			if path[len(path)-1] != owner {
				t.Fatalf("path %v does not end at origin %s", path, owner)
			}
			if len(entry.Attrs.Communities) > 0 {
				commSeen = true
			}
		}
	}
	if !commSeen {
		t.Fatal("no communities in the archive: passive inference would be impossible")
	}
}

func TestCustomerOnlyFeedersExportLess(t *testing.T) {
	e := testEngine(t)
	topo := e.Topology()
	ts := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)

	// Pick one feeder AS and compare its export volume under both kinds.
	feeder := topo.Feeders[0]
	full := []topology.Feeder{{ASN: feeder.ASN, Kind: topology.FeedFull}}
	cust := []topology.Feeder{{ASN: feeder.ASN, Kind: topology.FeedCustomerOnly}}

	count := func(fs []topology.Feeder) int {
		var buf bytes.Buffer
		if err := New("x", e, fs, 2).WriteRIB(&buf, ts); err != nil {
			t.Fatal(err)
		}
		dump, err := mrt.ReadDump(&buf)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range dump.RIBs {
			n += len(r.Entries)
		}
		return n
	}
	nFull, nCust := count(full), count(cust)
	if nCust >= nFull {
		t.Fatalf("customer-only feed (%d entries) not smaller than full feed (%d)", nCust, nFull)
	}
	if nCust == 0 {
		t.Fatal("customer-only feed exported nothing")
	}
}

func TestWriteUpdates(t *testing.T) {
	e := testEngine(t)
	c := New("rrc-test", e, nil, 2)
	ts := time.Date(2013, 5, 2, 0, 0, 0, 0, time.UTC)

	var buf bytes.Buffer
	opts := UpdateOptions{Churn: 60, TransientPaths: 5, PoisonedPaths: 4, BogonPaths: 3, Seed: 7}
	if err := c.WriteUpdates(&buf, ts, opts); err != nil {
		t.Fatal(err)
	}
	ups, err := mrt.ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) == 0 {
		t.Fatal("no updates written")
	}
	cycles, bogons, withdrawnOnly, paired := 0, 0, 0, 0
	withdrawnAt := make(map[bgp.Prefix]bool)
	for _, u := range ups {
		upd, ok := u.Message.(*bgp.Update)
		if !ok {
			t.Fatalf("message type %T", u.Message)
		}
		if upd.Attrs == nil {
			if len(upd.Withdrawn) == 0 {
				t.Fatal("update with neither attributes nor withdrawals")
			}
			withdrawnOnly++
			for _, p := range upd.Withdrawn {
				withdrawnAt[p] = true
			}
			continue
		}
		for _, p := range upd.NLRI {
			if withdrawnAt[p] {
				paired++
			}
		}
		if upd.Attrs.ASPath.HasCycle() {
			cycles++
		}
		for _, a := range upd.Attrs.ASPath.Flatten() {
			if a.IsReserved() {
				bogons++
				break
			}
		}
	}
	if cycles == 0 {
		t.Fatal("poisoned paths missing")
	}
	if bogons == 0 {
		t.Fatal("bogon paths missing")
	}
	// Churn must be paired withdraw/re-announce flaps, not announce-only.
	if withdrawnOnly == 0 {
		t.Fatal("no withdrawn-only updates: churn is announce-only again")
	}
	if paired == 0 {
		t.Fatal("no withdraw followed by a re-announcement of the same prefix")
	}
}

// TestUpdateStreamDiffsEpoch exercises the epoch diff stream directly:
// a prefix move must withdraw from the old origin's announcements and
// announce from the new one.
func TestUpdateStreamDiffsEpoch(t *testing.T) {
	e := testEngine(t)
	topo := e.Topology()
	c := New("rrc-test", e, nil, 2)
	stream := NewUpdateStream(c)

	// Find an AS with a prefix and a distinct recipient.
	var from, to bgp.ASN
	var p bgp.Prefix
	for _, asn := range topo.Order {
		if len(topo.ASes[asn].Prefixes) > 0 {
			from = asn
			p = topo.ASes[asn].Prefixes[0]
			break
		}
	}
	for _, asn := range topo.Order {
		if asn != from {
			to = asn
			break
		}
	}
	delta := &propagate.Delta{Prefixes: []propagate.PrefixOp{{Prefix: p, From: from, To: to}}}
	dirty, err := e.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ts := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	ann, wd, err := stream.WriteEpoch(&buf, ts, 10*time.Minute, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if ann == 0 || wd == 0 {
		t.Fatalf("prefix move produced ann=%d wd=%d", ann, wd)
	}
	ups, err := mrt.ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawWithdraw, sawAnnounce := false, false
	for _, u := range ups {
		upd := u.Message.(*bgp.Update)
		for _, q := range upd.Withdrawn {
			if q == p {
				sawWithdraw = true
			}
		}
		for _, q := range upd.NLRI {
			if q == p {
				sawAnnounce = true
				path := upd.Attrs.ASPath.Flatten()
				if path[len(path)-1] != to {
					t.Fatalf("re-announced path %v does not end at new origin %s", path, to)
				}
			}
		}
	}
	if !sawWithdraw || !sawAnnounce {
		t.Fatalf("moved prefix: withdraw=%v announce=%v", sawWithdraw, sawAnnounce)
	}

	// A second epoch with no mutation emits nothing.
	var buf2 bytes.Buffer
	ann2, wd2, err := stream.WriteEpoch(&buf2, ts.Add(10*time.Minute), 10*time.Minute, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if ann2 != 0 || wd2 != 0 {
		t.Fatalf("idempotent epoch re-diff emitted ann=%d wd=%d", ann2, wd2)
	}
}

func TestBuildRSRIBs(t *testing.T) {
	e := testEngine(t)
	ribs := propagate.BuildRSRIBs(e, 2)
	topo := e.Topology()

	if len(ribs) != len(topo.IXPs) {
		t.Fatalf("RS RIBs = %d, want %d", len(ribs), len(topo.IXPs))
	}
	multi := 0
	total := 0
	for name, rib := range ribs {
		info := topo.IXPByName(name)
		if info == nil {
			t.Fatalf("unknown IXP %s", name)
		}
		if len(rib.Entries) == 0 {
			t.Fatalf("%s: empty RS RIB", name)
		}
		members := rib.Members()
		for _, m := range members {
			if !info.IsRSMember(m) {
				t.Fatalf("%s: non-member %s in RS RIB", name, m)
			}
		}
		for p, es := range rib.Entries {
			total++
			if len(es) > 1 {
				multi++
			}
			seen := map[bgp.ASN]bool{}
			for _, e := range es {
				if seen[e.Member] {
					t.Fatalf("%s: duplicate advertiser %s for %s", name, e.Member, p)
				}
				seen[e.Member] = true
				if len(e.Path) == 0 || e.Path[0] != e.Member {
					t.Fatalf("%s: malformed entry path %v", name, e.Path)
				}
			}
		}
		// PrefixesFrom agrees with Entries.
		if len(members) > 0 {
			m := members[0]
			fromM := rib.PrefixesFrom(m)
			for _, p := range fromM {
				found := false
				for _, e := range rib.Entries[p] {
					if e.Member == m {
						found = true
					}
				}
				if !found {
					t.Fatalf("PrefixesFrom inconsistency at %s", p)
				}
			}
		}
	}
	// Multi-member prefixes must exist (Fig. 5's 48.4%).
	if multi == 0 {
		t.Fatalf("no multi-advertiser prefixes across %d prefixes", total)
	}
}
