// Package collector simulates Route Views / RIPE RIS route collectors:
// it peers with the topology's feeder ASes and archives their views as
// MRT TABLE_DUMP_V2 RIB dumps and BGP4MP update traces — the passive
// data source of the inference pipeline (§4.2).
package collector

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"os"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

// The collector's own BGP identity on its feeder sessions.
var collectorAddr = netip.AddrFrom4([4]byte{198, 51, 100, 1})

const collectorASN bgp.ASN = 64999

// Collector archives the BGP views of a set of feeders.
type Collector struct {
	Name    string
	engine  *propagate.Engine
	feeders []topology.Feeder
	addrs   map[bgp.ASN]netip.Addr
	strips  []bool // per feeder: feeder's own export strips communities
	workers int
}

// attrSlot is a reusable per-feeder attribute buffer for RIB dumps: the
// single-segment AS path points straight at the route's path slice, so
// building one entry allocates nothing.
type attrSlot struct {
	attrs bgp.PathAttrs
	seg   [1]bgp.PathSegment
}

// New builds a collector over the engine's topology. If feeders is nil
// the topology's feeder set is used.
func New(name string, engine *propagate.Engine, feeders []topology.Feeder, workers int) *Collector {
	if feeders == nil {
		feeders = engine.Topology().Feeders
	}
	if workers <= 0 {
		workers = 4
	}
	c := &Collector{
		Name:    name,
		engine:  engine,
		feeders: feeders,
		addrs:   make(map[bgp.ASN]netip.Addr, len(feeders)),
		workers: workers,
	}
	c.strips = make([]bool, len(feeders))
	topo := engine.Topology()
	for i, f := range feeders {
		// Feeder session addresses live in 192.0.2.0/24-style space,
		// expanded to /16 for large feeder sets.
		c.addrs[f.ASN] = netip.AddrFrom4([4]byte{192, 0, byte(2 + i/250), byte(1 + i%250)})
		if as := topo.ASes[f.ASN]; as != nil {
			c.strips[i] = as.StripsCommunities
		}
	}
	return c
}

// Feeders returns the collector's peer set.
func (c *Collector) Feeders() []topology.Feeder { return c.feeders }

// Engine returns the propagation engine the collector observes.
func (c *Collector) Engine() *propagate.Engine { return c.engine }

// exports reports whether feeder f exports its route toward a
// destination, per its feed kind: peer-style feeders (two-thirds of
// collector peers, §2.3) export only customer routes.
func exports(f topology.Feeder, class propagate.Class) bool {
	if f.Kind == topology.FeedFull {
		return class != propagate.ClassNone
	}
	return class >= propagate.ClassCustomer
}

// WriteRIB writes a full TABLE_DUMP_V2 RIB dump of all feeders' views.
func (c *Collector) WriteRIB(w io.Writer, ts time.Time) error {
	mw := mrt.NewWriter(w)
	topo := c.engine.Topology()

	idx := &mrt.PeerIndexTable{
		CollectorID: netip.AddrFrom4([4]byte{198, 51, 100, 1}),
		ViewName:    c.Name,
	}
	peerIndex := make(map[bgp.ASN]uint16, len(c.feeders))
	for i, f := range c.feeders {
		peerIndex[f.ASN] = uint16(i)
		idx.Peers = append(idx.Peers, mrt.Peer{
			BGPID: c.addrs[f.ASN],
			Addr:  c.addrs[f.ASN],
			ASN:   f.ASN,
		})
	}
	if err := mw.WritePeerIndexTable(ts, idx); err != nil {
		return err
	}

	seq := uint32(0)
	var writeErr error
	// Entry and attribute buffers are reused across destinations: each
	// record is marshaled before the next tree is consumed, so the slots
	// only need to live until WriteRIB returns.
	entries := make([]mrt.RIBEntry, 0, len(c.feeders))
	slots := make([]attrSlot, len(c.feeders))
	var rec mrt.RIBRecord
	// Routes are reconstructed into an arena rewound per destination:
	// every record is marshaled before the next tree is consumed, so the
	// arena-backed paths only need to live that long.
	var arena propagate.RouteArena
	c.engine.ForEachTree(c.workers, func(tr *propagate.Tree) {
		if writeErr != nil {
			return
		}
		dest := topo.ASes[tr.Dest()]
		if len(dest.Prefixes) == 0 {
			return
		}
		entries = entries[:0]
		arena.Reset()
		for i, f := range c.feeders {
			route := tr.RouteFromArena(f.ASN, &arena)
			if route == nil || !exports(f, route.Class) {
				continue
			}
			sl := &slots[len(entries)]
			sl.seg[0] = bgp.PathSegment{ASNs: route.Path}
			sl.attrs = bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  sl.seg[:],
				NextHop: c.addrs[f.ASN],
			}
			// The feeder's own export may strip communities; the route's
			// Communities field already accounts for stripping on
			// interior hops.
			if !c.strips[i] {
				sl.attrs.Communities = route.Communities
			}
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:  peerIndex[f.ASN],
				Originated: ts,
				Attrs:      &sl.attrs,
			})
		}
		if len(entries) == 0 {
			return
		}
		for _, p := range dest.Prefixes {
			rec = mrt.RIBRecord{Sequence: seq, Prefix: p, Entries: entries}
			seq++
			if err := mw.WriteRIB(ts, &rec); err != nil {
				writeErr = err
				return
			}
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return mw.Flush()
}

// routeAttrs converts a vantage route into BGP path attributes as the
// collector would record them.
func (c *Collector) routeAttrs(f topology.Feeder, route *propagate.VantageRoute) *bgp.PathAttrs {
	attrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.NewASPath(route.Path...),
		NextHop: c.addrs[f.ASN],
	}
	// The feeder's own export may strip communities; the route's
	// Communities field already accounts for stripping on interior hops.
	if !c.engine.Topology().ASes[f.ASN].StripsCommunities {
		attrs.Communities = route.Communities.Clone()
	}
	return attrs
}

// UpdateOptions controls synthetic update-trace generation.
type UpdateOptions struct {
	// Churn is the number of ordinary re-announcements to sample.
	Churn int
	// TransientPaths injects short-lived paths with a forged link
	// (mimicking misconfigured community/path handling); the passive
	// pipeline must filter these (§5).
	TransientPaths int
	// PoisonedPaths injects paths with an AS cycle.
	PoisonedPaths int
	// BogonPaths injects paths carrying a reserved ASN.
	BogonPaths int
	// Seed drives sampling.
	Seed int64
}

// WriteUpdates writes a BGP4MP update trace: mostly legitimate route
// churn — paired withdraw / re-announce flaps of existing best routes,
// the message mix real collectors archive — plus the configured
// pollution. Updates are spread over the hour following ts.
func (c *Collector) WriteUpdates(w io.Writer, ts time.Time, opts UpdateOptions) error {
	mw := mrt.NewWriter(w)
	rng := rand.New(rand.NewSource(opts.Seed))
	topo := c.engine.Topology()

	// Candidate destinations: ASes with prefixes.
	var dests []bgp.ASN
	for _, asn := range topo.Order {
		if len(topo.ASes[asn].Prefixes) > 0 {
			dests = append(dests, asn)
		}
	}
	if len(dests) == 0 || len(c.feeders) == 0 {
		return mw.Flush()
	}

	writeUpd := func(f topology.Feeder, upd *bgp.Update, at time.Time) error {
		msg := &mrt.BGP4MPMessage{
			PeerASN:   f.ASN,
			LocalASN:  collectorASN,
			PeerAddr:  c.addrs[f.ASN],
			LocalAddr: collectorAddr,
			Message:   upd,
			AS4:       true,
		}
		return mw.WriteBGP4MP(at, msg)
	}

	// Each sampled route is marshaled before the next draw, so one
	// arena rewound per iteration serves the whole trace. A session
	// flap is a withdrawal followed by a re-announcement of the same
	// route moments later: the withdrawn-only UPDATE carries no path
	// attributes at all, exactly what the passive pipeline must now
	// tolerate (and count) instead of dropping on the floor.
	var arena propagate.RouteArena
	for i := 0; i < opts.Churn; i++ {
		f := c.feeders[rng.Intn(len(c.feeders))]
		d := dests[rng.Intn(len(dests))]
		tr := c.engine.Tree(d)
		arena.Reset()
		route := tr.RouteFromArena(f.ASN, &arena)
		if route == nil || !exports(f, route.Class) {
			continue
		}
		prefixes := topo.ASes[d].Prefixes
		p := prefixes[rng.Intn(len(prefixes))]
		at := ts.Add(time.Duration(rng.Intn(3590)) * time.Second)
		if err := writeUpd(f, &bgp.Update{Withdrawn: []bgp.Prefix{p}}, at); err != nil {
			return err
		}
		reAt := at.Add(time.Duration(1+rng.Intn(9)) * time.Second)
		if err := writeUpd(f, &bgp.Update{Attrs: c.routeAttrs(f, route), NLRI: []bgp.Prefix{p}}, reAt); err != nil {
			return err
		}
	}

	pollute := func(n int, mangle func(path []bgp.ASN) []bgp.ASN) error {
		for i := 0; i < n; i++ {
			f := c.feeders[rng.Intn(len(c.feeders))]
			d := dests[rng.Intn(len(dests))]
			tr := c.engine.Tree(d)
			arena.Reset()
			route := tr.RouteFromArena(f.ASN, &arena)
			if route == nil {
				continue
			}
			attrs := c.routeAttrs(f, route)
			attrs.ASPath = bgp.NewASPath(mangle(append([]bgp.ASN(nil), route.Path...))...)
			prefixes := topo.ASes[d].Prefixes
			p := prefixes[rng.Intn(len(prefixes))]
			at := ts.Add(time.Duration(rng.Intn(3600)) * time.Second)
			if err := writeUpd(f, &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{p}}, at); err != nil {
				return err
			}
		}
		return nil
	}

	// Transient forged link: splice a random AS into the middle.
	if err := pollute(opts.TransientPaths, func(path []bgp.ASN) []bgp.ASN {
		if len(path) < 2 {
			return path
		}
		inject := dests[rng.Intn(len(dests))]
		pos := 1 + rng.Intn(len(path)-1)
		out := append(path[:pos:pos], append([]bgp.ASN{inject}, path[pos:]...)...)
		return out
	}); err != nil {
		return err
	}
	// Poisoned: repeat an earlier AS later in the path (cycle).
	if err := pollute(opts.PoisonedPaths, func(path []bgp.ASN) []bgp.ASN {
		if len(path) < 2 {
			return append(path, path[0], path[len(path)-1])
		}
		return append(path, path[0])
	}); err != nil {
		return err
	}
	// Bogon: reserved ASN in the path.
	if err := pollute(opts.BogonPaths, func(path []bgp.ASN) []bgp.ASN {
		pos := rng.Intn(len(path))
		out := append(path[:pos:pos], append([]bgp.ASN{bgp.ASTrans}, path[pos:]...)...)
		return out
	}); err != nil {
		return err
	}
	return mw.Flush()
}

// WriteRIBFile writes the RIB dump to path.
func (c *Collector) WriteRIBFile(path string, ts time.Time) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteRIB(f, ts); err != nil {
		f.Close()
		return fmt.Errorf("collector %s: %w", c.Name, err)
	}
	return f.Close()
}

// WriteUpdatesFile writes the update trace to path.
func (c *Collector) WriteUpdatesFile(path string, ts time.Time, opts UpdateOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteUpdates(f, ts, opts); err != nil {
		f.Close()
		return fmt.Errorf("collector %s: %w", c.Name, err)
	}
	return f.Close()
}
