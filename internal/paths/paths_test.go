package paths

import (
	"testing"

	"mlpeering/internal/bgp"
)

func TestInternDedup(t *testing.T) {
	s := NewStore()
	a := s.Intern([]bgp.ASN{1, 2, 3})
	b := s.Intern([]bgp.ASN{1, 2, 3})
	if a != b {
		t.Fatalf("identical paths got distinct ids %d, %d", a, b)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	c := s.Intern([]bgp.ASN{1, 2, 4})
	if c == a {
		t.Fatal("distinct paths share an id")
	}
	got := s.Path(a)
	want := []bgp.ASN{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Path(%d) = %v", a, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(%d) = %v, want %v", a, got, want)
		}
	}
}

func TestInternCollapsesPrepending(t *testing.T) {
	s := NewStore()
	a := s.Intern([]bgp.ASN{1, 1, 1, 2, 3, 3})
	b := s.Intern([]bgp.ASN{1, 2, 3})
	if a != b {
		t.Fatal("prepended path must intern to its collapsed form")
	}
	if s.Hops() != 3 {
		t.Fatalf("Hops = %d, want 3", s.Hops())
	}
}

func TestInternASPath(t *testing.T) {
	s := NewStore()
	p := bgp.ASPath{
		{ASNs: []bgp.ASN{10, 10, 20}},
		{ASNs: []bgp.ASN{20, 30}},
	}
	a := s.InternASPath(p)
	b := s.Intern([]bgp.ASN{10, 20, 30})
	if a != b {
		t.Fatal("InternASPath must flatten and collapse like Intern")
	}
}

func TestInternEmptyPath(t *testing.T) {
	s := NewStore()
	a := s.Intern(nil)
	if got := s.Path(a); len(got) != 0 {
		t.Fatalf("empty path = %v", got)
	}
	if b := s.Intern([]bgp.ASN{}); b != a {
		t.Fatal("empty paths must share an id")
	}
}

func TestViewAndRecords(t *testing.T) {
	s := NewStore()
	a := s.Intern([]bgp.ASN{1, 2})
	bID := s.Intern([]bgp.ASN{3, 4})
	v := NewView(s, []ID{bID, a})
	if v.Len() != 2 || v.Path(0)[0] != 3 || v.Path(1)[0] != 1 {
		t.Fatalf("view order wrong: %v %v", v.Path(0), v.Path(1))
	}
	all := s.All()
	if all.Len() != s.Len() {
		t.Fatalf("All len = %d, want %d", all.Len(), s.Len())
	}

	r := NewRecords(s)
	pfx := bgp.MustPrefix("10.0.0.0/24")
	r.Add(a, nil, pfx, true)
	r.Add(bID, bgp.Communities{1}, pfx, false)
	if r.Len() != 2 || r.Path(0)[0] != 1 || !r.Stable[0] || r.Stable[1] {
		t.Fatalf("records wrong: %+v", r)
	}
}

func TestFromSlices(t *testing.T) {
	s := FromSlices([][]bgp.ASN{{1, 2}, {1, 2}, {2, 3}})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func BenchmarkInternHit(b *testing.B) {
	s := NewStore()
	p := []bgp.ASN{64500, 3356, 6695, 196615, 8359}
	s.Intern(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Intern(p)
	}
}
