// Package paths provides an interned, columnar AS-path store. Collector
// archives contain the same AS path thousands of times (once per prefix
// per feeder); storing each distinct path once — all hops in one shared
// backing arena, addressed by a small integer ID — removes the per-record
// path allocation that used to dominate the passive pipeline, and gives
// every consumer (link extraction, relationship inference, setter
// pinpointing) O(1) access to the deduplicated path set.
package paths

import (
	"mlpeering/internal/bgp"
)

// ID names one distinct AS path within a Store.
type ID int32

// Store interns AS paths: each distinct path is stored exactly once in a
// shared backing arena and addressed by ID. The zero Store is not ready
// for use; call NewStore.
type Store struct {
	arena  []bgp.ASN // all hops of all distinct paths, concatenated
	off    []int32   // path id -> [off[id], off[id+1]) into arena
	lookup map[string]ID
	keyBuf []byte // scratch for lookup keys; only misses copy it
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{off: []int32{0}, lookup: make(map[string]ID)}
}

// Len returns the number of distinct paths interned.
func (s *Store) Len() int { return len(s.off) - 1 }

// Hops returns the total hop count across all distinct paths (the arena
// size), a direct measure of how much the interning saved.
func (s *Store) Hops() int { return len(s.arena) }

// Path returns the hops of path id as a slice into the shared arena.
// Callers must not modify it.
func (s *Store) Path(id ID) []bgp.ASN {
	return s.arena[s.off[id]:s.off[id+1]:s.off[id+1]]
}

// key builds the lookup key for the arena tail [start:] in s.keyBuf.
func (s *Store) key(start int) []byte {
	b := s.keyBuf[:0]
	for _, a := range s.arena[start:] {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	s.keyBuf = b
	return b
}

// commit finishes an intern whose candidate hops sit at the arena tail
// beginning at start: dedup-lookup, rolling the arena back on a hit.
func (s *Store) commit(start int) ID {
	k := s.key(start)
	if id, ok := s.lookup[string(k)]; ok {
		s.arena = s.arena[:start] // duplicate: drop the tail copy
		return id
	}
	id := ID(len(s.off) - 1)
	s.off = append(s.off, int32(len(s.arena)))
	s.lookup[string(k)] = id
	return id
}

// Intern adds the path (collapsing adjacent duplicate hops, i.e. BGP
// prepending) and returns its ID. Re-interning an identical path returns
// the existing ID without allocating.
func (s *Store) Intern(path []bgp.ASN) ID {
	start := len(s.arena)
	for _, a := range path {
		if len(s.arena) == start || s.arena[len(s.arena)-1] != a {
			s.arena = append(s.arena, a)
		}
	}
	return s.commit(start)
}

// InternASPath interns the flattened, prepending-collapsed form of a
// wire AS_PATH without materializing an intermediate slice.
func (s *Store) InternASPath(p bgp.ASPath) ID {
	start := len(s.arena)
	for _, seg := range p {
		for _, a := range seg.ASNs {
			if len(s.arena) == start || s.arena[len(s.arena)-1] != a {
				s.arena = append(s.arena, a)
			}
		}
	}
	return s.commit(start)
}

// FromSlices interns every path of pp into a fresh store, in order.
func FromSlices(pp [][]bgp.ASN) *Store {
	s := NewStore()
	for _, p := range pp {
		s.Intern(p)
	}
	return s
}

// View is an ordered subset of a store's paths: the unit consumers
// iterate (e.g. the hygiene-surviving public paths of the passive
// pipeline).
type View struct {
	store *Store
	ids   []ID
}

// NewView builds a view over ids (not copied).
func NewView(s *Store, ids []ID) View { return View{store: s, ids: ids} }

// All returns a view over every path in the store, in intern order.
func (s *Store) All() View {
	ids := make([]ID, s.Len())
	for i := range ids {
		ids[i] = ID(i)
	}
	return View{store: s, ids: ids}
}

// Len returns the number of paths in the view.
func (v View) Len() int { return len(v.ids) }

// ID returns the store ID of the i-th path.
func (v View) ID(i int) ID { return v.ids[i] }

// Path returns the i-th path, a slice into the store arena.
func (v View) Path(i int) []bgp.ASN { return v.store.Path(v.ids[i]) }

// Store returns the backing store.
func (v View) Store() *Store { return v.store }

// Records is the columnar (path, communities, prefix, stability) table
// mined from collector archives: one row per announcement, with the AS
// path held in the interned store so repeated announcements of the same
// path cost four bytes, not a slice.
type Records struct {
	store  *Store
	PathID []ID
	Comms  []bgp.Communities
	Prefix []bgp.Prefix
	Stable []bool
}

// NewRecords returns an empty record table backed by store.
func NewRecords(store *Store) *Records { return &Records{store: store} }

// Store returns the backing path store.
func (r *Records) Store() *Store { return r.store }

// Len returns the number of rows.
func (r *Records) Len() int { return len(r.PathID) }

// Add appends one row.
func (r *Records) Add(id ID, comms bgp.Communities, prefix bgp.Prefix, stable bool) {
	r.PathID = append(r.PathID, id)
	r.Comms = append(r.Comms, comms)
	r.Prefix = append(r.Prefix, prefix)
	r.Stable = append(r.Stable, stable)
}

// Path returns the path of row i.
func (r *Records) Path(i int) []bgp.ASN { return r.store.Path(r.PathID[i]) }
