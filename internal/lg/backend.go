// Package lg implements looking glasses: HTTP servers that expose
// non-privileged BGP show commands over a web interface and render
// router-style text, plus the scraping client the active inference
// pipeline drives (§4.1). Both the IXP route-server LGs and the
// third-party member LGs of the paper are modeled.
package lg

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"mlpeering/internal/bgp"
	"mlpeering/internal/propagate"
)

// PeerSummary is one row of "show ip bgp summary".
type PeerSummary struct {
	Addr     netip.Addr
	ASN      bgp.ASN
	PfxCount int
}

// PathInfo is one path of a "show ip bgp <prefix>" response.
type PathInfo struct {
	Path        []bgp.ASN // as displayed: the LG's own ASN excluded
	NextHop     netip.Addr
	Communities bgp.Communities
	Best        bool
}

// Backend supplies the data behind one looking glass.
type Backend interface {
	// RouterID identifies the device.
	RouterID() netip.Addr
	// LocalASN is the AS the LG belongs to.
	LocalASN() bgp.ASN
	// Summary lists BGP neighbors ("show ip bgp summary").
	Summary() []PeerSummary
	// NeighborRoutes lists prefixes advertised by the neighbor at addr
	// ("show ip bgp neighbors <addr> routes").
	NeighborRoutes(addr netip.Addr) ([]bgp.Prefix, error)
	// Lookup returns the paths for a prefix ("show ip bgp <prefix>").
	Lookup(prefix bgp.Prefix) ([]PathInfo, error)
}

// RSBackend exposes an IXP route server's RIB: the view behind DE-CIX-
// style IXP looking glasses.
type RSBackend struct {
	rib       *propagate.RSRIB
	perMember map[bgp.ASN][]bgp.Prefix
	members   []PeerSummary
	// Hidden members do not appear in summary output (DTEL-IX restricts
	// queries for members who do not wish to disclose connectivity).
	hidden map[bgp.ASN]bool
}

// NewRSBackend builds a backend over a route server RIB. hidden lists
// members excluded from the summary output.
func NewRSBackend(rib *propagate.RSRIB, hidden []bgp.ASN) *RSBackend {
	b := &RSBackend{
		rib:       rib,
		perMember: make(map[bgp.ASN][]bgp.Prefix),
		hidden:    make(map[bgp.ASN]bool, len(hidden)),
	}
	for _, h := range hidden {
		b.hidden[h] = true
	}
	for p, es := range rib.Entries {
		for _, e := range es {
			b.perMember[e.Member] = append(b.perMember[e.Member], p)
		}
	}
	for m := range b.perMember {
		sort.Slice(b.perMember[m], func(i, j int) bool {
			return bgp.ComparePrefixes(b.perMember[m][i], b.perMember[m][j]) < 0
		})
	}
	for _, m := range rib.Members() {
		if b.hidden[m] {
			continue
		}
		addr, ok := rib.IXP.MemberAddr(m)
		if !ok {
			continue
		}
		b.members = append(b.members, PeerSummary{Addr: addr, ASN: m, PfxCount: len(b.perMember[m])})
	}
	return b
}

// RouterID implements Backend.
func (b *RSBackend) RouterID() netip.Addr { return b.rib.IXP.RSAddr }

// LocalASN implements Backend.
func (b *RSBackend) LocalASN() bgp.ASN { return b.rib.IXP.Scheme.RSASN }

// Summary implements Backend.
func (b *RSBackend) Summary() []PeerSummary { return b.members }

// NeighborRoutes implements Backend.
func (b *RSBackend) NeighborRoutes(addr netip.Addr) ([]bgp.Prefix, error) {
	m, ok := b.rib.IXP.MemberByAddr(addr)
	if !ok {
		return nil, fmt.Errorf("lg: %% No such neighbor %s", addr)
	}
	if b.hidden[m] {
		return nil, fmt.Errorf("lg: %% Queries for this neighbor are disabled")
	}
	return b.perMember[m], nil
}

// Lookup implements Backend.
func (b *RSBackend) Lookup(prefix bgp.Prefix) ([]PathInfo, error) {
	es, ok := b.rib.Entries[prefix]
	if !ok {
		return nil, nil
	}
	out := make([]PathInfo, 0, len(es))
	for i, e := range es {
		nh, _ := b.rib.IXP.MemberAddr(e.Member)
		out = append(out, PathInfo{
			Path:        e.Path,
			NextHop:     nh,
			Communities: e.Communities,
			Best:        i == 0,
		})
	}
	return out, nil
}

// ASBackend exposes one AS's BGP view: the third-party and validation
// looking glasses of §4.1 and §5.1.
//
// Route reconstruction is slab-allocated from a per-backend arena, so a
// Lookup result is only valid until the next Lookup on the same
// backend. The LG server renders each response before serving the next
// query, and the survey/validation clients drive every LG sequentially,
// so the contract holds for all in-repo consumers.
type ASBackend struct {
	engine   *propagate.Engine
	asn      bgp.ASN
	owners   map[bgp.Prefix]bgp.ASN
	allPaths bool
	routerID netip.Addr

	mu sync.Mutex
	//mlplint:guardedby mu
	arena propagate.RouteArena
	//mlplint:guardedby mu
	routeBuf []*propagate.VantageRoute
}

// NewASBackend builds a looking glass for the given AS. allPaths
// selects whether the LG displays every available path or only the
// best one (Fig. 8's circles vs triangles).
func NewASBackend(engine *propagate.Engine, asn bgp.ASN, owners map[bgp.Prefix]bgp.ASN, allPaths bool) *ASBackend {
	// Router ID derived from the ASN for determinism.
	id := netip.AddrFrom4([4]byte{10, byte(asn >> 16), byte(asn >> 8), byte(asn)})
	return &ASBackend{engine: engine, asn: asn, owners: owners, allPaths: allPaths, routerID: id}
}

// RouterID implements Backend.
func (b *ASBackend) RouterID() netip.Addr { return b.routerID }

// LocalASN implements Backend.
func (b *ASBackend) LocalASN() bgp.ASN { return b.asn }

// AllPaths reports the LG's display mode.
func (b *ASBackend) AllPaths() bool { return b.allPaths }

// Summary implements Backend. An AS LG reports its neighbors; for the
// inference pipeline only the route-server views matter, so the
// member's own summary lists nothing.
func (b *ASBackend) Summary() []PeerSummary { return nil }

// NeighborRoutes implements Backend.
func (b *ASBackend) NeighborRoutes(addr netip.Addr) ([]bgp.Prefix, error) {
	return nil, fmt.Errorf("lg: %% Command not supported on this looking glass")
}

// Lookup implements Backend. The returned PathInfos alias the backend's
// route arena and are valid until the next Lookup on this backend.
func (b *ASBackend) Lookup(prefix bgp.Prefix) ([]PathInfo, error) {
	owner, ok := b.owners[prefix]
	if !ok {
		return nil, nil
	}
	tr := b.engine.Tree(owner)
	if tr == nil {
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arena.Reset()
	topo := b.engine.Topology()
	var routes []*propagate.VantageRoute
	if b.allPaths {
		routes = tr.AvailableRoutesFromArena(b.asn, &b.arena, b.routeBuf)
		b.routeBuf = routes[:0]
	} else if r := tr.RouteFromArena(b.asn, &b.arena); r != nil {
		if cap(b.routeBuf) == 0 {
			b.routeBuf = make([]*propagate.VantageRoute, 0, 1)
		}
		routes = append(b.routeBuf[:0], r)
	}
	out := make([]PathInfo, 0, len(routes))
	for i, r := range routes {
		// Displayed paths exclude the LG's own ASN, like real routers.
		path := r.Path
		if len(path) > 0 && path[0] == b.asn {
			path = path[1:]
		}
		nh := b.routerID
		if r.ViaIXP != "" {
			if info := topo.IXPByName(r.ViaIXP); info != nil {
				if a, ok := info.MemberAddr(r.RSSetter); ok {
					nh = a
				}
			}
		}
		out = append(out, PathInfo{
			Path:        path,
			NextHop:     nh,
			Communities: r.Communities,
			Best:        i == 0,
		})
	}
	return out, nil
}
