package lg

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlpeering/internal/bgp"
)

// RateLimiter enforces a minimum interval between queries; the paper
// rate-limited to one query per ten seconds per LG (§4.3).
type RateLimiter struct {
	mu       sync.Mutex
	interval time.Duration
	last     time.Time           // guarded by mu
	sleep    func(time.Duration) // injectable for tests
}

// NewRateLimiter returns a limiter with the given minimum interval.
func NewRateLimiter(interval time.Duration) *RateLimiter {
	return &RateLimiter{interval: interval, sleep: time.Sleep}
}

// Wait blocks until a query is permitted.
func (r *RateLimiter) Wait() {
	if r == nil || r.interval <= 0 {
		return
	}
	r.mu.Lock()
	//mlplint:clock real wall-clock pacing for live LG HTTP queries; tests inject sleep
	now := time.Now()
	wait := r.interval - now.Sub(r.last)
	if wait > 0 {
		r.last = now.Add(wait)
	} else {
		r.last = now
		wait = 0
	}
	r.mu.Unlock()
	if wait > 0 {
		r.sleep(wait)
	}
}

// Client queries one looking glass over HTTP and parses the router-style
// text it returns. Every query increments a counter so experiments can
// account cost exactly as equation (1)/(2) of the paper do.
type Client struct {
	// BaseURL is the LG endpoint, e.g. "http://lg.example/decix-rs1".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Limiter, when set, paces queries.
	Limiter *RateLimiter

	queries atomic.Int64
}

// QueryCount returns the number of HTTP queries issued so far.
func (c *Client) QueryCount() int { return int(c.queries.Load()) }

// ResetQueryCount zeroes the counter.
func (c *Client) ResetQueryCount() { c.queries.Store(0) }

func (c *Client) fetch(ctx context.Context, command string) (string, error) {
	if c.Limiter != nil {
		c.Limiter.Wait()
	}
	c.queries.Add(1)
	u := c.BaseURL + "?q=" + url.QueryEscape(command)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("lg: querying %s: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("lg: reading %s: %w", c.BaseURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("lg: %s: HTTP %d: %s", c.BaseURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// Summary runs "show ip bgp summary": step 1 of the algorithm, the
// connectivity data A_RS.
func (c *Client) Summary(ctx context.Context) ([]PeerSummary, error) {
	text, err := c.fetch(ctx, "show ip bgp summary")
	if err != nil {
		return nil, err
	}
	return ParseSummary(text)
}

// NeighborRoutes runs "show ip bgp neighbors <addr> routes": step 2,
// the per-member prefix sets P_a.
func (c *Client) NeighborRoutes(ctx context.Context, addr netip.Addr) ([]bgp.Prefix, error) {
	text, err := c.fetch(ctx, fmt.Sprintf("show ip bgp neighbors %s routes", addr))
	if err != nil {
		return nil, err
	}
	return ParseRoutes(text)
}

// Lookup runs "show ip bgp <prefix>": step 3, the per-prefix community
// sets C_{a,p}.
func (c *Client) Lookup(ctx context.Context, prefix bgp.Prefix) ([]PathInfo, error) {
	text, err := c.fetch(ctx, "show ip bgp "+prefix.String())
	if err != nil {
		return nil, err
	}
	return ParsePrefixResponse(text)
}

// ParseSummary extracts neighbor rows from "show ip bgp summary" text.
func ParseSummary(text string) ([]PeerSummary, error) {
	var out []PeerSummary
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			continue // header or banner line
		}
		asn, err := bgp.ParseASN(fields[2])
		if err != nil {
			return nil, fmt.Errorf("lg: summary row %q: %w", sc.Text(), err)
		}
		var pfx int
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%d", &pfx); err != nil {
			continue // neighbor in a non-established state
		}
		out = append(out, PeerSummary{Addr: addr, ASN: asn, PfxCount: pfx})
	}
	return out, sc.Err()
}

// ParseRoutes extracts prefixes from "show ip bgp neighbors ... routes"
// text.
func ParseRoutes(text string) ([]bgp.Prefix, error) {
	var out []bgp.Prefix
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(line, "*") {
			continue
		}
		p, err := bgp.ParsePrefix(fields[1])
		if err != nil {
			return nil, fmt.Errorf("lg: route row %q: %w", line, err)
		}
		out = append(out, p)
	}
	return out, sc.Err()
}

// ParsePrefixResponse extracts paths and communities from
// "show ip bgp <prefix>" text.
func ParsePrefixResponse(text string) ([]PathInfo, error) {
	if strings.Contains(text, "Network not in table") {
		return nil, nil
	}
	var out []PathInfo
	var cur *PathInfo
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "  ") && !strings.HasPrefix(line, "    ") && trimmed != "":
			// Path line: two-space indent.
			flush()
			if trimmed == "Local" {
				cur = &PathInfo{}
				continue
			}
			var path []bgp.ASN
			ok := true
			for _, f := range strings.Fields(trimmed) {
				a, err := bgp.ParseASN(f)
				if err != nil {
					ok = false
					break
				}
				path = append(path, a)
			}
			if !ok {
				continue
			}
			cur = &PathInfo{Path: path}
		case cur != nil && strings.HasPrefix(trimmed, "Community:"):
			cs, err := bgp.ParseCommunities(strings.TrimSpace(strings.TrimPrefix(trimmed, "Community:")))
			if err != nil {
				return nil, fmt.Errorf("lg: community line %q: %w", trimmed, err)
			}
			cur.Communities = cs
		case cur != nil && strings.HasPrefix(trimmed, "Origin "):
			if strings.Contains(trimmed, ", best") {
				cur.Best = true
			}
		case cur != nil && strings.Contains(trimmed, " from "):
			nh := strings.Fields(trimmed)
			if len(nh) > 0 {
				if a, err := netip.ParseAddr(nh[0]); err == nil {
					cur.NextHop = a
				}
			}
		}
	}
	flush()
	return out, sc.Err()
}
