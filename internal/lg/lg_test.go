package lg

import (
	"context"
	"fmt"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

func testWorld(t *testing.T) (*topology.Topology, *propagate.Engine, map[string]*propagate.RSRIB) {
	t.Helper()
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := propagate.NewEngine(topo, 0)
	ribs := propagate.BuildRSRIBs(e, 2)
	return topo, e, ribs
}

func TestRSBackendOverHTTP(t *testing.T) {
	topo, _, ribs := testWorld(t)
	info := topo.IXPs[0]
	rib := ribs[info.Name]

	srv := NewServer()
	srv.Mount("rs", NewRSBackend(rib, nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &Client{BaseURL: ts.URL + "/rs"}
	ctx := context.Background()

	// Step 1: summary gives the connected members.
	peers, err := client.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) == 0 {
		t.Fatal("no peers in summary")
	}
	for _, p := range peers {
		if !info.IsRSMember(p.ASN) {
			t.Fatalf("summary lists non-member %s", p.ASN)
		}
		if p.PfxCount <= 0 {
			t.Fatalf("member %s has no prefixes", p.ASN)
		}
	}

	// Step 2: neighbor routes round-trip through text.
	m := peers[0]
	prefixes, err := client.NeighborRoutes(ctx, m.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != m.PfxCount {
		t.Fatalf("routes = %d, summary said %d", len(prefixes), m.PfxCount)
	}

	// Step 3: prefix lookup returns communities.
	foundComm := false
	for _, p := range prefixes {
		paths, err := client.Lookup(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("prefix %s vanished", p)
		}
		for _, pi := range paths {
			if len(pi.Communities) > 0 {
				foundComm = true
			}
			if len(pi.Path) == 0 {
				t.Fatalf("empty path for %s", p)
			}
		}
		if foundComm {
			break
		}
	}
	if !foundComm {
		t.Fatal("no communities visible through LG")
	}

	// 1 summary + 1 neighbor-routes + ≥1 lookup.
	if client.QueryCount() < 3 {
		t.Fatalf("query counter = %d", client.QueryCount())
	}
	client.ResetQueryCount()
	if client.QueryCount() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRSBackendHiddenMembers(t *testing.T) {
	topo, _, ribs := testWorld(t)
	info := topo.IXPs[0]
	rib := ribs[info.Name]
	all := rib.Members()
	if len(all) < 2 {
		t.Skip("not enough members")
	}
	hidden := all[0]
	b := NewRSBackend(rib, []bgp.ASN{hidden})
	for _, p := range b.Summary() {
		if p.ASN == hidden {
			t.Fatal("hidden member in summary")
		}
	}
	addr, _ := info.MemberAddr(hidden)
	if _, err := b.NeighborRoutes(addr); err == nil {
		t.Fatal("hidden member queryable")
	}
}

func TestASBackendBestVsAllPaths(t *testing.T) {
	topo, e, _ := testWorld(t)
	owners := topo.PrefixOwners()

	// Find an RS member with a prefix to look up from another member.
	info := topo.IXPs[0]
	members := info.SortedRSMembers()
	var vantage, origin bgp.ASN
	var prefix bgp.Prefix
	for _, m := range members {
		for _, o := range members {
			if m == o || len(topo.ASes[o].Prefixes) == 0 {
				continue
			}
			vantage, origin, prefix = m, o, topo.ASes[o].Prefixes[0]
			break
		}
		if vantage != 0 {
			break
		}
	}
	if vantage == 0 {
		t.Skip("no suitable pair")
	}
	_ = origin

	allB := NewASBackend(e, vantage, owners, true)
	bestB := NewASBackend(e, vantage, owners, false)

	allPaths, err := allB.Lookup(prefix)
	if err != nil {
		t.Fatal(err)
	}
	bestPaths, err := bestB.Lookup(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(bestPaths) > 1 {
		t.Fatalf("best-path LG returned %d paths", len(bestPaths))
	}
	if len(allPaths) < len(bestPaths) {
		t.Fatal("all-paths LG returned fewer paths than best-path LG")
	}
	// The LG's own ASN must not appear in displayed paths.
	for _, pi := range append(allPaths, bestPaths...) {
		for _, a := range pi.Path {
			if a == vantage {
				t.Fatalf("own ASN leaked into displayed path %v", pi.Path)
			}
		}
	}
}

func TestServerRejectsBadQueries(t *testing.T) {
	topo, _, ribs := testWorld(t)
	srv := NewServer()
	srv.Mount("rs", NewRSBackend(ribs[topo.IXPs[0].Name], nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &Client{BaseURL: ts.URL + "/rs"}
	ctx := context.Background()
	if _, err := client.Lookup(ctx, bgp.Prefix{}); err == nil {
		t.Fatal("invalid prefix accepted")
	}
	if _, err := client.NeighborRoutes(ctx, netip.MustParseAddr("203.0.113.99")); err == nil {
		t.Fatal("unknown neighbor accepted")
	}
	// Unknown command.
	if _, err := client.fetch(ctx, "show version"); err == nil {
		t.Fatal("unknown command accepted")
	}
	// Missing query.
	if _, err := client.fetch(ctx, ""); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestLookupMissingPrefix(t *testing.T) {
	topo, _, ribs := testWorld(t)
	srv := NewServer()
	srv.Mount("rs", NewRSBackend(ribs[topo.IXPs[0].Name], nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &Client{BaseURL: ts.URL + "/rs"}
	paths, err := client.Lookup(context.Background(), bgp.MustPrefix("203.0.113.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("phantom paths: %+v", paths)
	}
}

func TestRateLimiter(t *testing.T) {
	var slept []time.Duration
	rl := NewRateLimiter(10 * time.Second)
	rl.sleep = func(d time.Duration) { slept = append(slept, d) }

	rl.Wait() // first query free
	rl.Wait() // must wait ~10s
	if len(slept) != 1 || slept[0] <= 0 || slept[0] > 10*time.Second {
		t.Fatalf("sleeps = %v", slept)
	}
	// Nil limiter and zero interval are no-ops.
	var nilRL *RateLimiter
	nilRL.Wait()
	NewRateLimiter(0).Wait()
}

func TestParseSummaryTolerance(t *testing.T) {
	text := `BGP router identifier 172.16.0.1, local AS number 6695

Neighbor                V         AS State/PfxRcd
172.16.1.3              4       8359          123
172.16.1.4              4     196615         Idle
junk line
172.16.1.5              4       5410            7
`
	peers, err := ParseSummary(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %+v", peers)
	}
	if peers[0].ASN != 8359 || peers[0].PfxCount != 123 {
		t.Fatalf("row 0 = %+v", peers[0])
	}
	if peers[1].ASN != 5410 {
		t.Fatalf("row 1 = %+v", peers[1])
	}
}

func TestParsePrefixResponseFormats(t *testing.T) {
	text := `BGP routing table entry for 30.1.0.0/16
Paths: (2 available, best #1)
  8359 1001
    172.16.1.3 from 172.16.1.3 (172.16.0.1)
      Origin IGP, localpref 100, valid, external, best
      Community: 6695:6695 0:5410
  200 64512 1001
    172.16.1.9 from 172.16.1.9 (172.16.0.1)
      Origin IGP, localpref 100, valid, external
`
	paths, err := ParsePrefixResponse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %+v", paths)
	}
	if !paths[0].Best || paths[1].Best {
		t.Fatal("best flags wrong")
	}
	if len(paths[0].Communities) != 2 || paths[0].Communities[0].String() != "6695:6695" {
		t.Fatalf("communities = %v", paths[0].Communities)
	}
	if len(paths[1].Path) != 3 || paths[1].Path[1] != 64512 {
		t.Fatalf("path = %v", paths[1].Path)
	}
	if paths[0].NextHop != netip.MustParseAddr("172.16.1.3") {
		t.Fatalf("next hop = %v", paths[0].NextHop)
	}
}

// TestConcurrentLookupsOneBackend hammers a single mounted AS looking
// glass from many goroutines. The server serializes per-LG requests
// because ASBackend's Lookup results alias its route arena until the
// next Lookup; run under -race this pins the absence of arena reuse
// races, and every response must parse to the same stable path set.
func TestConcurrentLookupsOneBackend(t *testing.T) {
	topo, e, _ := testWorld(t)
	owners := topo.PrefixOwners()
	info := topo.IXPs[0]
	members := info.SortedRSMembers()
	var vantage bgp.ASN
	var prefix bgp.Prefix
	for _, m := range members {
		for _, o := range members {
			if m != o && len(topo.ASes[o].Prefixes) > 0 {
				vantage, prefix = m, topo.ASes[o].Prefixes[0]
				break
			}
		}
		if vantage != 0 {
			break
		}
	}
	if vantage == 0 {
		t.Skip("no suitable pair")
	}

	srv := NewServer()
	srv.Mount("as", NewASBackend(e, vantage, owners, true))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &Client{BaseURL: ts.URL + "/as"}
	want, err := client.Lookup(context.Background(), prefix)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			c := &Client{BaseURL: ts.URL + "/as"}
			for i := 0; i < 20; i++ {
				got, err := c.Lookup(context.Background(), prefix)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("lookup returned %d paths, want %d", len(got), len(want))
					return
				}
				for j := range got {
					if len(got[j].Path) != len(want[j].Path) {
						errs <- fmt.Errorf("path %d length drifted under concurrency", j)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
