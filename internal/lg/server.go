package lg

import (
	"fmt"
	"net/http"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"mlpeering/internal/bgp"
)

// Server hosts one or more looking glasses under /<name>?q=<command>,
// mimicking the public web frontends the paper's scripts queried.
type Server struct {
	mux      *http.ServeMux
	backends map[string]Backend
}

// NewServer returns an empty LG server.
func NewServer() *Server {
	return &Server{mux: http.NewServeMux(), backends: make(map[string]Backend)}
}

// Mount registers a backend under the given name. Requests to one
// looking glass are served one at a time: backend results may alias
// per-backend buffers that the next query on the same backend recycles
// (ASBackend's route arena), so the query and its rendering form one
// critical section. Real LG frontends serialize harder than this —
// they rate-limit to one query per several seconds.
func (s *Server) Mount(name string, b Backend) {
	s.backends[name] = b
	var mu sync.Mutex
	s.mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		s.serve(b, w, r)
	})
}

// Handler returns the HTTP handler serving all mounted LGs.
func (s *Server) Handler() http.Handler { return s.mux }

// Names returns the mounted LG names in sorted order.
func (s *Server) Names() []string {
	out := make([]string, 0, len(s.backends))
	for n := range s.backends {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Server) serve(b Backend, w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, "% Missing query", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fields := strings.Fields(q)
	// Accept "show ip bgp ..." with small syntax variations, as real
	// LG frontends do.
	if len(fields) < 3 || fields[0] != "show" || fields[1] != "ip" || fields[2] != "bgp" {
		http.Error(w, "% Unknown command", http.StatusBadRequest)
		return
	}
	rest := fields[3:]
	switch {
	case len(rest) == 0 || rest[0] == "summary":
		renderSummary(w, b)
	case (rest[0] == "neighbors" || rest[0] == "neighbor") && len(rest) >= 3 && rest[2] == "routes":
		addr, err := netip.ParseAddr(rest[1])
		if err != nil {
			http.Error(w, "% Invalid neighbor address", http.StatusBadRequest)
			return
		}
		prefixes, err := b.NeighborRoutes(addr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		renderRoutes(w, b, prefixes)
	default:
		pfx, err := bgp.ParsePrefix(rest[0])
		if err != nil {
			// Single addresses are accepted and treated as host routes
			// by real LGs; we require explicit prefixes.
			http.Error(w, "% Invalid prefix", http.StatusBadRequest)
			return
		}
		paths, err := b.Lookup(pfx)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		renderPrefix(w, b, pfx, paths)
	}
}

func renderSummary(w http.ResponseWriter, b Backend) {
	fmt.Fprintf(w, "BGP router identifier %s, local AS number %s\n\n", b.RouterID(), b.LocalASN())
	fmt.Fprintf(w, "%-18s %3s %10s %10s\n", "Neighbor", "V", "AS", "State/PfxRcd")
	for _, p := range b.Summary() {
		fmt.Fprintf(w, "%-18s %3d %10s %10d\n", p.Addr, 4, p.ASN, p.PfxCount)
	}
}

func renderRoutes(w http.ResponseWriter, b Backend, prefixes []bgp.Prefix) {
	fmt.Fprintf(w, "BGP table version is 0, local router ID is %s\n", b.RouterID())
	fmt.Fprintf(w, "   %-20s %s\n", "Network", "Next Hop")
	for _, p := range prefixes {
		fmt.Fprintf(w, "*> %-20s %s\n", p, "0.0.0.0")
	}
	fmt.Fprintf(w, "\nTotal number of prefixes %d\n", len(prefixes))
}

func renderPrefix(w http.ResponseWriter, b Backend, pfx bgp.Prefix, paths []PathInfo) {
	if len(paths) == 0 {
		fmt.Fprintf(w, "%% Network not in table\n")
		return
	}
	fmt.Fprintf(w, "BGP routing table entry for %s\n", pfx)
	best := 0
	for i, p := range paths {
		if p.Best {
			best = i + 1
		}
	}
	fmt.Fprintf(w, "Paths: (%d available, best #%d)\n", len(paths), best)
	for _, p := range paths {
		if len(p.Path) == 0 {
			fmt.Fprintf(w, "  Local\n")
		} else {
			fmt.Fprintf(w, "  %s\n", pathString(p.Path))
		}
		fmt.Fprintf(w, "    %s from %s (%s)\n", p.NextHop, p.NextHop, b.RouterID())
		flags := "valid, external"
		if p.Best {
			flags += ", best"
		}
		fmt.Fprintf(w, "      Origin IGP, localpref 100, %s\n", flags)
		if len(p.Communities) > 0 {
			fmt.Fprintf(w, "      Community: %s\n", p.Communities)
		}
	}
}

func pathString(path []bgp.ASN) string {
	var sb strings.Builder
	for i, a := range path {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}
