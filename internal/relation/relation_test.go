package relation

import (
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

func TestInferSyntheticChain(t *testing.T) {
	// Hand-built paths over a tiny hierarchy:
	// clique {1,2}; 10,20 customers of 1 and 2; 100 customer of 10;
	// 200 customer of 20.
	paths := [][]bgp.ASN{
		{10, 1, 2, 20, 200},
		{20, 2, 1, 10, 100},
		{10, 1, 2, 20},
		{20, 2, 1, 10},
		{100, 10, 1, 2, 20, 200},
		{200, 20, 2, 1, 10, 100},
		{1, 10, 100},
		{2, 20, 200},
		{1, 2, 20, 200},
		{2, 1, 10, 100},
	}
	inf := InferPaths(paths)

	if inf.Relationship(1, 2) != RelP2P {
		t.Fatalf("clique pair: %v", inf.Relationship(1, 2))
	}
	if inf.Relationship(10, 1) != RelC2P {
		t.Fatalf("10-1: %v", inf.Relationship(10, 1))
	}
	if inf.Relationship(1, 10) != RelP2C {
		t.Fatalf("1-10 flipped: %v", inf.Relationship(1, 10))
	}
	if inf.Relationship(100, 10) != RelC2P {
		t.Fatalf("100-10: %v", inf.Relationship(100, 10))
	}
	if got := inf.Relationship(100, 200); got != RelUnknown {
		t.Fatalf("non-adjacent: %v", got)
	}

	// Cones and degrees.
	cone := inf.CustomerCone(1)
	if !cone[10] || !cone[100] || cone[20] {
		t.Fatalf("cone of 1: %v", cone)
	}
	if inf.CustomerDegree(10) != 1 || !inf.IsStub(100) || inf.IsStub(10) {
		t.Fatal("degrees")
	}
	if d := inf.TransitDegree(1); d == 0 {
		t.Fatal("transit degree of clique member")
	}
}

func TestInferHandlesPrependingAndShortPaths(t *testing.T) {
	paths := [][]bgp.ASN{
		{10, 1, 1, 1, 100}, // prepending collapses
		{7},                // too short to vote
		{},
	}
	inf := InferPaths(paths)
	if inf.Relationship(1, 1) != RelUnknown {
		t.Fatal("self link")
	}
	// The 10-1 and 1-100 links exist.
	if len(inf.Links()) != 2 {
		t.Fatalf("links = %v", inf.Links())
	}
}

func TestInferAgainstGroundTruth(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := propagate.NewEngine(topo, 0)

	// Public view: every feeder's exported best paths.
	var paths [][]bgp.ASN
	e.ForEachTree(4, func(tr *propagate.Tree) {
		for _, f := range topo.Feeders {
			r := tr.RouteFrom(f.ASN)
			if r == nil {
				continue
			}
			if f.Kind == topology.FeedCustomerOnly && r.Class < propagate.ClassCustomer {
				continue
			}
			paths = append(paths, r.Path)
		}
	})
	if len(paths) == 0 {
		t.Fatal("no public paths")
	}
	inf := InferPaths(paths)

	// Score c2p orientation accuracy over links with ground truth.
	correct, wrong, toP2P := 0, 0, 0
	for key, rel := range inf.Links() {
		truth, ok := topo.RelationshipOf(key.A, key.B)
		if !ok {
			continue // RS virtual links have no direct ground-truth edge
		}
		switch truth {
		case topology.RelC2P:
			switch rel {
			case RelC2P:
				correct++
			case RelP2C:
				wrong++
			case RelP2P:
				toP2P++
			}
		case topology.RelP2C:
			switch rel {
			case RelP2C:
				correct++
			case RelC2P:
				wrong++
			case RelP2P:
				toP2P++
			}
		}
	}
	total := correct + wrong + toP2P
	if total == 0 {
		t.Fatal("no scored links")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Fatalf("c2p orientation accuracy %.3f (correct=%d wrong=%d p2p=%d)", acc, correct, wrong, toP2P)
	}
	// Orientation flips (customer and provider swapped) must be rare:
	// the paper reports over 99%% accuracy for [32]; our simplified
	// reimplementation must at least keep flips under 2%%.
	if float64(wrong)/float64(total) > 0.02 {
		t.Fatalf("orientation flips %.3f too common", float64(wrong)/float64(total))
	}
}

func TestCliqueRecovery(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := propagate.NewEngine(topo, 0)
	var paths [][]bgp.ASN
	e.ForEachTree(4, func(tr *propagate.Tree) {
		for _, f := range topo.Feeders {
			if r := tr.RouteFrom(f.ASN); r != nil {
				paths = append(paths, r.Path)
			}
		}
	})
	inf := InferPaths(paths)

	truthT1 := make(map[bgp.ASN]bool)
	for _, asn := range topo.Order {
		if topo.ASes[asn].Tier == topology.Tier1 {
			truthT1[asn] = true
		}
	}
	hits := 0
	for _, a := range inf.Clique() {
		if truthT1[a] {
			hits++
		}
	}
	if hits < len(truthT1)/2 {
		t.Fatalf("clique recovered only %d of %d tier-1s", hits, len(truthT1))
	}
}
