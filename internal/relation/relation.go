// Package relation infers AS business relationships from observed BGP
// AS paths, in the spirit of the CAIDA AS-Rank algorithm the paper
// relies on ([32]): clique detection at the top of the hierarchy,
// transit degrees, and per-path vote assignment around the path's
// "peak". It also computes customer cones and customer degrees, used
// for RS-setter disambiguation (§4.2 case 3), the stub analysis of
// Fig. 7, and the repeller analysis of §5.5.
package relation

import (
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/paths"
	"mlpeering/internal/topology"
)

// Rel is an inferred relationship for an unordered AS pair (A < B).
type Rel int

// Relationship labels. RelAB means A is the customer (A→B is c2p).
const (
	RelUnknown Rel = iota
	RelP2P         // A and B peer
	RelC2P         // A is a customer of B
	RelP2C         // A is a provider of B
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case RelP2P:
		return "p2p"
	case RelC2P:
		return "c2p"
	case RelP2C:
		return "p2c"
	default:
		return "unknown"
	}
}

// Inference holds the inferred relationship graph.
type Inference struct {
	rels map[topology.LinkKey]Rel

	// transitDegree counts the distinct neighbors an AS transits for.
	transitDegree map[bgp.ASN]int

	customers map[bgp.ASN][]bgp.ASN // provider -> direct customers
	clique    []bgp.ASN
}

// Relationship returns the inferred relationship of the pair (a, b),
// oriented from a's perspective: RelC2P means a is b's customer.
func (inf *Inference) Relationship(a, b bgp.ASN) Rel {
	key := topology.MakeLinkKey(a, b)
	r, ok := inf.rels[key]
	if !ok {
		return RelUnknown
	}
	if a == key.A {
		return r
	}
	// Flip orientation.
	switch r {
	case RelC2P:
		return RelP2C
	case RelP2C:
		return RelC2P
	default:
		return r
	}
}

// Links returns all inferred links.
func (inf *Inference) Links() map[topology.LinkKey]Rel {
	out := make(map[topology.LinkKey]Rel, len(inf.rels))
	for k, v := range inf.rels {
		out[k] = v
	}
	return out
}

// Clique returns the inferred transit-free clique.
func (inf *Inference) Clique() []bgp.ASN {
	return append([]bgp.ASN(nil), inf.clique...)
}

// CustomerDegree returns the number of inferred direct customers.
func (inf *Inference) CustomerDegree(asn bgp.ASN) int {
	return len(inf.customers[asn])
}

// IsStub reports whether the AS has no inferred customers (Fig. 7's
// stub definition).
func (inf *Inference) IsStub(asn bgp.ASN) bool { return len(inf.customers[asn]) == 0 }

// CustomerCone returns asn plus every AS reachable via inferred p2c
// edges — the customer cone of [32].
func (inf *Inference) CustomerCone(asn bgp.ASN) map[bgp.ASN]bool {
	cone := make(map[bgp.ASN]bool)
	var walk func(a bgp.ASN)
	walk = func(a bgp.ASN) {
		if cone[a] {
			return
		}
		cone[a] = true
		for _, c := range inf.customers[a] {
			walk(c)
		}
	}
	walk(asn)
	return cone
}

// TransitDegree returns the AS's transit degree.
func (inf *Inference) TransitDegree(asn bgp.ASN) int { return inf.transitDegree[asn] }

// InferPaths runs relationship inference over a plain path slice; it
// interns the paths into a fresh store and delegates to Infer. Repeated
// paths keep their multiplicity: each occurrence votes, exactly as when
// the slice is iterated directly.
func InferPaths(pp [][]bgp.ASN) *Inference {
	s := paths.NewStore()
	ids := make([]paths.ID, len(pp))
	for i, p := range pp {
		ids[i] = s.Intern(p)
	}
	return Infer(paths.NewView(s, ids))
}

// Infer runs relationship inference over an interned set of AS paths
// (each path listed collector-side first, origin last, already
// loop-free).
func Infer(v paths.View) *Inference {
	inf := &Inference{
		rels:          make(map[topology.LinkKey]Rel),
		transitDegree: make(map[bgp.ASN]int),
		customers:     make(map[bgp.ASN][]bgp.ASN),
	}

	// Pass 0: adjacency and transit degrees.
	adjacent := make(map[topology.LinkKey]bool)
	transitNbrs := make(map[bgp.ASN]map[bgp.ASN]bool)
	for pi := 0; pi < v.Len(); pi++ {
		path := dedupAdjacent(v.Path(pi))
		for i := 0; i+1 < len(path); i++ {
			adjacent[topology.MakeLinkKey(path[i], path[i+1])] = true
		}
		for i := 1; i+1 < len(path); i++ {
			m := transitNbrs[path[i]]
			if m == nil {
				m = make(map[bgp.ASN]bool)
				transitNbrs[path[i]] = m
			}
			m[path[i-1]] = true
			m[path[i+1]] = true
		}
	}
	for a, nbrs := range transitNbrs {
		inf.transitDegree[a] = len(nbrs)
	}

	// Pass 1: clique — greedily grow a mutually-adjacent set from the
	// highest transit degrees (simplified from [32]'s Bron-Kerbosch).
	var byDegree []bgp.ASN
	for a := range inf.transitDegree {
		byDegree = append(byDegree, a)
	}
	sort.Slice(byDegree, func(i, j int) bool {
		if inf.transitDegree[byDegree[i]] != inf.transitDegree[byDegree[j]] {
			return inf.transitDegree[byDegree[i]] > inf.transitDegree[byDegree[j]]
		}
		return byDegree[i] < byDegree[j]
	})
	const cliqueScan = 24
	for _, cand := range byDegree {
		if len(inf.clique) >= cliqueScan {
			break
		}
		ok := true
		for _, member := range inf.clique {
			if !adjacent[topology.MakeLinkKey(cand, member)] {
				ok = false
				break
			}
		}
		if ok {
			inf.clique = append(inf.clique, cand)
		}
	}
	cliqueSet := make(map[bgp.ASN]bool, len(inf.clique))
	for _, a := range inf.clique {
		cliqueSet[a] = true
	}

	// Pass 2: vote c2p orientations around each path's peak.
	type vote struct{ ab, ba int } // ab: A customer of B
	votes := make(map[topology.LinkKey]*vote)
	addVote := func(customer, provider bgp.ASN) {
		key := topology.MakeLinkKey(customer, provider)
		v := votes[key]
		if v == nil {
			v = &vote{}
			votes[key] = v
		}
		if key.A == customer {
			v.ab++
		} else {
			v.ba++
		}
	}
	for pi := 0; pi < v.Len(); pi++ {
		path := dedupAdjacent(v.Path(pi))
		if len(path) < 2 {
			continue
		}
		peak := 0
		for i := 1; i < len(path); i++ {
			if cliqueSet[path[i]] && !cliqueSet[path[peak]] {
				peak = i
				continue
			}
			if cliqueSet[path[peak]] && !cliqueSet[path[i]] {
				continue
			}
			if inf.transitDegree[path[i]] > inf.transitDegree[path[peak]] {
				peak = i
			}
		}
		// Left of the peak: each hop descends toward the collector, so
		// path[i] is the provider of path[i+1]... no: collector-side
		// first means traffic flows origin -> collector; the uphill
		// direction is origin toward peak. Links right of the peak
		// (origin side) are customer->provider left-ward.
		for i := 0; i < peak; i++ {
			// path[i] is nearer the collector: it heard the route from
			// path[i+1]; between peak and collector routes flow down,
			// so path[i] is a customer of path[i+1].
			addVote(path[i], path[i+1])
		}
		for i := peak; i+1 < len(path); i++ {
			// Origin side: path[i+1] announced to path[i], its provider.
			addVote(path[i+1], path[i])
		}
	}

	// Pass 3: resolve votes. Clique pairs are p2p by construction.
	for key := range adjacent {
		if cliqueSet[key.A] && cliqueSet[key.B] {
			inf.rels[key] = RelP2P
			continue
		}
		v := votes[key]
		switch {
		case v == nil:
			inf.rels[key] = RelUnknown
		case v.ab > 0 && v.ba > 0:
			// Conflicting votes: links adjacent to the peak are usually
			// p2p (the single peer link of a valley-free path).
			if ratio(v.ab, v.ba) < 2 {
				inf.rels[key] = RelP2P
			} else if v.ab > v.ba {
				inf.rels[key] = RelC2P
			} else {
				inf.rels[key] = RelP2C
			}
		case v.ab > 0:
			inf.rels[key] = RelC2P
		case v.ba > 0:
			inf.rels[key] = RelP2C
		}
	}

	// The peak's left neighbor link is the peer link when both sides
	// have comparable transit degree; refine single-vote c2p links that
	// connect two high-degree ASes into p2p.
	for key, rel := range inf.rels {
		if rel != RelC2P && rel != RelP2C {
			continue
		}
		da, db := inf.transitDegree[key.A], inf.transitDegree[key.B]
		if da > 10 && db > 10 && ratio(da, db) < 3 && !cliqueSet[key.A] && !cliqueSet[key.B] {
			inf.rels[key] = RelP2P
		}
	}

	// Customer lists.
	for key, rel := range inf.rels {
		switch rel {
		case RelC2P:
			inf.customers[key.B] = append(inf.customers[key.B], key.A)
		case RelP2C:
			inf.customers[key.A] = append(inf.customers[key.A], key.B)
		}
	}
	for a := range inf.customers {
		sort.Slice(inf.customers[a], func(i, j int) bool { return inf.customers[a][i] < inf.customers[a][j] })
	}
	return inf
}

func ratio(a, b int) int {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 1 << 30
	}
	return a / b
}

func dedupAdjacent(path []bgp.ASN) []bgp.ASN {
	// Interned store paths are already prepending-collapsed; detect that
	// without allocating.
	clean := true
	for i := 1; i < len(path); i++ {
		if path[i] == path[i-1] {
			clean = false
			break
		}
	}
	if clean {
		return path
	}
	var out []bgp.ASN
	for _, a := range path {
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}
