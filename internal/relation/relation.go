// Package relation infers AS business relationships from observed BGP
// AS paths, in the spirit of the CAIDA AS-Rank algorithm the paper
// relies on ([32]): clique detection at the top of the hierarchy,
// transit degrees, and per-path vote assignment around the path's
// "peak". It also computes customer cones and customer degrees, used
// for RS-setter disambiguation (§4.2 case 3), the stub analysis of
// Fig. 7, and the repeller analysis of §5.5.
package relation

import (
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/paths"
	"mlpeering/internal/topology"
)

// Rel is an inferred relationship for an unordered AS pair (A < B).
type Rel int

// Relationship labels. RelAB means A is the customer (A→B is c2p).
const (
	RelUnknown Rel = iota
	RelP2P         // A and B peer
	RelC2P         // A is a customer of B
	RelP2C         // A is a provider of B
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case RelP2P:
		return "p2p"
	case RelC2P:
		return "c2p"
	case RelP2C:
		return "p2c"
	default:
		return "unknown"
	}
}

// Oracle answers relationship queries. It is implemented by the batch
// Inference and by the delta-maintained Incremental, so consumers like
// the RS-setter pinpointing of §4.2 work identically over a snapshot
// inference and an incrementally maintained one.
type Oracle interface {
	// Relationship returns the pair's relationship from a's perspective.
	Relationship(a, b bgp.ASN) Rel
	// LinkCount returns the number of inferred links (adjacent pairs).
	LinkCount() int
	// ForEachLink calls fn for every inferred link until fn returns
	// false, without materializing a map. Iteration order is undefined.
	ForEachLink(fn func(topology.LinkKey, Rel) bool)
}

// Inference holds the inferred relationship graph.
type Inference struct {
	rels map[topology.LinkKey]Rel

	// transitDegree counts the distinct neighbors an AS transits for.
	transitDegree map[bgp.ASN]int

	customers map[bgp.ASN][]bgp.ASN // provider -> direct customers
	clique    []bgp.ASN

	coneScratch map[bgp.ASN]bool // reused by ForEachConeMember
}

// Relationship returns the inferred relationship of the pair (a, b),
// oriented from a's perspective: RelC2P means a is b's customer.
func (inf *Inference) Relationship(a, b bgp.ASN) Rel {
	key := topology.MakeLinkKey(a, b)
	r, ok := inf.rels[key]
	if !ok {
		return RelUnknown
	}
	if a == key.A {
		return r
	}
	// Flip orientation.
	switch r {
	case RelC2P:
		return RelP2C
	case RelP2C:
		return RelC2P
	default:
		return r
	}
}

// Links returns all inferred links as a fresh map. Prefer ForEachLink
// on hot paths: it walks the same set without allocating.
func (inf *Inference) Links() map[topology.LinkKey]Rel {
	out := make(map[topology.LinkKey]Rel, len(inf.rels))
	for k, v := range inf.rels {
		out[k] = v
	}
	return out
}

// LinkCount returns the number of inferred links.
func (inf *Inference) LinkCount() int { return len(inf.rels) }

// ForEachLink calls fn for every inferred link until fn returns false.
// It allocates nothing; iteration order is undefined.
func (inf *Inference) ForEachLink(fn func(topology.LinkKey, Rel) bool) {
	for k, v := range inf.rels {
		if !fn(k, v) {
			return
		}
	}
}

// Clique returns the inferred transit-free clique.
func (inf *Inference) Clique() []bgp.ASN {
	return append([]bgp.ASN(nil), inf.clique...)
}

// CustomerDegree returns the number of inferred direct customers.
func (inf *Inference) CustomerDegree(asn bgp.ASN) int {
	return len(inf.customers[asn])
}

// IsStub reports whether the AS has no inferred customers (Fig. 7's
// stub definition).
func (inf *Inference) IsStub(asn bgp.ASN) bool { return len(inf.customers[asn]) == 0 }

// CustomerCone returns asn plus every AS reachable via inferred p2c
// edges — the customer cone of [32] — as a fresh map. Prefer
// ForEachConeMember on hot paths: it walks the same cone without
// allocating a map per call.
func (inf *Inference) CustomerCone(asn bgp.ASN) map[bgp.ASN]bool {
	cone := make(map[bgp.ASN]bool)
	inf.walkCone(asn, cone, func(bgp.ASN) bool { return true })
	return cone
}

// ForEachConeMember calls fn for every AS in asn's customer cone (asn
// included) until fn returns false. The visited set is an internal
// scratch map reused across calls, so after the first call the walk is
// allocation-free. Not safe for concurrent use.
func (inf *Inference) ForEachConeMember(asn bgp.ASN, fn func(bgp.ASN) bool) {
	if inf.coneScratch == nil {
		inf.coneScratch = make(map[bgp.ASN]bool)
	}
	clear(inf.coneScratch)
	inf.walkCone(asn, inf.coneScratch, fn)
}

// walkCone runs the cone DFS over the customers lists, marking visited
// ASes in seen and reporting each newly visited AS to fn. It stops
// early when fn returns false.
func (inf *Inference) walkCone(asn bgp.ASN, seen map[bgp.ASN]bool, fn func(bgp.ASN) bool) bool {
	if seen[asn] {
		return true
	}
	seen[asn] = true
	if !fn(asn) {
		return false
	}
	for _, c := range inf.customers[asn] {
		if !inf.walkCone(c, seen, fn) {
			return false
		}
	}
	return true
}

// TransitDegree returns the AS's transit degree.
func (inf *Inference) TransitDegree(asn bgp.ASN) int { return inf.transitDegree[asn] }

// InferPaths runs relationship inference over a plain path slice; it
// interns the paths into a fresh store and delegates to Infer. Repeated
// paths keep their multiplicity: each occurrence votes, exactly as when
// the slice is iterated directly.
func InferPaths(pp [][]bgp.ASN) *Inference {
	s := paths.NewStore()
	ids := make([]paths.ID, len(pp))
	for i, p := range pp {
		ids[i] = s.Intern(p)
	}
	return Infer(paths.NewView(s, ids))
}

// Infer runs relationship inference over an interned set of AS paths
// (each path listed collector-side first, origin last, already
// loop-free).
func Infer(v paths.View) *Inference {
	inf := &Inference{
		rels:          make(map[topology.LinkKey]Rel),
		transitDegree: make(map[bgp.ASN]int),
		customers:     make(map[bgp.ASN][]bgp.ASN),
	}

	// Pass 0: adjacency and transit degrees.
	adjacent := make(map[topology.LinkKey]bool)
	transitNbrs := make(map[bgp.ASN]map[bgp.ASN]bool)
	for pi := 0; pi < v.Len(); pi++ {
		path := dedupAdjacent(v.Path(pi))
		for i := 0; i+1 < len(path); i++ {
			adjacent[topology.MakeLinkKey(path[i], path[i+1])] = true
		}
		for i := 1; i+1 < len(path); i++ {
			m := transitNbrs[path[i]]
			if m == nil {
				m = make(map[bgp.ASN]bool)
				transitNbrs[path[i]] = m
			}
			m[path[i-1]] = true
			m[path[i+1]] = true
		}
	}
	for a, nbrs := range transitNbrs {
		inf.transitDegree[a] = len(nbrs)
	}

	// Pass 1: clique — greedily grow a mutually-adjacent set from the
	// highest transit degrees (simplified from [32]'s Bron-Kerbosch).
	inf.clique = greedyClique(inf.transitDegree, func(a, b bgp.ASN) bool {
		return adjacent[topology.MakeLinkKey(a, b)]
	})
	cliqueSet := make(map[bgp.ASN]bool, len(inf.clique))
	for _, a := range inf.clique {
		cliqueSet[a] = true
	}

	// Pass 2: vote c2p orientations around each path's peak.
	deg := func(a bgp.ASN) int { return inf.transitDegree[a] }
	votes := make(map[topology.LinkKey]*vote)
	addVote := func(customer, provider bgp.ASN) {
		key := topology.MakeLinkKey(customer, provider)
		v := votes[key]
		if v == nil {
			v = &vote{}
			votes[key] = v
		}
		v.add(key, customer, 1)
	}
	for pi := 0; pi < v.Len(); pi++ {
		path := dedupAdjacent(v.Path(pi))
		emitPathVotes(path, cliqueSet, deg, addVote)
	}

	// Pass 3: resolve votes (clique pairs are p2p by construction) and
	// refine single-direction c2p links between comparable high-degree
	// ASes into p2p — both folded into resolveRel, which is shared with
	// the incremental oracle.
	for key := range adjacent {
		inf.rels[key] = resolveRel(key, votes[key], cliqueSet, deg)
	}

	// Customer lists.
	for key, rel := range inf.rels {
		switch rel {
		case RelC2P:
			inf.customers[key.B] = append(inf.customers[key.B], key.A)
		case RelP2C:
			inf.customers[key.A] = append(inf.customers[key.A], key.B)
		}
	}
	for a := range inf.customers {
		sort.Slice(inf.customers[a], func(i, j int) bool { return inf.customers[a][i] < inf.customers[a][j] })
	}
	return inf
}

// vote counts c2p orientation evidence for an unordered pair: ab votes
// say A is the customer of B, ba the reverse.
type vote struct{ ab, ba int }

// add records n votes (n may be negative for refcounted maintenance)
// for customer being the customer side of key.
func (v *vote) add(key topology.LinkKey, customer bgp.ASN, n int) {
	if key.A == customer {
		v.ab += n
	} else {
		v.ba += n
	}
}

func (v *vote) empty() bool { return v.ab == 0 && v.ba == 0 }

// greedyClique grows the transit-free clique from a degree map; it
// wraps greedyCliqueFrom for the batch pass, which holds its degrees in
// a plain map.
func greedyClique(degree map[bgp.ASN]int, adjacent func(a, b bgp.ASN) bool) []bgp.ASN {
	cands := make([]bgp.ASN, 0, len(degree))
	//mlplint:ordered greedyCliqueFrom totally orders candidates by (degree desc, ASN asc)
	for a := range degree {
		cands = append(cands, a)
	}
	return greedyCliqueFrom(cands, func(a bgp.ASN) int { return degree[a] }, adjacent)
}

// greedyCliqueFrom grows the transit-free clique from the highest
// transit degrees: candidates sorted in place by (degree desc, ASN
// asc), each admitted when adjacent to every member already chosen,
// scanning until the clique reaches cliqueScan members. The sort is a
// total order, so the result is deterministic for any candidate
// collection order.
func greedyCliqueFrom(cands []bgp.ASN, degree func(bgp.ASN) int, adjacent func(a, b bgp.ASN) bool) []bgp.ASN {
	sort.Slice(cands, func(i, j int) bool {
		if degree(cands[i]) != degree(cands[j]) {
			return degree(cands[i]) > degree(cands[j])
		}
		return cands[i] < cands[j]
	})
	const cliqueScan = 24
	var clique []bgp.ASN
	for _, cand := range cands {
		if len(clique) >= cliqueScan {
			break
		}
		ok := true
		for _, member := range clique {
			if !adjacent(cand, member) {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, cand)
		}
	}
	return clique
}

// pathPeak locates the path's "peak": the first clique member, or
// failing that the hop with the highest transit degree (first wins
// ties).
func pathPeak(path []bgp.ASN, cliqueSet map[bgp.ASN]bool, degree func(bgp.ASN) int) int {
	peak := 0
	for i := 1; i < len(path); i++ {
		if cliqueSet[path[i]] && !cliqueSet[path[peak]] {
			peak = i
			continue
		}
		if cliqueSet[path[peak]] && !cliqueSet[path[i]] {
			continue
		}
		if degree(path[i]) > degree(path[peak]) {
			peak = i
		}
	}
	return peak
}

// emitPathVotes generates one path's c2p votes around its peak. The
// path must already be prepending-collapsed. Collector-side first means
// traffic flows origin -> collector: links between the peak and the
// collector flow down (the collector-side AS is the customer), links on
// the origin side are announced customer -> provider left-ward.
func emitPathVotes(path []bgp.ASN, cliqueSet map[bgp.ASN]bool, degree func(bgp.ASN) int, emit func(customer, provider bgp.ASN)) {
	if len(path) < 2 {
		return
	}
	peak := pathPeak(path, cliqueSet, degree)
	for i := 0; i < peak; i++ {
		// path[i] is nearer the collector: it heard the route from
		// path[i+1], so path[i] is a customer of path[i+1].
		emit(path[i], path[i+1])
	}
	for i := peak; i+1 < len(path); i++ {
		// Origin side: path[i+1] announced to path[i], its provider.
		emit(path[i+1], path[i])
	}
}

// resolveRel labels one adjacent pair from its votes, clique membership
// and transit degrees: clique pairs are p2p by construction, conflicting
// votes within a 2x ratio are the peak-adjacent peer link, and
// single-direction c2p links between comparable high-degree non-clique
// ASes are refined into p2p. v may be nil (adjacent but never voted).
func resolveRel(key topology.LinkKey, v *vote, cliqueSet map[bgp.ASN]bool, degree func(bgp.ASN) int) Rel {
	aClique, bClique := cliqueSet[key.A], cliqueSet[key.B]
	if aClique && bClique {
		return RelP2P
	}
	var rel Rel
	switch {
	case v == nil || v.empty():
		return RelUnknown
	case v.ab > 0 && v.ba > 0:
		// Conflicting votes: links adjacent to the peak are usually
		// p2p (the single peer link of a valley-free path).
		if ratio(v.ab, v.ba) < 2 {
			return RelP2P
		} else if v.ab > v.ba {
			rel = RelC2P
		} else {
			rel = RelP2C
		}
	case v.ab > 0:
		rel = RelC2P
	default:
		rel = RelP2C
	}
	da, db := degree(key.A), degree(key.B)
	if da > 10 && db > 10 && ratio(da, db) < 3 && !aClique && !bClique {
		return RelP2P
	}
	return rel
}

func ratio(a, b int) int {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 1 << 30
	}
	return a / b
}

func dedupAdjacent(path []bgp.ASN) []bgp.ASN {
	// Interned store paths are already prepending-collapsed; detect that
	// without allocating.
	clean := true
	for i := 1; i < len(path); i++ {
		if path[i] == path[i-1] {
			clean = false
			break
		}
	}
	if clean {
		return path
	}
	var out []bgp.ASN
	for _, a := range path {
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}
