// Delta-maintained relationship inference: the windowed passive
// pipeline re-runs AS-relationship inference at every window close, but
// between adjacent windows only a handful of distinct AS paths enter or
// leave the live table. Incremental maintains the batch algorithm's
// aggregates — adjacency, transit-neighbor counts, per-pair orientation
// votes — as refcounted counters updated by AddPath/RemovePath, and
// re-derives only what the deltas invalidated at Commit: the greedy
// clique (cheap, O(ASes log ASes)) and the vote contributions of paths
// whose hops changed transit degree or clique membership. Relationship
// labels are resolved on demand from the maintained counters through
// the same resolveRel the batch Infer uses, so an Incremental that saw
// AddPath for exactly the live path set answers every query identically
// to a fresh Infer over that set.
package relation

import (
	"mlpeering/internal/bgp"
	"mlpeering/internal/paths"
	"mlpeering/internal/topology"
)

// transitPair identifies one (interior AS, neighbor) adjacency used for
// transit-degree accounting.
type transitPair struct {
	mid, nbr bgp.ASN
}

// voteEdge is one cached vote a path contributed: customer side of key.
type voteEdge struct {
	key      topology.LinkKey
	customer bgp.ASN
}

// Incremental is a delta-maintained relationship inference over the
// distinct paths of an interned store. AddPath/RemovePath apply
// structural deltas immediately; Commit re-derives the clique and
// re-votes invalidated paths. Queries are only valid after a Commit
// with no later Add/Remove. Not safe for concurrent use.
type Incremental struct {
	store *paths.Store

	adj     map[topology.LinkKey]int // refcount: paths containing the edge
	transit map[transitPair]int      // refcount: paths where mid transits for nbr
	degree  map[bgp.ASN]int          // distinct transit neighbors (len of live pairs)
	votes   map[topology.LinkKey]*vote

	// touchedLinks collects the links whose label inputs (votes,
	// endpoint degree, clique membership, adjacency) may have moved
	// since the last Commit; p2pSet holds the links labelled p2p as of
	// that Commit. Together they maintain P2PCount as a delta counter:
	// Commit relabels only the touched links instead of iterating the
	// whole link set.
	touchedLinks map[topology.LinkKey]bool
	p2pSet       map[topology.LinkKey]bool

	pathVotes map[paths.ID][]voteEdge       // cached contribution of each voted path
	pathsByAS map[bgp.ASN]map[paths.ID]bool // hop -> live paths (vote invalidation index)
	pending   map[paths.ID]bool             // added since last Commit, not yet voted
	touched   map[bgp.ASN]int               // AS -> degree at first touch since last Commit

	clique    []bgp.ASN
	cliqueSet map[bgp.ASN]bool

	revoteScratch map[paths.ID]bool
}

// NewIncremental returns an empty incremental inference over store.
func NewIncremental(store *paths.Store) *Incremental {
	return &Incremental{
		store:         store,
		adj:           make(map[topology.LinkKey]int),
		transit:       make(map[transitPair]int),
		degree:        make(map[bgp.ASN]int),
		votes:         make(map[topology.LinkKey]*vote),
		pathVotes:     make(map[paths.ID][]voteEdge),
		pathsByAS:     make(map[bgp.ASN]map[paths.ID]bool),
		pending:       make(map[paths.ID]bool),
		touched:       make(map[bgp.ASN]int),
		cliqueSet:     make(map[bgp.ASN]bool),
		revoteScratch: make(map[paths.ID]bool),
		touchedLinks:  make(map[topology.LinkKey]bool),
		p2pSet:        make(map[topology.LinkKey]bool),
	}
}

// touchDegree records a's pre-delta degree the first time it moves
// inside a Commit cycle, so Commit can tell real changes from churn
// that cancelled out.
func (inc *Incremental) touchDegree(a bgp.ASN) {
	if _, ok := inc.touched[a]; !ok {
		inc.touched[a] = inc.degree[a]
	}
}

// AddPath registers one distinct path as live: adjacency and transit
// counts move immediately, voting is deferred to Commit (votes depend
// on the post-delta clique and degrees).
func (inc *Incremental) AddPath(id paths.ID) {
	path := dedupAdjacent(inc.store.Path(id))
	for i := 0; i+1 < len(path); i++ {
		inc.adj[topology.MakeLinkKey(path[i], path[i+1])]++
	}
	for i := 1; i+1 < len(path); i++ {
		for _, nbr := range [2]bgp.ASN{path[i-1], path[i+1]} {
			p := transitPair{path[i], nbr}
			inc.transit[p]++
			if inc.transit[p] == 1 {
				inc.touchDegree(path[i])
				inc.degree[path[i]]++
			}
		}
	}
	for _, a := range path {
		m := inc.pathsByAS[a]
		if m == nil {
			m = make(map[paths.ID]bool)
			inc.pathsByAS[a] = m
		}
		m[id] = true
	}
	inc.pending[id] = true
}

// RemovePath unregisters a live path, rolling back its structural
// counts and any cached vote contribution.
func (inc *Incremental) RemovePath(id paths.ID) {
	path := dedupAdjacent(inc.store.Path(id))
	for i := 0; i+1 < len(path); i++ {
		key := topology.MakeLinkKey(path[i], path[i+1])
		if inc.adj[key]--; inc.adj[key] == 0 {
			delete(inc.adj, key)
		}
	}
	for i := 1; i+1 < len(path); i++ {
		for _, nbr := range [2]bgp.ASN{path[i-1], path[i+1]} {
			p := transitPair{path[i], nbr}
			if inc.transit[p]--; inc.transit[p] == 0 {
				delete(inc.transit, p)
				inc.touchDegree(path[i])
				if inc.degree[path[i]]--; inc.degree[path[i]] == 0 {
					delete(inc.degree, path[i])
				}
			}
		}
	}
	for _, a := range path {
		if m := inc.pathsByAS[a]; m != nil {
			delete(m, id)
			if len(m) == 0 {
				delete(inc.pathsByAS, a)
			}
		}
	}
	delete(inc.pending, id)
	inc.subtractVotes(id)
}

// subtractVotes rolls back id's cached vote contribution. Every edge
// whose vote moves is marked touched so the next Commit relabels it.
func (inc *Incremental) subtractVotes(id paths.ID) {
	for _, e := range inc.pathVotes[id] {
		v := inc.votes[e.key]
		v.add(e.key, e.customer, -1)
		if v.empty() {
			delete(inc.votes, e.key)
		}
		inc.touchedLinks[e.key] = true
	}
	delete(inc.pathVotes, id)
}

// Commit re-derives the clique from the maintained degrees and re-votes
// every path the deltas invalidated: paths added since the last Commit,
// plus live paths containing an AS whose transit degree or clique
// membership changed. After Commit, queries answer exactly as a batch
// Infer over the current live path set.
func (inc *Incremental) Commit() {
	newClique := greedyClique(inc.degree, func(a, b bgp.ASN) bool {
		return inc.adj[topology.MakeLinkKey(a, b)] > 0
	})
	newSet := make(map[bgp.ASN]bool, len(newClique))
	for _, a := range newClique {
		newSet[a] = true
	}

	revote := inc.revoteScratch
	clear(revote)
	for id := range inc.pending {
		revote[id] = true
	}
	invalidate := func(a bgp.ASN) {
		for id := range inc.pathsByAS[a] {
			revote[id] = true
		}
	}
	for a, old := range inc.touched {
		if inc.degree[a] != old {
			invalidate(a)
		}
	}
	for _, a := range inc.clique {
		if !newSet[a] {
			invalidate(a)
		}
	}
	for _, a := range newClique {
		if !inc.cliqueSet[a] {
			invalidate(a)
		}
	}

	inc.clique, inc.cliqueSet = newClique, newSet
	for id := range revote {
		inc.subtractVotes(id)
		path := dedupAdjacent(inc.store.Path(id))
		var edges []voteEdge
		emitPathVotes(path, inc.cliqueSet, inc.degree, func(customer, provider bgp.ASN) {
			key := topology.MakeLinkKey(customer, provider)
			v := inc.votes[key]
			if v == nil {
				v = &vote{}
				inc.votes[key] = v
			}
			v.add(key, customer, 1)
			inc.touchedLinks[key] = true
			edges = append(edges, voteEdge{key: key, customer: customer})
		})
		if len(edges) > 0 {
			inc.pathVotes[id] = edges
		}
	}
	clear(inc.pending)
	clear(inc.touched)

	// Reconcile the p2p counter: every link whose label inputs moved —
	// vote deltas directly, endpoint degree or clique flips through the
	// re-vote of every live path containing the flipped AS — is in
	// touchedLinks; relabel exactly those. Links never touched kept
	// their votes, degrees and clique context, so their label is
	// unchanged by construction.
	for key := range inc.touchedLinks {
		p2p := inc.adj[key] > 0 && resolveRel(key, inc.votes[key], inc.cliqueSet, inc.degree) == RelP2P
		if p2p {
			inc.p2pSet[key] = true
		} else {
			delete(inc.p2pSet, key)
		}
	}
	clear(inc.touchedLinks)
}

// Relationship returns the pair's relationship from a's perspective,
// resolved on demand from the maintained counters.
func (inc *Incremental) Relationship(a, b bgp.ASN) Rel {
	key := topology.MakeLinkKey(a, b)
	if inc.adj[key] == 0 {
		return RelUnknown
	}
	r := resolveRel(key, inc.votes[key], inc.cliqueSet, inc.degree)
	if a == key.A {
		return r
	}
	switch r {
	case RelC2P:
		return RelP2C
	case RelP2C:
		return RelC2P
	default:
		return r
	}
}

// LinkCount returns the number of inferred links (adjacent pairs).
func (inc *Incremental) LinkCount() int { return len(inc.adj) }

// P2PCount returns the number of p2p-labelled links, maintained as a
// delta counter: Commit relabels only the links its deltas touched.
// Like every query, it is only valid after a Commit with no later
// AddPath/RemovePath.
func (inc *Incremental) P2PCount() int { return len(inc.p2pSet) }

// ForEachLink calls fn for every inferred link until fn returns false,
// resolving each label on demand. Iteration order is undefined.
func (inc *Incremental) ForEachLink(fn func(topology.LinkKey, Rel) bool) {
	for key := range inc.adj {
		if !fn(key, resolveRel(key, inc.votes[key], inc.cliqueSet, inc.degree)) {
			return
		}
	}
}

// Clique returns the current transit-free clique.
func (inc *Incremental) Clique() []bgp.ASN {
	return append([]bgp.ASN(nil), inc.clique...)
}
