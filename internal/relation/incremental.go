// Delta-maintained relationship inference: the windowed passive
// pipeline re-runs AS-relationship inference at every window close, but
// between adjacent windows only a handful of distinct AS paths enter or
// leave the live table. Incremental maintains the batch algorithm's
// aggregates — adjacency, transit-neighbor counts, per-pair orientation
// votes — as refcounted counters, and re-derives only what the window's
// deltas invalidated at Commit: the greedy clique (cheap, O(ASes log
// ASes)) and the vote contributions of paths whose hops changed transit
// degree or clique membership. Relationship labels are resolved on
// demand from the maintained counters through the same resolveRel the
// batch Infer uses, so an Incremental that saw AddPath for exactly the
// live path set answers every query identically to a fresh Infer over
// that set.
//
// The counters are split across a fixed number of shards — link-keyed
// state (adjacency, votes, touched set, p2p labels) by link-key hash,
// AS-keyed state (transit pairs, degrees, path index) by ASN hash — so
// Commit can fan its work out on a pool: AddPath/RemovePath only queue
// the transition, and Commit nets the queue, buckets the resulting
// micro-ops per shard in queue order, and applies every shard's bucket
// concurrently. The shard count is a constant, shard assignment is a
// pure hash, and each shard replays its ops in the sequentially
// determined order, so the committed state is bit-identical for any
// worker count — the same discipline as the generator's parallel
// stages. Pure per-path re-votes fan out the same way and merge through
// ordered buckets.
package relation

import (
	"slices"

	"mlpeering/internal/bgp"
	"mlpeering/internal/par"
	"mlpeering/internal/paths"
	"mlpeering/internal/topology"
)

// relShardCount fixes how many shards split the link- and AS-keyed
// state. It is a constant independent of the worker count, so shard
// assignment — and with it every per-shard op order — never varies
// with parallelism.
const relShardCount = 32

// linkShardOf hashes an unordered pair key to its shard.
func linkShardOf(key topology.LinkKey) int {
	h := uint32(key.A)*0x9E3779B1 ^ uint32(key.B)*0x85EBCA6B
	return int(h >> 27)
}

// asShardOf hashes an AS to its shard.
func asShardOf(a bgp.ASN) int {
	return int(uint32(a) * 0x9E3779B1 >> 27)
}

// transitPair identifies one (interior AS, neighbor) adjacency used for
// transit-degree accounting.
type transitPair struct {
	mid, nbr bgp.ASN
}

// voteEdge is one cached vote a path contributed: customer side of key.
type voteEdge struct {
	key      topology.LinkKey
	customer bgp.ASN
}

// pathDelta is one queued AddPath/RemovePath transition.
type pathDelta struct {
	id    paths.ID
	delta int
}

// adjOp is one refcount move of a link's adjacency counter.
type adjOp struct {
	key   topology.LinkKey
	delta int
}

// voteOp is one orientation-vote move for a link.
type voteOp struct {
	key      topology.LinkKey
	customer bgp.ASN
	delta    int
}

// transOp is one refcount move of a (mid, nbr) transit pair; mid's
// degree moves with the pair's 0↔1 transitions.
type transOp struct {
	mid, nbr bgp.ASN
	delta    int
}

// byASOp is one membership move of the hop -> live-paths index.
type byASOp struct {
	asn bgp.ASN
	id  paths.ID
	add bool
}

// linkShard owns every link whose key hashes to it: the adjacency
// refcounts, the orientation votes, the set of links touched since the
// last reconcile and the p2p label set. ops buffers are filled
// sequentially in deterministic order and drained by the shard's owner
// during a parallel phase.
type linkShard struct {
	adj     map[topology.LinkKey]int // refcount: paths containing the edge
	votes   map[topology.LinkKey]*vote
	touched map[topology.LinkKey]bool
	p2p     map[topology.LinkKey]bool

	adjOps  []adjOp
	voteOps []voteOp
}

// applyAdj replays the buffered adjacency refcount moves in order.
//
//mlplint:allocfree
func (sh *linkShard) applyAdj() {
	for _, op := range sh.adjOps {
		if c := sh.adj[op.key] + op.delta; c == 0 {
			delete(sh.adj, op.key)
		} else {
			sh.adj[op.key] = c
		}
	}
	sh.adjOps = sh.adjOps[:0]
}

// applyVotes replays the buffered vote moves in order, marking every
// moved link touched so the reconcile pass relabels it.
//
//mlplint:allocfree
func (sh *linkShard) applyVotes() {
	for _, op := range sh.voteOps {
		v := sh.votes[op.key]
		if v == nil {
			//mlplint:allocfree one vote record per link lifetime; steady-state moves hit the cached record
			v = &vote{}
			sh.votes[op.key] = v
		}
		v.add(op.key, op.customer, op.delta)
		if v.empty() {
			delete(sh.votes, op.key)
		}
		sh.touched[op.key] = true
	}
	sh.voteOps = sh.voteOps[:0]
}

// asShard owns every AS whose number hashes to it: transit-pair
// refcounts, the derived transit degrees, the pre-delta degree recorded
// at first touch per Commit, and the hop -> live-paths invalidation
// index.
type asShard struct {
	transit    map[transitPair]int // refcount: paths where mid transits for nbr
	degree     map[bgp.ASN]int     // distinct transit neighbors (len of live pairs)
	touchedDeg map[bgp.ASN]int     // AS -> degree at first touch since last Commit
	pathsByAS  map[bgp.ASN]map[paths.ID]bool

	transOps []transOp
	byASOps  []byASOp
}

// touchDegree records a's pre-delta degree the first time it moves
// inside a Commit cycle, so Commit can tell real changes from churn
// that cancelled out.
func (sh *asShard) touchDegree(a bgp.ASN) {
	if _, ok := sh.touchedDeg[a]; !ok {
		sh.touchedDeg[a] = sh.degree[a]
	}
}

// applyOps replays the buffered transit and path-index moves in order.
//
//mlplint:allocfree
func (sh *asShard) applyOps() {
	for _, op := range sh.transOps {
		p := transitPair{op.mid, op.nbr}
		if op.delta > 0 {
			sh.transit[p]++
			if sh.transit[p] == 1 {
				sh.touchDegree(op.mid)
				sh.degree[op.mid]++
			}
		} else if sh.transit[p]--; sh.transit[p] == 0 {
			delete(sh.transit, p)
			sh.touchDegree(op.mid)
			if sh.degree[op.mid]--; sh.degree[op.mid] == 0 {
				delete(sh.degree, op.mid)
			}
		}
	}
	sh.transOps = sh.transOps[:0]
	for _, op := range sh.byASOps {
		m := sh.pathsByAS[op.asn]
		if op.add {
			if m == nil {
				//mlplint:allocfree one index map per AS first touched; steady-state moves reuse it
				m = make(map[paths.ID]bool)
				sh.pathsByAS[op.asn] = m
			}
			m[op.id] = true
		} else if m != nil {
			delete(m, op.id)
			if len(m) == 0 {
				delete(sh.pathsByAS, op.asn)
			}
		}
	}
	sh.byASOps = sh.byASOps[:0]
}

// Incremental is a delta-maintained relationship inference over the
// distinct paths of an interned store. AddPath/RemovePath queue
// structural deltas; Commit nets and applies them, re-derives the
// clique and re-votes invalidated paths on up to Workers goroutines.
// Queries are only valid after a Commit with no later Add/Remove, and
// answer from the last committed state. Not safe for concurrent use.
type Incremental struct {
	store *paths.Store

	// Workers caps the Commit worker pool; 0 means GOMAXPROCS. The
	// committed state is bit-identical for any value.
	Workers int

	links [relShardCount]linkShard
	byAS  [relShardCount]asShard

	pathVotes map[paths.ID][]voteEdge // cached contribution of each voted path
	queue     []pathDelta             // transitions since the last Commit

	clique    []bgp.ASN
	cliqueSet map[bgp.ASN]bool

	// Commit scratch.
	net           map[paths.ID]int
	netOrder      []paths.ID
	revoteScratch map[paths.ID]bool
	revoteIDs     []paths.ID
	voteScratch   [][]voteEdge
	candScratch   []bgp.ASN
}

// NewIncremental returns an empty incremental inference over store.
func NewIncremental(store *paths.Store) *Incremental {
	inc := &Incremental{
		store:         store,
		pathVotes:     make(map[paths.ID][]voteEdge),
		cliqueSet:     make(map[bgp.ASN]bool),
		net:           make(map[paths.ID]int),
		revoteScratch: make(map[paths.ID]bool),
	}
	for s := range inc.links {
		inc.links[s] = linkShard{
			adj:     make(map[topology.LinkKey]int),
			votes:   make(map[topology.LinkKey]*vote),
			touched: make(map[topology.LinkKey]bool),
			p2p:     make(map[topology.LinkKey]bool),
		}
		inc.byAS[s] = asShard{
			transit:    make(map[transitPair]int),
			degree:     make(map[bgp.ASN]int),
			touchedDeg: make(map[bgp.ASN]int),
			pathsByAS:  make(map[bgp.ASN]map[paths.ID]bool),
		}
	}
	return inc
}

// degreeOf reads an AS's transit degree across the shards.
func (inc *Incremental) degreeOf(a bgp.ASN) int {
	return inc.byAS[asShardOf(a)].degree[a]
}

// adjCount reads a link's adjacency refcount across the shards.
func (inc *Incremental) adjCount(key topology.LinkKey) int {
	return inc.links[linkShardOf(key)].adj[key]
}

// AddPath registers one distinct path as live. The transition is only
// queued: counters move at the next Commit, and queries keep answering
// from the last committed state until then.
func (inc *Incremental) AddPath(id paths.ID) {
	inc.queue = append(inc.queue, pathDelta{id: id, delta: 1})
}

// RemovePath unregisters a live path; like AddPath, the rollback is
// deferred to the next Commit.
func (inc *Incremental) RemovePath(id paths.ID) {
	inc.queue = append(inc.queue, pathDelta{id: id, delta: -1})
}

// Commit applies the queued path transitions and re-derives everything
// they invalidated, in five ordered phases: (1) net the queue — a path
// that flapped in and out contributes nothing; (2) bucket structural
// micro-ops per shard in queue order and apply every shard's bucket
// concurrently; (3) re-derive the clique from the merged degrees
// (sequential — its greedy scan is inherently ordered); (4) re-vote
// invalidated paths — pure per-path vote computation fans out over the
// sorted id list, the resulting vote moves bucket sequentially and
// apply concurrently per link shard; (5) relabel the touched links per
// shard. Sequential phases fix every order the parallel phases replay,
// so the committed state is identical for any worker count. After
// Commit, queries answer exactly as a batch Infer over the live set.
func (inc *Incremental) Commit() {
	workers := par.Workers(inc.Workers)

	// Phase 1: net the queued transitions per path id, keeping
	// first-touch order for deterministic bucketing.
	for _, d := range inc.queue {
		if _, ok := inc.net[d.id]; !ok {
			inc.netOrder = append(inc.netOrder, d.id)
		}
		inc.net[d.id] += d.delta
	}
	inc.queue = inc.queue[:0]

	revote := inc.revoteScratch
	clear(revote)

	// Phase 2a: bucket structural micro-ops by shard, in netted queue
	// order. Removed paths also queue the subtraction of their cached
	// vote contribution.
	for _, id := range inc.netOrder {
		delta := inc.net[id]
		if delta == 0 {
			continue
		}
		path := dedupAdjacent(inc.store.Path(id))
		for i := 0; i+1 < len(path); i++ {
			key := topology.MakeLinkKey(path[i], path[i+1])
			sh := &inc.links[linkShardOf(key)]
			sh.adjOps = append(sh.adjOps, adjOp{key: key, delta: delta})
		}
		for i := 1; i+1 < len(path); i++ {
			sh := &inc.byAS[asShardOf(path[i])]
			sh.transOps = append(sh.transOps,
				transOp{mid: path[i], nbr: path[i-1], delta: delta},
				transOp{mid: path[i], nbr: path[i+1], delta: delta})
		}
		for _, a := range path {
			sh := &inc.byAS[asShardOf(a)]
			sh.byASOps = append(sh.byASOps, byASOp{asn: a, id: id, add: delta > 0})
		}
		if delta > 0 {
			revote[id] = true
		} else {
			for _, e := range inc.pathVotes[id] {
				sh := &inc.links[linkShardOf(e.key)]
				sh.voteOps = append(sh.voteOps, voteOp{key: e.key, customer: e.customer, delta: -1})
			}
			delete(inc.pathVotes, id)
		}
	}
	clear(inc.net)
	inc.netOrder = inc.netOrder[:0]

	// Phase 2b: apply every shard's structural bucket concurrently.
	// Shards are disjoint and each replays its own deterministic order.
	par.Run(workers, 2*relShardCount, func(t int) {
		if t < relShardCount {
			inc.links[t].applyAdj()
			inc.links[t].applyVotes()
		} else {
			inc.byAS[t-relShardCount].applyOps()
		}
	})

	// Phase 3: re-derive the clique from the merged candidate set. The
	// greedy scan totally orders candidates by (degree desc, ASN asc),
	// so the shard collection order is irrelevant.
	cands := inc.candScratch[:0]
	for s := range inc.byAS {
		//mlplint:ordered greedyCliqueFrom totally orders candidates by (degree desc, ASN asc)
		for a := range inc.byAS[s].degree {
			cands = append(cands, a)
		}
	}
	newClique := greedyCliqueFrom(cands, inc.degreeOf, func(a, b bgp.ASN) bool {
		return inc.adjCount(topology.MakeLinkKey(a, b)) > 0
	})
	inc.candScratch = cands[:0]
	newSet := make(map[bgp.ASN]bool, len(newClique))
	for _, a := range newClique {
		newSet[a] = true
	}

	// Phase 4a: build the revote set — pending adds, live paths through
	// an AS whose degree actually changed, and live paths through a
	// clique-membership flip — then sort it into a total order.
	invalidate := func(a bgp.ASN) {
		for id := range inc.byAS[asShardOf(a)].pathsByAS[a] {
			revote[id] = true
		}
	}
	for s := range inc.byAS {
		sh := &inc.byAS[s]
		for a, old := range sh.touchedDeg {
			if sh.degree[a] != old {
				invalidate(a)
			}
		}
		clear(sh.touchedDeg)
	}
	for _, a := range inc.clique {
		if !newSet[a] {
			invalidate(a)
		}
	}
	for _, a := range newClique {
		if !inc.cliqueSet[a] {
			invalidate(a)
		}
	}
	inc.clique, inc.cliqueSet = newClique, newSet

	ids := inc.revoteIDs[:0]
	for id := range revote {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	inc.revoteIDs = ids[:0]

	// Phase 4b: recompute every revoted path's vote edges — a pure
	// function of the path, the new clique and the settled degrees —
	// on the pool.
	if cap(inc.voteScratch) < len(ids) {
		inc.voteScratch = make([][]voteEdge, len(ids))
	}
	edgesOf := inc.voteScratch[:len(ids)]
	par.Run(workers, len(ids), func(i int) {
		path := dedupAdjacent(inc.store.Path(ids[i]))
		var edges []voteEdge
		emitPathVotes(path, inc.cliqueSet, inc.degreeOf, func(customer, provider bgp.ASN) {
			edges = append(edges, voteEdge{key: topology.MakeLinkKey(customer, provider), customer: customer})
		})
		edgesOf[i] = edges
	})

	// Phase 4c: bucket the vote moves sequentially in sorted-id order —
	// old contribution out, new contribution in — and apply per shard.
	for i, id := range ids {
		for _, e := range inc.pathVotes[id] {
			sh := &inc.links[linkShardOf(e.key)]
			sh.voteOps = append(sh.voteOps, voteOp{key: e.key, customer: e.customer, delta: -1})
		}
		edges := edgesOf[i]
		for _, e := range edges {
			sh := &inc.links[linkShardOf(e.key)]
			sh.voteOps = append(sh.voteOps, voteOp{key: e.key, customer: e.customer, delta: 1})
		}
		if len(edges) > 0 {
			inc.pathVotes[id] = edges
		} else {
			delete(inc.pathVotes, id)
		}
		edgesOf[i] = nil
	}

	// Phase 5: apply the vote moves and reconcile the p2p labels per
	// link shard. Every link whose label inputs moved — vote deltas
	// directly, endpoint degree or clique flips through the re-vote of
	// every live path containing the flipped AS — is in the shard's
	// touched set; relabel exactly those. Links never touched kept
	// their votes, degrees and clique context, so their label is
	// unchanged by construction.
	par.Run(workers, relShardCount, func(s int) {
		sh := &inc.links[s]
		sh.applyVotes()
		for key := range sh.touched {
			if sh.adj[key] > 0 && resolveRel(key, sh.votes[key], inc.cliqueSet, inc.degreeOf) == RelP2P {
				sh.p2p[key] = true
			} else {
				delete(sh.p2p, key)
			}
		}
		clear(sh.touched)
	})
}

// Relationship returns the pair's relationship from a's perspective,
// resolved on demand from the maintained counters.
func (inc *Incremental) Relationship(a, b bgp.ASN) Rel {
	key := topology.MakeLinkKey(a, b)
	sh := &inc.links[linkShardOf(key)]
	if sh.adj[key] == 0 {
		return RelUnknown
	}
	r := resolveRel(key, sh.votes[key], inc.cliqueSet, inc.degreeOf)
	if a == key.A {
		return r
	}
	switch r {
	case RelC2P:
		return RelP2C
	case RelP2C:
		return RelC2P
	default:
		return r
	}
}

// LinkCount returns the number of inferred links (adjacent pairs).
func (inc *Incremental) LinkCount() int {
	n := 0
	for s := range inc.links {
		n += len(inc.links[s].adj)
	}
	return n
}

// P2PCount returns the number of p2p-labelled links, maintained as a
// delta counter: Commit relabels only the links its deltas touched.
// Like every query, it is only valid after a Commit with no later
// AddPath/RemovePath.
func (inc *Incremental) P2PCount() int {
	n := 0
	for s := range inc.links {
		n += len(inc.links[s].p2p)
	}
	return n
}

// ForEachLink calls fn for every inferred link until fn returns false,
// resolving each label on demand. Iteration order is undefined.
func (inc *Incremental) ForEachLink(fn func(topology.LinkKey, Rel) bool) {
	for s := range inc.links {
		sh := &inc.links[s]
		for key := range sh.adj {
			if !fn(key, resolveRel(key, sh.votes[key], inc.cliqueSet, inc.degreeOf)) {
				return
			}
		}
	}
}

// Clique returns the current transit-free clique.
func (inc *Incremental) Clique() []bgp.ASN {
	return append([]bgp.ASN(nil), inc.clique...)
}

// voteCount, transitCount, degreeCount and touchedCount sum the sharded
// maps; they exist for the drain assertions in tests.
func (inc *Incremental) voteCount() int {
	n := 0
	for s := range inc.links {
		n += len(inc.links[s].votes)
	}
	return n
}

func (inc *Incremental) transitCount() int {
	n := 0
	for s := range inc.byAS {
		n += len(inc.byAS[s].transit)
	}
	return n
}

func (inc *Incremental) degreeCount() int {
	n := 0
	for s := range inc.byAS {
		n += len(inc.byAS[s].degree)
	}
	return n
}

func (inc *Incremental) touchedCount() int {
	n := 0
	for s := range inc.links {
		n += len(inc.links[s].touched)
	}
	return n
}
