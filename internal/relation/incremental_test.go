package relation

import (
	"math/rand"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/paths"
	"mlpeering/internal/topology"
)

// synthPaths builds a small hierarchical path population: a clique of
// high-degree cores, mid-tier transits, and stub origins, giving the
// inference real peaks, conflicting votes and degree ties to chew on.
func synthPaths(rng *rand.Rand, n int) [][]bgp.ASN {
	cores := []bgp.ASN{10, 11, 12, 13}
	mids := []bgp.ASN{100, 101, 102, 103, 104, 105, 106, 107}
	stubs := make([]bgp.ASN, 40)
	for i := range stubs {
		stubs[i] = bgp.ASN(1000 + i)
	}
	var out [][]bgp.ASN
	for i := 0; i < n; i++ {
		collectorSide := mids[rng.Intn(len(mids))]
		core1 := cores[rng.Intn(len(cores))]
		mid := mids[rng.Intn(len(mids))]
		origin := stubs[rng.Intn(len(stubs))]
		switch rng.Intn(4) {
		case 0: // mid - core - mid - stub
			core2 := cores[rng.Intn(len(cores))]
			out = append(out, []bgp.ASN{collectorSide, core1, core2, mid, origin})
		case 1: // mid - core - mid - stub (single core)
			out = append(out, []bgp.ASN{collectorSide, core1, mid, origin})
		case 2: // mid - mid - stub (no clique crossing)
			out = append(out, []bgp.ASN{collectorSide, mid, origin})
		default: // direct stub
			out = append(out, []bgp.ASN{collectorSide, origin})
		}
	}
	return out
}

// assertOracleEquivalence compares the incremental oracle against a
// fresh batch Infer over the same live path set: clique, link count,
// every link label from ForEachLink, and Relationship in both
// orientations.
func assertOracleEquivalence(t *testing.T, step int, store *paths.Store, live map[paths.ID]bool, inc *Incremental) {
	t.Helper()
	var ids []paths.ID
	for id := range live {
		ids = append(ids, id)
	}
	batch := Infer(paths.NewView(store, ids))

	bc, ic := batch.Clique(), inc.Clique()
	if len(bc) != len(ic) {
		t.Fatalf("step %d: clique sizes diverge: batch %v vs incremental %v", step, bc, ic)
	}
	for i := range bc {
		if bc[i] != ic[i] {
			t.Fatalf("step %d: cliques diverge: batch %v vs incremental %v", step, bc, ic)
		}
	}

	if batch.LinkCount() != inc.LinkCount() {
		t.Fatalf("step %d: link counts diverge: batch %d vs incremental %d", step, batch.LinkCount(), inc.LinkCount())
	}
	got := make(map[topology.LinkKey]Rel, inc.LinkCount())
	inc.ForEachLink(func(k topology.LinkKey, r Rel) bool {
		got[k] = r
		return true
	})
	p2p := 0
	batch.ForEachLink(func(k topology.LinkKey, want Rel) bool {
		if want == RelP2P {
			p2p++
		}
		if got[k] != want {
			t.Fatalf("step %d: link %v: batch %v vs incremental %v", step, k, want, got[k])
		}
		// Both orientations of the pairwise query must agree too.
		if batch.Relationship(k.A, k.B) != inc.Relationship(k.A, k.B) ||
			batch.Relationship(k.B, k.A) != inc.Relationship(k.B, k.A) {
			t.Fatalf("step %d: Relationship(%v) diverges", step, k)
		}
		return true
	})
	if inc.Relationship(4200000000, 4200000001) != RelUnknown {
		t.Fatalf("step %d: unknown pair not RelUnknown", step)
	}
	// The delta-maintained p2p counter must match a full batch tally.
	if inc.P2PCount() != p2p {
		t.Fatalf("step %d: P2PCount %d, batch counts %d p2p links", step, inc.P2PCount(), p2p)
	}
}

// TestIncrementalMatchesBatch churns paths in and out of the live set
// and pins the incremental oracle to a fresh batch Infer after every
// Commit.
func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(20130501))
	pool := synthPaths(rng, 120)

	store := paths.NewStore()
	ids := make([]paths.ID, len(pool))
	for i, p := range pool {
		ids[i] = store.Intern(p)
	}

	inc := NewIncremental(store)
	live := make(map[paths.ID]bool)
	for step := 0; step < 30; step++ {
		// Random batch of adds and removes between commits.
		for n := 0; n < 8; n++ {
			id := ids[rng.Intn(len(ids))]
			if live[id] {
				delete(live, id)
				inc.RemovePath(id)
			} else {
				live[id] = true
				inc.AddPath(id)
			}
		}
		inc.Commit()
		assertOracleEquivalence(t, step, store, live, inc)
	}

	// Drain to empty: the oracle must unwind cleanly.
	for id := range live {
		inc.RemovePath(id)
		delete(live, id)
	}
	inc.Commit()
	assertOracleEquivalence(t, 999, store, live, inc)
	if inc.LinkCount() != 0 || inc.voteCount() != 0 || inc.transitCount() != 0 || inc.degreeCount() != 0 {
		t.Fatalf("drained oracle retains state: %d links, %d votes, %d transit, %d degrees",
			inc.LinkCount(), inc.voteCount(), inc.transitCount(), inc.degreeCount())
	}
	if inc.P2PCount() != 0 || inc.touchedCount() != 0 {
		t.Fatalf("drained oracle retains p2p state: %d p2p, %d touched",
			inc.P2PCount(), inc.touchedCount())
	}
}

// TestIncrementalFlapIsIdempotent removes and re-adds the same paths
// between two commits: the maintained counters must return to the
// pre-flap state exactly.
func TestIncrementalFlapIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := synthPaths(rng, 60)
	store := paths.NewStore()

	inc := NewIncremental(store)
	live := make(map[paths.ID]bool)
	for _, p := range pool {
		id := store.Intern(p)
		if !live[id] {
			live[id] = true
			inc.AddPath(id)
		}
	}
	inc.Commit()

	before := make(map[topology.LinkKey]Rel)
	inc.ForEachLink(func(k topology.LinkKey, r Rel) bool { before[k] = r; return true })

	// Flap half the live set inside one commit cycle.
	i := 0
	for id := range live {
		if i++; i%2 == 0 {
			continue
		}
		inc.RemovePath(id)
		inc.AddPath(id)
	}
	inc.Commit()

	after := make(map[topology.LinkKey]Rel)
	inc.ForEachLink(func(k topology.LinkKey, r Rel) bool { after[k] = r; return true })
	if len(before) != len(after) {
		t.Fatalf("flap changed link count: %d vs %d", len(before), len(after))
	}
	for k, r := range before {
		if after[k] != r {
			t.Fatalf("flap changed link %v: %v vs %v", k, r, after[k])
		}
	}
	assertOracleEquivalence(t, 0, store, live, inc)
}

// TestInferenceIterators pins the allocation-free iterator variants to
// the map-allocating originals.
func TestInferenceIterators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inf := InferPaths(synthPaths(rng, 80))

	links := inf.Links()
	if len(links) != inf.LinkCount() {
		t.Fatalf("LinkCount %d != len(Links) %d", inf.LinkCount(), len(links))
	}
	seen := 0
	inf.ForEachLink(func(k topology.LinkKey, r Rel) bool {
		if links[k] != r {
			t.Fatalf("ForEachLink %v=%v disagrees with Links()=%v", k, r, links[k])
		}
		seen++
		return true
	})
	if seen != len(links) {
		t.Fatalf("ForEachLink visited %d of %d links", seen, len(links))
	}
	// Early exit stops the walk.
	n := 0
	inf.ForEachLink(func(topology.LinkKey, Rel) bool { n++; return false })
	if n > 1 {
		t.Fatalf("ForEachLink ignored early exit (visited %d)", n)
	}

	for _, asn := range []bgp.ASN{10, 100, 1000} {
		cone := inf.CustomerCone(asn)
		got := make(map[bgp.ASN]bool)
		inf.ForEachConeMember(asn, func(a bgp.ASN) bool { got[a] = true; return true })
		if len(got) != len(cone) {
			t.Fatalf("cone of %v: iterator %d members, map %d", asn, len(got), len(cone))
		}
		for a := range cone {
			if !got[a] {
				t.Fatalf("cone of %v: iterator missed %v", asn, a)
			}
		}
	}
}
