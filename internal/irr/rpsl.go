// Package irr models the Internet Routing Registry: RPSL object parsing
// and serialization, aut-num import/export policies, as-set expansion,
// and generation of registry contents from the synthetic topology. The
// inference pipeline uses it for connectivity discovery (AS-SETs, and
// LINX-style searches for members peering with a route server ASN) and
// for the reciprocity validation of §4.4.
package irr

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"mlpeering/internal/bgp"
)

// Object is one RPSL object: an ordered list of attribute/value pairs.
// The first attribute names the object class ("aut-num", "as-set", ...).
type Object struct {
	Attrs []Attr
}

// Attr is one RPSL attribute.
type Attr struct {
	Name  string
	Value string
}

// Class returns the object class (name of the first attribute).
func (o *Object) Class() string {
	if len(o.Attrs) == 0 {
		return ""
	}
	return o.Attrs[0].Name
}

// Key returns the object's primary key (value of the first attribute).
func (o *Object) Key() string {
	if len(o.Attrs) == 0 {
		return ""
	}
	return strings.ToUpper(o.Attrs[0].Value)
}

// Get returns the first value of the named attribute.
func (o *Object) Get(name string) (string, bool) {
	for _, a := range o.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// All returns every value of the named attribute, in order.
func (o *Object) All(name string) []string {
	var out []string
	for _, a := range o.Attrs {
		if a.Name == name {
			out = append(out, a.Value)
		}
	}
	return out
}

// Parse reads RPSL objects from r. Objects are separated by blank
// lines; lines starting with '%' or '#' are comments; lines starting
// with whitespace or '+' continue the previous attribute.
func Parse(r io.Reader) ([]*Object, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var objs []*Object
	var cur *Object
	flush := func() {
		if cur != nil && len(cur.Attrs) > 0 {
			objs = append(objs, cur)
		}
		cur = nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			flush()
		case strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#"):
			continue
		case line[0] == ' ' || line[0] == '\t' || line[0] == '+':
			if cur == nil || len(cur.Attrs) == 0 {
				return nil, fmt.Errorf("irr: line %d: continuation without attribute", lineNo)
			}
			cont := strings.TrimSpace(strings.TrimPrefix(line, "+"))
			cur.Attrs[len(cur.Attrs)-1].Value += " " + cont
		default:
			i := strings.IndexByte(line, ':')
			if i < 0 {
				return nil, fmt.Errorf("irr: line %d: malformed attribute %q", lineNo, line)
			}
			if cur == nil {
				cur = &Object{}
			}
			cur.Attrs = append(cur.Attrs, Attr{
				Name:  strings.ToLower(strings.TrimSpace(line[:i])),
				Value: strings.TrimSpace(line[i+1:]),
			})
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return objs, nil
}

// WriteObjects serializes objects in RPSL form.
func WriteObjects(w io.Writer, objs []*Object) error {
	for i, o := range objs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		for _, a := range o.Attrs {
			if _, err := fmt.Fprintf(w, "%-16s%s\n", a.Name+":", a.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Registry stores parsed RPSL objects with class/key indexing.
type Registry struct {
	objects []*Object
	byKey   map[string]*Object // "class key" -> object
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*Object)}
}

// Add inserts an object, replacing any previous object with the same
// class and key.
func (r *Registry) Add(o *Object) {
	k := o.Class() + " " + o.Key()
	if _, exists := r.byKey[k]; !exists {
		r.objects = append(r.objects, o)
	} else {
		for i, old := range r.objects {
			if old.Class() == o.Class() && old.Key() == o.Key() {
				r.objects[i] = o
				break
			}
		}
	}
	r.byKey[k] = o
}

// Lookup finds an object by class and key.
func (r *Registry) Lookup(class, key string) (*Object, bool) {
	o, ok := r.byKey[strings.ToLower(class)+" "+strings.ToUpper(key)]
	return o, ok
}

// AutNum returns the aut-num object for asn.
func (r *Registry) AutNum(asn bgp.ASN) (*Object, bool) {
	return r.Lookup("aut-num", "AS"+asn.String())
}

// Objects returns all objects in insertion order.
func (r *Registry) Objects() []*Object { return r.objects }

// Len returns the object count.
func (r *Registry) Len() int { return len(r.objects) }

// ExpandASSet resolves an as-set name to its member ASNs, following
// nested sets with cycle protection. Unknown nested sets are skipped
// (IRR data is famously incomplete); unknown tokens cause an error.
func (r *Registry) ExpandASSet(name string) ([]bgp.ASN, error) {
	seen := make(map[string]bool)
	asns := make(map[bgp.ASN]bool)
	var walk func(string) error
	walk = func(setName string) error {
		key := strings.ToUpper(setName)
		if seen[key] {
			return nil
		}
		seen[key] = true
		obj, ok := r.Lookup("as-set", key)
		if !ok {
			return nil
		}
		for _, memberLine := range obj.All("members") {
			for _, tok := range strings.FieldsFunc(memberLine, func(c rune) bool {
				return c == ',' || c == ' ' || c == '\t'
			}) {
				if tok == "" {
					continue
				}
				up := strings.ToUpper(tok)
				if strings.HasPrefix(up, "AS-") || strings.Contains(up, ":AS-") {
					if err := walk(up); err != nil {
						return err
					}
					continue
				}
				asn, err := bgp.ParseASN(tok)
				if err != nil {
					return fmt.Errorf("irr: as-set %s: bad member %q", setName, tok)
				}
				asns[asn] = true
			}
		}
		return nil
	}
	if err := walk(name); err != nil {
		return nil, err
	}
	out := make([]bgp.ASN, 0, len(asns))
	for a := range asns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SearchAutNumsMentioning returns the ASNs of aut-num objects whose
// import/export lines reference the given ASN: the technique the paper
// used to find LINX route server members (Table 2's asterisk).
func (r *Registry) SearchAutNumsMentioning(asn bgp.ASN) []bgp.ASN {
	needle := "AS" + asn.String()
	var out []bgp.ASN
	for _, o := range r.objects {
		if o.Class() != "aut-num" {
			continue
		}
		hit := false
		for _, a := range o.Attrs {
			if a.Name != "import" && a.Name != "export" {
				continue
			}
			for _, tok := range strings.Fields(a.Value) {
				if strings.ToUpper(strings.Trim(tok, ",{}")) == needle {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if hit {
			self, err := bgp.ParseASN(strings.TrimPrefix(o.Key(), "AS"))
			if err == nil {
				out = append(out, self)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
