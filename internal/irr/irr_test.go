package irr

import (
	"bytes"
	"strings"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

const sampleRPSL = `% RIPE-style comment
aut-num:        AS8359
as-name:        EXAMPLE-NET
import:         from AS6777 accept ANY
export:         to AS6777 announce ANY EXCEPT {AS5410, AS8732}
source:         SYNTH

as-set:         AS-TIX-RSMEMBERS
members:        AS8359, AS5410,
+               AS8732
members:        AS-NESTED
source:         SYNTH

as-set:         AS-NESTED
members:        AS196615
source:         SYNTH
`

func TestParseObjects(t *testing.T) {
	objs, err := Parse(strings.NewReader(sampleRPSL))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("objects = %d", len(objs))
	}
	an := objs[0]
	if an.Class() != "aut-num" || an.Key() != "AS8359" {
		t.Fatalf("object 0: %s %s", an.Class(), an.Key())
	}
	if v, _ := an.Get("as-name"); v != "EXAMPLE-NET" {
		t.Fatalf("as-name = %q", v)
	}
	// Continuation lines are folded.
	set := objs[1]
	ms := set.All("members")
	if len(ms) != 2 || !strings.Contains(ms[0], "AS8732") {
		t.Fatalf("members = %v", ms)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("   leading continuation\n")); err == nil {
		t.Fatal("orphan continuation must error")
	}
	if _, err := Parse(strings.NewReader("no colon here\n")); err == nil {
		t.Fatal("missing colon must error")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	objs, err := Parse(strings.NewReader(sampleRPSL))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteObjects(&buf, objs); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(objs) {
		t.Fatalf("round trip: %d vs %d", len(back), len(objs))
	}
	for i := range objs {
		if back[i].Class() != objs[i].Class() || back[i].Key() != objs[i].Key() {
			t.Fatalf("object %d differs", i)
		}
	}
}

func TestRegistryLookupAndExpand(t *testing.T) {
	objs, _ := Parse(strings.NewReader(sampleRPSL))
	reg := NewRegistry()
	for _, o := range objs {
		reg.Add(o)
	}
	if _, ok := reg.AutNum(8359); !ok {
		t.Fatal("aut-num lookup failed")
	}
	if _, ok := reg.Lookup("as-set", "as-tix-rsmembers"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	asns, err := reg.ExpandASSet("AS-TIX-RSMEMBERS")
	if err != nil {
		t.Fatal(err)
	}
	want := []bgp.ASN{5410, 8359, 8732, 196615}
	if len(asns) != len(want) {
		t.Fatalf("expand = %v", asns)
	}
	for i := range want {
		if asns[i] != want[i] {
			t.Fatalf("expand = %v, want %v", asns, want)
		}
	}
	// Unknown set expands empty, not error.
	if got, err := reg.ExpandASSet("AS-MISSING"); err != nil || len(got) != 0 {
		t.Fatalf("unknown set: %v, %v", got, err)
	}
}

func TestExpandASSetCycle(t *testing.T) {
	text := `as-set: AS-A
members: AS-B, AS1

as-set: AS-B
members: AS-A, AS2
`
	objs, _ := Parse(strings.NewReader(text))
	reg := NewRegistry()
	for _, o := range objs {
		reg.Add(o)
	}
	asns, err := reg.ExpandASSet("AS-A")
	if err != nil {
		t.Fatal(err)
	}
	if len(asns) != 2 {
		t.Fatalf("cycle expand = %v", asns)
	}
}

func TestSearchAutNumsMentioning(t *testing.T) {
	objs, _ := Parse(strings.NewReader(sampleRPSL))
	reg := NewRegistry()
	for _, o := range objs {
		reg.Add(o)
	}
	got := reg.SearchAutNumsMentioning(6777)
	if len(got) != 1 || got[0] != 8359 {
		t.Fatalf("search = %v", got)
	}
	if len(reg.SearchAutNumsMentioning(9999)) != 0 {
		t.Fatal("false positive")
	}
}

func TestPolicyLineRoundTrip(t *testing.T) {
	cases := []ixp.ExportFilter{
		ixp.OpenFilter(),
		ixp.NewExportFilter(ixp.ModeAllExcept, 5410, 8732),
		ixp.NewExportFilter(ixp.ModeNoneExcept, 8359),
		ixp.NewExportFilter(ixp.ModeNoneExcept),
	}
	for i, f := range cases {
		line := FormatExportLine(6777, f)
		pf, err := ParsePolicyLine(line)
		if err != nil {
			t.Fatalf("case %d (%q): %v", i, line, err)
		}
		if pf.Peer != 6777 || !pf.Filter.Equal(f) {
			t.Fatalf("case %d: %q -> %+v", i, line, pf)
		}
		iline := FormatImportLine(6777, f)
		pf2, err := ParsePolicyLine(iline)
		if err != nil || !pf2.Filter.Equal(f) {
			t.Fatalf("import case %d: %v", i, err)
		}
	}
	for _, bad := range []string{"", "to AS1", "to X announce ANY", "to AS1 frobnicate ANY", "to AS1 announce SOMETIMES"} {
		if _, err := ParsePolicyLine(bad); err == nil {
			t.Errorf("ParsePolicyLine(%q): expected error", bad)
		}
	}
}

func TestBuildFromTopology(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := Build(topo, 0.77, 42)
	if reg.Len() == 0 {
		t.Fatal("empty registry")
	}

	// Publishing IXPs have expandable as-sets matching ground truth.
	for _, info := range topo.IXPs {
		if !info.PublishesMemberList {
			// LINX-style: no as-set...
			if _, ok := reg.Lookup("as-set", ASSetName(info.Name)); ok {
				t.Fatalf("%s published an as-set despite profile", info.Name)
			}
			// ...but members are discoverable via aut-num search.
			found := reg.SearchAutNumsMentioning(info.Scheme.RSASN)
			if len(found) == 0 {
				t.Fatalf("%s: no members discoverable via IRR search", info.Name)
			}
			for _, m := range found {
				if !info.IsRSMember(m) {
					t.Fatalf("%s: search found non-member %s", info.Name, m)
				}
			}
			continue
		}
		asns, err := reg.ExpandASSet(ASSetName(info.Name))
		if err != nil {
			t.Fatal(err)
		}
		if len(asns) != len(info.RSMembers) {
			t.Fatalf("%s: as-set %d members, truth %d", info.Name, len(asns), len(info.RSMembers))
		}
		for _, m := range asns {
			if !info.IsRSMember(m) {
				t.Fatalf("%s: as-set contains non-member %s", info.Name, m)
			}
		}
	}

	// §4.4 data: registered members expose filters that match ground
	// truth, with import never more restrictive than export.
	checked := 0
	for _, info := range topo.IXPs {
		for _, m := range info.SortedRSMembers() {
			imp, exp, err := reg.RSFilters(m, info.Scheme.RSASN)
			if err != nil {
				t.Fatal(err)
			}
			if imp == nil || exp == nil {
				continue // unregistered
			}
			checked++
			truthExp, _ := topo.ExportFilter(info.Name, m)
			truthImp, _ := topo.ImportFilter(info.Name, m)
			if !exp.Filter.Equal(truthExp) || !imp.Filter.Equal(truthImp) {
				t.Fatalf("%s member %s: IRR filters diverge from truth", info.Name, m)
			}
			for _, other := range info.RSMembers {
				if other == m {
					continue
				}
				if exp.Filter.Allows(other) && !imp.Filter.Allows(other) {
					t.Fatalf("%s member %s: IRR import more restrictive than export", info.Name, m)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no registered members with filters")
	}
}
