package irr

import (
	"math/rand"
	"strings"

	"mlpeering/internal/bgp"
	"mlpeering/internal/topology"
)

// ASSetName returns the canonical as-set name for an IXP's route server
// members.
func ASSetName(ixpName string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z':
			return r - 32
		case r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, ixpName)
	return "AS-" + clean + "-RSMEMBERS"
}

// Build generates IRR contents from the topology's ground truth:
//
//   - an as-set per IXP that publishes its RS member list,
//   - an aut-num per registered member carrying import/export policy
//     lines toward each route server it is connected to (the §4.4 data),
//   - registration is probabilistic with the given fraction, except that
//     members of list-publishing IXPs always appear in the as-set (the
//     set is maintained by the IXP, not the member).
//
// IRR contents mirror reality: accurate where generated, but silent for
// unregistered networks.
func Build(topo *topology.Topology, registrationFrac float64, seed int64) *Registry {
	rng := rand.New(rand.NewSource(seed))
	reg := NewRegistry()

	registered := make(map[bgp.ASN]bool)
	for _, asn := range topo.Order {
		if rng.Float64() < registrationFrac {
			registered[asn] = true
		}
	}

	// Per-member policy lines toward each of their route servers.
	type policyLines struct {
		imports, exports []string
	}
	perMember := make(map[bgp.ASN]*policyLines)
	for _, info := range topo.IXPs {
		for _, m := range info.SortedRSMembers() {
			if !registered[m] {
				continue
			}
			exp, okE := topo.ExportFilter(info.Name, m)
			imp, okI := topo.ImportFilter(info.Name, m)
			if !okE || !okI {
				continue
			}
			pl := perMember[m]
			if pl == nil {
				pl = &policyLines{}
				perMember[m] = pl
			}
			pl.imports = append(pl.imports, FormatImportLine(info.Scheme.RSASN, imp))
			pl.exports = append(pl.exports, FormatExportLine(info.Scheme.RSASN, exp))
		}
	}
	for _, asn := range topo.Order {
		pl, ok := perMember[asn]
		if !ok {
			continue
		}
		o := &Object{}
		o.Attrs = append(o.Attrs,
			Attr{"aut-num", "AS" + asn.String()},
			Attr{"as-name", topo.ASes[asn].Name},
		)
		for _, l := range pl.imports {
			o.Attrs = append(o.Attrs, Attr{"import", l})
		}
		for _, l := range pl.exports {
			o.Attrs = append(o.Attrs, Attr{"export", l})
		}
		o.Attrs = append(o.Attrs, Attr{"source", "SYNTH"})
		reg.Add(o)
	}

	// IXP-maintained as-sets.
	for _, info := range topo.IXPs {
		if !info.PublishesMemberList {
			continue
		}
		o := &Object{}
		o.Attrs = append(o.Attrs, Attr{"as-set", ASSetName(info.Name)})
		var sb strings.Builder
		for i, m := range info.SortedRSMembers() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("AS" + m.String())
		}
		o.Attrs = append(o.Attrs,
			Attr{"members", sb.String()},
			Attr{"descr", info.Name + " route server members"},
			Attr{"source", "SYNTH"},
		)
		reg.Add(o)
	}
	return reg
}
