package irr

import (
	"fmt"
	"strings"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// PolicyFilter is a parsed import or export policy toward one peer AS
// (for this repository's purposes, toward a route server).
type PolicyFilter struct {
	// Peer is the AS the policy applies to (the "from"/"to" AS).
	Peer bgp.ASN
	// Filter is the reconstructed allow/deny set over RS members.
	Filter ixp.ExportFilter
}

// FormatExportLine renders a member's route-server export policy as an
// RPSL export attribute value. The grammar is a simplified RPSL policy
// expression:
//
//	to AS6777 announce ANY
//	to AS6777 announce ANY EXCEPT {AS5410, AS8732}
//	to AS6777 announce ONLY {AS8359, AS8447}
func FormatExportLine(rsASN bgp.ASN, f ixp.ExportFilter) string {
	return "to AS" + rsASN.String() + " announce " + formatFilterExpr(f)
}

// FormatImportLine renders the import direction:
//
//	from AS6777 accept ANY [EXCEPT {...}] / ONLY {...}
func FormatImportLine(rsASN bgp.ASN, f ixp.ExportFilter) string {
	return "from AS" + rsASN.String() + " accept " + formatFilterExpr(f)
}

func formatFilterExpr(f ixp.ExportFilter) string {
	list := func() string {
		var sb strings.Builder
		sb.WriteByte('{')
		for i, p := range f.PeerList() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("AS" + p.String())
		}
		sb.WriteByte('}')
		return sb.String()
	}
	if f.Mode == ixp.ModeAllExcept {
		if len(f.Peers) == 0 {
			return "ANY"
		}
		return "ANY EXCEPT " + list()
	}
	return "ONLY " + list()
}

// ParsePolicyLine parses an import or export attribute value produced
// by FormatImportLine/FormatExportLine (and tolerant of spacing).
func ParsePolicyLine(value string) (*PolicyFilter, error) {
	fields := strings.Fields(value)
	if len(fields) < 3 {
		return nil, fmt.Errorf("irr: policy %q too short", value)
	}
	if fields[0] != "to" && fields[0] != "from" {
		return nil, fmt.Errorf("irr: policy %q must start with to/from", value)
	}
	peer, err := bgp.ParseASN(fields[1])
	if err != nil {
		return nil, fmt.Errorf("irr: policy %q: %w", value, err)
	}
	verb := fields[2]
	if verb != "announce" && verb != "accept" {
		return nil, fmt.Errorf("irr: policy %q: unknown verb %q", value, verb)
	}
	rest := fields[3:]
	pf := &PolicyFilter{Peer: peer}
	parseList := func(toks []string) ([]bgp.ASN, error) {
		joined := strings.Join(toks, " ")
		joined = strings.TrimPrefix(joined, "{")
		joined = strings.TrimSuffix(joined, "}")
		var out []bgp.ASN
		for _, tok := range strings.FieldsFunc(joined, func(c rune) bool {
			return c == ',' || c == ' ' || c == '{' || c == '}'
		}) {
			if tok == "" {
				continue
			}
			a, err := bgp.ParseASN(tok)
			if err != nil {
				return nil, fmt.Errorf("irr: policy %q: bad AS %q", value, tok)
			}
			out = append(out, a)
		}
		return out, nil
	}
	switch {
	case len(rest) == 1 && rest[0] == "ANY":
		pf.Filter = ixp.OpenFilter()
	case len(rest) >= 3 && rest[0] == "ANY" && rest[1] == "EXCEPT":
		asns, err := parseList(rest[2:])
		if err != nil {
			return nil, err
		}
		pf.Filter = ixp.NewExportFilter(ixp.ModeAllExcept, asns...)
	case len(rest) >= 2 && rest[0] == "ONLY":
		asns, err := parseList(rest[1:])
		if err != nil {
			return nil, err
		}
		pf.Filter = ixp.NewExportFilter(ixp.ModeNoneExcept, asns...)
	default:
		return nil, fmt.Errorf("irr: policy %q: unparseable filter expression", value)
	}
	return pf, nil
}

// RSFilters extracts a member's import and export filters toward the
// given route server ASN from its aut-num object. Either return may be
// nil when the member registered no policy for that direction.
func (r *Registry) RSFilters(member, rsASN bgp.ASN) (imp, exp *PolicyFilter, err error) {
	obj, ok := r.AutNum(member)
	if !ok {
		return nil, nil, nil
	}
	for _, line := range obj.All("import") {
		pf, perr := ParsePolicyLine(line)
		if perr != nil {
			continue // foreign policy lines use full RPSL we don't model
		}
		if pf.Peer == rsASN {
			imp = pf
		}
	}
	for _, line := range obj.All("export") {
		pf, perr := ParsePolicyLine(line)
		if perr != nil {
			continue
		}
		if pf.Peer == rsASN {
			exp = pf
		}
	}
	return imp, exp, nil
}
