package bgp

import (
	"fmt"
	"net/netip"
)

// Path attribute type codes (RFC 4271, RFC 1997, RFC 6793).
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunities     = 8
	AttrAS4Path         = 17
	AttrAS4Aggregator   = 18
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// Origin attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// PathAttrs carries the path attributes of a route in decoded form.
// Unrecognized optional transitive attributes are preserved in Unknown
// so they survive re-serialization, as required of a transparent BGP
// speaker.
type PathAttrs struct {
	Origin      uint8
	ASPath      ASPath
	NextHop     netip.Addr
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocPref  bool
	Atomic      bool
	Aggregator  *Aggregator
	Communities Communities
	Unknown     []RawAttr
}

// Aggregator is the AGGREGATOR attribute payload.
type Aggregator struct {
	ASN  ASN
	Addr netip.Addr
}

// RawAttr is an attribute this codec does not interpret.
type RawAttr struct {
	Flags byte
	Type  byte
	Data  []byte
}

// Clone returns a deep copy of the attributes.
func (a *PathAttrs) Clone() *PathAttrs {
	if a == nil {
		return nil
	}
	out := *a
	out.ASPath = a.ASPath.Clone()
	out.Communities = a.Communities.Clone()
	if a.Aggregator != nil {
		agg := *a.Aggregator
		out.Aggregator = &agg
	}
	if a.Unknown != nil {
		out.Unknown = make([]RawAttr, len(a.Unknown))
		for i, u := range a.Unknown {
			out.Unknown[i] = RawAttr{Flags: u.Flags, Type: u.Type, Data: append([]byte(nil), u.Data...)}
		}
	}
	return &out
}

func appendAttrHeader(dst []byte, flags, typ byte, length int) []byte {
	if length > 255 {
		return append(dst, flags|flagExtLen, typ, byte(length>>8), byte(length))
	}
	return append(dst, flags, typ, byte(length))
}

// AppendWire serializes the attributes in type order. as4 selects 4-byte
// AS path encoding (both speakers negotiated the AS4 capability).
func (a *PathAttrs) AppendWire(dst []byte, as4 bool) ([]byte, error) {
	// ORIGIN (well-known mandatory)
	dst = appendAttrHeader(dst, flagTransitive, AttrOrigin, 1)
	dst = append(dst, a.Origin)

	// AS_PATH (well-known mandatory)
	dst = appendAttrHeader(dst, flagTransitive, AttrASPath, a.ASPath.wireLen(as4))
	dst = a.ASPath.appendWire(dst, as4)

	// NEXT_HOP (well-known mandatory for IPv4 unicast)
	if a.NextHop.IsValid() {
		nh := a.NextHop.AsSlice()
		dst = appendAttrHeader(dst, flagTransitive, AttrNextHop, len(nh))
		dst = append(dst, nh...)
	}

	if a.HasMED {
		dst = appendAttrHeader(dst, flagOptional, AttrMED, 4)
		dst = append(dst, byte(a.MED>>24), byte(a.MED>>16), byte(a.MED>>8), byte(a.MED))
	}
	if a.HasLocPref {
		dst = appendAttrHeader(dst, flagTransitive, AttrLocalPref, 4)
		dst = append(dst, byte(a.LocalPref>>24), byte(a.LocalPref>>16), byte(a.LocalPref>>8), byte(a.LocalPref))
	}
	if a.Atomic {
		dst = appendAttrHeader(dst, flagTransitive, AttrAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		addr := a.Aggregator.Addr.AsSlice()
		asnLen := 2
		if as4 {
			asnLen = 4
		}
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrAggregator, asnLen+len(addr))
		if as4 {
			dst = append(dst, byte(a.Aggregator.ASN>>24), byte(a.Aggregator.ASN>>16), byte(a.Aggregator.ASN>>8), byte(a.Aggregator.ASN))
		} else {
			asn := a.Aggregator.ASN
			if asn.Is32Bit() {
				asn = ASTrans
			}
			dst = append(dst, byte(asn>>8), byte(asn))
		}
		dst = append(dst, addr...)
	}
	if len(a.Communities) > 0 {
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrCommunities, 4*len(a.Communities))
		for _, c := range a.Communities {
			dst = append(dst, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		}
	}
	for _, u := range a.Unknown {
		dst = appendAttrHeader(dst, u.Flags, u.Type, len(u.Data))
		dst = append(dst, u.Data...)
	}
	return dst, nil
}

// DecodeAttrs parses the path attributes section of an UPDATE.
func DecodeAttrs(b []byte, as4 bool) (*PathAttrs, error) {
	return DecodeAttrsArena(b, as4, nil)
}

// DecodeAttrsArena parses the path attributes section of an UPDATE,
// slab-allocating the result from arena when it is non-nil. Everything
// reachable from the returned attributes lives as long as the arena.
func DecodeAttrsArena(b []byte, as4 bool, arena *AttrArena) (*PathAttrs, error) {
	var attrs *PathAttrs
	if arena != nil {
		attrs = arena.newAttrs()
	} else {
		attrs = &PathAttrs{}
	}
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, fmt.Errorf("bgp: truncated attribute header")
		}
		flags, typ := b[0], b[1]
		var length int
		var hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("bgp: truncated extended-length attribute header")
			}
			length = int(b[2])<<8 | int(b[3])
			hdr = 4
		} else {
			length = int(b[2])
			hdr = 3
		}
		if len(b) < hdr+length {
			return nil, fmt.Errorf("bgp: attribute %d: need %d bytes, have %d", typ, length, len(b)-hdr)
		}
		body := b[hdr : hdr+length]
		b = b[hdr+length:]

		switch typ {
		case AttrOrigin:
			if length != 1 {
				return nil, fmt.Errorf("bgp: ORIGIN length %d", length)
			}
			if body[0] > OriginIncomplete {
				return nil, fmt.Errorf("bgp: ORIGIN value %d", body[0])
			}
			attrs.Origin = body[0]
		case AttrASPath:
			p, err := decodeASPathArena(body, as4, arena)
			if err != nil {
				return nil, err
			}
			attrs.ASPath = p
		case AttrAS4Path:
			// When as4 is negotiated AS4_PATH should not appear; when it
			// does (old speaker in the middle) it overrides AS_PATH per
			// RFC 6793 reconstruction. We decode it as a 4-byte path.
			p, err := decodeASPath(body, true)
			if err != nil {
				return nil, err
			}
			attrs.ASPath = reconcileAS4Path(attrs.ASPath, p)
		case AttrNextHop:
			addr, ok := netip.AddrFromSlice(body)
			if !ok {
				return nil, fmt.Errorf("bgp: NEXT_HOP length %d", length)
			}
			attrs.NextHop = addr
		case AttrMED:
			if length != 4 {
				return nil, fmt.Errorf("bgp: MED length %d", length)
			}
			attrs.MED = be32(body)
			attrs.HasMED = true
		case AttrLocalPref:
			if length != 4 {
				return nil, fmt.Errorf("bgp: LOCAL_PREF length %d", length)
			}
			attrs.LocalPref = be32(body)
			attrs.HasLocPref = true
		case AttrAtomicAggregate:
			attrs.Atomic = true
		case AttrAggregator:
			agg, err := decodeAggregator(body, as4)
			if err != nil {
				return nil, err
			}
			attrs.Aggregator = agg
		case AttrCommunities:
			if length%4 != 0 {
				return nil, fmt.Errorf("bgp: COMMUNITIES length %d not multiple of 4", length)
			}
			var cs Communities
			if arena != nil {
				cs = arena.commSlice(length / 4)
			} else {
				cs = make(Communities, 0, length/4)
			}
			for i := 0; i < length; i += 4 {
				cs = append(cs, Community(be32(body[i:])))
			}
			attrs.Communities = cs
		default:
			attrs.Unknown = append(attrs.Unknown, RawAttr{
				Flags: flags, Type: typ, Data: append([]byte(nil), body...),
			})
		}
	}
	return attrs, nil
}

func decodeAggregator(body []byte, as4 bool) (*Aggregator, error) {
	asnLen := 2
	if as4 {
		asnLen = 4
	}
	if len(body) != asnLen+4 {
		return nil, fmt.Errorf("bgp: AGGREGATOR length %d", len(body))
	}
	var asn ASN
	if as4 {
		asn = ASN(be32(body))
	} else {
		asn = ASN(uint16(body[0])<<8 | uint16(body[1]))
	}
	addr, _ := netip.AddrFromSlice(body[asnLen:])
	return &Aggregator{ASN: asn, Addr: addr}, nil
}

// reconcileAS4Path merges AS_PATH (possibly containing AS_TRANS) with
// AS4_PATH per RFC 6793 §4.2.3: if AS_PATH is at least as long as
// AS4_PATH, the leading excess of AS_PATH is prepended to AS4_PATH.
func reconcileAS4Path(asPath, as4Path ASPath) ASPath {
	if len(asPath) == 0 {
		return as4Path
	}
	n2, n4 := asPath.Len(), as4Path.Len()
	if n4 > n2 {
		return asPath // AS4_PATH inconsistent: ignore it
	}
	excess := n2 - n4
	flat := asPath.Flatten()
	if excess > len(flat) {
		excess = len(flat)
	}
	head := flat[:excess]
	out := ASPath{}
	if len(head) > 0 {
		out = append(out, PathSegment{ASNs: append([]ASN(nil), head...)})
	}
	return append(out, as4Path.Clone()...)
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
