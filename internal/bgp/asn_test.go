package bgp

import (
	"testing"
	"testing/quick"
)

func TestParseASN(t *testing.T) {
	cases := []struct {
		in      string
		want    ASN
		wantErr bool
	}{
		{"6695", 6695, false},
		{"AS6695", 6695, false},
		{"as13030", 13030, false},
		{"4294967295", 4294967295, false},
		{"4294967296", 0, true},
		{"", 0, true},
		{"AS", 0, true},
		{"-1", 0, true},
		{"65a", 0, true},
	}
	for _, c := range cases {
		got, err := ParseASN(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseASN(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseASN(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestASNClassification(t *testing.T) {
	cases := []struct {
		asn                           ASN
		private, reserved, routable32 bool
	}{
		{6695, false, false, true},
		{0, false, true, false},
		{23456, false, true, false},
		{63487, false, false, true},
		// The paper filters the whole 63488-131071 block, which contains
		// the 16-bit private range: such ASNs are both private and
		// reserved, and never routable.
		{63488, false, true, false},
		{64511, false, true, false},
		{64512, true, true, false},
		{65534, true, true, false},
		{65535, false, true, false},
		{131071, false, true, false},
		{131072, false, false, true},
		{4200000000, true, false, false},
		{4294967295, false, true, false},
	}
	for _, c := range cases {
		if got := c.asn.IsPrivate(); got != c.private {
			t.Errorf("ASN(%d).IsPrivate() = %v, want %v", c.asn, got, c.private)
		}
		if got := c.asn.IsReserved(); got != c.reserved {
			t.Errorf("ASN(%d).IsReserved() = %v, want %v", c.asn, got, c.reserved)
		}
		if got := c.asn.Routable(); got != c.routable32 {
			t.Errorf("ASN(%d).Routable() = %v, want %v", c.asn, got, c.routable32)
		}
	}
}

func TestASNIs32Bit(t *testing.T) {
	if ASN(65535).Is32Bit() {
		t.Error("65535 should fit in 16 bits")
	}
	if !ASN(65536).Is32Bit() {
		t.Error("65536 should be 32-bit")
	}
}

func TestASNMapperAliasing(t *testing.T) {
	m := NewASNMapper()

	// 16-bit ASNs pass through.
	a, err := m.Alias(6695)
	if err != nil || a != 6695 {
		t.Fatalf("Alias(6695) = %v, %v; want identity", a, err)
	}
	if m.Len() != 0 {
		t.Fatalf("identity aliasing must not consume table space, Len=%d", m.Len())
	}

	// 32-bit ASNs get stable private aliases.
	a1, err := m.Alias(196615)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.IsPrivate() || a1.Is32Bit() {
		t.Fatalf("alias %v not a 16-bit private ASN", a1)
	}
	a2, _ := m.Alias(196615)
	if a1 != a2 {
		t.Fatalf("alias not stable: %v vs %v", a1, a2)
	}
	b1, _ := m.Alias(196616)
	if b1 == a1 {
		t.Fatalf("distinct ASNs mapped to same alias %v", a1)
	}

	// Resolution round-trips.
	if got := m.Resolve(a1); got != 196615 {
		t.Fatalf("Resolve(%v) = %v, want 196615", a1, got)
	}
	if got := m.Resolve(6695); got != 6695 {
		t.Fatalf("Resolve(6695) = %v, want identity", got)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestASNMapperExhaustion(t *testing.T) {
	m := NewASNMapper()
	n := int(LastPrivate16-FirstPrivate16) + 1
	for i := 0; i < n; i++ {
		if _, err := m.Alias(ASN(200000 + i)); err != nil {
			t.Fatalf("alias %d failed early: %v", i, err)
		}
	}
	if _, err := m.Alias(ASN(999999999)); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestASNMapperRoundTripProperty(t *testing.T) {
	m := NewASNMapper()
	f := func(raw uint32) bool {
		asn := ASN(raw)
		alias, err := m.Alias(asn)
		if err != nil {
			return true // exhaustion is allowed under quick's input volume
		}
		return m.Resolve(alias) == asn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
