package bgp

import (
	"fmt"
	"io"
	"net/netip"
)

// BGP message types (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Message size limits.
const (
	HeaderLen = 19
	MaxMsgLen = 4096
)

// Message is any BGP message.
type Message interface {
	// Type returns the BGP message type code.
	Type() byte
	// AppendBody appends the wire form of the message body (everything
	// after the 19-byte header) to dst.
	AppendBody(dst []byte) ([]byte, error)
}

// Open is a BGP OPEN message. Only the fields the repository needs are
// modeled; the AS4 capability (RFC 6793) is carried explicitly because
// route servers and collectors always negotiate it.
type Open struct {
	Version  byte
	ASN      ASN // sent as AS_TRANS in the 2-byte field if 32-bit
	HoldTime uint16
	RouterID netip.Addr
	AS4      bool // advertise the 4-octet-AS capability
}

// Type implements Message.
func (o *Open) Type() byte { return MsgOpen }

// AppendBody implements Message.
func (o *Open) AppendBody(dst []byte) ([]byte, error) {
	v := o.Version
	if v == 0 {
		v = 4
	}
	asn16 := o.ASN
	if asn16.Is32Bit() {
		asn16 = ASTrans
	}
	dst = append(dst, v, byte(asn16>>8), byte(asn16))
	dst = append(dst, byte(o.HoldTime>>8), byte(o.HoldTime))
	rid := o.RouterID
	if !rid.IsValid() || !rid.Is4() {
		rid = netip.AddrFrom4([4]byte{})
	}
	dst = append(dst, rid.AsSlice()...)
	if o.AS4 {
		// Optional parameters: one capabilities parameter (type 2)
		// containing capability 65 (4-octet AS) with the full ASN.
		cap := []byte{65, 4, byte(o.ASN >> 24), byte(o.ASN >> 16), byte(o.ASN >> 8), byte(o.ASN)}
		param := append([]byte{2, byte(len(cap))}, cap...)
		dst = append(dst, byte(len(param)))
		dst = append(dst, param...)
	} else {
		dst = append(dst, 0)
	}
	return dst, nil
}

// Update is a BGP UPDATE message.
type Update struct {
	Withdrawn []Prefix
	Attrs     *PathAttrs
	NLRI      []Prefix
}

// Type implements Message.
func (u *Update) Type() byte { return MsgUpdate }

// AppendBody implements Message. as4 encoding is fixed at 4-octet since
// every speaker in this repository negotiates it; Encode wraps the
// 2-octet legacy case for tests via EncodeUpdateAS2.
func (u *Update) AppendBody(dst []byte) ([]byte, error) {
	return u.appendBody(dst, true)
}

func (u *Update) appendBody(dst []byte, as4 bool) ([]byte, error) {
	var wd []byte
	for _, p := range u.Withdrawn {
		if p.Addr().Is6() {
			return nil, fmt.Errorf("bgp: IPv6 withdrawn route %s requires MP_UNREACH_NLRI", p)
		}
		wd = p.AppendWire(wd)
	}
	dst = append(dst, byte(len(wd)>>8), byte(len(wd)))
	dst = append(dst, wd...)

	var attrs []byte
	if u.Attrs != nil {
		var err error
		attrs, err = u.Attrs.AppendWire(nil, as4)
		if err != nil {
			return nil, err
		}
	}
	dst = append(dst, byte(len(attrs)>>8), byte(len(attrs)))
	dst = append(dst, attrs...)

	for _, p := range u.NLRI {
		if p.Addr().Is6() {
			return nil, fmt.Errorf("bgp: IPv6 NLRI %s requires MP_REACH_NLRI", p)
		}
		dst = p.AppendWire(dst)
	}
	return dst, nil
}

// Notification is a BGP NOTIFICATION message.
type Notification struct {
	Code    byte
	Subcode byte
	Data    []byte
}

// Type implements Message.
func (n *Notification) Type() byte { return MsgNotification }

// AppendBody implements Message.
func (n *Notification) AppendBody(dst []byte) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

// Keepalive is a BGP KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() byte { return MsgKeepalive }

// AppendBody implements Message.
func (Keepalive) AppendBody(dst []byte) ([]byte, error) { return dst, nil }

// Encode serializes a complete message including the 19-byte header with
// the all-ones marker.
func Encode(m Message) ([]byte, error) {
	buf := make([]byte, HeaderLen, 64)
	for i := 0; i < 16; i++ {
		buf[i] = 0xFF
	}
	buf, err := m.AppendBody(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMsgLen {
		return nil, fmt.Errorf("bgp: message length %d exceeds %d", len(buf), MaxMsgLen)
	}
	buf[16] = byte(len(buf) >> 8)
	buf[17] = byte(len(buf))
	buf[18] = m.Type()
	return buf, nil
}

// EncodeUpdateAS2 serializes an UPDATE using legacy 2-octet AS encoding,
// substituting AS_TRANS for 32-bit ASNs. Used by tests exercising the
// RFC 6793 reconciliation path.
func EncodeUpdateAS2(u *Update) ([]byte, error) {
	buf := make([]byte, HeaderLen, 64)
	for i := 0; i < 16; i++ {
		buf[i] = 0xFF
	}
	buf, err := u.appendBody(buf, false)
	if err != nil {
		return nil, err
	}
	buf[16] = byte(len(buf) >> 8)
	buf[17] = byte(len(buf))
	buf[18] = MsgUpdate
	return buf, nil
}

// Decode parses one complete message from b, which must contain exactly
// one message. as4 selects 4-octet AS_PATH decoding.
func Decode(b []byte, as4 bool) (Message, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("bgp: message shorter than header: %d", len(b))
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xFF {
			return nil, fmt.Errorf("bgp: bad marker byte at %d", i)
		}
	}
	length := int(b[16])<<8 | int(b[17])
	if length != len(b) {
		return nil, fmt.Errorf("bgp: header length %d != buffer %d", length, len(b))
	}
	typ := b[18]
	body := b[HeaderLen:]
	switch typ {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return DecodeUpdate(body, as4)
	case MsgNotification:
		if len(body) < 2 {
			return nil, fmt.Errorf("bgp: NOTIFICATION body too short")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("bgp: KEEPALIVE with %d body bytes", len(body))
		}
		return Keepalive{}, nil
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", typ)
	}
}

func decodeOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("bgp: OPEN body too short: %d", len(b))
	}
	o := &Open{
		Version:  b[0],
		ASN:      ASN(uint16(b[1])<<8 | uint16(b[2])),
		HoldTime: uint16(b[3])<<8 | uint16(b[4]),
	}
	o.RouterID = netip.AddrFrom4([4]byte(b[5:9]))
	optLen := int(b[9])
	opts := b[10:]
	if len(opts) != optLen {
		return nil, fmt.Errorf("bgp: OPEN optional parameters: declared %d, have %d", optLen, len(opts))
	}
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, fmt.Errorf("bgp: truncated OPEN parameter header")
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, fmt.Errorf("bgp: truncated OPEN parameter body")
		}
		pbody := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != 2 {
			continue // not capabilities
		}
		for len(pbody) >= 2 {
			code, clen := pbody[0], int(pbody[1])
			if len(pbody) < 2+clen {
				break
			}
			cbody := pbody[2 : 2+clen]
			pbody = pbody[2+clen:]
			if code == 65 && clen == 4 {
				o.AS4 = true
				o.ASN = ASN(be32(cbody))
			}
		}
	}
	return o, nil
}

// DecodeUpdate parses an UPDATE body (without header).
func DecodeUpdate(b []byte, as4 bool) (*Update, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("bgp: UPDATE too short for withdrawn length")
	}
	wdLen := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < wdLen {
		return nil, fmt.Errorf("bgp: withdrawn routes: need %d bytes, have %d", wdLen, len(b))
	}
	u := &Update{}
	var err error
	if wdLen > 0 {
		u.Withdrawn, err = DecodePrefixes(b[:wdLen], false)
		if err != nil {
			return nil, err
		}
	}
	b = b[wdLen:]
	if len(b) < 2 {
		return nil, fmt.Errorf("bgp: UPDATE too short for attribute length")
	}
	atLen := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < atLen {
		return nil, fmt.Errorf("bgp: path attributes: need %d bytes, have %d", atLen, len(b))
	}
	if atLen > 0 {
		u.Attrs, err = DecodeAttrs(b[:atLen], as4)
		if err != nil {
			return nil, err
		}
	}
	b = b[atLen:]
	if len(b) > 0 {
		u.NLRI, err = DecodePrefixes(b, false)
		if err != nil {
			return nil, err
		}
	}
	return u, nil
}

// ReadMessage reads one length-delimited message from r and decodes it.
func ReadMessage(r io.Reader, as4 bool) (Message, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := int(hdr[16])<<8 | int(hdr[17])
	if length < HeaderLen || length > MaxMsgLen {
		return nil, fmt.Errorf("bgp: message length %d out of range", length)
	}
	buf := make([]byte, length)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("bgp: reading message body: %w", err)
	}
	return Decode(buf, as4)
}

// WriteMessage encodes m and writes it to w.
func WriteMessage(w io.Writer, m Message) error {
	buf, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
