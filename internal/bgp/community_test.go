package bgp

import (
	"testing"
	"testing/quick"
)

func TestCommunityHalves(t *testing.T) {
	c := MakeCommunity(6695, 8359)
	if c.High() != 6695 || c.Low() != 8359 {
		t.Fatalf("halves = %v:%v, want 6695:8359", c.High(), c.Low())
	}
	if c.String() != "6695:8359" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestMakeCommunityTruncates(t *testing.T) {
	// 32-bit ASNs cannot be encoded; MakeCommunity truncates like a
	// router would (this is why IXPs use ASN mappers).
	c := MakeCommunity(0, 196615)
	if c.Low() == 196615 {
		t.Fatal("32-bit value must not survive in 16-bit field")
	}
	if c.Low() != ASN(196615&0xFFFF) {
		t.Fatalf("Low = %v, want truncation", c.Low())
	}
}

func TestParseCommunity(t *testing.T) {
	cases := []struct {
		in      string
		want    Community
		wantErr bool
	}{
		{"6695:6695", MakeCommunity(6695, 6695), false},
		{"0:5410", MakeCommunity(0, 5410), false},
		{"65000:0", MakeCommunity(65000, 0), false},
		{"no-export", CommunityNoExport, false},
		{"NO-ADVERTISE", CommunityNoAdvertise, false},
		{"6695", 0, true},
		{"6695:", 0, true},
		{":123", 0, true},
		{"70000:1", 0, true},
		{"1:70000", 0, true},
		{"a:b", 0, true},
	}
	for _, c := range cases {
		got, err := ParseCommunity(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseCommunity(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseCommunity(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCommunityStringParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		c := Community(v)
		parsed, err := ParseCommunity(c.String())
		return err == nil && parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommunities(t *testing.T) {
	cs, err := ParseCommunities("6695:6695  0:5410\t0:8732")
	if err != nil {
		t.Fatal(err)
	}
	want := Communities{MakeCommunity(6695, 6695), MakeCommunity(0, 5410), MakeCommunity(0, 8732)}
	if len(cs) != 3 {
		t.Fatalf("len = %d", len(cs))
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("cs[%d] = %v, want %v", i, cs[i], want[i])
		}
	}
	if cs.String() != "6695:6695 0:5410 0:8732" {
		t.Fatalf("String = %q", cs.String())
	}

	if _, err := ParseCommunities("6695:6695 bogus"); err == nil {
		t.Fatal("expected error for bogus member")
	}
	empty, err := ParseCommunities("   ")
	if err != nil || empty != nil {
		t.Fatalf("empty parse = %v, %v", empty, err)
	}
}

func TestCommunitiesSetOps(t *testing.T) {
	cs := Communities{MakeCommunity(6695, 2), MakeCommunity(6695, 1), MakeCommunity(0, 9), MakeCommunity(6695, 1)}

	if !cs.Contains(MakeCommunity(0, 9)) || cs.Contains(MakeCommunity(1, 1)) {
		t.Fatal("Contains wrong")
	}

	d := cs.Dedup()
	if len(d) != 3 {
		t.Fatalf("Dedup len = %d, want 3", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1] >= d[i] {
			t.Fatal("Dedup not sorted strictly")
		}
	}

	other := Communities{MakeCommunity(0, 9), MakeCommunity(6695, 1), MakeCommunity(6695, 2)}
	if !cs.Equal(other) {
		t.Fatal("Equal should ignore order and multiplicity")
	}
	if cs.Equal(Communities{MakeCommunity(0, 9)}) {
		t.Fatal("Equal false positive")
	}

	hi := cs.WithHigh(6695)
	if len(hi) != 3 { // includes the duplicate
		t.Fatalf("WithHigh len = %d", len(hi))
	}
	for _, c := range hi {
		if c.High() != 6695 {
			t.Fatalf("WithHigh leaked %v", c)
		}
	}
}

func TestCommunitiesCloneIndependence(t *testing.T) {
	cs := Communities{MakeCommunity(1, 1)}
	cl := cs.Clone()
	cl[0] = MakeCommunity(2, 2)
	if cs[0] != MakeCommunity(1, 1) {
		t.Fatal("Clone aliases original")
	}
	if Communities(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}
