package bgp

import (
	"fmt"
	"net/netip"
)

// Prefix is an IP prefix announced in BGP NLRI. It wraps netip.Prefix to
// add the BGP wire encoding (RFC 4271 §4.3: a length octet followed by
// the minimal number of address bytes).
type Prefix struct {
	netip.Prefix
}

// MustPrefix parses a CIDR string and panics on error; intended for
// tests and static tables.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation ("193.0.0.0/21").
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, fmt.Errorf("bgp: %w", err)
	}
	return Prefix{p.Masked()}, nil
}

// PrefixFrom builds a Prefix from an address and mask length.
func PrefixFrom(addr netip.Addr, bits int) Prefix {
	return Prefix{netip.PrefixFrom(addr, bits).Masked()}
}

// wireLen returns the number of address bytes needed on the wire.
func (p Prefix) wireLen() int { return (p.Bits() + 7) / 8 }

// AppendWire appends the NLRI encoding of p to dst.
func (p Prefix) AppendWire(dst []byte) []byte {
	dst = append(dst, byte(p.Bits()))
	a := p.Addr().AsSlice()
	return append(dst, a[:p.wireLen()]...)
}

// decodePrefix reads one NLRI-encoded prefix from b. v6 selects the
// address family. It returns the prefix and the number of bytes consumed.
func decodePrefix(b []byte, v6 bool) (Prefix, int, error) {
	if len(b) < 1 {
		return Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI: no length octet")
	}
	bits := int(b[0])
	max := 32
	if v6 {
		max = 128
	}
	if bits > max {
		return Prefix{}, 0, fmt.Errorf("bgp: NLRI length %d exceeds %d", bits, max)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI: need %d bytes, have %d", n, len(b)-1)
	}
	var buf [16]byte
	copy(buf[:], b[1:1+n])
	var addr netip.Addr
	if v6 {
		addr = netip.AddrFrom16(buf)
	} else {
		addr = netip.AddrFrom4([4]byte(buf[:4]))
	}
	pfx := netip.PrefixFrom(addr, bits)
	if pfx.Masked() != pfx {
		// Bits beyond the mask must be zero; tolerate but canonicalize,
		// as routers do.
		pfx = pfx.Masked()
	}
	return Prefix{pfx}, 1 + n, nil
}

// DecodePrefixes parses a run of NLRI-encoded prefixes covering all of b.
func DecodePrefixes(b []byte, v6 bool) ([]Prefix, error) {
	var out []Prefix
	for len(b) > 0 {
		p, n, err := decodePrefix(b, v6)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = b[n:]
	}
	return out, nil
}

// ComparePrefixes orders prefixes by address then by length; used to
// produce deterministic RIB dumps and test fixtures.
func ComparePrefixes(a, b Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}
