package bgp

// AttrArena slab-allocates the objects produced by attribute decoding:
// PathAttrs records, AS-path segments and their ASN arrays, and
// community sets. Bulk consumers (an MRT RIB dump holds one decoded
// attribute set per entry, hundreds of thousands per archive) decode
// into one arena and retain everything with a handful of chunk
// allocations instead of ~4 per entry.
//
// Chunks are never grown in place, so pointers and slices handed out
// earlier stay valid for the arena's lifetime. An arena is not safe for
// concurrent use, and individual objects cannot be freed: drop the whole
// arena (and everything decoded into it) at once.
type AttrArena struct {
	attrs []PathAttrs
	segs  []PathSegment
	asns  []ASN
	comms []Community
}

const (
	arenaAttrChunk = 1024
	arenaSegChunk  = 1024
	arenaASNChunk  = 8192
	arenaCommChunk = 8192
)

// newAttrs carves one zeroed PathAttrs record.
func (a *AttrArena) newAttrs() *PathAttrs {
	if len(a.attrs) == cap(a.attrs) {
		a.attrs = make([]PathAttrs, 0, arenaAttrChunk)
	}
	a.attrs = a.attrs[:len(a.attrs)+1]
	return &a.attrs[len(a.attrs)-1]
}

// segSlice carves a full-length slice of n segments.
func (a *AttrArena) segSlice(n int) []PathSegment {
	if len(a.segs)+n > cap(a.segs) {
		c := arenaSegChunk
		if n > c {
			c = n
		}
		a.segs = make([]PathSegment, 0, c)
	}
	s := a.segs[len(a.segs) : len(a.segs)+n : len(a.segs)+n]
	a.segs = a.segs[:len(a.segs)+n]
	return s
}

// asnSlice carves a full-length slice of n ASNs.
func (a *AttrArena) asnSlice(n int) []ASN {
	if len(a.asns)+n > cap(a.asns) {
		c := arenaASNChunk
		if n > c {
			c = n
		}
		a.asns = make([]ASN, 0, c)
	}
	s := a.asns[len(a.asns) : len(a.asns)+n : len(a.asns)+n]
	a.asns = a.asns[:len(a.asns)+n]
	return s
}

// commSlice carves a zero-length, capacity-n community slice.
func (a *AttrArena) commSlice(n int) Communities {
	if len(a.comms)+n > cap(a.comms) {
		c := arenaCommChunk
		if n > c {
			c = n
		}
		a.comms = make([]Community, 0, c)
	}
	s := a.comms[len(a.comms) : len(a.comms) : len(a.comms)+n]
	a.comms = a.comms[:len(a.comms)+n]
	return Communities(s)
}
