package bgp

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func testAttrs() *PathAttrs {
	return &PathAttrs{
		Origin:      OriginIGP,
		ASPath:      NewASPath(6695, 196615, 8359),
		NextHop:     netip.MustParseAddr("80.81.192.1"),
		MED:         10,
		HasMED:      true,
		LocalPref:   200,
		HasLocPref:  true,
		Communities: Communities{MakeCommunity(6695, 6695), MakeCommunity(0, 5410)},
	}
}

func TestPrefixWireRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0/0", "10.0.0.0/8", "193.0.10.0/24", "192.0.2.128/25", "198.51.100.77/32"} {
		p := MustPrefix(s)
		wire := p.AppendWire(nil)
		back, n, err := decodePrefix(wire, false)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if n != len(wire) || back != p {
			t.Fatalf("%s: round trip got %v (%d bytes)", s, back, n)
		}
	}
}

func TestPrefixWireRoundTripV6(t *testing.T) {
	p := MustPrefix("2001:db8::/32")
	wire := p.AppendWire(nil)
	back, _, err := decodePrefix(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("v6 round trip: %v", back)
	}
}

func TestDecodePrefixErrors(t *testing.T) {
	if _, _, err := decodePrefix(nil, false); err == nil {
		t.Fatal("empty must error")
	}
	if _, _, err := decodePrefix([]byte{33, 1, 2, 3, 4, 5}, false); err == nil {
		t.Fatal("/33 v4 must error")
	}
	if _, _, err := decodePrefix([]byte{24, 1, 2}, false); err == nil {
		t.Fatal("truncated body must error")
	}
}

func TestDecodePrefixesCanonicalizes(t *testing.T) {
	// /16 with nonzero trailing bits in the second byte is canonicalized.
	got, err := DecodePrefixes([]byte{12, 10, 0xFF}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].String() != "10.240.0.0/12" {
		t.Fatalf("canonicalized = %v", got[0])
	}
}

func TestComparePrefixes(t *testing.T) {
	a := MustPrefix("10.0.0.0/8")
	b := MustPrefix("10.0.0.0/16")
	c := MustPrefix("11.0.0.0/8")
	if ComparePrefixes(a, b) >= 0 || ComparePrefixes(b, a) <= 0 {
		t.Fatal("length ordering wrong")
	}
	if ComparePrefixes(a, c) >= 0 {
		t.Fatal("address ordering wrong")
	}
	if ComparePrefixes(a, a) != 0 {
		t.Fatal("self compare")
	}
}

func TestAttrsWireRoundTrip(t *testing.T) {
	in := testAttrs()
	in.Aggregator = &Aggregator{ASN: 196615, Addr: netip.MustParseAddr("192.0.2.1")}
	in.Atomic = true
	in.Unknown = []RawAttr{{Flags: flagOptional | flagTransitive, Type: 99, Data: []byte{1, 2, 3}}}

	wire, err := in.AppendWire(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAttrs(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Origin != in.Origin || !out.ASPath.Equal(in.ASPath) || out.NextHop != in.NextHop {
		t.Fatalf("mismatch: %+v", out)
	}
	if !out.HasMED || out.MED != 10 || !out.HasLocPref || out.LocalPref != 200 || !out.Atomic {
		t.Fatalf("numeric attrs: %+v", out)
	}
	if out.Aggregator == nil || out.Aggregator.ASN != 196615 {
		t.Fatalf("aggregator: %+v", out.Aggregator)
	}
	if !out.Communities.Equal(in.Communities) {
		t.Fatalf("communities: %v", out.Communities)
	}
	if len(out.Unknown) != 1 || out.Unknown[0].Type != 99 || !bytes.Equal(out.Unknown[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("unknown attr: %+v", out.Unknown)
	}
}

func TestAttrsExtendedLength(t *testing.T) {
	// A community list long enough to need the extended length bit.
	in := &PathAttrs{
		Origin:  OriginIGP,
		ASPath:  NewASPath(1),
		NextHop: netip.MustParseAddr("10.0.0.1"),
	}
	for i := 0; i < 100; i++ {
		in.Communities = append(in.Communities, MakeCommunity(6695, ASN(i)))
	}
	wire, err := in.AppendWire(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAttrs(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Communities) != 100 {
		t.Fatalf("communities = %d", len(out.Communities))
	}
}

func TestDecodeAttrsErrors(t *testing.T) {
	cases := [][]byte{
		{flagTransitive},                                             // truncated header
		{flagTransitive, AttrOrigin, 2, 0, 0},                        // bad ORIGIN len
		{flagTransitive, AttrOrigin, 1, 9},                           // bad ORIGIN value
		{flagOptional, AttrMED, 3, 0, 0, 0},                          // bad MED len
		{flagTransitive, AttrLocalPref, 1, 0},                        // bad LOCAL_PREF len
		{flagOptional | flagTransitive, AttrCommunities, 3, 0, 0, 0}, // not %4
		{flagTransitive, AttrASPath, 1, 7},                           // truncated path
		{flagTransitive, AttrNextHop, 3, 1, 2, 3},                    // bad next hop
		{flagTransitive | flagExtLen, AttrOrigin},                    // truncated ext header
		{flagTransitive, AttrOrigin, 5, 0},                           // declared longer than body
	}
	for i, c := range cases {
		if _, err := DecodeAttrs(c, true); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReconcileAS4Path(t *testing.T) {
	// AS_PATH: 100 23456 23456; AS4_PATH: 196615 196616
	as2 := NewASPath(100, ASTrans, ASTrans)
	as4 := NewASPath(196615, 196616)
	got := reconcileAS4Path(as2, as4)
	flat := got.Flatten()
	want := []ASN{100, 196615, 196616}
	if len(flat) != 3 {
		t.Fatalf("reconciled = %v", flat)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("reconciled = %v, want %v", flat, want)
		}
	}
	// Inconsistent longer AS4_PATH is ignored.
	got = reconcileAS4Path(NewASPath(1), NewASPath(2, 3))
	if f := got.Flatten(); len(f) != 1 || f[0] != 1 {
		t.Fatalf("inconsistent AS4_PATH: %v", f)
	}
}

func TestUpdateEncodeDecodeRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []Prefix{MustPrefix("203.0.113.0/24")},
		Attrs:     testAttrs(),
		NLRI:      []Prefix{MustPrefix("193.0.0.0/21"), MustPrefix("193.0.22.0/23")},
	}
	wire, err := Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) < HeaderLen || wire[18] != MsgUpdate {
		t.Fatalf("header: % x", wire[:HeaderLen])
	}
	m, err := Decode(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*Update)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Fatalf("withdrawn: %v", got.Withdrawn)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Fatalf("nlri: %v", got.NLRI)
	}
	if !got.Attrs.ASPath.Equal(u.Attrs.ASPath) || !got.Attrs.Communities.Equal(u.Attrs.Communities) {
		t.Fatalf("attrs: %+v", got.Attrs)
	}
}

func TestUpdateRejectsV6WithoutMP(t *testing.T) {
	u := &Update{NLRI: []Prefix{MustPrefix("2001:db8::/32")}, Attrs: testAttrs()}
	if _, err := Encode(u); err == nil {
		t.Fatal("IPv6 NLRI must be rejected in plain UPDATE")
	}
	u2 := &Update{Withdrawn: []Prefix{MustPrefix("2001:db8::/32")}}
	if _, err := Encode(u2); err == nil {
		t.Fatal("IPv6 withdrawal must be rejected in plain UPDATE")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{ASN: 196615, HoldTime: 90, RouterID: netip.MustParseAddr("198.51.100.7"), AS4: true}
	wire, err := Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Open)
	if got.ASN != 196615 || !got.AS4 {
		t.Fatalf("AS4 OPEN: %+v", got)
	}
	if got.HoldTime != 90 || got.RouterID != o.RouterID || got.Version != 4 {
		t.Fatalf("OPEN fields: %+v", got)
	}

	// Without AS4 capability, the 32-bit ASN degrades to AS_TRANS.
	o2 := &Open{ASN: 196615, HoldTime: 180, RouterID: netip.MustParseAddr("10.0.0.1")}
	wire2, _ := Encode(o2)
	got2 := mustDecode(t, wire2).(*Open)
	if got2.ASN != ASTrans || got2.AS4 {
		t.Fatalf("legacy OPEN: %+v", got2)
	}
}

func TestKeepaliveNotification(t *testing.T) {
	wire, err := Encode(Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mustDecode(t, wire).(Keepalive); !ok {
		t.Fatal("keepalive round trip")
	}

	n := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	wire, err = Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	got := mustDecode(t, wire).(*Notification)
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Fatalf("notification: %+v", got)
	}
}

func mustDecode(t *testing.T, wire []byte) Message {
	t.Helper()
	m, err := Decode(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 5), true); err == nil {
		t.Fatal("short buffer")
	}
	bad := make([]byte, HeaderLen)
	if _, err := Decode(bad, true); err == nil {
		t.Fatal("bad marker")
	}
	good, _ := Encode(Keepalive{})
	tampered := append([]byte(nil), good...)
	tampered[17]++ // wrong length
	if _, err := Decode(tampered, true); err == nil {
		t.Fatal("length mismatch")
	}
	tampered2 := append([]byte(nil), good...)
	tampered2[18] = 77 // unknown type
	if _, err := Decode(tampered2, true); err == nil {
		t.Fatal("unknown type")
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Open{ASN: 6695, HoldTime: 90, RouterID: netip.MustParseAddr("80.81.192.0"), AS4: true},
		Keepalive{},
		&Update{Attrs: testAttrs(), NLRI: []Prefix{MustPrefix("10.1.0.0/16")}},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		m, err := ReadMessage(&buf, true)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.Type() != msgs[i].Type() {
			t.Fatalf("msg %d: type %d, want %d", i, m.Type(), msgs[i].Type())
		}
	}
	if _, err := ReadMessage(&buf, true); err == nil {
		t.Fatal("expected EOF")
	}
}

func TestUpdateWireRoundTripProperty(t *testing.T) {
	f := func(asns []uint32, comms []uint32, seed uint32) bool {
		if len(asns) == 0 {
			asns = []uint32{1}
		}
		if len(asns) > 64 {
			asns = asns[:64]
		}
		if len(comms) > 64 {
			comms = comms[:64]
		}
		attrs := &PathAttrs{
			Origin:  uint8(seed % 3),
			NextHop: netip.AddrFrom4([4]byte{byte(seed), byte(seed >> 8), byte(seed >> 16), 1}),
		}
		for _, a := range asns {
			if len(attrs.ASPath) == 0 {
				attrs.ASPath = NewASPath(ASN(a))
			} else {
				attrs.ASPath = attrs.ASPath.Prepend(ASN(a))
			}
		}
		for _, c := range comms {
			attrs.Communities = append(attrs.Communities, Community(c))
		}
		u := &Update{
			Attrs: attrs,
			NLRI:  []Prefix{PrefixFrom(netip.AddrFrom4([4]byte{byte(seed >> 24), byte(seed >> 16), 0, 0}), int(seed%25))},
		}
		wire, err := Encode(u)
		if err != nil {
			return false
		}
		m, err := Decode(wire, true)
		if err != nil {
			return false
		}
		got := m.(*Update)
		if !got.Attrs.ASPath.Equal(attrs.ASPath) {
			return false
		}
		if len(got.Attrs.Communities) != len(attrs.Communities) {
			return false
		}
		for i := range attrs.Communities {
			if got.Attrs.Communities[i] != attrs.Communities[i] {
				return false
			}
		}
		return len(got.NLRI) == 1 && got.NLRI[0] == u.NLRI[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeUpdateAS2ASTrans(t *testing.T) {
	u := &Update{
		Attrs: &PathAttrs{
			Origin:  OriginIGP,
			ASPath:  NewASPath(3356, 196615),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []Prefix{MustPrefix("10.2.0.0/16")},
	}
	wire, err := EncodeUpdateAS2(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	flat := m.(*Update).Attrs.ASPath.Flatten()
	if flat[1] != ASTrans {
		t.Fatalf("expected AS_TRANS, got %v", flat)
	}
}
