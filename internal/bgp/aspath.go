package bgp

import (
	"fmt"
	"strings"
)

// AS path segment types (RFC 4271 §4.3).
const (
	segSet      = 1 // AS_SET: unordered
	segSequence = 2 // AS_SEQUENCE: ordered
)

// PathSegment is one segment of an AS_PATH attribute.
type PathSegment struct {
	Set  bool // true for AS_SET, false for AS_SEQUENCE
	ASNs []ASN
}

// ASPath is the AS_PATH attribute: an ordered list of segments. The
// common case is a single AS_SEQUENCE.
type ASPath []PathSegment

// NewASPath builds a single-sequence path from the given ASNs
// (leftmost = most recent hop, as in BGP).
func NewASPath(asns ...ASN) ASPath {
	if len(asns) == 0 {
		return nil
	}
	return ASPath{{ASNs: asns}}
}

// Prepend returns a copy of the path with asn prepended, as performed by
// each AS when exporting a route. Repeated prepending for path poisoning
// simply calls this multiple times.
func (p ASPath) Prepend(asn ASN) ASPath {
	if len(p) > 0 && !p[0].Set {
		head := make([]ASN, 0, len(p[0].ASNs)+1)
		head = append(head, asn)
		head = append(head, p[0].ASNs...)
		out := make(ASPath, len(p))
		copy(out, p)
		out[0] = PathSegment{ASNs: head}
		return out
	}
	out := make(ASPath, 0, len(p)+1)
	out = append(out, PathSegment{ASNs: []ASN{asn}})
	out = append(out, p...)
	return out
}

// Flatten returns all ASNs in order of appearance, expanding AS_SETs in
// their stored order. This is the "series of adjacent AS links" view used
// by topology extraction.
func (p ASPath) Flatten() []ASN {
	var out []ASN
	for _, seg := range p {
		out = append(out, seg.ASNs...)
	}
	return out
}

// Origin returns the origin AS (rightmost) and true, or 0 and false for
// an empty path or one ending in an AS_SET (whose origin is ambiguous).
func (p ASPath) Origin() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	last := p[len(p)-1]
	if last.Set || len(last.ASNs) == 0 {
		return 0, false
	}
	return last.ASNs[len(last.ASNs)-1], true
}

// First returns the leftmost AS (the collector's direct peer) and true.
func (p ASPath) First() (ASN, bool) {
	if len(p) == 0 || p[0].Set || len(p[0].ASNs) == 0 {
		return 0, false
	}
	return p[0].ASNs[0], true
}

// Len returns the AS_PATH length as used by the BGP decision process:
// each AS in a sequence counts 1, each AS_SET counts 1 in total.
func (p ASPath) Len() int {
	n := 0
	for _, seg := range p {
		if seg.Set {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// Contains reports whether asn appears anywhere in the path. Used both
// for loop prevention and by the inference pipeline's filters.
func (p ASPath) Contains(asn ASN) bool {
	for _, seg := range p {
		for _, a := range seg.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// HasCycle reports whether the flattened path visits any AS twice in
// non-adjacent positions. Adjacent repeats are legitimate prepending;
// non-adjacent repeats indicate poisoning or misconfiguration and are
// filtered by the paper's pipeline (§5).
func (p ASPath) HasCycle() bool {
	flat := p.Flatten()
	seen := make(map[ASN]int, len(flat))
	for i, a := range flat {
		if j, ok := seen[a]; ok && flat[i-1] != a {
			_ = j
			return true
		}
		seen[a] = i
	}
	return false
}

// Dedup returns the flattened path with adjacent duplicates (prepending)
// collapsed. Link extraction works on this form.
func (p ASPath) Dedup() []ASN {
	flat := p.Flatten()
	out := flat[:0:0]
	for _, a := range flat {
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// Clone returns a deep copy.
func (p ASPath) Clone() ASPath {
	if p == nil {
		return nil
	}
	out := make(ASPath, len(p))
	for i, seg := range p {
		out[i] = PathSegment{Set: seg.Set, ASNs: append([]ASN(nil), seg.ASNs...)}
	}
	return out
}

// Equal reports exact structural equality.
func (p ASPath) Equal(o ASPath) bool {
	if len(p) != len(o) {
		return false
	}
	for i := range p {
		if p[i].Set != o[i].Set || len(p[i].ASNs) != len(o[i].ASNs) {
			return false
		}
		for j := range p[i].ASNs {
			if p[i].ASNs[j] != o[i].ASNs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the path the way router CLIs do: sequences as
// space-separated ASNs, sets in braces.
func (p ASPath) String() string {
	var b strings.Builder
	for i, seg := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		if seg.Set {
			b.WriteByte('{')
			for j, a := range seg.ASNs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(a.String())
			}
			b.WriteByte('}')
		} else {
			for j, a := range seg.ASNs {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(a.String())
			}
		}
	}
	return b.String()
}

// ParseASPath parses the String form back into a path.
func ParseASPath(s string) (ASPath, error) {
	var path ASPath
	var seq []ASN
	flushSeq := func() {
		if len(seq) > 0 {
			path = append(path, PathSegment{ASNs: seq})
			seq = nil
		}
	}
	fields := strings.Fields(s)
	for _, f := range fields {
		if strings.HasPrefix(f, "{") {
			flushSeq()
			inner := strings.TrimSuffix(strings.TrimPrefix(f, "{"), "}")
			var set []ASN
			for _, part := range strings.Split(inner, ",") {
				if part == "" {
					continue
				}
				a, err := ParseASN(part)
				if err != nil {
					return nil, err
				}
				set = append(set, a)
			}
			path = append(path, PathSegment{Set: true, ASNs: set})
			continue
		}
		a, err := ParseASN(f)
		if err != nil {
			return nil, err
		}
		seq = append(seq, a)
	}
	flushSeq()
	return path, nil
}

// wireLen returns the serialized length of the path without encoding
// it, so callers can emit the attribute header before the body.
func (p ASPath) wireLen(as4 bool) int {
	size := 2
	if as4 {
		size = 4
	}
	n := 0
	for _, seg := range p {
		n += 2 + size*len(seg.ASNs)
	}
	return n
}

// appendWire serializes the path. If as4 is true ASNs are encoded as 4
// octets (RFC 6793), otherwise as 2 octets with 32-bit ASNs replaced by
// AS_TRANS.
func (p ASPath) appendWire(dst []byte, as4 bool) []byte {
	for _, seg := range p {
		t := byte(segSequence)
		if seg.Set {
			t = segSet
		}
		dst = append(dst, t, byte(len(seg.ASNs)))
		for _, a := range seg.ASNs {
			if as4 {
				dst = append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
			} else {
				if a.Is32Bit() {
					a = ASTrans
				}
				dst = append(dst, byte(a>>8), byte(a))
			}
		}
	}
	return dst
}

// decodeASPath parses an AS_PATH attribute body.
func decodeASPath(b []byte, as4 bool) (ASPath, error) {
	return decodeASPathArena(b, as4, nil)
}

// decodeASPathArena parses an AS_PATH attribute body, carving segments
// and ASN arrays from arena when it is non-nil.
func decodeASPathArena(b []byte, as4 bool, arena *AttrArena) (ASPath, error) {
	size := 2
	if as4 {
		size = 4
	}
	// Pre-scan the segment headers so arena paths carve exactly one
	// segment slice (the common case is a single AS_SEQUENCE).
	nseg := 0
	for rest := b; len(rest) > 0; {
		if len(rest) < 2 {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment header")
		}
		t, n := rest[0], int(rest[1])
		if t != segSet && t != segSequence {
			return nil, fmt.Errorf("bgp: unknown AS_PATH segment type %d", t)
		}
		if len(rest) < 2+n*size {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment: need %d bytes, have %d", n*size, len(rest)-2)
		}
		rest = rest[2+n*size:]
		nseg++
	}
	if nseg == 0 {
		return nil, nil
	}
	var path ASPath
	if arena != nil {
		path = ASPath(arena.segSlice(nseg))
	} else {
		path = make(ASPath, nseg)
	}
	for si := 0; si < nseg; si++ {
		t, n := b[0], int(b[1])
		b = b[2:]
		var asns []ASN
		if arena != nil {
			asns = arena.asnSlice(n)
		} else {
			asns = make([]ASN, n)
		}
		for i := 0; i < n; i++ {
			if as4 {
				asns[i] = ASN(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
				b = b[4:]
			} else {
				asns[i] = ASN(uint16(b[0])<<8 | uint16(b[1]))
				b = b[2:]
			}
		}
		path[si] = PathSegment{Set: t == segSet, ASNs: asns}
	}
	return path, nil
}
