package bgp

import (
	"testing"
	"testing/quick"
)

func TestASPathBasics(t *testing.T) {
	p := NewASPath(3356, 6695, 8359)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if o, ok := p.Origin(); !ok || o != 8359 {
		t.Fatalf("Origin = %v, %v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 3356 {
		t.Fatalf("First = %v, %v", f, ok)
	}
	if !p.Contains(6695) || p.Contains(1) {
		t.Fatal("Contains wrong")
	}
	if p.String() != "3356 6695 8359" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestASPathEmpty(t *testing.T) {
	var p ASPath
	if p.Len() != 0 {
		t.Fatal("empty Len")
	}
	if _, ok := p.Origin(); ok {
		t.Fatal("empty Origin should fail")
	}
	if _, ok := p.First(); ok {
		t.Fatal("empty First should fail")
	}
	if NewASPath() != nil {
		t.Fatal("NewASPath() should be nil")
	}
}

func TestASPathPrepend(t *testing.T) {
	p := NewASPath(2, 3)
	q := p.Prepend(1)
	if q.String() != "1 2 3" {
		t.Fatalf("Prepend = %q", q.String())
	}
	// Original untouched.
	if p.String() != "2 3" {
		t.Fatalf("Prepend mutated receiver: %q", p.String())
	}
	// Prepend onto empty.
	var empty ASPath
	if got := empty.Prepend(9).String(); got != "9" {
		t.Fatalf("Prepend to empty = %q", got)
	}
	// Prepend before an AS_SET opens a new sequence segment.
	withSet := ASPath{{Set: true, ASNs: []ASN{5, 6}}}
	got := withSet.Prepend(4)
	if len(got) != 2 || got[0].Set || got[0].ASNs[0] != 4 {
		t.Fatalf("Prepend before set = %v", got)
	}
}

func TestASPathSetRendering(t *testing.T) {
	p := ASPath{
		{ASNs: []ASN{701, 1239}},
		{Set: true, ASNs: []ASN{3, 4}},
	}
	if p.String() != "701 1239 {3,4}" {
		t.Fatalf("String = %q", p.String())
	}
	if p.Len() != 3 { // set counts once
		t.Fatalf("Len = %d", p.Len())
	}
	if _, ok := p.Origin(); ok {
		t.Fatal("Origin through trailing AS_SET must be ambiguous")
	}
	back, err := ParseASPath(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(p) {
		t.Fatalf("round trip: %v vs %v", back, p)
	}
}

func TestParseASPathErrors(t *testing.T) {
	for _, bad := range []string{"1 2 x", "{1,y}", "99999999999"} {
		if _, err := ParseASPath(bad); err == nil {
			t.Errorf("ParseASPath(%q): expected error", bad)
		}
	}
	p, err := ParseASPath("")
	if err != nil || p != nil {
		t.Fatalf("empty parse = %v, %v", p, err)
	}
}

func TestASPathCycleDetection(t *testing.T) {
	cases := []struct {
		path []ASN
		want bool
	}{
		{[]ASN{1, 2, 3}, false},
		{[]ASN{1, 2, 2, 2, 3}, false}, // prepending
		{[]ASN{1, 2, 3, 1}, true},     // poisoning loop
		{[]ASN{1, 2, 1, 2}, true},
		{[]ASN{7}, false},
		{nil, false},
	}
	for _, c := range cases {
		p := NewASPath(c.path...)
		if got := p.HasCycle(); got != c.want {
			t.Errorf("HasCycle(%v) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestASPathDedup(t *testing.T) {
	p := NewASPath(1, 2, 2, 2, 3, 3)
	d := p.Dedup()
	want := []ASN{1, 2, 3}
	if len(d) != len(want) {
		t.Fatalf("Dedup = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Dedup = %v, want %v", d, want)
		}
	}
}

func TestASPathWireRoundTrip4(t *testing.T) {
	p := ASPath{
		{ASNs: []ASN{3356, 196615, 8359}}, // includes a 32-bit ASN
		{Set: true, ASNs: []ASN{64512, 70000}},
	}
	wire := p.appendWire(nil, true)
	back, err := decodeASPath(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(p) {
		t.Fatalf("round trip 4-byte: %v vs %v", back, p)
	}
}

func TestASPathWire2ByteSubstitutesASTrans(t *testing.T) {
	p := NewASPath(3356, 196615, 8359)
	wire := p.appendWire(nil, false)
	back, err := decodeASPath(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	flat := back.Flatten()
	if flat[1] != ASTrans {
		t.Fatalf("32-bit ASN not replaced by AS_TRANS: %v", flat)
	}
}

func TestDecodeASPathErrors(t *testing.T) {
	if _, err := decodeASPath([]byte{2}, true); err == nil {
		t.Fatal("truncated header must error")
	}
	if _, err := decodeASPath([]byte{9, 1, 0, 0, 0, 1}, true); err == nil {
		t.Fatal("unknown segment type must error")
	}
	if _, err := decodeASPath([]byte{2, 2, 0, 0, 0, 1}, true); err == nil {
		t.Fatal("short segment must error")
	}
}

func TestASPathWireRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, setMask uint8) bool {
		if len(raw) == 0 {
			return true
		}
		// Build a path of 1-4 segments from raw values.
		var p ASPath
		segLen := len(raw)/2 + 1
		for i := 0; i < len(raw); i += segLen {
			end := i + segLen
			if end > len(raw) {
				end = len(raw)
			}
			asns := make([]ASN, 0, end-i)
			for _, v := range raw[i:end] {
				asns = append(asns, ASN(v))
			}
			p = append(p, PathSegment{Set: setMask&(1<<(uint(i)%8)) != 0, ASNs: asns})
		}
		wire := p.appendWire(nil, true)
		back, err := decodeASPath(wire, true)
		if err != nil {
			return false
		}
		return back.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestASPathCloneIndependence(t *testing.T) {
	p := NewASPath(1, 2, 3)
	c := p.Clone()
	c[0].ASNs[0] = 99
	if p[0].ASNs[0] != 1 {
		t.Fatal("Clone aliases segment storage")
	}
}
