package bgp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Community is a standard 32-bit BGP community (RFC 1997), conventionally
// written high:low where each half is a 16-bit decimal.
type Community uint32

// Well-known communities (RFC 1997 / RFC 3765).
const (
	CommunityNoExport          Community = 0xFFFFFF01
	CommunityNoAdvertise       Community = 0xFFFFFF02
	CommunityNoExportSubconfed Community = 0xFFFFFF03
)

// MakeCommunity composes a community from its 16-bit halves. Values
// above 16 bits are truncated, mirroring what happens on routers when an
// operator tries to encode a 32-bit ASN directly.
func MakeCommunity(high, low ASN) Community {
	return Community(uint32(high&0xFFFF)<<16 | uint32(low&0xFFFF))
}

// High returns the upper 16 bits as an ASN.
func (c Community) High() ASN { return ASN(c >> 16) }

// Low returns the lower 16 bits as an ASN.
func (c Community) Low() ASN { return ASN(c & 0xFFFF) }

// String renders the community in canonical high:low form.
func (c Community) String() string {
	switch c {
	case CommunityNoExport:
		return "no-export"
	case CommunityNoAdvertise:
		return "no-advertise"
	case CommunityNoExportSubconfed:
		return "no-export-subconfed"
	}
	return strconv.FormatUint(uint64(c>>16), 10) + ":" + strconv.FormatUint(uint64(c&0xFFFF), 10)
}

// ParseCommunity parses "high:low" decimal notation, as well as the
// well-known names used by router CLIs.
func ParseCommunity(s string) (Community, error) {
	switch strings.ToLower(s) {
	case "no-export":
		return CommunityNoExport, nil
	case "no-advertise":
		return CommunityNoAdvertise, nil
	case "no-export-subconfed", "local-as":
		return CommunityNoExportSubconfed, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, fmt.Errorf("bgp: community %q: missing ':'", s)
	}
	hi, err := strconv.ParseUint(s[:i], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad high half: %w", s, err)
	}
	lo, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad low half: %w", s, err)
	}
	return Community(uint32(hi)<<16 | uint32(lo)), nil
}

// Communities is an ordered set of community values as carried in the
// COMMUNITIES path attribute.
type Communities []Community

// ParseCommunities parses a whitespace-separated list, the format in
// which looking glasses print the attribute.
func ParseCommunities(s string) (Communities, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, nil
	}
	cs := make(Communities, 0, len(fields))
	for _, f := range fields {
		c, err := ParseCommunity(f)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// String renders the set space-separated in canonical order of appearance.
func (cs Communities) String() string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// Contains reports whether c is present.
func (cs Communities) Contains(c Community) bool {
	for _, v := range cs {
		if v == c {
			return true
		}
	}
	return false
}

// Clone returns an independent copy.
func (cs Communities) Clone() Communities {
	if cs == nil {
		return nil
	}
	out := make(Communities, len(cs))
	copy(out, cs)
	return out
}

// Sorted returns a sorted copy; used to canonicalize sets for comparison.
func (cs Communities) Sorted() Communities {
	out := cs.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dedup returns a sorted copy with duplicates removed.
func (cs Communities) Dedup() Communities {
	if len(cs) == 0 {
		return nil
	}
	out := cs.Sorted()
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Equal reports whether two sets carry the same values irrespective of
// order and multiplicity. The paper's consistency analysis (§4.3)
// compares community sets across prefix announcements this way.
func (cs Communities) Equal(other Communities) bool {
	a, b := cs.Dedup(), other.Dedup()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WithHigh returns the subset whose high half equals asn. Route server
// community schemes key on this (e.g. 6695:* at DE-CIX).
func (cs Communities) WithHigh(asn ASN) Communities {
	var out Communities
	for _, c := range cs {
		if c.High() == asn {
			out = append(out, c)
		}
	}
	return out
}
