// Package bgp provides the core BGP data model used throughout the
// repository: autonomous system numbers, IP prefixes, BGP communities,
// path attributes and the RFC 4271 wire codec for BGP messages.
//
// The package is self-contained (standard library only) and is the
// foundation for the MRT archive codec (internal/mrt), the routing
// information bases (internal/rib), the route server (internal/routeserver)
// and ultimately the multilateral peering inference algorithm
// (internal/core).
package bgp

import (
	"fmt"
	"strconv"
)

// ASN is a 32-bit autonomous system number (RFC 6793).
type ASN uint32

// Well-known ASN boundaries.
const (
	// ASTrans is the reserved 16-bit placeholder for 32-bit ASNs
	// when speaking to 2-byte-only peers (RFC 6793).
	ASTrans ASN = 23456

	// FirstPrivate16 .. LastPrivate16 is the 16-bit private use range
	// (RFC 6996). IXP operators map 32-bit member ASNs into this range
	// so they can be encoded in the 16-bit field of a standard community.
	FirstPrivate16 ASN = 64512
	LastPrivate16  ASN = 65534

	// FirstReserved32 .. LastReserved32 covers the block the paper
	// filters out of AS paths (63488-131071): documentation, private
	// 32-bit and reserved ASNs that must not appear in public routing.
	FirstReserved32 ASN = 63488
	LastReserved32  ASN = 131071

	// FirstPrivate32 .. LastPrivate32 is the 32-bit private use range
	// (RFC 6996).
	FirstPrivate32 ASN = 4200000000
	LastPrivate32  ASN = 4294967294
)

// String returns the decimal ("asplain") representation.
func (a ASN) String() string { return strconv.FormatUint(uint64(a), 10) }

// IsPrivate reports whether the ASN falls in a private-use range.
func (a ASN) IsPrivate() bool {
	return (a >= FirstPrivate16 && a <= LastPrivate16) ||
		(a >= FirstPrivate32 && a <= LastPrivate32)
}

// IsReserved reports whether the ASN should never appear in a public AS
// path: zero, AS_TRANS, or the 63488-131071 block the paper filters.
func (a ASN) IsReserved() bool {
	return a == 0 || a == ASTrans ||
		(a >= FirstReserved32 && a <= LastReserved32) ||
		a == 4294967295
}

// Routable reports whether the ASN may legitimately appear in a public
// AS path: not reserved and not private.
func (a ASN) Routable() bool { return !a.IsReserved() && !a.IsPrivate() }

// Is32Bit reports whether the ASN does not fit in 16 bits and therefore
// cannot be encoded directly in the low half of a standard community.
func (a ASN) Is32Bit() bool { return a > 0xFFFF }

// ParseASN parses a decimal ASN, accepting an optional "AS" prefix
// ("6695" and "AS6695" are equivalent).
func ParseASN(s string) (ASN, error) {
	if len(s) > 2 && (s[0] == 'A' || s[0] == 'a') && (s[1] == 'S' || s[1] == 's') {
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bgp: invalid ASN %q: %w", s, err)
	}
	return ASN(v), nil
}

// ASNMapper maps 32-bit member ASNs to 16-bit private ASNs so that they
// can be referenced by the peer-asn half of a route server community.
// Many IXP operators maintain exactly this table (paper §3).
//
// The zero value is ready to use. ASNMapper is not safe for concurrent
// mutation; route servers build the table once at configuration time.
type ASNMapper struct {
	fwd  map[ASN]ASN // real 32-bit ASN -> private 16-bit alias
	rev  map[ASN]ASN // alias -> real
	next ASN
}

// NewASNMapper returns a mapper allocating aliases from the 16-bit
// private range starting at FirstPrivate16.
func NewASNMapper() *ASNMapper {
	return &ASNMapper{
		fwd:  make(map[ASN]ASN),
		rev:  make(map[ASN]ASN),
		next: FirstPrivate16,
	}
}

// Alias returns the 16-bit alias for asn, allocating one if necessary.
// ASNs that already fit in 16 bits are returned unchanged and no mapping
// is recorded for them.
func (m *ASNMapper) Alias(asn ASN) (ASN, error) {
	if !asn.Is32Bit() {
		return asn, nil
	}
	if a, ok := m.fwd[asn]; ok {
		return a, nil
	}
	for m.next <= LastPrivate16 {
		a := m.next
		m.next++
		if _, taken := m.rev[a]; taken {
			continue
		}
		m.fwd[asn] = a
		m.rev[a] = asn
		return a, nil
	}
	return 0, fmt.Errorf("bgp: 16-bit private ASN space exhausted mapping %s", asn)
}

// Resolve maps a value found in the peer-asn half of a community back to
// the real ASN. Values that are not aliases resolve to themselves.
func (m *ASNMapper) Resolve(alias ASN) ASN {
	if real, ok := m.rev[alias]; ok {
		return real
	}
	return alias
}

// Len returns the number of 32-bit ASNs currently aliased.
func (m *ASNMapper) Len() int { return len(m.fwd) }
