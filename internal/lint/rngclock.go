package lint

import (
	"go/ast"
	"go/types"

	"mlpeering/internal/lint/analysis"
)

// RNGClock flags ambient nondeterminism sources in internal/
// packages: calls to math/rand (and math/rand/v2) package-level
// functions — the process-global, auto-seeded RNG — and calls to
// time.Now. Every random draw in the pipeline must come from an
// explicitly seeded *rand.Rand stream (topology.Builder.StageRNG,
// the churn schedule's per-epoch sources) so that worlds and
// schedules replay byte-identically; every timestamp must derive
// from the deterministic schedule, not the wall clock. Seeded-stream
// constructors (rand.New, rand.NewSource, ...) and *rand.Rand
// methods are always fine. cmd/, examples/, and _test.go timing code
// are out of jurisdiction. Deliberate wall-clock or global-RNG use
// (live protocol timing, telemetry) carries //mlplint:clock or
// //mlplint:rng with a reason.
var RNGClock = &analysis.Analyzer{
	Name: "rngclock",
	Doc:  "flags math/rand global functions and time.Now in internal packages",
	Run:  runRNGClock,
}

// rngConstructors are the seeded-stream entry points of math/rand and
// math/rand/v2 that are always allowed.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runRNGClock(pass *analysis.Pass) error {
	if !internalPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		w := newWaivers(pass.Fset, file)
		walkStack(file, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand) are seeded streams
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !rngConstructors[fn.Name()] && !w.check(pass, stack, call, ruleRNG) {
					pass.Reportf(call.Pos(), "rand.%s uses the process-global RNG: draw from a seeded *rand.Rand stream (StageRNG / schedule seed) or waive with //mlplint:rng <reason>", fn.Name())
				}
			case "time":
				if fn.Name() == "Now" && !w.check(pass, stack, call, ruleClock) {
					pass.Reportf(call.Pos(), "time.Now in an internal package: derive timestamps from the deterministic schedule or waive with //mlplint:clock <reason>")
				}
			}
			return true
		})
	}
	return nil
}
