package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// allocgateScript locates scripts/allocgate.sh relative to this file.
func allocgateScript(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	script := filepath.Join(filepath.Dir(self), "..", "..", "scripts", "allocgate.sh")
	if _, err := os.Stat(script); err != nil {
		t.Fatalf("allocgate.sh not found: %v", err)
	}
	return script
}

// runCompare invokes allocgate.sh -compare on two prepared escape lists.
func runCompare(t *testing.T, base, cur string) (string, int) {
	t.Helper()
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skipf("bash unavailable: %v", err)
	}
	dir := t.TempDir()
	basef := filepath.Join(dir, "base")
	curf := filepath.Join(dir, "cur")
	if err := os.WriteFile(basef, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curf, []byte(cur), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("bash", allocgateScript(t), "-compare", basef, curf).CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running allocgate.sh: %v (output: %s)", err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

const baselined = "(*Engine).compute\tmake([]hop, n) escapes to heap\n"

// TestAllocGateDeliberateEscape demonstrates the gate's failure mode:
// an escape present in the tree but absent from the baseline — i.e. a
// new heap allocation inside a //mlplint:allocfree function — fails the
// compare with the offending line named.
func TestAllocGateDeliberateEscape(t *testing.T) {
	escape := "(*MeshState).Apply\t&meshEvent{...} escapes to heap\n"
	out, code := runCompare(t, baselined, baselined+escape)
	if code == 0 {
		t.Fatalf("compare passed with a new escape; output:\n%s", out)
	}
	if !strings.Contains(out, "new heap escapes") || !strings.Contains(out, "(*MeshState).Apply") {
		t.Errorf("failure output does not name the new escape:\n%s", out)
	}
}

// TestAllocGateClean pins the passing path: identical escape lists gate
// green.
func TestAllocGateClean(t *testing.T) {
	out, code := runCompare(t, baselined, baselined)
	if code != 0 {
		t.Fatalf("compare failed on identical lists (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "no new escapes") {
		t.Errorf("passing output missing summary:\n%s", out)
	}
}

// TestAllocGateTightenNudge pins the improvement path: a baselined
// escape the compiler no longer produces passes the gate but nudges
// toward regenerating the baseline.
func TestAllocGateTightenNudge(t *testing.T) {
	gone := "(*windowMiner).flushObs\tfunc literal escapes to heap\n"
	out, code := runCompare(t, baselined+gone, baselined)
	if code != 0 {
		t.Fatalf("compare failed on a disappeared escape (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "-update") {
		t.Errorf("improvement output missing the -update nudge:\n%s", out)
	}
}
