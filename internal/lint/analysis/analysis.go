// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are reported through a callback. It exists because this
// module is intentionally stdlib-only; the surface mirrors x/tools
// closely enough that the analyzers in internal/lint could be ported
// to the real multichecker by swapping this import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mlplint: waiver comments.
	Name string
	// Doc is a one-paragraph description of the invariant the
	// analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Safe to call multiple times;
	// the driver orders and deduplicates output.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
