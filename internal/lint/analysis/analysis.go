// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are reported through a callback. It exists because this
// module is intentionally stdlib-only; the surface mirrors x/tools
// closely enough that the analyzers in internal/lint could be ported
// to the real multichecker by swapping this import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mlplint: waiver comments.
	Name string
	// Doc is a one-paragraph description of the invariant the
	// analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Safe to call multiple times;
	// the driver orders and deduplicates output.
	Report func(Diagnostic)
	// Module, when non-nil, exposes the syntax of other packages in
	// the same load (the x/tools Facts mechanism's poor cousin).
	// Analyzers that honor cross-package annotations — frozen's type
	// markings, notably — consult it for each import; a nil Module or
	// a nil PackageFiles result degrades to same-package analysis.
	Module ModuleSyntax
}

// ModuleSyntax resolves an import path to the parsed files of that
// package, or nil when the driver has no syntax for it (dependencies
// loaded from export data, the standard library).
type ModuleSyntax interface {
	PackageFiles(path string) []*ast.File
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Waived marks a finding suppressed by an audited
	// //mlplint:<rule> <reason> comment. Waived diagnostics carry the
	// waiver's reason in Message, do not fail the build, and exist so
	// machine consumers (mlplint -json) can see the full audited
	// exception set, not just the live findings.
	Waived bool
}
