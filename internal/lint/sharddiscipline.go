package lint

import (
	"go/ast"
	"go/types"

	"mlpeering/internal/lint/analysis"
)

// ShardDiscipline flags closures handed to the internal/par worker
// pool that write to captured shared variables without deriving the
// write target from the worker's own task. par.Run's contract is
// that tasks own disjoint shards of the mutable state: `results[task]
// = ...` is the sanctioned shape, `shared = append(shared, ...)` or
// `count++` against a capture is a cross-task race whose commit order
// depends on goroutine scheduling — exactly the bug class PR 7's
// buffered-commit design exists to prevent, and the race detector
// only catches when the schedule cooperates. A write is allowed when
// its target is declared inside the closure or is indexed by an
// expression mentioning a closure-local variable (the task parameter
// or anything derived from it). Deliberate exceptions (e.g. a
// mutex-guarded metric) carry //mlplint:shared <reason>.
var ShardDiscipline = &analysis.Analyzer{
	Name: "sharddiscipline",
	Doc:  "flags par worker closures writing to captured state not indexed by their own task",
	Run:  runShardDiscipline,
}

// parPkg is the worker-pool package, matched by path suffix so
// linttest fixtures mirroring the path are caught too.
const parPkg = "internal/par"

func runShardDiscipline(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		w := newWaivers(pass.Fset, file)
		walkStack(file, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isPkgFunc(fn, parPkg) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkWorkerClosure(pass, w, stack, lit)
				}
			}
			return true
		})
	}
	return nil
}

func checkWorkerClosure(pass *analysis.Pass, w *waivers, stack []ast.Node, lit *ast.FuncLit) {
	// Nested closures are walked too: they share the worker's frame,
	// so their captured writes are judged by the same rule.
	walkStack(lit.Body, func(inner []ast.Node, n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWorkerWrite(pass, w, stack, inner, lit, x, lhs)
			}
		case *ast.IncDecStmt:
			checkWorkerWrite(pass, w, stack, inner, lit, x, x.X)
		}
		return true
	})
}

func checkWorkerWrite(pass *analysis.Pass, w *waivers, stack, inner []ast.Node, lit *ast.FuncLit, stmt ast.Node, lhs ast.Expr) {
	info := pass.TypesInfo
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := objOf(info, root)
	if obj == nil || declaredWithin(obj, lit) {
		return // closure-local (params included): the task owns it
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if obj.Parent() == types.Universe || obj.Pkg() == nil {
		return
	}
	if indexedWithin(info, lhs, lit) {
		return // shard selected by the worker's own task
	}
	full := append(append([]ast.Node{}, stack...), inner...)
	if w.check(pass, full, stmt, ruleShared) {
		return
	}
	pass.Reportf(stmt.Pos(), "par worker closure writes to captured %q without indexing by its own task: give each task a disjoint shard (e.g. %s[task]) and commit sequentially, or waive with //mlplint:shared <reason>", root.Name, root.Name)
}

// indexedWithin reports whether any index expression along the
// lvalue chain mentions a variable declared inside scope — for a
// worker closure that means the task parameter or a local derived
// from it; for a map range, the iteration key (distinct per
// iteration, hence commutative across cells).
func indexedWithin(info *types.Info, lhs ast.Expr, scope ast.Node) bool {
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			if mentionsDeclaredWithin(info, x.Index, scope) {
				return true
			}
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

func mentionsDeclaredWithin(info *types.Info, e ast.Expr, scope ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil && declaredWithin(obj, scope) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
