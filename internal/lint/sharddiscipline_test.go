package lint_test

import (
	"testing"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/linttest"
)

func TestShardDiscipline(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.ShardDiscipline, "shardfix")
	if got, want := len(diags), 2; got != want {
		t.Errorf("diagnostics = %d, want %d", got, want)
	}
}
