package lint_test

import (
	"testing"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/linttest"
)

func TestFloatOrder(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.FloatOrder, "floatfix")
	if got, want := len(diags), 2; got != want {
		t.Errorf("diagnostics = %d, want %d", got, want)
	}
}
