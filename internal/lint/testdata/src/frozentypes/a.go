// Package frozentypes declares annotated snapshot types for the
// cross-package frozen fixture: one frozen by type annotation, one
// frozen only via its builder's result.
package frozentypes

// Snap is frozen by its type annotation.
//
//mlplint:frozen
type Snap struct{ N int }

// View is frozen because NewView, its builder, is annotated.
type View struct{ M map[string]int }

// NewView publishes a View.
//
//mlplint:frozen
func NewView() *View { return &View{M: make(map[string]int)} }
