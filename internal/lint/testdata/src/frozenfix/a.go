// Package frozenfix exercises the frozen analyzer inside one
// package: annotated type, sanctioned builder, post-publication
// writes through the value and through aliases, and the waiver forms.
package frozenfix

// Plan is an immutable snapshot once published.
//
//mlplint:frozen
type Plan struct {
	N     int
	Items []int
	Tags  map[string]int
}

// NewPlan is the sanctioned construction window.
//
//mlplint:frozen
func NewPlan(n int) *Plan {
	p := &Plan{N: n, Tags: make(map[string]int)}
	p.Items = append(p.Items, n)
	p.Tags["seed"] = n
	return p
}

// mutate writes after publication: every store form is flagged.
func mutate(p *Plan) {
	p.N = 1                      // want `write through frozen \*frozenfix.Plan`
	p.Items[0] = 2               // want `write through frozen \*frozenfix.Plan`
	p.Tags["x"] = 3              // want `write through frozen \*frozenfix.Plan`
	p.Items = append(p.Items, 4) // want `write through frozen \*frozenfix.Plan`
	delete(p.Tags, "x")          // want `delete through frozen \*frozenfix.Plan`
}

// aliasMutate writes through aliases; the check is type-driven, so
// renaming the pointer does not escape it.
func aliasMutate(p *Plan) {
	q := p
	q.N++      // want `write through frozen \*frozenfix.Plan`
	(*p).N = 5 // want `write through frozen \*frozenfix.Plan`
}

// valueCopy dereferences into a local copy: writes touch the copy,
// not the published value, and pass.
func valueCopy(p *Plan) int {
	v := *p
	v.N = 9
	return v.N
}

// waived carries audited exceptions in all three comment forms.
func waived(p *Plan) {
	//mlplint:frozen memo fill is idempotent and race-free
	p.N = 7
	p.Items[0] = 8 //mlplint:frozen same-line waiver form
	/*mlplint:frozen block-comment waiver form*/
	p.N = 9
}

// reasonless waivers are themselves findings.
func reasonless(p *Plan) {
	//mlplint:frozen
	p.N = 10 // want `//mlplint:frozen waiver requires a reason`
}
