// Package guardedfix exercises the guardedby analyzer: directive and
// prose annotations, positional Lock/Unlock, defer forms, RLock, the
// early-exit unlock pattern, the *Locked helper convention,
// construction windows, and the waiver forms.
package guardedfix

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the shared count.
	//
	//mlplint:guardedby mu
	n    int
	hits int // guarded by mu
	free int
}

type table struct {
	rw   sync.RWMutex
	rows map[string]int // guarded by rw
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	return c.n
}

// goodEarlyExit releases on the early-return path; the unlock there
// belongs to another control flow and must not end the critical
// section for the code below the if.
func (c *counter) goodEarlyExit() {
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		return
	}
	c.n--
	c.mu.Unlock()
}

// addLocked follows the lock-held helper convention.
func (c *counter) addLocked(d int) { c.n += d }

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func newCounter() *counter {
	c := &counter{n: 1} // composite-literal key: exempt
	c.hits = 0          // pre-publication: built in this function
	return c
}

func (c *counter) bad() int {
	c.free++   // unannotated field: silent
	return c.n // want `access to c.n without holding c.mu`
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `access to c.n without holding c.mu`
}

// badClosure captures guarded state: a lock held where the closure is
// defined proves nothing about when it runs.
func (c *counter) badClosure() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() { c.n++ } // want `access to c.n without holding c.mu`
}

// waivedFunc's doc waiver covers the whole function.
//
//mlplint:guardedby single-goroutine helper, no concurrent access
func (c *counter) waivedFunc() int { return c.n }

func (c *counter) waivedLine() int {
	//mlplint:guardedby stale snapshot read is tolerated here
	return c.n
}

func (c *counter) reasonless() int {
	//mlplint:guardedby
	return c.n // want `//mlplint:guardedby waiver requires a reason`
}
