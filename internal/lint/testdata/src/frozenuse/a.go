// Package frozenuse mutates frozentypes' snapshots: the annotations
// live in the other package and reach this pass via Pass.Module.
package frozenuse

import "frozentypes"

func mutate(s *frozentypes.Snap, v *frozentypes.View) {
	s.N = 1      // want `write through frozen \*frozentypes.Snap`
	v.M["x"] = 2 // want `write through frozen \*frozentypes.View`
}

// refill is annotated locally as a builder, so it may repopulate a
// View during construction.
//
//mlplint:frozen
func refill(v *frozentypes.View) {
	v.M["seed"] = 0
}
