// Package shardfix exercises the sharddiscipline analyzer.
package shardfix

import "internal/par"

// badAppend grows a captured slice from concurrent workers: commit
// order depends on the schedule.
func badAppend(items []int) []int {
	var out []int
	par.Run(4, len(items), func(task int) {
		out = append(out, items[task]*2) // want `writes to captured "out"`
	})
	return out
}

// badCounter bumps a captured counter: a cross-task race.
func badCounter(items []int) int {
	count := 0
	par.Run(4, len(items), func(task int) {
		if items[task] > 0 {
			count++ // want `writes to captured "count"`
		}
	})
	return count
}

// goodShard writes only the task's own cell.
func goodShard(items []int) []int {
	out := make([]int, len(items))
	par.Run(4, len(items), func(task int) {
		out[task] = items[task] * 2
	})
	return out
}

// goodDerived indexes by a value derived from the task.
func goodDerived(items []int, stride int) []int {
	out := make([]int, len(items)*stride)
	par.Run(4, len(items), func(task int) {
		base := task * stride
		out[base] = items[task]
	})
	return out
}

// goodLocal mutates only closure-local state.
func goodLocal(items []int) {
	par.Run(4, len(items), func(task int) {
		acc := 0
		for _, v := range items {
			acc += v
		}
		_ = acc
	})
}

// waived carries a reasoned waiver on the captured write.
func waived(items []int) int {
	total := 0
	par.Run(1, len(items), func(task int) {
		//mlplint:shared single-worker pool in this path; commit order is the task order
		total += items[task]
	})
	return total
}
