// Package par mirrors the real worker-pool API (internal/par) so the
// lint fixtures can exercise the sharddiscipline and floatorder
// analyzers, which match callees by package-path suffix.
package par

// Run executes tasks 0..n-1, sequentially in this fixture.
func Run(workers, n int, fn func(task int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Workers mirrors the real knob resolver.
func Workers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
