// Package rngfix exercises the rngclock analyzer; its fixture path
// sits under internal/ because the analyzer's jurisdiction is the
// internal tree.
package rngfix

import (
	"math/rand"
	"time"
)

// bad reaches for the process-global RNG and the wall clock.
func bad() (int, time.Time) {
	n := rand.Intn(10) // want `rand.Intn uses the process-global RNG`
	t := time.Now()    // want `time.Now in an internal package`
	return n, t
}

// goodSeeded draws from an explicitly seeded stream: constructors and
// *rand.Rand methods are always allowed.
func goodSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// goodTime does time arithmetic without reading the clock.
func goodTime(base time.Time, d time.Duration) time.Time {
	return base.Add(d)
}

// waivedClock carries a statement-level clock waiver.
func waivedClock() time.Time {
	//mlplint:clock fixture exercises the line-level waiver path
	return time.Now()
}

//mlplint:rng fixture exercises the function-level waiver path
func waivedRNGFunc() int {
	return rand.Int()
}

// reasonless shows a bare waiver suppressing but being reported.
func reasonless() time.Time {
	//mlplint:clock
	return time.Now() // want `waiver requires a reason`
}
