package allocfreefix

// testOnly is annotated but lives in a _test.go file, which is out of
// allocfree's jurisdiction: its make must produce no finding.
//
//mlplint:allocfree
func testOnly(n int) []int {
	return make([]int, n)
}
