// Package allocfreefix exercises the allocfree analyzer: an
// annotated clean hot path, an annotated function with every flagged
// construct, waived growth, and unannotated code out of scope.
package allocfreefix

import "fmt"

type ring struct {
	buf  []int
	name string
}

type pair struct{ a, b int }

// fill is annotated and clean: writes into preallocated storage,
// value struct literals and non-capturing closures do not allocate.
//
//mlplint:allocfree
func (r *ring) fill(n int) {
	for i := range r.buf {
		r.buf[i] = n + i
	}
	p := pair{a: 1, b: 2}
	g := func(x int) int { return x * 2 }
	r.buf[0] = g(p.a)
}

// alloc is annotated and violates every rule.
//
//mlplint:allocfree
func (r *ring) alloc(n int) string {
	s := make([]int, n)          // want `make allocates`
	q := new(pair)               // want `new allocates`
	m := map[string]int{}        // want `map literal allocates`
	l := []int{1, 2}             // want `slice literal allocates`
	pp := &pair{a: n}            // want `pointer composite literal allocates`
	f := func() int { return n } // want `closure capturing "n" allocates`
	fmt.Println(n)               // want `fmt.Println allocates`
	msg := r.name + "!"          // want `string concatenation allocates`
	b := []byte(r.name)          // want `byte/rune slice conversion allocates`
	_ = string(b)                // want `string conversion allocates`
	sink(n)                      // want `argument boxes into interface`
	_, _, _, _, _, _ = s, q, m, l, pp, f
	return msg
}

func sink(v any) { _ = v }

// grow waives its deliberate allocation with a reason.
//
//mlplint:allocfree
func (r *ring) grow(n int) {
	//mlplint:allocfree doubling growth amortizes to 0 allocs/op
	r.buf = make([]int, n)
}

// unannotated is out of scope entirely.
func unannotated(n int) []int { return make([]int, n) }
