// Package floatfix exercises the floatorder analyzer.
package floatfix

import "internal/par"

// badMapSum accumulates floats in map-iteration order: the sum's low
// bits depend on the visit order.
func badMapSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation into "total"`
	}
	return total
}

// badParSum accumulates floats across concurrent workers.
func badParSum(xs []float64) float64 {
	total := 0.0
	par.Run(4, len(xs), func(task int) {
		total += xs[task] // want `float accumulation into "total"`
	})
	return total
}

// goodInt is exact in any order.
func goodInt(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodSharded accumulates per-shard partials and reduces them in
// fixed order.
func goodSharded(xs []float64) float64 {
	partial := make([]float64, 4)
	par.Run(4, 4, func(task int) {
		for i := task; i < len(xs); i += 4 {
			partial[task] += xs[i]
		}
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// goodLocal keeps the accumulator local to the unordered region: each
// key's sum is computed over an ordered slice.
func goodLocal(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// waived tolerates the rounding noise with a reasoned waiver.
func waived(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//mlplint:floatorder diagnostic average only; rounding noise tolerated
		total += v
	}
	return total
}
