// Package maporderfix exercises the maporder analyzer.
package maporderfix

import (
	"fmt"
	"sort"
)

// badAppend builds an ordered slice in map-iteration order.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over map`
	}
	return out
}

// goodSortedKeys is the sanctioned sorted-key-extraction idiom.
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodMapToMap writes into another map: commutative across keys.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// goodPerKey appends into per-key cells selected by the iteration
// key: commutative across iterations.
func goodPerKey(m map[string][]int, acc map[string][]int) {
	for k, vs := range m {
		acc[k] = append(acc[k], vs...)
	}
}

// badPrint emits output in map-iteration order.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside range over map`
	}
}

// badSend commits to a channel in map-iteration order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// waivedLoop carries a loop-level waiver with a reason.
func waivedLoop(m map[string]int) []string {
	var out []string
	//mlplint:ordered consumer sorts downstream; collection order is irrelevant
	for k := range m {
		out = append(out, k)
	}
	return out
}

// waivedStmt carries a statement-level waiver with a reason.
func waivedStmt(m map[string]int, ch chan string) {
	for k := range m {
		//mlplint:ordered fixture: send order deliberately unchecked
		ch <- k
	}
}

// reasonless shows that a bare waiver suppresses the finding but is
// itself reported.
func reasonless(m map[string]int) []string {
	var out []string
	//mlplint:ordered
	for k := range m { // want `waiver requires a reason`
		out = append(out, k)
	}
	return out
}
