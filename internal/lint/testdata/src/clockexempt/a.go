// Package clockexempt mirrors cmd/-style timing code: rngclock's
// jurisdiction is internal/ packages only, so nothing here is
// flagged.
package clockexempt

import (
	"math/rand"
	"time"
)

// Elapsed times an operation with the real clock, as benchmarks and
// command mains legitimately do.
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Jitter draws from the global RNG, fine outside internal/.
func Jitter() int {
	return rand.Intn(100)
}
