package lint_test

import (
	"testing"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/linttest"
)

func TestFrozen(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.Frozen, "frozenfix")
	// Five store forms in mutate, two alias writes, one reasonless
	// waiver; builder, value-copy and waived cases are silent.
	if got, want := len(diags), 8; got != want {
		t.Errorf("live diagnostics = %d, want %d", got, want)
	}
}

func TestFrozenCrossPackage(t *testing.T) {
	// frozenuse imports frozentypes; both the type annotation (Snap)
	// and the builder-result annotation (View via NewView) must be
	// visible through Pass.Module.
	diags := linttest.Run(t, "testdata", lint.Frozen, "frozenuse")
	if got, want := len(diags), 2; got != want {
		t.Errorf("live diagnostics = %d, want %d", got, want)
	}
}

func TestGuardedBy(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.GuardedBy, "guardedfix")
	// bad, badAfterUnlock, badClosure, plus one reasonless waiver;
	// lock/defer/early-exit/*Locked/constructor cases are silent.
	if got, want := len(diags), 4; got != want {
		t.Errorf("live diagnostics = %d, want %d", got, want)
	}
}

func TestAllocFree(t *testing.T) {
	// The fixture's z_test.go carries an annotated allocating
	// function with no want comments: any finding there — i.e. any
	// jurisdiction leak into _test.go files — fails the want match.
	diags := linttest.Run(t, "testdata", lint.AllocFree, "allocfreefix")
	if got, want := len(diags), 11; got != want {
		t.Errorf("live diagnostics = %d, want %d", got, want)
	}
}

func TestWaivedDiagnosticsSurfaced(t *testing.T) {
	// Reasoned waivers suppress the live finding but surface a
	// Waived diagnostic carrying the audited reason, so mlplint
	// -json can report the full exception set.
	all := linttest.RunAll(t, "testdata", lint.AllocFree, "allocfreefix")
	var waived []string
	for _, d := range all {
		if d.Waived {
			waived = append(waived, d.Message)
		}
	}
	if len(waived) != 1 {
		t.Fatalf("waived diagnostics = %d (%q), want 1", len(waived), waived)
	}
	if want := "waived (allocfree): doubling growth amortizes to 0 allocs/op"; waived[0] != want {
		t.Errorf("waived message = %q, want %q", waived[0], want)
	}
}
