package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlpeering/internal/lint/analysis"
)

// MapOrder flags `for range` over a map whose body writes to ordered,
// committed state: appending to a slice declared outside the loop,
// sending on a channel, emitting output (fmt.Print*/Fprint*, Write*
// methods on outer writers), or calling event-emitting methods on
// outer receivers. Go randomizes map iteration order, so any of these
// makes the committed artifact depend on the iteration — the exact
// bug class the worker-sweep equivalence tests exist to catch
// dynamically.
//
// Two escapes: appends whose target slice is passed to a sort (or a
// locally-defined *sort*/*canon* helper) after the loop are the
// sorted-key-extraction idiom and pass; anything deliberate carries
// //mlplint:ordered <reason>.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops that write to ordered state without a post-loop sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		w := newWaivers(pass.Fset, file)
		walkStack(file, func(stack []ast.Node, n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass.TypesInfo, rng) {
				return true
			}
			if w.check(pass, stack, rng, ruleOrdered) {
				return true // still recurse: nested loops judged on their own
			}
			checkMapRangeBody(pass, stack, rng)
			return true
		})
	}
	return nil
}

func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// eventMethods are method names on outer receivers that commit to an
// ordered stream; calling them per map key is order-dependent.
var eventMethods = map[string]bool{
	"Emit": true, "Push": true, "PushBack": true, "Enqueue": true,
	"Publish": true, "Append": true, "Record": true,
}

// writerMethods write bytes to an output in call order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Fprintf": true, "Printf": true,
}

func checkMapRangeBody(pass *analysis.Pass, stack []ast.Node, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	// appended maps each outer slice object appended to inside the
	// loop to the position of the first append, pending the
	// post-loop sort check.
	appended := make(map[types.Object]ast.Node)

	walkStack(rng.Body, func(inner []ast.Node, n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // deferred work; judged where it runs
		case *ast.SendStmt:
			if !waivedInner(pass, stack, inner, x, ruleOrdered) {
				pass.Reportf(x.Pos(), "channel send inside range over map: receive order depends on map iteration; iterate sorted keys or waive with //mlplint:ordered <reason>")
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(x.Lhs) {
					continue
				}
				root := rootIdent(x.Lhs[i])
				if root == nil {
					continue
				}
				obj := objOf(info, root)
				if obj == nil || declaredWithin(obj, rng) {
					continue
				}
				if indexedWithin(info, x.Lhs[i], rng) {
					continue // per-key cell: commutative across iterations
				}
				if !waivedInner(pass, stack, inner, x, ruleOrdered) {
					if _, dup := appended[obj]; !dup {
						appended[obj] = x
					}
				}
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, stack, inner, rng, x)
		}
		return true
	})

	fnBody := enclosingFuncBody(stack)
	for obj, at := range appended {
		if fnBody != nil && sortedAfter(info, fnBody, obj, rng.End()) {
			continue
		}
		pass.Reportf(at.Pos(), "append to %q inside range over map: element order depends on map iteration; sort %q after the loop, iterate sorted keys, or waive with //mlplint:ordered <reason>", obj.Name(), obj.Name())
	}
}

func checkMapRangeCall(pass *analysis.Pass, stack, inner []ast.Node, rng *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			if !waivedInner(pass, stack, inner, call, ruleOrdered) {
				pass.Reportf(call.Pos(), "fmt.%s inside range over map: output order depends on map iteration; iterate sorted keys or waive with //mlplint:ordered <reason>", fn.Name())
			}
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return // package-qualified call, not a method
	}
	name := fn.Name()
	if !eventMethods[name] && !writerMethods[name] {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	obj := objOf(info, root)
	if obj == nil || declaredWithin(obj, rng) {
		return
	}
	if indexedWithin(info, sel.X, rng) {
		return // per-key receiver: commutative across iterations
	}
	if !waivedInner(pass, stack, inner, call, ruleOrdered) {
		pass.Reportf(call.Pos(), "%s.%s inside range over map commits in iteration order; iterate sorted keys or waive with //mlplint:ordered <reason>", root.Name, name)
	}
}

// waivedInner applies waivers to a node nested inside the range body,
// seeing both the outer walk stack and the body-relative stack.
func waivedInner(pass *analysis.Pass, stack, inner []ast.Node, n ast.Node, rule string) bool {
	file := stack[0].(*ast.File)
	w := newWaivers(pass.Fset, file)
	full := append(append([]ast.Node{}, stack...), inner...)
	return w.check(pass, full, n, rule)
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// enclosingFuncBody returns the body of the innermost function on the
// stack, or nil at file scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sorting call
// positioned after pos within body: sort.* and slices.Sort* qualify,
// as does any function or method whose name contains "sort" or
// "canon" (case-insensitive), covering local canonicalization
// helpers.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortingCallee(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && objOf(info, root) == obj {
				found = true
				return false
			}
		}
		// method form: keys.Sort()
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root := rootIdent(sel.X); root != nil && objOf(info, root) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortingCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return containsFold(fn.Name(), "sort") || containsFold(fn.Name(), "canon")
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			c := s[i+j] | 0x20
			if c != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
