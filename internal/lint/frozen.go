package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"mlpeering/internal/lint/analysis"
)

// Frozen enforces publish-then-freeze: a type annotated
// //mlplint:frozen (on its type declaration) or produced by an
// annotated constructor (//mlplint:frozen in the function doc marks
// the function a builder and freezes its named result types) must
// never be written after publication. Field stores, slice/map element
// writes, append-into, delete and clear through any pointer to a
// frozen type are flagged — aliases included, because the check is
// type-driven, not name-driven. Writes inside an annotated builder
// are the sanctioned construction window and pass.
//
// Frozen annotations are discovered across the whole load via
// Pass.Module, so a package mutating another package's snapshot type
// is caught too. Site waivers use //mlplint:frozen <reason> on the
// flagged line or the line above; the function-doc form is reserved
// for builder annotations.
var Frozen = &analysis.Analyzer{
	Name: "frozen",
	Doc:  "flags writes to //mlplint:frozen types outside their annotated builders",
	Run:  runFrozen,
}

func runFrozen(pass *analysis.Pass) error {
	frozen := frozenTypeSet(pass)
	if len(frozen) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		w := newWaivers(pass.Fset, file)
		walkStack(file, func(stack []ast.Node, n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && hasDirective(fd.Doc, ruleFrozen) {
				return false // annotated builder: construction window
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					checkFrozenStore(pass, w, frozen, lhs, "write")
				}
			case *ast.IncDecStmt:
				checkFrozenStore(pass, w, frozen, x.X, "write")
			case *ast.CallExpr:
				if name, ok := builtinName(pass.TypesInfo, x); ok && (name == "delete" || name == "clear") && len(x.Args) > 0 {
					checkFrozenStore(pass, w, frozen, x.Args[0], name)
				}
			}
			return true
		})
	}
	return nil
}

// checkFrozenStore walks the lvalue chain of lhs looking for a step
// that dereferences a pointer to a frozen type, and reports it unless
// waived on the line.
func checkFrozenStore(pass *analysis.Pass, w *waivers, frozen map[string]bool, lhs ast.Expr, verb string) {
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if name, ok := frozenPtr(pass.TypesInfo, frozen, x.X); ok {
				reportFrozen(pass, w, x, verb, name)
				return
			}
			e = x.X
		case *ast.IndexExpr:
			if name, ok := frozenPtr(pass.TypesInfo, frozen, x.X); ok {
				reportFrozen(pass, w, x, verb, name)
				return
			}
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			if name, ok := frozenPtr(pass.TypesInfo, frozen, x.X); ok {
				reportFrozen(pass, w, x, verb, name)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

func reportFrozen(pass *analysis.Pass, w *waivers, node ast.Node, verb, typeName string) {
	if w.checkLines(pass, node, ruleFrozen) {
		return
	}
	pass.Reportf(node.Pos(), "%s through frozen %s after publication; mutate only inside a //mlplint:frozen builder or waive with //mlplint:frozen <reason>", verb, typeName)
}

// frozenPtr reports whether e's type is a pointer to a frozen named
// type, returning a printable type name.
func frozenPtr(info *types.Info, frozen map[string]bool, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if !frozen[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
		return "", false
	}
	return "*" + named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
}

// frozenTypeSet collects "pkgpath.TypeName" for every frozen
// annotation visible to the pass: the package's own files plus the
// syntax of each import the driver can supply. The scan is purely
// syntactic so foreign packages need no type information.
func frozenTypeSet(pass *analysis.Pass) map[string]bool {
	set := make(map[string]bool)
	scanFrozenTypes(pass.Pkg.Path(), pass.Files, set)
	if pass.Module != nil {
		for _, imp := range pass.Pkg.Imports() {
			if files := pass.Module.PackageFiles(imp.Path()); files != nil {
				scanFrozenTypes(imp.Path(), files, set)
			}
		}
	}
	return set
}

func scanFrozenTypes(pkgPath string, files []*ast.File, set map[string]bool) {
	for _, file := range files {
		imports := importNames(file)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				declFrozen := hasDirective(d.Doc, ruleFrozen)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declFrozen || hasDirective(ts.Doc, ruleFrozen) || hasDirective(ts.Comment, ruleFrozen) {
						set[pkgPath+"."+ts.Name.Name] = true
					}
				}
			case *ast.FuncDecl:
				if !hasDirective(d.Doc, ruleFrozen) || d.Type.Results == nil {
					continue
				}
				for _, res := range d.Type.Results.List {
					if name, ok := resultTypeName(pkgPath, imports, res.Type); ok {
						set[name] = true
					}
				}
			}
		}
	}
}

// resultTypeName resolves a builder's result type expression to
// "pkgpath.TypeName" syntactically: a bare identifier names a type of
// the builder's own package, a selector resolves through the file's
// imports.
func resultTypeName(pkgPath string, imports map[string]string, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return pkgPath + "." + x.Name, true
		case *ast.SelectorExpr:
			pkg, ok := x.X.(*ast.Ident)
			if !ok {
				return "", false
			}
			path, ok := imports[pkg.Name]
			if !ok {
				return "", false
			}
			return path + "." + x.Sel.Name, true
		default:
			return "", false
		}
	}
}

// importNames maps each import's local package name to its import
// path. Unnamed imports fall back to the path's last element, which
// matches every package in this module.
func importNames(file *ast.File) map[string]string {
	m := make(map[string]string)
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

// hasDirective reports whether a comment group carries an
// //mlplint:<rule> directive.
func hasDirective(cg *ast.CommentGroup, rule string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if r, _, ok := directive(c); ok && r == rule {
			return true
		}
	}
	return false
}

// builtinName resolves a call to a builtin's name.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := objOf(info, id).(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}
