package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mlpeering/internal/lint/analysis"
)

// GuardedBy enforces mutex discipline on annotated struct fields: a
// field whose declaration carries //mlplint:guardedby <mu> (or a
// plain "guarded by <mu>" comment) may only be read or written while
// the named mutex of the same receiver is held. The analyzer
// recognizes, per enclosing function:
//
//   - a positional <base>.<mu>.Lock()/RLock() before the access with
//     no matching Unlock in between (defer Unlock forms hold to the
//     end of the function; an Unlock immediately followed by a
//     return/break/continue is an early-exit release on another
//     control path and does not end the critical section)
//   - the lock-held helper convention: functions named *Locked are
//     assumed to be called with the lock held
//   - construction windows: accesses whose base object is declared
//     inside the same function are pre-publication and exempt, as are
//     composite-literal field keys
//
// The heuristic is deliberately permissive — a conditional Lock
// upstream can produce a false negative — because a false positive
// costs a waiver audit. Findings are waived with
// //mlplint:guardedby <reason> on the line, the line above, or the
// enclosing function's doc comment.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "flags access to //mlplint:guardedby fields without the named mutex held",
	Run:  runGuardedBy,
}

var guardedByRE = regexp.MustCompile(`(?i)\bguarded by (\w+)`)

func runGuardedBy(pass *analysis.Pass) error {
	guarded := guardedFieldSet(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		w := newWaivers(pass.Fset, file)
		walkStack(file, func(stack []ast.Node, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			mu, ok := guarded[obj]
			if !ok {
				return true
			}
			scope, body := enclosingScope(stack)
			if scope == nil || body == nil {
				return true // field access at package scope: initializers
			}
			if fd, ok := scope.(*ast.FuncDecl); ok && strings.HasSuffix(fd.Name.Name, "Locked") {
				return true
			}
			if root := rootIdent(sel.X); root != nil && declaredWithin(objOf(pass.TypesInfo, root), body) {
				return true // pre-publication: object built inside this function
			}
			if heldAt(pass.TypesInfo, body, sel.X, mu, sel.Pos()) {
				return true
			}
			if w.check(pass, stack, sel, ruleGuarded) {
				return true
			}
			pass.Reportf(sel.Pos(), "access to %s without holding %s.%s: field is guarded; lock around the access, move it into a *Locked helper, or waive with //mlplint:guardedby <reason>",
				types.ExprString(sel), types.ExprString(sel.X), mu)
			return true
		})
	}
	return nil
}

// guardedFieldSet maps each annotated field object of the package to
// its guarding mutex name.
func guardedFieldSet(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := fieldGuard(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// fieldGuard extracts a guardedby annotation from a field's doc or
// trailing comment: the //mlplint:guardedby <mu> directive form or a
// plain "guarded by <mu>" phrase.
func fieldGuard(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rule, rest, ok := directive(c); ok && rule == ruleGuarded {
				mu, _, _ := strings.Cut(rest, " ")
				if mu != "" {
					return mu, true
				}
			}
			if m := guardedByRE.FindStringSubmatch(c.Text); m != nil {
				return m[1], true
			}
		}
	}
	return "", false
}

// enclosingScope returns the innermost function on the stack and its
// body. FuncLits are their own scope: a lock held where a closure is
// *defined* proves nothing about when it *runs*.
func enclosingScope(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// heldAt reports whether the mutex <base>.<mu> is positionally held
// at pos within body: some Lock/RLock call on the same base
// expression precedes pos, and the last preceding non-deferred,
// non-early-exit Unlock (if any) precedes that Lock.
func heldAt(info *types.Info, body *ast.BlockStmt, base ast.Expr, mu string, pos token.Pos) bool {
	want := types.ExprString(base) + "." + mu
	var lastLock, lastUnlock token.Pos
	walkStack(body, func(stack []ast.Node, n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures are their own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || types.ExprString(sel.X) != want {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if call.Pos() > lastLock {
				lastLock = call.Pos()
			}
		case "Unlock", "RUnlock":
			if deferred(stack) || earlyExitUnlock(stack, call) {
				return true
			}
			if call.Pos() > lastUnlock {
				lastUnlock = call.Pos()
			}
		}
		return true
	})
	return lastLock != token.NoPos && lastLock > lastUnlock
}

// deferred reports whether the node at the top of the stack sits
// directly under a defer statement.
func deferred(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.ExprStmt, *ast.CallExpr, *ast.ParenExpr:
			continue
		default:
			return false
		}
	}
	return false
}

// earlyExitUnlock reports whether the unlock call's statement is
// immediately followed by a return or branch statement in its block:
// the mu.Unlock(); return pattern releases on a control path that
// leaves the function, so it does not end the critical section for
// the code below it.
func earlyExitUnlock(stack []ast.Node, call *ast.CallExpr) bool {
	var stmt ast.Stmt
	var list []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch b := stack[i].(type) {
		case *ast.ExprStmt:
			stmt = b
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		}
		if stmt != nil && list != nil {
			break
		}
	}
	if stmt == nil || list == nil {
		return false
	}
	for i, s := range list {
		if s == stmt && i+1 < len(list) {
			switch list[i+1].(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				return true
			}
			return false
		}
	}
	// Unlock as the last statement of its block: an if-body that
	// falls through still ends the section for code after the if, so
	// only treat it as early-exit when the block itself returns...
	// which we cannot see from here; stay permissive and count it.
	return false
}
