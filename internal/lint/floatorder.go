package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlpeering/internal/lint/analysis"
)

// FloatOrder flags floating-point accumulation (+= / -=) into state
// declared outside a nondeterministically-ordered loop: the body of a
// range over a map, or a worker closure handed to internal/par.
// Float addition is not associative, so even when every term is
// visited exactly once, the sum's low bits depend on visit order —
// enough to flip a rounded Jaccard/stability cell between two runs
// that are semantically identical. The fix is to accumulate
// per-shard (or per sorted key) and reduce in a fixed order;
// tolerated cases carry //mlplint:floatorder <reason>.
var FloatOrder = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flags float accumulation inside map-ordered loops or par worker closures",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		w := newWaivers(pass.Fset, file)
		parLits := collectParClosures(info, file)
		walkStack(file, func(stack []ast.Node, n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || (asg.Tok != token.ADD_ASSIGN && asg.Tok != token.SUB_ASSIGN) {
				return true
			}
			for _, lhs := range asg.Lhs {
				if !isFloat(info, lhs) {
					continue
				}
				ctx := unorderedContext(info, stack, lhs, parLits)
				if ctx == "" {
					continue
				}
				if w.check(pass, stack, asg, ruleFloatOrder) {
					continue
				}
				pass.Reportf(asg.Pos(), "float accumulation into %s: addition order is %s, so the low bits are nondeterministic; accumulate per shard and reduce in fixed order, or waive with //mlplint:floatorder <reason>", describeLHS(lhs), ctx)
			}
			return true
		})
	}
	return nil
}

// collectParClosures gathers every FuncLit passed directly to a
// function of the internal/par package within file.
func collectParClosures(info *types.Info, file *ast.File) map[*ast.FuncLit]bool {
	lits := make(map[*ast.FuncLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(calleeFunc(info, call), parPkg) {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				lits[lit] = true
			}
		}
		return true
	})
	return lits
}

// unorderedContext walks the ancestor stack innermost-first and
// returns a description of the first nondeterministically-ordered
// construct enclosing the write — provided the write target is
// declared outside it (an accumulator local to the loop body is
// order-safe). Returns "" when the write is ordered.
func unorderedContext(info *types.Info, stack []ast.Node, lhs ast.Expr, parLits map[*ast.FuncLit]bool) string {
	root := rootIdent(lhs)
	if root == nil {
		return ""
	}
	obj := objOf(info, root)
	if obj == nil {
		return ""
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.RangeStmt:
			if rangesOverMap(info, x) && !declaredWithin(obj, x) && !indexedWithin(info, lhs, x) {
				return "the map iteration order"
			}
		case *ast.FuncLit:
			if parLits[x] && !declaredWithin(obj, x) && !indexedWithin(info, lhs, x) {
				return "the worker schedule"
			}
		case *ast.FuncDecl:
			return ""
		}
	}
	return ""
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float32 || b.Kind() == types.Float64)
}

func describeLHS(e ast.Expr) string {
	if root := rootIdent(e); root != nil {
		return "\"" + root.Name + "\""
	}
	return "a float target"
}
