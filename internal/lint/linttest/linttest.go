// Package linttest is a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest for the mlplint suite:
// it type-checks a fixture package under testdata/src/<path>, runs one
// analyzer over it, and matches the reported diagnostics against
// `// want "regexp"` comments in the fixture sources. Fixture imports
// resolve first against testdata/src (so fixtures can mirror real
// packages like internal/par) and then against the standard library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"mlpeering/internal/lint/analysis"
	"mlpeering/internal/lint/load"
)

// Run type-checks testdata/src/<pkgpath>, applies the analyzer, and
// reports mismatches between live diagnostics and // want
// expectations via t. It returns the live (non-waived) diagnostics
// for additional assertions; use RunAll to also see the waived set.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []analysis.Diagnostic {
	t.Helper()
	all := RunAll(t, testdata, a, pkgpath)
	live := all[:0:0]
	for _, d := range all {
		if !d.Waived {
			live = append(live, d)
		}
	}
	return live
}

// RunAll is Run including waived diagnostics in the returned slice.
// The // want matching still covers only the live findings: a waiver
// suppresses the diagnostic, it does not rename it.
func RunAll(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	imp := newFixtureImporter(fset, filepath.Join(testdata, "src"))
	pkg, files, info, err := imp.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Module:    imp,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkgpath, err)
	}

	live := diags[:0:0]
	for _, d := range diags {
		if !d.Waived {
			live = append(live, d)
		}
	}
	checkWants(t, fset, files, live)
	return diags
}

// PackageFiles implements analysis.ModuleSyntax over the fixture
// cache: any package under testdata/src that has been loaded —
// directly or as an import of the package under test — exposes its
// syntax to annotation-driven analyzers.
func (fi *fixtureImporter) PackageFiles(path string) []*ast.File {
	if p, ok := fi.pkgs[path]; ok && p.err == nil {
		return p.files
	}
	return nil
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// checkWants cross-checks diagnostics against the `// want` comments:
// every diagnostic must match a want on its line, every want must be
// matched by some diagnostic.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					rx, err := regexp.Compile(expr)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, expr, err)
						continue
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.rx)
			}
		}
	}
}

// fixtureImporter resolves fixture-local packages from a src root and
// everything else from the standard library. One shared stdlib
// importer keeps type identity consistent across fixture packages.
type fixtureImporter struct {
	fset *token.FileSet
	root string
	pkgs map[string]*fixturePkg
	std  types.Importer
}

type fixturePkg struct {
	types *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

var (
	stdOnce sync.Once
	stdImp  types.Importer
)

// stdImporter returns the process-wide stdlib importer: the gc
// (export data) importer, or the slower source importer as fallback.
func stdImporter() types.Importer {
	stdOnce.Do(func() {
		gc := importer.Default()
		if _, err := gc.Import("fmt"); err == nil {
			stdImp = gc
			return
		}
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImp
}

func newFixtureImporter(fset *token.FileSet, root string) *fixtureImporter {
	return &fixtureImporter{
		fset: fset,
		root: root,
		pkgs: make(map[string]*fixturePkg),
		std:  stdImporter(),
	}
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, _, _, err := fi.load(path)
		return pkg, err
	}
	return fi.std.Import(path)
}

func (fi *fixtureImporter) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p.types, p.files, p.info, p.err
	}
	p := &fixturePkg{}
	fi.pkgs[path] = p

	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return nil, nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return nil, nil, nil, err
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return nil, nil, nil, p.err
	}

	p.info = load.NewInfo()
	cfg := types.Config{
		Importer: fi,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	p.types, p.err = cfg.Check(path, fi.fset, p.files, p.info)
	return p.types, p.files, p.info, p.err
}
