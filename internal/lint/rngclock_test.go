package lint_test

import (
	"testing"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/linttest"
)

func TestRNGClock(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.RNGClock, "internal/rngfix")
	if got, want := len(diags), 3; got != want {
		t.Errorf("diagnostics = %d, want %d", got, want)
	}
}

// TestRNGClockOutsideInternal pins the jurisdiction: the same code
// under a non-internal path produces no findings (cmd/ and examples/
// timing code is exempt by construction).
func TestRNGClockOutsideInternal(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.RNGClock, "clockexempt")
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics outside internal/, got %d", len(diags))
	}
}
