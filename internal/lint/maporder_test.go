package lint_test

import (
	"testing"

	"mlpeering/internal/lint"
	"mlpeering/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	diags := linttest.Run(t, "testdata", lint.MapOrder, "maporderfix")
	// The fixture carries three real findings plus one
	// reasonless-waiver report; waived and sorted cases are silent.
	if got, want := len(diags), 4; got != want {
		t.Errorf("diagnostics = %d, want %d", got, want)
	}
}
