// Package load type-checks the packages of this module for the lint
// analyzers without depending on golang.org/x/tools/go/packages: it
// shells out to `go list -export -deps -json` for the package graph
// and compiler export data (produced offline from the build cache),
// parses the target packages' sources, and resolves every import —
// stdlib and intra-module alike — through the gc export-data importer
// so each package type-checks against a self-consistent universe.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (plus their dependency
// closure for export data), parses and type-checks every non-dep-only
// module package, and returns them sorted by import path.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,CgoFiles,Standard,DepOnly,Export,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrs []string
	cfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := cfg.Check(t.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s:\n  %s", t.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter resolves every import from compiler export data via
// the gc importer, with "unsafe" special-cased.
type exportImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		exports: exports,
	}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, "", 0)
}
