package load_test

import (
	"testing"

	"mlpeering/internal/lint/load"
)

// TestLoadModulePackage exercises the real loader end to end: list,
// parse, and type-check a module package against gc export data.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := load.Load([]string{"mlpeering/internal/par"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "mlpeering/internal/par" {
		t.Errorf("path = %q", p.Path)
	}
	if p.Types.Scope().Lookup("Run") == nil {
		t.Errorf("par.Run not found in type-checked scope")
	}
	if len(p.Files) == 0 || len(p.Info.Defs) == 0 {
		t.Errorf("missing syntax or type info: %d files, %d defs", len(p.Files), len(p.Info.Defs))
	}
}

// TestLoadTransitiveImports pins that a package whose imports span
// both the module and the stdlib type-checks cleanly from export
// data.
func TestLoadTransitiveImports(t *testing.T) {
	pkgs, err := load.Load([]string{"mlpeering/internal/lint"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
}
