// Package lint hosts mlplint's determinism-and-concurrency analyzers.
//
// The repo's perf story rests on one invariant: window closes and
// world generation are byte-identical for any worker count. The
// dynamic side of that contract is the race-enabled Workers-1/2/4/8
// equivalence sweeps; this package is the static side. Each analyzer
// encodes one way the invariant has historically been (or could be)
// broken at the source level:
//
//   - maporder: ordered state built while ranging over a map
//   - rngclock: ambient randomness or wall-clock reads in internal/
//   - sharddiscipline: worker closures writing to shared captures
//   - floatorder: float accumulation in nondeterministically-ordered
//     loops
//
// The second generation covers the concurrency-and-performance half
// of the same contract, driven by source annotations:
//
//   - frozen: //mlplint:frozen types and constructor results are
//     immutable after publication
//   - guardedby: annotated fields are only touched under their mutex
//   - allocfree: //mlplint:allocfree hot paths contain no allocating
//     constructs (cross-checked against compiler escape analysis by
//     scripts/allocgate.sh)
//
// Deliberate exceptions carry an auditable waiver comment:
//
//	//mlplint:<rule> <reason>
//
// on the flagged line, on the line above it, or in the doc comment of
// the enclosing function (which waives the whole function; frozen and
// allocfree accept only the line forms, since for them a function-doc
// directive is an annotation). A waiver without a reason is itself a
// diagnostic.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mlpeering/internal/lint/analysis"
)

// Analyzers is the full mlplint suite in the order the multichecker
// runs them.
var Analyzers = []*analysis.Analyzer{
	MapOrder,
	RNGClock,
	ShardDiscipline,
	FloatOrder,
	Frozen,
	GuardedBy,
	AllocFree,
}

// waiver rules understood in //mlplint: comments, mapped to the
// analyzer that honors each. frozen, guardedby and allocfree double
// as annotation vocabulary: on a type or constructor doc, on a struct
// field, and on a function doc respectively they opt state *in* to
// checking rather than waiving a finding (see each analyzer's doc).
const (
	ruleOrdered    = "ordered"    // maporder
	ruleRNG        = "rng"        // rngclock (math/rand globals)
	ruleClock      = "clock"      // rngclock (time.Now)
	ruleShared     = "shared"     // sharddiscipline
	ruleFloatOrder = "floatorder" // floatorder
	ruleFrozen     = "frozen"     // frozen
	ruleGuarded    = "guardedby"  // guardedby
	ruleAllocFree  = "allocfree"  // allocfree
)

// waivers indexes the //mlplint: comments of one file.
type waivers struct {
	fset *token.FileSet
	// byLine maps line number -> rule -> reason ("" = missing).
	byLine map[int]map[string]string
}

// directive extracts an mlplint directive from a single comment,
// accepting both line (//mlplint:rule reason) and block
// (/*mlplint:rule reason*/) forms. A block comment's directive is
// read from its first line only.
func directive(c *ast.Comment) (rule, reason string, ok bool) {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text, ok = strings.CutPrefix(text, "mlplint:")
	if !ok {
		return "", "", false
	}
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		text = text[:i]
	}
	rule, reason, _ = strings.Cut(text, " ")
	return rule, strings.TrimSpace(reason), true
}

func newWaivers(fset *token.FileSet, file *ast.File) *waivers {
	w := &waivers{fset: fset, byLine: make(map[int]map[string]string)}
	add := func(line int, rule, reason string) {
		m := w.byLine[line]
		if m == nil {
			m = make(map[string]string)
			w.byLine[line] = m
		}
		m[rule] = reason
	}
	for _, cg := range file.Comments {
		end := fset.Position(cg.End()).Line
		for _, c := range cg.List {
			rule, reason, ok := directive(c)
			if !ok {
				continue
			}
			add(fset.Position(c.Pos()).Line, rule, reason)
			// A waiver buried mid-group — a struct field's multi-line
			// doc comment, a block comment above prose — still waives
			// the node below the group, so the line-above lookup must
			// find it on the group's final line too.
			add(end, rule, reason)
		}
	}
	return w
}

// at reports whether rule is waived on the given line exactly.
func (w *waivers) at(line int, rule string) (waived bool, reason string) {
	if m, ok := w.byLine[line]; ok {
		if r, ok := m[rule]; ok {
			return true, r
		}
	}
	return false, ""
}

// waive resolves one matched waiver: a reasonless waiver converts the
// suppressed diagnostic into a live "waiver requires a reason" report;
// a reasoned one is surfaced as a Waived diagnostic so machine
// consumers (mlplint -json) still see the audited exception.
func waive(pass *analysis.Pass, node ast.Node, rule, reason string) {
	if reason == "" {
		pass.Reportf(node.Pos(), "//mlplint:%s waiver requires a reason", rule)
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     node.Pos(),
		Message: "waived (" + rule + "): " + reason,
		Waived:  true,
	})
}

// check resolves a would-be diagnostic at node against the waivers:
// a waiver on the node's line or the line above suppresses it, as
// does one anywhere in the doc comment of the enclosing function
// (found via the walk stack). A reasonless waiver converts the
// diagnostic into a "waiver requires a reason" report instead of
// suppressing silently.
func (w *waivers) check(pass *analysis.Pass, stack []ast.Node, node ast.Node, rule string) (suppressed bool) {
	if w.checkLines(pass, node, rule) {
		return true
	}
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			r, reason, ok := directive(c)
			if !ok || r != rule {
				continue
			}
			waive(pass, node, rule, reason)
			return true
		}
	}
	return false
}

// checkLines is check restricted to the node's line and the line
// above. The frozen and allocfree analyzers use it for site waivers
// because for them a function-doc //mlplint: directive is an
// annotation (builder marking, allocfree opt-in), not a waiver.
func (w *waivers) checkLines(pass *analysis.Pass, node ast.Node, rule string) (suppressed bool) {
	line := w.fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		if ok, reason := w.at(l, rule); ok {
			waive(pass, node, rule, reason)
			return true
		}
	}
	return false
}

// walkStack traverses root depth-first, presenting each node together
// with the stack of its ancestors (outermost first, root excluded
// from its own callback). Returning false skips the node's children.
func walkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(stack, n) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier of an lvalue or operand: b.rows[i].buf -> b. Returns nil
// for expressions not rooted in a plain identifier (calls, composite
// literals, package-qualified selectors resolve via their own rules).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses then Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node's
// source span.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// calleeFunc resolves a call's callee to a *types.Func if it is a
// named function or method (not a builtin, conversion, or func
// value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := objOf(info, id).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is a package-level function (no
// receiver) of a package whose import path matches by full path or
// "/"-suffix. Suffix matching keeps the analyzers working against
// linttest fixture packages that mirror real paths.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// internalPackage reports whether path names a package under an
// internal/ tree (the determinism contract's jurisdiction); cmd/,
// examples/, and the repo root are exempt.
func internalPackage(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}
