package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mlpeering/internal/lint/analysis"
)

// AllocFree AST-checks functions annotated //mlplint:allocfree for
// allocating constructs: make/new, pointer and map/slice composite
// literals, closures that capture enclosing variables, interface
// boxing of non-pointer-shaped values, fmt calls, string
// concatenation and string<->[]byte conversions. Value struct
// literals and writes into preallocated storage pass — the annotation
// promises a steady-state 0 allocs/op hot path, not a malloc-free
// one.
//
// The check is syntactic and conservative where the compiler is
// clever (small-int boxing, non-escaping make), so it pairs with
// scripts/allocgate.sh, which verifies the same annotation set
// against real escape analysis (go build -gcflags=-m=1) and a
// checked-in baseline. Deliberate allocations are waived with
// //mlplint:allocfree <reason> on the line or the line above; the
// function-doc form is the annotation itself. _test.go files are out
// of jurisdiction.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "flags allocating constructs inside //mlplint:allocfree functions",
	Run:  runAllocFree,
}

func runAllocFree(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		w := newWaivers(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, ruleAllocFree) {
				continue
			}
			checkAllocFree(pass, w, fd)
		}
	}
	return nil
}

func checkAllocFree(pass *analysis.Pass, w *waivers, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	report := func(node ast.Node, format string, args ...any) {
		if w.checkLines(pass, node, ruleAllocFree) {
			return
		}
		pass.Reportf(node.Pos(), "%s in //mlplint:allocfree %s; hoist it out of the hot path or waive with //mlplint:allocfree <reason>",
			fmt.Sprintf(format, args...), fd.Name.Name)
	}
	walkStack(fd.Body, func(stack []ast.Node, n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(pass, report, x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "pointer composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			if t := typeOf(info, x); t != nil && !addressOfLit(stack, x) {
				switch t.Underlying().(type) {
				case *types.Map:
					report(x, "map literal allocates")
				case *types.Slice:
					report(x, "slice literal allocates")
				}
			}
		case *ast.FuncLit:
			if name, ok := closureCapture(pass, fd, x); ok {
				report(x, "closure capturing %q allocates", name)
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(typeOf(info, x)) && !isConst(info, x) {
				report(x, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(typeOf(info, x.Lhs[0])) {
				report(x, "string concatenation allocates")
			}
		}
		return true
	})
}

// checkAllocCall classifies one call inside an allocfree function:
// allocating builtins, fmt, string conversions, interface boxing of
// arguments.
func checkAllocCall(pass *analysis.Pass, report func(ast.Node, string, ...any), call *ast.CallExpr) {
	info := pass.TypesInfo
	if name, ok := builtinName(info, call); ok {
		switch name {
		case "make":
			report(call, "make allocates")
		case "new":
			report(call, "new allocates")
		}
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkAllocConversion(info, report, call, tv.Type)
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call, "fmt."+fn.Name()+" allocates")
		return
	}
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, arg, pt) {
			report(arg, "argument boxes into interface")
		}
	}
}

func checkAllocConversion(info *types.Info, report func(ast.Node, string, ...any), call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	src := typeOf(info, arg)
	if src == nil {
		return
	}
	switch tt := target.Underlying().(type) {
	case *types.Interface:
		if boxes(info, arg, target) {
			report(call, "interface conversion boxes")
		}
	case *types.Basic:
		if tt.Info()&types.IsString != 0 {
			if _, ok := src.Underlying().(*types.Slice); ok && !isConst(info, arg) {
				report(call, "string conversion allocates")
			}
		}
	case *types.Slice:
		if s, ok := src.Underlying().(*types.Basic); ok && s.Info()&types.IsString != 0 {
			report(call, "byte/rune slice conversion allocates")
		}
	}
}

// boxes reports whether assigning arg to an interface-typed slot
// allocates: the parameter is an interface, the argument concrete and
// not pointer-shaped.
func boxes(info *types.Info, arg ast.Expr, param types.Type) bool {
	if param == nil {
		return false
	}
	if _, ok := param.Underlying().(*types.Interface); !ok {
		return false
	}
	at := typeOf(info, arg)
	if at == nil {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return false
	}
	return true
}

// closureCapture reports the first enclosing-function variable a
// FuncLit captures. Package-level objects and the literal's own
// locals are free.
func closureCapture(pass *analysis.Pass, fd *ast.FuncDecl, fl *ast.FuncLit) (string, bool) {
	info := pass.TypesInfo
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
			return true // package-level: no capture
		}
		if declaredWithin(v, fl) || !declaredWithin(v, fd) {
			return true
		}
		name = v.Name()
		return false
	})
	return name, name != ""
}

// addressOfLit reports whether the composite literal is the direct
// operand of &, which the UnaryExpr case reports once already.
func addressOfLit(stack []ast.Node, lit *ast.CompositeLit) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			return p.Op == token.AND
		default:
			return false
		}
	}
	return false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return b.Info()&types.IsString != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// AllocSpan describes one //mlplint:allocfree-annotated function for
// the allocgate driver: the file and line span the compiler's -m
// diagnostics are matched against, and a stable display name.
type AllocSpan struct {
	File       string
	Start, End int
	Name       string
}

// AllocFreeSpans lists the annotated functions of a package in file
// order, skipping _test.go files (same jurisdiction as the analyzer).
func AllocFreeSpans(fset *token.FileSet, files []*ast.File) []AllocSpan {
	var spans []AllocSpan
	for _, file := range files {
		name := fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, ruleAllocFree) {
				continue
			}
			spans = append(spans, AllocSpan{
				File:  name,
				Start: fset.Position(fd.Pos()).Line,
				End:   fset.Position(fd.End()).Line,
				Name:  funcDisplayName(fd),
			})
		}
	}
	return spans
}

// funcDisplayName renders a FuncDecl the way the compiler names it:
// Func, (T).Method or (*T).Method.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if s, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = s.X
	}
	base := "?"
	switch r := recv.(type) {
	case *ast.Ident:
		base = r.Name
	case *ast.IndexExpr:
		if id, ok := r.X.(*ast.Ident); ok {
			base = id.Name
		}
	}
	return "(" + star + base + ")." + fd.Name.Name
}
