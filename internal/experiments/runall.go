package experiments

import (
	"fmt"
	"io"
)

// RunAll executes every experiment and renders it to w, in the order
// the paper presents them.
func (c *Context) RunAll(w io.Writer) error {
	c.Figure1().Render().Render(w)

	t2 := c.Table2()
	t2.Render().Render(w)

	fmt.Fprintln(w, "-- consistency (§4.3) --")
	for _, name := range c.ixpOrder() {
		st := c.Run.Merged.Consistency(name)
		if st.Setters == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s setters=%d inconsistent=%d deviantPrefixFrac=%.3f\n",
			name, st.Setters, st.InconsistentSetters, st.DeviantPrefixFrac)
	}
	fmt.Fprintln(w)

	qc, err := c.QueryCost()
	if err != nil {
		return fmt.Errorf("query cost: %w", err)
	}
	qc.Render().Render(w)

	rec, err := c.Reciprocity("")
	if err != nil {
		return fmt.Errorf("reciprocity: %w", err)
	}
	rec.Render().Render(w)

	c.Figure5("").Render().Render(w)
	c.Figure6().Render().Render(w)
	c.Figure7().Render().Render(w)

	t3, err := c.Table3()
	if err != nil {
		return fmt.Errorf("table 3: %w", err)
	}
	t3.Render().Render(w)

	f8, err := c.Figure8()
	if err != nil {
		return fmt.Errorf("figure 8: %w", err)
	}
	f8.Render().Render(w)

	c.Figure9().Render().Render(w)
	c.Figure10().Render().Render(w)
	c.Figure11().Render().Render(w)
	c.Figure12().Render().Render(w)
	c.Figure13().Render().Render(w)
	c.Hybrid().Render().Render(w)
	c.GlobalEstimate().Render().Render(w)
	return nil
}
