// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) plus the quantified claims of §4.3/§4.4/§5.7, each as
// a runner over one generated world. cmd/mlpexperiments prints them
// all; bench_test.go regenerates each on demand.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/core"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/propagate"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// Context is the shared fixture: one world, one full inference run, and
// lazily computed derived datasets.
type Context struct {
	World *pipeline.World
	Run   *pipeline.Run

	validation *core.ValidationResult

	// tracerouteLinks simulates the Ark/DIMES view: links observed on
	// best paths from a set of traceroute vantages, with route-server
	// crossings elided (Ark and DIMES "do not infer links across IXP
	// Route Servers", §5).
	tracerouteLinks map[topology.LinkKey]bool

	// publicP2P is the subset of the public BGP view inferred p2p.
	publicP2P map[topology.LinkKey]bool
}

// NewContext builds a world and runs the full pipeline.
func NewContext(cfg topology.Config) (*Context, error) {
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		return nil, err
	}
	run, err := w.RunInference(context.Background(), core.DefaultActiveConfig())
	if err != nil {
		return nil, err
	}
	return &Context{World: w, Run: run}, nil
}

// Close releases the world's listeners.
func (c *Context) Close() error { return c.World.Close() }

// Validation runs (and caches) the §5.1 validation pass.
func (c *Context) Validation() (*core.ValidationResult, error) {
	if c.validation != nil {
		return c.validation, nil
	}
	v := c.World.Validator(c.Run, 0)
	res, err := v.Validate(context.Background(), c.Run.Result)
	if err != nil {
		return nil, err
	}
	c.validation = res
	return res, nil
}

// PublicP2PLinks labels the public link set with the relationship
// inference and returns the p2p subset.
func (c *Context) PublicP2PLinks() map[topology.LinkKey]bool {
	if c.publicP2P != nil {
		return c.publicP2P
	}
	out := make(map[topology.LinkKey]bool)
	rels := c.Run.Passive.Rels
	for link := range c.Run.Passive.Links {
		if rels.Relationship(link.A, link.B) == relation.RelP2P {
			out[link] = true
		}
	}
	c.publicP2P = out
	return out
}

// TracerouteLinks builds the traceroute-derived AS link dataset.
func (c *Context) TracerouteLinks() map[topology.LinkKey]bool {
	if c.tracerouteLinks != nil {
		return c.tracerouteLinks
	}
	links := make(map[topology.LinkKey]bool)
	topo := c.World.Topo

	// Vantages: a deterministic sample of stubs and transits, like the
	// distributed monitor fleets of Ark/DIMES.
	var vantages []bgp.ASN
	for i, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Tier == topology.TierStub && i%29 == 0 {
			vantages = append(vantages, asn)
		}
		if as.Tier == topology.Tier2 && i%41 == 0 {
			vantages = append(vantages, asn)
		}
	}
	c.World.Engine.ForEachTree(4, func(tr *propagate.Tree) {
		for _, v := range vantages {
			r := tr.RouteFrom(v)
			if r == nil {
				continue
			}
			for i := 0; i+1 < len(r.Path); i++ {
				a, b := r.Path[i], r.Path[i+1]
				// Traceroute does not see the member-member adjacency
				// across a transparent route server.
				if r.ViaIXP != "" && b == r.RSSetter &&
					i+2 < len(r.Path)+1 && pathCrossesRSAt(r, i) {
					continue
				}
				links[topology.MakeLinkKey(a, b)] = true
			}
		}
	})
	c.tracerouteLinks = links
	return links
}

// pathCrossesRSAt reports whether the path edge starting at index i is
// the route-server crossing of the route.
func pathCrossesRSAt(r *propagate.VantageRoute, i int) bool {
	// The RS edge is importer->exporter where exporter == RSSetter.
	return i+1 < len(r.Path) && r.Path[i+1] == r.RSSetter
}

// MemberMLPDegree returns, for every RS member with at least one
// inferred link, its inferred MLP link count.
func (c *Context) MemberMLPDegree() map[bgp.ASN]int {
	deg := make(map[bgp.ASN]int)
	for link := range c.Run.Result.Links {
		deg[link.A]++
		deg[link.B]++
	}
	return deg
}

// IncidentCount counts links in set incident to each AS.
func IncidentCount(set map[topology.LinkKey]bool) map[bgp.ASN]int {
	deg := make(map[bgp.ASN]int)
	for link := range set {
		deg[link.A]++
		deg[link.B]++
	}
	return deg
}

// AllRSMembers returns every RS member across IXPs, ascending.
func (c *Context) AllRSMembers() []bgp.ASN {
	seen := make(map[bgp.ASN]bool)
	for _, info := range c.World.Topo.IXPs {
		for _, m := range info.RSMembers {
			seen[m] = true
		}
	}
	out := make([]bgp.ASN, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ixpOrder returns IXPs in the canonical (paper Table 2) order.
func (c *Context) ixpOrder() []string {
	var names []string
	for _, p := range topology.PaperIXPProfiles() {
		if c.World.Topo.IXPByName(p.Name) != nil {
			names = append(names, p.Name)
		}
	}
	// Any extra profiles beyond the paper's 13 keep config order.
	for _, x := range c.World.Topo.IXPs {
		found := false
		for _, n := range names {
			if n == x.Name {
				found = true
				break
			}
		}
		if !found {
			names = append(names, x.Name)
		}
	}
	return names
}

// fmtCount renders n with a trailing asterisk when partial (LINX-style
// connectivity).
func fmtCount(n int, partial bool) string {
	if partial {
		return fmt.Sprintf("%d*", n)
	}
	return fmt.Sprintf("%d", n)
}
