package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mlpeering/internal/peeringdb"
	"mlpeering/internal/topology"
)

var (
	ctxOnce sync.Once
	shared  *Context
	ctxErr  error
)

func fixture(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		shared, ctxErr = NewContext(topology.TestConfig())
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return shared
}

func TestTable2Shape(t *testing.T) {
	c := fixture(t)
	r := c.Table2()
	if len(r.Rows) != 13 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.TotalLinks == 0 || r.SumLinks < r.TotalLinks || r.MultiIXP == 0 {
		t.Fatalf("totals: %+v", r)
	}
	if r.SumLinks-r.TotalLinks < r.MultiIXP {
		t.Fatalf("overlap accounting: sum=%d total=%d multi=%d", r.SumLinks, r.TotalLinks, r.MultiIXP)
	}
	for _, row := range r.Rows {
		if row.Pasv+row.Active > row.RS+2 {
			t.Errorf("%s: coverage %d+%d exceeds members %d", row.IXP, row.Pasv, row.Active, row.RS)
		}
		if row.IXP == "LINX" && !row.Partial {
			t.Error("LINX must be marked partial")
		}
	}
	out := r.Render().String()
	if !strings.Contains(out, "DE-CIX") || !strings.Contains(out, "*") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable3Shape(t *testing.T) {
	c := fixture(t)
	r, err := c.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if r.Tested == 0 {
		t.Fatal("nothing tested")
	}
	if r.ConfirmedFrac < 0.9 {
		t.Fatalf("confirmed fraction %.3f", r.ConfirmedFrac)
	}
	// At least half the IXPs have a validated row.
	withTests := 0
	for _, row := range r.Rows {
		if row.Tested > 0 {
			withTests++
			// Per-IXP rates are only meaningful with enough samples.
			if row.Tested >= 10 && row.ConfirmedFrac < 0.7 {
				t.Errorf("%s: confirmed %.3f of %d", row.IXP, row.ConfirmedFrac, row.Tested)
			}
		}
	}
	if withTests < len(r.Rows)/2 {
		t.Fatalf("only %d of %d IXPs have validated links", withTests, len(r.Rows))
	}
}

func TestFigure1Scaling(t *testing.T) {
	c := fixture(t)
	r := c.Figure1()
	for _, row := range r.Rows {
		// Bilateral scaling overtakes c*n as soon as n > 2c+1.
		if row.Members > 2*r.RouteServers+1 && row.Bilateral <= row.Multilateral {
			t.Errorf("%s: bilateral %d should exceed multilateral %d", row.IXP, row.Bilateral, row.Multilateral)
		}
	}
}

func TestFigure5MultiMemberPrefixes(t *testing.T) {
	c := fixture(t)
	r := c.Figure5("")
	if r.Prefixes == 0 {
		t.Fatal("no prefixes")
	}
	// The paper found 48.4% multi-member at DE-CIX; the shape target is
	// a substantial fraction.
	if r.MultiMemberFrac < 0.08 {
		t.Fatalf("multi-member fraction %.3f too low", r.MultiMemberFrac)
	}
	if len(r.CCDF.X) == 0 || r.CCDF.Y[0] != 1.0 {
		t.Fatalf("CCDF malformed: %+v", r.CCDF)
	}
}

func TestFigure6Visibility(t *testing.T) {
	c := fixture(t)
	r := c.Figure6()
	if r.TotalMLPLinks == 0 || r.PublicPeerLinks == 0 {
		t.Fatalf("empty datasets: %+v", r)
	}
	// Headline shapes: most links invisible; MLP set much larger than
	// the public p2p view; traceroute overlap tiny.
	if r.InvisibleFrac < 0.5 {
		t.Fatalf("invisible fraction %.3f", r.InvisibleFrac)
	}
	if r.MorePeeringsFrac < 0.5 {
		t.Fatalf("more-peerings factor %.3f", r.MorePeeringsFrac)
	}
	if r.TracerouteOverlap > r.TotalMLPLinks/5 {
		t.Fatalf("traceroute overlap %d too high vs %d", r.TracerouteOverlap, r.TotalMLPLinks)
	}
	if len(r.MLP.X) == 0 || len(r.MLP.X) != len(r.Passive.X) {
		t.Fatal("ranked series malformed")
	}
	// Ranked MLP series is non-increasing.
	for i := 1; i < len(r.MLP.Y); i++ {
		if r.MLP.Y[i] > r.MLP.Y[i-1] {
			t.Fatal("MLP series not ranked")
		}
	}
}

func TestFigure7Degrees(t *testing.T) {
	c := fixture(t)
	r := c.Figure7()
	if r.Links == 0 {
		t.Fatal("no links")
	}
	// Shape: a majority of links involve the edge of the hierarchy.
	if r.InvolvesStubFrac < 0.25 {
		t.Fatalf("involves-stub %.3f too low", r.InvolvesStubFrac)
	}
	if r.StubStubFrac > r.InvolvesStubFrac {
		t.Fatal("stub-stub exceeds involves-stub")
	}
	if r.SmallDegreeFrac < r.InvolvesStubFrac {
		t.Fatal("≤10-customers must include the stubs")
	}
}

func TestFigure8Modes(t *testing.T) {
	c := fixture(t)
	r, err := c.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no LG outcomes")
	}
	if r.MeanAllPaths == 0 {
		t.Fatal("no all-paths LGs")
	}
	if r.MeanAllPaths < 0.6 || r.MeanAllPaths > 1 {
		t.Fatalf("all-paths mean %.3f outside sane band", r.MeanAllPaths)
	}
	if r.MeanBestPath < 0 || r.MeanBestPath > 1 {
		t.Fatalf("best-path mean %.3f outside sane band", r.MeanBestPath)
	}
}

func TestFigure9Participation(t *testing.T) {
	c := fixture(t)
	r := c.Figure9()
	open := r.Participation[peeringdb.PolicyOpen]
	if open.Total == 0 {
		t.Fatal("no open members")
	}
	openFrac := float64(open.OnRS) / float64(open.Total)
	if openFrac < 0.7 {
		t.Fatalf("open RS participation %.3f", openFrac)
	}
	restr := r.Participation[peeringdb.PolicyRestrictive]
	if restr.Total > 0 {
		restrFrac := float64(restr.OnRS) / float64(restr.Total)
		if restrFrac >= openFrac {
			t.Fatalf("restrictive participation %.3f not below open %.3f", restrFrac, openFrac)
		}
	}
}

func TestFigure10Matrix(t *testing.T) {
	c := fixture(t)
	r := c.Figure10()
	if r.ASes == 0 {
		t.Fatal("no members")
	}
	var sum float64
	for _, f := range r.Matrix {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("matrix fractions sum to %f", sum)
	}
	// Single-IXP-with-RS should be the dominant cell (paper 55.8%).
	if r.SingleIXPOnRS < 0.3 {
		t.Fatalf("single-IXP+RS cell %.3f", r.SingleIXPOnRS)
	}
	if r.NoRS <= 0 || r.NoRS > 0.5 {
		t.Fatalf("no-RS fraction %.3f", r.NoRS)
	}
}

func TestFigure11Bimodality(t *testing.T) {
	c := fixture(t)
	r := c.Figure11()
	open, ok := r.Means[peeringdb.PolicyOpen]
	if !ok {
		t.Fatal("no open members measured")
	}
	if open < 0.85 {
		t.Fatalf("open mean %.3f (paper 96.7%%)", open)
	}
	if restr, ok := r.Means[peeringdb.PolicyRestrictive]; ok && restr > open {
		t.Fatalf("restrictive mean %.3f above open %.3f", restr, open)
	}
	if r.BimodalFrac < 0.8 {
		t.Fatalf("bimodal fraction %.3f (nearly all members are at the extremes)", r.BimodalFrac)
	}
}

func TestFigure12Density(t *testing.T) {
	c := fixture(t)
	r := c.Figure12()
	if len(r.Rows) == 0 {
		t.Fatal("no density rows")
	}
	for _, row := range r.Rows {
		if row.Mean < 0.5 || row.Mean > 1.0 {
			t.Errorf("%s: density %.3f outside plausible band", row.IXP, row.Mean)
		}
	}
}

func TestFigure13Repellers(t *testing.T) {
	c := fixture(t)
	r := c.Figure13()
	if r.TotalExcludes == 0 || r.BlockedASes == 0 {
		t.Fatalf("no excludes: %+v", r)
	}
	if r.ConeFrac <= 0 {
		t.Fatal("no cone-targeted excludes")
	}
	if r.DirectCustomerFrac > r.ConeFrac {
		t.Fatal("direct-customer excludes exceed cone excludes")
	}
	if r.TopRepeller == 0 || r.TopRepellerBlocks == 0 {
		t.Fatal("no top repeller")
	}
	// The Google-analog: the top repeller should be a content network.
	if as := c.World.Topo.ASes[r.TopRepeller]; as != nil && !as.Content {
		t.Logf("note: top repeller %s is not a content AS (allowed, but unusual)", r.TopRepeller)
	}
}

func TestQueryCostOrdering(t *testing.T) {
	c := fixture(t)
	r, err := c.QueryCost()
	if err != nil {
		t.Fatal(err)
	}
	if r.Optimized == 0 || r.Naive == 0 {
		t.Fatalf("costs: %+v", r)
	}
	// Equation 2 must not cost more than equation 1.
	if r.Optimized > r.NoPassive {
		t.Fatalf("passive exclusion increased cost: %d > %d", r.Optimized, r.NoPassive)
	}
	// Sampling+sorting must beat the naive full scan clearly.
	if r.NaiveFactor < 1.5 {
		t.Fatalf("naive/optimized only %.2fx", r.NaiveFactor)
	}
	// Multiplicity sorting helps (or at least does not hurt).
	if r.Optimized > r.NoSorting {
		t.Fatalf("sorting increased cost: %d > %d", r.Optimized, r.NoSorting)
	}
}

func TestReciprocityHolds(t *testing.T) {
	c := fixture(t)
	r, err := c.Reciprocity("")
	if err != nil {
		t.Fatal(err)
	}
	if r.MembersChecked == 0 {
		t.Fatal("no members checked")
	}
	if r.Violations != 0 {
		t.Fatalf("%d reciprocity violations", r.Violations)
	}
	if r.MorePermissive == 0 {
		t.Fatal("no strictly-more-permissive imports; generator should create ~half")
	}
	if _, err := c.Reciprocity("NOT-AN-IXP"); err == nil {
		t.Fatal("unknown IXP accepted")
	}
}

func TestHybridCount(t *testing.T) {
	c := fixture(t)
	r := c.Hybrid()
	if r.VisibleRSLinks == 0 {
		t.Fatal("no visible RS links")
	}
	if r.LabeledP2C == 0 {
		t.Fatal("expected some RS links mislabeled p2c (§5.6)")
	}
}

func TestGlobalEstimateShape(t *testing.T) {
	c := fixture(t)
	r := c.GlobalEstimate()
	if r.EUIXPs != 37 || r.GlobalIXPs != 61 {
		t.Fatalf("survey sizes: %d EU, %d global", r.EUIXPs, r.GlobalIXPs)
	}
	// Paper: 558,291 EU / 686,104 global; shape tolerance ±35%.
	if r.EULinks < 360_000 || r.EULinks > 760_000 {
		t.Fatalf("EU estimate %d", r.EULinks)
	}
	if r.GlobalLinks < r.EULinks || r.GlobalLinks > 950_000 {
		t.Fatalf("global estimate %d", r.GlobalLinks)
	}
	if r.ConservativeGlobal > r.GlobalLinks {
		t.Fatal("conservative estimate exceeds main estimate")
	}
	if r.EUUnique >= r.EULinks || r.GlobalUnique >= r.GlobalLinks {
		t.Fatal("unique estimates must shrink via overlap")
	}
}

func TestRunAllRenders(t *testing.T) {
	c := fixture(t)
	var buf bytes.Buffer
	if err := c.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Figure 1", "Figure 5", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"Figure 13", "Query cost", "Reciprocity", "Hybrid", "Global IXP peering estimate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in RunAll output", want)
		}
	}
}
