package experiments

import (
	"reflect"
	"testing"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/topology"
)

func churnResult(t *testing.T, seed int64) *ChurnResult {
	t.Helper()
	ccfg := churn.DefaultConfig(seed)
	ccfg.Epochs = 3
	ccfg.Interval = 10 * time.Minute
	res, err := RunChurn(topology.TestConfig(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunChurnShape checks the windowed-inference table is well-formed:
// one row per epoch, real withdraw traffic, live inference per window,
// and sane stability/precision values.
func TestRunChurnShape(t *testing.T) {
	res := churnResult(t, 7)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	sawWithdraw, sawLinks := false, false
	for i, row := range res.Rows {
		if row.Window != i {
			t.Fatalf("row %d numbered %d", i, row.Window)
		}
		if row.Ops == 0 || row.DirtyDests == 0 {
			t.Fatalf("row %d: empty epoch (%+v)", i, row)
		}
		if row.Withdrawn > 0 {
			sawWithdraw = true
		}
		if row.Links > 0 {
			sawLinks = true
		}
		if row.Stability < 0 || row.Stability > 1 || row.Precision < 0 || row.Precision > 1 ||
			row.Recall < 0 || row.Recall > 1 {
			t.Fatalf("row %d: metrics out of range: %+v", i, row)
		}
		if row.LiveRoutes == 0 {
			t.Fatalf("row %d: live table empty", i)
		}
	}
	if !sawWithdraw {
		t.Fatal("no window saw withdrawals")
	}
	if !sawLinks {
		t.Fatal("no window inferred any links")
	}
	out := res.Render().String()
	if out == "" {
		t.Fatal("empty render")
	}
}

// TestRunChurnDeterministic pins the whole experiment: same config ⇒
// identical per-window rows.
func TestRunChurnDeterministic(t *testing.T) {
	a := churnResult(t, 7)
	b := churnResult(t, 7)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("rows diverge:\n%+v\n---\n%+v", a.Rows, b.Rows)
	}
}
