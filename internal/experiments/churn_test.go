package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/core"
	"mlpeering/internal/topology"
)

func churnResultMode(t *testing.T, seed int64, cfg topology.Config, mode core.WindowsMode) *ChurnResult {
	t.Helper()
	ccfg := churn.DefaultConfig(seed)
	ccfg.Epochs = 3
	ccfg.Interval = 10 * time.Minute
	res, err := RunChurn(cfg, ccfg, mode, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func churnResult(t *testing.T, seed int64) *ChurnResult {
	t.Helper()
	return churnResultMode(t, seed, topology.TestConfig(), core.WindowsIncremental)
}

// TestRunChurnShape checks the windowed-inference table is well-formed:
// one row per epoch, real withdraw traffic, live inference per window,
// and sane stability/precision values.
func TestRunChurnShape(t *testing.T) {
	res := churnResult(t, 7)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	sawWithdraw, sawLinks := false, false
	for i, row := range res.Rows {
		if row.Window != i {
			t.Fatalf("row %d numbered %d", i, row.Window)
		}
		if row.Ops == 0 || row.DirtyDests == 0 {
			t.Fatalf("row %d: empty epoch (%+v)", i, row)
		}
		if row.Withdrawn > 0 {
			sawWithdraw = true
		}
		if row.Links > 0 {
			sawLinks = true
		}
		if row.Stability < 0 || row.Stability > 1 || row.Precision < 0 || row.Precision > 1 ||
			row.Recall < 0 || row.Recall > 1 {
			t.Fatalf("row %d: metrics out of range: %+v", i, row)
		}
		if row.LiveRoutes == 0 {
			t.Fatalf("row %d: live table empty", i)
		}
	}
	if !sawWithdraw {
		t.Fatal("no window saw withdrawals")
	}
	if !sawLinks {
		t.Fatal("no window inferred any links")
	}
	out := res.Render().String()
	if out == "" {
		t.Fatal("empty render")
	}
}

// TestRunChurnDeterministic pins the whole experiment: same config ⇒
// identical per-window rows.
func TestRunChurnDeterministic(t *testing.T) {
	a := churnResult(t, 7)
	b := churnResult(t, 7)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("rows diverge:\n%+v\n---\n%+v", a.Rows, b.Rows)
	}
}

// assertModesEquivalent replays one churn trace through both windowed
// modes — the sequential incremental path, a 4-worker incremental run,
// and the remine fallback — and requires byte-identical per-window
// meshes plus identical experiment rows (mesh size, relationship
// metrics, stability, precision, recall): the end-to-end form of the
// tentpole's byte-identity contract, covering both the mode and the
// worker-count axes.
func assertModesEquivalent(t *testing.T, seed int64, cfg topology.Config) {
	t.Helper()
	ccfg := churn.DefaultConfig(seed)
	ccfg.Epochs = 3
	ccfg.Interval = 10 * time.Minute
	ct, err := BuildChurnTrace(cfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	incW, err := ct.Windows(core.WindowsIncremental, 1)
	if err != nil {
		t.Fatal(err)
	}
	parW, err := ct.Windows(core.WindowsIncremental, 4)
	if err != nil {
		t.Fatal(err)
	}
	remW, err := ct.Windows(core.WindowsRemine, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(incW.Windows) != len(remW.Windows) || len(parW.Windows) != len(incW.Windows) {
		t.Fatalf("window counts diverge: %d sequential vs %d parallel vs %d remine",
			len(incW.Windows), len(parW.Windows), len(remW.Windows))
	}
	var a, b []byte
	for i := range incW.Windows {
		wi, wp, wr := &incW.Windows[i], &parW.Windows[i], &remW.Windows[i]
		a = wi.Result.AppendMesh(a[:0])
		b = wr.Result.AppendMesh(b[:0])
		if !bytes.Equal(a, b) {
			t.Fatalf("window %d: meshes diverge between modes (%d vs %d links)",
				i, wi.Result.TotalLinks(), wr.Result.TotalLinks())
		}
		b = wp.Result.AppendMesh(b[:0])
		if !bytes.Equal(a, b) {
			t.Fatalf("window %d: meshes diverge between worker counts (%d vs %d links)",
				i, wi.Result.TotalLinks(), wp.Result.TotalLinks())
		}
		if wi.LiveRoutes != wr.LiveRoutes || wi.Dropped != wr.Dropped ||
			wi.RelLinks != wr.RelLinks || wi.P2PRels != wr.P2PRels ||
			wi.Announced != wr.Announced || wi.Withdrawn != wr.Withdrawn ||
			wi.WithdrawnOnlyUpdates != wr.WithdrawnOnlyUpdates ||
			incW.Stability[i] != remW.Stability[i] {
			t.Fatalf("window %d: counters diverge between modes", i)
		}
		if wi.LiveRoutes != wp.LiveRoutes || wi.Dropped != wp.Dropped ||
			wi.RelLinks != wp.RelLinks || wi.P2PRels != wp.P2PRels ||
			wi.MeshLinks != wp.MeshLinks || incW.Stability[i] != parW.Stability[i] {
			t.Fatalf("window %d: counters diverge between worker counts", i)
		}
	}
}

// TestRunChurnModesEquivalentTestScale pins incremental to re-mine over
// the full churn pipeline at test scale.
func TestRunChurnModesEquivalentTestScale(t *testing.T) {
	assertModesEquivalent(t, 7, topology.TestConfig())
}

// TestRunChurnModesEquivalentScale10 repeats the equivalence at
// scaled-world@Scale-10 (33 IXPs, ~16k ASes): the acceptance scale of
// the incremental windowed pipeline.
func TestRunChurnModesEquivalentScale10(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled-world equivalence skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("scaled-world equivalence skipped under the race detector")
	}
	cfg := topology.DefaultConfig()
	cfg.Scenario = "scaled-world"
	cfg.Scale = 10
	assertModesEquivalent(t, 11, cfg)
}
