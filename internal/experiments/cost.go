package experiments

import (
	"context"
	"fmt"

	"mlpeering/internal/bgp"
	"mlpeering/internal/core"
	"mlpeering/internal/metrics"
	"mlpeering/internal/relation"
)

// QueryCostResult reproduces the §4.3 accounting: measured cost of the
// optimized survey vs the eq-1 variant (no passive exclusion), the
// unsorted variant (no multiplicity ordering) and the naive full scan.
type QueryCostResult struct {
	Optimized   int // equation (2): sampling + sorting + passive exclusion
	NoPassive   int // equation (1): sampling + sorting only
	NoSorting   int // sampling + passive exclusion, arbitrary order
	Naive       int // 1 + |A_RS| + sum |P_a| (no sampling at all)
	PerIXP      map[string]int
	NaiveFactor float64 // Naive / Optimized (paper: ~18x)
}

// QueryCost re-runs the active survey under the ablated configurations
// and compares costs.
func (c *Context) QueryCost() (*QueryCostResult, error) {
	ctx := context.Background()
	res := &QueryCostResult{
		Optimized: c.Run.Active.TotalQueries(),
		PerIXP:    c.Run.Active.QueriesPerIXP,
	}

	hints := make(map[bgp.ASN][]bgp.Prefix)
	for p, origin := range c.Run.Passive.PrefixOrigins {
		hints[origin] = append(hints[origin], p)
	}
	rerun := func(cfg core.ActiveConfig) (int, error) {
		r, err := core.RunActive(ctx, c.Run.Dict, c.World.LGEndpoints(0), c.Run.Passive.Obs, hints, cfg)
		if err != nil {
			return 0, err
		}
		return r.TotalQueries(), nil
	}

	cfg := core.DefaultActiveConfig()
	cfg.SkipPassiveCovered = false
	n, err := rerun(cfg)
	if err != nil {
		return nil, err
	}
	res.NoPassive = n

	cfg = core.DefaultActiveConfig()
	cfg.SortByMultiplicity = false
	n, err = rerun(cfg)
	if err != nil {
		return nil, err
	}
	res.NoSorting = n

	// Naive cost from the route-server tables: one summary, one
	// neighbor query per member, one prefix query per advertisement.
	for name, rib := range c.World.RSRIBs {
		if info := c.World.Topo.IXPByName(name); info == nil || !info.HasLG {
			continue
		}
		members := rib.Members()
		naive := 1 + len(members)
		for _, es := range rib.Entries {
			naive += len(es)
		}
		res.Naive += naive
	}
	if res.Optimized > 0 {
		res.NaiveFactor = float64(res.Naive) / float64(res.Optimized)
	}
	return res, nil
}

// Render formats the query-cost comparison.
func (r *QueryCostResult) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Query cost (§4.3): LG queries issued",
		Columns: []string{"strategy", "queries"},
	}
	t.AddRow("optimized (eq. 2: sampling+sorting+passive)", r.Optimized)
	t.AddRow("no passive exclusion (eq. 1)", r.NoPassive)
	t.AddRow("no multiplicity sorting", r.NoSorting)
	t.AddRow("naive full scan", r.Naive)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"naive/optimized = %.1fx (paper: ~18x; DE-CIX 8,400 -> 5,922 with passive exclusion)",
		r.NaiveFactor))
	return t
}

// ReciprocityResult reproduces the §4.4 validation over IRR filters.
type ReciprocityResult struct {
	IXP            string
	MembersChecked int
	Violations     int // import blocks an AS export allows (paper: 0)
	MorePermissive int // import strictly wider than export (~half)
}

// Reciprocity extracts IRR-registered import/export filters of the
// named IXP's members (AMS-IX in the paper) and checks the assumption.
func (c *Context) Reciprocity(ixpName string) (*ReciprocityResult, error) {
	if ixpName == "" {
		ixpName = "AMS-IX"
	}
	info := c.World.Topo.IXPByName(ixpName)
	if info == nil {
		return nil, fmt.Errorf("experiments: unknown IXP %q", ixpName)
	}
	res := &ReciprocityResult{IXP: ixpName}
	members := info.SortedRSMembers()
	for _, m := range members {
		imp, exp, err := c.World.IRR.RSFilters(m, info.Scheme.RSASN)
		if err != nil {
			return nil, err
		}
		if imp == nil || exp == nil {
			continue
		}
		res.MembersChecked++
		wider := false
		for _, other := range members {
			if other == m {
				continue
			}
			ea, ia := exp.Filter.Allows(other), imp.Filter.Allows(other)
			if ea && !ia {
				res.Violations++
			}
			if ia && !ea {
				wider = true
			}
		}
		if wider {
			res.MorePermissive++
		}
	}
	return res, nil
}

// Render formats the reciprocity check.
func (r *ReciprocityResult) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Reciprocity validation (§4.4) at %s", r.IXP),
		Columns: []string{"metric", "value", "paper"},
	}
	t.AddRow("members with IRR filters", r.MembersChecked, "230")
	t.AddRow("import-blocks-exported violations", r.Violations, "0")
	t.AddRow("imports strictly more permissive", r.MorePermissive, "~half")
	return t
}

// HybridResult reproduces §5.6: inferred RS links that the relationship
// algorithm labels provider-customer.
type HybridResult struct {
	VisibleRSLinks int // inferred links also visible in public BGP
	LabeledP2C     int // of those, labeled c2p/p2c by inference
	Fraction       float64
}

// Hybrid counts candidate hybrid relationships.
func (c *Context) Hybrid() *HybridResult {
	res := &HybridResult{}
	rels := c.Run.Passive.Rels
	for link := range c.Run.Result.Links {
		if !c.Run.Passive.Links[link] {
			continue
		}
		res.VisibleRSLinks++
		switch rels.Relationship(link.A, link.B) {
		case relation.RelC2P, relation.RelP2C:
			res.LabeledP2C++
		}
	}
	res.Fraction = metrics.Ratio(res.LabeledP2C, res.VisibleRSLinks)
	return res
}

// Render formats the hybrid-relationship count.
func (r *HybridResult) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Hybrid relationships (§5.6)",
		Columns: []string{"metric", "value", "paper"},
	}
	t.AddRow("RS links visible in public BGP", r.VisibleRSLinks, "-")
	t.AddRow("of those labeled p2c by [32]-style inference", r.LabeledP2C, "1,230")
	t.AddRow("fraction", metrics.Pct(r.Fraction), "-")
	return t
}

// SurveyIXP is one entry of the §5.7 global IXP survey.
type SurveyIXP struct {
	Name    string
	Region  string // "eu", "na", "apac", "latam", "africa"
	Members int
	FlatFee bool
	HasRS   bool
}

// GlobalSurvey returns the 61-IXP survey the estimate runs on: the
// paper's 13 measured IXPs plus a synthetic completion matching the
// paper's counts (37 EU, 14 NA and 10 other IXPs with ≥50 members).
func GlobalSurvey() []SurveyIXP {
	out := []SurveyIXP{
		{"AMS-IX", "eu", 574, true, true}, {"DE-CIX", "eu", 483, true, true},
		{"LINX", "eu", 457, true, true}, {"MSK-IX", "eu", 374, false, true},
		{"PLIX", "eu", 222, true, true}, {"France-IX", "eu", 193, true, true},
		{"LONAP", "eu", 120, true, true}, {"ECIX", "eu", 102, true, true},
		{"SPB-IX", "eu", 89, false, true}, {"DTEL-IX", "eu", 74, true, true},
		{"TOP-IX", "eu", 71, true, true}, {"STHIX", "eu", 69, true, true},
		{"BIX.BG", "eu", 53, true, true},
	}
	// Remaining European IXPs with at least 50 members (sizes follow a
	// plausible tail; 8 of 24 have no route server).
	euSizes := []int{310, 280, 240, 210, 190, 175, 160, 150, 140, 130, 120, 115,
		105, 100, 95, 90, 85, 80, 75, 70, 65, 60, 55, 50}
	for i, n := range euSizes {
		out = append(out, SurveyIXP{
			Name:    fmt.Sprintf("EU-%02d", i+1),
			Region:  "eu",
			Members: n,
			FlatFee: i%3 != 0,
			HasRS:   i%3 != 2,
		})
	}
	naSizes := []int{420, 360, 300, 260, 220, 180, 150, 130, 110, 95, 80, 65, 55, 50}
	for i, n := range naSizes {
		out = append(out, SurveyIXP{
			Name:    fmt.Sprintf("NA-%02d", i+1),
			Region:  "na",
			Members: n,
			FlatFee: false,
			HasRS:   i%2 == 0,
		})
	}
	apSizes := []int{260, 210, 170, 140, 110, 90, 70, 55}
	for i, n := range apSizes {
		out = append(out, SurveyIXP{
			Name:    fmt.Sprintf("AP-%02d", i+1),
			Region:  "apac",
			Members: n,
			FlatFee: i%2 == 0,
			HasRS:   i%3 != 2,
		})
	}
	out = append(out,
		SurveyIXP{"LATAM-01", "latam", 140, true, true},
		SurveyIXP{"AFR-01", "africa", 90, true, true},
	)
	return out
}

// EstimateResult reproduces §5.7.
type EstimateResult struct {
	EUIXPs, GlobalIXPs     int
	EULinks, GlobalLinks   int
	EUUnique, GlobalUnique int
	ConservativeGlobal     int
	OverlapDiscount        float64 // measured multi-IXP overlap fraction
}

// densityPrior applies the paper's priors: flat-fee+RS 0.70,
// usage-based+RS 0.60, no RS 0.50, North America 0.40.
func densityPrior(x SurveyIXP) float64 {
	if x.Region == "na" {
		return 0.40
	}
	switch {
	case !x.HasRS:
		return 0.50
	case x.FlatFee:
		return 0.70
	default:
		return 0.60
	}
}

// GlobalEstimate computes the §5.7 extrapolation, deriving the overlap
// discount from this run's measured multi-IXP link overlap.
func (c *Context) GlobalEstimate() *EstimateResult {
	res := &EstimateResult{}
	sum := c.Run.Result.SumPerIXPLinks()
	if sum > 0 {
		res.OverlapDiscount = float64(c.Run.Result.TotalLinks()) / float64(sum)
	} else {
		res.OverlapDiscount = 1
	}
	for _, x := range GlobalSurvey() {
		pairs := x.Members * (x.Members - 1) / 2
		links := int(densityPrior(x) * float64(pairs))
		consLinks := int(minF(densityPrior(x), 0.60) * float64(pairs))
		res.GlobalIXPs++
		res.GlobalLinks += links
		res.ConservativeGlobal += consLinks
		if x.Region == "eu" {
			res.EUIXPs++
			res.EULinks += links
		}
	}
	res.EUUnique = int(float64(res.EULinks) * res.OverlapDiscount)
	res.GlobalUnique = int(float64(res.GlobalLinks) * res.OverlapDiscount)
	return res
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Render formats the estimate.
func (r *EstimateResult) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Global IXP peering estimate (§5.7)",
		Columns: []string{"metric", "value", "paper"},
	}
	t.AddRow("European IXPs surveyed", r.EUIXPs, "37")
	t.AddRow("European IXP peerings", r.EULinks, "558,291")
	t.AddRow("European unique AS pairs", r.EUUnique, "399,732")
	t.AddRow("global IXPs surveyed", r.GlobalIXPs, "61")
	t.AddRow("global IXP peerings", r.GlobalLinks, "686,104")
	t.AddRow("global unique AS pairs", r.GlobalUnique, "510,870")
	t.AddRow("conservative global (density <=0.6)", r.ConservativeGlobal, "596,011")
	t.Notes = append(t.Notes, fmt.Sprintf("overlap discount measured from this run: %.2f", r.OverlapDiscount))
	return t
}
