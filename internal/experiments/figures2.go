package experiments

import (
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/metrics"
	"mlpeering/internal/peeringdb"
	"mlpeering/internal/relation"
)

// Figure9Result reproduces RS participation by self-reported policy.
type Figure9Result struct {
	// Per policy: members registered with that policy, and how many of
	// them connect to at least one route server.
	Participation map[peeringdb.Policy]struct{ Total, OnRS int }
}

// Figure9 joins RS membership against PeeringDB policies.
func (c *Context) Figure9() *Figure9Result {
	res := &Figure9Result{Participation: make(map[peeringdb.Policy]struct{ Total, OnRS int })}
	topo := c.World.Topo

	memberSet := make(map[bgp.ASN]bool)
	rsSet := make(map[bgp.ASN]bool)
	for _, info := range topo.IXPs {
		for _, m := range info.Members {
			memberSet[m] = true
		}
		for _, m := range info.RSMembers {
			rsSet[m] = true
		}
	}
	for m := range memberSet {
		pol := c.World.PDB.Policy(m)
		if pol == peeringdb.PolicyUnknown {
			continue
		}
		agg := res.Participation[pol]
		agg.Total++
		if rsSet[m] {
			agg.OnRS++
		}
		res.Participation[pol] = agg
	}
	return res
}

// Render formats Figure 9.
func (r *Figure9Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 9: route server participation vs self-reported policy",
		Columns: []string{"policy", "registered members", "on a route server", "fraction", "paper"},
	}
	paper := map[peeringdb.Policy]string{
		peeringdb.PolicyOpen:        "92%",
		peeringdb.PolicySelective:   "75%",
		peeringdb.PolicyRestrictive: "43%",
	}
	for _, pol := range []peeringdb.Policy{peeringdb.PolicyOpen, peeringdb.PolicySelective, peeringdb.PolicyRestrictive} {
		agg := r.Participation[pol]
		t.AddRow(pol.String(), agg.Total, agg.OnRS, metrics.Pct(metrics.Ratio(agg.OnRS, agg.Total)), paper[pol])
	}
	return t
}

// Figure10Result reproduces the IXP-presence × RS-participation matrix.
type Figure10Result struct {
	// Matrix[presences][participations] = fraction of ASes.
	Matrix map[[2]int]float64
	// SingleIXPOnRS is the diagonal (1,1) cell (paper: 55.8%).
	SingleIXPOnRS float64
	// NoRS is the fraction using no route server at all (13.4%).
	NoRS float64
	// ASes is the population size.
	ASes int
}

// Figure10 counts IXP presences against RS participations per AS.
func (c *Context) Figure10() *Figure10Result {
	topo := c.World.Topo
	presence := make(map[bgp.ASN]int)
	participation := make(map[bgp.ASN]int)
	for _, info := range topo.IXPs {
		for _, m := range info.Members {
			presence[m]++
		}
		for _, m := range info.RSMembers {
			participation[m]++
		}
	}
	res := &Figure10Result{Matrix: make(map[[2]int]float64), ASes: len(presence)}
	if res.ASes == 0 {
		return res
	}
	for asn, pres := range presence {
		part := participation[asn]
		res.Matrix[[2]int{pres, part}]++
		if pres == 1 && part == 1 {
			res.SingleIXPOnRS++
		}
		if part == 0 {
			res.NoRS++
		}
	}
	n := float64(res.ASes)
	for k := range res.Matrix {
		res.Matrix[k] /= n
	}
	res.SingleIXPOnRS /= n
	res.NoRS /= n
	return res
}

// Render formats Figure 10.
func (r *Figure10Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 10: IXP presences vs route server participations",
		Columns: []string{"presences", "participations", "fraction"},
	}
	keys := make([][2]int, 0, len(r.Matrix))
	for k := range r.Matrix {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if r.Matrix[k] < 0.001 {
			continue
		}
		t.AddRow(k[0], k[1], metrics.Pct(r.Matrix[k]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("single IXP + its RS: %s (paper 55.8%%); no RS anywhere: %s (paper 13.4%%); %d ASes",
			metrics.Pct(r.SingleIXPOnRS), metrics.Pct(r.NoRS), r.ASes))
	return t
}

// Figure11Result reproduces the export-filter openness analysis.
type Figure11Result struct {
	// AllowedFrac holds, per policy, the per-member fraction of RS
	// members allowed to receive routes.
	AllowedFrac map[peeringdb.Policy]*metrics.Distribution
	// Means per policy (paper: 96.7 / 80.4 / 69.2%).
	Means map[peeringdb.Policy]float64
	// BimodalFrac is the fraction of members allowing either >=90% or
	// <=10% of the other members.
	BimodalFrac float64
}

// Figure11 analyses reconstructed export filters by policy.
func (c *Context) Figure11() *Figure11Result {
	res := &Figure11Result{
		AllowedFrac: make(map[peeringdb.Policy]*metrics.Distribution),
		Means:       make(map[peeringdb.Policy]float64),
	}
	samples := make(map[peeringdb.Policy][]float64)
	bimodal, total := 0, 0
	for name, x := range c.Run.Result.PerIXP {
		entry := c.Run.Dict.ByName(name)
		if entry == nil {
			continue
		}
		members := entry.Members()
		if len(members) < 2 {
			continue
		}
		for m, f := range x.Filters {
			frac := float64(f.AllowedCount(members, m)) / float64(len(members)-1)
			pol := c.World.PDB.Policy(m)
			samples[pol] = append(samples[pol], frac)
			total++
			if frac >= 0.9 || frac <= 0.1 {
				bimodal++
			}
		}
	}
	for pol, s := range samples {
		d := metrics.NewDistribution(s)
		res.AllowedFrac[pol] = d
		res.Means[pol] = d.Mean()
	}
	res.BimodalFrac = metrics.Ratio(bimodal, total)
	return res
}

// Render formats Figure 11.
func (r *Figure11Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 11: fraction of RS members allowed, by policy",
		Columns: []string{"policy", "members", "mean allowed", "paper mean"},
	}
	paper := map[peeringdb.Policy]string{
		peeringdb.PolicyOpen:        "96.7%",
		peeringdb.PolicySelective:   "80.4%",
		peeringdb.PolicyRestrictive: "69.2%",
	}
	for _, pol := range []peeringdb.Policy{peeringdb.PolicyOpen, peeringdb.PolicySelective, peeringdb.PolicyRestrictive, peeringdb.PolicyUnknown} {
		d, ok := r.AllowedFrac[pol]
		if !ok {
			continue
		}
		t.AddRow(pol.String(), d.Len(), metrics.Pct(r.Means[pol]), paper[pol])
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"binary pattern: %s of members allow >=90%% or <=10%% of peers", metrics.Pct(r.BimodalFrac)))
	return t
}

// Figure12Result reproduces peering density per IXP.
type Figure12Result struct {
	Rows []struct {
		IXP     string
		Members int
		Mean    float64
	}
}

// Figure12 computes, for IXPs with full LG connectivity, the per-member
// fraction of realizable RS peerings actually established.
func (c *Context) Figure12() *Figure12Result {
	res := &Figure12Result{}
	for _, name := range c.ixpOrder() {
		info := c.World.Topo.IXPByName(name)
		x := c.Run.Result.PerIXP[name]
		if info == nil || x == nil || !info.HasLG {
			continue
		}
		covered := x.CoveredMembers()
		if len(covered) < 3 {
			continue
		}
		deg := make(map[bgp.ASN]int)
		for link := range x.Links {
			deg[link.A]++
			deg[link.B]++
		}
		var sum float64
		for _, m := range covered {
			sum += float64(deg[m]) / float64(len(covered)-1)
		}
		res.Rows = append(res.Rows, struct {
			IXP     string
			Members int
			Mean    float64
		}{name, len(covered), sum / float64(len(covered))})
	}
	return res
}

// Render formats Figure 12.
func (r *Figure12Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 12: density of RS peering per IXP",
		Columns: []string{"IXP", "covered members", "mean density"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.IXP, row.Members, fmt.Sprintf("%.2f", row.Mean))
	}
	t.Notes = append(t.Notes, "paper: means between 0.79 and 0.95")
	return t
}

// Figure13Result reproduces the repeller analysis.
type Figure13Result struct {
	// BlockCounts: how many times each AS is excluded.
	BlockCounts map[bgp.ASN]int
	// ByScope: distribution of block counts by the blocked AS's scope.
	ByScope map[peeringdb.Scope]*metrics.Distribution
	// TotalExcludes is the number of EXCLUDE applications (paper 1,795).
	TotalExcludes int
	// BlockedASes is the number of ASes excluded at least once (570).
	BlockedASes int
	// ConeFrac: excludes targeting the blocker's customer cone (77%).
	ConeFrac float64
	// DirectCustomerFrac: provider blocking a direct customer (12%).
	DirectCustomerFrac float64
	// TopRepeller and its counts (the paper's Google anecdote).
	TopRepeller        bgp.ASN
	TopRepellerBlocks  int
	TopRepellerSources int
}

// Figure13 analyses EXCLUDE usage across all reconstructed filters.
func (c *Context) Figure13() *Figure13Result {
	res := &Figure13Result{
		BlockCounts: make(map[bgp.ASN]int),
		ByScope:     make(map[peeringdb.Scope]*metrics.Distribution),
	}
	rels := c.Run.Passive.Rels
	blockers := make(map[bgp.ASN]map[bgp.ASN]bool)
	cone, direct := 0, 0
	blockerCone := make(map[bgp.ASN]bool) // reused across blockers
	for name, x := range c.Run.Result.PerIXP {
		_ = name
		for blocker, f := range x.Filters {
			if f.Mode != ixp.ModeAllExcept {
				continue
			}
			clear(blockerCone)
			rels.ForEachConeMember(blocker, func(a bgp.ASN) bool {
				blockerCone[a] = true
				return true
			})
			for _, blocked := range f.PeerList() {
				res.TotalExcludes++
				res.BlockCounts[blocked]++
				if blockers[blocked] == nil {
					blockers[blocked] = make(map[bgp.ASN]bool)
				}
				blockers[blocked][blocker] = true
				if blockerCone[blocked] && blocked != blocker {
					cone++
				}
				if rels.Relationship(blocked, blocker) == relation.RelC2P {
					direct++
				}
			}
		}
	}
	res.BlockedASes = len(res.BlockCounts)
	res.ConeFrac = metrics.Ratio(cone, res.TotalExcludes)
	res.DirectCustomerFrac = metrics.Ratio(direct, res.TotalExcludes)

	byScope := make(map[peeringdb.Scope][]int)
	for blocked, count := range res.BlockCounts {
		sc := c.World.PDB.Scope(blocked)
		byScope[sc] = append(byScope[sc], count)
		if count > res.TopRepellerBlocks {
			res.TopRepeller = blocked
			res.TopRepellerBlocks = count
			res.TopRepellerSources = len(blockers[blocked])
		}
	}
	for sc, counts := range byScope {
		res.ByScope[sc] = metrics.NewDistributionInts(counts)
	}
	return res
}

// Render formats Figure 13.
func (r *Figure13Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 13: repellers by geographic scope",
		Columns: []string{"scope", "blocked ASes", "max blocks", "median"},
	}
	for _, sc := range []peeringdb.Scope{peeringdb.ScopeGlobal, peeringdb.ScopeEurope, peeringdb.ScopeRegional, peeringdb.ScopeUnknown} {
		d, ok := r.ByScope[sc]
		if !ok {
			continue
		}
		t.AddRow(sc.String(), d.Len(), fmt.Sprintf("%.0f", d.Quantile(1)), fmt.Sprintf("%.0f", d.Quantile(0.5)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d EXCLUDE applications over %d blocked ASes (paper: 1,795 over 570)",
			r.TotalExcludes, r.BlockedASes),
		fmt.Sprintf("%s within blocker's customer cone (paper 77%%); %s provider-blocks-customer (paper 12%%)",
			metrics.Pct(r.ConeFrac), metrics.Pct(r.DirectCustomerFrac)),
		fmt.Sprintf("top repeller AS%s blocked %d times by %d ASes (paper: Google 82 times by 75)",
			r.TopRepeller, r.TopRepellerBlocks, r.TopRepellerSources))
	return t
}
