package experiments

import (
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/metrics"
	"mlpeering/internal/topology"
)

// Figure1Result reproduces the session-scaling comparison of Fig. 1:
// a full mesh needs n(n-1)/2 bilateral sessions; multilateral peering
// needs c*n sessions against c route servers.
type Figure1Result struct {
	Rows []struct {
		IXP                     string
		Members                 int
		Bilateral, Multilateral int
	}
	RouteServers int
}

// Figure1 computes session counts for every IXP (c = 2 redundant route
// servers, the common deployment).
func (c *Context) Figure1() *Figure1Result {
	const routeServers = 2
	res := &Figure1Result{RouteServers: routeServers}
	for _, name := range c.ixpOrder() {
		info := c.World.Topo.IXPByName(name)
		if info == nil {
			continue
		}
		n := len(info.RSMembers)
		res.Rows = append(res.Rows, struct {
			IXP                     string
			Members                 int
			Bilateral, Multilateral int
		}{name, n, n * (n - 1) / 2, routeServers * n})
	}
	return res
}

// Render formats Figure 1.
func (r *Figure1Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 1: bilateral vs multilateral session scaling",
		Columns: []string{"IXP", "Members", "Bilateral n(n-1)/2", "Multilateral c*n"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.IXP, row.Members, row.Bilateral, row.Multilateral)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("c = %d route servers", r.RouteServers))
	return t
}

// Figure5Result reproduces the CCDF of the number of RS members
// advertising a prefix (DE-CIX in the paper; 48.4% multi-member).
type Figure5Result struct {
	IXP             string
	CCDF            *metrics.Series
	MultiMemberFrac float64
	Prefixes        int
}

// Figure5 computes the advertiser-multiplicity distribution from the
// active survey of the named IXP (default DE-CIX).
func (c *Context) Figure5(ixpName string) *Figure5Result {
	if ixpName == "" {
		ixpName = "DE-CIX"
	}
	mult := c.Run.Active.PrefixMultiplicity[ixpName]
	var counts []int
	multi := 0
	//mlplint:ordered NewDistributionInts sorts the sample; the multi counter is commutative
	for _, m := range mult {
		counts = append(counts, m)
		if m > 1 {
			multi++
		}
	}
	d := metrics.NewDistributionInts(counts)
	return &Figure5Result{
		IXP:             ixpName,
		CCDF:            d.CCDF("members advertising prefix"),
		MultiMemberFrac: metrics.Ratio(multi, len(counts)),
		Prefixes:        len(counts),
	}
}

// Render formats Figure 5.
func (r *Figure5Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Figure 5: CCDF of RS members advertising a prefix (%s)", r.IXP),
		Columns: []string{"members >= x", "fraction"},
	}
	for i := range r.CCDF.X {
		if i > 12 {
			break
		}
		t.AddRow(fmt.Sprintf("%.0f", r.CCDF.X[i]), fmt.Sprintf("%.3f", r.CCDF.Y[i]))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%s of %d prefixes advertised by more than one member (paper: 48.4%%)",
		metrics.Pct(r.MultiMemberFrac), r.Prefixes))
	return t
}

// Figure6Result reproduces the visibility comparison: per RS member,
// MLP-inferred peerings vs passive-BGP-visible vs traceroute-visible.
type Figure6Result struct {
	// Ranked series: members ordered by MLP degree descending.
	MLP, Passive, Active *metrics.Series

	TotalMLPLinks     int
	PublicPeerLinks   int     // p2p links visible in public BGP
	SharedLinks       int     // MLP ∩ public p2p
	InvisibleFrac     float64 // MLP links absent from public BGP paths
	MorePeeringsFrac  float64 // (MLP links)/(public p2p) - 1
	PublicASLinks     int
	ASLinkIncreasePct float64 // AS links added to the public graph
	TracerouteOverlap int
}

// Figure6 builds the ranked member comparison.
func (c *Context) Figure6() *Figure6Result {
	res := &Figure6Result{TotalMLPLinks: c.Run.Result.TotalLinks()}

	publicLinks := c.Run.Passive.Links
	publicP2P := c.PublicP2PLinks()
	traceroute := c.TracerouteLinks()

	res.PublicPeerLinks = len(publicP2P)
	res.PublicASLinks = len(publicLinks)
	invisible := 0
	for link := range c.Run.Result.Links {
		if !publicLinks[link] {
			invisible++
		}
		if publicP2P[link] {
			res.SharedLinks++
		}
		if traceroute[link] {
			res.TracerouteOverlap++
		}
	}
	res.InvisibleFrac = metrics.Ratio(invisible, res.TotalMLPLinks)
	if res.PublicPeerLinks > 0 {
		res.MorePeeringsFrac = float64(res.TotalMLPLinks)/float64(res.PublicPeerLinks) - 1
	}
	newLinks := 0
	for link := range c.Run.Result.Links {
		if !publicLinks[link] {
			newLinks++
		}
	}
	res.ASLinkIncreasePct = metrics.Ratio(newLinks, res.PublicASLinks)

	mlpDeg := c.MemberMLPDegree()
	pasvDeg := IncidentCount(publicP2P)
	actDeg := IncidentCount(traceroute)

	members := make([]bgp.ASN, 0, len(mlpDeg))
	for m := range mlpDeg {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool {
		if mlpDeg[members[i]] != mlpDeg[members[j]] {
			return mlpDeg[members[i]] > mlpDeg[members[j]]
		}
		return members[i] < members[j]
	})
	mlp := &metrics.Series{Name: "MLP"}
	pasv := &metrics.Series{Name: "Passive"}
	act := &metrics.Series{Name: "Active"}
	for rank, m := range members {
		x := float64(rank)
		mlp.X, mlp.Y = append(mlp.X, x), append(mlp.Y, float64(mlpDeg[m]))
		pasv.X, pasv.Y = append(pasv.X, x), append(pasv.Y, float64(pasvDeg[m]))
		act.X, act.Y = append(act.X, x), append(act.Y, float64(actDeg[m]))
	}
	res.MLP, res.Passive, res.Active = mlp, pasv, act
	return res
}

// Render formats Figure 6's headline numbers.
func (r *Figure6Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 6: MLP vs passive vs active visibility",
		Columns: []string{"metric", "value", "paper"},
	}
	t.AddRow("MLP links inferred", r.TotalMLPLinks, "206,667")
	t.AddRow("public p2p links", r.PublicPeerLinks, "58,952")
	t.AddRow("shared (MLP ∩ public p2p)", r.SharedLinks, "24,511 (11.9%)")
	t.AddRow("MLP links invisible in BGP", metrics.Pct(r.InvisibleFrac), "88%")
	t.AddRow("more peering links than public", metrics.Pct(r.MorePeeringsFrac), "209%")
	t.AddRow("AS-link increase over public", metrics.Pct(r.ASLinkIncreasePct), "18%")
	t.AddRow("overlap with traceroute links", r.TracerouteOverlap, "3,927")
	return t
}

// Figure7Result reproduces the customer-degree analysis of the inferred
// link endpoints.
type Figure7Result struct {
	SmallestCDF, LargestCDF *metrics.Series

	StubStubFrac     float64 // both endpoints stubs (paper 12.4%)
	InvolvesStubFrac float64 // at least one stub (55.6%)
	SmallDegreeFrac  float64 // smaller endpoint ≤10 customers (58.1%)
	Links            int
}

// Figure7 computes endpoint customer degrees using the relationship
// inference (as the paper uses [32]).
func (c *Context) Figure7() *Figure7Result {
	rels := c.Run.Passive.Rels
	res := &Figure7Result{Links: c.Run.Result.TotalLinks()}
	var smallest, largest []int
	stubStub, involves, smallDeg := 0, 0, 0
	//mlplint:ordered NewDistributionInts sorts both samples; the integer counters are commutative
	for link := range c.Run.Result.Links {
		da, db := rels.CustomerDegree(link.A), rels.CustomerDegree(link.B)
		lo, hi := da, db
		if lo > hi {
			lo, hi = hi, lo
		}
		smallest = append(smallest, lo)
		largest = append(largest, hi)
		if hi == 0 {
			stubStub++
		}
		if lo == 0 {
			involves++
		}
		if lo <= 10 {
			smallDeg++
		}
	}
	res.SmallestCDF = metrics.NewDistributionInts(smallest).CDF("smallest customer degree")
	res.LargestCDF = metrics.NewDistributionInts(largest).CDF("largest customer degree")
	res.StubStubFrac = metrics.Ratio(stubStub, res.Links)
	res.InvolvesStubFrac = metrics.Ratio(involves, res.Links)
	res.SmallDegreeFrac = metrics.Ratio(smallDeg, res.Links)
	return res
}

// Render formats Figure 7's summary statistics.
func (r *Figure7Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 7: customer degrees on inferred links",
		Columns: []string{"metric", "value", "paper"},
	}
	t.AddRow("links between two stubs", metrics.Pct(r.StubStubFrac), "12.4%")
	t.AddRow("links involving a stub", metrics.Pct(r.InvolvesStubFrac), "55.6%")
	t.AddRow("links w/ endpoint <=10 customers", metrics.Pct(r.SmallDegreeFrac), "58.1%")
	t.AddRow("links analysed", r.Links, "206,667")
	return t
}

// Figure8Result reproduces the per-LG validation comparison.
type Figure8Result struct {
	Rows []struct {
		Host      bgp.ASN
		AllPaths  bool
		Tested    int
		Confirmed int
		Fraction  float64
	}
	MeanAllPaths, MeanBestPath float64
}

// Figure8 groups validation outcomes by LG display mode.
func (c *Context) Figure8() (*Figure8Result, error) {
	val, err := c.Validation()
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{}
	var allSum, bestSum float64
	var allN, bestN int
	for _, o := range val.PerLG {
		if o.Tested == 0 {
			continue
		}
		res.Rows = append(res.Rows, struct {
			Host      bgp.ASN
			AllPaths  bool
			Tested    int
			Confirmed int
			Fraction  float64
		}{o.Host, o.AllPaths, o.Tested, o.Confirmed, o.Fraction()})
		if o.AllPaths {
			allSum += o.Fraction()
			allN++
		} else {
			bestSum += o.Fraction()
			bestN++
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Fraction > res.Rows[j].Fraction })
	if allN > 0 {
		res.MeanAllPaths = allSum / float64(allN)
	}
	if bestN > 0 {
		res.MeanBestPath = bestSum / float64(bestN)
	}
	return res, nil
}

// Render formats Figure 8.
func (r *Figure8Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 8: validated fraction per looking glass",
		Columns: []string{"LG (AS)", "mode", "tested", "confirmed", "fraction"},
	}
	for _, row := range r.Rows {
		mode := "best-path"
		if row.AllPaths {
			mode = "all-paths"
		}
		t.AddRow(row.Host, mode, row.Tested, row.Confirmed, fmt.Sprintf("%.3f", row.Fraction))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"mean all-paths %.3f vs best-path %.3f (best-path LGs hide less-preferred routes)",
		r.MeanAllPaths, r.MeanBestPath))
	return t
}

// linkSetContains is a helper for tests.
func linkSetContains(set map[topology.LinkKey]bool, a, b bgp.ASN) bool {
	return set[topology.MakeLinkKey(a, b)]
}
