//go:build race

package experiments

// raceEnabled reports that the race detector is active: the scaled-world
// equivalence tests skip themselves there (they re-run minutes of
// single-goroutine mining under a ~10x detector slowdown for no extra
// interleaving coverage; the race job's value is the concurrent
// generation and propagation paths, covered at test scale).
const raceEnabled = true
