package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/collector"
	"mlpeering/internal/core"
	"mlpeering/internal/metrics"
	"mlpeering/internal/mrt"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

// ChurnWindowRow is one inference window of the route-churn experiment.
type ChurnWindowRow struct {
	Window        int
	Ops           int // mutation events applied in the window's epoch
	DirtyDests    int // destinations the incremental engine re-examined
	Announced     int // prefix announcements in the window
	Withdrawn     int // prefix withdrawals in the window
	WithdrawnOnly int // withdrawn-only UPDATEs in the window
	LiveRoutes    int // (feeder, prefix) live-table size at window close
	RelLinks      int // AS-relationship links inferred in the window
	P2PRels       int // p2p-labelled subset of RelLinks
	Links         int // inferred ML links at window close
	Stability     float64
	Precision     float64 // inferred ∩ truth / inferred (truth after the epoch)
	Recall        float64 // inferred ∩ truth / truth (reciprocal mesh)
}

// ChurnResult is the windowed-inference-under-churn experiment: how
// stable and how correct the inferred multilateral mesh stays while the
// world mutates underneath the measurement.
type ChurnResult struct {
	Scenario string
	Mode     core.WindowsMode
	Epochs   int
	Interval time.Duration
	Rows     []ChurnWindowRow
}

// ChurnTrace is a pre-built churn workload: the world's base RIB
// dumps, the announce/withdraw update trace of the full churn schedule,
// the inference dictionary, and the per-epoch ground truth. It is the
// reusable input of the windowed inference — mode comparisons and
// benchmarks replay the same trace instead of regenerating the world.
type ChurnTrace struct {
	Scenario string
	Start    time.Time
	Interval time.Duration
	Epochs   int
	Dumps    []*mrt.Dump
	Updates  []*mrt.BGP4MPMessage
	Dict     *core.Dictionary
	Trace    *churn.Trace
}

// BuildChurnTrace builds a world, evolves it through the configured
// churn epochs (incremental engine apply + announce/withdraw diff
// stream) and captures everything the windowed inference consumes. The
// dictionary is built once from the pre-churn world, like the real
// method's snapshot of IXP websites: membership churn after the
// snapshot is exactly what erodes coverage.
func BuildChurnTrace(cfg topology.Config, ccfg churn.Config) (*ChurnTrace, error) {
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	dict, err := w.Dictionary()
	if err != nil {
		return nil, err
	}

	col := collector.New("rrc-churn", w.Engine, nil, 4)
	runner := churn.NewRunner(w.Engine, ccfg)
	ccfg = runner.Config()

	start := pipeline.Timestamp.Add(2 * time.Hour)
	var buf bytes.Buffer
	trace, err := runner.Run(&buf, col, start)
	if err != nil {
		return nil, err
	}
	updates, err := mrt.ReadUpdates(&buf)
	if err != nil {
		return nil, err
	}
	return &ChurnTrace{
		Scenario: w.Scenario(),
		Start:    start,
		Interval: ccfg.Interval,
		Epochs:   ccfg.Epochs,
		Dumps:    w.Dumps,
		Updates:  updates,
		Dict:     dict,
		Trace:    trace,
	}, nil
}

// Windows replays the trace through the windowed passive pipeline in
// the given mode. workers sizes the close-time worker pool (0 means
// GOMAXPROCS); results are bit-identical for any value.
func (ct *ChurnTrace) Windows(mode core.WindowsMode, workers int) (*core.PassiveWindowsResult, error) {
	return core.RunPassiveWindows(ct.Dumps, ct.Updates, ct.Dict, core.WindowOptions{
		Start:   ct.Start,
		Window:  ct.Interval,
		Count:   ct.Epochs,
		Mode:    mode,
		Workers: workers,
	})
}

// StreamWindows replays the trace in streaming mode: each window is
// handed to fn at close and not retained — in incremental mode the mesh
// is never snapshotted, so memory stays bounded by the live state
// regardless of horizon length (the long-horizon replay mode). count
// overrides the number of windows when positive (windows past the last
// update replay over the then-static live table), letting a fixed trace
// drive an arbitrarily long horizon.
func (ct *ChurnTrace) StreamWindows(mode core.WindowsMode, count, workers int, fn func(*core.PassiveWindow)) error {
	if count <= 0 {
		count = ct.Epochs
	}
	_, err := core.RunPassiveWindows(ct.Dumps, ct.Updates, ct.Dict, core.WindowOptions{
		Start:   ct.Start,
		Window:  ct.Interval,
		Count:   count,
		Mode:    mode,
		Workers: workers,
		Stream:  fn,
	})
	return err
}

// ReplayWindows replays the trace through the incremental windowed
// pipeline handing each window to fn at close, like StreamWindows, but
// with the per-window Result materialized — the serving tier's epoch
// producer: each callback carries a freshly snapshotted mesh that is
// safe to retain after the callback returns (the *PassiveWindow itself
// is not). ctx cancels the replay at the next window-close boundary;
// count overrides the number of windows when positive.
func (ct *ChurnTrace) ReplayWindows(ctx context.Context, count, workers int, fn func(*core.PassiveWindow)) error {
	if count <= 0 {
		count = ct.Epochs
	}
	_, err := core.RunPassiveWindows(ct.Dumps, ct.Updates, ct.Dict, core.WindowOptions{
		Start:       ct.Start,
		Window:      ct.Interval,
		Count:       count,
		Mode:        core.WindowsIncremental,
		Workers:     workers,
		Stream:      fn,
		Materialize: true,
		Ctx:         ctx,
	})
	return err
}

// RunChurn builds a churn trace and re-runs passive inference per epoch
// window in the given mode (core.WindowsIncremental maintains the
// observation store under announce/withdraw deltas; core.WindowsRemine
// re-mines per window).
func RunChurn(cfg topology.Config, ccfg churn.Config, mode core.WindowsMode, workers int) (*ChurnResult, error) {
	ct, err := BuildChurnTrace(cfg, ccfg)
	if err != nil {
		return nil, err
	}
	return ct.Run(mode, workers)
}

// Run derives the churn experiment table from the trace in the given
// mode, fanning window closes out on workers goroutines (0 means
// GOMAXPROCS).
func (ct *ChurnTrace) Run(mode core.WindowsMode, workers int) (*ChurnResult, error) {
	windows, err := ct.Windows(mode, workers)
	if err != nil {
		return nil, err
	}
	trace := ct.Trace

	res := &ChurnResult{Scenario: ct.Scenario, Mode: mode, Epochs: ct.Epochs, Interval: ct.Interval}
	for k := range windows.Windows {
		pw := &windows.Windows[k]
		row := ChurnWindowRow{
			Window:        k,
			Announced:     pw.Announced,
			Withdrawn:     pw.Withdrawn,
			WithdrawnOnly: pw.WithdrawnOnlyUpdates,
			LiveRoutes:    pw.LiveRoutes,
			RelLinks:      pw.RelLinks,
			P2PRels:       pw.P2PRels,
			Links:         pw.Result.TotalLinks(),
			Stability:     windows.Stability[k],
		}
		if k < len(trace.Epochs) {
			row.Ops = trace.Epochs[k].Ops
			row.DirtyDests = trace.Epochs[k].DirtyDests
		}
		if k < len(trace.Truth) {
			truth := trace.Truth[k]
			tp := 0
			for link := range pw.Result.Links {
				if truth[link] {
					tp++
				}
			}
			if n := pw.Result.TotalLinks(); n > 0 {
				row.Precision = float64(tp) / float64(n)
			}
			if len(truth) > 0 {
				row.Recall = float64(tp) / float64(len(truth))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the experiment as a table.
func (r *ChurnResult) Render() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Route churn: windowed ML-mesh inference (%s, %s mode, %d epochs @ %v)",
			r.Scenario, r.Mode, r.Epochs, r.Interval),
		Columns: []string{"window", "ops", "dirty", "ann", "wdr", "wdr-only", "live", "rels", "p2p", "links", "stability", "precision", "recall"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Window, row.Ops, row.DirtyDests, row.Announced, row.Withdrawn,
			row.WithdrawnOnly, row.LiveRoutes, row.RelLinks, row.P2PRels, row.Links,
			fmt.Sprintf("%.3f", row.Stability),
			fmt.Sprintf("%.3f", row.Precision),
			fmt.Sprintf("%.3f", row.Recall))
	}
	return t
}
