package experiments

import (
	"bytes"
	"fmt"
	"time"

	"mlpeering/internal/churn"
	"mlpeering/internal/collector"
	"mlpeering/internal/core"
	"mlpeering/internal/metrics"
	"mlpeering/internal/mrt"
	"mlpeering/internal/pipeline"
	"mlpeering/internal/topology"
)

// ChurnWindowRow is one inference window of the route-churn experiment.
type ChurnWindowRow struct {
	Window        int
	Ops           int // mutation events applied in the window's epoch
	DirtyDests    int // destinations the incremental engine re-examined
	Announced     int // prefix announcements in the window
	Withdrawn     int // prefix withdrawals in the window
	WithdrawnOnly int // withdrawn-only UPDATEs in the window
	LiveRoutes    int // (feeder, prefix) live-table size at window close
	Links         int // inferred ML links at window close
	Stability     float64
	Precision     float64 // inferred ∩ truth / inferred (truth after the epoch)
	Recall        float64 // inferred ∩ truth / truth (reciprocal mesh)
}

// ChurnResult is the windowed-inference-under-churn experiment: how
// stable and how correct the inferred multilateral mesh stays while the
// world mutates underneath the measurement.
type ChurnResult struct {
	Scenario string
	Epochs   int
	Interval time.Duration
	Rows     []ChurnWindowRow
}

// RunChurn builds a world, evolves it through the configured churn
// epochs (incremental engine apply + announce/withdraw diff stream),
// and re-runs passive inference per epoch window. The dictionary is
// built once from the pre-churn world, like the real method's snapshot
// of IXP websites: membership churn after the snapshot is exactly what
// erodes coverage.
func RunChurn(cfg topology.Config, ccfg churn.Config) (*ChurnResult, error) {
	w, err := pipeline.BuildWorld(cfg)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	dict, err := w.Dictionary()
	if err != nil {
		return nil, err
	}

	col := collector.New("rrc-churn", w.Engine, nil, 4)
	runner := churn.NewRunner(w.Engine, ccfg)
	ccfg = runner.Config()

	start := pipeline.Timestamp.Add(2 * time.Hour)
	var buf bytes.Buffer
	trace, err := runner.Run(&buf, col, start)
	if err != nil {
		return nil, err
	}
	updates, err := mrt.ReadUpdates(&buf)
	if err != nil {
		return nil, err
	}

	windows, err := core.RunPassiveWindows(w.Dumps, updates, dict, core.WindowOptions{
		Start:  start,
		Window: ccfg.Interval,
		Count:  ccfg.Epochs,
	})
	if err != nil {
		return nil, err
	}

	res := &ChurnResult{Scenario: w.Scenario(), Epochs: ccfg.Epochs, Interval: ccfg.Interval}
	for k := range windows.Windows {
		pw := &windows.Windows[k]
		row := ChurnWindowRow{
			Window:        k,
			Announced:     pw.Announced,
			Withdrawn:     pw.Withdrawn,
			WithdrawnOnly: pw.WithdrawnOnlyUpdates,
			LiveRoutes:    pw.LiveRoutes,
			Links:         pw.Result.TotalLinks(),
			Stability:     windows.Stability[k],
		}
		if k < len(trace.Epochs) {
			row.Ops = trace.Epochs[k].Ops
			row.DirtyDests = trace.Epochs[k].DirtyDests
		}
		if k < len(trace.Truth) {
			truth := trace.Truth[k]
			tp := 0
			for link := range pw.Result.Links {
				if truth[link] {
					tp++
				}
			}
			if n := pw.Result.TotalLinks(); n > 0 {
				row.Precision = float64(tp) / float64(n)
			}
			if len(truth) > 0 {
				row.Recall = float64(tp) / float64(len(truth))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the experiment as a table.
func (r *ChurnResult) Render() *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Route churn: windowed ML-mesh inference (%s, %d epochs @ %v)",
			r.Scenario, r.Epochs, r.Interval),
		Columns: []string{"window", "ops", "dirty", "ann", "wdr", "wdr-only", "live", "links", "stability", "precision", "recall"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Window, row.Ops, row.DirtyDests, row.Announced, row.Withdrawn,
			row.WithdrawnOnly, row.LiveRoutes, row.Links,
			fmt.Sprintf("%.3f", row.Stability),
			fmt.Sprintf("%.3f", row.Precision),
			fmt.Sprintf("%.3f", row.Recall))
	}
	return t
}
