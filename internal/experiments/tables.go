package experiments

import (
	"fmt"

	"mlpeering/internal/metrics"
)

// Table2Row is one row of the Table 2 reproduction.
type Table2Row struct {
	IXP     string
	HasLG   bool
	ASes    int // ASes at the IXP
	RS      int // known route server members
	Partial bool
	Pasv    int // members covered passively
	Active  int // members covered only actively
	Links   int // inferred MLP links
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows       []Table2Row
	TotalLinks int // distinct links across IXPs
	SumLinks   int // per-IXP sum (exceeds TotalLinks by the overlap)
	MultiIXP   int // links seen at >1 IXP
	ASNs       int // distinct ASNs across all links
}

// Table2 runs the per-IXP inference accounting.
func (c *Context) Table2() *Table2Result {
	res := &Table2Result{}
	asns := make(map[uint32]bool)
	for link := range c.Run.Result.Links {
		asns[uint32(link.A)] = true
		asns[uint32(link.B)] = true
	}
	res.ASNs = len(asns)
	res.TotalLinks = c.Run.Result.TotalLinks()
	res.SumLinks = c.Run.Result.SumPerIXPLinks()
	res.MultiIXP = c.Run.Result.MultiIXPLinks()

	for _, name := range c.ixpOrder() {
		info := c.World.Topo.IXPByName(name)
		x := c.Run.Result.PerIXP[name]
		entry := c.Run.Dict.ByName(name)
		if info == nil || x == nil || entry == nil {
			continue
		}
		res.Rows = append(res.Rows, Table2Row{
			IXP:     name,
			HasLG:   info.HasLG,
			ASes:    len(info.Members),
			RS:      entry.MemberCount(),
			Partial: !info.PublishesMemberList,
			Pasv:    x.PassiveCount(),
			Active:  x.ActiveCount(),
			Links:   len(x.Links),
		})
	}
	return res
}

// Render formats the result like the paper's Table 2.
func (r *Table2Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Table 2: inference of MLP links per IXP",
		Columns: []string{"IXP", "LG", "ASes", "RS", "Pasv", "Active", "Links"},
	}
	for _, row := range r.Rows {
		lg := "N"
		if row.HasLG {
			lg = "Y"
		}
		t.AddRow(row.IXP, lg, row.ASes, fmtCount(row.RS, row.Partial), row.Pasv, row.Active, row.Links)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total distinct links %d between %d ASNs; per-IXP sum %d; %d links at >1 IXP",
			r.TotalLinks, r.ASNs, r.SumLinks, r.MultiIXP),
		"* partial connectivity (member list not published; IRR search only)")
	return t
}

// Table3Row is one row of the Table 3 reproduction.
type Table3Row struct {
	IXP           string
	Links         int
	Tested        int
	TestedFrac    float64
	Confirmed     int
	ConfirmedFrac float64
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows []Table3Row
	// Totals across distinct links.
	Tested, Confirmed int
	ConfirmedFrac     float64
}

// Table3 runs LG-based validation and aggregates per IXP.
func (c *Context) Table3() (*Table3Result, error) {
	val, err := c.Validation()
	if err != nil {
		return nil, err
	}
	res := &Table3Result{
		Tested:        val.Tested,
		Confirmed:     val.Confirmed,
		ConfirmedFrac: val.ConfirmedFraction(),
	}
	for _, name := range c.ixpOrder() {
		x := c.Run.Result.PerIXP[name]
		if x == nil {
			continue
		}
		agg := val.PerIXP[name]
		row := Table3Row{
			IXP:       name,
			Links:     len(x.Links),
			Tested:    agg.Tested,
			Confirmed: agg.Confirmed,
		}
		row.TestedFrac = metrics.Ratio(agg.Tested, row.Links)
		row.ConfirmedFrac = metrics.Ratio(agg.Confirmed, agg.Tested)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result like the paper's Table 3.
func (r *Table3Result) Render() *metrics.Table {
	t := &metrics.Table{
		Title:   "Table 3: validation of inferred MLP links per IXP",
		Columns: []string{"IXP", "Links", "Validated", "Val%", "Confirmed", "Conf%"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.IXP, row.Links, row.Tested, metrics.Pct(row.TestedFrac),
			row.Confirmed, metrics.Pct(row.ConfirmedFrac))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"overall: tested %d distinct links, confirmed %d (%s); paper: 26,392 tested, 98.4%% confirmed",
		r.Tested, r.Confirmed, metrics.Pct(r.ConfirmedFrac)))
	return t
}
