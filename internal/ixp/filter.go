package ixp

import (
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
)

// FilterMode selects which of the two composite patterns a member uses
// to express its export policy toward the route server (§3).
type FilterMode int

const (
	// ModeAllExcept: announce to all members except the listed ones
	// (ALL + EXCLUDE communities).
	ModeAllExcept FilterMode = iota
	// ModeNoneExcept: announce to nobody except the listed ones
	// (NONE + INCLUDE communities).
	ModeNoneExcept
)

// String implements fmt.Stringer.
func (m FilterMode) String() string {
	if m == ModeAllExcept {
		return "ALL+EXCLUDE"
	}
	return "NONE+INCLUDE"
}

// ExportFilter is a member's export policy toward one route server: the
// ground truth the topology generator assigns and the object the
// inference algorithm reconstructs from observed communities.
type ExportFilter struct {
	Mode  FilterMode
	Peers map[bgp.ASN]bool // excluded (ModeAllExcept) or included (ModeNoneExcept)
}

// NewExportFilter builds a filter over the given peer list.
func NewExportFilter(mode FilterMode, peers ...bgp.ASN) ExportFilter {
	f := ExportFilter{Mode: mode, Peers: make(map[bgp.ASN]bool, len(peers))}
	for _, p := range peers {
		f.Peers[p] = true
	}
	return f
}

// OpenFilter announces to every member: ALL with no excludes.
func OpenFilter() ExportFilter { return ExportFilter{Mode: ModeAllExcept} }

// Allows reports whether routes are exported toward peer.
func (f ExportFilter) Allows(peer bgp.ASN) bool {
	if f.Mode == ModeAllExcept {
		return !f.Peers[peer]
	}
	return f.Peers[peer]
}

// PeerList returns the filter's peer set in ascending order.
func (f ExportFilter) PeerList() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(f.Peers))
	for p := range f.Peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllowedCount returns how many of the candidate members receive routes.
// The member itself is conventionally not counted.
func (f ExportFilter) AllowedCount(members []bgp.ASN, self bgp.ASN) int {
	n := 0
	for _, m := range members {
		if m != self && f.Allows(m) {
			n++
		}
	}
	return n
}

// Communities encodes the filter into the RS community values attached
// to the member's announcements, per the scheme. Encoding follows
// operational practice:
//
//   - ModeAllExcept with no excludes emits just the ALL community (some
//     members omit even that, since it is the default; see OmitDefault).
//   - ModeAllExcept with excludes emits ALL + one EXCLUDE per peer.
//   - ModeNoneExcept emits NONE + one INCLUDE per peer.
func (f ExportFilter) Communities(s *Scheme) (bgp.Communities, error) {
	var cs bgp.Communities
	switch f.Mode {
	case ModeAllExcept:
		cs = append(cs, s.All)
		for _, p := range f.PeerList() {
			c, err := s.Exclude(p)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
		}
	case ModeNoneExcept:
		cs = append(cs, s.None)
		for _, p := range f.PeerList() {
			c, err := s.Include(p)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
		}
	default:
		return nil, fmt.Errorf("ixp: unknown filter mode %d", f.Mode)
	}
	return cs, nil
}

// OmitDefault strips the leading ALL community, modeling members that
// rely on the route server's default behaviour instead of tagging it
// explicitly. Such announcements are the hard case for passive IXP
// identification (§4.2): only EXCLUDE values remain, whose high half
// may not identify the IXP.
func OmitDefault(cs bgp.Communities, s Scheme) bgp.Communities {
	var out bgp.Communities
	for _, c := range cs {
		if c == s.All {
			continue
		}
		out = append(out, c)
	}
	return out
}

// FilterFromCommunities reconstructs an export filter from the RS
// communities observed on a member's announcements. It is the inverse
// of Communities and tolerates the omitted-ALL case: EXCLUDEs without
// ALL imply ModeAllExcept, INCLUDEs without NONE imply ModeNoneExcept,
// and an empty relevant set means the default open policy. Communities
// unrelated to the scheme are ignored.
func FilterFromCommunities(cs bgp.Communities, s Scheme) ExportFilter {
	var excludes, includes []bgp.ASN
	sawAll, sawNone := false, false
	for _, c := range cs {
		switch act, peer := s.Classify(c); act {
		case ActionAll:
			sawAll = true
		case ActionBlock:
			sawNone = true
		case ActionExclude:
			excludes = append(excludes, peer)
		case ActionInclude:
			includes = append(includes, peer)
		}
	}
	switch {
	case sawNone:
		return NewExportFilter(ModeNoneExcept, includes...)
	case sawAll:
		return NewExportFilter(ModeAllExcept, excludes...)
	case len(includes) > 0:
		return NewExportFilter(ModeNoneExcept, includes...)
	case len(excludes) > 0:
		return NewExportFilter(ModeAllExcept, excludes...)
	default:
		return OpenFilter()
	}
}

// Equal reports whether two filters express the same policy.
func (f ExportFilter) Equal(o ExportFilter) bool {
	if f.Mode != o.Mode || len(f.Peers) != len(o.Peers) {
		return false
	}
	for p := range f.Peers {
		if !o.Peers[p] {
			return false
		}
	}
	return true
}

// RelevantCommunities extracts the subset of cs that this scheme
// interprets, preserving order. Used when a route carries both RS
// communities and unrelated informational communities.
func (s Scheme) RelevantCommunities(cs bgp.Communities) bgp.Communities {
	var out bgp.Communities
	for _, c := range cs {
		if act, _ := s.Classify(c); act != ActionNone {
			out = append(out, c)
		}
	}
	return out
}
