package ixp

import (
	"net/netip"
	"sort"

	"mlpeering/internal/bgp"
)

// Region is a coarse geographic region, used for IXP placement, member
// affinity and the geographic-scope analysis of §5.5.
type Region int

// Regions. The paper's IXPs are European; the estimate of §5.7 adds
// other continents.
const (
	RegionWestEU Region = iota
	RegionEastEU
	RegionNorthEU
	RegionSouthEU
	RegionNorthAmerica
	RegionAsiaPacific
	RegionLatinAmerica
	RegionAfrica
	numRegions
)

// NumRegions is the number of distinct regions.
const NumRegions = int(numRegions)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionWestEU:
		return "eu-west"
	case RegionEastEU:
		return "eu-east"
	case RegionNorthEU:
		return "eu-north"
	case RegionSouthEU:
		return "eu-south"
	case RegionNorthAmerica:
		return "na"
	case RegionAsiaPacific:
		return "apac"
	case RegionLatinAmerica:
		return "latam"
	case RegionAfrica:
		return "africa"
	default:
		return "unknown"
	}
}

// IsEurope reports whether the region is one of the European ones.
func (r Region) IsEurope() bool { return r <= RegionSouthEU }

// Info describes one IXP: identity, membership, route server
// configuration and the data sources available for it.
type Info struct {
	Name   string
	Region Region
	Scheme Scheme

	// Members lists every AS present at the IXP; RSMembers is the
	// subset connected to the route server(s).
	Members   []bgp.ASN
	RSMembers []bgp.ASN

	// HasLG reports whether the IXP operates a public looking glass
	// with a view of its route server (the "LG" column of Table 2).
	HasLG bool

	// PublishesMemberList reports whether connectivity data (the RS
	// member list) is available from the IXP website or an AS-SET.
	// LINX is the paper's example of an IXP where it is not.
	PublishesMemberList bool

	// StripsCommunities models Netnod-style route servers that remove
	// all community values before reflecting paths (§5.8): such IXPs
	// defeat the inference entirely.
	StripsCommunities bool

	// Transparent reports whether the route server keeps itself out of
	// the AS path (the common case; the paper found 3 LGs where the RS
	// ASN was visible).
	Transparent bool

	// FlatFee reports whether the IXP charges a flat port fee; pricing
	// drives peering density in the §5.7 estimate.
	FlatFee bool

	// MemberAddrs assigns each member its address on the IXP peering
	// LAN; looking-glass commands reference members by these.
	MemberAddrs map[bgp.ASN]netip.Addr

	// RSAddr is the route server's own LAN address.
	RSAddr netip.Addr
}

// MemberAddr returns the LAN address of member asn.
func (x *Info) MemberAddr(asn bgp.ASN) (netip.Addr, bool) {
	a, ok := x.MemberAddrs[asn]
	return a, ok
}

// MemberByAddr finds the member holding a LAN address.
func (x *Info) MemberByAddr(addr netip.Addr) (bgp.ASN, bool) {
	for asn, a := range x.MemberAddrs {
		if a == addr {
			return asn, true
		}
	}
	return 0, false
}

// IsRSMember reports whether asn is connected to the route server.
func (x *Info) IsRSMember(asn bgp.ASN) bool {
	for _, m := range x.RSMembers {
		if m == asn {
			return true
		}
	}
	return false
}

// IsMember reports whether asn is present at the IXP at all.
func (x *Info) IsMember(asn bgp.ASN) bool {
	for _, m := range x.Members {
		if m == asn {
			return true
		}
	}
	return false
}

// SortedRSMembers returns the RS member list in ascending ASN order.
func (x *Info) SortedRSMembers() []bgp.ASN {
	out := append([]bgp.ASN(nil), x.RSMembers...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedMembers returns the full member list in ascending ASN order.
func (x *Info) SortedMembers() []bgp.ASN {
	out := append([]bgp.ASN(nil), x.Members...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
