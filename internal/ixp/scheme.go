// Package ixp defines the vocabulary shared by the route server
// implementation, the topology generator and the inference algorithm:
// route-server community schemes (paper §3, Table 1), member export
// filters, and IXP/membership descriptors.
package ixp

import (
	"fmt"

	"mlpeering/internal/bgp"
)

// Action is the semantic of one route-server community value.
type Action int

// The four community actions common to all IXPs the paper studied (§3).
const (
	ActionNone    Action = iota // not an RS community
	ActionAll                   // announce to all RS members (default)
	ActionExclude               // block announcement toward one member
	ActionBlock                 // block announcement toward all members
	ActionInclude               // allow announcement toward one member
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionAll:
		return "ALL"
	case ActionExclude:
		return "EXCLUDE"
	case ActionBlock:
		return "NONE"
	case ActionInclude:
		return "INCLUDE"
	default:
		return "unrelated"
	}
}

// Scheme describes how one IXP's route servers encode filtering
// communities, generalizing the patterns of Table 1:
//
//	DE-CIX  ALL=6695:6695  EXCLUDE=0:peer      NONE=0:6695   INCLUDE=6695:peer
//	MSK-IX  ALL=8631:8631  EXCLUDE=0:peer      NONE=0:8631   INCLUDE=8631:peer
//	ECIX    ALL=9033:9033  EXCLUDE=64960:peer  NONE=65000:0  INCLUDE=65000:peer
type Scheme struct {
	// RSASN is the ASN of the IXP's route servers.
	RSASN bgp.ASN
	// All is the exact community announcing to everyone.
	All bgp.Community
	// None is the exact community blocking everyone.
	None bgp.Community
	// ExcludeHigh is the high half of EXCLUDE=ExcludeHigh:peer.
	ExcludeHigh bgp.ASN
	// IncludeHigh is the high half of INCLUDE=IncludeHigh:peer.
	IncludeHigh bgp.ASN
	// Mapper translates 32-bit member ASNs to the 16-bit aliases the
	// IXP publishes; nil if the IXP has no 32-bit members.
	Mapper *bgp.ASNMapper
}

// StandardScheme returns the DE-CIX-style scheme for a route server ASN:
// ALL=rs:rs, EXCLUDE=0:peer, NONE=0:rs, INCLUDE=rs:peer. This is the
// most common pattern and the one whose values identify the IXP from
// either community half.
func StandardScheme(rsASN bgp.ASN) Scheme {
	return Scheme{
		RSASN:       rsASN,
		All:         bgp.MakeCommunity(rsASN, rsASN),
		None:        bgp.MakeCommunity(0, rsASN),
		ExcludeHigh: 0,
		IncludeHigh: rsASN,
	}
}

// PrivateRangeScheme returns the ECIX-style scheme, which encodes the
// actions in the private ASN range rather than with the RS ASN:
// ALL=rs:rs, EXCLUDE=64960:peer, NONE=65000:0, INCLUDE=65000:peer.
// Only the ALL community reveals the IXP; EXCLUDE/INCLUDE values are
// ambiguous across IXPs using the same convention.
func PrivateRangeScheme(rsASN bgp.ASN) Scheme {
	return Scheme{
		RSASN:       rsASN,
		All:         bgp.MakeCommunity(rsASN, rsASN),
		None:        bgp.MakeCommunity(65000, 0),
		ExcludeHigh: 64960,
		IncludeHigh: 65000,
	}
}

// Classify decodes one community under the scheme. For EXCLUDE and
// INCLUDE actions it also returns the referenced member's real ASN
// (resolving 16-bit aliases through the mapper).
func (s Scheme) Classify(c bgp.Community) (Action, bgp.ASN) {
	switch c {
	case s.All:
		return ActionAll, 0
	case s.None:
		return ActionBlock, 0
	}
	peer := c.Low()
	if s.Mapper != nil {
		peer = s.Mapper.Resolve(peer)
	}
	// INCLUDE is checked before EXCLUDE so that schemes where
	// IncludeHigh == RSASN (standard) do not shadow; the two high
	// halves are distinct in all real schemes.
	if c.High() == s.IncludeHigh {
		return ActionInclude, peer
	}
	if c.High() == s.ExcludeHigh {
		return ActionExclude, peer
	}
	return ActionNone, 0
}

// EncodePeer returns the low half used to reference member asn,
// allocating a 16-bit alias if needed.
func (s *Scheme) EncodePeer(asn bgp.ASN) (bgp.ASN, error) {
	if !asn.Is32Bit() {
		return asn, nil
	}
	if s.Mapper == nil {
		s.Mapper = bgp.NewASNMapper()
	}
	return s.Mapper.Alias(asn)
}

// Exclude returns the community blocking announcements toward asn.
func (s *Scheme) Exclude(asn bgp.ASN) (bgp.Community, error) {
	p, err := s.EncodePeer(asn)
	if err != nil {
		return 0, err
	}
	c := bgp.MakeCommunity(s.ExcludeHigh, p)
	if c == s.None || c == s.All {
		return 0, fmt.Errorf("ixp: EXCLUDE %s collides with scheme constant %s", asn, c)
	}
	return c, nil
}

// Include returns the community allowing announcements toward asn.
func (s *Scheme) Include(asn bgp.ASN) (bgp.Community, error) {
	p, err := s.EncodePeer(asn)
	if err != nil {
		return 0, err
	}
	c := bgp.MakeCommunity(s.IncludeHigh, p)
	if c == s.None || c == s.All {
		return 0, fmt.Errorf("ixp: INCLUDE %s collides with scheme constant %s", asn, c)
	}
	return c, nil
}

// Identifiable reports whether a community under this scheme reveals the
// IXP on its own: ALL and NONE always do when they embed the RS ASN;
// EXCLUDE/INCLUDE do when their high half is the RS ASN. The paper's
// passive pipeline uses this to decide whether EXCLUDE-combination
// disambiguation is needed (§4.2).
func (s Scheme) Identifiable(c bgp.Community) bool {
	switch c {
	case s.All:
		return true
	case s.None:
		return c.High() == s.RSASN || c.Low() == s.RSASN
	}
	return (c.High() == s.IncludeHigh && s.IncludeHigh == s.RSASN) ||
		(c.High() == s.ExcludeHigh && s.ExcludeHigh == s.RSASN)
}
