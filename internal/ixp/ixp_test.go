package ixp

import (
	"testing"
	"testing/quick"

	"mlpeering/internal/bgp"
)

func TestStandardSchemeClassify(t *testing.T) {
	s := StandardScheme(6695)
	cases := []struct {
		c    string
		act  Action
		peer bgp.ASN
	}{
		{"6695:6695", ActionAll, 0},
		{"0:6695", ActionBlock, 0},
		{"0:5410", ActionExclude, 5410},
		{"6695:8359", ActionInclude, 8359},
		{"3356:100", ActionNone, 0},
		{"8631:8631", ActionNone, 0}, // another IXP's ALL
	}
	for _, c := range cases {
		comm, err := bgp.ParseCommunity(c.c)
		if err != nil {
			t.Fatal(err)
		}
		act, peer := s.Classify(comm)
		if act != c.act || peer != c.peer {
			t.Errorf("Classify(%s) = %v, %v; want %v, %v", c.c, act, peer, c.act, c.peer)
		}
	}
}

func TestPrivateRangeSchemeClassify(t *testing.T) {
	s := PrivateRangeScheme(9033)
	cases := []struct {
		c    string
		act  Action
		peer bgp.ASN
	}{
		{"9033:9033", ActionAll, 0},
		{"65000:0", ActionBlock, 0}, // NONE must shadow INCLUDE of peer 0
		{"64960:8447", ActionExclude, 8447},
		{"65000:8447", ActionInclude, 8447},
		{"0:8447", ActionNone, 0}, // DE-CIX-style EXCLUDE is foreign here
	}
	for _, c := range cases {
		comm, _ := bgp.ParseCommunity(c.c)
		act, peer := s.Classify(comm)
		if act != c.act || peer != c.peer {
			t.Errorf("Classify(%s) = %v, %v; want %v, %v", c.c, act, peer, c.act, c.peer)
		}
	}
}

func TestSchemeMapperResolution(t *testing.T) {
	s := StandardScheme(6695)
	alias, err := s.EncodePeer(196615)
	if err != nil {
		t.Fatal(err)
	}
	if !alias.IsPrivate() {
		t.Fatalf("alias %v not private", alias)
	}
	c, err := s.Exclude(196615)
	if err != nil {
		t.Fatal(err)
	}
	act, peer := s.Classify(c)
	if act != ActionExclude || peer != 196615 {
		t.Fatalf("round trip through alias: %v, %v", act, peer)
	}
}

func TestSchemeIdentifiable(t *testing.T) {
	std := StandardScheme(6695)
	if !std.Identifiable(std.All) || !std.Identifiable(std.None) {
		t.Fatal("ALL/NONE must identify standard scheme")
	}
	inc, _ := std.Include(8359)
	if !std.Identifiable(inc) {
		t.Fatal("standard INCLUDE embeds RS ASN")
	}
	exc, _ := std.Exclude(8359)
	if std.Identifiable(exc) {
		t.Fatal("standard EXCLUDE (0:peer) must be ambiguous")
	}

	prv := PrivateRangeScheme(9033)
	if !prv.Identifiable(prv.All) {
		t.Fatal("private-range ALL embeds RS ASN")
	}
	pexc, _ := prv.Exclude(8447)
	pinc, _ := prv.Include(8447)
	if prv.Identifiable(pexc) || prv.Identifiable(pinc) {
		t.Fatal("private-range EXCLUDE/INCLUDE must be ambiguous")
	}
}

func TestExportFilterAllows(t *testing.T) {
	f := NewExportFilter(ModeAllExcept, 5410, 8732)
	if f.Allows(5410) || f.Allows(8732) {
		t.Fatal("excluded peers allowed")
	}
	if !f.Allows(8359) {
		t.Fatal("unlisted peer blocked")
	}

	g := NewExportFilter(ModeNoneExcept, 8359, 8447)
	if !g.Allows(8359) || !g.Allows(8447) {
		t.Fatal("included peers blocked")
	}
	if g.Allows(5410) {
		t.Fatal("unlisted peer allowed in NONE mode")
	}

	open := OpenFilter()
	if !open.Allows(1) || !open.Allows(9999) {
		t.Fatal("open filter must allow everyone")
	}
}

func TestExportFilterAllowedCount(t *testing.T) {
	members := []bgp.ASN{1, 2, 3, 4, 5}
	f := NewExportFilter(ModeAllExcept, 2)
	// Self (3) never counts; 2 excluded; 1,4,5 allowed.
	if n := f.AllowedCount(members, 3); n != 3 {
		t.Fatalf("AllowedCount = %d", n)
	}
}

func TestFilterCommunitiesRoundTrip(t *testing.T) {
	s := StandardScheme(6695)
	cases := []ExportFilter{
		OpenFilter(),
		NewExportFilter(ModeAllExcept, 5410, 8732),
		NewExportFilter(ModeNoneExcept, 8359, 8447),
		NewExportFilter(ModeNoneExcept), // announce to nobody
	}
	for i, f := range cases {
		cs, err := f.Communities(&s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back := FilterFromCommunities(cs, s)
		if !back.Equal(f) {
			t.Fatalf("case %d: %v -> %v -> %v", i, f, cs, back)
		}
	}
}

func TestFilterCommunitiesFigure2(t *testing.T) {
	// Reproduce the exact wire examples of figure 2 of the paper.
	s := StandardScheme(6695)

	// (a) NONE+INCLUDE: 0:6695 6695:8359 6695:8447
	f := NewExportFilter(ModeNoneExcept, 8359, 8447)
	cs, err := f.Communities(&s)
	if err != nil {
		t.Fatal(err)
	}
	if cs.String() != "0:6695 6695:8359 6695:8447" {
		t.Fatalf("(a) = %q", cs.String())
	}

	// (b) ALL+EXCLUDE: 6695:6695 0:5410 0:8732
	g := NewExportFilter(ModeAllExcept, 5410, 8732)
	cs, err = g.Communities(&s)
	if err != nil {
		t.Fatal(err)
	}
	if cs.String() != "6695:6695 0:5410 0:8732" {
		t.Fatalf("(b) = %q", cs.String())
	}
}

func TestOmitDefaultAndRecovery(t *testing.T) {
	s := StandardScheme(8631) // MSK-IX style: EXCLUDE is 0:peer, ambiguous
	f := NewExportFilter(ModeAllExcept, 5410)
	cs, _ := f.Communities(&s)
	stripped := OmitDefault(cs, s)
	if stripped.Contains(s.All) {
		t.Fatal("ALL not stripped")
	}
	// The filter is still reconstructable from EXCLUDE alone.
	back := FilterFromCommunities(stripped, s)
	if !back.Equal(f) {
		t.Fatalf("recovered %v, want %v", back, f)
	}
}

func TestFilterFromForeignCommunities(t *testing.T) {
	s := StandardScheme(6695)
	// Route tagged only with another IXP's communities and informational
	// values: must decode to the default open policy.
	cs := bgp.Communities{bgp.MakeCommunity(8631, 8631), bgp.MakeCommunity(3356, 70)}
	f := FilterFromCommunities(cs, s)
	if !f.Equal(OpenFilter()) {
		t.Fatalf("foreign communities produced %v", f)
	}
	if got := s.RelevantCommunities(cs); len(got) != 0 {
		t.Fatalf("RelevantCommunities leaked %v", got)
	}
}

func TestFilterRoundTripProperty(t *testing.T) {
	s := StandardScheme(6695)
	f := func(mode bool, peers []uint16) bool {
		m := ModeAllExcept
		if mode {
			m = ModeNoneExcept
		}
		var asns []bgp.ASN
		for _, p := range peers {
			if p == 0 || bgp.ASN(p) == 6695 {
				continue // peer 0 and self-reference are not encodable targets
			}
			asns = append(asns, bgp.ASN(p))
		}
		filt := NewExportFilter(m, asns...)
		cs, err := filt.Communities(&s)
		if err != nil {
			return false
		}
		return FilterFromCommunities(cs, s).Equal(filt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInfoMembership(t *testing.T) {
	x := &Info{
		Name:      "TEST-IX",
		Members:   []bgp.ASN{10, 20, 30},
		RSMembers: []bgp.ASN{30, 10},
	}
	if !x.IsMember(20) || x.IsMember(99) {
		t.Fatal("IsMember")
	}
	if !x.IsRSMember(10) || x.IsRSMember(20) {
		t.Fatal("IsRSMember")
	}
	sorted := x.SortedRSMembers()
	if sorted[0] != 10 || sorted[1] != 30 {
		t.Fatalf("SortedRSMembers = %v", sorted)
	}
}

func TestRegionStringAndEurope(t *testing.T) {
	if !RegionWestEU.IsEurope() || RegionNorthAmerica.IsEurope() {
		t.Fatal("IsEurope")
	}
	seen := map[string]bool{}
	for r := Region(0); r < Region(NumRegions); r++ {
		s := r.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("region %d string %q", r, s)
		}
		seen[s] = true
	}
}
