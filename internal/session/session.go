// Package session implements a minimal BGP-4 speaker over net.Conn —
// OPEN negotiation with the 4-octet-AS capability, KEEPALIVE scheduling,
// hold-time enforcement and UPDATE exchange — plus a live route server
// that reflects member announcements subject to the community-encoded
// export filters of §3. It demonstrates the protocol path end to end
// over real TCP sockets; the bulk experiments use the propagation
// engine instead for scale.
package session

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"mlpeering/internal/bgp"
)

// Config parameterizes a speaker.
type Config struct {
	LocalASN bgp.ASN
	RouterID netip.Addr
	// HoldTime defaults to 90s; keepalives go out every HoldTime/3.
	HoldTime time.Duration
}

func (c Config) holdTime() time.Duration {
	if c.HoldTime <= 0 {
		return 90 * time.Second
	}
	return c.HoldTime
}

// Session is an established BGP session.
type Session struct {
	conn     net.Conn
	cfg      Config
	peerOpen *bgp.Open
	hold     time.Duration // negotiated: min of both sides' hold times

	mu       sync.Mutex
	closed   bool      // guarded by mu
	lastSend time.Time // guarded by mu

	updates chan *bgp.Update
	errCh   chan error
	done    chan struct{}
}

// PeerASN returns the negotiated peer AS.
func (s *Session) PeerASN() bgp.ASN { return s.peerOpen.ASN }

// Establish performs the OPEN/KEEPALIVE handshake on conn and starts
// the receive and keepalive loops.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	open := &bgp.Open{
		ASN:      cfg.LocalASN,
		HoldTime: uint16(cfg.holdTime() / time.Second),
		RouterID: cfg.RouterID,
		AS4:      true,
	}
	// Send and receive OPEN concurrently: both sides of a BGP session
	// transmit their OPEN first, and fully synchronous transports
	// (net.Pipe) would deadlock on sequential write-then-read.
	sendErr := make(chan error, 1)
	go func() { sendErr <- bgp.WriteMessage(conn, open) }()
	msg, err := bgp.ReadMessage(conn, true)
	if err != nil {
		return nil, fmt.Errorf("session: awaiting OPEN: %w", err)
	}
	if err := <-sendErr; err != nil {
		return nil, fmt.Errorf("session: sending OPEN: %w", err)
	}
	peerOpen, ok := msg.(*bgp.Open)
	if !ok {
		return nil, fmt.Errorf("session: expected OPEN, got type %d", msg.Type())
	}
	if !peerOpen.AS4 {
		return nil, errors.New("session: peer lacks 4-octet AS capability")
	}

	hold := cfg.holdTime()
	if peerHold := time.Duration(peerOpen.HoldTime) * time.Second; peerHold > 0 && peerHold < hold {
		hold = peerHold // RFC 4271 §4.2: use the smaller hold time
	}
	s := &Session{
		conn:     conn,
		cfg:      cfg,
		peerOpen: peerOpen,
		hold:     hold,
		updates:  make(chan *bgp.Update, 64),
		errCh:    make(chan error, 1),
		done:     make(chan struct{}),
		//mlplint:clock RFC 4271 keepalive pacing on a live TCP session
		lastSend: time.Now(),
	}
	go s.readLoop()
	go s.keepaliveLoop()
	// Confirm the OPEN with a KEEPALIVE. The read loop is already
	// running, so the peer's confirmation cannot deadlock us even on a
	// synchronous transport.
	if err := s.write(bgp.Keepalive{}); err != nil {
		s.shutdown()
		return nil, fmt.Errorf("session: confirming OPEN: %w", err)
	}
	return s, nil
}

func (s *Session) readLoop() {
	defer close(s.updates)
	hold := s.hold
	for {
		//mlplint:clock RFC 4271 hold-timer deadline on a live TCP session
		if err := s.conn.SetReadDeadline(time.Now().Add(hold)); err != nil {
			s.fail(err)
			return
		}
		msg, err := bgp.ReadMessage(s.conn, true)
		if err != nil {
			s.fail(err)
			return
		}
		switch m := msg.(type) {
		case *bgp.Update:
			select {
			case s.updates <- m:
			case <-s.done:
				return
			}
		case bgp.Keepalive:
			// refreshes the read deadline implicitly
		case *bgp.Notification:
			s.fail(fmt.Errorf("session: peer sent NOTIFICATION %d/%d", m.Code, m.Subcode))
			return
		default:
			s.fail(fmt.Errorf("session: unexpected message type %d", msg.Type()))
			return
		}
	}
}

func (s *Session) keepaliveLoop() {
	interval := s.hold / 3
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.mu.Lock()
			idle := time.Since(s.lastSend) >= interval/2
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			if idle {
				if err := s.write(bgp.Keepalive{}); err != nil {
					s.fail(err)
					return
				}
			}
		case <-s.done:
			return
		}
	}
}

func (s *Session) write(m bgp.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("session: closed")
	}
	//mlplint:clock RFC 4271 keepalive pacing on a live TCP session
	s.lastSend = time.Now()
	return bgp.WriteMessage(s.conn, m)
}

func (s *Session) fail(err error) {
	select {
	case s.errCh <- err:
	default:
	}
	s.shutdown()
}

func (s *Session) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	s.conn.Close()
}

// SendUpdate transmits an UPDATE.
func (s *Session) SendUpdate(u *bgp.Update) error { return s.write(u) }

// Updates returns the channel of received UPDATEs; it closes when the
// session ends.
func (s *Session) Updates() <-chan *bgp.Update { return s.updates }

// Err returns the first fatal error, if any.
func (s *Session) Err() error {
	select {
	case err := <-s.errCh:
		return err
	default:
		return nil
	}
}

// Close sends a cease NOTIFICATION and tears the session down.
func (s *Session) Close() error {
	_ = s.write(&bgp.Notification{Code: 6}) // cease
	s.shutdown()
	return nil
}
