package session

import (
	"fmt"
	"net"
	"net/netip"
	"slices"
	"sync"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/rib"
)

// RouteServer is a live multilateral-peering route server: it accepts
// member BGP sessions over TCP and reflects announcements between them,
// honouring the export filters encoded in the route-server communities
// of each announcement (§3). It is transparent: it neither prepends its
// ASN nor (by default) strips communities.
type RouteServer struct {
	Scheme ixp.Scheme
	Config Config
	// StripCommunities enables Netnod-style community removal.
	StripCommunities bool
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...interface{})

	ln net.Listener

	mu sync.Mutex
	//mlplint:guardedby mu
	members map[bgp.ASN]*memberState
	table   *rib.Table // the server's RIB: one route per (prefix, member)
	wg      sync.WaitGroup
}

type memberState struct {
	session *Session
	addr    netip.Addr
	// routes: prefix -> last announcement, for replay to late joiners
	// and for withdrawals on disconnect.
	routes map[bgp.Prefix]*bgp.Update
}

// NewRouteServer returns a route server for the given scheme.
func NewRouteServer(scheme ixp.Scheme, routerID netip.Addr) *RouteServer {
	return &RouteServer{
		Scheme:  scheme,
		Config:  Config{LocalASN: scheme.RSASN, RouterID: routerID},
		members: make(map[bgp.ASN]*memberState),
		table:   rib.NewTable(),
	}
}

// Table exposes the server's RIB (the state an IXP looking glass would
// render).
func (rs *RouteServer) Table() *rib.Table { return rs.table }

func (rs *RouteServer) logf(format string, args ...interface{}) {
	if rs.Logf != nil {
		rs.Logf(format, args...)
	}
}

// Serve accepts member sessions on ln until it is closed.
func (rs *RouteServer) Serve(ln net.Listener) error {
	rs.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			rs.wg.Wait()
			return err
		}
		rs.wg.Add(1)
		go func() {
			defer rs.wg.Done()
			if err := rs.handle(conn); err != nil {
				rs.logf("route-server: %v", err)
			}
		}()
	}
}

// Addr returns the listener address.
func (rs *RouteServer) Addr() net.Addr {
	if rs.ln == nil {
		return nil
	}
	return rs.ln.Addr()
}

// Close stops the listener and all member sessions.
func (rs *RouteServer) Close() error {
	var err error
	if rs.ln != nil {
		err = rs.ln.Close()
	}
	rs.mu.Lock()
	for _, m := range rs.members {
		m.session.Close()
	}
	rs.mu.Unlock()
	rs.wg.Wait()
	return err
}

func (rs *RouteServer) handle(conn net.Conn) error {
	sess, err := Establish(conn, rs.Config)
	if err != nil {
		conn.Close()
		return err
	}
	member := sess.PeerASN()
	st := &memberState{
		session: sess,
		addr:    netip.AddrFrom4([4]byte{172, 31, byte(member >> 8), byte(member)}),
		routes:  make(map[bgp.Prefix]*bgp.Update),
	}

	rs.mu.Lock()
	if old, dup := rs.members[member]; dup {
		old.session.Close()
	}
	rs.members[member] = st
	// Replay the RIB to the late joiner: every stored route whose
	// setter's export filter allows the new member.
	var replay []*bgp.Update
	rs.table.Walk(func(prefix bgp.Prefix, routes []*rib.Route) bool {
		for _, r := range routes {
			if r.PeerASN == member {
				continue
			}
			filter := ixp.FilterFromCommunities(r.Attrs.Communities, rs.Scheme)
			if !filter.Allows(member) {
				continue
			}
			out := &bgp.Update{Attrs: r.Attrs.Clone(), NLRI: []bgp.Prefix{prefix}}
			if rs.StripCommunities {
				out.Attrs.Communities = nil
			}
			replay = append(replay, out)
		}
		return true
	})
	rs.mu.Unlock()
	for _, u := range replay {
		if err := sess.SendUpdate(u); err != nil {
			break
		}
	}
	rs.logf("route-server: member AS%s up (%d routes replayed)", member, len(replay))

	for upd := range sess.Updates() {
		rs.process(member, st, upd)
	}

	// Session down: withdraw everything the member announced.
	rs.mu.Lock()
	if rs.members[member] == st {
		delete(rs.members, member)
	}
	var prefixes []bgp.Prefix
	for p := range st.routes {
		prefixes = append(prefixes, p)
	}
	slices.SortFunc(prefixes, bgp.ComparePrefixes)
	rs.table.WithdrawPeer(member, st.addr)
	peers := rs.peersLocked()
	rs.mu.Unlock()
	if len(prefixes) > 0 {
		w := &bgp.Update{Withdrawn: prefixes}
		for _, p := range peers {
			_ = p.session.SendUpdate(w)
		}
	}
	rs.logf("route-server: member AS%s down (%d prefixes withdrawn)", member, len(prefixes))
	return sess.Err()
}

// peersLocked snapshots the member sessions in ascending-ASN order so
// fan-outs hit peers in a stable, reproducible sequence.
func (rs *RouteServer) peersLocked() []*memberState {
	asns := make([]bgp.ASN, 0, len(rs.members))
	for asn := range rs.members {
		asns = append(asns, asn)
	}
	slices.Sort(asns)
	out := make([]*memberState, 0, len(asns))
	for _, asn := range asns {
		out = append(out, rs.members[asn])
	}
	return out
}

// process reflects one member announcement to the members its filter
// allows (and propagates withdrawals to everyone).
func (rs *RouteServer) process(from bgp.ASN, st *memberState, upd *bgp.Update) {
	rs.mu.Lock()
	defer rs.mu.Unlock()

	if len(upd.Withdrawn) > 0 {
		for _, p := range upd.Withdrawn {
			delete(st.routes, p)
			rs.table.Withdraw(p, from, st.addr)
		}
		w := &bgp.Update{Withdrawn: upd.Withdrawn}
		for asn, peer := range rs.members {
			if asn == from {
				continue
			}
			_ = peer.session.SendUpdate(w)
		}
	}
	if len(upd.NLRI) == 0 || upd.Attrs == nil {
		return
	}
	for _, p := range upd.NLRI {
		st.routes[p] = upd
		rs.table.Add(&rib.Route{
			Prefix:   p,
			Attrs:    upd.Attrs.Clone(),
			PeerASN:  from,
			PeerAddr: st.addr,
			//mlplint:clock live-session RIB timestamp; the simulated pipeline never reads Learned
			Learned: time.Now(),
		})
	}

	filter := ixp.FilterFromCommunities(upd.Attrs.Communities, rs.Scheme)
	out := &bgp.Update{Attrs: upd.Attrs.Clone(), NLRI: upd.NLRI}
	if rs.StripCommunities {
		out.Attrs.Communities = nil
	}
	for asn, peer := range rs.members {
		if asn == from || !filter.Allows(asn) {
			continue
		}
		if err := peer.session.SendUpdate(out); err != nil {
			rs.logf("route-server: reflect to AS%s: %v", asn, err)
		}
	}
}

// Dial connects a member to a route server address and establishes the
// BGP session.
func Dial(addr string, cfg Config) (*Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("session: dialing %s: %w", addr, err)
	}
	sess, err := Establish(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return sess, nil
}
