package session

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

func testUpdate(t *testing.T, origin bgp.ASN, prefix string, comms string) *bgp.Update {
	t.Helper()
	cs, err := bgp.ParseCommunities(comms)
	if err != nil {
		t.Fatal(err)
	}
	return &bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      bgp.NewASPath(origin),
			NextHop:     netip.MustParseAddr("172.16.0.9"),
			Communities: cs,
		},
		NLRI: []bgp.Prefix{bgp.MustPrefix(prefix)},
	}
}

func dialMember(t *testing.T, addr string, asn bgp.ASN) *Session {
	t.Helper()
	s, err := Dial(addr, Config{
		LocalASN: asn,
		RouterID: netip.AddrFrom4([4]byte{10, 0, byte(asn >> 8), byte(asn)}),
		HoldTime: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func startRS(t *testing.T) (*RouteServer, string) {
	t.Helper()
	rs := NewRouteServer(ixp.StandardScheme(6695), netip.MustParseAddr("172.16.0.1"))
	rs.Config.HoldTime = 5 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rs.Serve(ln)
	t.Cleanup(func() { rs.Close() })
	return rs, ln.Addr().String()
}

func recvUpdate(t *testing.T, s *Session) *bgp.Update {
	t.Helper()
	select {
	case u, ok := <-s.Updates():
		if !ok {
			t.Fatalf("session closed early: %v", s.Err())
		}
		return u
	case <-time.After(3 * time.Second):
		t.Fatal("timeout waiting for update")
		return nil
	}
}

func expectSilence(t *testing.T, s *Session, d time.Duration) {
	t.Helper()
	select {
	case u, ok := <-s.Updates():
		if ok {
			t.Fatalf("unexpected update: %+v", u)
		}
	case <-time.After(d):
	}
}

func TestSessionHandshake(t *testing.T) {
	a, b := net.Pipe()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(a, Config{LocalASN: 64512, RouterID: netip.MustParseAddr("10.0.0.1"), HoldTime: time.Second})
		ch <- res{s, err}
	}()
	s2, err := Establish(b, Config{LocalASN: 196615, RouterID: netip.MustParseAddr("10.0.0.2"), HoldTime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.s.Close()
	if r.s.PeerASN() != 196615 || s2.PeerASN() != 64512 {
		t.Fatalf("negotiated ASNs: %v / %v", r.s.PeerASN(), s2.PeerASN())
	}
}

func TestRouteServerReflectsWithFiltering(t *testing.T) {
	_, addr := startRS(t)

	m1 := dialMember(t, addr, 100)
	m2 := dialMember(t, addr, 200)
	m3 := dialMember(t, addr, 300)
	time.Sleep(50 * time.Millisecond) // let the RS register all three

	// m1 announces, excluding 300: ALL + EXCLUDE(300).
	upd := testUpdate(t, 100, "10.1.0.0/16", "6695:6695 0:300")
	if err := m1.SendUpdate(upd); err != nil {
		t.Fatal(err)
	}

	got := recvUpdate(t, m2)
	if got.NLRI[0] != bgp.MustPrefix("10.1.0.0/16") {
		t.Fatalf("m2 got %v", got.NLRI)
	}
	if o, _ := got.Attrs.ASPath.Origin(); o != 100 {
		t.Fatalf("m2 path %v", got.Attrs.ASPath)
	}
	// Transparent RS: communities intact, RS ASN absent from path.
	if !got.Attrs.Communities.Contains(bgp.MakeCommunity(6695, 6695)) {
		t.Fatalf("communities stripped: %v", got.Attrs.Communities)
	}
	if got.Attrs.ASPath.Contains(6695) {
		t.Fatal("RS ASN in path")
	}

	expectSilence(t, m3, 300*time.Millisecond)
}

func TestRouteServerNoneInclude(t *testing.T) {
	_, addr := startRS(t)
	m1 := dialMember(t, addr, 100)
	m2 := dialMember(t, addr, 200)
	m3 := dialMember(t, addr, 300)
	time.Sleep(50 * time.Millisecond)

	// NONE + INCLUDE(300): only m3 receives.
	if err := m1.SendUpdate(testUpdate(t, 100, "10.2.0.0/16", "0:6695 6695:300")); err != nil {
		t.Fatal(err)
	}
	got := recvUpdate(t, m3)
	if got.NLRI[0] != bgp.MustPrefix("10.2.0.0/16") {
		t.Fatalf("m3 got %v", got.NLRI)
	}
	expectSilence(t, m2, 300*time.Millisecond)
}

func TestRouteServerWithdrawOnDisconnect(t *testing.T) {
	_, addr := startRS(t)
	m1 := dialMember(t, addr, 100)
	m2 := dialMember(t, addr, 200)
	time.Sleep(50 * time.Millisecond)

	if err := m1.SendUpdate(testUpdate(t, 100, "10.3.0.0/16", "6695:6695")); err != nil {
		t.Fatal(err)
	}
	if got := recvUpdate(t, m2); len(got.NLRI) != 1 {
		t.Fatalf("announce: %+v", got)
	}

	m1.Close()
	got := recvUpdate(t, m2)
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != bgp.MustPrefix("10.3.0.0/16") {
		t.Fatalf("withdraw: %+v", got)
	}
}

func TestRouteServerExplicitWithdraw(t *testing.T) {
	_, addr := startRS(t)
	m1 := dialMember(t, addr, 100)
	m2 := dialMember(t, addr, 200)
	time.Sleep(50 * time.Millisecond)

	if err := m1.SendUpdate(testUpdate(t, 100, "10.4.0.0/16", "6695:6695")); err != nil {
		t.Fatal(err)
	}
	recvUpdate(t, m2)
	if err := m1.SendUpdate(&bgp.Update{Withdrawn: []bgp.Prefix{bgp.MustPrefix("10.4.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	got := recvUpdate(t, m2)
	if len(got.Withdrawn) != 1 {
		t.Fatalf("withdraw not propagated: %+v", got)
	}
}

func TestRouteServerStripCommunities(t *testing.T) {
	rs := NewRouteServer(ixp.StandardScheme(6695), netip.MustParseAddr("172.16.0.1"))
	rs.Config.HoldTime = 5 * time.Second
	rs.StripCommunities = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rs.Serve(ln)
	defer rs.Close()

	m1 := dialMember(t, ln.Addr().String(), 100)
	m2 := dialMember(t, ln.Addr().String(), 200)
	time.Sleep(50 * time.Millisecond)

	if err := m1.SendUpdate(testUpdate(t, 100, "10.5.0.0/16", "6695:6695 0:300")); err != nil {
		t.Fatal(err)
	}
	got := recvUpdate(t, m2)
	if len(got.Attrs.Communities) != 0 {
		t.Fatalf("Netnod-style RS leaked communities: %v", got.Attrs.Communities)
	}
}

func TestKeepalivesSustainSession(t *testing.T) {
	_, addr := startRS(t)
	// Hold time 1s: without keepalives the session would die well
	// within the test window.
	s, err := Dial(addr, Config{LocalASN: 100, RouterID: netip.MustParseAddr("10.0.0.1"), HoldTime: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(1500 * time.Millisecond)
	if err := s.Err(); err != nil {
		t.Fatalf("session died despite keepalives: %v", err)
	}
	if err := s.SendUpdate(testUpdate(t, 100, "10.6.0.0/16", "6695:6695")); err != nil {
		t.Fatalf("session unusable: %v", err)
	}
}

func TestRouteServerReplaysRIBToLateJoiner(t *testing.T) {
	rs, addr := startRS(t)
	m1 := dialMember(t, addr, 100)
	time.Sleep(50 * time.Millisecond)

	// m1 announces two prefixes before anyone else is connected: one
	// open, one excluding the future member 200.
	if err := m1.SendUpdate(testUpdate(t, 100, "10.7.0.0/16", "6695:6695")); err != nil {
		t.Fatal(err)
	}
	if err := m1.SendUpdate(testUpdate(t, 100, "10.8.0.0/16", "6695:6695 0:200")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if rs.Table().Len() != 2 {
		t.Fatalf("RS table has %d prefixes", rs.Table().Len())
	}

	// A late joiner receives only the route whose filter allows it.
	m2 := dialMember(t, addr, 200)
	got := recvUpdate(t, m2)
	if got.NLRI[0] != bgp.MustPrefix("10.7.0.0/16") {
		t.Fatalf("replayed %v", got.NLRI)
	}
	expectSilence(t, m2, 300*time.Millisecond)

	// Member 300 is not excluded and gets both on join.
	m3 := dialMember(t, addr, 300)
	first := recvUpdate(t, m3)
	second := recvUpdate(t, m3)
	seen := map[string]bool{first.NLRI[0].String(): true, second.NLRI[0].String(): true}
	if !seen["10.7.0.0/16"] || !seen["10.8.0.0/16"] {
		t.Fatalf("replayed set: %v", seen)
	}

	// Disconnecting m1 clears the table.
	m1.Close()
	time.Sleep(200 * time.Millisecond)
	if rs.Table().Len() != 0 {
		t.Fatalf("table not cleared: %d", rs.Table().Len())
	}
}
