// Package geo is the MaxMind-GeoLite stand-in: a prefix-to-region
// database used to pick geographically distant validation prefixes
// (§5.1 selects up to six prefixes "as geographically distant from each
// other as possible").
package geo

import (
	"net/netip"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// Database maps prefixes to coarse regions.
type Database struct {
	regions map[bgp.Prefix]ixp.Region
}

// New builds a database from explicit assignments (typically the
// topology's PrefixRegions ground truth — a real deployment would load
// MaxMind instead).
func New(assignments map[bgp.Prefix]ixp.Region) *Database {
	cp := make(map[bgp.Prefix]ixp.Region, len(assignments))
	for p, r := range assignments {
		cp[p] = r
	}
	return &Database{regions: cp}
}

// LookupPrefix returns the region of an exact prefix.
func (d *Database) LookupPrefix(p bgp.Prefix) (ixp.Region, bool) {
	r, ok := d.regions[p]
	return r, ok
}

// LookupAddr finds the region of the most specific prefix containing
// addr.
func (d *Database) LookupAddr(addr netip.Addr) (ixp.Region, bool) {
	best := -1
	var bestRegion ixp.Region
	for p, r := range d.regions {
		if p.Contains(addr) && p.Bits() > best {
			best = p.Bits()
			bestRegion = r
		}
	}
	return bestRegion, best >= 0
}

// Len returns the number of entries.
func (d *Database) Len() int { return len(d.regions) }

// regionDistance is a coarse pairwise distance between regions: 0 for
// identical, 1 within Europe, 2 across continents.
func regionDistance(a, b ixp.Region) int {
	switch {
	case a == b:
		return 0
	case a.IsEurope() && b.IsEurope():
		return 1
	default:
		return 2
	}
}

// SpreadSelect picks up to k prefixes maximizing geographic diversity:
// a greedy farthest-point selection, deterministic for equal inputs.
// Prefixes missing from the database are used last.
func (d *Database) SpreadSelect(prefixes []bgp.Prefix, k int) []bgp.Prefix {
	if k <= 0 || len(prefixes) == 0 {
		return nil
	}
	sorted := append([]bgp.Prefix(nil), prefixes...)
	sort.Slice(sorted, func(i, j int) bool { return bgp.ComparePrefixes(sorted[i], sorted[j]) < 0 })
	if k > len(sorted) {
		k = len(sorted)
	}

	type cand struct {
		p     bgp.Prefix
		r     ixp.Region
		known bool
	}
	cands := make([]cand, 0, len(sorted))
	for _, p := range sorted {
		r, ok := d.regions[p]
		cands = append(cands, cand{p: p, r: r, known: ok})
	}

	chosen := make([]cand, 0, k)
	used := make([]bool, len(cands))
	// Seed with the first known prefix (or the first at all).
	seed := 0
	for i, c := range cands {
		if c.known {
			seed = i
			break
		}
	}
	chosen = append(chosen, cands[seed])
	used[seed] = true

	for len(chosen) < k {
		bestIdx, bestScore := -1, -1
		for i, c := range cands {
			if used[i] {
				continue
			}
			score := 0
			if c.known {
				// Distance to the nearest already-chosen prefix.
				minD := 1 << 30
				for _, ch := range chosen {
					dd := 2
					if ch.known {
						dd = regionDistance(c.r, ch.r)
					}
					if dd < minD {
						minD = dd
					}
				}
				score = minD*10 + 1 // known entries beat unknown at equal spread
			}
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen = append(chosen, cands[bestIdx])
		used[bestIdx] = true
	}

	out := make([]bgp.Prefix, len(chosen))
	for i, c := range chosen {
		out[i] = c.p
	}
	return out
}

// Regions returns the distinct regions present for the given prefixes.
func (d *Database) Regions(prefixes []bgp.Prefix) []ixp.Region {
	seen := make(map[ixp.Region]bool)
	for _, p := range prefixes {
		if r, ok := d.regions[p]; ok {
			seen[r] = true
		}
	}
	out := make([]ixp.Region, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
