package geo

import (
	"net/netip"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

func testDB() *Database {
	return New(map[bgp.Prefix]ixp.Region{
		bgp.MustPrefix("20.0.0.0/22"): ixp.RegionWestEU,
		bgp.MustPrefix("20.0.4.0/22"): ixp.RegionWestEU,
		bgp.MustPrefix("20.0.8.0/22"): ixp.RegionEastEU,
		bgp.MustPrefix("20.1.0.0/22"): ixp.RegionNorthAmerica,
		bgp.MustPrefix("20.1.4.0/22"): ixp.RegionAsiaPacific,
		bgp.MustPrefix("20.2.0.0/16"): ixp.RegionAfrica,
		bgp.MustPrefix("20.2.4.0/22"): ixp.RegionLatinAmerica, // more specific than the /16
	})
}

func TestLookups(t *testing.T) {
	d := testDB()
	if r, ok := d.LookupPrefix(bgp.MustPrefix("20.0.0.0/22")); !ok || r != ixp.RegionWestEU {
		t.Fatalf("LookupPrefix = %v, %v", r, ok)
	}
	if _, ok := d.LookupPrefix(bgp.MustPrefix("99.0.0.0/8")); ok {
		t.Fatal("phantom prefix")
	}
	// Most-specific wins for addresses.
	if r, ok := d.LookupAddr(netip.MustParseAddr("20.2.4.7")); !ok || r != ixp.RegionLatinAmerica {
		t.Fatalf("LookupAddr specific = %v, %v", r, ok)
	}
	if r, ok := d.LookupAddr(netip.MustParseAddr("20.2.99.1")); !ok || r != ixp.RegionAfrica {
		t.Fatalf("LookupAddr general = %v, %v", r, ok)
	}
	if _, ok := d.LookupAddr(netip.MustParseAddr("8.8.8.8")); ok {
		t.Fatal("phantom addr")
	}
	if d.Len() != 7 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestSpreadSelectMaximizesDiversity(t *testing.T) {
	d := testDB()
	prefixes := []bgp.Prefix{
		bgp.MustPrefix("20.0.0.0/22"), // eu-west
		bgp.MustPrefix("20.0.4.0/22"), // eu-west
		bgp.MustPrefix("20.0.8.0/22"), // eu-east
		bgp.MustPrefix("20.1.0.0/22"), // na
		bgp.MustPrefix("20.1.4.0/22"), // apac
	}
	got := d.SpreadSelect(prefixes, 3)
	if len(got) != 3 {
		t.Fatalf("selected %d", len(got))
	}
	regions := d.Regions(got)
	if len(regions) != 3 {
		t.Fatalf("only %d distinct regions in %v", len(regions), got)
	}

	// Selecting more than available returns all, deterministically.
	all1 := d.SpreadSelect(prefixes, 10)
	all2 := d.SpreadSelect(prefixes, 10)
	if len(all1) != len(prefixes) {
		t.Fatalf("selected %d of %d", len(all1), len(prefixes))
	}
	for i := range all1 {
		if all1[i] != all2[i] {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestSpreadSelectEdgeCases(t *testing.T) {
	d := testDB()
	if d.SpreadSelect(nil, 3) != nil {
		t.Fatal("empty input")
	}
	if d.SpreadSelect([]bgp.Prefix{bgp.MustPrefix("20.0.0.0/22")}, 0) != nil {
		t.Fatal("zero k")
	}
	// Unknown prefixes are used only as filler.
	mixed := []bgp.Prefix{
		bgp.MustPrefix("99.0.0.0/22"), // unknown
		bgp.MustPrefix("20.1.0.0/22"), // na
		bgp.MustPrefix("20.1.4.0/22"), // apac
	}
	got := d.SpreadSelect(mixed, 2)
	for _, p := range got {
		if _, ok := d.LookupPrefix(p); !ok {
			t.Fatalf("unknown prefix %v chosen before known ones", p)
		}
	}
}
