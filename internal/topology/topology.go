package topology

import (
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// FeedKind distinguishes how a collector feeder exports to the collector.
type FeedKind int

// Feed kinds: two-thirds of collector peers treat the collector like a
// peer and export only customer routes (§2.3); the rest give full tables.
const (
	FeedFull FeedKind = iota
	FeedCustomerOnly
)

// Feeder is an AS contributing a BGP view to a route collector.
type Feeder struct {
	ASN  bgp.ASN
	Kind FeedKind
}

// LGHost describes a looking glass: the AS operating it and its display
// behaviour (§5.1 distinguishes all-paths from best-path-only LGs).
type LGHost struct {
	ASN      bgp.ASN
	AllPaths bool // false: displays only the active (best) path
}

// Topology is the full generated world: the ground truth every
// measurement and inference result is compared against.
//
// Builder-generated topologies are densely backed: every AS record
// lives in one slab ordered like Order, addressable by the small
// integer ids DenseIndex/ASAt expose, and the ASes map is a view into
// that slab. Hand-assembled topologies (tests) may populate only the
// map, in which case the dense accessors report absence.
type Topology struct {
	ASes  map[bgp.ASN]*AS
	Order []bgp.ASN // all ASNs in deterministic (ascending) order

	recs  []AS              // dense record slab, recs[i].ASN == Order[i]
	index map[bgp.ASN]int32 // ASN -> position in Order

	IXPs []*ixp.Info

	// ExportFilters is the MLP ground truth: per IXP name, per RS
	// member, the member's export policy toward the route server.
	ExportFilters map[string]map[bgp.ASN]ixp.ExportFilter

	// ImportFilters mirrors ExportFilters for the import direction.
	// Per the paper's §4.4 validation, imports are never more
	// restrictive than exports.
	ImportFilters map[string]map[bgp.ASN]ixp.ExportFilter

	// BilateralIXP holds bilateral peering links established across IXP
	// fabrics without the route server; these are invisible to the
	// paper's method by design (§5.8).
	BilateralIXP map[LinkKey][]string // link -> IXP names

	// Feeders are the collector vantage points.
	Feeders []Feeder

	// ValidationLGs are the third-party looking glasses used to
	// validate inferred links (70 in the paper).
	ValidationLGs []LGHost

	// MemberLGs maps IXP name to third-party member LGs that carry a
	// route server feed, used for IXPs without their own LG.
	MemberLGs map[string][]LGHost

	// PrefixRegions records the geographic region each originated
	// prefix serves; the geolocation database is generated from it.
	PrefixRegions map[bgp.Prefix]ixp.Region

	// MemberComms holds, per IXP and RS member, the exact community set
	// the member attaches to its route-server announcements (the wire
	// encoding of ExportFilters, minus omitted defaults).
	MemberComms map[string]map[bgp.ASN]bgp.Communities

	// RemoteMembers records, per IXP name, the members connected
	// remotely through a reseller rather than a local port (the
	// remote-peering scenario's ground truth; nil for worlds without
	// remote peering).
	RemoteMembers map[string][]bgp.ASN
}

// AS returns the AS record for asn, or nil.
func (t *Topology) AS(asn bgp.ASN) *AS { return t.ASes[asn] }

// DenseIndex returns the shared ASN → dense-id map (id == position in
// Order), or nil for hand-assembled topologies. Callers must not
// mutate it.
func (t *Topology) DenseIndex() map[bgp.ASN]int32 { return t.index }

// IndexOf returns the dense id of asn.
func (t *Topology) IndexOf(asn bgp.ASN) (int32, bool) {
	i, ok := t.index[asn]
	return i, ok
}

// ASAt returns the AS record at dense id i (position in Order). Only
// valid on builder-generated topologies.
func (t *Topology) ASAt(i int32) *AS { return &t.recs[i] }

// IXPByName returns the IXP with the given name, or nil.
func (t *Topology) IXPByName(name string) *ixp.Info {
	for _, x := range t.IXPs {
		if x.Name == name {
			return x
		}
	}
	return nil
}

// ExportFilter returns the ground-truth export filter of member at the
// named IXP. The boolean is false if the member is not an RS member
// there.
func (t *Topology) ExportFilter(ixpName string, member bgp.ASN) (ixp.ExportFilter, bool) {
	m, ok := t.ExportFilters[ixpName]
	if !ok {
		return ixp.ExportFilter{}, false
	}
	f, ok := m[member]
	return f, ok
}

// ImportFilter returns the ground-truth import filter.
func (t *Topology) ImportFilter(ixpName string, member bgp.ASN) (ixp.ExportFilter, bool) {
	m, ok := t.ImportFilters[ixpName]
	if !ok {
		return ixp.ExportFilter{}, false
	}
	f, ok := m[member]
	return f, ok
}

// RouteFlows reports whether routes announced by from reach to over the
// named route server: from's export filter allows to AND to's import
// filter accepts from.
func (t *Topology) RouteFlows(ixpName string, from, to bgp.ASN) bool {
	if from == to {
		return false
	}
	ef, ok := t.ExportFilter(ixpName, from)
	if !ok {
		return false
	}
	imf, ok := t.ImportFilter(ixpName, to)
	if !ok {
		return false
	}
	return ef.Allows(to) && imf.Allows(from)
}

// GroundTruthMLPLinks returns the set of true route-server peering
// links at the named IXP: pairs with route flow in at least one
// direction. Links where flow exists in only one direction are the
// asymmetric peerings the paper's reciprocity assumption knowingly
// misses.
func (t *Topology) GroundTruthMLPLinks(ixpName string) map[LinkKey]bool {
	x := t.IXPByName(ixpName)
	if x == nil {
		return nil
	}
	links := make(map[LinkKey]bool)
	members := x.SortedRSMembers()
	for i, a := range members {
		for _, b := range members[i+1:] {
			if t.RouteFlows(ixpName, a, b) || t.RouteFlows(ixpName, b, a) {
				links[MakeLinkKey(a, b)] = true
			}
		}
	}
	return links
}

// GroundTruthReciprocalLinks returns only the symmetric subset: pairs
// where routes flow in both directions. This is what the inference
// algorithm can recover at best.
func (t *Topology) GroundTruthReciprocalLinks(ixpName string) map[LinkKey]bool {
	x := t.IXPByName(ixpName)
	if x == nil {
		return nil
	}
	links := make(map[LinkKey]bool)
	members := x.SortedRSMembers()
	for i, a := range members {
		for _, b := range members[i+1:] {
			if t.RouteFlows(ixpName, a, b) && t.RouteFlows(ixpName, b, a) {
				links[MakeLinkKey(a, b)] = true
			}
		}
	}
	return links
}

// AllGroundTruthMLPLinks unions GroundTruthMLPLinks over all IXPs.
func (t *Topology) AllGroundTruthMLPLinks() map[LinkKey]bool {
	links := make(map[LinkKey]bool)
	for _, x := range t.IXPs {
		for k := range t.GroundTruthMLPLinks(x.Name) {
			links[k] = true
		}
	}
	return links
}

// CustomerCone returns the set of ASNs in asn's customer cone: asn
// itself plus everything reachable by repeatedly following customer
// edges (the definition of [32] used in §5.5).
func (t *Topology) CustomerCone(asn bgp.ASN) map[bgp.ASN]bool {
	cone := make(map[bgp.ASN]bool)
	var walk func(a bgp.ASN)
	walk = func(a bgp.ASN) {
		if cone[a] {
			return
		}
		cone[a] = true
		if as := t.ASes[a]; as != nil {
			for _, c := range as.Customers {
				walk(c)
			}
		}
	}
	walk(asn)
	return cone
}

// RelationshipOf returns the ground-truth relationship between a and b
// from a's perspective, and false if they are not adjacent.
func (t *Topology) RelationshipOf(a, b bgp.ASN) (Rel, bool) {
	as := t.ASes[a]
	if as == nil {
		return 0, false
	}
	switch {
	case as.HasProvider(b):
		return RelC2P, true
	case as.HasCustomer(b):
		return RelP2C, true
	case as.HasPeer(b):
		return RelP2P, true
	case containsASN(as.Siblings, b):
		return RelSibling, true
	}
	return 0, false
}

// TransitLinks returns all c2p links in the topology.
func (t *Topology) TransitLinks() []Link {
	var out []Link
	for _, asn := range t.Order {
		as := t.ASes[asn]
		for _, p := range as.Providers {
			out = append(out, Link{A: min2(asn, p), B: max2(asn, p), Rel: RelC2P})
		}
	}
	return dedupLinks(out)
}

// BilateralLinks returns all bilateral p2p links (private interconnects
// and IXP bilateral sessions).
func (t *Topology) BilateralLinks() []Link {
	var out []Link
	for _, asn := range t.Order {
		as := t.ASes[asn]
		for _, p := range as.Peers {
			if asn < p {
				out = append(out, Link{A: asn, B: p, Rel: RelP2P})
			}
		}
	}
	return out
}

// PrefixOwners maps every originated prefix to its origin AS.
func (t *Topology) PrefixOwners() map[bgp.Prefix]bgp.ASN {
	m := make(map[bgp.Prefix]bgp.ASN)
	for _, asn := range t.Order {
		for _, p := range t.ASes[asn].Prefixes {
			m[p] = asn
		}
	}
	return m
}

// Validate performs structural sanity checks on the topology; the
// generator's tests call it, and cmd/topogen refuses to write a world
// that fails it.
func (t *Topology) Validate() error {
	for _, asn := range t.Order {
		as := t.ASes[asn]
		if as == nil {
			return fmt.Errorf("topology: ASN %s in order but missing record", asn)
		}
		for _, p := range as.Providers {
			pp := t.ASes[p]
			if pp == nil {
				return fmt.Errorf("topology: AS%s has unknown provider %s", asn, p)
			}
			if !pp.HasCustomer(asn) {
				return fmt.Errorf("topology: provider edge %s->%s not mirrored", asn, p)
			}
		}
		for _, p := range as.Peers {
			pp := t.ASes[p]
			if pp == nil || !pp.HasPeer(asn) {
				return fmt.Errorf("topology: peer edge %s--%s not mirrored", asn, p)
			}
		}
	}
	for _, x := range t.IXPs {
		for _, m := range x.RSMembers {
			if !x.IsMember(m) {
				return fmt.Errorf("topology: %s RS member %s not an IXP member", x.Name, m)
			}
			ef, ok := t.ExportFilter(x.Name, m)
			if !ok {
				return fmt.Errorf("topology: %s RS member %s missing export filter", x.Name, m)
			}
			imf, ok := t.ImportFilter(x.Name, m)
			if !ok {
				return fmt.Errorf("topology: %s RS member %s missing import filter", x.Name, m)
			}
			// §4.4 invariant: import never more restrictive than export.
			for _, other := range x.RSMembers {
				if other == m {
					continue
				}
				if ef.Allows(other) && !imf.Allows(other) {
					return fmt.Errorf("topology: %s member %s import blocks %s but export allows it",
						x.Name, m, other)
				}
			}
		}
	}
	return nil
}

// Stats summarizes the topology for logging and docs.
type Stats struct {
	ASes, Tier1s, Transits, Stubs int
	TransitLinks, BilateralLinks  int
	IXPs, IXPMembers, RSMembers   int
	Prefixes                      int
}

// Stats computes summary statistics.
func (t *Topology) Stats() Stats {
	s := Stats{ASes: len(t.Order), IXPs: len(t.IXPs)}
	for _, asn := range t.Order {
		as := t.ASes[asn]
		switch as.Tier {
		case Tier1:
			s.Tier1s++
		case Tier2:
			s.Transits++
		default:
			s.Stubs++
		}
		s.Prefixes += len(as.Prefixes)
	}
	s.TransitLinks = len(t.TransitLinks())
	s.BilateralLinks = len(t.BilateralLinks())
	memberSet := make(map[bgp.ASN]bool)
	rsSet := make(map[bgp.ASN]bool)
	for _, x := range t.IXPs {
		for _, m := range x.Members {
			memberSet[m] = true
		}
		for _, m := range x.RSMembers {
			rsSet[m] = true
		}
	}
	s.IXPMembers = len(memberSet)
	s.RSMembers = len(rsSet)
	return s
}

func dedupLinks(in []Link) []Link {
	sort.Slice(in, func(i, j int) bool {
		if in[i].A != in[j].A {
			return in[i].A < in[j].A
		}
		return in[i].B < in[j].B
	})
	out := in[:0]
	for i, l := range in {
		if i == 0 || l.A != in[i-1].A || l.B != in[i-1].B {
			out = append(out, l)
		}
	}
	return out
}

func min2(a, b bgp.ASN) bgp.ASN {
	if a < b {
		return a
	}
	return b
}

func max2(a, b bgp.ASN) bgp.ASN {
	if a > b {
		return a
	}
	return b
}
