package topology

import (
	"fmt"
	"net/netip"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// MemberCommunities returns the exact community set member attaches to
// its announcements toward the named route server: the encoding of its
// ground-truth export filter under the IXP's scheme, with the ALL value
// omitted for operators that rely on the default.
func (t *Topology) MemberCommunities(ixpName string, member bgp.ASN) (bgp.Communities, bool) {
	m, ok := t.MemberComms[ixpName]
	if !ok {
		return nil, false
	}
	cs, ok := m[member]
	return cs, ok
}

// finalizeMemberData encodes every member's filter communities (fixing
// the scheme's 32-bit alias table deterministically) and assigns IXP
// LAN addresses. Called as the last generation stage.
func (b *Builder) finalizeMemberData() error {
	b.MemberComms = make(map[string]map[bgp.ASN]bgp.Communities, len(b.IXPs))
	for i, info := range b.IXPs {
		// LAN 172.(16+i).0.0/16, addresses handed out in member order.
		if i > 200 {
			return fmt.Errorf("topology: too many IXPs for LAN numbering")
		}
		info.MemberAddrs = make(map[bgp.ASN]netip.Addr, len(info.Members))
		info.RSAddr = netip.AddrFrom4([4]byte{172, byte(16 + i), 0, 1})
		for j, m := range info.SortedMembers() {
			hi := byte(1 + (j+2)/250)
			lo := byte((j+2)%250 + 1)
			info.MemberAddrs[m] = netip.AddrFrom4([4]byte{172, byte(16 + i), hi, lo})
		}

		comms := make(map[bgp.ASN]bgp.Communities, len(info.RSMembers))
		scheme := &info.Scheme
		for _, m := range info.SortedRSMembers() {
			f, ok := b.exportFilterOf(info.Name, m)
			if !ok {
				return fmt.Errorf("topology: %s member %s missing filter during finalize", info.Name, m)
			}
			cs, err := f.Communities(scheme)
			if err != nil {
				return fmt.Errorf("topology: encoding %s filter for %s: %w", info.Name, m, err)
			}
			if b.AS(m).OmitsDefaultALL && f.Mode == ixp.ModeAllExcept {
				cs = ixp.OmitDefault(cs, *scheme)
			}
			comms[m] = cs
		}
		b.MemberComms[info.Name] = comms
	}
	return nil
}
