package topology

import (
	"math/rand"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/peeringdb"
)

// openBehaveProb is the probability a member behaves openly at a route
// server (allows ≳90% of members) given its actual policy; the residual
// mass behaves closed (NONE+INCLUDE with a short list). Tuned to the
// means of Fig. 11: 96.7% / 80.4% / 69.2%.
func openBehaveProb(p peeringdb.Policy) float64 {
	switch p {
	case peeringdb.PolicyOpen:
		return 0.97
	case peeringdb.PolicySelective:
		return 0.80
	case peeringdb.PolicyRestrictive:
		return 0.69
	default:
		return 0.90
	}
}

// generateFilters synthesizes every route-server member's export and
// import policy, one IXP per worker-pool task: filter synthesis only
// reads the relationship graph (fixed since the hierarchy stages) and
// writes the per-IXP filter maps in its commit.
func (b *Builder) generateFilters() {
	b.fanOutIXPs("filters", func(rng *rand.Rand, xi int) func() {
		info := b.IXPs[xi]
		exp := make(map[bgp.ASN]ixp.ExportFilter, len(info.RSMembers))
		imp := make(map[bgp.ASN]ixp.ExportFilter, len(info.RSMembers))
		members := info.SortedRSMembers()
		s := b.scratch()
		memberVisited := make([]int32, 0, len(members))
		for _, m := range members {
			if id, ok := b.byASN[m]; ok {
				s.member[id] = true
				memberVisited = append(memberVisited, id)
			}
		}

		for _, m := range members {
			as := b.AS(m)
			var ef ixp.ExportFilter
			if rng.Float64() < openBehaveProb(as.Policy) {
				ef = b.openExportFilter(rng, s, m, members)
			} else {
				ef = b.closedExportFilter(rng, m, members)
			}
			exp[m] = ef
			imp[m] = b.importFromExport(rng, ef)
		}
		clearMarks(s.member, memberVisited)
		b.release(s)
		return func() {
			b.ExportFilters[info.Name] = exp
			b.ImportFilters[info.Name] = imp
		}
	})
}

// openExportFilter builds an ALL+EXCLUDE policy. Exclusions follow the
// paper's observed composition (§5.5): mostly ASes within the member's
// customer cone (one does not need route-server routes toward one's own
// downstream), plus content networks reached over preferred private
// interconnects, plus a little noise. s.member must mark the RS member
// ids of the IXP under construction.
func (b *Builder) openExportFilter(rng *rand.Rand, s *denseScratch, m bgp.ASN, members []bgp.ASN) ixp.ExportFilter {
	as := b.AS(m)
	var excludes []bgp.ASN

	// Customer-cone exclusions: direct customers excluded rarely (the
	// paper found only 12% of EXCLUDEs are provider-blocks-customer),
	// deeper cone members more often. The cone is marked on the dense
	// scratch plane instead of a per-member ASN map.
	if as.Tier != TierStub {
		mid := b.byASN[m]
		coneVisited := b.markCustomerCone(mid, s, s.visited[:0])
		for _, other := range members {
			oid, ok := b.byASN[other]
			if !ok || other == m || !s.marks[oid] {
				continue
			}
			direct := as.HasCustomer(other)
			p := 0.50
			if direct {
				p = 0.15
			}
			if rng.Float64() < p {
				excludes = append(excludes, other)
			}
		}
		clearMarks(s.marks, coneVisited)
		s.visited = coneVisited[:0]
	}

	// Private-interconnect exclusions: members that peer bilaterally
	// with a content network prefer the direct path and repel the RS
	// routes (the Google/Akamai behaviour of §5.5).
	for _, cid := range b.contentIDs {
		c := b.recs[cid].ASN
		if c == m || !s.member[cid] {
			continue
		}
		if as.HasPeer(c) && rng.Float64() < 0.75 {
			excludes = append(excludes, c)
		}
	}

	// Background noise: occasional unexplained exclusions.
	if rng.Float64() < 0.08 && len(members) > 2 {
		other := members[rng.Intn(len(members))]
		if other != m {
			excludes = append(excludes, other)
		}
	}

	return ixp.NewExportFilter(ixp.ModeAllExcept, excludes...)
}

// closedExportFilter builds a NONE+INCLUDE policy with a short include
// list (the bottom cluster of Fig. 11).
func (b *Builder) closedExportFilter(rng *rand.Rand, m bgp.ASN, members []bgp.ASN) ixp.ExportFilter {
	maxInc := len(members) / 12
	if maxInc < 2 {
		maxInc = 2
	}
	n := 1 + rng.Intn(maxInc)
	var includes []bgp.ASN
	seen := map[bgp.ASN]bool{m: true}
	for len(includes) < n && len(seen) < len(members) {
		cand := members[rng.Intn(len(members))]
		if seen[cand] {
			continue
		}
		seen[cand] = true
		// Prefer content networks and same-region members as peering
		// targets for selective networks.
		w := 0.35
		if b.AS(cand).Content {
			w = 0.9
		} else if b.AS(cand).Region == b.AS(m).Region {
			w = 0.6
		}
		if rng.Float64() < w {
			includes = append(includes, cand)
		}
	}
	return ixp.NewExportFilter(ixp.ModeNoneExcept, includes...)
}

// importFromExport derives the member's import filter. Per the §4.4
// measurement, imports are never more restrictive and about half are
// strictly more permissive.
func (b *Builder) importFromExport(rng *rand.Rand, ef ixp.ExportFilter) ixp.ExportFilter {
	relax := rng.Float64() < 0.5
	switch ef.Mode {
	case ixp.ModeAllExcept:
		var keep []bgp.ASN
		for _, p := range ef.PeerList() {
			if relax && rng.Float64() < 0.5 {
				continue // accept routes from an AS we do not send to
			}
			keep = append(keep, p)
		}
		return ixp.NewExportFilter(ixp.ModeAllExcept, keep...)
	default:
		includes := ef.PeerList()
		if relax {
			// A NONE+INCLUDE member that accepts from everyone is
			// modeled as an open import.
			if rng.Float64() < 0.3 {
				return ixp.OpenFilter()
			}
		}
		return ixp.NewExportFilter(ixp.ModeNoneExcept, includes...)
	}
}

// addBilateralIXPPeering creates bilateral sessions across the IXP
// fabrics: the links the paper's method cannot see (§5.8). Non-RS
// members rely on them entirely; some RS members hold them in parallel.
// Pair selection is pure per-IXP compute; the Peer-set and link-map
// mutations land in the ordered commits.
func (b *Builder) addBilateralIXPPeering() {
	b.fanOutIXPs("bilateral-ixp", func(rng *rand.Rand, xi int) func() {
		info := b.IXPs[xi]
		s := b.scratch()
		rsSet := s.member
		rsVisited := make([]int32, 0, len(info.RSMembers))
		for _, m := range info.RSMembers {
			if id, ok := b.byASN[m]; ok {
				rsSet[id] = true
				rsVisited = append(rsVisited, id)
			}
		}
		var nonRS []bgp.ASN
		for _, m := range info.Members {
			if id, ok := b.byASN[m]; ok && !rsSet[id] {
				nonRS = append(nonRS, m)
			}
		}
		clearMarks(rsSet, rsVisited)
		b.release(s)
		sort.Slice(nonRS, func(i, j int) bool { return nonRS[i] < nonRS[j] })

		var pairs [][2]bgp.ASN
		addBilateral := func(x, y bgp.ASN) {
			// A bilateral session never shadows an existing transit
			// relationship: a customer buys reachability from its
			// provider and does not also peer with it on the fabric.
			if xs := b.AS(x); xs.HasProvider(y) || xs.HasCustomer(y) {
				return
			}
			pairs = append(pairs, [2]bgp.ASN{x, y})
		}

		// Bilateral-only members peer selectively with each other
		// (density well below the multilateral 80-95%, per §5.4).
		for i, x := range nonRS {
			for _, y := range nonRS[i+1:] {
				if rng.Float64() < 0.30 {
					addBilateral(x, y)
				}
			}
		}
		// ... and with a slice of the RS members.
		for _, x := range nonRS {
			for _, y := range info.RSMembers {
				if rng.Float64() < 0.10 {
					addBilateral(x, y)
				}
			}
		}
		// A few RS member pairs also hold parallel bilateral sessions;
		// combined with PrefersBilateral routers these hide RS paths
		// from best-path looking glasses (Fig. 8).
		members := info.SortedRSMembers()
		for i := 0; i < len(members)/4; i++ {
			x := members[rng.Intn(len(members))]
			y := members[rng.Intn(len(members))]
			if x != y {
				addBilateral(x, y)
			}
		}

		return func() {
			for _, p := range pairs {
				b.Peer(p[0], p[1])
				key := MakeLinkKey(p[0], p[1])
				b.BilateralIXP[key] = append(b.BilateralIXP[key], info.Name)
			}
		}
	})
}

// pickFeeders selects the collector vantage points.
func (b *Builder) pickFeeders() {
	seen := make(map[bgp.ASN]bool)
	addFeeder := func(asn bgp.ASN, kind FeedKind) {
		if seen[asn] {
			return
		}
		seen[asn] = true
		b.Feeders = append(b.Feeders, Feeder{ASN: asn, Kind: kind})
	}

	// Per-IXP RS feeders: RS members (transit preferred) contributing
	// full feeds. Their import openness is throttled to the profile's
	// PassiveOpenness, which is what bounds passive coverage (Table 2's
	// "Pasv" column).
	coverage := make(map[string][]bgp.ASN) // per IXP: members visible passively
	for _, prof := range b.Cfg.Profiles {
		info := b.IXPByName(prof.Name)
		if info == nil {
			continue
		}
		members := info.SortedRSMembers()
		for _, m := range members {
			if b.rng.Float64() < prof.PassiveOpenness {
				coverage[prof.Name] = append(coverage[prof.Name], m)
			}
		}
		if prof.RSFeeders == 0 {
			continue
		}
		// Prefer transit members: they are the networks that actually
		// feed Route Views / RIS.
		var cands []bgp.ASN
		for _, m := range members {
			if b.AS(m).Tier == Tier2 && !b.AS(m).Content {
				cands = append(cands, m)
			}
		}
		if len(cands) == 0 {
			cands = members
		}
		b.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		n := prof.RSFeeders
		if n > len(cands) {
			n = len(cands)
		}
		for i := 0; i < n; i++ {
			m := cands[i]
			b.AS(m).StripsCommunities = false
			addFeeder(m, FeedFull)
		}
	}

	// Every full-feed feeder's view of every route server it sits on is
	// capped by that IXP's coverage list — including feeders designated
	// for another IXP, which would otherwise leak their open local view
	// into the archives.
	throttleAll := func() {
		for _, f := range b.Feeders {
			if f.Kind != FeedFull {
				continue
			}
			for _, prof := range b.Cfg.Profiles {
				info := b.IXPByName(prof.Name)
				if info == nil || !info.IsRSMember(f.ASN) {
					continue
				}
				if prof.PassiveOpenness >= 0.95 {
					continue
				}
				b.throttleFeederImport(info, f.ASN, coverage[prof.Name])
			}
		}
	}
	defer throttleAll()

	// Background feeders building out the public view; two-thirds are
	// peer-style (customer routes only), per §2.3. Feeders that are RS
	// members themselves always peer with the collector: otherwise they
	// would leak their full route-server view and void the per-IXP
	// passive coverage limits of Table 2.
	rsMemberAnywhere := make(map[bgp.ASN]bool)
	for _, info := range b.IXPs {
		for _, m := range info.RSMembers {
			rsMemberAnywhere[m] = true
		}
	}
	pool := append(append([]bgp.ASN(nil), b.tier1...), b.tier2...)
	b.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	added := 0
	for _, asn := range pool {
		if added >= b.Cfg.ExtraFeeders {
			break
		}
		if seen[asn] {
			continue
		}
		kind := FeedCustomerOnly
		if !rsMemberAnywhere[asn] && b.rng.Float64() < 0.25 {
			kind = FeedFull
		}
		addFeeder(asn, kind)
		added++
	}
	sort.Slice(b.Feeders, func(i, j int) bool { return b.Feeders[i].ASN < b.Feeders[j].ASN })
}

// throttleFeederImport replaces the feeder's import (and export, to
// respect the §4.4 invariant) with a NONE+INCLUDE pair sized to the
// coverage list.
func (b *Builder) throttleFeederImport(info *ixp.Info, feeder bgp.ASN, coverage []bgp.ASN) {
	var inc []bgp.ASN
	for _, m := range coverage {
		if m != feeder {
			inc = append(inc, m)
		}
	}
	impF := ixp.NewExportFilter(ixp.ModeNoneExcept, inc...)
	// Export ⊆ import: drop ~20% from the export list.
	var expList []bgp.ASN
	for _, m := range inc {
		if b.rng.Float64() < 0.8 {
			expList = append(expList, m)
		}
	}
	b.ImportFilters[info.Name][feeder] = impF
	b.ExportFilters[info.Name][feeder] = ixp.NewExportFilter(ixp.ModeNoneExcept, expList...)
}

// pickLookingGlasses selects member LGs per IXP (active data sources)
// and the validation LG population (§5.1).
func (b *Builder) pickLookingGlasses() {
	usedLG := make(map[bgp.ASN]bool)

	// Member LGs: RS members whose LG exposes the RS feed; used for
	// active collection at IXPs without their own LG.
	for _, prof := range b.Cfg.Profiles {
		info := b.IXPByName(prof.Name)
		if info == nil {
			continue
		}
		members := info.SortedRSMembers()
		b.rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		n := prof.MemberLGs
		for _, m := range members {
			if n == 0 {
				break
			}
			if usedLG[m] {
				continue
			}
			usedLG[m] = true
			b.MemberLGs[prof.Name] = append(b.MemberLGs[prof.Name],
				LGHost{ASN: m, AllPaths: b.rng.Float64() < 0.85})
			n--
		}
	}

	// Validation LGs: RS members or customers of RS members. Most
	// public LGs belong to the networks themselves, so members dominate
	// the pool; a quarter are hosted by member customers.
	var memberPool, customerPool []bgp.ASN
	seen := make(map[bgp.ASN]bool)
	for _, info := range b.IXPs {
		for _, m := range info.RSMembers {
			if !seen[m] {
				seen[m] = true
				memberPool = append(memberPool, m)
			}
			for _, c := range b.AS(m).Customers {
				if !seen[c] {
					seen[c] = true
					customerPool = append(customerPool, c)
				}
			}
		}
	}
	sort.Slice(memberPool, func(i, j int) bool { return memberPool[i] < memberPool[j] })
	sort.Slice(customerPool, func(i, j int) bool { return customerPool[i] < customerPool[j] })
	b.rng.Shuffle(len(memberPool), func(i, j int) { memberPool[i], memberPool[j] = memberPool[j], memberPool[i] })
	b.rng.Shuffle(len(customerPool), func(i, j int) { customerPool[i], customerPool[j] = customerPool[j], customerPool[i] })
	take := func(pool []bgp.ASN, n int) {
		for _, asn := range pool {
			if n == 0 || len(b.ValidationLGs) >= b.Cfg.ValidationLGs {
				return
			}
			if usedLG[asn] {
				continue
			}
			usedLG[asn] = true
			host := LGHost{ASN: asn, AllPaths: b.rng.Float64() >= b.Cfg.BestPathLGFrac}
			if b.rng.Float64() < b.Cfg.PrefersBilateralFrac {
				b.AS(asn).PrefersBilateral = true
			}
			b.ValidationLGs = append(b.ValidationLGs, host)
			n--
		}
	}
	take(memberPool, b.Cfg.ValidationLGs*3/4)
	take(customerPool, b.Cfg.ValidationLGs)
	take(memberPool, b.Cfg.ValidationLGs) // top up if customers ran out
}
