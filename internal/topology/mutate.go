package topology

import (
	"fmt"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// Mutation helpers used by the route-churn dynamics engine
// (internal/churn): they evolve a generated world in place — bilateral
// session flaps, route-server membership and filter churn, prefix-origin
// moves — while preserving every structural invariant Validate checks.
// None of them add or remove ASes, so dense ids and Order stay stable
// and a propagation engine built over the topology can patch itself
// incrementally instead of being rebuilt.

// AddPeerLink establishes a bilateral p2p session between a and b,
// mirrored on both AS records. Adding an existing link is a no-op.
func (t *Topology) AddPeerLink(a, b bgp.ASN) error {
	if a == b {
		return fmt.Errorf("topology: self peering %s", a)
	}
	asA, asB := t.ASes[a], t.ASes[b]
	if asA == nil || asB == nil {
		return fmt.Errorf("topology: peer link %s--%s references unknown AS", a, b)
	}
	asA.Peers = insertASN(asA.Peers, b)
	asB.Peers = insertASN(asB.Peers, a)
	return nil
}

// RemovePeerLink tears down the bilateral session between a and b (and
// any record of it as an IXP bilateral). Removing a non-existent link is
// a no-op.
func (t *Topology) RemovePeerLink(a, b bgp.ASN) error {
	asA, asB := t.ASes[a], t.ASes[b]
	if asA == nil || asB == nil {
		return fmt.Errorf("topology: peer link %s--%s references unknown AS", a, b)
	}
	asA.Peers = removeASN(asA.Peers, b)
	asB.Peers = removeASN(asB.Peers, a)
	if t.BilateralIXP != nil {
		delete(t.BilateralIXP, MakeLinkKey(a, b))
	}
	return nil
}

// JoinRouteServer connects member (which must already be present at the
// IXP) to the route server with the given policies. The §4.4 invariant —
// imports never more restrictive than exports — is checked here so churn
// can never produce a world Validate rejects.
func (t *Topology) JoinRouteServer(ixpName string, member bgp.ASN, export, imp ixp.ExportFilter, comms bgp.Communities) error {
	info := t.IXPByName(ixpName)
	if info == nil {
		return fmt.Errorf("topology: unknown IXP %s", ixpName)
	}
	if !info.IsMember(member) {
		return fmt.Errorf("topology: %s is not present at %s", member, ixpName)
	}
	if info.IsRSMember(member) {
		return fmt.Errorf("topology: %s already an RS member at %s", member, ixpName)
	}
	for _, other := range info.RSMembers {
		if export.Allows(other) && !imp.Allows(other) {
			return fmt.Errorf("topology: %s joining %s: import blocks %s but export allows it",
				member, ixpName, other)
		}
	}
	info.RSMembers = append(info.RSMembers, member)
	t.setRSPolicy(ixpName, member, export, imp, comms)
	return nil
}

// LeaveRouteServer disconnects member from the route server, dropping
// its filters and community encoding. The member stays present at the
// IXP (its port is still lit; only the RS sessions are gone).
func (t *Topology) LeaveRouteServer(ixpName string, member bgp.ASN) error {
	info := t.IXPByName(ixpName)
	if info == nil {
		return fmt.Errorf("topology: unknown IXP %s", ixpName)
	}
	if !info.IsRSMember(member) {
		return fmt.Errorf("topology: %s is not an RS member at %s", member, ixpName)
	}
	out := info.RSMembers[:0]
	for _, m := range info.RSMembers {
		if m != member {
			out = append(out, m)
		}
	}
	info.RSMembers = out
	if m := t.ExportFilters[ixpName]; m != nil {
		delete(m, member)
	}
	if m := t.ImportFilters[ixpName]; m != nil {
		delete(m, member)
	}
	if m := t.MemberComms[ixpName]; m != nil {
		delete(m, member)
	}
	return nil
}

// SetRSFilters replaces an existing RS member's export/import policy and
// the community encoding of it, enforcing the §4.4 invariant.
func (t *Topology) SetRSFilters(ixpName string, member bgp.ASN, export, imp ixp.ExportFilter, comms bgp.Communities) error {
	info := t.IXPByName(ixpName)
	if info == nil {
		return fmt.Errorf("topology: unknown IXP %s", ixpName)
	}
	if !info.IsRSMember(member) {
		return fmt.Errorf("topology: %s is not an RS member at %s", member, ixpName)
	}
	for _, other := range info.RSMembers {
		if other != member && export.Allows(other) && !imp.Allows(other) {
			return fmt.Errorf("topology: %s at %s: import blocks %s but export allows it",
				member, ixpName, other)
		}
	}
	t.setRSPolicy(ixpName, member, export, imp, comms)
	return nil
}

func (t *Topology) setRSPolicy(ixpName string, member bgp.ASN, export, imp ixp.ExportFilter, comms bgp.Communities) {
	if t.ExportFilters == nil {
		t.ExportFilters = make(map[string]map[bgp.ASN]ixp.ExportFilter)
	}
	if t.ExportFilters[ixpName] == nil {
		t.ExportFilters[ixpName] = make(map[bgp.ASN]ixp.ExportFilter)
	}
	t.ExportFilters[ixpName][member] = export
	if t.ImportFilters == nil {
		t.ImportFilters = make(map[string]map[bgp.ASN]ixp.ExportFilter)
	}
	if t.ImportFilters[ixpName] == nil {
		t.ImportFilters[ixpName] = make(map[bgp.ASN]ixp.ExportFilter)
	}
	t.ImportFilters[ixpName][member] = imp
	if t.MemberComms == nil {
		t.MemberComms = make(map[string]map[bgp.ASN]bgp.Communities)
	}
	if t.MemberComms[ixpName] == nil {
		t.MemberComms[ixpName] = make(map[bgp.ASN]bgp.Communities)
	}
	t.MemberComms[ixpName][member] = comms
}

// MovePrefix re-homes an originated prefix from one AS to another (the
// prefix-ownership churn of provider switches and acquisitions). The
// prefix's geographic region is unchanged: the address block serves the
// same users from a new origin.
func (t *Topology) MovePrefix(p bgp.Prefix, from, to bgp.ASN) error {
	if from == to {
		return fmt.Errorf("topology: prefix move %s: identical origin %s", p, from)
	}
	src, dst := t.ASes[from], t.ASes[to]
	if src == nil || dst == nil {
		return fmt.Errorf("topology: prefix move %s: unknown AS", p)
	}
	idx := -1
	for i, q := range src.Prefixes {
		if q == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("topology: %s does not originate %s", from, p)
	}
	src.Prefixes = append(src.Prefixes[:idx], src.Prefixes[idx+1:]...)
	dst.Prefixes = append(dst.Prefixes, p)
	return nil
}

// AllGroundTruthReciprocalLinks unions GroundTruthReciprocalLinks over
// all IXPs: the per-epoch "best recoverable mesh" the churn experiments
// score windowed inference against.
func (t *Topology) AllGroundTruthReciprocalLinks() map[LinkKey]bool {
	links := make(map[LinkKey]bool)
	for _, x := range t.IXPs {
		for k := range t.GroundTruthReciprocalLinks(x.Name) {
			links[k] = true
		}
	}
	return links
}
