package topology

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// Builder is the world under construction: a dense AS-index
// representation (ASN → int32 id, one slice-backed record slab) that
// scenario stages transform. Stages mutate the builder; Finalize
// materializes the immutable Topology every downstream layer consumes.
//
// Record pointers returned by AS/At are transient: they are valid until
// the next Add (the slab may move). Stages that add ASes must re-fetch.
type Builder struct {
	Cfg Config

	rng *rand.Rand

	recs  []AS              // dense AS records; id = allocation order
	byASN map[bgp.ASN]int32 // ASN -> dense id
	Order []bgp.ASN         // every ASN; ascending after the allocation stage

	// Tier pools in allocation order, consumed by the attachment and
	// membership stages.
	tier1   []bgp.ASN
	tier2   []bgp.ASN
	stubs   []bgp.ASN
	content []bgp.ASN

	// World-level state assembled by stages and moved onto the Topology
	// at Finalize. Same semantics as the Topology fields of the same
	// names.
	IXPs          []*ixp.Info
	ExportFilters map[string]map[bgp.ASN]ixp.ExportFilter
	ImportFilters map[string]map[bgp.ASN]ixp.ExportFilter
	BilateralIXP  map[LinkKey][]string
	Feeders       []Feeder
	ValidationLGs []LGHost
	MemberLGs     map[string][]LGHost
	PrefixRegions map[bgp.Prefix]ixp.Region
	MemberComms   map[string]map[bgp.ASN]bgp.Communities
	RemoteMembers map[string][]bgp.ASN

	nextPrefix uint32
}

// NewBuilder returns an empty builder seeded from cfg.
func NewBuilder(cfg Config) *Builder {
	return &Builder{
		Cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		byASN:         make(map[bgp.ASN]int32),
		ExportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
		ImportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
		BilateralIXP:  make(map[LinkKey][]string),
		MemberLGs:     make(map[string][]LGHost),
		PrefixRegions: make(map[bgp.Prefix]ixp.Region),
		nextPrefix:    0x14000000, // 20.0.0.0
	}
}

// RNG returns the main generation stream. Baseline stages share it;
// scenario add-on stages must use StageRNG instead so the baseline
// world is reproduced bit-for-bit regardless of which add-ons run.
func (b *Builder) RNG() *rand.Rand { return b.rng }

// StageRNG derives an independent, deterministic random stream for a
// named add-on stage.
func (b *Builder) StageRNG(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(b.Cfg.Seed ^ int64(h.Sum64())))
}

// Len returns the number of ASes allocated so far.
func (b *Builder) Len() int { return len(b.recs) }

// ID returns the dense id of asn.
func (b *Builder) ID(asn bgp.ASN) (int32, bool) {
	i, ok := b.byASN[asn]
	return i, ok
}

// At returns the record with dense id i. Transient: valid until the
// next Add.
func (b *Builder) At(i int32) *AS { return &b.recs[i] }

// AS returns the record for asn, or nil. Transient: valid until the
// next Add.
func (b *Builder) AS(asn bgp.ASN) *AS {
	i, ok := b.byASN[asn]
	if !ok {
		return nil
	}
	return &b.recs[i]
}

// Add appends a new AS record and returns its dense id.
func (b *Builder) Add(as AS) int32 {
	id := int32(len(b.recs))
	b.recs = append(b.recs, as)
	b.byASN[as.ASN] = id
	b.Order = append(b.Order, as.ASN)
	return id
}

// IXPByName returns the IXP under construction with the given name, or
// nil.
func (b *Builder) IXPByName(name string) *ixp.Info {
	for _, x := range b.IXPs {
		if x.Name == name {
			return x
		}
	}
	return nil
}

// Link records a customer→provider transit edge (both directions).
func (b *Builder) Link(customer, provider bgp.ASN) {
	c, p := b.AS(customer), b.AS(provider)
	c.Providers = insertASN(c.Providers, provider)
	p.Customers = insertASN(p.Customers, customer)
}

// Peer records a bilateral p2p edge (both directions).
func (b *Builder) Peer(x, y bgp.ASN) {
	if x == y {
		return
	}
	a, c := b.AS(x), b.AS(y)
	a.Peers = insertASN(a.Peers, y)
	c.Peers = insertASN(c.Peers, x)
}

// customerCone walks customer edges from asn (asn included), the
// builder-side equivalent of Topology.CustomerCone.
func (b *Builder) customerCone(asn bgp.ASN) map[bgp.ASN]bool {
	cone := make(map[bgp.ASN]bool)
	var walk func(a bgp.ASN)
	walk = func(a bgp.ASN) {
		if cone[a] {
			return
		}
		cone[a] = true
		if as := b.AS(a); as != nil {
			for _, c := range as.Customers {
				walk(c)
			}
		}
	}
	walk(asn)
	return cone
}

// exportFilterOf returns the export filter of member at the named IXP.
func (b *Builder) exportFilterOf(ixpName string, member bgp.ASN) (ixp.ExportFilter, bool) {
	m, ok := b.ExportFilters[ixpName]
	if !ok {
		return ixp.ExportFilter{}, false
	}
	f, ok := m[member]
	return f, ok
}

// usedASNs tracks allocated ASNs including the fixed RS ASNs.
func (b *Builder) usedASNs() map[bgp.ASN]bool {
	used := make(map[bgp.ASN]bool, len(b.recs)+len(b.Cfg.Profiles))
	for i := range b.recs {
		used[b.recs[i].ASN] = true
	}
	for _, p := range b.Cfg.Profiles {
		used[p.RSASN] = true
	}
	return used
}

// allocPrefix hands out the next disjoint prefix block and records its
// serving region.
func (b *Builder) allocPrefix(bits int, region ixp.Region) bgp.Prefix {
	addr := netip.AddrFrom4([4]byte{
		byte(b.nextPrefix >> 24), byte(b.nextPrefix >> 16),
		byte(b.nextPrefix >> 8), byte(b.nextPrefix),
	})
	b.nextPrefix += 1024 // always step a /22 block to keep prefixes disjoint
	p := bgp.PrefixFrom(addr, bits)
	b.PrefixRegions[p] = region
	return p
}

// weightedSample draws k distinct items from pool proportionally to
// weights, consuming the given random stream.
func weightedSample(rng *rand.Rand, pool []bgp.ASN, weights []float64, k int) []bgp.ASN {
	if k > len(pool) {
		k = len(pool)
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	w := append([]float64(nil), weights...)
	total := 0.0
	for _, v := range w {
		total += v
	}
	out := make([]bgp.ASN, 0, k)
	for len(out) < k && total > 1e-12 {
		x := rng.Float64() * total
		for j, i := range idx {
			x -= w[j]
			if x <= 0 && w[j] > 0 {
				out = append(out, pool[i])
				total -= w[j]
				// Swap-remove.
				last := len(idx) - 1
				idx[j], idx[last] = idx[last], idx[j]
				w[j], w[last] = w[last], w[j]
				idx = idx[:last]
				w = w[:last]
				break
			}
		}
	}
	return out
}

// Finalize materializes the Topology: the record slab is re-packed in
// ascending-ASN order so that dense id == position in Order, the map
// view is built over it, and the world is validated.
func (b *Builder) Finalize() (*Topology, error) {
	order := append([]bgp.ASN(nil), b.Order...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	recs := make([]AS, len(order))
	index := make(map[bgp.ASN]int32, len(order))
	for i, asn := range order {
		id, ok := b.byASN[asn]
		if !ok {
			return nil, fmt.Errorf("topology: ASN %s in order but never allocated", asn)
		}
		recs[i] = b.recs[id]
		index[asn] = int32(i)
	}
	t := &Topology{
		Order:         order,
		recs:          recs,
		index:         index,
		ASes:          make(map[bgp.ASN]*AS, len(recs)),
		IXPs:          b.IXPs,
		ExportFilters: b.ExportFilters,
		ImportFilters: b.ImportFilters,
		BilateralIXP:  b.BilateralIXP,
		Feeders:       b.Feeders,
		ValidationLGs: b.ValidationLGs,
		MemberLGs:     b.MemberLGs,
		PrefixRegions: b.PrefixRegions,
		MemberComms:   b.MemberComms,
		RemoteMembers: b.RemoteMembers,
	}
	for i := range recs {
		t.ASes[recs[i].ASN] = &recs[i]
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
