package topology

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// Builder is the world under construction: a dense AS-index
// representation (ASN → int32 id, one slice-backed record slab) that
// scenario stages transform. Stages mutate the builder; Finalize
// materializes the immutable Topology every downstream layer consumes.
//
// Record pointers returned by AS/At are transient: they are valid until
// the next Add (the slab may move). Stages that add ASes must re-fetch.
type Builder struct {
	Cfg Config

	rng *rand.Rand

	recs     []AS              // dense AS records; id = allocation order
	byASN    map[bgp.ASN]int32 // ASN -> dense id
	Order    []bgp.ASN         // every ASN; ascending after the allocation stage
	orderIDs []int32           // dense ids in Order (ascending-ASN) order

	// Tier pools in allocation order, consumed by the attachment and
	// membership stages, with their dense-id mirrors (same order).
	tier1   []bgp.ASN
	tier2   []bgp.ASN
	stubs   []bgp.ASN
	content []bgp.ASN

	tier1IDs   []int32
	tier2IDs   []int32
	stubIDs    []int32
	contentIDs []int32

	// scratchPool hands out per-worker dense working memory to the
	// parallel per-IXP stages (see parallel.go).
	scratchPool sync.Pool

	// World-level state assembled by stages and moved onto the Topology
	// at Finalize. Same semantics as the Topology fields of the same
	// names.
	IXPs          []*ixp.Info
	ExportFilters map[string]map[bgp.ASN]ixp.ExportFilter
	ImportFilters map[string]map[bgp.ASN]ixp.ExportFilter
	BilateralIXP  map[LinkKey][]string
	Feeders       []Feeder
	ValidationLGs []LGHost
	MemberLGs     map[string][]LGHost
	PrefixRegions map[bgp.Prefix]ixp.Region
	MemberComms   map[string]map[bgp.ASN]bgp.Communities
	RemoteMembers map[string][]bgp.ASN

	nextPrefix uint32
}

// NewBuilder returns an empty builder seeded from cfg.
func NewBuilder(cfg Config) *Builder {
	b := &Builder{
		Cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		byASN:         make(map[bgp.ASN]int32),
		ExportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
		ImportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
		BilateralIXP:  make(map[LinkKey][]string),
		MemberLGs:     make(map[string][]LGHost),
		PrefixRegions: make(map[bgp.Prefix]ixp.Region),
		nextPrefix:    0x14000000, // 20.0.0.0
	}
	b.scratchPool.New = func() any { return &denseScratch{} }
	return b
}

// RNG returns the main generation stream. Baseline stages share it;
// scenario add-on stages must use StageRNG instead so the baseline
// world is reproduced bit-for-bit regardless of which add-ons run.
func (b *Builder) RNG() *rand.Rand { return b.rng }

// StageRNG derives an independent, deterministic random stream for a
// named add-on stage.
func (b *Builder) StageRNG(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(b.Cfg.Seed ^ int64(h.Sum64())))
}

// StageIXPRNG derives the deterministic stream for one IXP's slice of a
// per-IXP stage. Keying by (stage, IXP name) makes every IXP's draws
// independent of stage scheduling, which is what lets the per-IXP
// stages run on a worker pool without changing the world.
func (b *Builder) StageIXPRNG(stage, ixpName string) *rand.Rand {
	return b.StageRNG(stage + "\x00" + ixpName)
}

// Len returns the number of ASes allocated so far.
func (b *Builder) Len() int { return len(b.recs) }

// ID returns the dense id of asn.
func (b *Builder) ID(asn bgp.ASN) (int32, bool) {
	i, ok := b.byASN[asn]
	return i, ok
}

// At returns the record with dense id i. Transient: valid until the
// next Add.
func (b *Builder) At(i int32) *AS { return &b.recs[i] }

// AS returns the record for asn, or nil. Transient: valid until the
// next Add.
func (b *Builder) AS(asn bgp.ASN) *AS {
	i, ok := b.byASN[asn]
	if !ok {
		return nil
	}
	return &b.recs[i]
}

// Add appends a new AS record and returns its dense id.
func (b *Builder) Add(as AS) int32 {
	id := int32(len(b.recs))
	b.recs = append(b.recs, as)
	b.byASN[as.ASN] = id
	b.Order = append(b.Order, as.ASN)
	return id
}

// IXPByName returns the IXP under construction with the given name, or
// nil.
func (b *Builder) IXPByName(name string) *ixp.Info {
	for _, x := range b.IXPs {
		if x.Name == name {
			return x
		}
	}
	return nil
}

// Link records a customer→provider transit edge (both directions).
func (b *Builder) Link(customer, provider bgp.ASN) {
	c, p := b.AS(customer), b.AS(provider)
	c.Providers = insertASN(c.Providers, provider)
	p.Customers = insertASN(p.Customers, customer)
}

// Peer records a bilateral p2p edge (both directions).
func (b *Builder) Peer(x, y bgp.ASN) {
	if x == y {
		return
	}
	a, c := b.AS(x), b.AS(y)
	a.Peers = insertASN(a.Peers, y)
	c.Peers = insertASN(c.Peers, x)
}

// exportFilterOf returns the export filter of member at the named IXP.
func (b *Builder) exportFilterOf(ixpName string, member bgp.ASN) (ixp.ExportFilter, bool) {
	m, ok := b.ExportFilters[ixpName]
	if !ok {
		return ixp.ExportFilter{}, false
	}
	f, ok := m[member]
	return f, ok
}

// usedASNs tracks allocated ASNs including the fixed RS ASNs.
func (b *Builder) usedASNs() map[bgp.ASN]bool {
	used := make(map[bgp.ASN]bool, len(b.recs)+len(b.Cfg.Profiles))
	for i := range b.recs {
		used[b.recs[i].ASN] = true
	}
	for _, p := range b.Cfg.Profiles {
		used[p.RSASN] = true
	}
	return used
}

// allocPrefix hands out the next disjoint prefix block and records its
// serving region.
func (b *Builder) allocPrefix(bits int, region ixp.Region) bgp.Prefix {
	addr := netip.AddrFrom4([4]byte{
		byte(b.nextPrefix >> 24), byte(b.nextPrefix >> 16),
		byte(b.nextPrefix >> 8), byte(b.nextPrefix),
	})
	b.nextPrefix += 1024 // always step a /22 block to keep prefixes disjoint
	p := bgp.PrefixFrom(addr, bits)
	b.PrefixRegions[p] = region
	return p
}

// Finalize materializes the Topology: the record slab is re-packed in
// ascending-ASN order so that dense id == position in Order, the map
// view is built over it, and the world is validated.
func (b *Builder) Finalize() (*Topology, error) {
	order := append([]bgp.ASN(nil), b.Order...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	recs := make([]AS, len(order))
	index := make(map[bgp.ASN]int32, len(order))
	for i, asn := range order {
		id, ok := b.byASN[asn]
		if !ok {
			return nil, fmt.Errorf("topology: ASN %s in order but never allocated", asn)
		}
		recs[i] = b.recs[id]
		index[asn] = int32(i)
	}
	t := &Topology{
		Order:         order,
		recs:          recs,
		index:         index,
		ASes:          make(map[bgp.ASN]*AS, len(recs)),
		IXPs:          b.IXPs,
		ExportFilters: b.ExportFilters,
		ImportFilters: b.ImportFilters,
		BilateralIXP:  b.BilateralIXP,
		Feeders:       b.Feeders,
		ValidationLGs: b.ValidationLGs,
		MemberLGs:     b.MemberLGs,
		PrefixRegions: b.PrefixRegions,
		MemberComms:   b.MemberComms,
		RemoteMembers: b.RemoteMembers,
	}
	for i := range recs {
		t.ASes[recs[i].ASN] = &recs[i]
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
