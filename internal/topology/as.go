// Package topology builds the synthetic AS-level Internet the experiments
// run on: a tiered transit hierarchy, bilateral peering, IXPs with route
// servers (sized after Table 2 of the paper), per-member export policies
// (the MLP ground truth), prefix origination, and the vantage points
// (collector feeders, looking glasses) that the measurement pipeline
// observes the system through.
//
// Everything is generated deterministically from a seed, so experiments
// are exactly reproducible.
package topology

import (
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/peeringdb"
)

// Tier classifies an AS's position in the transit hierarchy.
type Tier int

// Tiers.
const (
	Tier1    Tier = 1 // transit-free clique
	Tier2    Tier = 2 // regional / national transit
	TierStub Tier = 3 // no customers of their own (mostly)
)

// AS is one autonomous system with its business relationships and
// behavioural flags.
type AS struct {
	ASN    bgp.ASN
	Name   string
	Tier   Tier
	Region ixp.Region

	// Business relationships, stored as sorted ASN slices.
	Providers []bgp.ASN
	Customers []bgp.ASN
	Peers     []bgp.ASN // bilateral (private or IXP) p2p, NOT route-server MLP
	Siblings  []bgp.ASN

	// Prefixes originated by this AS.
	Prefixes []bgp.Prefix

	// Policy is the network's actual peering inclination; what it
	// self-reports in PeeringDB may differ (see Registered).
	Policy peeringdb.Policy
	// Scope is the network's geographic footprint.
	Scope peeringdb.Scope
	// Registered reports whether the AS has a PeeringDB record at all.
	Registered bool

	// Content marks large content networks (the Google/Akamai analogs
	// of §5.5): attractive peers that many networks reach over private
	// interconnects and therefore block at route servers.
	Content bool

	// StripsCommunities: the AS removes BGP communities when exporting
	// routes, breaking community transitivity beyond this hop.
	StripsCommunities bool

	// PrefersBilateral: assigns higher local preference to bilateral
	// peers than to route-server peers, hiding RS paths from best-path
	// looking glasses (§5.1, Fig. 8).
	PrefersBilateral bool

	// OmitsDefaultALL: the operator relies on the route server's
	// default instead of tagging the ALL community explicitly. For
	// standard-scheme IXPs this leaves only 0:peer EXCLUDE values on
	// the route, the ambiguous case of §4.2 that requires
	// EXCLUDE-combination disambiguation.
	OmitsDefaultALL bool
}

// IsStub reports whether the AS provides transit to nobody.
func (a *AS) IsStub() bool { return len(a.Customers) == 0 }

// CustomerDegree returns the number of direct customers (Fig. 7 metric).
func (a *AS) CustomerDegree() int { return len(a.Customers) }

// Degree returns the total number of relationship edges.
func (a *AS) Degree() int {
	return len(a.Providers) + len(a.Customers) + len(a.Peers) + len(a.Siblings)
}

// HasPeer reports whether b is a bilateral peer of a.
func (a *AS) HasPeer(b bgp.ASN) bool { return containsASN(a.Peers, b) }

// HasProvider reports whether b is a provider of a.
func (a *AS) HasProvider(b bgp.ASN) bool { return containsASN(a.Providers, b) }

// HasCustomer reports whether b is a customer of a.
func (a *AS) HasCustomer(b bgp.ASN) bool { return containsASN(a.Customers, b) }

func containsASN(sorted []bgp.ASN, x bgp.ASN) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	return i < len(sorted) && sorted[i] == x
}

func removeASN(sorted []bgp.ASN, x bgp.ASN) []bgp.ASN {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	if i >= len(sorted) || sorted[i] != x {
		return sorted
	}
	return append(sorted[:i], sorted[i+1:]...)
}

func insertASN(sorted []bgp.ASN, x bgp.ASN) []bgp.ASN {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	if i < len(sorted) && sorted[i] == x {
		return sorted
	}
	sorted = append(sorted, 0)
	copy(sorted[i+1:], sorted[i:])
	sorted[i] = x
	return sorted
}

// Link is an undirected AS adjacency with its relationship type, the
// unit in which the paper counts its results.
type Link struct {
	A, B bgp.ASN // A < B always
	Rel  Rel
}

// Rel is a business relationship type.
type Rel int

// Relationship types.
const (
	RelC2P Rel = iota // A is customer of B
	RelP2C            // A is provider of B
	RelP2P            // bilateral peering
	RelMLP            // multilateral (route server) peering
	RelSibling
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case RelC2P:
		return "c2p"
	case RelP2C:
		return "p2c"
	case RelP2P:
		return "p2p"
	case RelMLP:
		return "mlp"
	case RelSibling:
		return "sibling"
	default:
		return "?"
	}
}

// LinkKey is the canonical unordered AS pair used as a map key when
// assembling link sets across data sources.
type LinkKey struct{ A, B bgp.ASN }

// MakeLinkKey canonicalizes the pair so that A < B.
func MakeLinkKey(a, b bgp.ASN) LinkKey {
	if a > b {
		a, b = b, a
	}
	return LinkKey{A: a, B: b}
}
