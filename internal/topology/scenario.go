package topology

import (
	"fmt"
	"sort"
)

// Stage is one composable world-construction step: a pure transform
// over the Builder's dense AS-index world.
type Stage struct {
	Name  string
	Apply func(*Builder) error
}

// stage adapts an error-free transform.
func stage(name string, f func(*Builder)) Stage {
	return Stage{Name: name, Apply: func(b *Builder) error { f(b); return nil }}
}

// Scenario is a named stage pipeline producing one world shape. The
// baseline scenario reproduces the paper's world; others splice extra
// stages into it (remote peering, hybrid multi-IXP presence,
// probabilistic relationship noise).
type Scenario struct {
	Name        string
	Description string
	Stages      []Stage
}

// Generate runs the scenario's stages over a fresh builder and
// materializes the world.
func (sc *Scenario) Generate(cfg Config) (*Topology, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("topology: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.Profiles == nil {
		cfg.Profiles = PaperIXPProfiles()
	}
	b := NewBuilder(cfg)
	for _, st := range sc.Stages {
		if err := st.Apply(b); err != nil {
			return nil, fmt.Errorf("topology: scenario %s, stage %s: %w", sc.Name, st.Name, err)
		}
	}
	t, err := b.Finalize()
	if err != nil {
		return nil, fmt.Errorf("topology: scenario %s: %w", sc.Name, err)
	}
	return t, nil
}

var scenarios = make(map[string]*Scenario)

// RegisterScenario adds a scenario to the registry. It panics on a
// duplicate name; registration happens at init time.
func RegisterScenario(sc *Scenario) {
	if _, dup := scenarios[sc.Name]; dup {
		panic("topology: duplicate scenario " + sc.Name)
	}
	scenarios[sc.Name] = sc
}

// LookupScenario resolves a scenario name; the empty string means
// baseline.
func LookupScenario(name string) (*Scenario, bool) {
	if name == "" {
		name = "baseline"
	}
	sc, ok := scenarios[name]
	return sc, ok
}

// ScenarioNames lists registered scenarios, sorted.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Scenarios lists registered scenarios, sorted by name.
func Scenarios() []*Scenario {
	var out []*Scenario
	for _, name := range ScenarioNames() {
		out = append(out, scenarios[name])
	}
	return out
}

// baselineStages is the paper-world pipeline. Order matters: membership
// must exist before filters, filters before the feeder throttling, and
// member data is encoded last.
func baselineStages() []Stage {
	return []Stage{
		stage("allocate-ases", (*Builder).allocateASes),
		stage("hierarchy", (*Builder).buildHierarchy),
		stage("siblings", (*Builder).addSiblings),
		stage("private-peering", (*Builder).addPrivatePeering),
		stage("prefixes", (*Builder).assignPrefixes),
		stage("ixps", (*Builder).buildIXPs),
		stage("filters", (*Builder).generateFilters),
		stage("bilateral-ixp", (*Builder).addBilateralIXPPeering),
		stage("feeders", (*Builder).pickFeeders),
		stage("looking-glasses", (*Builder).pickLookingGlasses),
		{Name: "member-data", Apply: (*Builder).finalizeMemberData},
	}
}

// insertAfter returns a copy of stages with extra spliced in directly
// after the named stage. It panics if the anchor is missing (scenario
// definitions are static).
func insertAfter(stages []Stage, after string, extra ...Stage) []Stage {
	for i, st := range stages {
		if st.Name == after {
			out := make([]Stage, 0, len(stages)+len(extra))
			out = append(out, stages[:i+1]...)
			out = append(out, extra...)
			out = append(out, stages[i+1:]...)
			return out
		}
	}
	panic("topology: no stage named " + after)
}

// insertBefore mirrors insertAfter for splicing ahead of the anchor
// (e.g. profile rewrites that must precede AS-pool allocation).
func insertBefore(stages []Stage, before string, extra ...Stage) []Stage {
	for i, st := range stages {
		if st.Name == before {
			out := make([]Stage, 0, len(stages)+len(extra))
			out = append(out, stages[:i]...)
			out = append(out, extra...)
			out = append(out, stages[i:]...)
			return out
		}
	}
	panic("topology: no stage named " + before)
}

func init() {
	RegisterScenario(&Scenario{
		Name:        "baseline",
		Description: "the paper's world: 13 IXPs (Table 2), tiered transit hierarchy, per-member RS filters",
		Stages:      baselineStages(),
	})
}
