package topology

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// worldFingerprint hashes everything the generator decides, so two
// worlds with equal fingerprints are identical for every consumer.
func worldFingerprint(t *Topology) uint64 {
	h := fnv.New64a()
	for _, asn := range t.Order {
		as := t.ASes[asn]
		fmt.Fprintf(h, "%d|%d|%d|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v\n",
			asn, as.Tier, as.Region, as.Providers, as.Customers, as.Peers,
			as.Siblings, as.Prefixes, as.StripsCommunities, as.OmitsDefaultALL,
			as.Policy, as.Scope, as.Registered, as.Content, as.PrefersBilateral)
	}
	for _, x := range t.IXPs {
		fmt.Fprintf(h, "%s|%v|%v\n", x.Name, x.Members, x.RSMembers)
		for _, m := range x.SortedRSMembers() {
			ef, _ := t.ExportFilter(x.Name, m)
			imf, _ := t.ImportFilter(x.Name, m)
			cs, _ := t.MemberCommunities(x.Name, m)
			fmt.Fprintf(h, "%s|%v|%v|%v|%v|%v\n", m, ef.Mode, ef.PeerList(), imf.Mode, imf.PeerList(), cs)
		}
		fmt.Fprintf(h, "%s|%v\n", x.Name, t.RemoteMembers[x.Name])
	}
	fmt.Fprintf(h, "%v|%v|%v|%d\n", t.Feeders, t.ValidationLGs, t.MemberLGs, len(t.BilateralIXP))
	return h.Sum64()
}

func generateScenario(t *testing.T, name string) *Topology {
	t.Helper()
	cfg := TestConfig()
	cfg.Scenario = name
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	return topo
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	want := []string{"baseline", "multi-ixp-hybrid", "pari-noise", "remote-peering", "scaled-world"}
	if len(names) < len(want) {
		t.Fatalf("scenarios = %v", names)
	}
	for _, w := range want {
		if _, ok := LookupScenario(w); !ok {
			t.Errorf("scenario %s not registered", w)
		}
	}
	if sc, ok := LookupScenario(""); !ok || sc.Name != "baseline" {
		t.Fatal("empty scenario name must resolve to baseline")
	}
	cfg := TestConfig()
	cfg.Scenario = "no-such-world"
	if _, err := Generate(cfg); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

// scenarioGolden pins a scenario's complete world at one (seed, scale):
// aggregate shape counts plus the full-world fingerprint covering every
// relationship edge, filter, community set, feeder and LG. The values
// were captured from the per-(stage, IXP)-stream stage pipeline (PR 3's
// parallel restructuring deliberately re-keyed the generator's random
// streams); any drift here means seed reproducibility broke again.
type scenarioGolden struct {
	scenario                     string
	scale                        float64 // 0 = test scale (0.12)
	ases, members, rs            int
	transitLinks, bilateralLinks int
	remote                       int
	fingerprint                  uint64
}

// Test-scale goldens for every registered scenario.
var testScaleGoldens = []scenarioGolden{
	{"baseline", 0, 919, 221, 184, 2188, 720, 0, 0xd3562d0cd50d7d75},
	{"remote-peering", 0, 919, 245, 207, 2251, 882, 67, 0xad8579445caa2c22},
	{"multi-ixp-hybrid", 0, 919, 221, 184, 2188, 1242, 0, 0x60192e4ae605a844},
	{"pari-noise", 0, 919, 221, 184, 2189, 757, 0, 0x237f8137020886f1},
	{"scaled-world", 0, 919, 221, 184, 2188, 881, 0, 0x22df6b67d21ac5ea},
}

// Scale > 1 goldens: scenarios were previously pinned only at test
// scale; these keep the 10-100x path deterministic too. scaled-world at
// Scale 4 exercises the profile expansion (extra synthetic IXPs).
var scaledGoldens = []scenarioGolden{
	{"remote-peering", 2, 9043, 3645, 3229, 23047, 164609, 1154, 0xef9d9fbe9bccb71c},
	{"pari-noise", 2, 9043, 3359, 2944, 22340, 124111, 0, 0xf1dcbbbfe5de2c66},
	{"scaled-world", 4, 10982, 4158, 3669, 26693, 120737, 0, 0x51b13940a62af060},
}

func checkGolden(t *testing.T, topo *Topology, c scenarioGolden) {
	t.Helper()
	st := topo.Stats()
	if st.ASes != c.ases {
		t.Errorf("ASes = %d, want %d", st.ASes, c.ases)
	}
	if st.IXPMembers != c.members {
		t.Errorf("IXP members = %d, want %d", st.IXPMembers, c.members)
	}
	if st.RSMembers != c.rs {
		t.Errorf("RS members = %d, want %d", st.RSMembers, c.rs)
	}
	if st.TransitLinks != c.transitLinks {
		t.Errorf("transit links = %d, want %d", st.TransitLinks, c.transitLinks)
	}
	if st.BilateralLinks != c.bilateralLinks {
		t.Errorf("bilateral links = %d, want %d", st.BilateralLinks, c.bilateralLinks)
	}
	remote := 0
	for _, ms := range topo.RemoteMembers {
		remote += len(ms)
	}
	if remote != c.remote {
		t.Errorf("remote members = %d, want %d", remote, c.remote)
	}
	if fp := worldFingerprint(topo); fp != c.fingerprint {
		t.Errorf("world fingerprint = %#x, want %#x (seed reproducibility broke)", fp, c.fingerprint)
	}
}

func TestScenarioGoldenCounts(t *testing.T) {
	for _, c := range testScaleGoldens {
		t.Run(c.scenario, func(t *testing.T) {
			checkGolden(t, generateScenario(t, c.scenario), c)
		})
	}
}

// TestScenarioScaleMatrix pins the scenario × scale matrix beyond test
// scale: golden shape plus determinism (two builds, identical worlds).
func TestScenarioScaleMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-ms worlds; skipped in -short")
	}
	for _, c := range scaledGoldens {
		t.Run(fmt.Sprintf("%s@%v", c.scenario, c.scale), func(t *testing.T) {
			cfg := TestConfig()
			cfg.Scenario = c.scenario
			cfg.Scale = c.scale
			topo, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, topo, c)
			again, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if worldFingerprint(topo) != worldFingerprint(again) {
				t.Error("same seed produced different worlds at scale")
			}
		})
	}
}

func TestScenarioDeterminism(t *testing.T) {
	baseFP := worldFingerprint(generateScenario(t, "baseline"))
	if baseFP != testScaleGoldens[0].fingerprint {
		t.Errorf("baseline world fingerprint = %#x, want %#x (seed reproducibility broke)",
			baseFP, testScaleGoldens[0].fingerprint)
	}
	for _, name := range ScenarioNames() {
		a := worldFingerprint(generateScenario(t, name))
		b := worldFingerprint(generateScenario(t, name))
		if a != b {
			t.Errorf("scenario %s: same seed produced different worlds (%x vs %x)", name, a, b)
		}
		if name != "baseline" && a == baseFP {
			t.Errorf("scenario %s produced the baseline world verbatim", name)
		}
	}
}

// TestParallelGenerationBitIdentical is the parallel pipeline's
// contract: for every scenario, the world built on a worker pool is
// bit-identical to sequential execution — and both match the pinned
// fingerprint, so parallelism can never silently re-seed the world.
func TestParallelGenerationBitIdentical(t *testing.T) {
	for _, c := range testScaleGoldens {
		t.Run(c.scenario, func(t *testing.T) {
			for _, workers := range []int{1, 3, 8} {
				cfg := TestConfig()
				cfg.Scenario = c.scenario
				cfg.Workers = workers
				topo, err := Generate(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if fp := worldFingerprint(topo); fp != c.fingerprint {
					t.Errorf("workers=%d: fingerprint %#x, want %#x", workers, fp, c.fingerprint)
				}
			}
		})
	}
}

func TestRemotePeeringGroundTruth(t *testing.T) {
	topo := generateScenario(t, "remote-peering")
	if len(topo.RemoteMembers) == 0 {
		t.Fatal("no remote members recorded")
	}
	for name, remotes := range topo.RemoteMembers {
		info := topo.IXPByName(name)
		if info == nil {
			t.Fatalf("remote members for unknown IXP %s", name)
		}
		for _, m := range remotes {
			if !info.IsMember(m) {
				t.Errorf("%s: remote member %s not in member list", name, m)
			}
			as := topo.ASes[m]
			if as == nil {
				t.Fatalf("%s: remote member %s missing from topology", name, m)
			}
			if as.Region == info.Region {
				t.Errorf("%s: remote member %s is local to the IXP region", name, m)
			}
			// Connected through a reseller: some provider is a local
			// transit member of the exchange.
			viaReseller := false
			for _, p := range as.Providers {
				pas := topo.ASes[p]
				if info.IsMember(p) && pas.Region == info.Region && pas.Tier == Tier2 {
					viaReseller = true
					break
				}
			}
			if !viaReseller {
				t.Errorf("%s: remote member %s has no reseller provider at the IXP", name, m)
			}
		}
	}
}

func TestHybridScenarioBoostsPresence(t *testing.T) {
	base := generateScenario(t, "baseline")
	hyb := generateScenario(t, "multi-ixp-hybrid")
	slots := func(topo *Topology) int {
		n := 0
		for _, x := range topo.IXPs {
			n += len(x.Members)
		}
		return n
	}
	if slots(hyb) <= slots(base) {
		t.Fatalf("hybrid membership slots %d not above baseline %d", slots(hyb), slots(base))
	}
	if len(hyb.BilateralLinks()) <= len(base.BilateralLinks()) {
		t.Fatal("hybrid world must add parallel bilateral sessions")
	}
}

// TestScaledWorldGrowsIXPs pins the scaled-world growth axis: Scale
// buys more exchanges (bounded per-IXP membership), never alias-table
// exhaustion.
func TestScaledWorldGrowsIXPs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a Scale-6 world")
	}
	cfg := TestConfig()
	cfg.Scenario = "scaled-world"
	cfg.Scale = 6
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(topo.IXPs), 13+int(cfg.Scale*2); got != want {
		t.Errorf("IXPs = %d, want %d", got, want)
	}
	for _, info := range topo.IXPs {
		if len(info.Members) > scaledMemberCap+scaledMemberCap/4 {
			t.Errorf("%s: %d members exceeds the scaled cap (plus hybrid growth)", info.Name, len(info.Members))
		}
	}
	// Hybrid presence must make multi-IXP membership common.
	presence := map[string]int{}
	for _, info := range topo.IXPs {
		for _, m := range info.Members {
			presence[m.String()]++
		}
	}
	multi := 0
	for _, n := range presence {
		if n > 1 {
			multi++
		}
	}
	if frac := float64(multi) / float64(len(presence)); frac < 0.10 {
		t.Errorf("multi-IXP members = %.2f of pool, want >= 0.10", frac)
	}
}

func TestDenseIndexMatchesOrder(t *testing.T) {
	topo := generateScenario(t, "baseline")
	idx := topo.DenseIndex()
	if idx == nil {
		t.Fatal("builder-generated world must carry a dense index")
	}
	for i, asn := range topo.Order {
		j, ok := topo.IndexOf(asn)
		if !ok || j != int32(i) {
			t.Fatalf("IndexOf(%s) = %d,%v, want %d", asn, j, ok, i)
		}
		if topo.ASAt(j).ASN != asn {
			t.Fatalf("ASAt(%d) = %s, want %s", j, topo.ASAt(j).ASN, asn)
		}
		if topo.ASes[asn] != topo.ASAt(j) {
			t.Fatalf("map view and slab disagree for %s", asn)
		}
	}
}
