package topology

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// worldFingerprint hashes everything the generator decides, so two
// worlds with equal fingerprints are identical for every consumer.
func worldFingerprint(t *Topology) uint64 {
	h := fnv.New64a()
	for _, asn := range t.Order {
		as := t.ASes[asn]
		fmt.Fprintf(h, "%d|%d|%d|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v\n",
			asn, as.Tier, as.Region, as.Providers, as.Customers, as.Peers,
			as.Siblings, as.Prefixes, as.StripsCommunities, as.OmitsDefaultALL,
			as.Policy, as.Scope, as.Registered, as.Content, as.PrefersBilateral)
	}
	for _, x := range t.IXPs {
		fmt.Fprintf(h, "%s|%v|%v\n", x.Name, x.Members, x.RSMembers)
		for _, m := range x.SortedRSMembers() {
			ef, _ := t.ExportFilter(x.Name, m)
			imf, _ := t.ImportFilter(x.Name, m)
			cs, _ := t.MemberCommunities(x.Name, m)
			fmt.Fprintf(h, "%s|%v|%v|%v|%v|%v\n", m, ef.Mode, ef.PeerList(), imf.Mode, imf.PeerList(), cs)
		}
		fmt.Fprintf(h, "%s|%v\n", x.Name, t.RemoteMembers[x.Name])
	}
	fmt.Fprintf(h, "%v|%v|%v|%d\n", t.Feeders, t.ValidationLGs, t.MemberLGs, len(t.BilateralIXP))
	return h.Sum64()
}

func generateScenario(t *testing.T, name string) *Topology {
	t.Helper()
	cfg := TestConfig()
	cfg.Scenario = name
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	return topo
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	want := []string{"baseline", "multi-ixp-hybrid", "pari-noise", "remote-peering"}
	if len(names) < len(want) {
		t.Fatalf("scenarios = %v", names)
	}
	for _, w := range want {
		if _, ok := LookupScenario(w); !ok {
			t.Errorf("scenario %s not registered", w)
		}
	}
	if sc, ok := LookupScenario(""); !ok || sc.Name != "baseline" {
		t.Fatal("empty scenario name must resolve to baseline")
	}
	cfg := TestConfig()
	cfg.Scenario = "no-such-world"
	if _, err := Generate(cfg); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

// TestScenarioGoldenCounts pins the world shape of every scenario at
// the fixed test seed. These are exact: the generator is fully
// deterministic, and any drift here means reproducibility broke.
func TestScenarioGoldenCounts(t *testing.T) {
	cases := []struct {
		scenario                     string
		ases, members, rs            int
		transitLinks, bilateralLinks int
		remote                       int
	}{
		{"baseline", 919, 211, 183, 2188, 727, 0},
		{"remote-peering", 919, 233, 205, 2251, 890, 67},
		{"multi-ixp-hybrid", 919, 211, 183, 2188, 1327, 0},
		{"pari-noise", 919, 219, 189, 2189, 774, 0},
	}
	for _, c := range cases {
		t.Run(c.scenario, func(t *testing.T) {
			topo := generateScenario(t, c.scenario)
			st := topo.Stats()
			if st.ASes != c.ases {
				t.Errorf("ASes = %d, want %d", st.ASes, c.ases)
			}
			if st.IXPMembers != c.members {
				t.Errorf("IXP members = %d, want %d", st.IXPMembers, c.members)
			}
			if st.RSMembers != c.rs {
				t.Errorf("RS members = %d, want %d", st.RSMembers, c.rs)
			}
			if st.TransitLinks != c.transitLinks {
				t.Errorf("transit links = %d, want %d", st.TransitLinks, c.transitLinks)
			}
			if st.BilateralLinks != c.bilateralLinks {
				t.Errorf("bilateral links = %d, want %d", st.BilateralLinks, c.bilateralLinks)
			}
			remote := 0
			for _, ms := range topo.RemoteMembers {
				remote += len(ms)
			}
			if remote != c.remote {
				t.Errorf("remote members = %d, want %d", remote, c.remote)
			}
		})
	}
}

// baselineTestFingerprint pins the complete baseline world at the test
// seed — every relationship edge, filter, community set, feeder and LG.
// It was captured from the pre-refactor map-based generator, which the
// stage pipeline reproduces bit-for-bit; drift here means seed
// reproducibility of the paper world broke (an RNG draw moved), even if
// the aggregate counts above still match.
const baselineTestFingerprint = 0xfc5dc19f7bb1b364

func TestScenarioDeterminism(t *testing.T) {
	baseFP := worldFingerprint(generateScenario(t, "baseline"))
	if baseFP != baselineTestFingerprint {
		t.Errorf("baseline world fingerprint = %#x, want %#x (seed reproducibility broke)",
			baseFP, uint64(baselineTestFingerprint))
	}
	for _, name := range ScenarioNames() {
		a := worldFingerprint(generateScenario(t, name))
		b := worldFingerprint(generateScenario(t, name))
		if a != b {
			t.Errorf("scenario %s: same seed produced different worlds (%x vs %x)", name, a, b)
		}
		if name != "baseline" && a == baseFP {
			t.Errorf("scenario %s produced the baseline world verbatim", name)
		}
	}
}

func TestRemotePeeringGroundTruth(t *testing.T) {
	topo := generateScenario(t, "remote-peering")
	if len(topo.RemoteMembers) == 0 {
		t.Fatal("no remote members recorded")
	}
	for name, remotes := range topo.RemoteMembers {
		info := topo.IXPByName(name)
		if info == nil {
			t.Fatalf("remote members for unknown IXP %s", name)
		}
		for _, m := range remotes {
			if !info.IsMember(m) {
				t.Errorf("%s: remote member %s not in member list", name, m)
			}
			as := topo.ASes[m]
			if as == nil {
				t.Fatalf("%s: remote member %s missing from topology", name, m)
			}
			if as.Region == info.Region {
				t.Errorf("%s: remote member %s is local to the IXP region", name, m)
			}
			// Connected through a reseller: some provider is a local
			// transit member of the exchange.
			viaReseller := false
			for _, p := range as.Providers {
				pas := topo.ASes[p]
				if info.IsMember(p) && pas.Region == info.Region && pas.Tier == Tier2 {
					viaReseller = true
					break
				}
			}
			if !viaReseller {
				t.Errorf("%s: remote member %s has no reseller provider at the IXP", name, m)
			}
		}
	}
}

func TestHybridScenarioBoostsPresence(t *testing.T) {
	base := generateScenario(t, "baseline")
	hyb := generateScenario(t, "multi-ixp-hybrid")
	slots := func(topo *Topology) int {
		n := 0
		for _, x := range topo.IXPs {
			n += len(x.Members)
		}
		return n
	}
	if slots(hyb) <= slots(base) {
		t.Fatalf("hybrid membership slots %d not above baseline %d", slots(hyb), slots(base))
	}
	if len(hyb.BilateralLinks()) <= len(base.BilateralLinks()) {
		t.Fatal("hybrid world must add parallel bilateral sessions")
	}
}

func TestDenseIndexMatchesOrder(t *testing.T) {
	topo := generateScenario(t, "baseline")
	idx := topo.DenseIndex()
	if idx == nil {
		t.Fatal("builder-generated world must carry a dense index")
	}
	for i, asn := range topo.Order {
		j, ok := topo.IndexOf(asn)
		if !ok || j != int32(i) {
			t.Fatalf("IndexOf(%s) = %d,%v, want %d", asn, j, ok, i)
		}
		if topo.ASAt(j).ASN != asn {
			t.Fatalf("ASAt(%d) = %s, want %s", j, topo.ASAt(j).ASN, asn)
		}
		if topo.ASes[asn] != topo.ASAt(j) {
			t.Fatalf("map view and slab disagree for %s", asn)
		}
	}
}
