package topology

import (
	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// SchemeStyle selects the community encoding convention an IXP uses.
type SchemeStyle int

// Scheme styles (§3, Table 1).
const (
	// StyleStandard: DE-CIX-like, RS ASN embedded in most values.
	StyleStandard SchemeStyle = iota
	// StylePrivateRange: ECIX-like, actions encoded in the private ASN
	// range; only ALL reveals the IXP.
	StylePrivateRange
)

// IXPProfile parameterizes one IXP in the generated world. The shipped
// profiles mirror Table 2 of the paper.
type IXPProfile struct {
	Name      string
	RSASN     bgp.ASN
	Region    ixp.Region
	Style     SchemeStyle
	Members   int // "ASes" column of Table 2
	RSMembers int // "RS" column of Table 2

	// HasLG: the IXP runs a public LG with a route server view that
	// prints communities (France-IX's does not, hence false for it).
	HasLG bool

	// PublishesMemberList: RS member list available from the IXP
	// website or an AS-SET (false for LINX).
	PublishesMemberList bool

	// RSFeeders is how many RS members (or customers of RS members)
	// contribute full feeds to public collectors; 0 reproduces IXPs
	// with no passive visibility (SPB-IX, DTEL-IX, BIX.BG).
	RSFeeders int

	// PassiveOpenness approximates how open the RS feeders' import
	// policies are (1.0 = see everything the density allows). Low
	// values reproduce IXPs like MSK-IX whose passive coverage was
	// tiny despite having a feeder.
	PassiveOpenness float64

	// MemberLGs is how many third-party member looking glasses carry a
	// feed from this route server (used when HasLG is false, and for
	// validation).
	MemberLGs int

	// FlatFee drives the peering-density prior used in §5.7.
	FlatFee bool

	// StripsCommunities marks Netnod-style RSes that remove all
	// communities (none of the 13 studied IXPs do; kept for the
	// limitation experiments of §5.8).
	StripsCommunities bool

	// Absolute marks Members/RSMembers as final counts that
	// Config.Scale must not multiply. The scaled-world scenario uses it
	// to grow the number of IXPs with Scale while keeping each
	// exchange's membership realistic (and its 16-bit community alias
	// table satisfiable).
	Absolute bool
}

// PaperIXPProfiles returns the 13 IXPs of Table 2. RS ASNs for DE-CIX
// (6695), MSK-IX (8631), ECIX (9033) and LINX (8714) are the paper's;
// the others are stable synthetic assignments.
func PaperIXPProfiles() []IXPProfile {
	return []IXPProfile{
		{Name: "AMS-IX", RSASN: 6777, Region: ixp.RegionWestEU, Style: StyleStandard,
			Members: 574, RSMembers: 444, HasLG: false, PublishesMemberList: true,
			RSFeeders: 3, PassiveOpenness: 0.78, MemberLGs: 3, FlatFee: true},
		{Name: "DE-CIX", RSASN: 6695, Region: ixp.RegionWestEU, Style: StyleStandard,
			Members: 483, RSMembers: 369, HasLG: true, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.36, MemberLGs: 2, FlatFee: true},
		{Name: "LINX", RSASN: 8714, Region: ixp.RegionWestEU, Style: StyleStandard,
			Members: 457, RSMembers: 230, HasLG: false, PublishesMemberList: false,
			RSFeeders: 2, PassiveOpenness: 0.85, MemberLGs: 2, FlatFee: true},
		{Name: "MSK-IX", RSASN: 8631, Region: ixp.RegionEastEU, Style: StyleStandard,
			Members: 374, RSMembers: 348, HasLG: true, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.08, MemberLGs: 2, FlatFee: false},
		{Name: "PLIX", RSASN: 48850, Region: ixp.RegionEastEU, Style: StyleStandard,
			Members: 222, RSMembers: 211, HasLG: true, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.20, MemberLGs: 1, FlatFee: true},
		{Name: "France-IX", RSASN: 51706, Region: ixp.RegionWestEU, Style: StyleStandard,
			Members: 193, RSMembers: 169, HasLG: false, PublishesMemberList: true,
			RSFeeders: 2, PassiveOpenness: 0.70, MemberLGs: 1, FlatFee: true},
		{Name: "LONAP", RSASN: 8550, Region: ixp.RegionWestEU, Style: StyleStandard,
			Members: 120, RSMembers: 109, HasLG: false, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.32, MemberLGs: 2, FlatFee: true},
		{Name: "ECIX", RSASN: 9033, Region: ixp.RegionWestEU, Style: StylePrivateRange,
			Members: 102, RSMembers: 83, HasLG: true, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.45, MemberLGs: 1, FlatFee: true},
		{Name: "SPB-IX", RSASN: 43690, Region: ixp.RegionEastEU, Style: StyleStandard,
			Members: 89, RSMembers: 78, HasLG: true, PublishesMemberList: true,
			RSFeeders: 0, PassiveOpenness: 0, MemberLGs: 1, FlatFee: false},
		{Name: "DTEL-IX", RSASN: 31210, Region: ixp.RegionEastEU, Style: StyleStandard,
			Members: 74, RSMembers: 71, HasLG: true, PublishesMemberList: true,
			RSFeeders: 0, PassiveOpenness: 0, MemberLGs: 1, FlatFee: true},
		{Name: "TOP-IX", RSASN: 16004, Region: ixp.RegionSouthEU, Style: StyleStandard,
			Members: 71, RSMembers: 52, HasLG: true, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.40, MemberLGs: 1, FlatFee: true},
		{Name: "STHIX", RSASN: 35787, Region: ixp.RegionNorthEU, Style: StyleStandard,
			Members: 69, RSMembers: 42, HasLG: false, PublishesMemberList: true,
			RSFeeders: 1, PassiveOpenness: 0.10, MemberLGs: 1, FlatFee: true},
		{Name: "BIX.BG", RSASN: 57463, Region: ixp.RegionEastEU, Style: StyleStandard,
			Members: 53, RSMembers: 52, HasLG: true, PublishesMemberList: true,
			RSFeeders: 0, PassiveOpenness: 0, MemberLGs: 1, FlatFee: true},
	}
}

// Config parameterizes generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical worlds.
	Seed int64

	// Scenario names the registered world-construction scenario to run;
	// empty means "baseline" (the paper's world). See ScenarioNames.
	Scenario string

	// Scale multiplies IXP membership counts and the AS pool. 1.0 is
	// paper scale (~1,700 distinct IXP members); tests use ~0.15.
	Scale float64

	// NumASes is the total AS pool; 0 derives it from Scale.
	NumASes int

	// NumTier1 is the size of the transit-free clique.
	NumTier1 int

	// TransitFrac is the fraction of non-tier-1 ASes that provide
	// transit (tier 2).
	TransitFrac float64

	// NumContent is the number of large content networks.
	NumContent int

	// Profiles lists the IXPs to instantiate; nil means the paper's 13.
	Profiles []IXPProfile

	// RegisteredFrac is the fraction of IXP members with a PeeringDB
	// record (904/1667 in the paper).
	RegisteredFrac float64

	// StripProb is the per-AS probability of stripping communities on
	// export, limiting passive visibility.
	StripProb float64

	// ValidationLGs is the number of third-party LGs used by the
	// validation engine (70 in the paper).
	ValidationLGs int

	// BestPathLGFrac is the fraction of validation LGs that display
	// only the active path (Fig. 8's triangles).
	BestPathLGFrac float64

	// PrefersBilateralFrac is the fraction of validation-LG ASes whose
	// routers prefer bilateral peers over RS peers (14/70 in §5.1).
	PrefersBilateralFrac float64

	// BilateralExtraFeeders adds non-RS transit feeders to collectors,
	// building out the public view.
	ExtraFeeders int

	// MeanPrefixesStub / MeanPrefixesTransit control prefix counts.
	MeanPrefixesStub, MeanPrefixesTransit int

	// IRRRegistrationFrac is the probability an RS member registers an
	// accurate aut-num/as-set in the IRR (drives LINX-style discovery
	// and §4.4 reciprocity validation).
	IRRRegistrationFrac float64

	// Workers bounds the goroutines running per-IXP generation stages:
	// 0 uses GOMAXPROCS, 1 forces sequential execution. The generated
	// world is bit-identical for every value.
	Workers int
}

// DefaultConfig is full paper scale.
func DefaultConfig() Config {
	return Config{
		Seed:                 20130501,
		Scale:                1.0,
		NumTier1:             12,
		TransitFrac:          0.16,
		NumContent:           12,
		RegisteredFrac:       0.54,
		StripProb:            0.65,
		ValidationLGs:        70,
		BestPathLGFrac:       0.20,
		PrefersBilateralFrac: 0.20,
		ExtraFeeders:         30,
		MeanPrefixesStub:     2,
		MeanPrefixesTransit:  6,
		IRRRegistrationFrac:  0.77,
	}
}

// TestConfig is a small world for unit tests and quick benchmarks.
func TestConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.12
	c.ValidationLGs = 16
	c.ExtraFeeders = 8
	return c
}

// scaled returns n scaled by the config's Scale, minimum 1 (minimum 4
// for membership counts so that filters stay meaningful).
func (c Config) scaled(n int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < 4 {
		v = 4
	}
	return v
}

// memberTarget returns the membership size to build for prof.
func (c Config) memberTarget(prof IXPProfile) int {
	if prof.Absolute {
		if prof.Members < 4 {
			return 4
		}
		return prof.Members
	}
	return c.scaled(prof.Members)
}

// rsMemberTarget returns the route-server membership size for prof.
func (c Config) rsMemberTarget(prof IXPProfile) int {
	if prof.Absolute {
		if prof.RSMembers < 4 {
			return 4
		}
		return prof.RSMembers
	}
	return c.scaled(prof.RSMembers)
}
