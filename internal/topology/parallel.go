package topology

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"mlpeering/internal/ixp"
)

// This file is the parallel per-IXP stage runner. Per-IXP generation
// work (membership sampling, filter synthesis, session wiring) is
// expressed as a pure compute function plus a commit closure:
//
//   - compute receives an independent, deterministic random stream
//     derived from (stage, IXP name) and may only READ builder state
//     that is fixed before the stage starts. It returns a commit.
//   - commits are applied sequentially in IXP order after every compute
//     finished.
//
// Because no compute observes another IXP's mutations and commits run
// in a fixed order, the generated world is bit-identical whether the
// computes run on one goroutine or many — pinned by the scenario
// fingerprint tests.

// workerCount resolves Config.Workers: 0 means GOMAXPROCS, anything
// below one clamps to sequential.
func (b *Builder) workerCount() int {
	w := b.Cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fanOut runs n per-IXP computes on the worker pool and applies their
// commits in index order. name(i) keys the (stage, IXP) random stream,
// so a stage's draws for one IXP do not depend on how many other IXPs
// exist or which worker picked the task up.
func (b *Builder) fanOut(stage string, n int, name func(int) string, compute func(rng *rand.Rand, i int) func()) {
	commits := make([]func(), n)
	workers := b.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			commits[i] = compute(b.StageIXPRNG(stage, name(i)), i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					commits[i] = compute(b.StageIXPRNG(stage, name(i)), i)
				}
			}()
		}
		wg.Wait()
	}
	for _, c := range commits {
		if c != nil {
			c()
		}
	}
}

// fanOutIXPs is fanOut over the already-built b.IXPs.
func (b *Builder) fanOutIXPs(stage string, compute func(rng *rand.Rand, xi int) func()) {
	b.fanOut(stage, len(b.IXPs), func(i int) string { return b.IXPs[i].Name }, compute)
}

// denseScratch is per-worker working memory for dense-id stage
// algorithms: two mark planes over the AS slab and a traversal stack.
// Obtain via Builder.scratch, return via Builder.release; marks must be
// handed back clean (clear via the visited lists the helpers return).
type denseScratch struct {
	marks   []bool // customer-cone plane
	member  []bool // membership plane
	stack   []int32
	visited []int32 // reusable visited-id buffer for cone walks
}

func (b *Builder) scratch() *denseScratch {
	s := b.scratchPool.Get().(*denseScratch)
	n := len(b.recs)
	if cap(s.marks) < n {
		s.marks = make([]bool, n)
		s.member = make([]bool, n)
	}
	s.marks = s.marks[:n]
	s.member = s.member[:n]
	return s
}

func (b *Builder) release(s *denseScratch) { b.scratchPool.Put(s) }

// clearMarks resets the given positions of a mark plane.
func clearMarks(plane []bool, visited []int32) {
	for _, i := range visited {
		plane[i] = false
	}
}

// markCustomerCone marks the dense ids of the customer cone of root
// (root included) in plane and returns the visited ids appended to
// visited, for clearing. The builder-side, allocation-free equivalent
// of Topology.CustomerCone.
func (b *Builder) markCustomerCone(root int32, s *denseScratch, visited []int32) []int32 {
	stack := append(s.stack[:0], root)
	plane := s.marks
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if plane[i] {
			continue
		}
		plane[i] = true
		visited = append(visited, i)
		for _, c := range b.recs[i].Customers {
			if ci, ok := b.byASN[c]; ok && !plane[ci] {
				stack = append(stack, ci)
			}
		}
	}
	s.stack = stack[:0]
	return visited
}

// fenwick is a Fenwick (binary indexed) tree over float64 weights with
// point updates, prefix totals and O(log n) inverse-CDF lookup. It
// replaces the O(k·n) linear re-scans of the weighted samplers, which
// dominated generation at 10-100x scale.
type fenwick struct {
	tree []float64 // 1-based
	mask int       // highest power of two <= n
}

func newFenwick(n int) *fenwick {
	mask := 1
	for mask<<1 <= n {
		mask <<= 1
	}
	return &fenwick{tree: make([]float64, n+1), mask: mask}
}

// build bulk-loads weights in O(n).
func (f *fenwick) build(weights []float64) {
	t := f.tree
	for i := range t {
		t[i] = 0
	}
	for i, w := range weights {
		t[i+1] += w
		if p := i + 1 + (i+1)&-(i+1); p < len(t) {
			t[p] += t[i+1]
		}
	}
}

// Add adds delta at 0-based index i.
func (f *fenwick) Add(i int, delta float64) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += delta
	}
}

// Total returns the sum of all weights.
func (f *fenwick) Total() float64 {
	n := len(f.tree) - 1
	total := 0.0
	for j := n; j > 0; j -= j & -j {
		total += f.tree[j]
	}
	return total
}

// Find returns the smallest 0-based index whose prefix sum (inclusive)
// exceeds x: exactly the item a linear scan subtracting weights until
// x <= 0 would select. x must be in [0, Total()); values at or beyond
// the total clamp to the last index.
func (f *fenwick) Find(x float64) int {
	idx := 0
	n := len(f.tree) - 1
	for bit := f.mask; bit > 0; bit >>= 1 {
		if next := idx + bit; next <= n && f.tree[next] <= x {
			x -= f.tree[next]
			idx = next
		}
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// regionWeight is one row of a regional skew table.
type regionWeight struct {
	r ixp.Region
	w int
}

// pickWeightedRegion draws one region proportionally to the table's
// weights, consuming a single Intn.
func pickWeightedRegion(rng *rand.Rand, dist []regionWeight) ixp.Region {
	total := 0
	for _, rd := range dist {
		total += rd.w
	}
	x := rng.Intn(total)
	for _, rd := range dist {
		if x < rd.w {
			return rd.r
		}
		x -= rd.w
	}
	return ixp.RegionWestEU
}

// weightedSampleIDs draws k distinct items from pool proportionally to
// weights, consuming one rng draw per selection like its linear
// predecessor but selecting through a Fenwick tree: O(n + k log n)
// instead of O(k·n).
func weightedSampleIDs(rng *rand.Rand, pool []int32, weights []float64, k int) []int32 {
	if k > len(pool) {
		k = len(pool)
	}
	f := newFenwick(len(weights))
	f.build(weights)
	w := append([]float64(nil), weights...)
	out := make([]int32, 0, k)
	for len(out) < k {
		total := f.Total()
		if total <= 1e-12 {
			break
		}
		i := f.Find(rng.Float64() * total)
		if w[i] <= 0 {
			break // numeric residue only: no positive weight remains
		}
		out = append(out, pool[i])
		f.Add(i, -w[i])
		w[i] = 0
	}
	return out
}
