package topology

import (
	"math/rand"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/peeringdb"
)

// This file defines the non-baseline world scenarios. Each splices
// extra stages into the baseline pipeline; per-IXP stages draw from
// independent (stage, IXP) streams and run on the worker pool like the
// baseline's, while world-global stages keep a single StageRNG stream —
// so a scenario world is always the baseline world plus the scenario's
// additions, never a perturbation of baseline draws.

func init() {
	RegisterScenario(&Scenario{
		Name: "remote-peering",
		Description: "baseline plus remote IXP members connected through resellers " +
			"(O Peer, Where Art Thou? — Nomikos et al.)",
		Stages: insertAfter(baselineStages(), "ixps",
			stage("remote-members", (*Builder).addRemoteMembers)),
	})
	RegisterScenario(&Scenario{
		Name: "multi-ixp-hybrid",
		Description: "baseline plus boosted multi-IXP presence and parallel " +
			"bilateral sessions next to route-server peerings",
		Stages: insertAfter(
			insertAfter(baselineStages(), "ixps",
				stage("hybrid-presence", (*Builder).addHybridPresence)),
			"bilateral-ixp",
			stage("hybrid-bilateral", (*Builder).addHybridBilateral)),
	})
	RegisterScenario(&Scenario{
		Name: "pari-noise",
		Description: "baseline with a probabilistic relationship mix: some bilateral " +
			"p2p links demoted to transit, plus peering noise (PARI — Feng et al.)",
		Stages: insertAfter(baselineStages(), "private-peering",
			stage("pari-noise", (*Builder).addPARINoise)),
	})
	RegisterScenario(&Scenario{
		Name: "scaled-world",
		Description: "the 10-100x world: Config.Scale grows the number of IXPs " +
			"toward hundreds of exchanges with realistic member counts, plus " +
			"boosted multi-IXP presence (remote-peering-era workloads)",
		Stages: insertAfter(
			insertBefore(baselineStages(), "allocate-ases",
				stage("scaled-ixps", (*Builder).expandIXPProfiles)),
			"ixps",
			stage("hybrid-presence", (*Builder).addHybridPresence)),
	})
}

// --- remote-peering ---------------------------------------------------

// remoteFrac is the fraction of each IXP's membership added as remote
// members; Nomikos et al. found ~20% of members at large IXPs peer
// remotely.
const remoteFrac = 0.20

// addRemoteMembers grows every IXP with out-of-region members connected
// through a reseller: an existing local transit member that sells a
// virtual port plus transit toward the exchange. Remote members join
// the route server like any other member, which is exactly why the
// paper's method cannot tell them apart — the ground truth lands in
// Topology.RemoteMembers. Selection is per-IXP compute; membership,
// transit link and registration mutations land in the ordered commits.
func (b *Builder) addRemoteMembers() {
	b.RemoteMembers = make(map[string][]bgp.ASN, len(b.IXPs))
	b.fanOutIXPs("remote-members", func(rng *rand.Rand, xi int) func() {
		info := b.IXPs[xi]
		s := b.scratch()
		memberSet := s.member
		memberVisited := make([]int32, 0, len(info.Members))
		for _, m := range info.Members {
			if id, ok := b.byASN[m]; ok {
				memberSet[id] = true
				memberVisited = append(memberVisited, id)
			}
		}

		// Resellers: local transit members with customers of their own.
		var resellers []bgp.ASN
		for _, m := range info.Members {
			as := b.AS(m)
			if as.Tier == Tier2 && !as.Content && as.Region == info.Region {
				resellers = append(resellers, m)
			}
		}
		sort.Slice(resellers, func(i, j int) bool { return resellers[i] < resellers[j] })
		if len(resellers) == 0 {
			clearMarks(memberSet, memberVisited)
			b.release(s)
			return nil
		}
		if len(resellers) > 4 {
			resellers = resellers[:4]
		}

		type remoteAdd struct {
			asn, reseller bgp.ASN
			joinRS, reg   bool
		}
		var adds []remoteAdd
		want := int(float64(len(info.Members))*remoteFrac + 0.5)
		for _, id := range b.orderIDs {
			if len(adds) >= want {
				break
			}
			as := &b.recs[id]
			if memberSet[id] || as.Content || as.Tier == Tier1 {
				continue
			}
			if as.Region == info.Region {
				continue
			}
			if rng.Float64() > 0.35 {
				continue
			}
			reseller := resellers[rng.Intn(len(resellers))]
			if as.ASN == reseller {
				continue
			}
			// Registration is drawn here, unconditionally, and applied
			// in the commit only if the AS is still unregistered: the
			// draw must not depend on other IXPs' commits.
			adds = append(adds, remoteAdd{
				asn:      as.ASN,
				reseller: reseller,
				joinRS:   rng.Float64() < 0.85,
				reg:      rng.Float64() < b.Cfg.RegisteredFrac,
			})
		}
		clearMarks(memberSet, memberVisited)
		b.release(s)
		if len(adds) == 0 {
			return nil
		}
		return func() {
			for _, a := range adds {
				// The virtual port rides on transit from the reseller.
				b.Link(a.asn, a.reseller)
				info.Members = append(info.Members, a.asn)
				if a.joinRS {
					info.RSMembers = append(info.RSMembers, a.asn)
				}
				as := b.AS(a.asn)
				if !as.Registered {
					as.Registered = a.reg
				}
				b.RemoteMembers[info.Name] = append(b.RemoteMembers[info.Name], a.asn)
			}
		}
	})
}

// --- multi-ixp-hybrid -------------------------------------------------

// addHybridPresence joins existing route-server members to additional
// IXPs they are eligible for, producing the multi-IXP presence matrix
// (Fig. 10) of a world where large peers meet at several exchanges.
// The RS-member pool is snapshotted before the fan-out, so each IXP's
// additions are independent of the others'.
func (b *Builder) addHybridPresence() {
	rsAnywhere := make([]bool, len(b.recs))
	for _, info := range b.IXPs {
		for _, m := range info.RSMembers {
			if id, ok := b.byASN[m]; ok {
				rsAnywhere[id] = true
			}
		}
	}
	var pool []int32
	for _, id := range b.orderIDs { // ascending ASN, deterministic
		if rsAnywhere[id] {
			pool = append(pool, id)
		}
	}
	b.fanOutIXPs("hybrid-presence", func(rng *rand.Rand, xi int) func() {
		info := b.IXPs[xi]
		s := b.scratch()
		memberSet := s.member
		memberVisited := make([]int32, 0, len(info.Members))
		for _, m := range info.Members {
			if id, ok := b.byASN[m]; ok {
				memberSet[id] = true
				memberVisited = append(memberVisited, id)
			}
		}
		type joiner struct {
			asn    bgp.ASN
			joinRS bool
		}
		var adds []joiner
		maxAdd := len(info.Members) / 4 // keep growth bounded at every scale
		for _, id := range pool {
			if len(adds) >= maxAdd {
				break
			}
			if memberSet[id] {
				continue
			}
			as := &b.recs[id]
			// Same eligibility shape as the membership stage: locals,
			// global players, Europe-scope networks at European IXPs.
			eligible := as.Region == info.Region ||
				as.Scope == peeringdb.ScopeGlobal ||
				(as.Scope == peeringdb.ScopeEurope && info.Region.IsEurope())
			if !eligible || rng.Float64() > 0.30 {
				continue
			}
			adds = append(adds, joiner{asn: as.ASN, joinRS: rng.Float64() < 0.90})
		}
		clearMarks(memberSet, memberVisited)
		b.release(s)
		if len(adds) == 0 {
			return nil
		}
		return func() {
			for _, a := range adds {
				info.Members = append(info.Members, a.asn)
				if a.joinRS {
					info.RSMembers = append(info.RSMembers, a.asn)
				}
			}
		}
	})
}

// addHybridBilateral adds parallel bilateral sessions between
// route-server member pairs — the hybrid interconnection mix that hides
// RS paths from best-path vantage points — and makes a slice of those
// members prefer the bilateral sessions.
func (b *Builder) addHybridBilateral() {
	presence := make([]int32, len(b.recs))
	for _, info := range b.IXPs {
		for _, m := range info.RSMembers {
			if id, ok := b.byASN[m]; ok {
				presence[id]++
			}
		}
	}
	b.fanOutIXPs("hybrid-bilateral", func(rng *rand.Rand, xi int) func() {
		info := b.IXPs[xi]
		members := info.SortedRSMembers()
		var pairs [][2]bgp.ASN
		var prefBil []bgp.ASN
		for i, x := range members {
			xid, ok := b.byASN[x]
			if !ok || presence[xid] < 2 {
				continue
			}
			for _, y := range members[i+1:] {
				if rng.Float64() > 0.08 {
					continue
				}
				// Same transit-shadowing guard as the baseline
				// bilateral stage.
				if xs := b.AS(x); xs.HasProvider(y) || xs.HasCustomer(y) {
					continue
				}
				pairs = append(pairs, [2]bgp.ASN{x, y})
			}
			if rng.Float64() < 0.30 {
				prefBil = append(prefBil, x)
			}
		}
		if len(pairs) == 0 && len(prefBil) == 0 {
			return nil
		}
		return func() {
			for _, p := range pairs {
				b.Peer(p[0], p[1])
				key := MakeLinkKey(p[0], p[1])
				b.BilateralIXP[key] = append(b.BilateralIXP[key], info.Name)
			}
			for _, x := range prefBil {
				b.AS(x).PrefersBilateral = true
			}
		}
	})
}

// --- pari-noise -------------------------------------------------------

// addPARINoise perturbs the relationship mix probabilistically, after
// PARI's observation that inferred relationship datasets carry a blend
// of link types: a slice of bilateral p2p links is demoted to transit
// (the lower-customer-degree side becomes the customer), and a little
// extra edge-network peering appears. The perturbation is a world-global
// graph edit, not per-IXP work, so it stays on a single stage stream.
func (b *Builder) addPARINoise() {
	rng := b.StageRNG("pari-noise")

	// Demote ~15% of tier-2 p2p links to c2p.
	for _, asn := range b.Order {
		as := b.AS(asn)
		if as.Tier != Tier2 || as.Content {
			continue
		}
		// Copy: the peer list is mutated inside the loop.
		peers := append([]bgp.ASN(nil), as.Peers...)
		for _, p := range peers {
			if p < asn {
				continue // visit each link once, from its lower end
			}
			pas := b.AS(p)
			if pas.Tier != Tier2 || pas.Content {
				continue
			}
			if rng.Float64() > 0.15 {
				continue
			}
			cust, prov := asn, p
			if len(pas.Customers) < len(as.Customers) {
				cust, prov = p, asn
			}
			b.AS(asn).Peers = removeASN(b.AS(asn).Peers, p)
			b.AS(p).Peers = removeASN(b.AS(p).Peers, asn)
			b.Link(cust, prov)
		}
	}

	// Peering noise: sparse extra stub-to-transit p2p within a region.
	// The candidate scan is deterministic given the starting offset, so
	// a selected stub reliably gains a link when any same-region transit
	// exists.
	for _, asn := range b.stubs {
		if rng.Float64() > 0.05 {
			continue
		}
		as := b.AS(asn)
		start := rng.Intn(len(b.tier2))
		for k := 0; k < len(b.tier2); k++ {
			t := b.tier2[(start+k)%len(b.tier2)]
			if t == asn || b.AS(t).Region != as.Region || as.HasPeer(t) {
				continue
			}
			b.Peer(asn, t)
			break
		}
	}
}
