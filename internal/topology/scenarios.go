package topology

import (
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/peeringdb"
)

// This file defines the non-baseline world scenarios. Each splices
// extra stages into the baseline pipeline and draws its randomness from
// an independent StageRNG stream, so a scenario world is always the
// baseline world plus the scenario's additions — never a perturbation
// of baseline draws.

func init() {
	RegisterScenario(&Scenario{
		Name: "remote-peering",
		Description: "baseline plus remote IXP members connected through resellers " +
			"(O Peer, Where Art Thou? — Nomikos et al.)",
		Stages: insertAfter(baselineStages(), "ixps",
			stage("remote-members", (*Builder).addRemoteMembers)),
	})
	RegisterScenario(&Scenario{
		Name: "multi-ixp-hybrid",
		Description: "baseline plus boosted multi-IXP presence and parallel " +
			"bilateral sessions next to route-server peerings",
		Stages: insertAfter(
			insertAfter(baselineStages(), "ixps",
				stage("hybrid-presence", (*Builder).addHybridPresence)),
			"bilateral-ixp",
			stage("hybrid-bilateral", (*Builder).addHybridBilateral)),
	})
	RegisterScenario(&Scenario{
		Name: "pari-noise",
		Description: "baseline with a probabilistic relationship mix: some bilateral " +
			"p2p links demoted to transit, plus peering noise (PARI — Feng et al.)",
		Stages: insertAfter(baselineStages(), "private-peering",
			stage("pari-noise", (*Builder).addPARINoise)),
	})
}

// --- remote-peering ---------------------------------------------------

// remoteFrac is the fraction of each IXP's membership added as remote
// members; Nomikos et al. found ~20% of members at large IXPs peer
// remotely.
const remoteFrac = 0.20

// addRemoteMembers grows every IXP with out-of-region members connected
// through a reseller: an existing local transit member that sells a
// virtual port plus transit toward the exchange. Remote members join
// the route server like any other member, which is exactly why the
// paper's method cannot tell them apart — the ground truth lands in
// Topology.RemoteMembers.
func (b *Builder) addRemoteMembers() {
	rng := b.StageRNG("remote-members")
	b.RemoteMembers = make(map[string][]bgp.ASN, len(b.IXPs))
	for _, info := range b.IXPs {
		memberSet := make(map[bgp.ASN]bool, len(info.Members))
		for _, m := range info.Members {
			memberSet[m] = true
		}

		// Resellers: local transit members with customers of their own.
		var resellers []bgp.ASN
		for _, m := range info.Members {
			as := b.AS(m)
			if as.Tier == Tier2 && !as.Content && as.Region == info.Region {
				resellers = append(resellers, m)
			}
		}
		sort.Slice(resellers, func(i, j int) bool { return resellers[i] < resellers[j] })
		if len(resellers) == 0 {
			continue
		}
		if len(resellers) > 4 {
			resellers = resellers[:4]
		}

		// Candidates: out-of-region edge networks not present yet.
		var cands []bgp.ASN
		for _, asn := range b.Order {
			as := b.AS(asn)
			if memberSet[asn] || as.Content || as.Tier == Tier1 {
				continue
			}
			if as.Region == info.Region {
				continue
			}
			cands = append(cands, asn)
		}

		want := int(float64(len(info.Members))*remoteFrac + 0.5)
		for _, asn := range cands {
			if len(b.RemoteMembers[info.Name]) >= want {
				break
			}
			if rng.Float64() > 0.35 {
				continue
			}
			reseller := resellers[rng.Intn(len(resellers))]
			if asn == reseller {
				continue
			}
			// The virtual port rides on transit from the reseller.
			b.Link(asn, reseller)
			info.Members = append(info.Members, asn)
			memberSet[asn] = true
			if rng.Float64() < 0.85 {
				info.RSMembers = append(info.RSMembers, asn)
			}
			as := b.AS(asn)
			if !as.Registered {
				as.Registered = rng.Float64() < b.Cfg.RegisteredFrac
			}
			b.RemoteMembers[info.Name] = append(b.RemoteMembers[info.Name], asn)
		}
	}
}

// --- multi-ixp-hybrid -------------------------------------------------

// addHybridPresence joins existing route-server members to additional
// IXPs they are eligible for, producing the multi-IXP presence matrix
// (Fig. 10) of a world where large peers meet at several exchanges.
func (b *Builder) addHybridPresence() {
	rng := b.StageRNG("hybrid-presence")
	rsAnywhere := make(map[bgp.ASN]bool)
	for _, info := range b.IXPs {
		for _, m := range info.RSMembers {
			rsAnywhere[m] = true
		}
	}
	var pool []bgp.ASN
	for _, asn := range b.Order { // ascending, deterministic
		if rsAnywhere[asn] {
			pool = append(pool, asn)
		}
	}
	for _, info := range b.IXPs {
		memberSet := make(map[bgp.ASN]bool, len(info.Members))
		for _, m := range info.Members {
			memberSet[m] = true
		}
		maxAdd := len(info.Members) / 4 // keep growth bounded at every scale
		added := 0
		for _, asn := range pool {
			if added >= maxAdd {
				break
			}
			if memberSet[asn] {
				continue
			}
			as := b.AS(asn)
			// Same eligibility shape as the membership stage: locals,
			// global players, Europe-scope networks at European IXPs.
			eligible := as.Region == info.Region ||
				as.Scope == peeringdb.ScopeGlobal ||
				(as.Scope == peeringdb.ScopeEurope && info.Region.IsEurope())
			if !eligible || rng.Float64() > 0.30 {
				continue
			}
			info.Members = append(info.Members, asn)
			memberSet[asn] = true
			if rng.Float64() < 0.90 {
				info.RSMembers = append(info.RSMembers, asn)
			}
			added++
		}
	}
}

// addHybridBilateral adds parallel bilateral sessions between
// route-server member pairs — the hybrid interconnection mix that hides
// RS paths from best-path vantage points — and makes a slice of those
// members prefer the bilateral sessions.
func (b *Builder) addHybridBilateral() {
	rng := b.StageRNG("hybrid-bilateral")
	presence := make(map[bgp.ASN]int)
	for _, info := range b.IXPs {
		for _, m := range info.RSMembers {
			presence[m]++
		}
	}
	for _, info := range b.IXPs {
		members := info.SortedRSMembers()
		for i, x := range members {
			if presence[x] < 2 {
				continue
			}
			for _, y := range members[i+1:] {
				if rng.Float64() > 0.08 {
					continue
				}
				b.Peer(x, y)
				key := MakeLinkKey(x, y)
				b.BilateralIXP[key] = append(b.BilateralIXP[key], info.Name)
			}
			if rng.Float64() < 0.30 {
				b.AS(x).PrefersBilateral = true
			}
		}
	}
}

// --- pari-noise -------------------------------------------------------

// addPARINoise perturbs the relationship mix probabilistically, after
// PARI's observation that inferred relationship datasets carry a blend
// of link types: a slice of bilateral p2p links is demoted to transit
// (the lower-customer-degree side becomes the customer), and a little
// extra edge-network peering appears.
func (b *Builder) addPARINoise() {
	rng := b.StageRNG("pari-noise")

	// Demote ~15% of tier-2 p2p links to c2p.
	for _, asn := range b.Order {
		as := b.AS(asn)
		if as.Tier != Tier2 || as.Content {
			continue
		}
		// Copy: the peer list is mutated inside the loop.
		peers := append([]bgp.ASN(nil), as.Peers...)
		for _, p := range peers {
			if p < asn {
				continue // visit each link once, from its lower end
			}
			pas := b.AS(p)
			if pas.Tier != Tier2 || pas.Content {
				continue
			}
			if rng.Float64() > 0.15 {
				continue
			}
			cust, prov := asn, p
			if len(pas.Customers) < len(as.Customers) {
				cust, prov = p, asn
			}
			b.AS(asn).Peers = removeASN(b.AS(asn).Peers, p)
			b.AS(p).Peers = removeASN(b.AS(p).Peers, asn)
			b.Link(cust, prov)
		}
	}

	// Peering noise: sparse extra stub-to-transit p2p within a region.
	// The candidate scan is deterministic given the starting offset, so
	// a selected stub reliably gains a link when any same-region transit
	// exists.
	for _, asn := range b.stubs {
		if rng.Float64() > 0.05 {
			continue
		}
		as := b.AS(asn)
		start := rng.Intn(len(b.tier2))
		for k := 0; k < len(b.tier2); k++ {
			t := b.tier2[(start+k)%len(b.tier2)]
			if t == asn || b.AS(t).Region != as.Region || as.HasPeer(t) {
				continue
			}
			b.Peer(asn, t)
			break
		}
	}
}
