package topology

import (
	"fmt"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// The scaled-world scenario's profile stage. At 10-100x the interesting
// growth axis is the number of exchanges, not the size of one: remote-
// peering-era workloads mean hundreds of IXPs whose memberships overlap
// heavily, while even the largest real exchange stays within a few
// hundred route-server members. Scaling a single IXP's membership 100x
// would also exhaust its scheme's 16-bit private-ASN alias table (1023
// slots), so per-exchange membership is capped and the remaining scale
// budget becomes new regional exchanges.

// scaledMemberCap bounds one exchange's membership in the scaled world.
// Keeps the per-IXP filter tables realistic and the 32-bit-member alias
// demand far below the 1023-slot private range.
const scaledMemberCap = 700

// scaledMaxIXPs bounds the total profile count (the IXP LAN numbering
// plan supports ~200 /16s).
const scaledMaxIXPs = 198

// expandIXPProfiles rewrites the profile list for the scaled world: the
// paper's 13 IXPs grow with Scale up to the member cap, and the rest of
// the scale budget materializes as synthetic regional exchanges (about
// two per unit of Scale). Runs before allocate-ases so the AS pool is
// sized for the expanded membership demand. All sizes are marked
// Absolute: Config.Scale must not multiply them again downstream.
func (b *Builder) expandIXPProfiles() {
	rng := b.StageRNG("scaled-ixps")
	scale := b.Cfg.Scale

	profs := make([]IXPProfile, 0, len(b.Cfg.Profiles))
	usedRS := make(map[bgp.ASN]bool, scaledMaxIXPs)
	for _, p := range b.Cfg.Profiles {
		usedRS[p.RSASN] = true
		if !p.Absolute {
			m := int(float64(p.Members)*scale + 0.5)
			rs := int(float64(p.RSMembers)*scale + 0.5)
			if m > scaledMemberCap {
				rs = rs * scaledMemberCap / m
				m = scaledMemberCap
			}
			if m < 4 {
				m = 4
			}
			if rs < 4 {
				rs = 4
			}
			if rs > m {
				rs = m
			}
			p.Members, p.RSMembers, p.Absolute = m, rs, true
		}
		profs = append(profs, p)
	}

	extra := int(scale * 2)
	if extra+len(profs) > scaledMaxIXPs {
		extra = scaledMaxIXPs - len(profs)
	}

	// Regional spread of the synthetic exchanges, leaning European like
	// the route-server ecosystem the paper measured.
	regionDist := []regionWeight{
		{ixp.RegionWestEU, 22}, {ixp.RegionEastEU, 18}, {ixp.RegionNorthEU, 10},
		{ixp.RegionSouthEU, 12}, {ixp.RegionNorthAmerica, 14},
		{ixp.RegionAsiaPacific, 12}, {ixp.RegionLatinAmerica, 8}, {ixp.RegionAfrica, 4},
	}
	pickRegion := func() ixp.Region { return pickWeightedRegion(rng, regionDist) }

	// Synthetic RS ASNs come from the top of the public 16-bit space
	// (below the 63488+ reserved block); the AS allocation stage skips
	// whatever is used here.
	nextRS := bgp.ASN(58000)
	allocRS := func() bgp.ASN {
		for {
			a := nextRS
			nextRS += bgp.ASN(1 + rng.Intn(23))
			if !usedRS[a] && a < bgp.FirstReserved32 {
				usedRS[a] = true
				return a
			}
		}
	}

	for i := 0; i < extra; i++ {
		members := 30 + rng.Intn(91)
		rs := members * (70 + rng.Intn(26)) / 100
		if rs < 4 {
			rs = 4
		}
		hasLG := rng.Float64() < 0.70
		feeders := 0
		openness := 0.0
		if rng.Float64() < 0.35 {
			feeders = 1
			openness = 0.10 + 0.60*rng.Float64()
		}
		memberLGs := 0
		if !hasLG || rng.Float64() < 0.40 {
			memberLGs = 1
		}
		style := StyleStandard
		if rng.Float64() < 0.15 {
			style = StylePrivateRange
		}
		profs = append(profs, IXPProfile{
			Name:                fmt.Sprintf("RX-%03d", i+1),
			RSASN:               allocRS(),
			Region:              pickRegion(),
			Style:               style,
			Members:             members,
			RSMembers:           rs,
			HasLG:               hasLG,
			PublishesMemberList: rng.Float64() < 0.85,
			RSFeeders:           feeders,
			PassiveOpenness:     openness,
			MemberLGs:           memberLGs,
			FlatFee:             rng.Float64() < 0.80,
			Absolute:            true,
		})
	}
	b.Cfg.Profiles = profs
}
