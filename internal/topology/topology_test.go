package topology

import (
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/peeringdb"
)

func testTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != len(b.Order) {
		t.Fatalf("AS counts differ: %d vs %d", len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
	for _, x := range a.IXPs {
		y := b.IXPByName(x.Name)
		if y == nil || len(y.RSMembers) != len(x.RSMembers) {
			t.Fatalf("IXP %s differs", x.Name)
		}
		for i := range x.RSMembers {
			if x.RSMembers[i] != y.RSMembers[i] {
				t.Fatalf("IXP %s member %d differs", x.Name, i)
			}
		}
	}
	// A different seed changes the world.
	cfg := TestConfig()
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Order) == len(c.Order)
	if same {
		for i := range a.Order {
			if a.Order[i] != c.Order[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical AS pools")
	}
}

func TestGenerateStructure(t *testing.T) {
	topo := testTopo(t)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	st := topo.Stats()
	if st.Tier1s != TestConfig().NumTier1 {
		t.Fatalf("tier1s = %d", st.Tier1s)
	}
	if st.Stubs == 0 || st.Transits == 0 {
		t.Fatalf("empty tiers: %+v", st)
	}
	if st.IXPs != 13 {
		t.Fatalf("IXPs = %d", st.IXPs)
	}
	if st.Prefixes == 0 {
		t.Fatal("no prefixes")
	}

	// Every non-tier-1 AS must have at least one provider (reachability).
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Tier != Tier1 && len(as.Providers) == 0 {
			t.Fatalf("AS%s (tier %d) has no providers", asn, as.Tier)
		}
		if as.Tier == Tier1 && len(as.Providers) != 0 {
			t.Fatalf("tier-1 AS%s has providers", asn)
		}
	}

	// Tier-1 clique is fully meshed.
	var t1 []bgp.ASN
	for _, asn := range topo.Order {
		if topo.ASes[asn].Tier == Tier1 {
			t1 = append(t1, asn)
		}
	}
	for i, a := range t1 {
		for _, b := range t1[i+1:] {
			if !topo.ASes[a].HasPeer(b) {
				t.Fatalf("tier-1s %s and %s not peered", a, b)
			}
		}
	}
}

func TestGenerateIXPSizes(t *testing.T) {
	cfg := TestConfig()
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range PaperIXPProfiles() {
		info := topo.IXPByName(prof.Name)
		if info == nil {
			t.Fatalf("missing IXP %s", prof.Name)
		}
		wantM, wantRS := cfg.scaled(prof.Members), cfg.scaled(prof.RSMembers)
		if len(info.Members) != wantM {
			t.Errorf("%s members = %d, want %d", prof.Name, len(info.Members), wantM)
		}
		if len(info.RSMembers) != wantRS {
			t.Errorf("%s RS members = %d, want %d", prof.Name, len(info.RSMembers), wantRS)
		}
		if info.Scheme.RSASN != prof.RSASN {
			t.Errorf("%s RS ASN = %v", prof.Name, info.Scheme.RSASN)
		}
	}
}

func TestFiltersRespectReciprocityInvariant(t *testing.T) {
	topo := testTopo(t)
	// §4.4: no import filter blocks an AS the export filter allows.
	for _, info := range topo.IXPs {
		for _, m := range info.RSMembers {
			ef, ok1 := topo.ExportFilter(info.Name, m)
			imf, ok2 := topo.ImportFilter(info.Name, m)
			if !ok1 || !ok2 {
				t.Fatalf("%s member %s missing filters", info.Name, m)
			}
			for _, other := range info.RSMembers {
				if other == m {
					continue
				}
				if ef.Allows(other) && !imf.Allows(other) {
					t.Fatalf("%s member %s: import more restrictive than export for %s",
						info.Name, m, other)
				}
			}
		}
	}
}

func TestGroundTruthLinks(t *testing.T) {
	topo := testTopo(t)
	for _, info := range topo.IXPs {
		all := topo.GroundTruthMLPLinks(info.Name)
		recip := topo.GroundTruthReciprocalLinks(info.Name)
		if len(recip) > len(all) {
			t.Fatalf("%s: reciprocal %d > all %d", info.Name, len(recip), len(all))
		}
		for k := range recip {
			if !all[k] {
				t.Fatalf("%s: reciprocal link %v missing from full set", info.Name, k)
			}
		}
		n := len(info.RSMembers)
		max := n * (n - 1) / 2
		if len(all) > max {
			t.Fatalf("%s: %d links exceed %d possible", info.Name, len(all), max)
		}
		// Density should be high but not complete (Fig. 12: 0.79-0.95).
		if n > 10 {
			density := float64(len(all)) / float64(max)
			if density < 0.5 || density > 0.999 {
				t.Errorf("%s: implausible MLP density %.3f", info.Name, density)
			}
		}
	}
}

func TestCustomerCone(t *testing.T) {
	topo := testTopo(t)
	// Find a transit AS with customers.
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Tier == Tier2 && len(as.Customers) > 0 {
			cone := topo.CustomerCone(asn)
			if !cone[asn] {
				t.Fatal("cone must include self")
			}
			for _, c := range as.Customers {
				if !cone[c] {
					t.Fatalf("direct customer %s missing from cone of %s", c, asn)
				}
			}
			return
		}
	}
	t.Fatal("no transit AS with customers found")
}

func TestRelationshipOf(t *testing.T) {
	topo := testTopo(t)
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		for _, p := range as.Providers {
			if rel, ok := topo.RelationshipOf(asn, p); !ok || rel != RelC2P {
				t.Fatalf("RelationshipOf(%s,%s) = %v,%v", asn, p, rel, ok)
			}
			if rel, ok := topo.RelationshipOf(p, asn); !ok || rel != RelP2C {
				t.Fatalf("reverse = %v,%v", rel, ok)
			}
		}
		for _, p := range as.Peers {
			if rel, ok := topo.RelationshipOf(asn, p); !ok || rel != RelP2P {
				t.Fatalf("peer rel = %v,%v", rel, ok)
			}
		}
		break
	}
	if _, ok := topo.RelationshipOf(1, 2); ok {
		t.Fatal("unknown ASes must not be related")
	}
}

func TestFeedersAndLGs(t *testing.T) {
	cfg := TestConfig()
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Feeders) == 0 {
		t.Fatal("no feeders")
	}
	full, custOnly := 0, 0
	for _, f := range topo.Feeders {
		if topo.ASes[f.ASN] == nil {
			t.Fatalf("feeder %s not in topology", f.ASN)
		}
		if f.Kind == FeedFull {
			full++
		} else {
			custOnly++
		}
	}
	if full == 0 || custOnly == 0 {
		t.Fatalf("feeder kinds: full=%d custOnly=%d", full, custOnly)
	}

	if len(topo.ValidationLGs) != cfg.ValidationLGs {
		t.Fatalf("validation LGs = %d, want %d", len(topo.ValidationLGs), cfg.ValidationLGs)
	}
	allPaths := 0
	for _, lg := range topo.ValidationLGs {
		if lg.AllPaths {
			allPaths++
		}
	}
	if allPaths == 0 || allPaths == len(topo.ValidationLGs) {
		t.Fatalf("LG display modes not mixed: %d/%d all-paths", allPaths, len(topo.ValidationLGs))
	}

	// IXPs without an own LG must have member LGs to stay measurable.
	for _, prof := range PaperIXPProfiles() {
		if !prof.HasLG && prof.MemberLGs > 0 {
			if len(topo.MemberLGs[prof.Name]) == 0 {
				t.Errorf("%s: no member LGs despite profile", prof.Name)
			}
		}
	}
}

func TestPolicyDistribution(t *testing.T) {
	topo := testTopo(t)
	counts := map[peeringdb.Policy]int{}
	total := 0
	memberSet := map[bgp.ASN]bool{}
	for _, info := range topo.IXPs {
		for _, m := range info.Members {
			memberSet[m] = true
		}
	}
	for m := range memberSet {
		as := topo.ASes[m]
		if !as.Registered {
			continue
		}
		counts[as.Policy]++
		total++
	}
	if total == 0 {
		t.Fatal("no registered members")
	}
	openFrac := float64(counts[peeringdb.PolicyOpen]) / float64(total)
	if openFrac < 0.5 || openFrac > 0.9 {
		t.Errorf("open fraction among registered members = %.2f, want ~0.72", openFrac)
	}
}

func TestPrefixOwnership(t *testing.T) {
	topo := testTopo(t)
	owners := topo.PrefixOwners()
	if len(owners) == 0 {
		t.Fatal("no prefixes")
	}
	seen := map[bgp.Prefix]bool{}
	for _, asn := range topo.Order {
		for _, p := range topo.ASes[asn].Prefixes {
			if seen[p] {
				t.Fatalf("prefix %s originated twice", p)
			}
			seen[p] = true
			if owners[p] != asn {
				t.Fatalf("owner mismatch for %s", p)
			}
			if _, ok := topo.PrefixRegions[p]; !ok {
				t.Fatalf("prefix %s has no region", p)
			}
		}
	}
}

func TestBilateralIXPLinksAreMirrored(t *testing.T) {
	topo := testTopo(t)
	if len(topo.BilateralIXP) == 0 {
		t.Fatal("no bilateral IXP links generated")
	}
	for key := range topo.BilateralIXP {
		if !topo.ASes[key.A].HasPeer(key.B) || !topo.ASes[key.B].HasPeer(key.A) {
			t.Fatalf("bilateral link %v not reflected in peer sets", key)
		}
	}
}

func TestMakeLinkKeyCanonical(t *testing.T) {
	if MakeLinkKey(5, 3) != MakeLinkKey(3, 5) {
		t.Fatal("link key not canonical")
	}
	k := MakeLinkKey(7, 2)
	if k.A != 2 || k.B != 7 {
		t.Fatalf("key = %+v", k)
	}
}

func TestScaledMinimum(t *testing.T) {
	cfg := Config{Scale: 0.001}
	if cfg.scaled(50) < 4 {
		t.Fatal("scaled must clamp at 4")
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	cfg := TestConfig()
	cfg.Scale = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero scale must error")
	}
}
