package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/peeringdb"
)

// Generate builds a deterministic synthetic world from cfg.
func Generate(cfg Config) (*Topology, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("topology: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.Profiles == nil {
		cfg.Profiles = PaperIXPProfiles()
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		t: &Topology{
			ASes:          make(map[bgp.ASN]*AS),
			ExportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
			ImportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
			BilateralIXP:  make(map[LinkKey][]string),
			MemberLGs:     make(map[string][]LGHost),
			PrefixRegions: make(map[bgp.Prefix]ixp.Region),
		},
		nextPrefix: 0x14000000, // 20.0.0.0
	}
	g.allocateASes()
	g.buildHierarchy()
	g.addSiblings()
	g.addPrivatePeering()
	g.assignPrefixes()
	g.buildIXPs()
	g.generateFilters()
	g.addBilateralIXPPeering()
	g.pickFeeders()
	g.pickLookingGlasses()
	if err := g.finalizeMemberData(); err != nil {
		return nil, err
	}
	if err := g.t.Validate(); err != nil {
		return nil, err
	}
	return g.t, nil
}

type generator struct {
	cfg Config
	rng *rand.Rand
	t   *Topology

	tier1   []bgp.ASN
	tier2   []bgp.ASN
	stubs   []bgp.ASN
	content []bgp.ASN

	nextPrefix uint32
}

// asnUsed tracks allocated ASNs including the fixed RS ASNs.
func (g *generator) usedASNs() map[bgp.ASN]bool {
	used := make(map[bgp.ASN]bool, len(g.t.ASes)+len(g.cfg.Profiles))
	for a := range g.t.ASes {
		used[a] = true
	}
	for _, p := range g.cfg.Profiles {
		used[p.RSASN] = true
	}
	return used
}

func (g *generator) allocateASes() {
	cfg := g.cfg
	n := cfg.NumASes
	if n == 0 {
		// Pool sized so that IXP membership targets are satisfiable
		// with realistic reuse across IXPs.
		slots := 0
		for _, p := range cfg.Profiles {
			slots += cfg.scaled(p.Members)
		}
		n = slots*3/2 + 400
	}
	used := g.usedASNs()
	next := bgp.ASN(1000)
	next32 := bgp.ASN(196800)
	alloc := func(want32 bool) bgp.ASN {
		for {
			var a bgp.ASN
			if want32 {
				a = next32
				next32 += bgp.ASN(1 + g.rng.Intn(23))
			} else {
				a = next
				next += bgp.ASN(1 + g.rng.Intn(29))
				if next >= bgp.FirstReserved32 {
					// 16-bit space exhausted at huge scales; spill to 32-bit.
					want32 = true
					continue
				}
			}
			if !used[a] && a.Routable() {
				used[a] = true
				return a
			}
		}
	}

	regionDist := []struct {
		r ixp.Region
		w int
	}{
		{ixp.RegionWestEU, 26}, {ixp.RegionEastEU, 20}, {ixp.RegionNorthEU, 9},
		{ixp.RegionSouthEU, 13}, {ixp.RegionNorthAmerica, 16},
		{ixp.RegionAsiaPacific, 10}, {ixp.RegionLatinAmerica, 4}, {ixp.RegionAfrica, 2},
	}
	pickRegion := func() ixp.Region {
		total := 0
		for _, rd := range regionDist {
			total += rd.w
		}
		x := g.rng.Intn(total)
		for _, rd := range regionDist {
			if x < rd.w {
				return rd.r
			}
			x -= rd.w
		}
		return ixp.RegionWestEU
	}

	numT2 := int(float64(n) * cfg.TransitFrac)
	for i := 0; i < n; i++ {
		want32 := g.rng.Float64() < 0.07 && i >= cfg.NumTier1
		as := &AS{ASN: alloc(want32)}
		switch {
		case i < cfg.NumTier1:
			as.Tier = Tier1
			as.Region = ixp.RegionWestEU
			if i%3 == 0 {
				as.Region = ixp.RegionNorthAmerica
			}
			as.Scope = peeringdb.ScopeGlobal
			if g.rng.Float64() < 0.6 {
				as.Policy = peeringdb.PolicySelective
			} else {
				as.Policy = peeringdb.PolicyRestrictive
			}
			g.tier1 = append(g.tier1, as.ASN)
		case i < cfg.NumTier1+cfg.NumContent:
			as.Tier = Tier2
			as.Content = true
			as.Region = ixp.RegionWestEU
			as.Scope = peeringdb.ScopeGlobal
			as.Policy = peeringdb.PolicyOpen
			g.content = append(g.content, as.ASN)
		case i < cfg.NumTier1+cfg.NumContent+numT2:
			as.Tier = Tier2
			as.Region = pickRegion()
			switch r := g.rng.Float64(); {
			case r < 0.25:
				as.Scope = peeringdb.ScopeGlobal
			case r < 0.65 && as.Region.IsEurope():
				as.Scope = peeringdb.ScopeEurope
			default:
				as.Scope = peeringdb.ScopeRegional
			}
			switch r := g.rng.Float64(); {
			case r < 0.55:
				as.Policy = peeringdb.PolicyOpen
			case r < 0.90:
				as.Policy = peeringdb.PolicySelective
			default:
				as.Policy = peeringdb.PolicyRestrictive
			}
			g.tier2 = append(g.tier2, as.ASN)
		default:
			as.Tier = TierStub
			as.Region = pickRegion()
			switch r := g.rng.Float64(); {
			case r < 0.12 && as.Region.IsEurope():
				as.Scope = peeringdb.ScopeEurope
			default:
				as.Scope = peeringdb.ScopeRegional
			}
			switch r := g.rng.Float64(); {
			case r < 0.80:
				as.Policy = peeringdb.PolicyOpen
			case r < 0.96:
				as.Policy = peeringdb.PolicySelective
			default:
				as.Policy = peeringdb.PolicyRestrictive
			}
			g.stubs = append(g.stubs, as.ASN)
		}
		as.Name = fmt.Sprintf("AS%s-%s", as.ASN, as.Region)
		as.StripsCommunities = g.rng.Float64() < cfg.StripProb
		as.OmitsDefaultALL = g.rng.Float64() < 0.30
		g.t.ASes[as.ASN] = as
		g.t.Order = append(g.t.Order, as.ASN)
	}
	sort.Slice(g.t.Order, func(i, j int) bool { return g.t.Order[i] < g.t.Order[j] })
}

func (g *generator) link(customer, provider bgp.ASN) {
	c, p := g.t.ASes[customer], g.t.ASes[provider]
	c.Providers = insertASN(c.Providers, provider)
	p.Customers = insertASN(p.Customers, customer)
}

func (g *generator) peer(a, b bgp.ASN) {
	if a == b {
		return
	}
	x, y := g.t.ASes[a], g.t.ASes[b]
	x.Peers = insertASN(x.Peers, b)
	y.Peers = insertASN(y.Peers, a)
}

func (g *generator) buildHierarchy() {
	// Tier-1 clique: full mesh of p2p.
	for i, a := range g.tier1 {
		for _, b := range g.tier1[i+1:] {
			g.peer(a, b)
		}
	}
	// Tier-2 (incl. content) attach to 1-3 tier-1 providers with
	// preferential attachment (weight = current customer count + 1).
	attach := func(asn bgp.ASN, pool []bgp.ASN, k int, regionAffine bool) {
		as := g.t.ASes[asn]
		chosen := make(map[bgp.ASN]bool)
		for len(chosen) < k && len(chosen) < len(pool) {
			total := 0.0
			weights := make([]float64, len(pool))
			for i, p := range pool {
				if chosen[p] || p == asn {
					continue
				}
				w := float64(len(g.t.ASes[p].Customers) + 1)
				if regionAffine && g.t.ASes[p].Region == as.Region {
					w *= 8
				}
				weights[i] = w
				total += w
			}
			if total == 0 {
				break
			}
			x := g.rng.Float64() * total
			for i, p := range pool {
				x -= weights[i]
				if x <= 0 && weights[i] > 0 {
					chosen[p] = true
					g.link(asn, p)
					break
				}
			}
		}
	}
	for _, asn := range g.tier2 {
		attach(asn, g.tier1, 1+g.rng.Intn(3), false)
	}
	for _, asn := range g.content {
		attach(asn, g.tier1, 2+g.rng.Intn(2), false)
	}
	for _, asn := range g.stubs {
		// Stubs are predominantly multihomed to same-region transits;
		// several of a stub's providers meeting at the regional IXP is
		// what makes its prefixes multi-advertised there (Fig. 5).
		attach(asn, g.tier2, 2+g.rng.Intn(2), true)
	}
}

func (g *generator) addSiblings() {
	// ~1% of tier-2s form sibling pairs with a same-region tier-2.
	n := len(g.tier2) / 100
	for i := 0; i < n; i++ {
		a := g.tier2[g.rng.Intn(len(g.tier2))]
		b := g.tier2[g.rng.Intn(len(g.tier2))]
		if a == b || g.t.ASes[a].Region != g.t.ASes[b].Region {
			continue
		}
		x, y := g.t.ASes[a], g.t.ASes[b]
		x.Siblings = insertASN(x.Siblings, b)
		y.Siblings = insertASN(y.Siblings, a)
	}
}

func (g *generator) addPrivatePeering() {
	// Sparse bilateral private peering between same-region tier-2s.
	for i, a := range g.tier2 {
		for _, b := range g.tier2[i+1:] {
			if g.t.ASes[a].Region != g.t.ASes[b].Region {
				continue
			}
			if g.rng.Float64() < 0.015 {
				g.peer(a, b)
			}
		}
	}
	// Content networks peer privately with a slice of the transit tier:
	// these private interconnects are why content ASes get EXCLUDEd at
	// route servers (§5.5).
	for _, c := range g.content {
		for _, b := range g.tier2 {
			if g.t.ASes[b].Content {
				continue
			}
			if g.rng.Float64() < 0.10 {
				g.peer(c, b)
			}
		}
	}
}

func (g *generator) allocPrefix(bits int, region ixp.Region) bgp.Prefix {
	addr := netip.AddrFrom4([4]byte{
		byte(g.nextPrefix >> 24), byte(g.nextPrefix >> 16),
		byte(g.nextPrefix >> 8), byte(g.nextPrefix),
	})
	g.nextPrefix += 1024 // always step a /22 block to keep prefixes disjoint
	p := bgp.PrefixFrom(addr, bits)
	g.t.PrefixRegions[p] = region
	return p
}

func (g *generator) assignPrefixes() {
	for _, asn := range g.t.Order {
		as := g.t.ASes[asn]
		var n int
		switch {
		case as.Content:
			n = 8 + g.rng.Intn(12)
		case as.Tier == Tier1:
			n = 10 + g.rng.Intn(14)
		case as.Tier == Tier2:
			n = 1 + g.rng.Intn(2*g.cfg.MeanPrefixesTransit)
		default:
			n = 1 + g.rng.Intn(2*g.cfg.MeanPrefixesStub)
		}
		for i := 0; i < n; i++ {
			bits := 24
			if g.rng.Float64() < 0.3 {
				bits = 22
			}
			region := as.Region
			if as.Content || as.Tier == Tier1 {
				// Global networks originate prefixes everywhere; this
				// is what makes "geographically distant" validation
				// prefixes meaningful.
				region = ixp.Region(g.rng.Intn(ixp.NumRegions))
			}
			as.Prefixes = append(as.Prefixes, g.allocPrefix(bits, region))
		}
	}
}

// eligible returns the membership candidate pool for an IXP region.
func (g *generator) eligible(region ixp.Region) []bgp.ASN {
	var out []bgp.ASN
	for _, asn := range g.t.Order {
		as := g.t.ASes[asn]
		switch {
		case as.Content:
			out = append(out, asn)
		case as.Region == region:
			out = append(out, asn)
		case as.Scope == peeringdb.ScopeGlobal:
			out = append(out, asn)
		case as.Scope == peeringdb.ScopeEurope && region.IsEurope():
			out = append(out, asn)
		}
	}
	return out
}

func (g *generator) buildIXPs() {
	for _, prof := range g.cfg.Profiles {
		members := g.cfg.scaled(prof.Members)
		rsMembers := g.cfg.scaled(prof.RSMembers)
		if rsMembers > members {
			rsMembers = members
		}
		pool := g.eligible(prof.Region)
		weights := make([]float64, len(pool))
		for i, asn := range pool {
			as := g.t.ASes[asn]
			switch {
			case as.Content:
				weights[i] = 40
			case as.Tier == Tier1:
				weights[i] = 6
			case as.Tier == Tier2 && as.Region == prof.Region:
				weights[i] = 8
			case as.Tier == Tier2:
				weights[i] = 3
			case as.Region == prof.Region:
				weights[i] = 2.5
			default:
				weights[i] = 0.4
			}
		}
		// Sample in two passes: first the backbone of the membership,
		// then a co-location pass that prefers customers of already
		// selected transit members. ISPs bring their cones to the
		// exchange, and both provider and customer announcing the same
		// customer prefixes to the route server is what produces the
		// multi-advertiser prefixes of Fig. 5.
		memberList := g.weightedSample(pool, weights, members*3/5)
		selected := make(map[bgp.ASN]bool, len(memberList))
		for _, m := range memberList {
			selected[m] = true
		}
		var pool2 []bgp.ASN
		var weights2 []float64
		for i, asn := range pool {
			if selected[asn] {
				continue
			}
			w := weights[i]
			for _, p := range g.t.ASes[asn].Providers {
				if selected[p] {
					// Weight accumulates per co-located provider:
					// multihomed customers of several members are the
					// strongest multi-advertiser source.
					w += 25
				}
			}
			pool2 = append(pool2, asn)
			weights2 = append(weights2, w)
		}
		memberList = append(memberList, g.weightedSample(pool2, weights2, members-len(memberList))...)

		// RS membership: weighted by actual peering policy (Fig. 9).
		joinProb := func(p peeringdb.Policy) float64 {
			switch p {
			case peeringdb.PolicyOpen:
				return 0.92
			case peeringdb.PolicySelective:
				return 0.75
			case peeringdb.PolicyRestrictive:
				return 0.43
			default:
				return 0.80
			}
		}
		shuffled := append([]bgp.ASN(nil), memberList...)
		g.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var rs []bgp.ASN
		for _, m := range shuffled {
			if len(rs) >= rsMembers {
				break
			}
			if g.rng.Float64() < joinProb(g.t.ASes[m].Policy) {
				rs = append(rs, m)
			}
		}
		// Pad if the probabilistic pass fell short of the target.
		for _, m := range shuffled {
			if len(rs) >= rsMembers {
				break
			}
			if !containsUnsorted(rs, m) {
				rs = append(rs, m)
			}
		}

		var scheme ixp.Scheme
		if prof.Style == StylePrivateRange {
			scheme = ixp.PrivateRangeScheme(prof.RSASN)
		} else {
			scheme = ixp.StandardScheme(prof.RSASN)
		}
		info := &ixp.Info{
			Name:                prof.Name,
			Region:              prof.Region,
			Scheme:              scheme,
			Members:             memberList,
			RSMembers:           rs,
			HasLG:               prof.HasLG,
			PublishesMemberList: prof.PublishesMemberList,
			StripsCommunities:   prof.StripsCommunities,
			Transparent:         true,
			FlatFee:             prof.FlatFee,
		}
		g.t.IXPs = append(g.t.IXPs, info)

		// PeeringDB registration for members.
		for _, m := range memberList {
			as := g.t.ASes[m]
			if !as.Registered {
				as.Registered = g.rng.Float64() < g.cfg.RegisteredFrac || as.Content
			}
		}
	}
}

func containsUnsorted(list []bgp.ASN, x bgp.ASN) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}

// weightedSample draws k distinct items from pool proportionally to
// weights.
func (g *generator) weightedSample(pool []bgp.ASN, weights []float64, k int) []bgp.ASN {
	if k > len(pool) {
		k = len(pool)
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	w := append([]float64(nil), weights...)
	total := 0.0
	for _, v := range w {
		total += v
	}
	out := make([]bgp.ASN, 0, k)
	for len(out) < k && total > 1e-12 {
		x := g.rng.Float64() * total
		for j, i := range idx {
			x -= w[j]
			if x <= 0 && w[j] > 0 {
				out = append(out, pool[i])
				total -= w[j]
				// Swap-remove.
				last := len(idx) - 1
				idx[j], idx[last] = idx[last], idx[j]
				w[j], w[last] = w[last], w[j]
				idx = idx[:last]
				w = w[:last]
				break
			}
		}
	}
	return out
}
