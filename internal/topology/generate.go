package topology

import (
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/peeringdb"
)

// Generate builds a deterministic synthetic world from cfg, running the
// scenario named by cfg.Scenario (the paper's baseline world when
// empty).
func Generate(cfg Config) (*Topology, error) {
	sc, ok := LookupScenario(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("topology: unknown scenario %q (have %v)", cfg.Scenario, ScenarioNames())
	}
	return sc.Generate(cfg)
}

// --- Baseline stages --------------------------------------------------
//
// Each stage is a pure transform over the Builder's dense world. The
// baseline stage list reproduces the paper's world; scenarios splice
// additional stages in between (see scenarios.go).

func (b *Builder) allocateASes() {
	cfg := b.Cfg
	n := cfg.NumASes
	if n == 0 {
		// Pool sized so that IXP membership targets are satisfiable
		// with realistic reuse across IXPs.
		slots := 0
		for _, p := range cfg.Profiles {
			slots += cfg.scaled(p.Members)
		}
		n = slots*3/2 + 400
	}
	used := b.usedASNs()
	next := bgp.ASN(1000)
	next32 := bgp.ASN(196800)
	alloc := func(want32 bool) bgp.ASN {
		for {
			var a bgp.ASN
			if want32 {
				a = next32
				next32 += bgp.ASN(1 + b.rng.Intn(23))
			} else {
				a = next
				next += bgp.ASN(1 + b.rng.Intn(29))
				if next >= bgp.FirstReserved32 {
					// 16-bit space exhausted at huge scales; spill to 32-bit.
					want32 = true
					continue
				}
			}
			if !used[a] && a.Routable() {
				used[a] = true
				return a
			}
		}
	}

	regionDist := []struct {
		r ixp.Region
		w int
	}{
		{ixp.RegionWestEU, 26}, {ixp.RegionEastEU, 20}, {ixp.RegionNorthEU, 9},
		{ixp.RegionSouthEU, 13}, {ixp.RegionNorthAmerica, 16},
		{ixp.RegionAsiaPacific, 10}, {ixp.RegionLatinAmerica, 4}, {ixp.RegionAfrica, 2},
	}
	pickRegion := func() ixp.Region {
		total := 0
		for _, rd := range regionDist {
			total += rd.w
		}
		x := b.rng.Intn(total)
		for _, rd := range regionDist {
			if x < rd.w {
				return rd.r
			}
			x -= rd.w
		}
		return ixp.RegionWestEU
	}

	numT2 := int(float64(n) * cfg.TransitFrac)
	for i := 0; i < n; i++ {
		want32 := b.rng.Float64() < 0.07 && i >= cfg.NumTier1
		as := AS{ASN: alloc(want32)}
		switch {
		case i < cfg.NumTier1:
			as.Tier = Tier1
			as.Region = ixp.RegionWestEU
			if i%3 == 0 {
				as.Region = ixp.RegionNorthAmerica
			}
			as.Scope = peeringdb.ScopeGlobal
			if b.rng.Float64() < 0.6 {
				as.Policy = peeringdb.PolicySelective
			} else {
				as.Policy = peeringdb.PolicyRestrictive
			}
			b.tier1 = append(b.tier1, as.ASN)
		case i < cfg.NumTier1+cfg.NumContent:
			as.Tier = Tier2
			as.Content = true
			as.Region = ixp.RegionWestEU
			as.Scope = peeringdb.ScopeGlobal
			as.Policy = peeringdb.PolicyOpen
			b.content = append(b.content, as.ASN)
		case i < cfg.NumTier1+cfg.NumContent+numT2:
			as.Tier = Tier2
			as.Region = pickRegion()
			switch r := b.rng.Float64(); {
			case r < 0.25:
				as.Scope = peeringdb.ScopeGlobal
			case r < 0.65 && as.Region.IsEurope():
				as.Scope = peeringdb.ScopeEurope
			default:
				as.Scope = peeringdb.ScopeRegional
			}
			switch r := b.rng.Float64(); {
			case r < 0.55:
				as.Policy = peeringdb.PolicyOpen
			case r < 0.90:
				as.Policy = peeringdb.PolicySelective
			default:
				as.Policy = peeringdb.PolicyRestrictive
			}
			b.tier2 = append(b.tier2, as.ASN)
		default:
			as.Tier = TierStub
			as.Region = pickRegion()
			switch r := b.rng.Float64(); {
			case r < 0.12 && as.Region.IsEurope():
				as.Scope = peeringdb.ScopeEurope
			default:
				as.Scope = peeringdb.ScopeRegional
			}
			switch r := b.rng.Float64(); {
			case r < 0.80:
				as.Policy = peeringdb.PolicyOpen
			case r < 0.96:
				as.Policy = peeringdb.PolicySelective
			default:
				as.Policy = peeringdb.PolicyRestrictive
			}
			b.stubs = append(b.stubs, as.ASN)
		}
		as.Name = fmt.Sprintf("AS%s-%s", as.ASN, as.Region)
		as.StripsCommunities = b.rng.Float64() < cfg.StripProb
		as.OmitsDefaultALL = b.rng.Float64() < 0.30
		b.Add(as)
	}
	sort.Slice(b.Order, func(i, j int) bool { return b.Order[i] < b.Order[j] })
}

func (b *Builder) buildHierarchy() {
	// Tier-1 clique: full mesh of p2p.
	for i, a := range b.tier1 {
		for _, x := range b.tier1[i+1:] {
			b.Peer(a, x)
		}
	}
	// Tier-2 (incl. content) attach to 1-3 tier-1 providers with
	// preferential attachment (weight = current customer count + 1).
	attach := func(asn bgp.ASN, pool []bgp.ASN, k int, regionAffine bool) {
		as := b.AS(asn)
		chosen := make(map[bgp.ASN]bool)
		for len(chosen) < k && len(chosen) < len(pool) {
			total := 0.0
			weights := make([]float64, len(pool))
			for i, p := range pool {
				if chosen[p] || p == asn {
					continue
				}
				w := float64(len(b.AS(p).Customers) + 1)
				if regionAffine && b.AS(p).Region == as.Region {
					w *= 8
				}
				weights[i] = w
				total += w
			}
			if total == 0 {
				break
			}
			x := b.rng.Float64() * total
			for i, p := range pool {
				x -= weights[i]
				if x <= 0 && weights[i] > 0 {
					chosen[p] = true
					b.Link(asn, p)
					break
				}
			}
		}
	}
	for _, asn := range b.tier2 {
		attach(asn, b.tier1, 1+b.rng.Intn(3), false)
	}
	for _, asn := range b.content {
		attach(asn, b.tier1, 2+b.rng.Intn(2), false)
	}
	for _, asn := range b.stubs {
		// Stubs are predominantly multihomed to same-region transits;
		// several of a stub's providers meeting at the regional IXP is
		// what makes its prefixes multi-advertised there (Fig. 5).
		attach(asn, b.tier2, 2+b.rng.Intn(2), true)
	}
}

func (b *Builder) addSiblings() {
	// ~1% of tier-2s form sibling pairs with a same-region tier-2.
	n := len(b.tier2) / 100
	for i := 0; i < n; i++ {
		a := b.tier2[b.rng.Intn(len(b.tier2))]
		c := b.tier2[b.rng.Intn(len(b.tier2))]
		if a == c || b.AS(a).Region != b.AS(c).Region {
			continue
		}
		x, y := b.AS(a), b.AS(c)
		x.Siblings = insertASN(x.Siblings, c)
		y.Siblings = insertASN(y.Siblings, a)
	}
}

func (b *Builder) addPrivatePeering() {
	// Sparse bilateral private peering between same-region tier-2s.
	for i, a := range b.tier2 {
		for _, c := range b.tier2[i+1:] {
			if b.AS(a).Region != b.AS(c).Region {
				continue
			}
			if b.rng.Float64() < 0.015 {
				b.Peer(a, c)
			}
		}
	}
	// Content networks peer privately with a slice of the transit tier:
	// these private interconnects are why content ASes get EXCLUDEd at
	// route servers (§5.5).
	for _, c := range b.content {
		for _, x := range b.tier2 {
			if b.AS(x).Content {
				continue
			}
			if b.rng.Float64() < 0.10 {
				b.Peer(c, x)
			}
		}
	}
}

func (b *Builder) assignPrefixes() {
	for _, asn := range b.Order {
		as := b.AS(asn)
		var n int
		switch {
		case as.Content:
			n = 8 + b.rng.Intn(12)
		case as.Tier == Tier1:
			n = 10 + b.rng.Intn(14)
		case as.Tier == Tier2:
			n = 1 + b.rng.Intn(2*b.Cfg.MeanPrefixesTransit)
		default:
			n = 1 + b.rng.Intn(2*b.Cfg.MeanPrefixesStub)
		}
		for i := 0; i < n; i++ {
			bits := 24
			if b.rng.Float64() < 0.3 {
				bits = 22
			}
			region := as.Region
			if as.Content || as.Tier == Tier1 {
				// Global networks originate prefixes everywhere; this
				// is what makes "geographically distant" validation
				// prefixes meaningful.
				region = ixp.Region(b.rng.Intn(ixp.NumRegions))
			}
			as.Prefixes = append(as.Prefixes, b.allocPrefix(bits, region))
		}
	}
}

// eligible returns the membership candidate pool for an IXP region.
func (b *Builder) eligible(region ixp.Region) []bgp.ASN {
	var out []bgp.ASN
	for _, asn := range b.Order {
		as := b.AS(asn)
		switch {
		case as.Content:
			out = append(out, asn)
		case as.Region == region:
			out = append(out, asn)
		case as.Scope == peeringdb.ScopeGlobal:
			out = append(out, asn)
		case as.Scope == peeringdb.ScopeEurope && region.IsEurope():
			out = append(out, asn)
		}
	}
	return out
}

func (b *Builder) buildIXPs() {
	for _, prof := range b.Cfg.Profiles {
		members := b.Cfg.scaled(prof.Members)
		rsMembers := b.Cfg.scaled(prof.RSMembers)
		if rsMembers > members {
			rsMembers = members
		}
		pool := b.eligible(prof.Region)
		weights := make([]float64, len(pool))
		for i, asn := range pool {
			as := b.AS(asn)
			switch {
			case as.Content:
				weights[i] = 40
			case as.Tier == Tier1:
				weights[i] = 6
			case as.Tier == Tier2 && as.Region == prof.Region:
				weights[i] = 8
			case as.Tier == Tier2:
				weights[i] = 3
			case as.Region == prof.Region:
				weights[i] = 2.5
			default:
				weights[i] = 0.4
			}
		}
		// Sample in two passes: first the backbone of the membership,
		// then a co-location pass that prefers customers of already
		// selected transit members. ISPs bring their cones to the
		// exchange, and both provider and customer announcing the same
		// customer prefixes to the route server is what produces the
		// multi-advertiser prefixes of Fig. 5.
		memberList := weightedSample(b.rng, pool, weights, members*3/5)
		selected := make(map[bgp.ASN]bool, len(memberList))
		for _, m := range memberList {
			selected[m] = true
		}
		var pool2 []bgp.ASN
		var weights2 []float64
		for i, asn := range pool {
			if selected[asn] {
				continue
			}
			w := weights[i]
			for _, p := range b.AS(asn).Providers {
				if selected[p] {
					// Weight accumulates per co-located provider:
					// multihomed customers of several members are the
					// strongest multi-advertiser source.
					w += 25
				}
			}
			pool2 = append(pool2, asn)
			weights2 = append(weights2, w)
		}
		memberList = append(memberList, weightedSample(b.rng, pool2, weights2, members-len(memberList))...)

		// RS membership: weighted by actual peering policy (Fig. 9).
		joinProb := func(p peeringdb.Policy) float64 {
			switch p {
			case peeringdb.PolicyOpen:
				return 0.92
			case peeringdb.PolicySelective:
				return 0.75
			case peeringdb.PolicyRestrictive:
				return 0.43
			default:
				return 0.80
			}
		}
		shuffled := append([]bgp.ASN(nil), memberList...)
		b.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var rs []bgp.ASN
		for _, m := range shuffled {
			if len(rs) >= rsMembers {
				break
			}
			if b.rng.Float64() < joinProb(b.AS(m).Policy) {
				rs = append(rs, m)
			}
		}
		// Pad if the probabilistic pass fell short of the target.
		for _, m := range shuffled {
			if len(rs) >= rsMembers {
				break
			}
			if !containsUnsorted(rs, m) {
				rs = append(rs, m)
			}
		}

		var scheme ixp.Scheme
		if prof.Style == StylePrivateRange {
			scheme = ixp.PrivateRangeScheme(prof.RSASN)
		} else {
			scheme = ixp.StandardScheme(prof.RSASN)
		}
		info := &ixp.Info{
			Name:                prof.Name,
			Region:              prof.Region,
			Scheme:              scheme,
			Members:             memberList,
			RSMembers:           rs,
			HasLG:               prof.HasLG,
			PublishesMemberList: prof.PublishesMemberList,
			StripsCommunities:   prof.StripsCommunities,
			Transparent:         true,
			FlatFee:             prof.FlatFee,
		}
		b.IXPs = append(b.IXPs, info)

		// PeeringDB registration for members.
		for _, m := range memberList {
			as := b.AS(m)
			if !as.Registered {
				as.Registered = b.rng.Float64() < b.Cfg.RegisteredFrac || as.Content
			}
		}
	}
}

func containsUnsorted(list []bgp.ASN, x bgp.ASN) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}
