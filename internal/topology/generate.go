package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/peeringdb"
)

// Generate builds a deterministic synthetic world from cfg, running the
// scenario named by cfg.Scenario (the paper's baseline world when
// empty).
func Generate(cfg Config) (*Topology, error) {
	sc, ok := LookupScenario(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("topology: unknown scenario %q (have %v)", cfg.Scenario, ScenarioNames())
	}
	return sc.Generate(cfg)
}

// --- Baseline stages --------------------------------------------------
//
// Each stage is a pure transform over the Builder's dense world. The
// baseline stage list reproduces the paper's world; scenarios splice
// additional stages in between (see scenarios.go).

func (b *Builder) allocateASes() {
	cfg := b.Cfg
	n := cfg.NumASes
	if n == 0 {
		// Pool sized so that IXP membership targets are satisfiable
		// with realistic reuse across IXPs.
		slots := 0
		for _, p := range cfg.Profiles {
			slots += cfg.memberTarget(p)
		}
		n = slots*3/2 + 400
	}
	used := b.usedASNs()
	next := bgp.ASN(1000)
	next32 := bgp.ASN(196800)
	alloc := func(want32 bool) bgp.ASN {
		for {
			var a bgp.ASN
			if want32 {
				a = next32
				next32 += bgp.ASN(1 + b.rng.Intn(23))
			} else {
				a = next
				next += bgp.ASN(1 + b.rng.Intn(29))
				if next >= bgp.FirstReserved32 {
					// 16-bit space exhausted at huge scales; spill to 32-bit.
					want32 = true
					continue
				}
			}
			if !used[a] && a.Routable() {
				used[a] = true
				return a
			}
		}
	}

	// AS population skew, leaning European like the measured ecosystem.
	regionDist := []regionWeight{
		{ixp.RegionWestEU, 26}, {ixp.RegionEastEU, 20}, {ixp.RegionNorthEU, 9},
		{ixp.RegionSouthEU, 13}, {ixp.RegionNorthAmerica, 16},
		{ixp.RegionAsiaPacific, 10}, {ixp.RegionLatinAmerica, 4}, {ixp.RegionAfrica, 2},
	}
	pickRegion := func() ixp.Region { return pickWeightedRegion(b.rng, regionDist) }

	numT2 := int(float64(n) * cfg.TransitFrac)
	for i := 0; i < n; i++ {
		want32 := b.rng.Float64() < 0.07 && i >= cfg.NumTier1
		as := AS{ASN: alloc(want32)}
		switch {
		case i < cfg.NumTier1:
			as.Tier = Tier1
			as.Region = ixp.RegionWestEU
			if i%3 == 0 {
				as.Region = ixp.RegionNorthAmerica
			}
			as.Scope = peeringdb.ScopeGlobal
			if b.rng.Float64() < 0.6 {
				as.Policy = peeringdb.PolicySelective
			} else {
				as.Policy = peeringdb.PolicyRestrictive
			}
			b.tier1 = append(b.tier1, as.ASN)
		case i < cfg.NumTier1+cfg.NumContent:
			as.Tier = Tier2
			as.Content = true
			as.Region = ixp.RegionWestEU
			as.Scope = peeringdb.ScopeGlobal
			as.Policy = peeringdb.PolicyOpen
			b.content = append(b.content, as.ASN)
		case i < cfg.NumTier1+cfg.NumContent+numT2:
			as.Tier = Tier2
			as.Region = pickRegion()
			switch r := b.rng.Float64(); {
			case r < 0.25:
				as.Scope = peeringdb.ScopeGlobal
			case r < 0.65 && as.Region.IsEurope():
				as.Scope = peeringdb.ScopeEurope
			default:
				as.Scope = peeringdb.ScopeRegional
			}
			switch r := b.rng.Float64(); {
			case r < 0.55:
				as.Policy = peeringdb.PolicyOpen
			case r < 0.90:
				as.Policy = peeringdb.PolicySelective
			default:
				as.Policy = peeringdb.PolicyRestrictive
			}
			b.tier2 = append(b.tier2, as.ASN)
		default:
			as.Tier = TierStub
			as.Region = pickRegion()
			switch r := b.rng.Float64(); {
			case r < 0.12 && as.Region.IsEurope():
				as.Scope = peeringdb.ScopeEurope
			default:
				as.Scope = peeringdb.ScopeRegional
			}
			switch r := b.rng.Float64(); {
			case r < 0.80:
				as.Policy = peeringdb.PolicyOpen
			case r < 0.96:
				as.Policy = peeringdb.PolicySelective
			default:
				as.Policy = peeringdb.PolicyRestrictive
			}
			b.stubs = append(b.stubs, as.ASN)
		}
		as.Name = fmt.Sprintf("AS%s-%s", as.ASN, as.Region)
		as.StripsCommunities = b.rng.Float64() < cfg.StripProb
		as.OmitsDefaultALL = b.rng.Float64() < 0.30
		id := b.Add(as)
		switch {
		case as.Tier == Tier1:
			b.tier1IDs = append(b.tier1IDs, id)
		case as.Content:
			b.contentIDs = append(b.contentIDs, id)
		case as.Tier == Tier2:
			b.tier2IDs = append(b.tier2IDs, id)
		default:
			b.stubIDs = append(b.stubIDs, id)
		}
	}
	sort.Slice(b.Order, func(i, j int) bool { return b.Order[i] < b.Order[j] })
	b.orderIDs = make([]int32, len(b.Order))
	for i, asn := range b.Order {
		b.orderIDs[i] = b.byASN[asn]
	}
}

func (b *Builder) buildHierarchy() {
	// Tier-1 clique: full mesh of p2p.
	for i, a := range b.tier1 {
		for _, x := range b.tier1[i+1:] {
			b.Peer(a, x)
		}
	}
	// Tier-2 (incl. content) attach to 1-3 tier-1 providers with
	// preferential attachment (weight = current customer count + 1).
	// The tier-1 pool is tiny, so a linear re-scan per choice is fine.
	attachSmall := func(id int32, pool []int32, k int) {
		asn := b.recs[id].ASN
		var chosen [4]int32
		nChosen := 0
		weights := make([]float64, len(pool))
		for nChosen < k && nChosen < len(pool) {
			total := 0.0
			for i, p := range pool {
				weights[i] = 0
				if p == id || containsID(chosen[:nChosen], p) {
					continue
				}
				weights[i] = float64(len(b.recs[p].Customers) + 1)
				total += weights[i]
			}
			if total == 0 {
				break
			}
			x := b.rng.Float64() * total
			for i, p := range pool {
				x -= weights[i]
				if x <= 0 && weights[i] > 0 {
					chosen[nChosen] = p
					nChosen++
					b.Link(asn, b.recs[p].ASN)
					break
				}
			}
		}
	}
	for _, id := range b.tier2IDs {
		attachSmall(id, b.tier1IDs, 1+b.rng.Intn(3))
	}
	for _, id := range b.contentIDs {
		attachSmall(id, b.tier1IDs, 2+b.rng.Intn(2))
	}

	// Stubs are predominantly multihomed to same-region transits;
	// several of a stub's providers meeting at the regional IXP is what
	// makes its prefixes multi-advertised there (Fig. 5). The stub pass
	// dominated generation at scale (O(stubs × tier2) weight re-scans
	// through ASN-keyed maps); it now samples through one Fenwick tree
	// per region, each holding every tier-2's preferential-attachment
	// weight with the ×8 same-region boost baked in, updated as links
	// land: O(stubs × log tier2).
	nt2 := len(b.tier2IDs)
	if nt2 == 0 {
		return
	}
	trees := make([]*fenwick, ixp.NumRegions)
	base := make([]float64, nt2)
	boost := make([]float64, nt2) // per-region multiplier row, reused
	for r := 0; r < ixp.NumRegions; r++ {
		trees[r] = newFenwick(nt2)
		for i, id := range b.tier2IDs {
			w := float64(len(b.recs[id].Customers) + 1)
			base[i] = w
			if b.recs[id].Region == ixp.Region(r) {
				w *= 8
			}
			boost[i] = w
		}
		trees[r].build(boost)
	}
	mult := func(i int, r ixp.Region) float64 {
		if b.recs[b.tier2IDs[i]].Region == r {
			return 8
		}
		return 1
	}
	for _, sid := range b.stubIDs {
		k := 2 + b.rng.Intn(2)
		region := b.recs[sid].Region
		tree := trees[region]
		var chosen [4]int
		nChosen := 0
		for nChosen < k && nChosen < nt2 {
			total := tree.Total()
			if total <= 1e-12 {
				break
			}
			i := tree.Find(b.rng.Float64() * total)
			if containsInt(chosen[:nChosen], i) {
				// Removing a chosen entry subtracts its float weight,
				// which can leave a tiny residue in the tree; a draw
				// landing in that residue must not re-pick (and
				// double-subtract) the entry.
				break
			}
			chosen[nChosen] = i
			nChosen++
			b.Link(b.recs[sid].ASN, b.recs[b.tier2IDs[i]].ASN)
			// Remove from this stub's remaining choices.
			tree.Add(i, -base[i]*mult(i, region))
		}
		// Restore the chosen entries with their weight grown by the new
		// customer link, and propagate that growth to every region tree.
		for c := 0; c < nChosen; c++ {
			i := chosen[c]
			old := base[i]
			base[i] = old + 1
			for r := 0; r < ixp.NumRegions; r++ {
				m := mult(i, ixp.Region(r))
				if r == int(region) {
					trees[r].Add(i, base[i]*m) // was removed entirely
				} else {
					trees[r].Add(i, m) // weight grew by 1·mult
				}
			}
		}
	}
}

func containsID(ids []int32, x int32) bool {
	for _, v := range ids {
		if v == x {
			return true
		}
	}
	return false
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (b *Builder) addSiblings() {
	// ~1% of tier-2s form sibling pairs with a same-region tier-2.
	n := len(b.tier2) / 100
	for i := 0; i < n; i++ {
		a := b.tier2[b.rng.Intn(len(b.tier2))]
		c := b.tier2[b.rng.Intn(len(b.tier2))]
		if a == c || b.AS(a).Region != b.AS(c).Region {
			continue
		}
		x, y := b.AS(a), b.AS(c)
		x.Siblings = insertASN(x.Siblings, c)
		y.Siblings = insertASN(y.Siblings, a)
	}
}

func (b *Builder) addPrivatePeering() {
	// Sparse bilateral private peering between same-region tier-2s.
	for i, a := range b.tier2 {
		for _, c := range b.tier2[i+1:] {
			if b.AS(a).Region != b.AS(c).Region {
				continue
			}
			if b.rng.Float64() < 0.015 {
				b.Peer(a, c)
			}
		}
	}
	// Content networks peer privately with a slice of the transit tier:
	// these private interconnects are why content ASes get EXCLUDEd at
	// route servers (§5.5).
	for _, c := range b.content {
		for _, x := range b.tier2 {
			if b.AS(x).Content {
				continue
			}
			if b.rng.Float64() < 0.10 {
				b.Peer(c, x)
			}
		}
	}
}

func (b *Builder) assignPrefixes() {
	for _, asn := range b.Order {
		as := b.AS(asn)
		var n int
		switch {
		case as.Content:
			n = 8 + b.rng.Intn(12)
		case as.Tier == Tier1:
			n = 10 + b.rng.Intn(14)
		case as.Tier == Tier2:
			n = 1 + b.rng.Intn(2*b.Cfg.MeanPrefixesTransit)
		default:
			n = 1 + b.rng.Intn(2*b.Cfg.MeanPrefixesStub)
		}
		for i := 0; i < n; i++ {
			bits := 24
			if b.rng.Float64() < 0.3 {
				bits = 22
			}
			region := as.Region
			if as.Content || as.Tier == Tier1 {
				// Global networks originate prefixes everywhere; this
				// is what makes "geographically distant" validation
				// prefixes meaningful.
				region = ixp.Region(b.rng.Intn(ixp.NumRegions))
			}
			as.Prefixes = append(as.Prefixes, b.allocPrefix(bits, region))
		}
	}
}

// eligibleIDs returns the membership candidate pool for an IXP region,
// as dense ids in ascending-ASN order.
func (b *Builder) eligibleIDs(region ixp.Region) []int32 {
	out := make([]int32, 0, len(b.orderIDs))
	for _, id := range b.orderIDs {
		as := &b.recs[id]
		switch {
		case as.Content:
			out = append(out, id)
		case as.Region == region:
			out = append(out, id)
		case as.Scope == peeringdb.ScopeGlobal:
			out = append(out, id)
		case as.Scope == peeringdb.ScopeEurope && region.IsEurope():
			out = append(out, id)
		}
	}
	return out
}

// buildIXPs samples every profile's membership on the worker pool: one
// (stage, IXP) random stream each, reading only the fixed AS slab, with
// the membership commit (IXP append, PeeringDB registration) applied in
// profile order.
func (b *Builder) buildIXPs() {
	b.fanOut("ixps", len(b.Cfg.Profiles),
		func(i int) string { return b.Cfg.Profiles[i].Name },
		func(rng *rand.Rand, pi int) func() { return b.buildOneIXP(rng, b.Cfg.Profiles[pi]) })
}

func (b *Builder) buildOneIXP(rng *rand.Rand, prof IXPProfile) func() {
	members := b.Cfg.memberTarget(prof)
	rsMembers := b.Cfg.rsMemberTarget(prof)
	if rsMembers > members {
		rsMembers = members
	}
	pool := b.eligibleIDs(prof.Region)
	weights := make([]float64, len(pool))
	for i, id := range pool {
		as := &b.recs[id]
		switch {
		case as.Content:
			weights[i] = 40
		case as.Tier == Tier1:
			weights[i] = 6
		case as.Tier == Tier2 && as.Region == prof.Region:
			weights[i] = 8
		case as.Tier == Tier2:
			weights[i] = 3
		case as.Region == prof.Region:
			weights[i] = 2.5
		default:
			weights[i] = 0.4
		}
	}
	// Sample in two passes: first the backbone of the membership,
	// then a co-location pass that prefers customers of already
	// selected transit members. ISPs bring their cones to the
	// exchange, and both provider and customer announcing the same
	// customer prefixes to the route server is what produces the
	// multi-advertiser prefixes of Fig. 5.
	memberIDs := weightedSampleIDs(rng, pool, weights, members*3/5)
	s := b.scratch()
	selected := s.member
	for _, id := range memberIDs {
		selected[id] = true
	}
	pool2 := make([]int32, 0, len(pool)-len(memberIDs))
	weights2 := make([]float64, 0, len(pool)-len(memberIDs))
	for i, id := range pool {
		if selected[id] {
			continue
		}
		w := weights[i]
		for _, p := range b.recs[id].Providers {
			if pid, ok := b.byASN[p]; ok && selected[pid] {
				// Weight accumulates per co-located provider:
				// multihomed customers of several members are the
				// strongest multi-advertiser source.
				w += 25
			}
		}
		pool2 = append(pool2, id)
		weights2 = append(weights2, w)
	}
	memberIDs = append(memberIDs, weightedSampleIDs(rng, pool2, weights2, members-len(memberIDs))...)
	clearMarks(selected, memberIDs)
	b.release(s)

	memberList := make([]bgp.ASN, len(memberIDs))
	for i, id := range memberIDs {
		memberList[i] = b.recs[id].ASN
	}

	// RS membership: weighted by actual peering policy (Fig. 9).
	joinProb := func(p peeringdb.Policy) float64 {
		switch p {
		case peeringdb.PolicyOpen:
			return 0.92
		case peeringdb.PolicySelective:
			return 0.75
		case peeringdb.PolicyRestrictive:
			return 0.43
		default:
			return 0.80
		}
	}
	shuffled := append([]bgp.ASN(nil), memberList...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var rs []bgp.ASN
	for _, m := range shuffled {
		if len(rs) >= rsMembers {
			break
		}
		if rng.Float64() < joinProb(b.AS(m).Policy) {
			rs = append(rs, m)
		}
	}
	// Pad if the probabilistic pass fell short of the target.
	for _, m := range shuffled {
		if len(rs) >= rsMembers {
			break
		}
		if !containsUnsorted(rs, m) {
			rs = append(rs, m)
		}
	}

	var scheme ixp.Scheme
	if prof.Style == StylePrivateRange {
		scheme = ixp.PrivateRangeScheme(prof.RSASN)
	} else {
		scheme = ixp.StandardScheme(prof.RSASN)
	}
	info := &ixp.Info{
		Name:                prof.Name,
		Region:              prof.Region,
		Scheme:              scheme,
		Members:             memberList,
		RSMembers:           rs,
		HasLG:               prof.HasLG,
		PublishesMemberList: prof.PublishesMemberList,
		StripsCommunities:   prof.StripsCommunities,
		Transparent:         true,
		FlatFee:             prof.FlatFee,
	}

	// PeeringDB registration draws happen here, unconditionally, so
	// they cannot depend on what other IXPs committed; the commit
	// applies them only to members still unregistered at its turn.
	regDraw := make([]bool, len(memberList))
	for i := range memberList {
		regDraw[i] = rng.Float64() < b.Cfg.RegisteredFrac
	}

	return func() {
		b.IXPs = append(b.IXPs, info)
		for i, m := range memberList {
			as := b.AS(m)
			if !as.Registered {
				as.Registered = regDraw[i] || as.Content
			}
		}
	}
}

func containsUnsorted(list []bgp.ASN, x bgp.ASN) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}
