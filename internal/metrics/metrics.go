// Package metrics provides the small statistics and rendering toolkit
// the experiment harness uses: empirical CDF/CCDFs, quantiles, and
// fixed-width table rendering for paper-versus-measured comparisons.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a renderable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Series is a named sequence of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Distribution summarizes an empirical sample.
type Distribution struct {
	values []float64 // sorted
}

// NewDistribution builds a distribution from a sample.
func NewDistribution(sample []float64) *Distribution {
	v := append([]float64(nil), sample...)
	sort.Float64s(v)
	return &Distribution{values: v}
}

// NewDistributionInts builds a distribution from integers.
func NewDistributionInts(sample []int) *Distribution {
	v := make([]float64, len(sample))
	for i, x := range sample {
		v[i] = float64(x)
	}
	return NewDistribution(v)
}

// NewDistributionInt64s builds a distribution from int64 samples
// (latency nanoseconds and other counter-sized measurements).
func NewDistributionInt64s(sample []int64) *Distribution {
	v := make([]float64, len(sample))
	for i, x := range sample {
		v[i] = float64(x)
	}
	return NewDistribution(v)
}

// Len returns the sample size.
func (d *Distribution) Len() int { return len(d.values) }

// Max returns the largest sample (0 for empty).
func (d *Distribution) Max() float64 {
	if len(d.values) == 0 {
		return 0
	}
	return d.values[len(d.values)-1]
}

// Mean returns the sample mean (0 for empty).
func (d *Distribution) Mean() float64 {
	if len(d.values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.values {
		s += v
	}
	return s / float64(len(d.values))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank.
func (d *Distribution) Quantile(q float64) float64 {
	if len(d.values) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return d.values[0]
	}
	if q >= 1 {
		return d.values[len(d.values)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.values[idx]
}

// FracAtLeast returns the fraction of samples ≥ x.
func (d *Distribution) FracAtLeast(x float64) float64 {
	if len(d.values) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(d.values, x)
	return float64(len(d.values)-i) / float64(len(d.values))
}

// FracAtMost returns the fraction of samples ≤ x.
func (d *Distribution) FracAtMost(x float64) float64 {
	if len(d.values) == 0 {
		return 0
	}
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
	return float64(i) / float64(len(d.values))
}

// CDF returns the empirical CDF evaluated at each distinct value.
func (d *Distribution) CDF(name string) *Series {
	s := &Series{Name: name}
	n := float64(len(d.values))
	for i := 0; i < len(d.values); {
		j := i
		for j < len(d.values) && d.values[j] == d.values[i] {
			j++
		}
		s.X = append(s.X, d.values[i])
		s.Y = append(s.Y, float64(j)/n)
		i = j
	}
	return s
}

// CCDF returns the complementary CDF: P(X >= x) at each distinct value.
func (d *Distribution) CCDF(name string) *Series {
	s := &Series{Name: name}
	n := float64(len(d.values))
	for i := 0; i < len(d.values); {
		j := i
		for j < len(d.values) && d.values[j] == d.values[i] {
			j++
		}
		s.X = append(s.X, d.values[i])
		s.Y = append(s.Y, float64(len(d.values)-i)/n)
		i = j
	}
	return s
}

// RenderSeries prints a compact multi-column listing of series points.
func RenderSeries(w io.Writer, series ...*Series) {
	for _, s := range series {
		fmt.Fprintf(w, "# %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(w, "%g\t%g\n", s.X[i], s.Y[i])
		}
		fmt.Fprintln(w)
	}
}

// Histogram counts samples into labeled integer bins.
type Histogram struct {
	Counts map[int]int
}

// NewHistogram builds a histogram from integer samples.
func NewHistogram(samples []int) *Histogram {
	h := &Histogram{Counts: make(map[int]int)}
	for _, s := range samples {
		h.Counts[s]++
	}
	return h
}

// Total returns the number of samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Frac returns the fraction of samples in bin b.
func (h *Histogram) Frac(b int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(t)
}

// Bins returns the occupied bins in ascending order.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Ratio guards against division by zero.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
