package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"IXP", "Links"}}
	tbl.AddRow("DE-CIX", 54082)
	tbl.AddRow("AMS-IX", 49249)
	tbl.Notes = append(tbl.Notes, "synthetic")
	s := tbl.String()
	for _, want := range []string{"T\n=", "IXP", "54082", "note: synthetic"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestDistributionBasics(t *testing.T) {
	d := NewDistributionInts([]int{1, 2, 2, 3, 10})
	if d.Len() != 5 {
		t.Fatal("len")
	}
	if m := d.Mean(); math.Abs(m-3.6) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if q := d.Quantile(0.5); q != 2 {
		t.Fatalf("median = %v", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Fatalf("min = %v", q)
	}
	if q := d.Quantile(1); q != 10 {
		t.Fatalf("max = %v", q)
	}
	if f := d.FracAtLeast(2); math.Abs(f-0.8) > 1e-9 {
		t.Fatalf("FracAtLeast(2) = %v", f)
	}
	if f := d.FracAtMost(2); math.Abs(f-0.6) > 1e-9 {
		t.Fatalf("FracAtMost(2) = %v", f)
	}
	if !math.IsNaN(NewDistribution(nil).Quantile(0.5)) {
		t.Fatal("empty quantile")
	}
}

func TestCDFAndCCDF(t *testing.T) {
	d := NewDistributionInts([]int{1, 1, 2, 4})
	cdf := d.CDF("cdf")
	if len(cdf.X) != 3 || cdf.X[0] != 1 || cdf.Y[0] != 0.5 || cdf.Y[2] != 1.0 {
		t.Fatalf("cdf = %+v", cdf)
	}
	ccdf := d.CCDF("ccdf")
	if ccdf.Y[0] != 1.0 || ccdf.Y[1] != 0.5 || ccdf.Y[2] != 0.25 {
		t.Fatalf("ccdf = %+v", ccdf)
	}
	var sb strings.Builder
	RenderSeries(&sb, cdf, ccdf)
	if !strings.Contains(sb.String(), "# cdf") || !strings.Contains(sb.String(), "# ccdf") {
		t.Fatal("render")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ints := make([]int, len(raw))
		for i, v := range raw {
			ints[i] = int(v)
		}
		d := NewDistributionInts(ints)
		cdf := d.CDF("x")
		for i := 1; i < len(cdf.Y); i++ {
			if cdf.Y[i] < cdf.Y[i-1] || cdf.X[i] <= cdf.X[i-1] {
				return false
			}
		}
		return len(cdf.Y) == 0 || math.Abs(cdf.Y[len(cdf.Y)-1]-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{0, 1, 1, 3})
	if h.Total() != 4 || h.Frac(1) != 0.5 {
		t.Fatalf("%+v", h)
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 0 || bins[2] != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if NewHistogram(nil).Frac(1) != 0 {
		t.Fatal("empty histogram")
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.984) != "98.4%" {
		t.Fatalf("Pct = %s", Pct(0.984))
	}
	if Ratio(1, 0) != 0 || Ratio(1, 2) != 0.5 {
		t.Fatal("Ratio")
	}
}

func TestDistributionInt64sAndMax(t *testing.T) {
	d := NewDistributionInt64s([]int64{50, 10, 30})
	if d.Len() != 3 || d.Mean() != 30 || d.Max() != 50 {
		t.Fatalf("len/mean/max = %d/%v/%v", d.Len(), d.Mean(), d.Max())
	}
	if d.Quantile(0.5) != 30 {
		t.Fatalf("median = %v", d.Quantile(0.5))
	}
	if NewDistributionInt64s(nil).Max() != 0 {
		t.Fatal("empty max")
	}
}
