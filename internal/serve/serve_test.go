package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/churn"
	"mlpeering/internal/core"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// testResult builds a small deterministic inference: DE-CIX with four
// fully-open members (six links) and AMS-IX re-confirming one pair, so
// the fixture exercises multi-IXP attribution.
func testResult(t *testing.T) (*core.Dictionary, *core.Result) {
	t.Helper()
	sites := []core.WebsiteData{
		{
			Name:                "DE-CIX",
			Scheme:              ixp.StandardScheme(6695),
			PublishedRSMembers:  []bgp.ASN{64500, 64501, 64502, 64503},
			PublishesMemberList: true,
		},
		{
			Name:                "AMS-IX",
			Scheme:              ixp.StandardScheme(6777),
			PublishedRSMembers:  []bgp.ASN{64500, 64501, 64504},
			PublishesMemberList: true,
		},
	}
	dict, err := core.BuildDictionary(sites, nil)
	if err != nil {
		t.Fatalf("BuildDictionary: %v", err)
	}
	obs := core.NewObservations()
	open6695, err := bgp.ParseCommunities("6695:6695")
	if err != nil {
		t.Fatalf("ParseCommunities: %v", err)
	}
	open6777, err := bgp.ParseCommunities("6777:6777")
	if err != nil {
		t.Fatalf("ParseCommunities: %v", err)
	}
	for i, asn := range []bgp.ASN{64500, 64501, 64502, 64503} {
		obs.Add("DE-CIX", asn, bgp.MustPrefix(fmt.Sprintf("10.%d.0.0/16", i)), open6695, core.ObsPassive)
	}
	for i, asn := range []bgp.ASN{64500, 64501} {
		obs.Add("AMS-IX", asn, bgp.MustPrefix(fmt.Sprintf("10.%d.0.0/16", i)), open6777, core.ObsPassive)
	}
	return dict, core.InferLinks(dict, obs)
}

// testWindow wraps a result in a PassiveWindow at a fixed instant.
func testWindow(res *core.Result, n int) *core.PassiveWindow {
	start := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(n) * 10 * time.Minute)
	return &core.PassiveWindow{
		Start:      start,
		End:        start.Add(10 * time.Minute),
		Announced:  40 + n,
		Withdrawn:  3,
		LiveRoutes: 120,
		RelLinks:   9,
		P2PRels:    7,
		Stability:  1,
		CloseTime:  17 * time.Millisecond,
		Result:     res,
	}
}

// testGateway builds a gateway with one published snapshot at epoch 1.
func testGateway(t *testing.T, res *core.Result) *Gateway {
	t.Helper()
	g := New(Config{MaxInFlight: 64, MaxAge: 0})
	committed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	g.publish(NewSnapshot(1, "test-world", testWindow(res, 0), committed))
	return g
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestGatewayConformance is the table-driven HTTP cache-semantics
// conformance suite from the issue: ETag stability within an epoch,
// ETag change across epochs, If-None-Match → 304 with empty body, and
// the status-code surface (503 pre-publish, 404, 400, 405, healthz).
func TestGatewayConformance(t *testing.T) {
	_, res := testResult(t)

	t.Run("pre-publish 503", func(t *testing.T) {
		g := New(Config{})
		rr := get(t, g.Handler(), "/v1/mesh", nil)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("pre-publish status = %d, want 503", rr.Code)
		}
		if rr.Header().Get("Retry-After") == "" {
			t.Fatalf("pre-publish 503 missing Retry-After")
		}
	})

	g := testGateway(t, res)
	h := g.Handler()

	first := get(t, h, "/v1/mesh", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("GET /v1/mesh = %d, want 200; body %s", first.Code, first.Body.String())
	}
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatalf("missing ETag")
	}
	if got := first.Header().Get("X-MLP-Epoch"); got != "1" {
		t.Fatalf("X-MLP-Epoch = %q, want 1", got)
	}
	if got := first.Header().Get("Cache-Control"); got != "public, no-cache" {
		t.Fatalf("Cache-Control = %q", got)
	}
	if lm := first.Header().Get("Last-Modified"); lm == "" {
		t.Fatalf("missing Last-Modified")
	} else if _, err := time.Parse(http.TimeFormat, lm); err != nil {
		t.Fatalf("Last-Modified %q not RFC1123 GMT: %v", lm, err)
	}
	if cl := first.Header().Get("Content-Length"); cl != strconv.Itoa(first.Body.Len()) {
		t.Fatalf("Content-Length %q != body %d", cl, first.Body.Len())
	}

	t.Run("etag stable within epoch", func(t *testing.T) {
		for i := 0; i < 3; i++ {
			rr := get(t, h, "/v1/mesh", nil)
			if rr.Header().Get("ETag") != etag {
				t.Fatalf("ETag drifted within epoch: %q vs %q", rr.Header().Get("ETag"), etag)
			}
			if rr.Body.String() != first.Body.String() {
				t.Fatalf("body drifted within epoch")
			}
		}
	})

	t.Run("conditional requests", func(t *testing.T) {
		cases := []struct {
			name string
			inm  string
			want int
		}{
			{"exact match", etag, http.StatusNotModified},
			{"weak match", "W/" + etag, http.StatusNotModified},
			{"star", "*", http.StatusNotModified},
			{"in list", `"nope", ` + etag, http.StatusNotModified},
			{"stale tag", `"e0-0000000000000000"`, http.StatusOK},
			{"garbage", `zzz`, http.StatusOK},
		}
		for _, tc := range cases {
			rr := get(t, h, "/v1/mesh", map[string]string{"If-None-Match": tc.inm})
			if rr.Code != tc.want {
				t.Errorf("%s: status = %d, want %d", tc.name, rr.Code, tc.want)
			}
			if tc.want == http.StatusNotModified {
				if rr.Body.Len() != 0 {
					t.Errorf("%s: 304 carried a body (%d bytes)", tc.name, rr.Body.Len())
				}
				if rr.Header().Get("ETag") != etag {
					t.Errorf("%s: 304 missing ETag", tc.name)
				}
			}
		}
	})

	t.Run("etag changes across epochs", func(t *testing.T) {
		committed := time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)
		g.publish(NewSnapshot(2, "test-world", testWindow(res, 1), committed))
		rr := get(t, h, "/v1/mesh", map[string]string{"If-None-Match": etag})
		if rr.Code != http.StatusOK {
			t.Fatalf("stale-tag revalidation after epoch bump = %d, want 200", rr.Code)
		}
		if rr.Header().Get("ETag") == etag {
			t.Fatalf("ETag did not change across epochs (same mesh, new epoch)")
		}
		if got := rr.Header().Get("X-MLP-Epoch"); got != "2" {
			t.Fatalf("X-MLP-Epoch = %q, want 2", got)
		}
	})

	t.Run("status surface", func(t *testing.T) {
		cases := []struct {
			method, path string
			want         int
		}{
			{http.MethodGet, "/healthz", http.StatusOK},
			{http.MethodGet, "/v1/epoch", http.StatusOK},
			{http.MethodGet, "/v1/stats", http.StatusOK},
			{http.MethodGet, "/v1/ixps", http.StatusOK},
			{http.MethodGet, "/v1/ixp/DE-CIX", http.StatusOK},
			{http.MethodGet, "/v1/ixp/NO-SUCH", http.StatusNotFound},
			{http.MethodGet, "/v1/link?a=64500&b=64501", http.StatusOK},
			{http.MethodGet, "/v1/link?a=64500", http.StatusBadRequest},
			{http.MethodGet, "/v1/link?a=x&b=y", http.StatusBadRequest},
			{http.MethodGet, "/v1/as/64500", http.StatusOK},
			{http.MethodGet, "/v1/as/banana", http.StatusBadRequest},
			{http.MethodGet, "/v1/nope", http.StatusNotFound},
			{http.MethodPost, "/v1/mesh", http.StatusMethodNotAllowed},
			{http.MethodHead, "/v1/mesh", http.StatusOK},
		}
		for _, tc := range cases {
			req := httptest.NewRequest(tc.method, tc.path, nil)
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != tc.want {
				t.Errorf("%s %s = %d, want %d", tc.method, tc.path, rr.Code, tc.want)
			}
			if tc.method == http.MethodHead && rr.Body.Len() != 0 {
				t.Errorf("HEAD %s carried a body", tc.path)
			}
		}
	})
}

// TestGatewayByteIdenticalRender pins the acceptance criterion that a
// gateway response body is byte-identical to a direct render of the
// same (epoch, query) against the underlying core.Result.
func TestGatewayByteIdenticalRender(t *testing.T) {
	_, res := testResult(t)
	g := testGateway(t, res)
	h := g.Handler()
	s := g.Current()

	cases := []struct {
		path string
		want []byte
	}{
		{"/v1/mesh", RenderMesh(1, s.Fingerprint, res)},
		{"/v1/link?a=64501&b=64500", RenderLink(1, res, 64501, 64500)},
		{"/v1/as/64500", RenderAS(1, res, 64500)},
	}
	if b, ok := RenderIXP(1, res, "DE-CIX"); ok {
		cases = append(cases, struct {
			path string
			want []byte
		}{"/v1/ixp/DE-CIX", b})
	} else {
		t.Fatalf("RenderIXP(DE-CIX) not ok")
	}
	cases = append(cases, struct {
		path string
		want []byte
	}{"/v1/ixps", RenderIXPList(1, res)})

	for _, tc := range cases {
		rr := get(t, h, tc.path, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", tc.path, rr.Code)
		}
		if rr.Body.String() != string(tc.want) {
			t.Errorf("%s: body differs from direct render:\n http: %s\n core: %s",
				tc.path, rr.Body.String(), tc.want)
		}
	}

	// The rendered mesh must reflect the fixture: six DE-CIX links and
	// the 64500–64501 pair attributed to both IXPs.
	var mesh struct {
		Links []struct {
			A, B uint32
			IXPs []string `json:"ixps"`
		} `json:"links"`
	}
	if err := json.Unmarshal(cases[0].want, &mesh); err != nil {
		t.Fatalf("unmarshal mesh: %v", err)
	}
	if len(mesh.Links) != 6 {
		t.Fatalf("mesh links = %d, want 6", len(mesh.Links))
	}
	if l := mesh.Links[0]; l.A != 64500 || l.B != 64501 || len(l.IXPs) != 2 {
		t.Fatalf("first link = %+v, want 64500-64501 at both IXPs", l)
	}
}

// Test429Backpressure saturates a MaxInFlight=1 gateway with a parked
// request and checks overload requests bounce with 429 + Retry-After
// while /healthz still answers.
func Test429Backpressure(t *testing.T) {
	_, res := testResult(t)
	g := testGateway(t, res)
	hold := make(chan struct{})
	g.cfg.MaxInFlight = 1
	g.testHold = hold
	h := g.Handler()

	started := make(chan struct{})
	done := make(chan *httptest.ResponseRecorder)
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/v1/mesh", nil)
		rr := httptest.NewRecorder()
		close(started)
		h.ServeHTTP(rr, req)
		done <- rr
	}()
	<-started
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}

	rr := get(t, h, "/v1/mesh", nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After")
	}
	if hz := get(t, h, "/healthz", nil); hz.Code != http.StatusOK {
		t.Fatalf("/healthz under saturation = %d, want 200", hz.Code)
	}

	close(hold)
	if first := <-done; first.Code != http.StatusOK {
		t.Fatalf("parked request finished %d, want 200", first.Code)
	}
	if g.InFlight() != 0 {
		t.Fatalf("inflight = %d after drain, want 0", g.InFlight())
	}
	if rr := get(t, h, "/v1/mesh", nil); rr.Code != http.StatusOK {
		t.Fatalf("post-drain status = %d, want 200", rr.Code)
	}
}

// TestGracefulShutdownDrains runs a real http.Server and checks the
// shared WaitShutdown path lets a held in-flight request complete with
// 200 instead of cutting the connection.
func TestGracefulShutdownDrains(t *testing.T) {
	_, res := testResult(t)
	g := testGateway(t, res)
	hold := make(chan struct{})
	g.testHold = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, cancel := context.WithCancel(context.Background())
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- WaitShutdown(ctx, srv, 5*time.Second) }()

	type result struct {
		code int
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/mesh")
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{code: resp.StatusCode, body: string(b)}
	}()
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}

	cancel() // SIGINT stand-in: shutdown begins with the request held
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned before in-flight request finished: %v", err)
	default:
	}

	close(hold)
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.code)
	}
	if want := string(RenderMesh(1, g.Current().Fingerprint, res)); r.body != want {
		t.Fatalf("drained body differs from render")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("WaitShutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestGatewayEndToEndEpochs runs the real reconciler over a small
// churning world and checks epochs commit, advance monotonically past
// one replay cycle, and the loop exits cleanly on cancellation.
func TestGatewayEndToEndEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end reconciler test skipped in -short")
	}
	ccfg := churn.DefaultConfig(20130501)
	ccfg.Epochs = 3
	g := New(Config{
		Topology: topology.TestConfig(),
		Churn:    ccfg,
		Workers:  2,
		Logf:     t.Logf,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- g.Run(ctx) }()

	select {
	case <-g.Ready():
	case <-ctx.Done():
		t.Fatal("no snapshot committed before timeout")
	}

	h := g.Handler()
	var last uint64
	var firstETag string
	// Watch commits until the epoch counter passes one replay cycle,
	// proving the reconciler loops instead of stopping at the horizon.
	deadline := time.After(90 * time.Second)
	for last <= uint64(ccfg.Epochs) {
		select {
		case <-deadline:
			t.Fatalf("epoch stuck at %d (want > %d)", last, ccfg.Epochs)
		case <-time.After(10 * time.Millisecond):
		}
		rr := get(t, h, "/v1/epoch", nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("GET /v1/epoch = %d", rr.Code)
		}
		e, err := strconv.ParseUint(rr.Header().Get("X-MLP-Epoch"), 10, 64)
		if err != nil {
			t.Fatalf("bad X-MLP-Epoch: %v", err)
		}
		if e < last {
			t.Fatalf("epoch went backwards: %d after %d", e, last)
		}
		if firstETag == "" {
			firstETag = rr.Header().Get("ETag")
		}
		last = e
	}
	if cur := get(t, h, "/v1/epoch", nil); cur.Header().Get("ETag") == firstETag {
		t.Fatalf("ETag never changed across %d epochs", last)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v after cancel, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestGatewayConcurrentEpochSwap is the race-job test: readers hammer
// the handler while a writer republishes snapshots, asserting every
// response is internally consistent (epoch header matches the body's
// epoch) and per-goroutine epochs never move backwards.
func TestGatewayConcurrentEpochSwap(t *testing.T) {
	_, res := testResult(t)
	g := testGateway(t, res)
	h := g.Handler()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		epoch := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			epoch++
			committed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).Add(time.Duration(epoch) * time.Second)
			g.publish(NewSnapshot(epoch, "test-world", testWindow(res, int(epoch)), committed))
		}
	}()

	var readers sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for i := 0; i < 400; i++ {
				rr := get(t, h, "/v1/epoch", nil)
				if rr.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d", rr.Code)
					return
				}
				e, err := strconv.ParseUint(rr.Header().Get("X-MLP-Epoch"), 10, 64)
				if err != nil {
					errs <- err
					return
				}
				if e < last {
					errs <- fmt.Errorf("stale read: epoch %d after %d", e, last)
					return
				}
				last = e
				var body struct {
					Epoch uint64 `json:"epoch"`
				}
				if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
					errs <- err
					return
				}
				if body.Epoch != e {
					errs <- fmt.Errorf("torn snapshot: header epoch %d, body epoch %d", e, body.Epoch)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
