// Package serve is the epoch-pinned inference gateway: it runs the
// churn engine and the incremental windowed inference continuously in
// a background reconciler, publishes every committed window as an
// immutable epoch-numbered Snapshot behind one atomic pointer (RCU —
// a reader pins a snapshot with a single atomic load and never takes
// a lock), and serves mesh/link/relationship/window-stats queries
// over HTTP with real cache semantics: strong ETags keyed on the
// window fingerprint, Cache-Control, If-None-Match conditional
// requests answered 304, Last-Modified from the commit instant,
// bounded in-flight backpressure (429 + Retry-After) and graceful
// drain on shutdown.
package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/core"
	"mlpeering/internal/topology"
)

// WindowStats is the committed window's counter block, republished per
// epoch on /v1/stats.
type WindowStats struct {
	Announced     int     `json:"announced"`
	Withdrawn     int     `json:"withdrawn"`
	WithdrawnOnly int     `json:"withdrawn_only_updates"`
	LiveRoutes    int     `json:"live_routes"`
	RelLinks      int     `json:"rel_links"`
	P2PRels       int     `json:"p2p_rels"`
	MeshLinks     int     `json:"mesh_links"`
	MultiIXPLinks int     `json:"multi_ixp_links"`
	Stability     float64 `json:"stability"`
	CloseTimeNS   int64   `json:"close_time_ns"`
}

// Snapshot is one committed inference window, pinned to an epoch
// number. It is published by a single atomic pointer swap and read
// concurrently without synchronization, so it must never be mutated
// after NewSnapshot returns — the frozen analyzer machine-checks
// that, like core.Result underneath it.
//
//mlplint:frozen
type Snapshot struct {
	// Epoch numbers commits monotonically across the gateway's
	// lifetime (it never resets when the replay cycles).
	Epoch uint64
	// Fingerprint is the canonical mesh hash (core.Result.Fingerprint)
	// the ETag is keyed on.
	Fingerprint uint64
	// ETag is the strong entity tag served with every response:
	// `"e<epoch>-<fingerprint-hex>"`. The epoch component keeps tags
	// distinct across epochs even when churn left the mesh unchanged,
	// so conditional revalidation can never resurrect a stale stats
	// body.
	ETag string
	// WindowStart / WindowEnd bound the inference window in simulated
	// trace time.
	WindowStart, WindowEnd time.Time
	// Committed is the wall-clock publish instant (Last-Modified).
	Committed time.Time
	// Scenario names the generating world scenario.
	Scenario string
	// Stats carries the window's counters.
	Stats WindowStats
	// Result is the materialized inference the query endpoints read.
	Result *core.Result

	// Precomputed canonical renders of the whole-snapshot endpoints,
	// built once at publish so the read path only writes cached bytes.
	epochJSON, statsJSON, meshJSON, ixpsJSON []byte
}

// NewSnapshot derives the immutable epoch snapshot of one committed
// window. pw.Result must be materialized (WindowOptions.Materialize);
// committed is the wall-clock commit instant the caller observed.
// All sorted renders are precomputed here, inside the sanctioned
// construction window, so publication needs no further writes.
//
//mlplint:frozen
func NewSnapshot(epoch uint64, scenario string, pw *core.PassiveWindow, committed time.Time) *Snapshot {
	res := pw.Result
	s := &Snapshot{
		Epoch:       epoch,
		Fingerprint: res.Fingerprint(),
		WindowStart: pw.Start,
		WindowEnd:   pw.End,
		Committed:   committed,
		Scenario:    scenario,
		Result:      res,
		Stats: WindowStats{
			Announced:     pw.Announced,
			Withdrawn:     pw.Withdrawn,
			WithdrawnOnly: pw.WithdrawnOnlyUpdates,
			LiveRoutes:    pw.LiveRoutes,
			RelLinks:      pw.RelLinks,
			P2PRels:       pw.P2PRels,
			MeshLinks:     res.TotalLinks(),
			MultiIXPLinks: res.MultiIXPLinks(),
			Stability:     pw.Stability,
			CloseTimeNS:   pw.CloseTime.Nanoseconds(),
		},
	}
	s.ETag = fmt.Sprintf("%q", fmt.Sprintf("e%d-%016x", epoch, s.Fingerprint))
	s.epochJSON = renderEpochMeta(s)
	s.statsJSON = renderStats(s)
	s.meshJSON = RenderMesh(epoch, s.Fingerprint, res)
	s.ixpsJSON = RenderIXPList(epoch, res)
	// Prefill every per-IXP CoveredMembers memo while still inside the
	// construction window, so no dynamic render performs the (waived,
	// idempotent) first-read fill after publication.
	for _, name := range sortedIXPNames(res) {
		res.PerIXP[name].CoveredMembers()
	}
	return s
}

// linkDTO is one inferred link with its IXP attribution.
type linkDTO struct {
	A    bgp.ASN  `json:"a"`
	B    bgp.ASN  `json:"b"`
	IXPs []string `json:"ixps"`
}

// meshDTO is the /v1/mesh payload.
type meshDTO struct {
	Epoch       uint64    `json:"epoch"`
	Fingerprint string    `json:"fingerprint"`
	Links       []linkDTO `json:"links"`
}

// epochDTO is the /v1/epoch payload.
type epochDTO struct {
	Epoch       uint64    `json:"epoch"`
	Fingerprint string    `json:"fingerprint"`
	Scenario    string    `json:"scenario"`
	WindowStart time.Time `json:"window_start"`
	WindowEnd   time.Time `json:"window_end"`
	Committed   time.Time `json:"committed"`
	Links       int       `json:"links"`
}

// statsDTO is the /v1/stats payload.
type statsDTO struct {
	Epoch       uint64      `json:"epoch"`
	Fingerprint string      `json:"fingerprint"`
	Stats       WindowStats `json:"stats"`
}

// ixpSummaryDTO is one row of the /v1/ixps payload.
type ixpSummaryDTO struct {
	Name    string `json:"name"`
	Members int    `json:"members"`
	Covered int    `json:"covered"`
	Passive int    `json:"passive"`
	Active  int    `json:"active"`
	Links   int    `json:"links"`
}

// ixpListDTO is the /v1/ixps payload.
type ixpListDTO struct {
	Epoch uint64          `json:"epoch"`
	IXPs  []ixpSummaryDTO `json:"ixps"`
}

// ixpDTO is the /v1/ixp/<name> payload.
type ixpDTO struct {
	Epoch   uint64    `json:"epoch"`
	Name    string    `json:"name"`
	Members int       `json:"members"`
	Covered []bgp.ASN `json:"covered"`
	Passive int       `json:"passive"`
	Active  int       `json:"active"`
	Links   []linkDTO `json:"links"`
}

// linkLookupDTO is the /v1/link payload.
type linkLookupDTO struct {
	Epoch   uint64   `json:"epoch"`
	A       bgp.ASN  `json:"a"`
	B       bgp.ASN  `json:"b"`
	Present bool     `json:"present"`
	IXPs    []string `json:"ixps"`
}

// asDTO is the /v1/as/<asn> payload.
type asDTO struct {
	Epoch uint64    `json:"epoch"`
	ASN   bgp.ASN   `json:"asn"`
	Links []linkDTO `json:"links"`
}

// mustJSON marshals a render DTO; the DTOs contain no unmarshalable
// types, so a failure is a programming error.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: render marshal: %v", err))
	}
	return b
}

// FingerprintHex is the canonical hex spelling of a mesh fingerprint
// used in payloads and ETags.
func FingerprintHex(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// sortedLinkKeys extracts a result's link keys in ascending (A, B)
// order — every render that walks the Links map goes through it so
// bodies are byte-identical for the same (epoch, query).
func sortedLinkKeys(links map[topology.LinkKey][]string) []topology.LinkKey {
	keys := make([]topology.LinkKey, 0, len(links))
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	return keys
}

// sortedIXPNames extracts the per-IXP map keys ascending.
func sortedIXPNames(r *core.Result) []string {
	names := make([]string, 0, len(r.PerIXP))
	for name := range r.PerIXP {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RenderMesh renders the full inferred mesh: every link ascending with
// its sorted IXP attribution. The render is a pure function of
// (epoch, fingerprint, result), so gateway responses are byte-equal to
// a direct render of the same core.Result — the conformance tests pin
// that.
func RenderMesh(epoch uint64, fingerprint uint64, r *core.Result) []byte {
	dto := meshDTO{Epoch: epoch, Fingerprint: FingerprintHex(fingerprint), Links: make([]linkDTO, 0, len(r.Links))}
	for _, k := range sortedLinkKeys(r.Links) {
		dto.Links = append(dto.Links, linkDTO{A: k.A, B: k.B, IXPs: r.Links[k]})
	}
	return mustJSON(dto)
}

// RenderIXPList renders the per-IXP coverage summary, sorted by name.
func RenderIXPList(epoch uint64, r *core.Result) []byte {
	dto := ixpListDTO{Epoch: epoch, IXPs: make([]ixpSummaryDTO, 0, len(r.PerIXP))}
	for _, name := range sortedIXPNames(r) {
		x := r.PerIXP[name]
		dto.IXPs = append(dto.IXPs, ixpSummaryDTO{
			Name:    name,
			Members: len(x.Members),
			Covered: len(x.CoveredMembers()),
			Passive: x.PassiveCount(),
			Active:  x.ActiveCount(),
			Links:   len(x.Links),
		})
	}
	return mustJSON(dto)
}

// RenderIXP renders one IXP's inference; ok is false when the
// dictionary has no such IXP.
func RenderIXP(epoch uint64, r *core.Result, name string) ([]byte, bool) {
	x, ok := r.PerIXP[name]
	if !ok {
		return nil, false
	}
	dto := ixpDTO{
		Epoch:   epoch,
		Name:    name,
		Members: len(x.Members),
		Covered: x.CoveredMembers(),
		Passive: x.PassiveCount(),
		Active:  x.ActiveCount(),
		Links:   make([]linkDTO, 0, len(x.Links)),
	}
	keys := make([]topology.LinkKey, 0, len(x.Links))
	for k := range x.Links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	for _, k := range keys {
		dto.Links = append(dto.Links, linkDTO{A: k.A, B: k.B, IXPs: []string{name}})
	}
	return mustJSON(dto), true
}

// RenderLink renders one link lookup (the relationship query): whether
// the pair peers multilaterally and at which IXPs.
func RenderLink(epoch uint64, r *core.Result, a, b bgp.ASN) []byte {
	key := topology.MakeLinkKey(a, b)
	ixps, present := r.Links[key]
	dto := linkLookupDTO{Epoch: epoch, A: key.A, B: key.B, Present: present, IXPs: ixps}
	if dto.IXPs == nil {
		dto.IXPs = []string{}
	}
	return mustJSON(dto)
}

// RenderAS renders every inferred link one AS participates in (the
// route/neighbor view of the mesh), ascending by peer.
func RenderAS(epoch uint64, r *core.Result, asn bgp.ASN) []byte {
	dto := asDTO{Epoch: epoch, ASN: asn, Links: []linkDTO{}}
	for _, k := range sortedLinkKeys(r.Links) {
		if k.A == asn || k.B == asn {
			dto.Links = append(dto.Links, linkDTO{A: k.A, B: k.B, IXPs: r.Links[k]})
		}
	}
	return mustJSON(dto)
}

func renderEpochMeta(s *Snapshot) []byte {
	return mustJSON(epochDTO{
		Epoch:       s.Epoch,
		Fingerprint: FingerprintHex(s.Fingerprint),
		Scenario:    s.Scenario,
		WindowStart: s.WindowStart,
		WindowEnd:   s.WindowEnd,
		Committed:   s.Committed,
		Links:       s.Result.TotalLinks(),
	})
}

func renderStats(s *Snapshot) []byte {
	return mustJSON(statsDTO{Epoch: s.Epoch, Fingerprint: FingerprintHex(s.Fingerprint), Stats: s.Stats})
}
