package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/churn"
	"mlpeering/internal/topology"
)

// Config parameterizes a gateway.
type Config struct {
	// Topology / Churn configure the world the reconciler churns.
	Topology topology.Config
	Churn    churn.Config
	// Workers sizes the window-close worker pool (0: GOMAXPROCS).
	Workers int
	// MaxInFlight bounds concurrently-served requests; requests over
	// the cap are rejected 429 + Retry-After. 0 disables the cap.
	MaxInFlight int
	// MaxAge is the Cache-Control max-age; 0 serves `no-cache`
	// (always revalidate — correct default while epochs commit every
	// few hundred milliseconds).
	MaxAge time.Duration
	// EpochInterval paces snapshot publication: the reconciler holds
	// each committed window at least this long before the next commit.
	// 0 publishes as fast as windows close.
	EpochInterval time.Duration
	// Logf receives reconciler progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Gateway serves epoch-pinned inference snapshots. The read path is
// lock-free: a request pins the current snapshot with one atomic
// pointer load, bumps one atomic in-flight counter, and writes bytes
// that were precomputed at publish — no mutex, no RWMutex, no map
// writes. Publication is a single atomic pointer swap (RCU): readers
// that loaded the old snapshot finish against it unperturbed.
type Gateway struct {
	cfg Config

	cur      atomic.Pointer[Snapshot]
	inflight atomic.Int64

	ready     chan struct{}
	readyOnce sync.Once

	cacheControl string

	// testHold, when non-nil, parks every admitted data request until
	// the channel closes — the saturation and drain tests use it to
	// pin requests in flight deterministically. Nil in production.
	testHold <-chan struct{}
}

// New builds a gateway; Run starts its reconciler.
func New(cfg Config) *Gateway {
	cc := "public, no-cache"
	if cfg.MaxAge > 0 {
		cc = fmt.Sprintf("public, max-age=%d, must-revalidate", int(cfg.MaxAge.Seconds()))
	}
	return &Gateway{cfg: cfg, ready: make(chan struct{}), cacheControl: cc}
}

// Current returns the currently-published snapshot (nil before the
// first commit). One atomic load; safe from any goroutine.
func (g *Gateway) Current() *Snapshot { return g.cur.Load() }

// Ready returns a channel closed when the first snapshot publishes.
func (g *Gateway) Ready() <-chan struct{} { return g.ready }

// publish swaps in the next committed snapshot.
func (g *Gateway) publish(s *Snapshot) {
	g.cur.Store(s)
	g.readyOnce.Do(func() { close(g.ready) })
}

// InFlight reports the number of requests currently admitted.
func (g *Gateway) InFlight() int64 { return g.inflight.Load() }

// Drain blocks until no request is in flight or ctx expires.
func (g *Gateway) Drain(ctx context.Context) error {
	for {
		if g.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Handler returns the gateway's HTTP handler. The router is
// hand-rolled rather than a ServeMux: net/http's mux read-locks its
// pattern table on every request, and the gateway's contract is a
// zero-lock read path.
func (g *Gateway) Handler() http.Handler {
	return http.HandlerFunc(g.serveHTTP)
}

func (g *Gateway) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Path == "/healthz" {
		// Liveness bypasses admission control: load probes must see
		// the process alive even when the data plane is saturated.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			fmt.Fprintln(w, "ok")
		}
		return
	}

	if cap := int64(g.cfg.MaxInFlight); cap > 0 {
		if g.inflight.Add(1) > cap {
			g.inflight.Add(-1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "too many in-flight requests", http.StatusTooManyRequests)
			return
		}
	} else {
		g.inflight.Add(1)
	}
	defer g.inflight.Add(-1)

	if hold := g.testHold; hold != nil {
		<-hold
	}

	s := g.cur.Load()
	if s == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no snapshot committed yet", http.StatusServiceUnavailable)
		return
	}

	var body []byte
	switch {
	case r.URL.Path == "/v1/epoch":
		body = s.epochJSON
	case r.URL.Path == "/v1/stats":
		body = s.statsJSON
	case r.URL.Path == "/v1/mesh":
		body = s.meshJSON
	case r.URL.Path == "/v1/ixps":
		body = s.ixpsJSON
	case strings.HasPrefix(r.URL.Path, "/v1/ixp/"):
		name := strings.TrimPrefix(r.URL.Path, "/v1/ixp/")
		b, ok := RenderIXP(s.Epoch, s.Result, name)
		if !ok {
			http.Error(w, "unknown IXP", http.StatusNotFound)
			return
		}
		body = b
	case r.URL.Path == "/v1/link":
		a, errA := parseASN(r.URL.Query().Get("a"))
		b, errB := parseASN(r.URL.Query().Get("b"))
		if errA != nil || errB != nil {
			http.Error(w, "need numeric a= and b= ASN query parameters", http.StatusBadRequest)
			return
		}
		body = RenderLink(s.Epoch, s.Result, a, b)
	case strings.HasPrefix(r.URL.Path, "/v1/as/"):
		asn, err := parseASN(strings.TrimPrefix(r.URL.Path, "/v1/as/"))
		if err != nil {
			http.Error(w, "bad ASN", http.StatusBadRequest)
			return
		}
		body = RenderAS(s.Epoch, s.Result, asn)
	default:
		http.Error(w, "not found", http.StatusNotFound)
		return
	}

	h := w.Header()
	h.Set("ETag", s.ETag)
	h.Set("Cache-Control", g.cacheControl)
	h.Set("Last-Modified", s.Committed.UTC().Format(http.TimeFormat))
	h.Set("X-MLP-Epoch", strconv.FormatUint(s.Epoch, 10))

	if etagMatch(r.Header.Get("If-None-Match"), s.ETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(body)
	}
}

// parseASN parses a decimal AS number.
func parseASN(s string) (bgp.ASN, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return bgp.ASN(n), nil
}

// etagMatch reports whether an If-None-Match header matches the
// snapshot's strong ETag: `*` matches anything, otherwise any tag in
// the comma-separated list equal to the current tag matches (a weak
// `W/` prefix is stripped first — weak comparison suffices for GET).
func etagMatch(inm, etag string) bool {
	if inm == "" {
		return false
	}
	if strings.TrimSpace(inm) == "*" {
		return true
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// WaitShutdown blocks until ctx is cancelled, then gracefully shuts
// srv down, giving in-flight requests up to drain to finish. It is
// the shared termination path of cmd/lgserve in both gateway and
// static mode. Returns the shutdown error, if any.
func WaitShutdown(ctx context.Context, srv *http.Server, drain time.Duration) error {
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(sctx)
}
