package serve

import (
	"context"
	"time"

	"mlpeering/internal/core"
	"mlpeering/internal/experiments"
)

// Run is the gateway's reconciler: it builds the churn trace once,
// then replays it through the incremental windowed inference in a
// loop, publishing every committed window as the next epoch snapshot.
// Like an always-converging reconciler it never stops on its own —
// when the trace's horizon is exhausted it replays again, epochs
// numbering monotonically across cycles — and returns only when ctx
// is cancelled (returning nil) or the world cannot be built and
// retries keep failing ctx away.
func (g *Gateway) Run(ctx context.Context) error {
	logf := g.cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var ct *experiments.ChurnTrace
	backoff := time.Second
	for {
		var err error
		ct, err = experiments.BuildChurnTrace(g.cfg.Topology, g.cfg.Churn)
		if err == nil {
			break
		}
		logf("serve: build churn trace: %v (retrying in %v)", err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 30*time.Second {
			backoff = 30 * time.Second
		}
	}
	logf("serve: world ready: scenario=%s epochs=%d interval=%v", ct.Scenario, ct.Epochs, ct.Interval)

	var epoch uint64
	var lastCommit time.Time
	commit := func(pw *core.PassiveWindow) {
		if g.cfg.EpochInterval > 0 && !lastCommit.IsZero() {
			if wait := g.cfg.EpochInterval - time.Since(lastCommit); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
		}
		epoch++
		// The commit instant is served as Last-Modified; it must be
		// real wall-clock time, not simulated trace time.
		now := time.Now() //mlplint:clock Last-Modified needs the wall-clock commit instant
		g.publish(NewSnapshot(epoch, ct.Scenario, pw, now))
		lastCommit = now
		logf("serve: epoch %d committed: window=[%s, %s) links=%d fp=%s",
			epoch, pw.Start.Format(time.RFC3339), pw.End.Format(time.RFC3339),
			pw.Result.TotalLinks(), FingerprintHex(g.cur.Load().Fingerprint))
	}

	for {
		if err := ct.ReplayWindows(ctx, 0, g.cfg.Workers, commit); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		logf("serve: replay cycle complete at epoch %d; restarting", epoch)
	}
}
