// Package par is the shared deterministic worker-pool primitive of the
// incremental windowed pipeline. It follows the discipline of the
// topology package's parallel stage runner: tasks are pure with respect
// to each other (each task owns a disjoint shard of the mutable state,
// or is a pure compute whose result is committed sequentially
// afterwards), so the outcome is bit-identical whether the tasks run on
// one goroutine or many.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: 0 means GOMAXPROCS, anything
// below one clamps to sequential.
func Workers(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes tasks 0..n-1 on up to workers goroutines, pulling task
// indices off a shared atomic counter, and returns when every task
// finished. workers <= 1 (or n <= 1) degenerates to a plain sequential
// loop — the two paths are behaviorally identical because tasks must
// not observe each other's effects.
func Run(workers, n int, fn func(task int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
