// Package core implements the paper's contribution: inference of
// multilateral peering links from route-server BGP communities.
//
// The pipeline mirrors §4 of the paper:
//
//   - connectivity data (which ASes sit on which route server) comes
//     from IXP-published member lists, IRR AS-SETs, IRR searches for the
//     route server ASN, and looking-glass summaries;
//   - reachability data (who lets whom receive their routes) comes from
//     RS community values mined passively from collector archives
//     (§4.2) and actively from looking-glass queries (§4.1), with the
//     query-cost optimizations of §4.3;
//   - links follow from the reciprocity rule of §4.1 step 5;
//   - validation replays inferred links against third-party looking
//     glasses (§5.1).
package core

import (
	"fmt"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/irr"
	"mlpeering/internal/ixp"
)

// ConnectivitySource records where an IXP's member list came from, in
// decreasing order of reliability (§4: "Information obtained from LGs is
// the most reliable...").
type ConnectivitySource int

// Connectivity sources.
const (
	SourceNone ConnectivitySource = iota
	SourceIRRSearch
	SourceASSet
	SourceWebsite
	SourceLG
)

// String implements fmt.Stringer.
func (s ConnectivitySource) String() string {
	switch s {
	case SourceLG:
		return "looking-glass"
	case SourceWebsite:
		return "ixp-website"
	case SourceASSet:
		return "irr-as-set"
	case SourceIRRSearch:
		return "irr-search"
	default:
		return "none"
	}
}

// IXPEntry is the dictionary record for one IXP: its community scheme
// and the best-known route server member list.
type IXPEntry struct {
	Name   string
	Scheme ixp.Scheme

	members map[bgp.ASN]bool
	source  ConnectivitySource
}

// Members returns the known RS members in ascending order.
func (e *IXPEntry) Members() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(e.members))
	for m := range e.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports whether asn is a known RS member.
func (e *IXPEntry) IsMember(asn bgp.ASN) bool { return e.members[asn] }

// MemberCount returns the number of known RS members.
func (e *IXPEntry) MemberCount() int { return len(e.members) }

// Source returns where the member list came from.
func (e *IXPEntry) Source() ConnectivitySource { return e.source }

// SetMembers replaces the member list if the new source is at least as
// reliable as the current one.
func (e *IXPEntry) SetMembers(members []bgp.ASN, src ConnectivitySource) {
	if src < e.source || len(members) == 0 {
		return
	}
	e.members = make(map[bgp.ASN]bool, len(members))
	for _, m := range members {
		e.members[m] = true
	}
	e.source = src
}

// Dictionary maps community schemes to IXPs and carries connectivity
// data. It is the static knowledge an operator assembles from IXP
// documentation before running the algorithm.
type Dictionary struct {
	Entries []*IXPEntry
	byName  map[string]*IXPEntry
	// byHigh indexes entries by the community high halves their scheme
	// interprets (ALL, NONE, INCLUDE, EXCLUDE), so IdentifyIXP scans
	// only the candidate entries a community set can be relevant to
	// instead of every scheme in the dictionary. Entry order follows
	// Entries, and an entry appears at most once per high half.
	byHigh map[bgp.ASN][]*IXPEntry
}

// indexSchemes builds byHigh from the entries' schemes.
func (d *Dictionary) indexSchemes() {
	d.byHigh = make(map[bgp.ASN][]*IXPEntry)
	add := func(e *IXPEntry, high bgp.ASN) {
		for _, x := range d.byHigh[high] {
			if x == e {
				return
			}
		}
		d.byHigh[high] = append(d.byHigh[high], e)
	}
	for _, e := range d.Entries {
		s := &e.Scheme
		add(e, s.All.High())
		add(e, s.None.High())
		add(e, s.IncludeHigh)
		add(e, s.ExcludeHigh)
	}
}

// WebsiteData is the per-IXP information available from its public
// documentation: the community scheme, and the member list when the IXP
// publishes one.
type WebsiteData struct {
	Name                string
	Scheme              ixp.Scheme
	PublishedRSMembers  []bgp.ASN // nil when not published (LINX)
	PublishesMemberList bool
}

// BuildDictionary assembles the dictionary from IXP documentation and
// the IRR, applying the source-preference order of §4: website list,
// then AS-SET, then IRR search for aut-nums peering with the RS ASN.
func BuildDictionary(sites []WebsiteData, registry *irr.Registry) (*Dictionary, error) {
	d := &Dictionary{byName: make(map[string]*IXPEntry)}
	for _, site := range sites {
		if _, dup := d.byName[site.Name]; dup {
			return nil, fmt.Errorf("core: duplicate IXP %q in dictionary", site.Name)
		}
		e := &IXPEntry{Name: site.Name, Scheme: site.Scheme}
		if site.PublishesMemberList && len(site.PublishedRSMembers) > 0 {
			e.SetMembers(site.PublishedRSMembers, SourceWebsite)
		} else if registry != nil {
			// Try the IXP-maintained AS-SET first.
			if asns, err := registry.ExpandASSet(irr.ASSetName(site.Name)); err == nil && len(asns) > 0 {
				e.SetMembers(asns, SourceASSet)
			} else {
				// LINX-style: search aut-nums that declare policy
				// toward the route server ASN.
				if found := registry.SearchAutNumsMentioning(site.Scheme.RSASN); len(found) > 0 {
					e.SetMembers(found, SourceIRRSearch)
				}
			}
		}
		d.Entries = append(d.Entries, e)
		d.byName[site.Name] = e
	}
	d.indexSchemes()
	return d, nil
}

// ByName returns the entry for an IXP, or nil.
func (d *Dictionary) ByName(name string) *IXPEntry { return d.byName[name] }

// IdentifyIXP attributes a community set to an IXP (§4.2). It first
// looks for values that embed a route server ASN; when only ambiguous
// EXCLUDE/INCLUDE values are present (e.g. 0:peer with the ALL value
// omitted), it falls back to combination disambiguation: the referenced
// peer ASes must all be members of the candidate IXP, and only one IXP
// may qualify.
//
//mlplint:allocfree
func (d *Dictionary) IdentifyIXP(cs bgp.Communities) (*IXPEntry, bool) {
	// Candidate entries: only schemes interpreting at least one of the
	// set's high halves can have a non-empty relevant subset; everything
	// else would be skipped by the per-entry scan anyway. The buffers
	// stay on the stack for the common (few candidates) case.
	var cbuf [48]*IXPEntry
	cands := cbuf[:0]
	for _, c := range cs {
		for _, e := range d.byHigh[c.High()] {
			dup := false
			for _, x := range cands {
				if x == e {
					dup = true
					break
				}
			}
			if !dup {
				cands = append(cands, e)
			}
		}
	}

	var sbuf, wbuf [4]*IXPEntry
	strong, weak := sbuf[:0], wbuf[:0]
	for _, e := range cands {
		// Single pass over cs, classifying inline: identification,
		// reference count and membership verdict come from the same
		// walk the old RelevantCommunities allocation fed.
		identified := false
		allMembers := true
		refs := 0
		for _, c := range cs {
			act, peer := e.Scheme.Classify(c)
			if act == ixp.ActionNone {
				continue
			}
			if e.Scheme.Identifiable(c) {
				identified = true
				break
			}
			if act != ixp.ActionExclude && act != ixp.ActionInclude {
				continue
			}
			refs++
			if allMembers && !e.members[peer] {
				allMembers = false
			}
		}
		if identified {
			strong = append(strong, e)
			continue
		}
		// Weak candidate: every referenced peer must be a member.
		if refs > 0 && allMembers {
			weak = append(weak, e)
		}
	}
	if len(strong) == 1 {
		return strong[0], true
	}
	if len(strong) > 1 {
		return nil, false // conflicting strong evidence: discard
	}
	if len(weak) == 1 {
		return weak[0], true
	}
	return nil, false
}
