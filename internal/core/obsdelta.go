// Delta-maintained windowed mining: the incremental counterpart of
// mineLiveTable. Announce/withdraw events apply as +/- deltas to
// reference-counted (setter, member, prefix-group) observation counts,
// so a window's ML mesh is derived from the maintained store instead of
// re-mining every live route. Routes are grouped by their (path,
// community-set) shape; each group's hygiene flags, IXP attribution and
// — when the §4.2 pinpointing is relationship-independent — its setter
// are derived once, and only the relationship-dependent groups (three
// or more IXP participants on the path) are re-pinpointed at window
// close against the incrementally maintained relation oracle.
package core

import (
	"slices"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// obsSet is one counted community set observed for a (setter, prefix).
type obsSet struct {
	key string // canonical (sorted, dedup'd) encoding
	cs  bgp.Communities
	n   int
}

// prefixDelta holds the counted community sets of one (setter, prefix).
// Disagreement across feeders is rare (§4.3), so the set list is almost
// always length one; entries whose count returns to zero are pruned so
// the store tracks the live table, not the all-time history.
type prefixDelta struct {
	total int
	sets  []obsSet
}

// winner returns the canonical representative among the live sets: the
// lexicographically smallest key with a positive count. Deterministic
// and independent of insertion order, so a maintained store and one
// rebuilt from scratch agree byte-for-byte.
func (p *prefixDelta) winner() (string, bgp.Communities, bool) {
	bestKey, bestIdx := "", -1
	for i := range p.sets {
		if p.sets[i].n > 0 && (bestIdx < 0 || p.sets[i].key < bestKey) {
			bestKey, bestIdx = p.sets[i].key, i
		}
	}
	if bestIdx < 0 {
		return "", nil, false
	}
	return bestKey, p.sets[bestIdx].cs, true
}

// setterDelta aggregates one covered setter's per-prefix observations.
type setterDelta struct {
	prefixes map[bgp.Prefix]*prefixDelta
	active   int // prefixes with a positive total
}

// ixpDelta is one IXP's setter table.
type ixpDelta struct {
	setters map[bgp.ASN]*setterDelta
}

// DeltaObservations is a reference-counted observation store: the
// C_{a,p} of §4.1 step 3 maintained under announce (+1) and withdraw
// (-1) deltas. It implements ObservationSource, so InferLinks derives
// the per-window mesh from it directly.
type DeltaObservations struct {
	byIXP map[string]*ixpDelta
}

// NewDeltaObservations returns an empty store.
func NewDeltaObservations() *DeltaObservations {
	return &DeltaObservations{byIXP: make(map[string]*ixpDelta)}
}

// add applies one counted observation delta.
func (o *DeltaObservations) add(ixpName string, setter bgp.ASN, prefix bgp.Prefix, key string, cs bgp.Communities, delta int) {
	x := o.byIXP[ixpName]
	if x == nil {
		x = &ixpDelta{setters: make(map[bgp.ASN]*setterDelta)}
		o.byIXP[ixpName] = x
	}
	s := x.setters[setter]
	if s == nil {
		s = &setterDelta{prefixes: make(map[bgp.Prefix]*prefixDelta)}
		x.setters[setter] = s
	}
	p := s.prefixes[prefix]
	if p == nil {
		p = &prefixDelta{}
		s.prefixes[prefix] = p
	}
	found := false
	for i := range p.sets {
		if p.sets[i].key == key {
			if p.sets[i].n += delta; p.sets[i].n == 0 {
				p.sets = append(p.sets[:i], p.sets[i+1:]...)
			}
			found = true
			break
		}
	}
	if !found {
		p.sets = append(p.sets, obsSet{key: key, cs: cs, n: delta})
	}
	wasLive := p.total > 0
	p.total += delta
	if live := p.total > 0; live != wasLive {
		if live {
			s.active++
		} else {
			s.active--
		}
	}
	// Prune dead state so Setters/Filter iterate the live view only:
	// per-window cost must track the live table, not the trace's
	// all-time observation history.
	if p.total == 0 && len(p.sets) == 0 {
		delete(s.prefixes, prefix)
	}
	if s.active == 0 && len(s.prefixes) == 0 {
		delete(x.setters, setter)
	}
}

// Setters returns the covered RS members of an IXP in ascending order.
func (o *DeltaObservations) Setters(ixpName string) []bgp.ASN {
	x := o.byIXP[ixpName]
	if x == nil {
		return nil
	}
	out := make([]bgp.ASN, 0, len(x.setters))
	for setter, s := range x.setters {
		if s.active > 0 {
			out = append(out, setter)
		}
	}
	sortASNs(out)
	return out
}

// Filter reconstructs the setter's export filter by majority vote over
// its per-prefix community sets, exactly like Observations.Filter: each
// live prefix votes its canonical community set, the most voted (ties
// to the smallest key) wins.
func (o *DeltaObservations) Filter(ixpName string, setter bgp.ASN, scheme ixp.Scheme) (ixp.ExportFilter, bool) {
	x := o.byIXP[ixpName]
	if x == nil {
		return ixp.ExportFilter{}, false
	}
	s := x.setters[setter]
	if s == nil || s.active == 0 {
		return ixp.ExportFilter{}, false
	}
	votes := make(map[string]int)
	repr := make(map[string]bgp.Communities)
	for _, p := range s.prefixes {
		key, cs, ok := p.winner()
		if !ok {
			continue
		}
		votes[key]++
		repr[key] = cs
	}
	bestKey, bestVotes := "", -1
	for k, v := range votes {
		if v > bestVotes || (v == bestVotes && k < bestKey) {
			bestKey, bestVotes = k, v
		}
	}
	return ixp.FilterFromCommunities(repr[bestKey], scheme), true
}

// Source reports passive coverage: the windowed pipeline only ever
// mines collector data.
func (o *DeltaObservations) Source(ixpName string, setter bgp.ASN) DataSource {
	if x := o.byIXP[ixpName]; x != nil {
		if s := x.setters[setter]; s != nil && s.active > 0 {
			return ObsPassive
		}
	}
	return 0
}

// groupKey identifies one distinct route shape.
type groupKey struct {
	path  paths.ID
	comms string
}

// windowGroup is the derived state of one distinct (path, communities)
// route shape. Everything but the relationship-dependent setter is
// fixed at creation; refs and byPrefix track the live routes currently
// carrying the shape.
type windowGroup struct {
	path  paths.ID
	comms bgp.Communities

	bogon, cycle, empty bool
	entry               *IXPEntry // nil: no unique IXP attribution
	relKey              string    // canonical key of the scheme-relevant subset
	relComms            bgp.Communities
	relsDep             bool // pinpointing consults the relation oracle
	registered          bool // currently listed in windowMiner.relsDeps
	resolved            bool
	setter              bgp.ASN

	refs     int
	byPrefix map[bgp.Prefix]int
}

// mineable reports whether the shape can contribute observations at
// all: it survived hygiene and resolved to a unique IXP.
func (g *windowGroup) mineable() bool {
	return !g.bogon && !g.cycle && !g.empty && g.entry != nil
}

// keptPath reports whether the shape's path belongs to the public view
// relationship inference runs over.
func (g *windowGroup) keptPath() bool { return !g.bogon && !g.cycle && !g.empty }

// windowMiner maintains the incremental mining state across a windowed
// run: the route groups, the refcounted observation store, the live
// distinct-path counts feeding the relation oracle, and the hygiene
// drop tallies over the current live table.
type windowMiner struct {
	dict  *Dictionary
	store *paths.Store

	groups   map[groupKey]*windowGroup
	relsDeps []*windowGroup // groups whose setter depends on the oracle

	obs      *DeltaObservations
	rel      *relation.Incremental // nil in remine mode
	pathLive map[paths.ID]int

	dropBogon, dropCycle int
}

// newWindowMiner returns an empty miner. rel may be nil, in which case
// the caller owns relation maintenance and setter resolution (the
// remine fallback).
func newWindowMiner(dict *Dictionary, store *paths.Store, rel *relation.Incremental) *windowMiner {
	return &windowMiner{
		dict:     dict,
		store:    store,
		groups:   make(map[groupKey]*windowGroup),
		obs:      NewDeltaObservations(),
		rel:      rel,
		pathLive: make(map[paths.ID]int),
	}
}

// commsKey canonically encodes a community set as announced (order
// preserved: it keys the route shape, not the semantic set).
func commsKey(cs bgp.Communities) string {
	if len(cs) == 0 {
		return ""
	}
	b := make([]byte, 0, 4*len(cs))
	for _, c := range cs {
		b = append(b, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
	return string(b)
}

// group returns (creating on first sight) the derived group of a route
// shape. New mineable groups resolve their setter immediately when the
// pinpointing is relationship-independent, or against the current
// oracle otherwise (stale answers are corrected at window close).
func (m *windowMiner) group(path paths.ID, comms bgp.Communities, ckey string) *windowGroup {
	k := groupKey{path: path, comms: ckey}
	if g, ok := m.groups[k]; ok {
		return g
	}
	g := &windowGroup{path: path, comms: comms, byPrefix: make(map[bgp.Prefix]int)}
	p := m.store.Path(path)
	g.empty = len(p) == 0
	g.bogon = hasBogon(p)
	g.cycle = hasCycle(p)
	if len(comms) > 0 {
		if entry, ok := m.dict.IdentifyIXP(comms); ok {
			g.entry = entry
			g.relComms = entry.Scheme.RelevantCommunities(comms)
			g.relKey = g.relComms.Dedup().String()
			if g.mineable() {
				positions := 0
				for _, a := range p {
					if entry.IsMember(a) {
						positions++
					}
				}
				g.relsDep = positions > 2
			}
		}
	}
	if g.mineable() {
		if g.relsDep {
			g.registered = true
			m.relsDeps = append(m.relsDeps, g)
			if m.rel != nil {
				g.setter, g.resolved = PinpointSetter(p, g.entry, m.rel)
			}
		} else {
			g.setter, g.resolved = PinpointSetter(p, g.entry, nil)
		}
	}
	m.groups[k] = g
	return g
}

// apply registers one live-route delta (+1 announce, -1 withdraw) for
// the route shape at the given prefix.
func (m *windowMiner) apply(g *windowGroup, prefix bgp.Prefix, delta int) {
	wasDead := g.refs == 0
	g.refs += delta
	// A rels-dependent shape coming back to life after closeWindow
	// compacted it away re-enters the re-pinpoint list (its recorded
	// setter may be stale relative to the current oracle; the next
	// window close corrects it, exactly like a freshly created shape).
	if wasDead && g.refs > 0 && g.relsDep && !g.registered {
		g.registered = true
		m.relsDeps = append(m.relsDeps, g)
	}
	if n := g.byPrefix[prefix] + delta; n == 0 {
		delete(g.byPrefix, prefix)
	} else {
		g.byPrefix[prefix] = n
	}
	switch {
	case g.bogon:
		m.dropBogon += delta
	case g.cycle:
		m.dropCycle += delta
	}
	if g.keptPath() {
		before := m.pathLive[g.path]
		now := before + delta
		if now == 0 {
			delete(m.pathLive, g.path)
		} else {
			m.pathLive[g.path] = now
		}
		if m.rel != nil {
			if before == 0 && now > 0 {
				m.rel.AddPath(g.path)
			} else if before > 0 && now == 0 {
				m.rel.RemovePath(g.path)
			}
		}
	}
	if g.mineable() && g.resolved {
		m.obs.add(g.entry.Name, g.setter, prefix, g.relKey, g.relComms, delta)
	}
}

// moveContributions shifts all of g's live observation counts from its
// recorded (resolved, setter) state to the freshly pinpointed one.
func (m *windowMiner) moveContributions(g *windowGroup, resolved bool, setter bgp.ASN) {
	if g.resolved == resolved && (!resolved || g.setter == setter) {
		return
	}
	if g.resolved {
		for p, n := range g.byPrefix {
			m.obs.add(g.entry.Name, g.setter, p, g.relKey, g.relComms, -n)
		}
	}
	g.resolved, g.setter = resolved, setter
	if g.resolved {
		for p, n := range g.byPrefix {
			m.obs.add(g.entry.Name, g.setter, p, g.relKey, g.relComms, n)
		}
	}
}

// closeWindow derives one window's inference outcome from the
// maintained state: commit the relation oracle, re-pinpoint the
// relationship-dependent groups against it, and run the reciprocity
// mesh inference over the refcounted store.
func (m *windowMiner) closeWindow(w *PassiveWindow) {
	m.rel.Commit()
	// Re-pinpoint the live rels-dependent shapes, compacting dead ones
	// out of the list so per-window cost tracks the live shape set, not
	// the trace's all-time one (withdrawn shapes re-register in apply
	// if they come back).
	live := m.relsDeps[:0]
	for _, g := range m.relsDeps {
		if g.refs == 0 {
			g.registered = false
			continue
		}
		live = append(live, g)
		setter, ok := PinpointSetter(m.store.Path(g.path), g.entry, m.rel)
		m.moveContributions(g, ok, setter)
	}
	for i := len(live); i < len(m.relsDeps); i++ {
		m.relsDeps[i] = nil
	}
	m.relsDeps = live
	w.Dropped.Bogon = m.dropBogon
	w.Dropped.Cycle = m.dropCycle
	w.RelLinks = m.rel.LinkCount()
	w.P2PRels = countP2P(m.rel)
	w.Result = InferLinks(m.dict, m.obs)
}

// countP2P tallies p2p-labelled links through the allocation-free
// iterator.
func countP2P(rels relation.Oracle) int {
	n := 0
	rels.ForEachLink(func(_ topology.LinkKey, r relation.Rel) bool {
		if r == relation.RelP2P {
			n++
		}
		return true
	})
	return n
}

// sortASNs sorts ascending in place.
func sortASNs(s []bgp.ASN) {
	slices.Sort(s)
}
