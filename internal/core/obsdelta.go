// Delta-maintained windowed mining: the incremental counterpart of
// mineLiveTable. Announce/withdraw events apply as +/- deltas to
// reference-counted (setter, member, prefix-group) observation counts,
// so a window's ML mesh is derived from the maintained store instead of
// re-mining every live route. Routes are grouped by their (path,
// community-set) shape; each group's hygiene flags, IXP attribution and
// — when the §4.2 pinpointing is relationship-independent — its setter
// are derived once, and only the relationship-dependent groups (three
// or more IXP participants on the path) are re-pinpointed at window
// close against the incrementally maintained relation oracle.
package core

import (
	"slices"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/par"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// obsSet is one counted community set observed for a (setter, prefix).
type obsSet struct {
	key string // canonical (sorted, dedup'd) encoding
	cs  bgp.Communities
	n   int
}

// prefixDelta holds the counted community sets of one (setter, prefix).
// Disagreement across feeders is rare (§4.3), so the set list is almost
// always length one; entries whose count returns to zero are pruned so
// the store tracks the live table, not the all-time history.
type prefixDelta struct {
	total int
	sets  []obsSet
}

// winner returns the canonical representative among the live sets: the
// lexicographically smallest key with a positive count. Deterministic
// and independent of insertion order, so a maintained store and one
// rebuilt from scratch agree byte-for-byte.
func (p *prefixDelta) winner() (string, bgp.Communities, bool) {
	bestKey, bestIdx := "", -1
	for i := range p.sets {
		if p.sets[i].n > 0 && (bestIdx < 0 || p.sets[i].key < bestKey) {
			bestKey, bestIdx = p.sets[i].key, i
		}
	}
	if bestIdx < 0 {
		return "", nil, false
	}
	return bestKey, p.sets[bestIdx].cs, true
}

// setterDelta aggregates one covered setter's per-prefix observations.
// votes/repr maintain the majority-vote tally incrementally: votes[k]
// counts the prefixes whose winning community set has canonical key k,
// adjusted whenever a prefix's winner transitions, so Filter costs
// O(distinct sets) instead of O(prefixes).
type setterDelta struct {
	prefixes map[bgp.Prefix]*prefixDelta
	active   int // prefixes with a positive total
	votes    map[string]int
	repr     map[string]bgp.Communities
	dirty    bool // queued in the store's dirty list since the last drain
}

// ixpDelta is one IXP's setter table.
type ixpDelta struct {
	setters map[bgp.ASN]*setterDelta
}

// DirtySetter names one (IXP, setter) whose observation counts changed
// since the last DrainDirty: the exact invalidation unit of the
// delta-maintained reciprocity mesh.
type DirtySetter struct {
	IXP    string
	Setter bgp.ASN
}

// obsShardCount is the fixed shard fan-out of DeltaObservations. It is
// independent of the worker count on purpose: shard assignment (and so
// per-shard op order and the merged dirty-list order) never changes
// with WindowOptions.Workers, which is half of the worker-count
// invariance argument. 32 shards keep the per-shard maps small enough
// that an 8-worker pool stays busy without pathological imbalance.
const obsShardCount = 32

// obsShardOf hashes a setter to its shard. Deltas for one setter always
// land in one shard, so applying each shard's op queue in order
// reproduces the sequential per-setter op order exactly.
func obsShardOf(setter bgp.ASN) int {
	return int(uint32(setter) * 0x9E3779B1 >> 27)
}

// obsShard is one shard of the store: its own per-IXP setter tables and
// its own dirty list. Shards never share state, so a worker pool can
// apply per-shard op queues concurrently.
type obsShard struct {
	byIXP     map[string]*ixpDelta
	dirtyList []DirtySetter
}

// DeltaObservations is a reference-counted observation store: the
// C_{a,p} of §4.1 step 3 maintained under announce (+1) and withdraw
// (-1) deltas. It implements ObservationSource, so InferLinks derives
// the per-window mesh from it directly; with dirty tracking enabled it
// additionally records which (IXP, setter) pairs changed, so MeshState
// re-derives only those at window close. State is sharded by setter
// hash: deltas for different shards may be applied concurrently, and
// DrainDirty merges the per-shard dirty lists in fixed shard order, so
// the merged order is deterministic and worker-count-invariant.
type DeltaObservations struct {
	shards     [obsShardCount]obsShard
	trackDirty bool
}

// NewDeltaObservations returns an empty store.
func NewDeltaObservations() *DeltaObservations {
	o := &DeltaObservations{}
	for i := range o.shards {
		o.shards[i].byIXP = make(map[string]*ixpDelta)
	}
	return o
}

// TrackDirty turns on dirty-setter tracking (used by the incremental
// mesh; the remine fallback skips the bookkeeping).
func (o *DeltaObservations) TrackDirty() { o.trackDirty = true }

// DrainDirty appends the setters dirtied since the last drain to dst
// and resets the tracking, merging the per-shard lists in shard order
// (within a shard, dirtying order). A setter pruned and re-created
// between drains may appear twice; consumers must dedup.
func (o *DeltaObservations) DrainDirty(dst []DirtySetter) []DirtySetter {
	for i := range o.shards {
		sh := &o.shards[i]
		dst = append(dst, sh.dirtyList...)
		for _, d := range sh.dirtyList {
			if x := sh.byIXP[d.IXP]; x != nil {
				if s := x.setters[d.Setter]; s != nil {
					s.dirty = false
				}
			}
		}
		sh.dirtyList = sh.dirtyList[:0]
	}
	return dst
}

// add applies one counted observation delta.
func (o *DeltaObservations) add(ixpName string, setter bgp.ASN, prefix bgp.Prefix, key string, cs bgp.Communities, delta int) {
	o.addShard(obsShardOf(setter), ixpName, setter, prefix, key, cs, delta)
}

// addShard is add with the setter's shard already resolved (the flush
// path computes it once at enqueue). Callers applying ops concurrently
// must partition them by shard.
func (o *DeltaObservations) addShard(shard int, ixpName string, setter bgp.ASN, prefix bgp.Prefix, key string, cs bgp.Communities, delta int) {
	sh := &o.shards[shard]
	x := sh.byIXP[ixpName]
	if x == nil {
		x = &ixpDelta{setters: make(map[bgp.ASN]*setterDelta)}
		sh.byIXP[ixpName] = x
	}
	s := x.setters[setter]
	if s == nil {
		s = &setterDelta{
			prefixes: make(map[bgp.Prefix]*prefixDelta),
			votes:    make(map[string]int),
			repr:     make(map[string]bgp.Communities),
		}
		x.setters[setter] = s
	}
	if o.trackDirty && !s.dirty {
		s.dirty = true
		sh.dirtyList = append(sh.dirtyList, DirtySetter{IXP: ixpName, Setter: setter})
	}
	p := s.prefixes[prefix]
	if p == nil {
		p = &prefixDelta{}
		s.prefixes[prefix] = p
	}
	oldKey, _, oldLive := p.winner()
	found := false
	for i := range p.sets {
		if p.sets[i].key == key {
			if p.sets[i].n += delta; p.sets[i].n == 0 {
				p.sets = append(p.sets[:i], p.sets[i+1:]...)
			}
			found = true
			break
		}
	}
	if !found {
		p.sets = append(p.sets, obsSet{key: key, cs: cs, n: delta})
	}
	if newKey, newCS, newLive := p.winner(); oldLive != newLive || oldKey != newKey {
		if oldLive {
			if s.votes[oldKey]--; s.votes[oldKey] == 0 {
				delete(s.votes, oldKey)
				delete(s.repr, oldKey)
			}
		}
		if newLive {
			s.votes[newKey]++
			s.repr[newKey] = newCS
		}
	}
	wasLive := p.total > 0
	p.total += delta
	if live := p.total > 0; live != wasLive {
		if live {
			s.active++
		} else {
			s.active--
		}
	}
	// Prune dead state so Setters/Filter iterate the live view only:
	// per-window cost must track the live table, not the trace's
	// all-time observation history.
	if p.total == 0 && len(p.sets) == 0 {
		delete(s.prefixes, prefix)
	}
	if s.active == 0 && len(s.prefixes) == 0 {
		delete(x.setters, setter)
	}
}

// Setters returns the covered RS members of an IXP in ascending order,
// unioned across the shards (the final sort erases shard order).
func (o *DeltaObservations) Setters(ixpName string) []bgp.ASN {
	var out []bgp.ASN
	for i := range o.shards {
		x := o.shards[i].byIXP[ixpName]
		if x == nil {
			continue
		}
		for setter, s := range x.setters {
			if s.active > 0 {
				out = append(out, setter)
			}
		}
	}
	sortASNs(out)
	return out
}

// Filter reconstructs the setter's export filter by majority vote over
// its per-prefix community sets, exactly like Observations.Filter: each
// live prefix votes its canonical community set, the most voted (ties
// to the smallest key) wins. The tally is maintained incrementally by
// add, so the vote scan is over the distinct community sets (almost
// always one), not the setter's prefixes.
func (o *DeltaObservations) Filter(ixpName string, setter bgp.ASN, scheme ixp.Scheme) (ixp.ExportFilter, bool) {
	x := o.shards[obsShardOf(setter)].byIXP[ixpName]
	if x == nil {
		return ixp.ExportFilter{}, false
	}
	s := x.setters[setter]
	if s == nil || s.active == 0 {
		return ixp.ExportFilter{}, false
	}
	bestKey, bestVotes := "", -1
	for k, v := range s.votes {
		if v > bestVotes || (v == bestVotes && k < bestKey) {
			bestKey, bestVotes = k, v
		}
	}
	return ixp.FilterFromCommunities(s.repr[bestKey], scheme), true
}

// Source reports passive coverage: the windowed pipeline only ever
// mines collector data.
func (o *DeltaObservations) Source(ixpName string, setter bgp.ASN) DataSource {
	if x := o.shards[obsShardOf(setter)].byIXP[ixpName]; x != nil {
		if s := x.setters[setter]; s != nil && s.active > 0 {
			return ObsPassive
		}
	}
	return 0
}

// windowGroup is the derived state of one distinct (path, communities)
// route shape. Everything but the relationship-dependent setter is
// fixed at creation; refs and byPrefix track the live routes currently
// carrying the shape.
type windowGroup struct {
	path  paths.ID
	comms bgp.Communities
	ckey  string // canonical comms encoding: its slot under groups[path]

	bogon, cycle, empty bool
	entry               *IXPEntry // nil: no unique IXP attribution
	relKey              string    // canonical key of the scheme-relevant subset
	relComms            bgp.Communities
	relsDep             bool // pinpointing consults the relation oracle
	registered          bool // currently listed in windowMiner.relsDeps
	resolved            bool
	setter              bgp.ASN

	refs      int
	deadEpoch int  // window epoch at which refs last hit zero
	queued    bool // currently in windowMiner.deadQueue
	byPrefix  map[bgp.Prefix]int
}

// mineable reports whether the shape can contribute observations at
// all: it survived hygiene and resolved to a unique IXP.
func (g *windowGroup) mineable() bool {
	return !g.bogon && !g.cycle && !g.empty && g.entry != nil
}

// keptPath reports whether the shape's path belongs to the public view
// relationship inference runs over.
func (g *windowGroup) keptPath() bool { return !g.bogon && !g.cycle && !g.empty }

// windowMiner maintains the incremental mining state across a windowed
// run: the route groups, the refcounted observation store, the live
// distinct-path counts feeding the relation oracle, and the hygiene
// drop tallies over the current live table.
// deadShapeGrace is how many window closes a (path, comms) shape stays
// in the lookup map after its last live route withdrew. Shapes that
// flap back inside the grace period keep their derived state (hygiene
// flags, IXP attribution, relevant-community key); shapes dead longer
// are compacted away so the map tracks the recently-live shape set, not
// the trace's all-time one.
const deadShapeGrace = 2

// deadShape is one sweep-queue entry: the shape and the epoch whose
// close enqueued it.
type deadShape struct {
	g     *windowGroup
	epoch int
}

// identShape is the memoized IXP attribution of one comms shape: the
// entry (nil when no unique attribution) and the scheme-relevant subset
// with its canonical key. relComms is shared read-only across every
// group carrying the shape.
type identShape struct {
	entry    *IXPEntry
	relComms bgp.Communities
	relKey   string
}

// obsOp is one deferred observation delta: the group carries the
// derived (IXP, setter, relevant-comms) state, so the op only records
// the prefix and sign. Ops are queued per setter shard during the
// window and flushed on the worker pool at close; a group's setter only
// moves at close (moveContributions, after the flush), so the shard
// recorded at enqueue time is still the setter's shard at flush time.
type obsOp struct {
	g      *windowGroup
	prefix bgp.Prefix
	delta  int
}

// pinResult is one re-pinpointed rels-dependent group's answer,
// computed concurrently at close and committed sequentially.
type pinResult struct {
	setter bgp.ASN
	ok     bool
}

type windowMiner struct {
	dict  *Dictionary
	store *paths.Store

	// workers sizes the close-time worker pool (resolved, >= 1). The
	// derived state is bit-identical for any value.
	workers int

	// obsQueue defers the window's observation deltas per setter shard
	// (incremental mode only; the remine fallback applies synchronously).
	obsQueue [obsShardCount][]obsOp

	pinScratch []pinResult

	// groups is keyed (path, canonical comms encoding); the two-level
	// shape lets callers probe with a scratch []byte key (string(b) map
	// access compiles allocation-free) before cloning anything.
	groups   map[paths.ID]map[string]*windowGroup
	relsDeps []*windowGroup // groups whose setter depends on the oracle

	// ident memoizes IXP attribution per comms shape. Attribution (and
	// the derived relevant-community subset/key) depends only on the
	// community set and the static dictionary snapshot, while groups are
	// keyed per (path, comms) — many paths carry the same comms shape, so
	// the memo turns the dominant IdentifyIXP cost of group creation into
	// a map hit. Entries are never swept: the map is bounded by distinct
	// comms shapes seen, far fewer than shapes × paths.
	ident map[string]identShape

	obs  *DeltaObservations
	rel  *relation.Incremental // nil in remine mode
	mesh *MeshState            // nil in remine mode

	pathLive map[paths.ID]int

	epoch     int // window closes so far
	deadQueue []deadShape

	dropBogon, dropCycle int
}

// newWindowMiner returns an empty miner. rel may be nil, in which case
// the caller owns relation maintenance, setter resolution and mesh
// derivation (the remine fallback); otherwise the miner maintains the
// reciprocity mesh incrementally through a MeshState fed by the
// observation store's dirty-setter tracking, running its close-time
// phases on a pool of workers goroutines.
func newWindowMiner(dict *Dictionary, store *paths.Store, rel *relation.Incremental, workers int) *windowMiner {
	m := &windowMiner{
		dict:     dict,
		store:    store,
		workers:  par.Workers(workers),
		groups:   make(map[paths.ID]map[string]*windowGroup),
		ident:    make(map[string]identShape),
		obs:      NewDeltaObservations(),
		rel:      rel,
		pathLive: make(map[paths.ID]int),
	}
	if rel != nil {
		rel.Workers = m.workers
		m.obs.TrackDirty()
		m.mesh = NewMeshState(dict)
	}
	return m
}

// appendCommsKey appends the canonical encoding of a community set as
// announced (order preserved: it keys the route shape, not the semantic
// set) to b, for allocation-free probing of the shape map.
func appendCommsKey(b []byte, cs bgp.Communities) []byte {
	for _, c := range cs {
		b = append(b, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
	return b
}

// commsKey materializes the canonical encoding as a string.
func commsKey(cs bgp.Communities) string {
	if len(cs) == 0 {
		return ""
	}
	return string(appendCommsKey(make([]byte, 0, 4*len(cs)), cs))
}

// group returns (creating on first sight) the derived group of a route
// shape. New mineable groups resolve their setter immediately when the
// pinpointing is relationship-independent, or against the current
// oracle otherwise (stale answers are corrected at window close).
func (m *windowMiner) group(path paths.ID, comms bgp.Communities, ckey string) *windowGroup {
	inner := m.groups[path]
	if inner == nil {
		inner = make(map[string]*windowGroup, 1)
		m.groups[path] = inner
	}
	if g, ok := inner[ckey]; ok {
		return g
	}
	g := &windowGroup{path: path, comms: comms, ckey: ckey, byPrefix: make(map[bgp.Prefix]int)}
	p := m.store.Path(path)
	g.empty = len(p) == 0
	g.bogon = hasBogon(p)
	g.cycle = hasCycle(p)
	if len(comms) > 0 {
		id, seen := m.ident[ckey]
		if !seen {
			if entry, ok := m.dict.IdentifyIXP(comms); ok {
				id.entry = entry
				id.relComms = entry.Scheme.RelevantCommunities(comms)
				id.relKey = id.relComms.Dedup().String()
			}
			m.ident[ckey] = id
		}
		if id.entry != nil {
			g.entry = id.entry
			g.relComms = id.relComms
			g.relKey = id.relKey
			if g.mineable() {
				positions := 0
				for _, a := range p {
					if id.entry.IsMember(a) {
						positions++
					}
				}
				g.relsDep = positions > 2
			}
		}
	}
	if g.mineable() {
		if g.relsDep {
			g.registered = true
			m.relsDeps = append(m.relsDeps, g)
			if m.rel != nil {
				g.setter, g.resolved = PinpointSetter(p, g.entry, m.rel)
			}
		} else {
			g.setter, g.resolved = PinpointSetter(p, g.entry, nil)
		}
	}
	inner[ckey] = g
	return g
}

// shapeCount reports the number of live shape entries in the lookup map
// (test hook for the dead-shape sweep).
func (m *windowMiner) shapeCount() int {
	n := 0
	for _, inner := range m.groups {
		n += len(inner)
	}
	return n
}

// apply registers one live-route delta (+1 announce, -1 withdraw) for
// the route shape at the given prefix.
func (m *windowMiner) apply(g *windowGroup, prefix bgp.Prefix, delta int) {
	wasDead := g.refs == 0
	g.refs += delta
	// A rels-dependent shape coming back to life after closeWindow
	// compacted it away re-enters the re-pinpoint list (its recorded
	// setter may be stale relative to the current oracle; the next
	// window close corrects it, exactly like a freshly created shape).
	if wasDead && g.refs > 0 && g.relsDep && !g.registered {
		g.registered = true
		m.relsDeps = append(m.relsDeps, g)
	}
	if !wasDead && g.refs == 0 {
		g.deadEpoch = m.epoch
		if !g.queued {
			g.queued = true
			m.deadQueue = append(m.deadQueue, deadShape{g: g, epoch: m.epoch})
		}
	}
	if n := g.byPrefix[prefix] + delta; n == 0 {
		delete(g.byPrefix, prefix)
	} else {
		g.byPrefix[prefix] = n
	}
	switch {
	case g.bogon:
		m.dropBogon += delta
	case g.cycle:
		m.dropCycle += delta
	}
	if g.keptPath() {
		before := m.pathLive[g.path]
		now := before + delta
		if now == 0 {
			delete(m.pathLive, g.path)
		} else {
			m.pathLive[g.path] = now
		}
		if m.rel != nil {
			if before == 0 && now > 0 {
				m.rel.AddPath(g.path)
			} else if before > 0 && now == 0 {
				m.rel.RemovePath(g.path)
			}
		}
	}
	if g.mineable() && g.resolved {
		if m.rel != nil {
			// Incremental mode: defer the delta into the setter's shard
			// queue; the close flushes all shards on the worker pool.
			// Per-setter op order is preserved (one setter, one shard),
			// and nothing reads the store until the flush completed.
			s := obsShardOf(g.setter)
			m.obsQueue[s] = append(m.obsQueue[s], obsOp{g: g, prefix: prefix, delta: delta})
		} else {
			m.obs.add(g.entry.Name, g.setter, prefix, g.relKey, g.relComms, delta)
		}
	}
}

// flushObs applies the window's queued observation deltas, one worker
// per shard. Each shard's queue is applied in enqueue (stream) order
// and shards share no state, so the resulting store is byte-identical
// to applying the whole stream sequentially.
//
//mlplint:allocfree
func (m *windowMiner) flushObs() {
	//mlplint:allocfree one pooled closure per window close fans out the shard flush
	par.Run(m.workers, obsShardCount, func(s int) {
		ops := m.obsQueue[s]
		for _, op := range ops {
			g := op.g
			m.obs.addShard(s, g.entry.Name, g.setter, op.prefix, g.relKey, g.relComms, op.delta)
		}
		for i := range ops {
			ops[i] = obsOp{}
		}
		m.obsQueue[s] = ops[:0]
	})
}

// moveContributions shifts all of g's live observation counts from its
// recorded (resolved, setter) state to the freshly pinpointed one.
func (m *windowMiner) moveContributions(g *windowGroup, resolved bool, setter bgp.ASN) {
	if g.resolved == resolved && (!resolved || g.setter == setter) {
		return
	}
	if g.resolved {
		for p, n := range g.byPrefix {
			m.obs.add(g.entry.Name, g.setter, p, g.relKey, g.relComms, -n)
		}
	}
	g.resolved, g.setter = resolved, setter
	if g.resolved {
		for p, n := range g.byPrefix {
			m.obs.add(g.entry.Name, g.setter, p, g.relKey, g.relComms, n)
		}
	}
}

// closeWindow derives one window's inference outcome from the
// maintained state: flush the deferred observation deltas shard-wise on
// the worker pool, commit the relation oracle (itself parallel over its
// shards), re-pinpoint the relationship-dependent groups against it
// (concurrent pure reads, sequential moves), apply the dirtied setters
// to the maintained reciprocity mesh per-IXP, and read the window's
// counters off the maintained state. Every phase is worker-count
// invariant, so the derived window is bit-identical to a sequential
// close. When retain is false (streaming replay) the mesh is not
// snapshotted, so the close allocates O(churn), not O(mesh).
func (m *windowMiner) closeWindow(w *PassiveWindow, retain bool) {
	m.flushObs()
	m.rel.Commit()
	// Re-pinpoint the live rels-dependent shapes, compacting dead ones
	// out of the list so per-window cost tracks the live shape set, not
	// the trace's all-time one (withdrawn shapes re-register in apply
	// if they come back). Pinpointing only reads the committed oracle,
	// so the answers are computed on the pool; the observation moves
	// mutate the store and commit sequentially in list order.
	live := m.relsDeps[:0]
	for _, g := range m.relsDeps {
		if g.refs == 0 {
			g.registered = false
			continue
		}
		live = append(live, g)
	}
	for i := len(live); i < len(m.relsDeps); i++ {
		m.relsDeps[i] = nil
	}
	m.relsDeps = live
	if cap(m.pinScratch) < len(live) {
		m.pinScratch = make([]pinResult, len(live))
	}
	pins := m.pinScratch[:len(live)]
	par.Run(m.workers, len(live), func(i int) {
		g := live[i]
		pins[i].setter, pins[i].ok = PinpointSetter(m.store.Path(g.path), g.entry, m.rel)
	})
	for i, g := range live {
		m.moveContributions(g, pins[i].ok, pins[i].setter)
	}
	w.Dropped.Bogon = m.dropBogon
	w.Dropped.Cycle = m.dropCycle
	w.RelLinks = m.rel.LinkCount()
	w.P2PRels = m.rel.P2PCount()
	m.mesh.Apply(m.obs, m.workers)
	w.MeshLinks = m.mesh.TotalLinks()
	w.Stability = m.mesh.CloseStability()
	if retain {
		w.Result = m.mesh.Snapshot(m.workers)
	}
	m.epoch++
	m.sweepDeadShapes()
}

// sweepDeadShapes compacts shapes whose refcount has been zero for at
// least deadShapeGrace window closes out of the lookup map. The queue
// is in enqueue order; a shape that died again more recently than the
// entry that carried it here is re-queued at its newest death epoch, so
// the grace period restarts on every flap. Requeued entries can land
// behind slightly newer ones, which only ever lengthens a shape's stay
// — the grace period is a lower bound.
func (m *windowMiner) sweepDeadShapes() {
	for len(m.deadQueue) > 0 {
		e := m.deadQueue[0]
		if e.epoch+deadShapeGrace > m.epoch {
			break
		}
		m.deadQueue[0] = deadShape{}
		m.deadQueue = m.deadQueue[1:]
		g := e.g
		g.queued = false
		if g.refs > 0 {
			continue
		}
		if g.deadEpoch+deadShapeGrace > m.epoch {
			g.queued = true
			m.deadQueue = append(m.deadQueue, deadShape{g: g, epoch: g.deadEpoch})
			continue
		}
		inner := m.groups[g.path]
		delete(inner, g.ckey)
		if len(inner) == 0 {
			delete(m.groups, g.path)
		}
	}
	if len(m.deadQueue) == 0 {
		m.deadQueue = nil // release the drained queue's backing array
	}
}

// countP2P tallies p2p-labelled links through the allocation-free
// iterator.
func countP2P(rels relation.Oracle) int {
	n := 0
	rels.ForEachLink(func(_ topology.LinkKey, r relation.Rel) bool {
		if r == relation.RelP2P {
			n++
		}
		return true
	})
	return n
}

// sortASNs sorts ascending in place.
func sortASNs(s []bgp.ASN) {
	slices.Sort(s)
}
