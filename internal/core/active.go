package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"mlpeering/internal/bgp"
	"mlpeering/internal/lg"
)

// MemberLG is a third-party looking glass run by an RS member, used for
// IXPs that do not expose their route servers directly (§4.1: "we can
// obtain RS communities from third-party LGs of networks connected to
// the IXP").
type MemberLG struct {
	Client *lg.Client
	Host   bgp.ASN
}

// IXPLGs lists the looking glasses available for one IXP.
type IXPLGs struct {
	// RS is the IXP's own route-server LG (nil when unavailable).
	RS *lg.Client
	// Members are third-party member LGs carrying the RS feed.
	Members []MemberLG
}

// ActiveConfig parameterizes the LG survey.
type ActiveConfig struct {
	// SamplePct is the fraction of each member's prefixes to query
	// (0.10 in the paper).
	SamplePct float64
	// MaxPrefixesPerMember caps the per-member sample (100).
	MaxPrefixesPerMember int
	// SkipPassiveCovered enables the equation-(2) optimization: members
	// already covered by passive data are not queried.
	SkipPassiveCovered bool
	// SortByMultiplicity enables the §4.3 optimization of querying
	// prefixes advertised by many members first.
	SortByMultiplicity bool
	// Parallel runs per-IXP surveys concurrently.
	Parallel bool
}

// DefaultActiveConfig returns the paper's settings.
func DefaultActiveConfig() ActiveConfig {
	return ActiveConfig{
		SamplePct:            0.10,
		MaxPrefixesPerMember: 100,
		SkipPassiveCovered:   true,
		SortByMultiplicity:   true,
		Parallel:             true,
	}
}

// ActiveResult is the outcome of the LG survey.
type ActiveResult struct {
	Obs *Observations
	// QueriesPerIXP is the measured cost c per IXP (equations 1/2).
	QueriesPerIXP map[string]int
	// MembersQueried counts neighbor-routes queries per IXP.
	MembersQueried map[string]int
	// PrefixMultiplicity records, per IXP, how many queried members
	// advertised each prefix (the Fig. 5 distribution).
	PrefixMultiplicity map[string]map[bgp.Prefix]int
}

// TotalQueries sums the per-IXP costs.
func (r *ActiveResult) TotalQueries() int {
	n := 0
	for _, q := range r.QueriesPerIXP {
		n += q
	}
	return n
}

// RunActive surveys every IXP's looking glasses per §4.1/§4.3.
// prefixHints maps origin ASes to prefixes they are known to originate
// (from passive data); it steers third-party member LG queries.
//
// The first survey error cancels the in-flight sibling surveys and is
// returned once they drain; whatever observations each survey collected
// before failing (or being cancelled) is still merged into the result,
// so a partial ActiveResult accompanies the error.
func RunActive(ctx context.Context, dict *Dictionary, lgs map[string]IXPLGs,
	passive *Observations, prefixHints map[bgp.ASN][]bgp.Prefix, cfg ActiveConfig) (*ActiveResult, error) {

	if cfg.SamplePct <= 0 {
		cfg.SamplePct = 0.10
	}
	if cfg.MaxPrefixesPerMember <= 0 {
		cfg.MaxPrefixesPerMember = 100
	}
	res := &ActiveResult{
		Obs:                NewObservations(),
		QueriesPerIXP:      make(map[string]int),
		MembersQueried:     make(map[string]int),
		PrefixMultiplicity: make(map[string]map[bgp.Prefix]int),
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	run := func(entry *IXPEntry, endpoints IXPLGs) {
		defer wg.Done()
		obs := NewObservations()
		var queries, membersQueried int
		var mult map[bgp.Prefix]int
		var err error
		if endpoints.RS != nil {
			queries, membersQueried, mult, err = surveyRSLG(ctx, entry, endpoints.RS, passive, cfg, obs)
		} else if len(endpoints.Members) > 0 {
			queries, membersQueried, err = surveyMemberLGs(ctx, entry, endpoints.Members, passive, prefixHints, cfg, obs)
		} else {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: active survey of %s: %w", entry.Name, err)
			cancel() // abort in-flight sibling surveys
		}
		// Merge even on error: a failed or cancelled survey's partial
		// observations are still valid measurements.
		res.Obs.Merge(obs)
		res.QueriesPerIXP[entry.Name] += queries
		res.MembersQueried[entry.Name] += membersQueried
		if mult != nil {
			res.PrefixMultiplicity[entry.Name] = mult
		}
	}

	for _, entry := range dict.Entries {
		endpoints, ok := lgs[entry.Name]
		if !ok {
			continue
		}
		wg.Add(1)
		if cfg.Parallel {
			go run(entry, endpoints)
		} else {
			run(entry, endpoints)
		}
	}
	wg.Wait()
	return res, firstErr
}

// sampleTarget returns P'_a: how many of a member's |Pa| prefixes we
// want community data for: ceil(|Pa| * SamplePct), clamped to
// [1, MaxPrefixesPerMember]. The product is computed in float — an
// integer percentage (int(SamplePct*100)) truncates rates like 0.29 to
// 28% and under-samples — with a small epsilon so representation noise
// (10 * 0.1 = 1.0000000000000002) cannot round a whole target up.
func sampleTarget(numPrefixes int, cfg ActiveConfig) int {
	if numPrefixes == 0 {
		return 0
	}
	t := int(math.Ceil(float64(numPrefixes)*cfg.SamplePct - 1e-9))
	if t < 1 {
		t = 1
	}
	if t > cfg.MaxPrefixesPerMember {
		t = cfg.MaxPrefixesPerMember
	}
	return t
}

// surveyRSLG implements steps 1-3 of §4.1 against an IXP's own LG.
func surveyRSLG(ctx context.Context, entry *IXPEntry, client *lg.Client,
	passive *Observations, cfg ActiveConfig, obs *Observations) (queries, membersQueried int, mult map[bgp.Prefix]int, err error) {

	client.ResetQueryCount()

	// Step 1: connectivity from the LG (the most reliable source).
	peers, err := client.Summary(ctx)
	if err != nil {
		return client.QueryCount(), 0, nil, err
	}
	members := make([]bgp.ASN, 0, len(peers))
	addrOf := make(map[bgp.ASN]lg.PeerSummary, len(peers))
	for _, p := range peers {
		members = append(members, p.ASN)
		addrOf[p.ASN] = p
	}
	entry.SetMembers(members, SourceLG)

	// Step 2: per-member advertised prefixes, skipping passive-covered
	// members (equation 2).
	need := make(map[bgp.ASN]int)
	advertisers := make(map[bgp.Prefix][]bgp.ASN)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, m := range members {
		if cfg.SkipPassiveCovered && passive != nil && passive.Covered(entry.Name, m) {
			// Equation (2): no queries for this member, but its
			// passively observed prefix set still informs multiplicity
			// accounting and prefix ordering.
			for _, p := range passive.Prefixes(entry.Name, m) {
				advertisers[p] = append(advertisers[p], m)
			}
			continue
		}
		prefixes, err := client.NeighborRoutes(ctx, addrOf[m].Addr)
		if err != nil {
			return client.QueryCount(), membersQueried, nil, err
		}
		membersQueried++
		need[m] = sampleTarget(len(prefixes), cfg)
		for _, p := range prefixes {
			advertisers[p] = append(advertisers[p], m)
		}
	}

	mult = make(map[bgp.Prefix]int, len(advertisers))
	for p, as := range advertisers {
		mult[p] = len(as)
	}

	// Step 3: prefix queries, most-advertised first (§4.3) so one query
	// covers several members.
	order := make([]bgp.Prefix, 0, len(advertisers))
	for p := range advertisers {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool {
		if cfg.SortByMultiplicity && len(advertisers[order[i]]) != len(advertisers[order[j]]) {
			return len(advertisers[order[i]]) > len(advertisers[order[j]])
		}
		return bgp.ComparePrefixes(order[i], order[j]) < 0
	})

	pending := 0
	for _, n := range need {
		if n > 0 {
			pending++
		}
	}
	for _, p := range order {
		if pending == 0 {
			break
		}
		useful := false
		for _, m := range advertisers[p] {
			if need[m] > 0 {
				useful = true
				break
			}
		}
		if !useful {
			continue
		}
		paths, err := client.Lookup(ctx, p)
		if err != nil {
			return client.QueryCount(), membersQueried, mult, err
		}
		for _, pi := range paths {
			if len(pi.Path) == 0 {
				continue
			}
			setter := pi.Path[0]
			if !entry.IsMember(setter) {
				continue
			}
			rel := entry.Scheme.RelevantCommunities(pi.Communities)
			obs.Add(entry.Name, setter, p, rel, ObsActive)
			if need[setter] > 0 {
				need[setter]--
				if need[setter] == 0 {
					pending--
				}
			}
		}
	}
	return client.QueryCount(), membersQueried, mult, nil
}

// surveyMemberLGs queries third-party member LGs: for each uncovered RS
// member, look up a sample of the prefixes it is known to originate and
// read the communities off the returned paths. Coverage is partial by
// nature: only setters that export toward the LG host are visible.
func surveyMemberLGs(ctx context.Context, entry *IXPEntry, lgs []MemberLG,
	passive *Observations, prefixHints map[bgp.ASN][]bgp.Prefix, cfg ActiveConfig, obs *Observations) (queries, membersQueried int, err error) {

	for _, m := range lgs {
		m.Client.ResetQueryCount()
	}
	lgIdx := 0
	for _, member := range entry.Members() {
		if cfg.SkipPassiveCovered && passive != nil && passive.Covered(entry.Name, member) {
			continue
		}
		hints := prefixHints[member]
		if len(hints) == 0 {
			continue
		}
		membersQueried++
		target := sampleTarget(len(hints), cfg)
		for _, p := range hints {
			if target == 0 {
				break
			}
			// Round-robin across the available member LGs.
			mlg := lgs[lgIdx%len(lgs)]
			lgIdx++
			paths, err := mlg.Client.Lookup(ctx, p)
			if err != nil {
				return tally(lgs), membersQueried, err
			}
			got := false
			for _, pi := range paths {
				if len(pi.Path) == 0 || pi.Path[0] != member {
					continue
				}
				if len(pi.Communities) == 0 {
					continue
				}
				rel := entry.Scheme.RelevantCommunities(pi.Communities)
				if len(rel) == 0 {
					continue
				}
				obs.Add(entry.Name, member, p, rel, ObsActive)
				got = true
			}
			if got {
				target--
			}
		}
	}
	return tally(lgs), membersQueried, nil
}

func tally(lgs []MemberLG) int {
	n := 0
	for _, m := range lgs {
		n += m.Client.QueryCount()
	}
	return n
}
