package core

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/lg"
)

func TestSampleTargetFractionalRates(t *testing.T) {
	cases := []struct {
		pct      float64
		in, want int
	}{
		// 10%: the paper's rate. 10 * 0.1 is 1.0000000000000002 in
		// float64; the epsilon guard keeps the whole target at 1.
		{0.10, 1, 1}, {0.10, 5, 1}, {0.10, 10, 1}, {0.10, 11, 2},
		{0.10, 100, 10}, {0.10, 2000, 100},
		// 7%: int(0.07*100) happens to survive truncation; ceil agrees.
		{0.07, 100, 7}, {0.07, 101, 8}, {0.07, 15, 2},
		// 29%: int(0.29*100) truncates to 28 and under-samples P'_a;
		// the float ceil keeps the full rate.
		{0.29, 100, 29}, {0.29, 10, 3}, {0.29, 7, 3},
	}
	for _, c := range cases {
		cfg := ActiveConfig{SamplePct: c.pct, MaxPrefixesPerMember: 100}
		if got := sampleTarget(c.in, cfg); got != c.want {
			t.Errorf("sampleTarget(%d, pct=%v) = %d, want %d", c.in, c.pct, got, c.want)
		}
	}
}

// fakeLGBackend is a scriptable lg.Backend for survey tests.
type fakeLGBackend struct {
	asn     bgp.ASN
	members []lg.PeerSummary
	routes  map[netip.Addr][]bgp.Prefix
	lookup  func(p bgp.Prefix) ([]lg.PathInfo, error)
}

func (b *fakeLGBackend) RouterID() netip.Addr { return netip.MustParseAddr("192.0.2.1") }
func (b *fakeLGBackend) LocalASN() bgp.ASN    { return b.asn }
func (b *fakeLGBackend) Summary() []lg.PeerSummary {
	return b.members
}
func (b *fakeLGBackend) NeighborRoutes(addr netip.Addr) ([]bgp.Prefix, error) {
	return b.routes[addr], nil
}
func (b *fakeLGBackend) Lookup(p bgp.Prefix) ([]lg.PathInfo, error) { return b.lookup(p) }

// TestRunActiveFirstErrorCancelsSiblings pins the failure semantics of
// the parallel LG survey: the first error cancels the in-flight sibling
// surveys, and every survey's partial observations still reach the
// merged result.
//
// Three IXPs run concurrently:
//   - DE-CIX succeeds completely;
//   - MSK-IX collects one observation, then fails — but only after
//     DE-CIX finished, so the success path is deterministic;
//   - ECIX's LG hangs until its request context is cancelled.
func TestRunActiveFirstErrorCancelsSiblings(t *testing.T) {
	mkAddr := func(last byte) netip.Addr { return netip.AddrFrom4([4]byte{172, 16, 0, last}) }
	pfx := func(s string) bgp.Prefix { return bgp.MustPrefix(s) }

	sites := []WebsiteData{
		{Name: "DE-CIX", Scheme: ixp.StandardScheme(6695), PublishesMemberList: true,
			PublishedRSMembers: []bgp.ASN{100, 200}},
		{Name: "MSK-IX", Scheme: ixp.StandardScheme(8631), PublishesMemberList: true,
			PublishedRSMembers: []bgp.ASN{100, 400}},
		{Name: "ECIX", Scheme: ixp.StandardScheme(9033), PublishesMemberList: true,
			PublishedRSMembers: []bgp.ASN{600, 700}},
	}
	dict, err := BuildDictionary(sites, nil)
	if err != nil {
		t.Fatal(err)
	}

	// DE-CIX: two members, one prefix each, both lookups succeed. After
	// the second lookup the survey is complete; okDone releases MSK-IX's
	// failing lookup.
	okDone := make(chan struct{})
	var okLookups atomic.Int32
	okB := &fakeLGBackend{
		asn: 6695,
		members: []lg.PeerSummary{
			{Addr: mkAddr(10), ASN: 100, PfxCount: 1},
			{Addr: mkAddr(20), ASN: 200, PfxCount: 1},
		},
		routes: map[netip.Addr][]bgp.Prefix{
			mkAddr(10): {pfx("10.0.0.0/24")},
			mkAddr(20): {pfx("10.0.1.0/24")},
		},
	}
	okB.lookup = func(p bgp.Prefix) ([]lg.PathInfo, error) {
		setter := bgp.ASN(100)
		if p == pfx("10.0.1.0/24") {
			setter = 200
		}
		if okLookups.Add(1) == 2 {
			defer close(okDone)
		}
		return []lg.PathInfo{{Path: []bgp.ASN{setter}, NextHop: mkAddr(99),
			Communities: bgp.Communities{bgp.MakeCommunity(6695, 6695)}, Best: true}}, nil
	}

	// MSK-IX: the lookup for member 100's prefix (sorted first) yields
	// an observation; the second lookup fails once DE-CIX is done.
	failB := &fakeLGBackend{
		asn: 8631,
		members: []lg.PeerSummary{
			{Addr: mkAddr(30), ASN: 100, PfxCount: 1},
			{Addr: mkAddr(40), ASN: 400, PfxCount: 1},
		},
		routes: map[netip.Addr][]bgp.Prefix{
			mkAddr(30): {pfx("20.0.0.0/24")},
			mkAddr(40): {pfx("20.0.1.0/24")},
		},
	}
	failB.lookup = func(p bgp.Prefix) ([]lg.PathInfo, error) {
		if p == pfx("20.0.0.0/24") {
			return []lg.PathInfo{{Path: []bgp.ASN{100}, NextHop: mkAddr(99),
				Communities: bgp.Communities{bgp.MakeCommunity(8631, 8631)}, Best: true}}, nil
		}
		<-okDone
		return nil, fmt.Errorf("route server unreachable")
	}

	srv := lg.NewServer()
	srv.Mount("decix", okB)
	srv.Mount("mskix", failB)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// ECIX: hangs until RunActive's cancellation propagates down to the
	// HTTP request. The 10s fallback keeps a broken cancellation path
	// from hanging the test; it fails the assertion instead.
	var slowCancelled atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			slowCancelled.Store(true)
		case <-time.After(10 * time.Second):
		}
		http.Error(w, "% timed out", http.StatusInternalServerError)
	}))
	defer slow.Close()

	lgs := map[string]IXPLGs{
		"DE-CIX": {RS: &lg.Client{BaseURL: ts.URL + "/decix"}},
		"MSK-IX": {RS: &lg.Client{BaseURL: ts.URL + "/mskix"}},
		"ECIX":   {RS: &lg.Client{BaseURL: slow.URL}},
	}
	cfg := DefaultActiveConfig()
	cfg.SkipPassiveCovered = false
	res, err := RunActive(context.Background(), dict, lgs, nil, nil, cfg)
	if err == nil {
		t.Fatal("RunActive returned nil error despite a failing survey")
	}
	if !strings.Contains(err.Error(), "MSK-IX") {
		t.Fatalf("first error should come from MSK-IX, got: %v", err)
	}
	// The client aborts the request on cancellation; the server handler
	// observes it asynchronously, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for !slowCancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !slowCancelled.Load() {
		t.Error("ECIX survey was not cancelled after the first error")
	}
	if res == nil {
		t.Fatal("partial result dropped")
	}
	// The successful survey is fully merged...
	for _, m := range []bgp.ASN{100, 200} {
		if !res.Obs.Covered("DE-CIX", m) {
			t.Errorf("DE-CIX member %d missing from merged observations", m)
		}
	}
	// ...and the failing survey's partial observations survive too.
	if !res.Obs.Covered("MSK-IX", 100) {
		t.Error("MSK-IX partial observation dropped on error")
	}
	if res.QueriesPerIXP["MSK-IX"] == 0 {
		t.Error("MSK-IX query cost dropped on error")
	}
}
