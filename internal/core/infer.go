package core

import (
	"hash/fnv"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// IXPInference is the per-IXP outcome of steps 4-5. Inferences are
// built by InferLinks and MeshState.Snapshot and are read-only views
// afterwards.
//
//mlplint:frozen
type IXPInference struct {
	Name string
	// Members is the best-known RS member list used for inference.
	Members []bgp.ASN
	// Filters holds the reconstructed export filter of every covered
	// member.
	Filters map[bgp.ASN]ixp.ExportFilter
	// Sources records how each covered member was observed.
	Sources map[bgp.ASN]DataSource
	// Links are the inferred multilateral peering links at this IXP.
	Links map[topology.LinkKey]bool

	covered []bgp.ASN // CoveredMembers cache, built on first call
}

// CoveredMembers returns the members with reconstructed filters,
// ascending. The sorted slice is computed once and cached (Filters is
// complete by the time anyone asks); callers must not modify it.
func (x *IXPInference) CoveredMembers() []bgp.ASN {
	if x.covered == nil {
		out := make([]bgp.ASN, 0, len(x.Filters))
		for m := range x.Filters {
			out = append(out, m)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		//mlplint:frozen idempotent memo: InferLinks prefills it in the builder; Snapshot skips the prefill to keep streaming window closes O(churn), so first read fills it with identical content
		x.covered = out
	}
	return x.covered
}

// PassiveCount and ActiveCount split coverage by source; members seen
// by both count as passive (they would not have been queried actively
// under equation 2).
func (x *IXPInference) PassiveCount() int {
	n := 0
	for _, s := range x.Sources {
		if s&ObsPassive != 0 {
			n++
		}
	}
	return n
}

// ActiveCount counts members covered only by active queries.
func (x *IXPInference) ActiveCount() int {
	n := 0
	for _, s := range x.Sources {
		if s&ObsPassive == 0 && s&ObsActive != 0 {
			n++
		}
	}
	return n
}

// Result is the complete inference outcome: a read-only view once its
// builder (InferLinks or MeshState.Snapshot) returns.
//
//mlplint:frozen
type Result struct {
	PerIXP map[string]*IXPInference
	// Links maps every inferred link to the IXPs it was inferred at
	// (multi-IXP links are the overlap discussed with Table 2).
	Links map[topology.LinkKey][]string
}

// TotalLinks returns the number of distinct links.
func (r *Result) TotalLinks() int { return len(r.Links) }

// MultiIXPLinks returns how many links appear at more than one IXP.
func (r *Result) MultiIXPLinks() int {
	n := 0
	for _, ixps := range r.Links {
		if len(ixps) > 1 {
			n++
		}
	}
	return n
}

// LinkCount returns the per-IXP link count (the "Links" column of
// Table 2).
func (r *Result) LinkCount(ixpName string) int {
	x, ok := r.PerIXP[ixpName]
	if !ok {
		return 0
	}
	return len(x.Links)
}

// ObservationSource is the read side of an observation store: what
// InferLinks needs to reconstruct filters and infer the mesh. It is
// implemented by the snapshot Observations and by the delta-maintained
// DeltaObservations of the incremental windowed pipeline.
type ObservationSource interface {
	// Setters returns the covered RS members of an IXP in ascending
	// order.
	Setters(ixpName string) []bgp.ASN
	// Filter reconstructs the setter's export filter by majority vote
	// over its per-prefix community sets.
	Filter(ixpName string, setter bgp.ASN, scheme ixp.Scheme) (ixp.ExportFilter, bool)
	// Source returns how a setter was covered (0 if not covered).
	Source(ixpName string, setter bgp.ASN) DataSource
}

// InferLinks executes steps 4-5 of §4.1 over the merged observations:
// reconstruct each covered member's export filter, build its allow set
// N_a, and infer a p2p link between a and a' iff each allows the other
// (the reciprocity rule).
//
//mlplint:frozen
func InferLinks(dict *Dictionary, obs ObservationSource) *Result {
	res := &Result{
		PerIXP: make(map[string]*IXPInference),
		Links:  make(map[topology.LinkKey][]string),
	}
	for _, entry := range dict.Entries {
		x := &IXPInference{
			Name:    entry.Name,
			Members: entry.Members(),
			Filters: make(map[bgp.ASN]ixp.ExportFilter),
			Sources: make(map[bgp.ASN]DataSource),
			Links:   make(map[topology.LinkKey]bool),
		}
		res.PerIXP[entry.Name] = x

		for _, setter := range obs.Setters(entry.Name) {
			if !entry.IsMember(setter) {
				continue // a stray observation outside known connectivity
			}
			f, ok := obs.Filter(entry.Name, setter, entry.Scheme)
			if !ok {
				continue
			}
			x.Filters[setter] = f
			x.Sources[setter] = obs.Source(entry.Name, setter)
		}

		covered := x.CoveredMembers()
		for i, a := range covered {
			fa := x.Filters[a]
			for _, b := range covered[i+1:] {
				fb := x.Filters[b]
				if fa.Allows(b) && fb.Allows(a) {
					x.Links[topology.MakeLinkKey(a, b)] = true
				}
			}
		}
		for k := range x.Links {
			res.Links[k] = append(res.Links[k], entry.Name)
		}
	}
	for k := range res.Links {
		sort.Strings(res.Links[k])
	}
	return res
}

// AppendMesh appends a canonical byte encoding of the inferred mesh to
// dst: every link in ascending (A, B) order with its sorted IXP
// attribution list. Two results over the same dictionary describe the
// same mesh iff their encodings are byte-equal; the windowed
// equivalence tests pin the incremental pipeline to the re-mine
// fallback with it.
func (r *Result) AppendMesh(dst []byte) []byte {
	keys := make([]topology.LinkKey, 0, len(r.Links))
	for k := range r.Links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	for _, k := range keys {
		dst = append(dst,
			byte(k.A>>24), byte(k.A>>16), byte(k.A>>8), byte(k.A),
			byte(k.B>>24), byte(k.B>>16), byte(k.B>>8), byte(k.B))
		for _, name := range r.Links[k] {
			dst = append(dst, name...)
			dst = append(dst, 0)
		}
		dst = append(dst, 0xFF)
	}
	return dst
}

// Fingerprint returns a 64-bit FNV-1a hash of the canonical mesh
// encoding (AppendMesh): two results over the same dictionary that
// describe the same mesh fingerprint equal. The serving tier keys
// HTTP ETags and stale-read detection on it, so the value must be a
// pure function of the inferred link set and its IXP attribution —
// never of wall-clock state.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(r.AppendMesh(nil))
	return h.Sum64()
}

// SumPerIXPLinks adds up the per-IXP link counts (larger than
// TotalLinks by exactly the multi-IXP overlap, as in Table 2).
func (r *Result) SumPerIXPLinks() int {
	n := 0
	for _, x := range r.PerIXP {
		n += len(x.Links)
	}
	return n
}
