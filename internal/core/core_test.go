package core

import (
	"strings"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/irr"
	"mlpeering/internal/ixp"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

func testDict(t *testing.T) *Dictionary {
	t.Helper()
	sites := []WebsiteData{
		{Name: "DE-CIX", Scheme: ixp.StandardScheme(6695), PublishesMemberList: true,
			PublishedRSMembers: []bgp.ASN{100, 200, 300, 8359}},
		{Name: "MSK-IX", Scheme: ixp.StandardScheme(8631), PublishesMemberList: true,
			PublishedRSMembers: []bgp.ASN{100, 400, 500}},
		{Name: "ECIX", Scheme: ixp.PrivateRangeScheme(9033), PublishesMemberList: true,
			PublishedRSMembers: []bgp.ASN{600, 700}},
	}
	d, err := BuildDictionary(sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func comms(t *testing.T, s string) bgp.Communities {
	t.Helper()
	cs, err := bgp.ParseCommunities(s)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestIdentifyIXPStrong(t *testing.T) {
	d := testDict(t)

	// ALL community names the IXP.
	e, ok := d.IdentifyIXP(comms(t, "6695:6695 0:200"))
	if !ok || e.Name != "DE-CIX" {
		t.Fatalf("got %v, %v", e, ok)
	}
	// INCLUDE with the RS ASN in the high half.
	e, ok = d.IdentifyIXP(comms(t, "0:8631 8631:400"))
	if !ok || e.Name != "MSK-IX" {
		t.Fatalf("got %v, %v", e, ok)
	}
	// Unrelated communities identify nothing.
	if _, ok := d.IdentifyIXP(comms(t, "3356:70 1299:20000")); ok {
		t.Fatal("identified from noise")
	}
}

func TestIdentifyIXPExcludeDisambiguation(t *testing.T) {
	d := testDict(t)

	// 0:200 is EXCLUDE at any standard-scheme IXP (the omitted-ALL
	// case of §4.2). 200 is a member only at DE-CIX.
	e, ok := d.IdentifyIXP(comms(t, "0:200"))
	if !ok || e.Name != "DE-CIX" {
		t.Fatalf("got %v, %v", e, ok)
	}
	// 0:100 is ambiguous: 100 is a member of both DE-CIX and MSK-IX.
	if _, ok := d.IdentifyIXP(comms(t, "0:100")); ok {
		t.Fatal("ambiguous combination identified")
	}
	// The combination {100, 300} is unique to DE-CIX.
	e, ok = d.IdentifyIXP(comms(t, "0:100 0:300"))
	if !ok || e.Name != "DE-CIX" {
		t.Fatalf("combination: got %v, %v", e, ok)
	}
	// A referenced AS that is nobody's member matches nothing.
	if _, ok := d.IdentifyIXP(comms(t, "0:999")); ok {
		t.Fatal("non-member exclude identified")
	}
}

func TestBuildDictionaryRejectsDuplicates(t *testing.T) {
	sites := []WebsiteData{
		{Name: "X", Scheme: ixp.StandardScheme(1)},
		{Name: "X", Scheme: ixp.StandardScheme(2)},
	}
	if _, err := BuildDictionary(sites, nil); err == nil {
		t.Fatal("duplicate IXP accepted")
	}
}

func TestDictionaryIRRFallbacks(t *testing.T) {
	rpsl := `as-set:  AS-NOLIST-RSMEMBERS
members: AS11, AS12
source:  SYNTH

aut-num: AS21
as-name: FOO
export:  to AS8714 announce ANY
source:  SYNTH
`
	objs, err := irr.Parse(strings.NewReader(rpsl))
	if err != nil {
		t.Fatal(err)
	}
	reg := irr.NewRegistry()
	for _, o := range objs {
		reg.Add(o)
	}
	sites := []WebsiteData{
		{Name: "NOLIST", Scheme: ixp.StandardScheme(4999)},
		{Name: "LINXLIKE", Scheme: ixp.StandardScheme(8714)},
	}
	d, err := BuildDictionary(sites, reg)
	if err != nil {
		t.Fatal(err)
	}
	if e := d.ByName("NOLIST"); e.Source() != SourceASSet || !e.IsMember(11) {
		t.Fatalf("as-set fallback: %v %v", e.Source(), e.Members())
	}
	if e := d.ByName("LINXLIKE"); e.Source() != SourceIRRSearch || !e.IsMember(21) {
		t.Fatalf("IRR search fallback: %v %v", e.Source(), e.Members())
	}
}

func TestEntrySourcePreference(t *testing.T) {
	e := &IXPEntry{Name: "X", Scheme: ixp.StandardScheme(1)}
	e.SetMembers([]bgp.ASN{1, 2}, SourceWebsite)
	// A weaker source cannot overwrite.
	e.SetMembers([]bgp.ASN{9}, SourceIRRSearch)
	if !e.IsMember(1) || e.IsMember(9) {
		t.Fatal("weaker source overwrote")
	}
	// LG can.
	e.SetMembers([]bgp.ASN{1, 2, 3}, SourceLG)
	if !e.IsMember(3) || e.MemberCount() != 3 {
		t.Fatal("LG source rejected")
	}
	// Empty update ignored.
	e.SetMembers(nil, SourceLG)
	if e.MemberCount() != 3 {
		t.Fatal("empty update wiped members")
	}
}

func TestObservationsFilterMajority(t *testing.T) {
	obs := NewObservations()
	scheme := ixp.StandardScheme(6695)
	// Three prefixes with the true filter, one polluted observation.
	truth := comms(t, "6695:6695 0:200")
	for i, cs := range []bgp.Communities{truth, truth, truth, comms(t, "0:6695 6695:300")} {
		p := bgp.PrefixFrom(bgp.MustPrefix("10.0.0.0/24").Addr(), 24)
		_ = p
		pfx := bgp.MustPrefix("10.0." + string(rune('0'+i)) + ".0/24")
		obs.Add("DE-CIX", 100, pfx, cs, ObsPassive)
	}
	f, ok := obs.Filter("DE-CIX", 100, scheme)
	if !ok {
		t.Fatal("no filter")
	}
	want := ixp.NewExportFilter(ixp.ModeAllExcept, 200)
	if !f.Equal(want) {
		t.Fatalf("filter = %v, want %v", f, want)
	}

	st := obs.Consistency("DE-CIX")
	if st.Setters != 1 || st.InconsistentSetters != 1 {
		t.Fatalf("consistency = %+v", st)
	}
	if st.DeviantPrefixFrac <= 0 || st.DeviantPrefixFrac > 0.5 {
		t.Fatalf("deviant frac = %v", st.DeviantPrefixFrac)
	}
}

func TestObservationsSourcesAndMerge(t *testing.T) {
	a := NewObservations()
	a.Add("X", 1, bgp.MustPrefix("10.0.0.0/24"), comms(t, "1:1"), ObsPassive)
	b := NewObservations()
	b.Add("X", 1, bgp.MustPrefix("10.0.1.0/24"), comms(t, "1:1"), ObsActive)
	b.Add("X", 2, bgp.MustPrefix("10.0.2.0/24"), comms(t, "1:1"), ObsActive)

	a.Merge(b)
	if a.Source("X", 1) != ObsPassive|ObsActive {
		t.Fatalf("source = %v", a.Source("X", 1))
	}
	if a.Source("X", 2) != ObsActive {
		t.Fatalf("source = %v", a.Source("X", 2))
	}
	if got := a.Setters("X"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("setters = %v", got)
	}
	if a.PrefixCount("X", 1) != 2 {
		t.Fatalf("prefix count = %d", a.PrefixCount("X", 1))
	}
	if !a.Covered("X", 2) || a.Covered("Y", 2) {
		t.Fatal("covered")
	}
	if got := a.IXPs(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("IXPs = %v", got)
	}
}

func TestPinpointSetter(t *testing.T) {
	entry := &IXPEntry{Name: "TIX", Scheme: ixp.StandardScheme(6695)}
	entry.SetMembers([]bgp.ASN{20, 30, 40}, SourceWebsite)

	// Case 1: fewer than two members.
	if _, ok := PinpointSetter([]bgp.ASN{1, 2, 20, 3}, entry, nil); ok {
		t.Fatal("case 1 resolved")
	}
	// Case 2: exactly two members -> closest to origin.
	s, ok := PinpointSetter([]bgp.ASN{1, 20, 30, 3}, entry, nil)
	if !ok || s != 30 {
		t.Fatalf("case 2 = %v, %v", s, ok)
	}
	// Case 3: three members; the p2p pair marks the RS crossing.
	paths := [][]bgp.ASN{
		{20, 30}, {30, 20}, // make 20-30 look p2p via conflicting votes
		{1, 20, 30},
		{2, 30, 20},
	}
	rels := relation.InferPaths(paths)
	if rels.Relationship(20, 30) != relation.RelP2P {
		t.Skip("synthetic relationship setup did not converge to p2p")
	}
	s, ok = PinpointSetter([]bgp.ASN{40, 20, 30, 5}, entry, rels)
	if !ok || s != 30 {
		t.Fatalf("case 3 = %v, %v", s, ok)
	}
	// Case 3 with no p2p member pair: unresolved.
	if _, ok := PinpointSetter([]bgp.ASN{40, 5, 20, 6, 30}, entry, rels); ok {
		t.Fatal("non-adjacent members resolved")
	}
}

func TestHygieneHelpers(t *testing.T) {
	if !hasBogon([]bgp.ASN{1, 23456, 2}) || hasBogon([]bgp.ASN{1, 2}) {
		t.Fatal("bogon detection")
	}
	if !hasCycle([]bgp.ASN{1, 2, 1}) || hasCycle([]bgp.ASN{1, 2, 3}) {
		t.Fatal("cycle detection")
	}
	s := paths.NewStore()
	if s.Intern([]bgp.ASN{1, 2}) == s.Intern([]bgp.ASN{1, 3}) {
		t.Fatal("distinct paths interned to one id")
	}
}

func TestSampleTarget(t *testing.T) {
	cfg := ActiveConfig{SamplePct: 0.10, MaxPrefixesPerMember: 100}
	cases := []struct{ in, want int }{
		{0, 0}, {1, 1}, {5, 1}, {10, 1}, {11, 2}, {100, 10}, {250, 25}, {2000, 100},
	}
	for _, c := range cases {
		if got := sampleTarget(c.in, cfg); got != c.want {
			t.Errorf("sampleTarget(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPathConfirms(t *testing.T) {
	// Host 10 validating link 10-20, path starts at 20.
	if !pathConfirms(10, []bgp.ASN{20, 30}, 10, 20) {
		t.Fatal("adjacent at host")
	}
	// Link deeper in the path, either orientation.
	if !pathConfirms(1, []bgp.ASN{5, 20, 10, 9}, 10, 20) {
		t.Fatal("mid-path")
	}
	if pathConfirms(1, []bgp.ASN{5, 20, 7, 10}, 10, 20) {
		t.Fatal("non-adjacent confirmed")
	}
	if !pathContains([]bgp.ASN{1, 2, 3}, 2) || pathContains([]bgp.ASN{1, 2, 3}, 9) {
		t.Fatal("pathContains")
	}
}

func TestInferLinksReciprocity(t *testing.T) {
	d := testDict(t)
	obs := NewObservations()
	// At DE-CIX: 100 allows all but excludes 300; 200 allows all;
	// 300 allows only 100.
	obs.Add("DE-CIX", 100, bgp.MustPrefix("10.0.0.0/24"), comms(t, "6695:6695 0:300"), ObsPassive)
	obs.Add("DE-CIX", 200, bgp.MustPrefix("10.0.1.0/24"), comms(t, "6695:6695"), ObsActive)
	obs.Add("DE-CIX", 300, bgp.MustPrefix("10.0.2.0/24"), comms(t, "0:6695 6695:100"), ObsActive)
	// A stray setter outside known connectivity is ignored.
	obs.Add("DE-CIX", 999, bgp.MustPrefix("10.0.3.0/24"), comms(t, "6695:6695"), ObsActive)

	res := InferLinks(d, obs)
	x := res.PerIXP["DE-CIX"]
	if len(x.Filters) != 3 {
		t.Fatalf("filters = %d", len(x.Filters))
	}
	// 100-200: mutual allow -> link.
	if !x.Links[topology.MakeLinkKey(100, 200)] {
		t.Fatal("100-200 missing")
	}
	// 100-300: 100 excludes 300 (and 300 includes 100, but not mutual).
	if x.Links[topology.MakeLinkKey(100, 300)] {
		t.Fatal("100-300 inferred despite exclude")
	}
	// 200-300: 300 does not include 200.
	if x.Links[topology.MakeLinkKey(200, 300)] {
		t.Fatal("200-300 inferred despite NONE+INCLUDE")
	}
	if res.TotalLinks() != 1 || res.SumPerIXPLinks() != 1 || res.MultiIXPLinks() != 0 {
		t.Fatalf("totals: %d %d %d", res.TotalLinks(), res.SumPerIXPLinks(), res.MultiIXPLinks())
	}
	if res.LinkCount("DE-CIX") != 1 || res.LinkCount("NOPE") != 0 {
		t.Fatal("LinkCount")
	}
	if x.PassiveCount() != 1 || x.ActiveCount() != 2 {
		t.Fatalf("coverage split: pasv=%d act=%d", x.PassiveCount(), x.ActiveCount())
	}
}
