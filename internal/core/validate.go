package core

import (
	"context"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/geo"
	"mlpeering/internal/lg"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// ValidationLG is a third-party looking glass used to confirm links.
type ValidationLG struct {
	Client   *lg.Client
	Host     bgp.ASN
	AllPaths bool
}

// Validator checks inferred links against looking glasses (§5.1): for
// every link relevant to an LG it queries up to MaxPrefixes
// geographically distant prefixes of the far endpoint and looks for the
// link in the returned AS paths.
type Validator struct {
	LGs []ValidationLG
	Geo *geo.Database
	// PrefixesByOrigin indexes publicly known prefixes by origin AS
	// (from passive data).
	PrefixesByOrigin map[bgp.ASN][]bgp.Prefix
	// Rels supplies customer relationships for LG relevance: an LG is
	// relevant to a link if its host is an endpoint or a customer of
	// one.
	Rels *relation.Inference
	// MaxPrefixes caps per-link queries (6 in the paper).
	MaxPrefixes int
}

// LGOutcome aggregates one looking glass's validation performance
// (Fig. 8: one point per LG).
type LGOutcome struct {
	Host      bgp.ASN
	AllPaths  bool
	Tested    int
	Confirmed int
}

// Fraction returns the confirmed fraction (1 for an idle LG).
func (o LGOutcome) Fraction() float64 {
	if o.Tested == 0 {
		return 1
	}
	return float64(o.Confirmed) / float64(o.Tested)
}

// ValidationResult summarizes a validation run.
type ValidationResult struct {
	// Tested / Confirmed count distinct links.
	Tested, Confirmed int
	// PerIXP breaks the counts down by IXP (Table 3).
	PerIXP map[string]struct{ Tested, Confirmed int }
	// PerLG holds per-looking-glass outcomes (Fig. 8). A link tested by
	// several LGs counts at each of them.
	PerLG []LGOutcome
}

// ConfirmedFraction returns the overall confirmation rate.
func (v *ValidationResult) ConfirmedFraction() float64 {
	if v.Tested == 0 {
		return 0
	}
	return float64(v.Confirmed) / float64(v.Tested)
}

// relevant reports whether the LG host can see the link (a,b): it is an
// endpoint or a direct customer of one.
func (v *Validator) relevant(host, a, b bgp.ASN) bool {
	if host == a || host == b {
		return true
	}
	if v.Rels == nil {
		return false
	}
	return v.Rels.Relationship(host, a) == relation.RelC2P ||
		v.Rels.Relationship(host, b) == relation.RelC2P
}

// pathContains reports whether asn appears in the displayed path.
func pathContains(path []bgp.ASN, asn bgp.ASN) bool {
	for _, x := range path {
		if x == asn {
			return true
		}
	}
	return false
}

// pathConfirms reports whether the displayed path contains the
// adjacency a-b in either direction. The LG host itself is the implicit
// first hop, so a path starting at b confirms a link a-b when host==a.
func pathConfirms(host bgp.ASN, path []bgp.ASN, a, b bgp.ASN) bool {
	full := append([]bgp.ASN{host}, path...)
	for i := 0; i+1 < len(full); i++ {
		x, y := full[i], full[i+1]
		if (x == a && y == b) || (x == b && y == a) {
			return true
		}
	}
	return false
}

// Validate tests the given inference result. Links are attributed to
// IXPs per result.Links; a link inferred at several IXPs counts toward
// each one's Table-3 row, like the paper's per-IXP accounting.
func (v *Validator) Validate(ctx context.Context, result *Result) (*ValidationResult, error) {
	out := &ValidationResult{PerIXP: make(map[string]struct{ Tested, Confirmed int })}
	maxPfx := v.MaxPrefixes
	if maxPfx <= 0 {
		maxPfx = 6
	}

	// Deterministic link order.
	links := make([]topology.LinkKey, 0, len(result.Links))
	for k := range result.Links {
		links = append(links, k)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})

	perLG := make(map[bgp.ASN]*LGOutcome, len(v.LGs))
	for _, l := range v.LGs {
		perLG[l.Host] = &LGOutcome{Host: l.Host, AllPaths: l.AllPaths}
	}

	for _, link := range links {
		tested, confirmed := false, false
		for _, l := range v.LGs {
			if !v.relevant(l.Host, link.A, link.B) {
				continue
			}
			// Query prefixes of the endpoint farther from the host.
			far := link.A
			if l.Host == link.A || (v.Rels != nil && v.Rels.Relationship(l.Host, link.A) == relation.RelC2P) {
				far = link.B
			}
			near := link.A
			if far == link.A {
				near = link.B
			}
			prefixes := v.PrefixesByOrigin[far]
			if len(prefixes) == 0 {
				continue
			}
			var chosen []bgp.Prefix
			if v.Geo != nil {
				chosen = v.Geo.SpreadSelect(prefixes, maxPfx)
			} else {
				chosen = prefixes
				if len(chosen) > maxPfx {
					chosen = chosen[:maxPfx]
				}
			}
			lgTested := false
			lgConfirmed := false
			for _, p := range chosen {
				paths, err := l.Client.Lookup(ctx, p)
				if err != nil {
					return nil, err
				}
				if len(paths) == 0 {
					continue
				}
				for _, pi := range paths {
					// A query exercises the link only when the LG's
					// view reaches the near endpoint at all; paths that
					// route around it say nothing about the link (§5.1:
					// "not observing a link does not necessarily mean
					// that it does not exist"). When it does reach it
					// but prefers another way onward, that is the
					// paper's "more preferred path existed" failure.
					if l.Host == near || pathContains(pi.Path, near) {
						lgTested = true
					}
					if pathConfirms(l.Host, pi.Path, link.A, link.B) {
						lgConfirmed = true
						break
					}
				}
				if lgConfirmed {
					lgTested = true
					break
				}
			}
			if lgTested {
				tested = true
				o := perLG[l.Host]
				o.Tested++
				if lgConfirmed {
					confirmed = true
					o.Confirmed++
				}
			}
			if confirmed {
				break // no need to burden further LGs
			}
		}
		if !tested {
			continue
		}
		out.Tested++
		if confirmed {
			out.Confirmed++
		}
		for _, ixpName := range result.Links[link] {
			agg := out.PerIXP[ixpName]
			agg.Tested++
			if confirmed {
				agg.Confirmed++
			}
			out.PerIXP[ixpName] = agg
		}
	}

	hosts := make([]bgp.ASN, 0, len(perLG))
	for h := range perLG {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, h := range hosts {
		out.PerLG = append(out.PerLG, *perLG[h])
	}
	return out, nil
}
