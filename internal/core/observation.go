package core

import (
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// DataSource tags how a community observation was obtained.
type DataSource int

// Data sources for observations.
const (
	ObsPassive DataSource = 1 << iota
	ObsActive
)

// Observations accumulates reachability data: per IXP and per RS setter,
// the community sets seen on its prefix announcements. It is the C_{a,p}
// of §4.1 step 3, merged across passive and active collection.
type Observations struct {
	// data[ixp][setter][prefix] = communities (scheme-relevant subset)
	data map[string]map[bgp.ASN]map[bgp.Prefix]bgp.Communities
	src  map[string]map[bgp.ASN]DataSource
}

// NewObservations returns an empty store.
func NewObservations() *Observations {
	return &Observations{
		data: make(map[string]map[bgp.ASN]map[bgp.Prefix]bgp.Communities),
		src:  make(map[string]map[bgp.ASN]DataSource),
	}
}

// Add records one observation. Repeated observations of the same
// (ixp, setter, prefix) keep the latest community set.
func (o *Observations) Add(ixpName string, setter bgp.ASN, prefix bgp.Prefix, cs bgp.Communities, src DataSource) {
	m := o.data[ixpName]
	if m == nil {
		m = make(map[bgp.ASN]map[bgp.Prefix]bgp.Communities)
		o.data[ixpName] = m
	}
	pm := m[setter]
	if pm == nil {
		pm = make(map[bgp.Prefix]bgp.Communities)
		m[setter] = pm
	}
	pm[prefix] = cs.Clone()

	sm := o.src[ixpName]
	if sm == nil {
		sm = make(map[bgp.ASN]DataSource)
		o.src[ixpName] = sm
	}
	sm[setter] |= src
}

// Merge folds other into o.
func (o *Observations) Merge(other *Observations) {
	for ixpName, setters := range other.data {
		for setter, prefixes := range setters {
			for p, cs := range prefixes {
				o.Add(ixpName, setter, p, cs, other.src[ixpName][setter])
			}
		}
	}
}

// Setters returns the covered RS members of an IXP in ascending order.
func (o *Observations) Setters(ixpName string) []bgp.ASN {
	m := o.data[ixpName]
	out := make([]bgp.ASN, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Source returns how a setter was covered (0 if not covered).
func (o *Observations) Source(ixpName string, setter bgp.ASN) DataSource {
	return o.src[ixpName][setter]
}

// Covered reports whether any communities were observed for the setter.
func (o *Observations) Covered(ixpName string, setter bgp.ASN) bool {
	return len(o.data[ixpName][setter]) > 0
}

// PrefixCount returns the number of distinct prefixes observed for a
// setter.
func (o *Observations) PrefixCount(ixpName string, setter bgp.ASN) int {
	return len(o.data[ixpName][setter])
}

// Prefixes returns the distinct prefixes observed for a setter in
// deterministic order: the P^passive_a of equation (2), reused by the
// active survey for multiplicity accounting without re-querying.
func (o *Observations) Prefixes(ixpName string, setter bgp.ASN) []bgp.Prefix {
	pm := o.data[ixpName][setter]
	out := make([]bgp.Prefix, 0, len(pm))
	for p := range pm {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return bgp.ComparePrefixes(out[i], out[j]) < 0 })
	return out
}

// Filter reconstructs the setter's export filter by majority vote over
// its per-prefix community sets. The paper found announcements are
// remarkably consistent (<0.5% of members show any disagreement, §4.3),
// so the vote is almost always unanimous.
func (o *Observations) Filter(ixpName string, setter bgp.ASN, scheme ixp.Scheme) (ixp.ExportFilter, bool) {
	pm := o.data[ixpName][setter]
	if len(pm) == 0 {
		return ixp.ExportFilter{}, false
	}
	// Count votes by canonical community-set representation.
	votes := make(map[string]int)
	repr := make(map[string]bgp.Communities)
	for _, cs := range pm {
		key := cs.Dedup().String()
		votes[key]++
		repr[key] = cs
	}
	bestKey, bestVotes := "", -1
	for k, v := range votes {
		if v > bestVotes || (v == bestVotes && k < bestKey) {
			bestKey, bestVotes = k, v
		}
	}
	return ixp.FilterFromCommunities(repr[bestKey], scheme), true
}

// ConsistencyStats reports, per the §4.3 measurement, how many covered
// setters used differing community sets across their prefixes and what
// fraction of their prefixes deviated from their majority set.
type ConsistencyStats struct {
	Setters             int
	InconsistentSetters int
	DeviantPrefixFrac   float64 // among inconsistent setters
}

// Consistency computes ConsistencyStats for one IXP.
func (o *Observations) Consistency(ixpName string) ConsistencyStats {
	var st ConsistencyStats
	var deviantSum float64
	for _, setter := range o.Setters(ixpName) {
		pm := o.data[ixpName][setter]
		if len(pm) == 0 {
			continue
		}
		st.Setters++
		votes := make(map[string]int)
		total := 0
		for _, cs := range pm {
			votes[cs.Dedup().String()]++
			total++
		}
		if len(votes) <= 1 {
			continue
		}
		st.InconsistentSetters++
		max := 0
		for _, v := range votes {
			if v > max {
				max = v
			}
		}
		deviantSum += float64(total-max) / float64(total)
	}
	if st.InconsistentSetters > 0 {
		st.DeviantPrefixFrac = deviantSum / float64(st.InconsistentSetters)
	}
	return st
}

// IXPs returns all IXP names with observations, sorted.
func (o *Observations) IXPs() []string {
	out := make([]string, 0, len(o.data))
	for name := range o.data {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
