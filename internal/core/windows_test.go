package core

import (
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
)

func upd(ts time.Time, peer bgp.ASN, path []bgp.ASN, cs bgp.Communities, nlri, withdrawn []bgp.Prefix) *mrt.BGP4MPMessage {
	u := &bgp.Update{Withdrawn: withdrawn, NLRI: nlri}
	if len(nlri) > 0 {
		u.Attrs = &bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      bgp.NewASPath(path...),
			Communities: cs,
		}
	}
	return &mrt.BGP4MPMessage{Timestamp: ts, PeerASN: peer, Message: u, AS4: true}
}

// TestRunPassiveCountsWithdrawals table-tests the fixed withdrawal
// handling: withdrawn-only updates and mixed NLRI+withdrawn updates are
// tallied instead of being silently ignored.
func TestRunPassiveCountsWithdrawals(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	p3 := bgp.MustPrefix("10.3.0.0/24")

	cases := []struct {
		name              string
		updates           []*mrt.BGP4MPMessage
		wantWithdrawals   int
		wantWithdrawnOnly int
	}{
		{
			name: "announce-only",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, []bgp.ASN{100, 200}, nil, []bgp.Prefix{p1}, nil),
			},
		},
		{
			name: "withdrawn-only",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, nil, nil, nil, []bgp.Prefix{p1, p2}),
			},
			wantWithdrawals:   2,
			wantWithdrawnOnly: 1,
		},
		{
			name: "mixed nlri and withdrawn",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, []bgp.ASN{100, 200}, nil, []bgp.Prefix{p1}, []bgp.Prefix{p2, p3}),
			},
			wantWithdrawals: 2,
		},
		{
			name: "flap sequence",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, nil, nil, nil, []bgp.Prefix{p1}),
				upd(t0.Add(time.Second), 100, []bgp.ASN{100, 200}, nil, []bgp.Prefix{p1}, nil),
				upd(t0.Add(2*time.Second), 100, nil, nil, nil, []bgp.Prefix{p1}),
			},
			wantWithdrawals:   2,
			wantWithdrawnOnly: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunPassive(nil, tc.updates, d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Withdrawals != tc.wantWithdrawals {
				t.Fatalf("Withdrawals = %d, want %d", res.Withdrawals, tc.wantWithdrawals)
			}
			if res.WithdrawnOnlyUpdates != tc.wantWithdrawnOnly {
				t.Fatalf("WithdrawnOnlyUpdates = %d, want %d", res.WithdrawnOnlyUpdates, tc.wantWithdrawnOnly)
			}
		})
	}
}

// TestRunPassiveWindows drives the windowed runner over a synthetic
// announce/withdraw trace: a withdrawal must end the route's lifetime,
// removing its setter's coverage (and the inferred link) from later
// windows, and a re-announcement must restore it.
func TestRunPassiveWindows(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	pBogon := bgp.MustPrefix("10.9.0.0/24")
	all := comms(t, "6695:6695")

	updates := []*mrt.BGP4MPMessage{
		// Base state, before the first window opens: two DE-CIX setters
		// (200 and 300) with open policies seen at collector peer 100,
		// plus a bogon-path route that hygiene must drop.
		upd(t0.Add(-2*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, bgp.ASTrans, 300}, nil, []bgp.Prefix{pBogon}, nil),
		// Window 1: the route through setter 300 is withdrawn.
		upd(t0.Add(w+time.Minute), 100, nil, nil, nil, []bgp.Prefix{p2}),
		// Window 2: it comes back.
		upd(t0.Add(2*w+time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
	}

	res, err := RunPassiveWindows(nil, updates, d, WindowOptions{Start: t0, Window: w, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(res.Windows))
	}

	w0, w1, w2 := &res.Windows[0], &res.Windows[1], &res.Windows[2]
	if w0.LiveRoutes != 3 {
		t.Fatalf("window 0 live = %d, want 3", w0.LiveRoutes)
	}
	if w0.Dropped.Bogon == 0 {
		t.Fatal("window 0: bogon route not dropped")
	}
	if got := w0.Result.TotalLinks(); got != 1 {
		t.Fatalf("window 0 links = %d, want 1 (200--300)", got)
	}

	if w1.Withdrawn != 1 || w1.WithdrawnOnlyUpdates != 1 {
		t.Fatalf("window 1 withdrawals = %d/%d, want 1/1", w1.Withdrawn, w1.WithdrawnOnlyUpdates)
	}
	if w1.LiveRoutes != 2 {
		t.Fatalf("window 1 live = %d, want 2", w1.LiveRoutes)
	}
	if got := w1.Result.TotalLinks(); got != 0 {
		t.Fatalf("window 1 links = %d, want 0 after withdrawal", got)
	}

	if w2.Announced != 1 {
		t.Fatalf("window 2 announced = %d, want 1", w2.Announced)
	}
	if got := w2.Result.TotalLinks(); got != 1 {
		t.Fatalf("window 2 links = %d, want 1 after re-announcement", got)
	}

	// Stability: full agreement in window 0 by convention, total churn
	// afterwards (1 link ↔ 0 links).
	if res.Stability[0] != 1 || res.Stability[1] != 0 || res.Stability[2] != 0 {
		t.Fatalf("stability = %v, want [1 0 0]", res.Stability)
	}
}

// TestRunPassiveWindowsValidation rejects degenerate options.
func TestRunPassiveWindowsValidation(t *testing.T) {
	d := testDict(t)
	if _, err := RunPassiveWindows(nil, nil, d, WindowOptions{Window: 0, Count: 1}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := RunPassiveWindows(nil, nil, d, WindowOptions{Window: time.Minute, Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
}
