package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
)

func upd(ts time.Time, peer bgp.ASN, path []bgp.ASN, cs bgp.Communities, nlri, withdrawn []bgp.Prefix) *mrt.BGP4MPMessage {
	u := &bgp.Update{Withdrawn: withdrawn, NLRI: nlri}
	if len(nlri) > 0 {
		u.Attrs = &bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      bgp.NewASPath(path...),
			Communities: cs,
		}
	}
	return &mrt.BGP4MPMessage{Timestamp: ts, PeerASN: peer, Message: u, AS4: true}
}

// TestRunPassiveCountsWithdrawals table-tests the fixed withdrawal
// handling: withdrawn-only updates and mixed NLRI+withdrawn updates are
// tallied instead of being silently ignored.
func TestRunPassiveCountsWithdrawals(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	p3 := bgp.MustPrefix("10.3.0.0/24")

	cases := []struct {
		name              string
		updates           []*mrt.BGP4MPMessage
		wantWithdrawals   int
		wantWithdrawnOnly int
	}{
		{
			name: "announce-only",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, []bgp.ASN{100, 200}, nil, []bgp.Prefix{p1}, nil),
			},
		},
		{
			name: "withdrawn-only",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, nil, nil, nil, []bgp.Prefix{p1, p2}),
			},
			wantWithdrawals:   2,
			wantWithdrawnOnly: 1,
		},
		{
			name: "mixed nlri and withdrawn",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, []bgp.ASN{100, 200}, nil, []bgp.Prefix{p1}, []bgp.Prefix{p2, p3}),
			},
			wantWithdrawals: 2,
		},
		{
			name: "flap sequence",
			updates: []*mrt.BGP4MPMessage{
				upd(t0, 100, nil, nil, nil, []bgp.Prefix{p1}),
				upd(t0.Add(time.Second), 100, []bgp.ASN{100, 200}, nil, []bgp.Prefix{p1}, nil),
				upd(t0.Add(2*time.Second), 100, nil, nil, nil, []bgp.Prefix{p1}),
			},
			wantWithdrawals:   2,
			wantWithdrawnOnly: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunPassive(nil, tc.updates, d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Withdrawals != tc.wantWithdrawals {
				t.Fatalf("Withdrawals = %d, want %d", res.Withdrawals, tc.wantWithdrawals)
			}
			if res.WithdrawnOnlyUpdates != tc.wantWithdrawnOnly {
				t.Fatalf("WithdrawnOnlyUpdates = %d, want %d", res.WithdrawnOnlyUpdates, tc.wantWithdrawnOnly)
			}
		})
	}
}

// TestRunPassiveWindows drives the windowed runner over a synthetic
// announce/withdraw trace: a withdrawal must end the route's lifetime,
// removing its setter's coverage (and the inferred link) from later
// windows, and a re-announcement must restore it.
func TestRunPassiveWindows(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	pBogon := bgp.MustPrefix("10.9.0.0/24")
	all := comms(t, "6695:6695")

	updates := []*mrt.BGP4MPMessage{
		// Base state, before the first window opens: two DE-CIX setters
		// (200 and 300) with open policies seen at collector peer 100,
		// plus a bogon-path route that hygiene must drop.
		upd(t0.Add(-2*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, bgp.ASTrans, 300}, nil, []bgp.Prefix{pBogon}, nil),
		// Window 1: the route through setter 300 is withdrawn.
		upd(t0.Add(w+time.Minute), 100, nil, nil, nil, []bgp.Prefix{p2}),
		// Window 2: it comes back.
		upd(t0.Add(2*w+time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
	}

	res, err := RunPassiveWindows(nil, updates, d, WindowOptions{Start: t0, Window: w, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(res.Windows))
	}

	w0, w1, w2 := &res.Windows[0], &res.Windows[1], &res.Windows[2]
	if w0.LiveRoutes != 3 {
		t.Fatalf("window 0 live = %d, want 3", w0.LiveRoutes)
	}
	if w0.Dropped.Bogon == 0 {
		t.Fatal("window 0: bogon route not dropped")
	}
	if got := w0.Result.TotalLinks(); got != 1 {
		t.Fatalf("window 0 links = %d, want 1 (200--300)", got)
	}

	if w1.Withdrawn != 1 || w1.WithdrawnOnlyUpdates != 1 {
		t.Fatalf("window 1 withdrawals = %d/%d, want 1/1", w1.Withdrawn, w1.WithdrawnOnlyUpdates)
	}
	if w1.LiveRoutes != 2 {
		t.Fatalf("window 1 live = %d, want 2", w1.LiveRoutes)
	}
	if got := w1.Result.TotalLinks(); got != 0 {
		t.Fatalf("window 1 links = %d, want 0 after withdrawal", got)
	}

	if w2.Announced != 1 {
		t.Fatalf("window 2 announced = %d, want 1", w2.Announced)
	}
	if got := w2.Result.TotalLinks(); got != 1 {
		t.Fatalf("window 2 links = %d, want 1 after re-announcement", got)
	}

	// Stability: full agreement in window 0 by convention, total churn
	// afterwards (1 link ↔ 0 links).
	if res.Stability[0] != 1 || res.Stability[1] != 0 || res.Stability[2] != 0 {
		t.Fatalf("stability = %v, want [1 0 0]", res.Stability)
	}
}

// flapTrace builds a trace exercising base-RIB state, mid-window
// flaps, setter withdrawal/restore, multi-participant paths (the
// rels-dependent §4.2 case 3) and bogon hygiene, across count windows.
func flapTrace(t *testing.T, t0 time.Time, w time.Duration) []*mrt.BGP4MPMessage {
	t.Helper()
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	p3 := bgp.MustPrefix("10.3.0.0/24")
	p4 := bgp.MustPrefix("10.4.0.0/24")
	pBogon := bgp.MustPrefix("10.9.0.0/24")
	all := comms(t, "6695:6695")

	return []*mrt.BGP4MPMessage{
		// Base state before the first window: three DE-CIX setters and a
		// bogon-path route that hygiene must drop.
		upd(t0.Add(-3*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),
		upd(t0.Add(-2*time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		// Case-3 path: three DE-CIX members (100, 200, 8359); the setter
		// depends on the window's relationship inference.
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, 200, 8359}, all, []bgp.Prefix{p4}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, bgp.ASTrans, 300}, nil, []bgp.Prefix{pBogon}, nil),

		// Window 0: a withdraw-then-reannounce flap of p1 inside the
		// window — the mesh at window close must not notice.
		upd(t0.Add(time.Minute), 100, nil, nil, nil, []bgp.Prefix{p1}),
		upd(t0.Add(2*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),

		// Window 1: setter 300 withdrawn; an unrelated route replaces a
		// slot (path change for the same (peer, prefix)).
		upd(t0.Add(w+time.Minute), 100, nil, nil, nil, []bgp.Prefix{p2}),
		upd(t0.Add(w+2*time.Minute), 100, []bgp.ASN{100, 8359, 300}, nil, []bgp.Prefix{p3}, nil),

		// Window 2: 300 re-announces (RS rejoin after a window away),
		// and the case-3 path is fully withdrawn — its shape must be
		// compacted out of the re-pinpoint list at this window's close.
		upd(t0.Add(2*w+time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		upd(t0.Add(2*w+2*time.Minute), 100, nil, nil, nil, []bgp.Prefix{p4}),

		// Window 3: the case-3 shape returns after a dead window: it
		// must re-register for re-pinpointing. Setter 200 also edits its
		// filter (excluding 300), killing the 200--300 link while both
		// stay covered.
		upd(t0.Add(3*w+time.Minute), 100, []bgp.ASN{100, 200, 8359}, all, []bgp.Prefix{p4}, nil),
		upd(t0.Add(3*w+2*time.Minute), 100, []bgp.ASN{100, 200}, comms(t, "6695:6695 0:300"), []bgp.Prefix{p1}, nil),
	}
}

// TestWindowedModesEquivalent pins the tentpole property at test scale:
// the incremental windowed path produces byte-identical per-window ML
// meshes — and identical counters — to the re-mine fallback.
func TestWindowedModesEquivalent(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	updates := flapTrace(t, t0, w)

	run := func(mode WindowsMode) *PassiveWindowsResult {
		res, err := RunPassiveWindows(nil, updates, d, WindowOptions{Start: t0, Window: w, Count: 4, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc, rem := run(WindowsIncremental), run(WindowsRemine)

	if len(inc.Windows) != len(rem.Windows) {
		t.Fatalf("window counts diverge: %d vs %d", len(inc.Windows), len(rem.Windows))
	}
	var a, b []byte
	for i := range inc.Windows {
		wi, wr := &inc.Windows[i], &rem.Windows[i]
		a = wi.Result.AppendMesh(a[:0])
		b = wr.Result.AppendMesh(b[:0])
		if !bytes.Equal(a, b) {
			t.Fatalf("window %d: meshes diverge (incremental %d links, remine %d)",
				i, wi.Result.TotalLinks(), wr.Result.TotalLinks())
		}
		if wi.LiveRoutes != wr.LiveRoutes || wi.Dropped != wr.Dropped ||
			wi.RelLinks != wr.RelLinks || wi.P2PRels != wr.P2PRels ||
			wi.MeshLinks != wr.MeshLinks ||
			wi.Announced != wr.Announced || wi.Withdrawn != wr.Withdrawn {
			t.Fatalf("window %d: counters diverge:\nincremental %+v\nremine      %+v", i, wi, wr)
		}
		if inc.Stability[i] != rem.Stability[i] {
			t.Fatalf("window %d: stability diverges: %v vs %v", i, inc.Stability[i], rem.Stability[i])
		}
	}
	// The trace must actually exercise the interesting machinery.
	if inc.Windows[0].Dropped.Bogon == 0 {
		t.Fatal("no bogon was dropped; trace too weak")
	}
	if inc.Windows[0].RelLinks == 0 {
		t.Fatal("no relationship links inferred; trace too weak")
	}
}

// TestWindowFlapRestoresObservationState drives a withdraw-then-
// reannounce flap through the miner inside a single window: every
// refcount — observation store, group refs, live-path counts, drop
// tallies — must return exactly to the pre-flap state.
func TestWindowFlapRestoresObservationState(t *testing.T) {
	d := testDict(t)
	store := paths.NewStore()
	m := newWindowMiner(d, store, relation.NewIncremental(store), 1)

	all := comms(t, "6695:6695")
	ck := commsKey(all)
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	id1 := store.Intern([]bgp.ASN{100, 200})
	id2 := store.Intern([]bgp.ASN{100, 300})

	m.apply(m.group(id1, all, ck), p1, 1)
	m.apply(m.group(id2, all, ck), p2, 1)

	snapshot := func() string {
		// The miner defers observation deltas until close; flush so the
		// snapshot sees the settled store.
		m.flushObs()
		return fmt.Sprintf("obs=%#v pathLive=%v drops=%d/%d refs=%d/%d",
			m.obs.shards[obsShardOf(200)].byIXP["DE-CIX"].setters[200].prefixes[p1],
			m.pathLive, m.dropBogon, m.dropCycle,
			m.group(id1, all, ck).refs, m.group(id2, all, ck).refs)
	}
	before := snapshot()
	var w1 PassiveWindow
	m.closeWindow(&w1, true)
	if w1.Result.TotalLinks() != 1 {
		t.Fatalf("pre-flap links = %d, want 1", w1.Result.TotalLinks())
	}

	// Flap: withdraw and re-announce the same routes within the window.
	m.apply(m.group(id1, all, ck), p1, -1)
	m.apply(m.group(id2, all, ck), p2, -1)
	m.apply(m.group(id1, all, ck), p1, 1)
	m.apply(m.group(id2, all, ck), p2, 1)

	if got := snapshot(); got != before {
		t.Fatalf("flap did not restore miner state:\nbefore %s\nafter  %s", before, got)
	}
	var w2 PassiveWindow
	m.closeWindow(&w2, true)
	var a, b []byte
	if a, b = w1.Result.AppendMesh(nil), w2.Result.AppendMesh(nil); !bytes.Equal(a, b) {
		t.Fatal("flap changed the inferred mesh")
	}

	// Full withdrawal empties the store's live view.
	m.apply(m.group(id1, all, ck), p1, -1)
	m.apply(m.group(id2, all, ck), p2, -1)
	var w3 PassiveWindow
	m.closeWindow(&w3, true)
	if w3.Result.TotalLinks() != 0 || len(m.obs.Setters("DE-CIX")) != 0 {
		t.Fatalf("withdrawn world still covered: %d links, setters %v",
			w3.Result.TotalLinks(), m.obs.Setters("DE-CIX"))
	}
}

// TestWindowedRSLeaveRejoin models an RS leave as the member's
// announcements losing their RS communities for a window, then
// regaining them: coverage (and the member's links) must vanish for
// exactly that window in both modes.
func TestWindowedRSLeaveRejoin(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	all := comms(t, "6695:6695")

	updates := []*mrt.BGP4MPMessage{
		upd(t0.Add(-2*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		// Window 1: 300 leaves the RS — same route, no RS communities.
		upd(t0.Add(w+time.Minute), 100, []bgp.ASN{100, 300}, nil, []bgp.Prefix{p2}, nil),
		// Window 2: 300 rejoins with its old policy.
		upd(t0.Add(2*w+time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
	}

	for _, mode := range []WindowsMode{WindowsIncremental, WindowsRemine} {
		res, err := RunPassiveWindows(nil, updates, d, WindowOptions{Start: t0, Window: w, Count: 3, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		links := []int{res.Windows[0].Result.TotalLinks(), res.Windows[1].Result.TotalLinks(), res.Windows[2].Result.TotalLinks()}
		if links[0] != 1 || links[1] != 0 || links[2] != 1 {
			t.Fatalf("%v: links per window = %v, want [1 0 1]", mode, links)
		}
		// The live table never shrank: the member kept announcing, only
		// its RS coverage went away.
		for i, pw := range res.Windows {
			if pw.LiveRoutes != 2 {
				t.Fatalf("%v: window %d live = %d, want 2", mode, i, pw.LiveRoutes)
			}
		}
	}
}

// TestWindowedShadowInferLinks runs the per-window full-InferLinks
// shadow check across a mixed announce/withdraw/RS-leave/filter-edit
// schedule: at every close, the delta-maintained mesh snapshot must be
// byte-identical to a from-scratch InferLinks over the same observation
// store, and the maintained counters must match the full derivation.
func TestWindowedShadowInferLinks(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	p1 := bgp.MustPrefix("10.1.0.0/24")
	p2 := bgp.MustPrefix("10.2.0.0/24")
	p3 := bgp.MustPrefix("10.3.0.0/24")
	p4 := bgp.MustPrefix("10.4.0.0/24")
	all := comms(t, "6695:6695")
	excl300 := comms(t, "6695:6695 0:300")
	msk := comms(t, "8631:8631")

	updates := []*mrt.BGP4MPMessage{
		// Base: three DE-CIX setters (one via a case-3 path) and one
		// MSK-IX setter, so multiple meshes are maintained at once.
		upd(t0.Add(-4*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),
		upd(t0.Add(-3*time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		upd(t0.Add(-2*time.Minute), 100, []bgp.ASN{100, 200, 8359}, all, []bgp.Prefix{p4}, nil),
		upd(t0.Add(-time.Minute), 100, []bgp.ASN{100, 400}, msk, []bgp.Prefix{p3}, nil),

		// Window 0: in-window flap (must be invisible at close).
		upd(t0.Add(time.Minute), 100, nil, nil, nil, []bgp.Prefix{p1}),
		upd(t0.Add(2*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),

		// Window 1: filter edit — 200 now excludes 300.
		upd(t0.Add(w+time.Minute), 100, []bgp.ASN{100, 200}, excl300, []bgp.Prefix{p1}, nil),

		// Window 2: RS leave — 300 keeps announcing without communities;
		// the case-3 path is withdrawn.
		upd(t0.Add(2*w+time.Minute), 100, []bgp.ASN{100, 300}, nil, []bgp.Prefix{p2}, nil),
		upd(t0.Add(2*w+2*time.Minute), 100, nil, nil, nil, []bgp.Prefix{p4}),

		// Window 3: 300 rejoins, 200's filter edit reverts, the case-3
		// shape returns.
		upd(t0.Add(3*w+time.Minute), 100, []bgp.ASN{100, 300}, all, []bgp.Prefix{p2}, nil),
		upd(t0.Add(3*w+2*time.Minute), 100, []bgp.ASN{100, 200}, all, []bgp.Prefix{p1}, nil),
		upd(t0.Add(3*w+3*time.Minute), 100, []bgp.ASN{100, 200, 8359}, all, []bgp.Prefix{p4}, nil),

		// Window 4: the MSK-IX setter withdraws everything.
		upd(t0.Add(4*w+time.Minute), 100, nil, nil, nil, []bgp.Prefix{p3}),
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			shadowCalls := 0
			var meshLinks []int
			var a, b []byte
			opts := WindowOptions{Start: t0, Window: w, Count: 5, Mode: WindowsIncremental, Workers: workers}
			opts.shadow = func(m *windowMiner, pw *PassiveWindow) {
				shadowCalls++
				full := InferLinks(m.dict, m.obs)
				a = pw.Result.AppendMesh(a[:0])
				b = full.AppendMesh(b[:0])
				if !bytes.Equal(a, b) {
					t.Fatalf("window %d: mesh snapshot diverges from full InferLinks (%d vs %d links)",
						shadowCalls-1, pw.Result.TotalLinks(), full.TotalLinks())
				}
				if pw.MeshLinks != full.TotalLinks() {
					t.Fatalf("window %d: MeshLinks %d, full inference %d", shadowCalls-1, pw.MeshLinks, full.TotalLinks())
				}
				if pw.P2PRels != countP2P(m.rel) {
					t.Fatalf("window %d: P2PRels %d, full tally %d", shadowCalls-1, pw.P2PRels, countP2P(m.rel))
				}
				meshLinks = append(meshLinks, pw.MeshLinks)
			}
			if _, err := RunPassiveWindows(nil, updates, d, opts); err != nil {
				t.Fatal(err)
			}
			if shadowCalls != 5 {
				t.Fatalf("shadow ran %d times, want 5", shadowCalls)
			}
			// The schedule must actually move the mesh: the filter edit kills
			// the 200--300 link, the revert restores it.
			if meshLinks[0] == 0 || meshLinks[1] >= meshLinks[0] || meshLinks[3] <= meshLinks[2] {
				t.Fatalf("schedule too weak to exercise the mesh: links per window %v", meshLinks)
			}
		})
	}
}

// TestWindowedWorkerSweep pins the tentpole's worker-count invariance:
// the same mixed announce/withdraw/RS-leave-rejoin/filter-edit schedule
// run with Workers ∈ {2, 4, 8} must produce byte-identical per-window
// meshes and identical counters and stability to the sequential
// Workers=1 run. It runs under -race too, so the sweep also exercises
// the close-time pool for data races.
func TestWindowedWorkerSweep(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	updates := flapTrace(t, t0, w)

	run := func(workers int) *PassiveWindowsResult {
		res, err := RunPassiveWindows(nil, updates, d, WindowOptions{
			Start: t0, Window: w, Count: 4, Mode: WindowsIncremental, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	if seq.Windows[0].RelLinks == 0 || seq.Windows[0].Dropped.Bogon == 0 {
		t.Fatal("trace too weak to exercise the pipeline")
	}
	var a, b []byte
	for _, workers := range []int{2, 4, 8} {
		par := run(workers)
		if len(par.Windows) != len(seq.Windows) {
			t.Fatalf("workers=%d: window counts diverge: %d vs %d", workers, len(par.Windows), len(seq.Windows))
		}
		for i := range seq.Windows {
			ws, wp := &seq.Windows[i], &par.Windows[i]
			a = ws.Result.AppendMesh(a[:0])
			b = wp.Result.AppendMesh(b[:0])
			if !bytes.Equal(a, b) {
				t.Fatalf("workers=%d window %d: mesh diverges from sequential", workers, i)
			}
			if ws.LiveRoutes != wp.LiveRoutes || ws.Dropped != wp.Dropped ||
				ws.RelLinks != wp.RelLinks || ws.P2PRels != wp.P2PRels ||
				ws.MeshLinks != wp.MeshLinks || ws.Stability != wp.Stability ||
				ws.Announced != wp.Announced || ws.Withdrawn != wp.Withdrawn {
				t.Fatalf("workers=%d window %d: counters diverge:\nseq %+v\npar %+v", workers, i, ws, wp)
			}
			if seq.Stability[i] != par.Stability[i] {
				t.Fatalf("workers=%d window %d: stability diverges: %v vs %v", workers, i, seq.Stability[i], par.Stability[i])
			}
		}
	}
}

// TestFlapStormShapeSweep pins the dead-shape sweep: a storm of distinct
// (path, comms) shapes that appear and fully withdraw must be compacted
// out of the lookup map once dead past the grace period, returning the
// shape count to its pre-storm baseline — while a shape that flaps back
// within the grace period keeps its derived state (same group identity).
func TestFlapStormShapeSweep(t *testing.T) {
	d := testDict(t)
	store := paths.NewStore()
	m := newWindowMiner(d, store, relation.NewIncremental(store), 4)

	all := comms(t, "6695:6695")
	ck := commsKey(all)
	p1 := bgp.MustPrefix("10.1.0.0/24")
	id1 := store.Intern([]bgp.ASN{100, 200})

	m.apply(m.group(id1, all, ck), p1, 1)
	var pw PassiveWindow
	m.closeWindow(&pw, true)
	baseline := m.shapeCount()

	// Storm: distinct comms shapes on the same path, announced then
	// fully withdrawn within one window.
	const stormN = 50
	for i := 0; i < stormN; i++ {
		cs := comms(t, fmt.Sprintf("6695:6695 0:%d", 1000+i))
		k := commsKey(cs)
		m.apply(m.group(id1, cs, k), p1, 1)
		m.apply(m.group(id1, cs, k), p1, -1)
	}
	if got := m.shapeCount(); got != baseline+stormN {
		t.Fatalf("mid-storm shape count = %d, want %d", got, baseline+stormN)
	}

	// One shape flaps back inside the grace period and must keep its
	// identity (derived state preserved, no re-derivation).
	flapComms := comms(t, "6695:6695 0:1000")
	flapKey := commsKey(flapComms)
	flapG := m.group(id1, flapComms, flapKey)
	m.closeWindow(&pw, true)
	m.apply(m.group(id1, flapComms, flapKey), p1, 1)
	if m.group(id1, flapComms, flapKey) != flapG {
		t.Fatal("shape flapping back within grace lost its identity")
	}
	m.apply(m.group(id1, flapComms, flapKey), p1, -1)

	// Enough idle closes for every storm shape to age past the grace.
	for i := 0; i < deadShapeGrace+2; i++ {
		m.closeWindow(&pw, true)
	}
	if got := m.shapeCount(); got != baseline {
		t.Fatalf("post-storm shape count = %d, want baseline %d", got, baseline)
	}
	if len(m.deadQueue) != 0 {
		t.Fatalf("dead queue not drained: %d entries", len(m.deadQueue))
	}
	// The swept shape is re-derived from scratch when it returns.
	if m.group(id1, flapComms, flapKey) == flapG {
		t.Fatal("swept shape kept stale identity")
	}
	// The live shape survived the storm and the sweeps.
	if pw.MeshLinks != 0 {
		t.Fatalf("mesh links = %d, want 0 (single covered setter)", pw.MeshLinks)
	}
	if m.obs.Setters("DE-CIX") == nil {
		t.Fatal("live setter lost during sweep")
	}
}

// TestWindowedStreamingMatchesRetained pins streaming mode to the
// retained run: the same per-window counters arrive through the Stream
// callback, with no materialized Result.
func TestWindowedStreamingMatchesRetained(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	updates := flapTrace(t, t0, w)

	retained, err := RunPassiveWindows(nil, updates, d, WindowOptions{Start: t0, Window: w, Count: 4})
	if err != nil {
		t.Fatal(err)
	}

	type row struct {
		live, relLinks, p2p, mesh int
		stability                 float64
	}
	var got []row
	opts := WindowOptions{Start: t0, Window: w, Count: 4, Stream: func(pw *PassiveWindow) {
		if pw.Result != nil {
			t.Fatal("streaming window materialized a Result")
		}
		got = append(got, row{pw.LiveRoutes, pw.RelLinks, pw.P2PRels, pw.MeshLinks, pw.Stability})
	}}
	res, err := RunPassiveWindows(nil, updates, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 0 {
		t.Fatalf("streaming run retained %d windows", len(res.Windows))
	}
	if len(got) != len(retained.Windows) {
		t.Fatalf("streamed %d windows, retained run has %d", len(got), len(retained.Windows))
	}
	for i, r := range got {
		pw := &retained.Windows[i]
		want := row{pw.LiveRoutes, pw.RelLinks, pw.P2PRels, pw.Result.TotalLinks(), retained.Stability[i]}
		if r != want {
			t.Fatalf("window %d: streamed %+v, retained %+v", i, r, want)
		}
		if res.Stability[i] != retained.Stability[i] {
			t.Fatalf("window %d: streamed stability %v, retained %v", i, res.Stability[i], retained.Stability[i])
		}
	}
}

// TestRunPassiveWindowsValidation rejects degenerate options.
func TestRunPassiveWindowsValidation(t *testing.T) {
	d := testDict(t)
	if _, err := RunPassiveWindows(nil, nil, d, WindowOptions{Window: 0, Count: 1}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := RunPassiveWindows(nil, nil, d, WindowOptions{Window: time.Minute, Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
}

// TestStreamMaterializeAndCancel pins the serving-tier replay knobs:
// streaming with Materialize carries a freshly snapshotted Result per
// window whose fingerprint matches the retained-mode run, and a
// cancelled Ctx stops the replay at the next close boundary instead of
// committing further windows.
func TestStreamMaterializeAndCancel(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	updates := flapTrace(t, t0, w)
	opts := WindowOptions{Start: t0, Window: w, Count: 4}

	retained, err := RunPassiveWindows(nil, updates, d, opts)
	if err != nil {
		t.Fatal(err)
	}

	var fps []uint64
	var results []*Result
	sopts := opts
	sopts.Materialize = true
	sopts.Stream = func(pw *PassiveWindow) {
		if pw.Result == nil {
			t.Fatal("materialized streaming window carried no Result")
		}
		fps = append(fps, pw.Result.Fingerprint())
		results = append(results, pw.Result) // must stay valid after the callback
	}
	if _, err := RunPassiveWindows(nil, updates, d, sopts); err != nil {
		t.Fatal(err)
	}
	if len(fps) != len(retained.Windows) {
		t.Fatalf("streamed %d windows, retained run has %d", len(fps), len(retained.Windows))
	}
	for i := range fps {
		if want := retained.Windows[i].Result.Fingerprint(); fps[i] != want {
			t.Fatalf("window %d: streamed fingerprint %x, retained %x", i, fps[i], want)
		}
		// The retained pointer must still describe the window it was
		// snapshotted at, not the latest mesh.
		if got := results[i].TotalLinks(); got != retained.Windows[i].Result.TotalLinks() {
			t.Fatalf("window %d: retained snapshot drifted to %d links", i, got)
		}
	}

	// Without Materialize the streamed windows stay unsnapshotted.
	plain := opts
	plain.Stream = func(pw *PassiveWindow) {
		if pw.Result != nil {
			t.Fatal("plain streaming window materialized a Result")
		}
	}
	if _, err := RunPassiveWindows(nil, updates, d, plain); err != nil {
		t.Fatal(err)
	}

	// A pre-cancelled context commits nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	copts := opts
	copts.Ctx = ctx
	if _, err := RunPassiveWindows(nil, updates, d, copts); err != context.Canceled {
		t.Fatalf("pre-cancelled replay returned %v, want context.Canceled", err)
	}

	// Cancelling mid-replay stops at the next close boundary.
	ctx2, cancel2 := context.WithCancel(context.Background())
	seen := 0
	mopts := opts
	mopts.Ctx = ctx2
	mopts.Stream = func(pw *PassiveWindow) {
		seen++
		if seen == 2 {
			cancel2()
		}
	}
	if _, err := RunPassiveWindows(nil, updates, d, mopts); err != context.Canceled {
		t.Fatalf("mid-replay cancel returned %v, want context.Canceled", err)
	}
	if seen != 2 {
		t.Fatalf("replay committed %d windows after cancel, want 2", seen)
	}
}

// TestResultFingerprint pins the fingerprint contract: equal meshes
// fingerprint equal, different meshes differ, and the value tracks the
// canonical AppendMesh encoding.
func TestResultFingerprint(t *testing.T) {
	d := testDict(t)
	t0 := time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)
	w := 10 * time.Minute
	res, err := RunPassiveWindows(nil, flapTrace(t, t0, w), d, WindowOptions{Start: t0, Window: w, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := res.Windows[0].Result, res.Windows[1].Result
	if w0.Fingerprint() != w0.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	if bytes.Equal(w0.AppendMesh(nil), w1.AppendMesh(nil)) == (w0.Fingerprint() != w1.Fingerprint()) {
		t.Fatalf("fingerprint equality diverges from mesh encoding equality")
	}
}
