package core

import (
	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// DropStats counts paths removed by the §5 hygiene filters.
type DropStats struct {
	Bogon     int // reserved/private ASN in path
	Cycle     int // non-adjacent repeated AS (poisoning/misconfiguration)
	Transient int // update-only paths never seen in a stable table
}

// PassiveResult is the outcome of mining collector archives.
type PassiveResult struct {
	// Obs holds the per-setter community observations.
	Obs *Observations
	// Paths are the surviving public AS paths (collector-peer first).
	Paths [][]bgp.ASN
	// Links is the public-view AS link set extracted from Paths.
	Links map[topology.LinkKey]bool
	// PrefixOrigins maps each prefix seen in public data to its origin
	// AS (used by validation to pick query prefixes).
	PrefixOrigins map[bgp.Prefix]bgp.ASN
	// Rels is the relationship inference computed over Paths.
	Rels *relation.Inference
	// Dropped tallies filtered paths.
	Dropped DropStats
	// SetterUnresolved counts community observations discarded because
	// the RS setter could not be pinpointed (§4.2 case 1), and
	// IXPUnresolved those where no unique IXP could be identified.
	SetterUnresolved, IXPUnresolved int
}

// pathRecord is one (path, communities, prefix) triple from the archive.
type pathRecord struct {
	path   []bgp.ASN
	comms  bgp.Communities
	prefix bgp.Prefix
	stable bool // came from a RIB dump rather than an update
}

// RunPassive mines MRT archives per §4.2: hygiene-filter the paths,
// identify RS communities and their IXP, pinpoint the setter, and
// record observations.
func RunPassive(dumps []*mrt.Dump, updates []*mrt.BGP4MPMessage, dict *Dictionary) (*PassiveResult, error) {
	res := &PassiveResult{
		Obs:           NewObservations(),
		Links:         make(map[topology.LinkKey]bool),
		PrefixOrigins: make(map[bgp.Prefix]bgp.ASN),
	}

	var records []pathRecord
	stableKeys := make(map[string]bool)

	appendRecord := func(path []bgp.ASN, comms bgp.Communities, prefix bgp.Prefix, stable bool) {
		rec := pathRecord{path: path, comms: comms, prefix: prefix, stable: stable}
		records = append(records, rec)
		if stable {
			stableKeys[pathKey(path)] = true
		}
	}

	for _, d := range dumps {
		if d == nil || d.Index == nil {
			continue
		}
		for _, rib := range d.RIBs {
			for _, e := range rib.Entries {
				if e.Attrs == nil {
					continue
				}
				appendRecord(e.Attrs.ASPath.Dedup(), e.Attrs.Communities, rib.Prefix, true)
			}
		}
	}
	for _, u := range updates {
		upd, ok := u.Message.(*bgp.Update)
		if !ok || upd.Attrs == nil {
			continue
		}
		for _, p := range upd.NLRI {
			appendRecord(upd.Attrs.ASPath.Dedup(), upd.Attrs.Communities, p, false)
		}
	}

	// Hygiene pass (§5): drop bogons, cycles and transient paths.
	var clean []pathRecord
	for _, rec := range records {
		if hasBogon(rec.path) {
			res.Dropped.Bogon++
			continue
		}
		if hasCycle(rec.path) {
			res.Dropped.Cycle++
			continue
		}
		if !rec.stable && !stableKeys[pathKey(rec.path)] {
			res.Dropped.Transient++
			continue
		}
		clean = append(clean, rec)
	}

	// Public view: paths, links, prefix origins.
	seenPath := make(map[string]bool)
	for _, rec := range clean {
		if len(rec.path) == 0 {
			continue
		}
		k := pathKey(rec.path)
		if !seenPath[k] {
			seenPath[k] = true
			res.Paths = append(res.Paths, rec.path)
		}
		for i := 0; i+1 < len(rec.path); i++ {
			res.Links[topology.MakeLinkKey(rec.path[i], rec.path[i+1])] = true
		}
		res.PrefixOrigins[rec.prefix] = rec.path[len(rec.path)-1]
	}

	// Relationship inference over the public view, needed for the
	// setter disambiguation of case 3.
	res.Rels = relation.Infer(res.Paths)

	// Community mining.
	for _, rec := range clean {
		if len(rec.comms) == 0 {
			continue
		}
		entry, ok := dict.IdentifyIXP(rec.comms)
		if !ok {
			if anySchemeRelevant(dict, rec.comms) {
				res.IXPUnresolved++
			}
			continue
		}
		setter, ok := PinpointSetter(rec.path, entry, res.Rels)
		if !ok {
			res.SetterUnresolved++
			continue
		}
		res.Obs.Add(entry.Name, setter, rec.prefix, entry.Scheme.RelevantCommunities(rec.comms), ObsPassive)
	}
	return res, nil
}

// PinpointSetter identifies which AS on the path applied the RS
// communities (§4.2):
//
//  1. fewer than two IXP participants on the path: unresolvable;
//  2. exactly two: the one closest to the origin;
//  3. more than two: the participant pair with a p2p relationship is the
//     route-server crossing; the setter is its origin-side AS.
func PinpointSetter(path []bgp.ASN, entry *IXPEntry, rels *relation.Inference) (bgp.ASN, bool) {
	var positions []int
	for i, a := range path {
		if entry.IsMember(a) {
			positions = append(positions, i)
		}
	}
	switch {
	case len(positions) < 2:
		return 0, false
	case len(positions) == 2:
		// Closest to the origin = rightmost.
		return path[positions[1]], true
	default:
		// Adjacent member pairs with an inferred p2p relationship; the
		// setter is the origin-side member of that pair.
		for i := len(positions) - 1; i > 0; i-- {
			l, r := positions[i-1], positions[i]
			if r != l+1 {
				continue
			}
			if rels != nil && rels.Relationship(path[l], path[r]) == relation.RelP2P {
				return path[r], true
			}
		}
		return 0, false
	}
}

func anySchemeRelevant(dict *Dictionary, cs bgp.Communities) bool {
	for _, e := range dict.Entries {
		if len(e.Scheme.RelevantCommunities(cs)) > 0 {
			return true
		}
	}
	return false
}

func hasBogon(path []bgp.ASN) bool {
	for _, a := range path {
		if !a.Routable() {
			return true
		}
	}
	return false
}

func hasCycle(path []bgp.ASN) bool {
	seen := make(map[bgp.ASN]bool, len(path))
	for _, a := range path {
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}

func pathKey(path []bgp.ASN) string {
	b := make([]byte, 0, len(path)*5)
	for _, a := range path {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a), '|')
	}
	return string(b)
}
