package core

import (
	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// DropStats counts paths removed by the §5 hygiene filters.
type DropStats struct {
	Bogon     int // reserved/private ASN in path
	Cycle     int // non-adjacent repeated AS (poisoning/misconfiguration)
	Transient int // update-only paths never seen in a stable table
}

// PassiveResult is the outcome of mining collector archives.
type PassiveResult struct {
	// Obs holds the per-setter community observations.
	Obs *Observations
	// Paths are the surviving public AS paths (collector-peer first),
	// interned: each distinct path is stored once in a shared arena.
	Paths paths.View
	// Links is the public-view AS link set extracted from Paths.
	Links map[topology.LinkKey]bool
	// PrefixOrigins maps each prefix seen in public data to its origin
	// AS (used by validation to pick query prefixes).
	PrefixOrigins map[bgp.Prefix]bgp.ASN
	// Rels is the relationship inference computed over Paths.
	Rels *relation.Inference
	// Dropped tallies filtered paths.
	Dropped DropStats
	// SetterUnresolved counts community observations discarded because
	// the RS setter could not be pinpointed (§4.2 case 1), and
	// IXPUnresolved those where no unique IXP could be identified.
	SetterUnresolved, IXPUnresolved int
	// Withdrawals counts withdrawn prefixes seen in the update trace and
	// WithdrawnOnlyUpdates the UPDATEs that carried only withdrawals (no
	// NLRI, no attributes). Withdrawals end route lifetimes in windowed
	// mode (RunPassiveWindows); in snapshot mode they are tallied so
	// announce/withdraw churn is no longer silently invisible.
	Withdrawals, WithdrawnOnlyUpdates int
}

// RunPassive mines MRT archives per §4.2: hygiene-filter the paths,
// identify RS communities and their IXP, pinpoint the setter, and
// record observations. Paths are interned on ingest, so the hygiene
// checks run once per distinct path instead of once per announcement.
func RunPassive(dumps []*mrt.Dump, updates []*mrt.BGP4MPMessage, dict *Dictionary) (*PassiveResult, error) {
	res := &PassiveResult{
		Obs:           NewObservations(),
		Links:         make(map[topology.LinkKey]bool),
		PrefixOrigins: make(map[bgp.Prefix]bgp.ASN),
	}

	store := paths.NewStore()
	recs := paths.NewRecords(store)
	var stableID []bool // path id -> seen in a stable RIB dump

	markStable := func(id paths.ID) {
		for int(id) >= len(stableID) {
			stableID = append(stableID, false)
		}
		stableID[id] = true
	}

	for _, d := range dumps {
		if d == nil || d.Index == nil {
			continue
		}
		for _, rib := range d.RIBs {
			for _, e := range rib.Entries {
				if e.Attrs == nil {
					continue
				}
				id := store.InternASPath(e.Attrs.ASPath)
				recs.Add(id, e.Attrs.Communities, rib.Prefix, true)
				markStable(id)
			}
		}
	}
	for _, u := range updates {
		upd, ok := u.Message.(*bgp.Update)
		if !ok {
			continue
		}
		res.Withdrawals += len(upd.Withdrawn)
		if upd.Attrs == nil || len(upd.NLRI) == 0 {
			if len(upd.Withdrawn) > 0 {
				res.WithdrawnOnlyUpdates++
			}
			continue
		}
		id := store.InternASPath(upd.Attrs.ASPath)
		for _, p := range upd.NLRI {
			recs.Add(id, upd.Attrs.Communities, p, false)
		}
	}

	// Hygiene flags (§5), computed once per distinct path.
	n := store.Len()
	badBogon := make([]bool, n)
	badCycle := make([]bool, n)
	for id := 0; id < n; id++ {
		p := store.Path(paths.ID(id))
		badBogon[id] = hasBogon(p)
		badCycle[id] = hasCycle(p)
	}
	for len(stableID) < n {
		stableID = append(stableID, false)
	}

	// Hygiene pass over the rows, building the public view (surviving
	// unique paths, links, prefix origins) in the same sweep.
	keptRow := make([]bool, recs.Len())
	seenPath := make([]bool, n)
	var kept []paths.ID
	for i := 0; i < recs.Len(); i++ {
		id := recs.PathID[i]
		switch {
		case badBogon[id]:
			res.Dropped.Bogon++
			continue
		case badCycle[id]:
			res.Dropped.Cycle++
			continue
		case !recs.Stable[i] && !stableID[id]:
			res.Dropped.Transient++
			continue
		}
		keptRow[i] = true
		p := store.Path(id)
		if len(p) == 0 {
			continue
		}
		if !seenPath[id] {
			seenPath[id] = true
			kept = append(kept, id)
			for j := 0; j+1 < len(p); j++ {
				res.Links[topology.MakeLinkKey(p[j], p[j+1])] = true
			}
		}
		res.PrefixOrigins[recs.Prefix[i]] = p[len(p)-1]
	}
	res.Paths = paths.NewView(store, kept)

	// Relationship inference over the public view, needed for the
	// setter disambiguation of case 3.
	res.Rels = relation.Infer(res.Paths)

	// Community mining.
	for i := 0; i < recs.Len(); i++ {
		if !keptRow[i] || len(recs.Comms[i]) == 0 {
			continue
		}
		entry, ok := dict.IdentifyIXP(recs.Comms[i])
		if !ok {
			if anySchemeRelevant(dict, recs.Comms[i]) {
				res.IXPUnresolved++
			}
			continue
		}
		setter, ok := PinpointSetter(recs.Path(i), entry, res.Rels)
		if !ok {
			res.SetterUnresolved++
			continue
		}
		res.Obs.Add(entry.Name, setter, recs.Prefix[i], entry.Scheme.RelevantCommunities(recs.Comms[i]), ObsPassive)
	}
	return res, nil
}

// PinpointSetter identifies which AS on the path applied the RS
// communities (§4.2):
//
//  1. fewer than two IXP participants on the path: unresolvable;
//  2. exactly two: the one closest to the origin;
//  3. more than two: the participant pair with a p2p relationship is the
//     route-server crossing; the setter is its origin-side AS.
func PinpointSetter(path []bgp.ASN, entry *IXPEntry, rels relation.Oracle) (bgp.ASN, bool) {
	var positions []int
	for i, a := range path {
		if entry.IsMember(a) {
			positions = append(positions, i)
		}
	}
	switch {
	case len(positions) < 2:
		return 0, false
	case len(positions) == 2:
		// Closest to the origin = rightmost.
		return path[positions[1]], true
	default:
		// Adjacent member pairs with an inferred p2p relationship; the
		// setter is the origin-side member of that pair.
		for i := len(positions) - 1; i > 0; i-- {
			l, r := positions[i-1], positions[i]
			if r != l+1 {
				continue
			}
			if rels != nil && rels.Relationship(path[l], path[r]) == relation.RelP2P {
				return path[r], true
			}
		}
		return 0, false
	}
}

func anySchemeRelevant(dict *Dictionary, cs bgp.Communities) bool {
	for _, e := range dict.Entries {
		if len(e.Scheme.RelevantCommunities(cs)) > 0 {
			return true
		}
	}
	return false
}

func hasBogon(path []bgp.ASN) bool {
	for _, a := range path {
		if !a.Routable() {
			return true
		}
	}
	return false
}

func hasCycle(path []bgp.ASN) bool {
	seen := make(map[bgp.ASN]bool, len(path))
	for _, a := range path {
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}
