package core

import (
	"fmt"
	"sort"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// WindowOptions parameterizes RunPassiveWindows.
type WindowOptions struct {
	// Start is the first window's opening time; updates before it are
	// folded into the base RIB state without emitting a window.
	Start time.Time
	// Window is each inference window's duration.
	Window time.Duration
	// Count is the number of windows to emit. Windows past the last
	// update still run (over the then-static live table).
	Count int
}

// PassiveWindow is one window's inference outcome over the routes live
// at the window's close.
type PassiveWindow struct {
	Start, End time.Time

	// Announced / Withdrawn count prefix-level events inside the
	// window; WithdrawnOnlyUpdates the UPDATEs carrying only
	// withdrawals.
	Announced, Withdrawn int
	WithdrawnOnlyUpdates int

	// LiveRoutes is the (feeder, prefix) table size at window close.
	LiveRoutes int
	// Dropped tallies hygiene-filtered live routes.
	Dropped DropStats
	// Result is the multilateral-peering inference over the window's
	// live view.
	Result *Result
}

// Links returns the window's inferred ML link set.
func (w *PassiveWindow) Links() map[topology.LinkKey][]string { return w.Result.Links }

// PassiveWindowsResult is the windowed passive run: one inference per
// time window plus the stability of the inferred mesh across windows.
type PassiveWindowsResult struct {
	Windows []PassiveWindow
	// Stability[i] is the Jaccard similarity between window i's and
	// window i-1's inferred link sets (Stability[0] == 1).
	Stability []float64
}

// liveKey identifies one route slot in a collector's view.
type liveKey struct {
	peer   bgp.ASN
	prefix bgp.Prefix
}

// liveRoute is the route occupying a slot.
type liveRoute struct {
	path  paths.ID
	comms bgp.Communities
}

// RunPassiveWindows is the dynamic counterpart of RunPassive: it replays
// an announce+withdraw update trace over the base RIB dumps, maintaining
// each collector peer's live route table, and re-runs the §4.2 inference
// at every window close over the routes alive at that instant. A
// withdrawal ends its route's lifetime, so transient flaps never leak
// into the inferred mesh — the hygiene property §5 approximates with its
// update-only filter in snapshot mode. Updates must be ordered as read
// from the archive; equal timestamps keep file order.
func RunPassiveWindows(dumps []*mrt.Dump, updates []*mrt.BGP4MPMessage, dict *Dictionary, opts WindowOptions) (*PassiveWindowsResult, error) {
	if opts.Window <= 0 {
		return nil, fmt.Errorf("core: non-positive window %v", opts.Window)
	}
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: non-positive window count %d", opts.Count)
	}

	store := paths.NewStore()
	live := make(map[liveKey]liveRoute)

	// Base state: the stable RIB dumps.
	for _, d := range dumps {
		if d == nil || d.Index == nil {
			continue
		}
		for _, rib := range d.RIBs {
			for _, e := range rib.Entries {
				if e.Attrs == nil {
					continue
				}
				peer := d.Index.Peers[e.PeerIndex].ASN
				live[liveKey{peer, rib.Prefix}] = liveRoute{
					path:  store.InternASPath(e.Attrs.ASPath),
					comms: e.Attrs.Communities.Clone(),
				}
			}
		}
	}

	res := &PassiveWindowsResult{}
	cur := PassiveWindow{Start: opts.Start, End: opts.Start.Add(opts.Window)}

	closeWindow := func() {
		cur.LiveRoutes = len(live)
		mineLiveTable(store, live, dict, &cur)
		res.Windows = append(res.Windows, cur)
		cur = PassiveWindow{Start: cur.End, End: cur.End.Add(opts.Window)}
	}

	apply := func(u *mrt.BGP4MPMessage, count bool) {
		upd, ok := u.Message.(*bgp.Update)
		if !ok {
			return
		}
		for _, p := range upd.Withdrawn {
			delete(live, liveKey{u.PeerASN, p})
		}
		if count {
			cur.Withdrawn += len(upd.Withdrawn)
		}
		if upd.Attrs == nil || len(upd.NLRI) == 0 {
			if count && len(upd.Withdrawn) > 0 {
				cur.WithdrawnOnlyUpdates++
			}
			return
		}
		id := store.InternASPath(upd.Attrs.ASPath)
		cs := upd.Attrs.Communities.Clone()
		for _, p := range upd.NLRI {
			live[liveKey{u.PeerASN, p}] = liveRoute{path: id, comms: cs}
		}
		if count {
			cur.Announced += len(upd.NLRI)
		}
	}

	for _, u := range updates {
		// Pre-window updates adjust the base table without counting.
		if u.Timestamp.Before(opts.Start) {
			apply(u, false)
			continue
		}
		for len(res.Windows) < opts.Count && !u.Timestamp.Before(cur.End) {
			closeWindow()
		}
		if len(res.Windows) >= opts.Count {
			break
		}
		apply(u, true)
	}
	for len(res.Windows) < opts.Count {
		closeWindow()
	}

	res.Stability = make([]float64, len(res.Windows))
	for i := range res.Windows {
		if i == 0 {
			res.Stability[0] = 1
			continue
		}
		res.Stability[i] = jaccardLinks(res.Windows[i-1].Result.Links, res.Windows[i].Result.Links)
	}
	return res, nil
}

// mineLiveTable runs hygiene + community mining + link inference over
// the live routes, deterministically (the table is sorted before
// mining).
func mineLiveTable(store *paths.Store, live map[liveKey]liveRoute, dict *Dictionary, w *PassiveWindow) {
	keys := make([]liveKey, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].peer != keys[j].peer {
			return keys[i].peer < keys[j].peer
		}
		return bgp.ComparePrefixes(keys[i].prefix, keys[j].prefix) < 0
	})

	// Hygiene per distinct path, lazily: the store grows monotonically
	// across windows, so flags are computed at most once per path per
	// window pass.
	n := store.Len()
	badBogon := make([]bool, n)
	badCycle := make([]bool, n)
	checked := make([]bool, n)
	hygiene := func(id paths.ID) (bogon, cycle bool) {
		if !checked[id] {
			p := store.Path(id)
			badBogon[id] = hasBogon(p)
			badCycle[id] = hasCycle(p)
			checked[id] = true
		}
		return badBogon[id], badCycle[id]
	}

	seenPath := make([]bool, n)
	var kept []paths.ID
	type minedRow struct {
		key liveKey
		id  paths.ID
	}
	var rows []minedRow
	for _, k := range keys {
		r := live[k]
		bogon, cycle := hygiene(r.path)
		switch {
		case bogon:
			w.Dropped.Bogon++
			continue
		case cycle:
			w.Dropped.Cycle++
			continue
		}
		if len(store.Path(r.path)) == 0 {
			continue
		}
		if !seenPath[r.path] {
			seenPath[r.path] = true
			kept = append(kept, r.path)
		}
		rows = append(rows, minedRow{key: k, id: r.path})
	}

	rels := relation.Infer(paths.NewView(store, kept))

	obs := NewObservations()
	for _, row := range rows {
		cs := live[row.key].comms
		if len(cs) == 0 {
			continue
		}
		entry, ok := dict.IdentifyIXP(cs)
		if !ok {
			continue
		}
		setter, ok := PinpointSetter(store.Path(row.id), entry, rels)
		if !ok {
			continue
		}
		obs.Add(entry.Name, setter, row.key.prefix, entry.Scheme.RelevantCommunities(cs), ObsPassive)
	}
	w.Result = InferLinks(dict, obs)
}

// jaccardLinks computes |a∩b| / |a∪b| over link sets (1 when both are
// empty).
func jaccardLinks(a, b map[topology.LinkKey][]string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
