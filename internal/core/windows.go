package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/mrt"
	"mlpeering/internal/paths"
	"mlpeering/internal/relation"
	"mlpeering/internal/topology"
)

// WindowsMode selects how each window's ML mesh is derived.
type WindowsMode int

// Windowed inference modes.
const (
	// WindowsIncremental derives every window from the delta-maintained
	// observation store: announce/withdraw events apply as +/- deltas to
	// refcounted observation counts and to the incremental relation
	// oracle, so a window close touches only what changed.
	WindowsIncremental WindowsMode = iota
	// WindowsRemine re-mines the entire live table at every window
	// close — the pre-incremental cost profile (sort, hygiene, batch
	// relation inference and community mining over every live route) —
	// kept as the equivalence fallback: both modes produce
	// byte-identical per-window meshes. Note both modes share the
	// canonical order-independent observation reduction (see
	// prefixDelta.winner); where feeders disagree on a (setter, prefix)
	// community set, the smallest canonical set wins, where the PR 4
	// miner kept the last set in sorted row order.
	WindowsRemine
)

// String implements fmt.Stringer.
func (m WindowsMode) String() string {
	switch m {
	case WindowsRemine:
		return "remine"
	default:
		return "incremental"
	}
}

// ParseWindowsMode parses a -windows-mode flag value.
func ParseWindowsMode(s string) (WindowsMode, error) {
	switch s {
	case "incremental":
		return WindowsIncremental, nil
	case "remine":
		return WindowsRemine, nil
	default:
		return 0, fmt.Errorf("core: unknown windows mode %q (want incremental or remine)", s)
	}
}

// WindowOptions parameterizes RunPassiveWindows.
type WindowOptions struct {
	// Start is the first window's opening time; updates before it are
	// folded into the base RIB state without emitting a window.
	Start time.Time
	// Window is each inference window's duration.
	Window time.Duration
	// Count is the number of windows to emit. Windows past the last
	// update still run (over the then-static live table).
	Count int
	// Mode selects incremental (default) or re-mine derivation.
	Mode WindowsMode
	// Workers caps the worker pool the incremental miner fans out on at
	// window close (sharded delta flush, per-IXP mesh re-checks, the
	// relation oracle's Commit, snapshotting). 0 means GOMAXPROCS; 1
	// forces the sequential path. Results are bit-identical for any
	// value. Remine mode ignores it.
	Workers int
	// Stream, when non-nil, receives each window at close instead of
	// accumulating it in PassiveWindowsResult.Windows — the long-horizon
	// replay mode. In incremental mode a streamed window carries the
	// maintained counters (MeshLinks, Stability, CloseTime, ...) but,
	// unless Materialize is set, no materialized Result: the mesh is
	// not snapshotted, so a close allocates O(churn), not O(mesh). The
	// pointer is only valid for the duration of the callback.
	Stream func(*PassiveWindow)
	// Materialize forces each streamed window to carry its snapshotted
	// Result even in incremental streaming mode — the serving tier's
	// epoch producer consumes windows through Stream but publishes the
	// materialized mesh. No effect when Stream is nil (results are
	// always materialized then). The Result is freshly built per close
	// and safe to retain beyond the callback.
	Materialize bool
	// Ctx, when non-nil, cancels the replay: the run returns ctx.Err()
	// at the next window-close boundary after cancellation. Committed
	// windows already handed to Stream stay valid.
	Ctx context.Context

	// shadow, when set (tests only), receives the incremental miner
	// after every window close for full-InferLinks shadow checks.
	shadow func(*windowMiner, *PassiveWindow)
}

// PassiveWindow is one window's inference outcome over the routes live
// at the window's close.
type PassiveWindow struct {
	Start, End time.Time

	// Announced / Withdrawn count prefix-level events inside the
	// window; WithdrawnOnlyUpdates the UPDATEs carrying only
	// withdrawals.
	Announced, Withdrawn int
	WithdrawnOnlyUpdates int

	// LiveRoutes is the (feeder, prefix) table size at window close.
	LiveRoutes int
	// Dropped tallies hygiene-filtered live routes.
	Dropped DropStats
	// RelLinks and P2PRels describe the window's AS-relationship
	// inference: total inferred links and the p2p-labelled subset. In
	// incremental mode both are delta-maintained counters.
	RelLinks, P2PRels int
	// MeshLinks is the distinct inferred ML link count — equal to
	// Result.TotalLinks(), but available even when Result is not
	// materialized (streaming mode).
	MeshLinks int
	// Stability is the Jaccard similarity between this window's and the
	// previous window's link sets (1 for the first window).
	Stability float64
	// CloseTime is the wall-clock cost of deriving this window at close.
	CloseTime time.Duration
	// Result is the multilateral-peering inference over the window's
	// live view. Nil in streaming incremental mode; use the maintained
	// counters instead.
	Result *Result
}

// Links returns the window's inferred ML link set.
func (w *PassiveWindow) Links() map[topology.LinkKey][]string { return w.Result.Links }

// PassiveWindowsResult is the windowed passive run: one inference per
// time window plus the stability of the inferred mesh across windows.
type PassiveWindowsResult struct {
	// Windows holds each window's outcome; empty in streaming mode
	// (WindowOptions.Stream consumed them at close).
	Windows []PassiveWindow
	// Stability[i] is the Jaccard similarity between window i's and
	// window i-1's inferred link sets (Stability[0] == 1). Populated in
	// streaming mode too: it is O(1) per window.
	Stability []float64
}

// liveKey identifies one route slot in a collector's view.
type liveKey struct {
	peer   bgp.ASN
	prefix bgp.Prefix
}

// liveRoute is the route occupying a slot. ckey is the canonical
// encoding of comms, computed once per UPDATE so grouped mining never
// re-encodes on withdrawal.
type liveRoute struct {
	path  paths.ID
	comms bgp.Communities
	ckey  string
}

// RunPassiveWindows is the dynamic counterpart of RunPassive: it replays
// an announce+withdraw update trace over the base RIB dumps, maintaining
// each collector peer's live route table, and re-runs the §4.2 inference
// at every window close over the routes alive at that instant. A
// withdrawal ends its route's lifetime, so transient flaps never leak
// into the inferred mesh — the hygiene property §5 approximates with its
// update-only filter in snapshot mode. Updates must be ordered as read
// from the archive; equal timestamps keep file order.
//
// In the default incremental mode every event applies as a +/- delta to
// the refcounted observation store and the incremental relation oracle,
// so a window close costs O(changes), not O(live table); remine mode
// rebuilds everything per window and is pinned byte-identical by the
// equivalence tests.
func RunPassiveWindows(dumps []*mrt.Dump, updates []*mrt.BGP4MPMessage, dict *Dictionary, opts WindowOptions) (*PassiveWindowsResult, error) {
	if opts.Window <= 0 {
		return nil, fmt.Errorf("core: non-positive window %v", opts.Window)
	}
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: non-positive window count %d", opts.Count)
	}

	store := paths.NewStore()
	live := make(map[liveKey]liveRoute)
	var miner *windowMiner
	if opts.Mode == WindowsIncremental {
		miner = newWindowMiner(dict, store, relation.NewIncremental(store), opts.Workers)
	}

	// intern resolves an announced (path, communities) to its canonical
	// shape: probe the shape map with a scratch key first (string(ckb)
	// map access compiles allocation-free) and only Clone the community
	// set — and materialize the key — on first sight of the shape. In
	// remine mode, where the miner's shape map is rebuilt per window, a
	// run-scoped side table provides the same interning.
	var ckb []byte
	var remineShapes map[paths.ID]map[string]liveRoute
	if miner == nil {
		remineShapes = make(map[paths.ID]map[string]liveRoute)
	}
	intern := func(id paths.ID, comms bgp.Communities) liveRoute {
		ckb = appendCommsKey(ckb[:0], comms)
		if miner != nil {
			if g, ok := miner.groups[id][string(ckb)]; ok {
				return liveRoute{path: id, comms: g.comms, ckey: g.ckey}
			}
		} else if r, ok := remineShapes[id][string(ckb)]; ok {
			return r
		}
		r := liveRoute{path: id, comms: comms.Clone(), ckey: string(ckb)}
		if miner == nil {
			inner := remineShapes[id]
			if inner == nil {
				inner = make(map[string]liveRoute, 1)
				remineShapes[id] = inner
			}
			inner[r.ckey] = r
		}
		return r
	}

	set := func(k liveKey, r liveRoute) {
		if miner != nil {
			if old, ok := live[k]; ok {
				miner.apply(miner.group(old.path, old.comms, old.ckey), k.prefix, -1)
			}
			miner.apply(miner.group(r.path, r.comms, r.ckey), k.prefix, 1)
		}
		live[k] = r
	}
	del := func(k liveKey) {
		old, ok := live[k]
		if !ok {
			return
		}
		if miner != nil {
			miner.apply(miner.group(old.path, old.comms, old.ckey), k.prefix, -1)
		}
		delete(live, k)
	}

	// Base state: the stable RIB dumps.
	for _, d := range dumps {
		if d == nil || d.Index == nil {
			continue
		}
		for _, rib := range d.RIBs {
			for _, e := range rib.Entries {
				if e.Attrs == nil {
					continue
				}
				peer := d.Index.Peers[e.PeerIndex].ASN
				id := store.InternASPath(e.Attrs.ASPath)
				set(liveKey{peer, rib.Prefix}, intern(id, e.Attrs.Communities))
			}
		}
	}

	res := &PassiveWindowsResult{}
	cur := PassiveWindow{Start: opts.Start, End: opts.Start.Add(opts.Window)}

	// prevRemineLinks carries the previous window's link set for the
	// remine-mode stability computation; incremental mode derives
	// stability from the mesh's running counters instead.
	var prevRemineLinks map[topology.LinkKey][]string
	winIdx := 0
	closeWindow := func() {
		//mlplint:clock close-duration telemetry only; never feeds inference or window boundaries
		t0 := time.Now()
		cur.LiveRoutes = len(live)
		if miner != nil {
			miner.closeWindow(&cur, opts.Stream == nil || opts.Materialize || opts.shadow != nil)
			if opts.shadow != nil {
				opts.shadow(miner, &cur)
			}
		} else {
			remineLiveTable(store, live, dict, &cur)
			cur.MeshLinks = cur.Result.TotalLinks()
			cur.Stability = jaccardLinks(prevRemineLinks, cur.Result.Links)
			prevRemineLinks = cur.Result.Links
		}
		if winIdx == 0 {
			cur.Stability = 1
		}
		cur.CloseTime = time.Since(t0)
		res.Stability = append(res.Stability, cur.Stability)
		if opts.Stream != nil {
			opts.Stream(&cur)
		} else {
			res.Windows = append(res.Windows, cur)
		}
		winIdx++
		cur = PassiveWindow{Start: cur.End, End: cur.End.Add(opts.Window)}
	}

	apply := func(u *mrt.BGP4MPMessage, count bool) {
		upd, ok := u.Message.(*bgp.Update)
		if !ok {
			return
		}
		for _, p := range upd.Withdrawn {
			del(liveKey{u.PeerASN, p})
		}
		if count {
			cur.Withdrawn += len(upd.Withdrawn)
		}
		if upd.Attrs == nil || len(upd.NLRI) == 0 {
			if count && len(upd.Withdrawn) > 0 {
				cur.WithdrawnOnlyUpdates++
			}
			return
		}
		id := store.InternASPath(upd.Attrs.ASPath)
		r := intern(id, upd.Attrs.Communities)
		for _, p := range upd.NLRI {
			set(liveKey{u.PeerASN, p}, r)
		}
		if count {
			cur.Announced += len(upd.NLRI)
		}
	}

	// cancelled polls the optional replay context; cancellation is
	// observed at window-close boundaries, the unit of committed work.
	cancelled := func() error {
		if opts.Ctx == nil {
			return nil
		}
		return opts.Ctx.Err()
	}
	if err := cancelled(); err != nil {
		return nil, err
	}

	for _, u := range updates {
		// Pre-window updates adjust the base table without counting.
		if u.Timestamp.Before(opts.Start) {
			apply(u, false)
			continue
		}
		for winIdx < opts.Count && !u.Timestamp.Before(cur.End) {
			if err := cancelled(); err != nil {
				return nil, err
			}
			closeWindow()
		}
		if winIdx >= opts.Count {
			break
		}
		apply(u, true)
	}
	for winIdx < opts.Count {
		if err := cancelled(); err != nil {
			return nil, err
		}
		closeWindow()
	}
	return res, nil
}

// remineLiveTable runs hygiene + community mining + link inference over
// the full live table, deterministically (the table is sorted before
// mining): the re-mine fallback the incremental path is pinned against.
// It reuses the same grouped derivation and refcounted store, built
// from scratch, so both modes reduce observations identically.
func remineLiveTable(store *paths.Store, live map[liveKey]liveRoute, dict *Dictionary, w *PassiveWindow) {
	keys := make([]liveKey, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].peer != keys[j].peer {
			return keys[i].peer < keys[j].peer
		}
		return bgp.ComparePrefixes(keys[i].prefix, keys[j].prefix) < 0
	})

	m := newWindowMiner(dict, store, nil, 1)
	var kept []paths.ID
	for _, k := range keys {
		r := live[k]
		g := m.group(r.path, r.comms, r.ckey)
		if g.keptPath() && m.pathLive[g.path] == 0 {
			kept = append(kept, g.path)
		}
		m.apply(g, k.prefix, 1)
	}

	rels := relation.Infer(paths.NewView(store, kept))
	for _, g := range m.relsDeps {
		setter, ok := PinpointSetter(store.Path(g.path), g.entry, rels)
		m.moveContributions(g, ok, setter)
	}

	w.Dropped.Bogon = m.dropBogon
	w.Dropped.Cycle = m.dropCycle
	w.RelLinks = rels.LinkCount()
	w.P2PRels = countP2P(rels)
	w.Result = InferLinks(dict, m.obs)
}

// jaccardLinks computes |a∩b| / |a∪b| over link sets (1 when both are
// empty), iterating only the smaller side.
func jaccardLinks(a, b map[topology.LinkKey][]string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	inter := 0
	for k := range small {
		if _, ok := big[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
