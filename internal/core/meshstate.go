// Delta-maintained reciprocity mesh: the incremental counterpart of
// InferLinks. A window close used to rebuild every covered setter's
// export filter and re-run the O(covered²) reciprocity check per IXP;
// MeshState instead keeps the covered setter set, each setter's
// reconstructed filter, its allow bitset over co-member slots and the
// live link set — and re-derives exactly the (IXP, setter) pairs whose
// refcounted observation counts changed since the last window close.
// A dirtied setter re-votes its filter (O(distinct community sets) via
// the store's maintained tally) and re-checks reciprocity only against
// co-members whose allow relation could have flipped: the peer-set
// symmetric difference of the old and new filter, except on a filter
// mode flip, where every covered co-member is rechecked. Link
// attribution, the multi-IXP overlap and the Jaccard stability
// numerator/denominator are maintained as running counters, so a
// window close costs O(churn), not O(world).
package core

import (
	"math/bits"
	"slices"
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/par"
	"mlpeering/internal/topology"
)

// meshBits is a dense grow-on-write bitset over a mesh IXP's setter
// slots. test/clear beyond the allocated words answer false / no-op,
// so bitsets extend lazily as later setters join.
type meshBits []uint64

func (b *meshBits) grow(n int) {
	for len(*b)*64 < n {
		*b = append(*b, 0)
	}
}

func (b meshBits) test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b *meshBits) set(i int) {
	b.grow(i + 1)
	(*b)[i>>6] |= 1 << (uint(i) & 63)
}

func (b *meshBits) clear(i int) {
	if w := i >> 6; w < len(*b) {
		(*b)[w] &^= 1 << (uint(i) & 63)
	}
}

func (b *meshBits) setTo(i int, v bool) {
	if v {
		b.set(i)
	} else {
		b.clear(i)
	}
}

func (b meshBits) forEach(fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := bits.TrailingZeros64(word)
			word &= word - 1
			fn(w*64 + i)
		}
	}
}

func (b meshBits) zero() {
	for i := range b {
		b[i] = 0
	}
}

// meshSetter is one RS member's maintained mesh state at one IXP.
type meshSetter struct {
	asn     bgp.ASN
	covered bool
	filter  ixp.ExportFilter
	// allow bit j: filter.Allows(slot j's ASN). Authoritative for
	// covered slots; bits of uncovered slots may be stale and are
	// recomputed when that slot rejoins.
	allow meshBits
	// links bit j: live reciprocity link with covered slot j.
	links meshBits
}

// meshEvent is one link transition recorded by an IXP's per-IXP update
// pass, replayed into the global counters by the ordered commit.
type meshEvent struct {
	key topology.LinkKey
	add bool
}

// meshIXP is one IXP's maintained mesh: slot-indexed setters (slots are
// assigned on first coverage and never freed — bounded by the members
// ever covered, not by trace length) and the live per-IXP link set.
// events buffers the link transitions of the current Apply pass; it is
// only touched by the single worker owning the IXP's work item and by
// the sequential commit.
type meshIXP struct {
	entry   *IXPEntry
	members []bgp.ASN // entry.Members(), cached once per run
	slotOf  map[bgp.ASN]int
	setters []*meshSetter
	covered int
	links   map[topology.LinkKey]bool
	events  []meshEvent
}

// MeshState is the delta-maintained §4.1 reciprocity mesh over every
// IXP of a dictionary. Apply consumes the dirty (IXP, setter) set a
// DeltaObservations tracked since the last window close and updates
// filters, allow bitsets, links and the running counters; Snapshot
// materializes the equivalent of InferLinks over the same store. Apply
// and Snapshot fan out per IXP on a worker pool internally; the struct
// itself is not safe for concurrent use.
type MeshState struct {
	dict   *Dictionary
	byName map[string]*meshIXP

	// links maps every live link to its sorted IXP attribution list;
	// multi counts the links attributed to more than one IXP.
	links map[topology.LinkKey][]string
	multi int

	// Jaccard stability counters: prevLinks is the mesh size at the
	// last CloseStability; changed records, for every link touched
	// since, whether it was present then (first touch wins, so flaps
	// that cancel out contribute nothing).
	prevLinks int
	changed   map[topology.LinkKey]bool

	dirty     []DirtySetter
	dirtySeen map[DirtySetter]struct{}

	// Apply scratch: per-IXP work items (first-seen order over the
	// drained dirty list) and the IXP -> work index map.
	works   []meshWork
	workIdx map[string]int
}

// meshWork is one Apply work item: one IXP's dirty setters in drained
// order. Work items touch disjoint per-IXP state, so the pool runs them
// concurrently; their recorded link events commit sequentially in
// work-item order, which is deterministic and worker-count-invariant
// because it derives from the drained dirty list alone.
type meshWork struct {
	mi      *meshIXP
	setters []bgp.ASN
}

// NewMeshState returns an empty mesh over the dictionary's IXPs.
func NewMeshState(dict *Dictionary) *MeshState {
	ms := &MeshState{
		dict:      dict,
		byName:    make(map[string]*meshIXP, len(dict.Entries)),
		links:     make(map[topology.LinkKey][]string),
		changed:   make(map[topology.LinkKey]bool),
		dirtySeen: make(map[DirtySetter]struct{}),
		workIdx:   make(map[string]int),
	}
	for _, e := range dict.Entries {
		ms.byName[e.Name] = &meshIXP{
			entry:   e,
			members: e.Members(),
			slotOf:  make(map[bgp.ASN]int),
			links:   make(map[topology.LinkKey]bool),
		}
	}
	return ms
}

// TotalLinks returns the number of distinct live links.
func (ms *MeshState) TotalLinks() int { return len(ms.links) }

// MultiIXPLinks returns how many live links are inferred at more than
// one IXP.
func (ms *MeshState) MultiIXPLinks() int { return ms.multi }

// Apply drains the store's dirty setters and re-derives exactly their
// coverage, filter and reciprocity links. Everything else is untouched:
// the cost is O(churned setters × their flipped allow relations). The
// drained set is partitioned into per-IXP work items that run on up to
// workers goroutines — per-IXP mesh state is disjoint and the store is
// read-only during the pass — and the recorded link transitions commit
// into the global attribution/stability counters sequentially in
// work-item order, so the outcome is identical for any worker count.
// Steady-state applies reuse the drained dirty list, the work items and
// each IXP's slot state, so a window close stays allocation-light.
//
//mlplint:allocfree
func (ms *MeshState) Apply(obs *DeltaObservations, workers int) {
	ms.dirty = obs.DrainDirty(ms.dirty[:0])
	ms.works = ms.works[:0]
	for _, d := range ms.dirty {
		if _, dup := ms.dirtySeen[d]; dup {
			continue
		}
		ms.dirtySeen[d] = struct{}{}
		mi := ms.byName[d.IXP]
		if mi == nil || !mi.entry.IsMember(d.Setter) {
			continue // a stray observation outside known connectivity
		}
		idx, ok := ms.workIdx[d.IXP]
		if !ok {
			idx = len(ms.works)
			ms.workIdx[d.IXP] = idx
			ms.works = append(ms.works, meshWork{mi: mi})
		}
		ms.works[idx].setters = append(ms.works[idx].setters, d.Setter)
	}
	clear(ms.dirtySeen)
	clear(ms.workIdx)
	//mlplint:allocfree one pooled closure per Apply fans out the per-IXP work items
	par.Run(workers, len(ms.works), func(i int) {
		w := &ms.works[i]
		for _, setter := range w.setters {
			ms.updateSetter(obs, w.mi, setter)
		}
	})
	for i := range ms.works {
		w := &ms.works[i]
		for _, ev := range w.mi.events {
			if ev.add {
				ms.commitAdd(w.mi, ev.key)
			} else {
				ms.commitRemove(w.mi, ev.key)
			}
		}
		w.mi.events = w.mi.events[:0]
		w.mi = nil
	}
}

// updateSetter re-derives one (IXP, setter): departed, joined, or
// re-filtered. The outcome is order-independent across the dirty set:
// a pair of dirty setters is rechecked by whichever side is processed
// last with both filters final. It touches only mi's state plus the
// read-only store, so distinct IXPs update concurrently.
func (ms *MeshState) updateSetter(obs *DeltaObservations, mi *meshIXP, setter bgp.ASN) {
	f, ok := obs.Filter(mi.entry.Name, setter, mi.entry.Scheme)
	slot, haveSlot := mi.slotOf[setter]
	var s *meshSetter
	if haveSlot {
		s = mi.setters[slot]
	}
	switch {
	case !ok:
		if s == nil || !s.covered {
			return
		}
		ms.dropSetter(mi, slot, s)
	case s == nil || !s.covered:
		if s == nil {
			slot = len(mi.setters)
			s = &meshSetter{asn: setter}
			mi.setters = append(mi.setters, s)
			mi.slotOf[setter] = slot
		}
		ms.joinSetter(mi, slot, s, f)
	default:
		ms.refilterSetter(mi, slot, s, f)
	}
}

// dropSetter removes a setter that lost coverage: every live link of
// its slot goes away.
func (ms *MeshState) dropSetter(mi *meshIXP, slot int, s *meshSetter) {
	s.links.forEach(func(j int) {
		o := mi.setters[j]
		o.links.clear(slot)
		ms.removeLink(mi, s.asn, o.asn)
	})
	s.links.zero()
	s.covered = false
	s.filter = ixp.ExportFilter{}
	mi.covered--
}

// joinSetter covers a setter (fresh or rejoining): both allow
// directions against every covered co-member are recomputed — the
// co-members' bits for this slot may be stale from filter changes while
// the slot was uncovered.
func (ms *MeshState) joinSetter(mi *meshIXP, slot int, s *meshSetter, f ixp.ExportFilter) {
	s.covered = true
	s.filter = f
	s.allow.grow(len(mi.setters))
	s.allow.zero()
	s.links.grow(len(mi.setters))
	s.links.zero()
	for j, o := range mi.setters {
		if j == slot || !o.covered {
			continue
		}
		oa := o.filter.Allows(s.asn)
		o.allow.setTo(slot, oa)
		sa := f.Allows(o.asn)
		s.allow.setTo(j, sa)
		if oa && sa {
			s.links.set(j)
			o.links.set(slot)
			ms.addLink(mi, s.asn, o.asn)
		}
	}
	mi.covered++
}

// refilterSetter swaps in a changed filter. With an unchanged mode the
// allow relation flips exactly on the peer-set symmetric difference, so
// only those co-members are rechecked; a mode flip falls back to
// rechecking every covered co-member.
func (ms *MeshState) refilterSetter(mi *meshIXP, slot int, s *meshSetter, f ixp.ExportFilter) {
	old := s.filter
	if old.Equal(f) {
		s.filter = f
		return
	}
	s.filter = f
	if old.Mode != f.Mode {
		for j, o := range mi.setters {
			if j != slot && o.covered {
				ms.recheckPair(mi, slot, s, j, o)
			}
		}
		return
	}
	for p := range old.Peers {
		if !f.Peers[p] {
			ms.recheckPeer(mi, slot, s, p)
		}
	}
	for p := range f.Peers {
		if !old.Peers[p] {
			ms.recheckPeer(mi, slot, s, p)
		}
	}
}

// recheckPeer rechecks the (setter, peer) allow relation if the peer is
// a currently covered co-member.
func (ms *MeshState) recheckPeer(mi *meshIXP, slot int, s *meshSetter, peer bgp.ASN) {
	j, ok := mi.slotOf[peer]
	if !ok || j == slot {
		return
	}
	if o := mi.setters[j]; o.covered {
		ms.recheckPair(mi, slot, s, j, o)
	}
}

// recheckPair recomputes s's allow bit toward o and transitions the
// reciprocity link if it flipped.
func (ms *MeshState) recheckPair(mi *meshIXP, slot int, s *meshSetter, j int, o *meshSetter) {
	sa := s.filter.Allows(o.asn)
	s.allow.setTo(j, sa)
	linked := sa && o.allow.test(slot)
	if linked == s.links.test(j) {
		return
	}
	if linked {
		s.links.set(j)
		o.links.set(slot)
		ms.addLink(mi, s.asn, o.asn)
	} else {
		s.links.clear(j)
		o.links.clear(slot)
		ms.removeLink(mi, s.asn, o.asn)
	}
}

// addLink brings a link up at mi: the per-IXP link set changes
// immediately (only the worker owning mi reads it), the global
// attribution update is buffered for the ordered commit.
func (ms *MeshState) addLink(mi *meshIXP, a, b bgp.ASN) {
	key := topology.MakeLinkKey(a, b)
	mi.links[key] = true
	mi.events = append(mi.events, meshEvent{key: key, add: true})
}

// removeLink takes a link down at mi, buffering the global withdrawal.
func (ms *MeshState) removeLink(mi *meshIXP, a, b bgp.ASN) {
	key := topology.MakeLinkKey(a, b)
	delete(mi.links, key)
	mi.events = append(mi.events, meshEvent{key: key, add: false})
}

// commitAdd attributes a live link to mi's IXP, maintaining the sorted
// attribution list, the multi-IXP counter and the stability deltas. The
// first-touch changed entry is order-independent: whatever order the
// per-link events replay in, the first touch of a key happens before
// any event mutated its attribution, so it always records presence at
// the last close.
func (ms *MeshState) commitAdd(mi *meshIXP, key topology.LinkKey) {
	names := ms.links[key]
	if len(names) == 0 {
		if _, seen := ms.changed[key]; !seen {
			ms.changed[key] = false // absent at the last close
		}
	}
	i := sort.SearchStrings(names, mi.entry.Name)
	names = slices.Insert(names, i, mi.entry.Name)
	ms.links[key] = names
	if len(names) == 2 {
		ms.multi++
	}
}

// commitRemove withdraws mi's attribution of a link, dropping the link
// entirely when no IXP attributes it anymore.
func (ms *MeshState) commitRemove(mi *meshIXP, key topology.LinkKey) {
	names := ms.links[key]
	i := sort.SearchStrings(names, mi.entry.Name)
	names = slices.Delete(names, i, i+1)
	switch len(names) {
	case 0:
		delete(ms.links, key)
		if _, seen := ms.changed[key]; !seen {
			ms.changed[key] = true // present at the last close
		}
	case 1:
		ms.multi--
		ms.links[key] = names
	default:
		ms.links[key] = names
	}
}

// CloseStability finalizes one window: it returns the Jaccard
// similarity between the mesh at the previous close and now, derived
// from the running change counters instead of re-walking both link
// sets, and resets the counters for the next window.
func (ms *MeshState) CloseStability() float64 {
	added, removed := 0, 0
	for key, was := range ms.changed {
		_, is := ms.links[key]
		switch {
		case was && !is:
			removed++
		case !was && is:
			added++
		}
	}
	clear(ms.changed)
	inter := ms.prevLinks - removed
	union := ms.prevLinks + added
	ms.prevLinks = len(ms.links)
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Snapshot materializes the maintained mesh as a Result equivalent to
// InferLinks over the same observation store: cloned link/attribution
// maps, per-IXP filters and sources. The Members slices alias the
// mesh's cached member lists; like every Result, snapshots are
// read-only views. The clone fans out on up to workers goroutines —
// one task per IXP plus one for the global link map, each writing
// disjoint freshly-allocated state.
//
//mlplint:frozen
func (ms *MeshState) Snapshot(workers int) *Result {
	res := &Result{
		PerIXP: make(map[string]*IXPInference, len(ms.dict.Entries)),
		Links:  make(map[topology.LinkKey][]string, len(ms.links)),
	}
	infs := make([]*IXPInference, len(ms.dict.Entries))
	par.Run(workers, len(ms.dict.Entries)+1, func(t int) {
		if t == 0 {
			for k, names := range ms.links {
				res.Links[k] = slices.Clone(names)
			}
			return
		}
		e := ms.dict.Entries[t-1]
		mi := ms.byName[e.Name]
		x := &IXPInference{
			Name:    e.Name,
			Members: mi.members,
			Filters: make(map[bgp.ASN]ixp.ExportFilter, mi.covered),
			Sources: make(map[bgp.ASN]DataSource, mi.covered),
			Links:   make(map[topology.LinkKey]bool, len(mi.links)),
		}
		for k := range mi.links {
			x.Links[k] = true
		}
		for _, s := range mi.setters {
			if s.covered {
				x.Filters[s.asn] = s.filter
				x.Sources[s.asn] = ObsPassive
			}
		}
		infs[t-1] = x
	})
	for i, e := range ms.dict.Entries {
		res.PerIXP[e.Name] = infs[i]
	}
	return res
}
