// Package propagate computes BGP route propagation over the synthetic
// topology: for every destination AS it builds the Gao-Rexford routing
// tree (customer routes up, one peer hop — bilateral or via a route
// server — then down to customers), tracks where route-server
// communities are attached, and reconstructs the routes any vantage
// point would see, including whether communities survive to it.
//
// This is the substrate that stands in for the live Internet: collector
// archives, looking-glass output and the public AS-path view are all
// derived from these trees.
package propagate

import (
	"sort"
	"sync"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// Class ranks how a route was learned, in increasing preference.
type Class uint8

// Route classes. Higher is preferred (standard local-pref policy).
const (
	ClassNone     Class = iota // no route
	ClassProvider              // learned from a provider
	ClassPeer                  // learned from a peer (bilateral or RS)
	ClassCustomer              // learned from a customer
	ClassOrigin                // self-originated
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassProvider:
		return "provider"
	case ClassPeer:
		return "peer"
	case ClassCustomer:
		return "customer"
	case ClassOrigin:
		return "origin"
	default:
		return "none"
	}
}

const (
	noVia int32 = -1
	noIXP int16 = -1
)

// hop is one AS's state in a routing tree.
type hop struct {
	via       int32 // next-hop AS index toward the destination
	viaIXP    int16 // index into Engine.ixps when the edge is via an RS
	bilateral bool  // the edge is a bilateral peer edge
	class     Class
	dist      uint16
}

type ixpState struct {
	info    *ixp.Info
	members []int32
	exports map[int32]ixp.ExportFilter
	imports map[int32]ixp.ExportFilter
	comms   map[int32]bgp.Communities
}

// Engine computes and caches routing trees for a fixed topology.
// It is safe for concurrent use.
type Engine struct {
	topo *topology.Topology

	idx  map[bgp.ASN]int32
	asns []bgp.ASN

	up      [][]int32 // providers plus siblings: customer routes travel here
	down    [][]int32 // customers plus siblings
	peers   [][]int32
	strips  []bool
	prefBil []bool

	ixps       []*ixpState
	ixpsByName map[string]int16

	mu       sync.Mutex
	cache    map[bgp.ASN]*Tree
	cacheCap int
}

// NewEngine builds an engine over topo. cacheCap bounds the number of
// routing trees kept in memory (0 means a generous default).
func NewEngine(topo *topology.Topology, cacheCap int) *Engine {
	if cacheCap <= 0 {
		cacheCap = 4096
	}
	n := len(topo.Order)
	e := &Engine{
		topo:       topo,
		idx:        make(map[bgp.ASN]int32, n),
		asns:       make([]bgp.ASN, n),
		up:         make([][]int32, n),
		down:       make([][]int32, n),
		peers:      make([][]int32, n),
		strips:     make([]bool, n),
		prefBil:    make([]bool, n),
		ixpsByName: make(map[string]int16),
		cache:      make(map[bgp.ASN]*Tree),
		cacheCap:   cacheCap,
	}
	for i, asn := range topo.Order {
		e.idx[asn] = int32(i)
		e.asns[i] = asn
	}
	toIdx := func(asns []bgp.ASN) []int32 {
		out := make([]int32, 0, len(asns))
		for _, a := range asns {
			if j, ok := e.idx[a]; ok {
				out = append(out, j)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for i, asn := range topo.Order {
		as := topo.ASes[asn]
		e.up[i] = toIdx(append(append([]bgp.ASN(nil), as.Providers...), as.Siblings...))
		e.down[i] = toIdx(append(append([]bgp.ASN(nil), as.Customers...), as.Siblings...))
		e.peers[i] = toIdx(as.Peers)
		e.strips[i] = as.StripsCommunities
		e.prefBil[i] = as.PrefersBilateral
	}
	for _, info := range topo.IXPs {
		st := &ixpState{
			info:    info,
			exports: make(map[int32]ixp.ExportFilter),
			imports: make(map[int32]ixp.ExportFilter),
			comms:   make(map[int32]bgp.Communities),
		}
		for _, m := range info.SortedRSMembers() {
			mi, ok := e.idx[m]
			if !ok {
				continue
			}
			st.members = append(st.members, mi)
			if f, ok := topo.ExportFilter(info.Name, m); ok {
				st.exports[mi] = f
			}
			if f, ok := topo.ImportFilter(info.Name, m); ok {
				st.imports[mi] = f
			}
			if cs, ok := topo.MemberCommunities(info.Name, m); ok {
				st.comms[mi] = cs
			}
		}
		e.ixpsByName[info.Name] = int16(len(e.ixps))
		e.ixps = append(e.ixps, st)
	}
	return e
}

// Topology returns the engine's world.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// Tree returns the routing tree toward dest, computing and caching it
// on first use. It returns nil for an unknown destination.
func (e *Engine) Tree(dest bgp.ASN) *Tree {
	if _, ok := e.idx[dest]; !ok {
		return nil
	}
	e.mu.Lock()
	if tr, ok := e.cache[dest]; ok {
		e.mu.Unlock()
		return tr
	}
	e.mu.Unlock()

	tr := e.compute(dest)

	e.mu.Lock()
	if len(e.cache) >= e.cacheCap {
		// Drop an arbitrary entry; access patterns are bulk scans so
		// sophistication buys nothing.
		for k := range e.cache {
			delete(e.cache, k)
			break
		}
	}
	e.cache[dest] = tr
	e.mu.Unlock()
	return tr
}

// ForEachTree computes the tree of every destination in ascending ASN
// order using workers goroutines, invoking fn sequentially (fn needs no
// locking). Trees are not cached; use this for bulk scans.
func (e *Engine) ForEachTree(workers int, fn func(*Tree)) {
	if workers <= 0 {
		workers = 4
	}
	dests := e.asns
	out := make([]*Tree, len(dests))
	var next int
	var nextMu sync.Mutex
	// Compute in windows so memory stays bounded while fn consumes
	// trees in deterministic destination order.
	const window = 256
	for start := 0; start < len(dests); start += window {
		end := start + window
		if end > len(dests) {
			end = len(dests)
		}
		next = start
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					nextMu.Lock()
					i := next
					if i >= end {
						nextMu.Unlock()
						return
					}
					next++
					nextMu.Unlock()
					out[i] = e.compute(dests[i])
				}
			}()
		}
		wg.Wait()
		for i := start; i < end; i++ {
			fn(out[i])
			out[i] = nil
		}
	}
}

// compute builds the routing tree toward dest.
func (e *Engine) compute(dest bgp.ASN) *Tree {
	n := len(e.asns)
	di := e.idx[dest]
	hops := make([]hop, n)
	for i := range hops {
		hops[i] = hop{via: noVia, viaIXP: noIXP}
	}
	hops[di] = hop{via: noVia, viaIXP: noIXP, class: ClassOrigin, dist: 0}

	// Phase 1: customer routes propagate up provider (and sibling) edges.
	frontier := []int32{di}
	inNext := make([]bool, n)
	for dist := uint16(1); len(frontier) > 0; dist++ {
		var next []int32
		for _, u := range frontier {
			for _, p := range e.up[u] {
				h := &hops[p]
				if h.class > ClassCustomer {
					continue // the origin itself
				}
				if h.class == ClassCustomer {
					if h.dist < dist || (h.dist == dist && h.via <= u) {
						continue
					}
				}
				wasRouted := h.class == ClassCustomer
				hops[p] = hop{via: u, viaIXP: noIXP, class: ClassCustomer, dist: dist}
				if !wasRouted && !inNext[p] {
					inNext[p] = true
					next = append(next, p)
				}
			}
		}
		for _, p := range next {
			inNext[p] = false
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}

	better := func(v int32, cand hop) bool {
		cur := hops[v]
		if cand.class != cur.class {
			return cand.class > cur.class
		}
		if cand.class == ClassPeer && e.prefBil[v] && cand.bilateral != cur.bilateral {
			return cand.bilateral
		}
		if cand.dist != cur.dist {
			return cand.dist < cur.dist
		}
		return cand.via < cur.via
	}

	// Phase 2a: bilateral peer edges, one hop.
	for u := int32(0); u < int32(n); u++ {
		if hops[u].class < ClassCustomer {
			continue
		}
		d := hops[u].dist + 1
		for _, v := range e.peers[u] {
			cand := hop{via: u, viaIXP: noIXP, bilateral: true, class: ClassPeer, dist: d}
			if better(v, cand) {
				hops[v] = cand
			}
		}
	}

	// Phase 2b: route servers. Members with customer/origin routes
	// export them to the RS; every member whose filters line up
	// receives a peer-class route. The exporter list per IXP is kept on
	// the tree for RS-RIB construction.
	exporters := make([][]int32, len(e.ixps))
	for xi, st := range e.ixps {
		if st.info.StripsCommunities {
			// Netnod-style servers still reflect routes; only the
			// communities are gone. Handled at reconstruction.
		}
		var exp []int32
		for _, m := range st.members {
			if hops[m].class >= ClassCustomer {
				exp = append(exp, m)
			}
		}
		exporters[xi] = exp
		for _, eIdx := range exp {
			ef, ok := st.exports[eIdx]
			if !ok {
				continue
			}
			d := hops[eIdx].dist + 1
			eASN := e.asns[eIdx]
			for _, v := range st.members {
				if v == eIdx {
					continue
				}
				imf, ok := st.imports[v]
				if !ok {
					continue
				}
				if !ef.Allows(e.asns[v]) || !imf.Allows(eASN) {
					continue
				}
				cand := hop{via: eIdx, viaIXP: int16(xi), class: ClassPeer, dist: d}
				if better(v, cand) {
					hops[v] = cand
				}
			}
		}
	}

	// Phase 3: everything propagates down customer (and sibling) edges.
	maxDist := uint16(0)
	for i := range hops {
		if hops[i].class != ClassNone && hops[i].dist > maxDist {
			maxDist = hops[i].dist
		}
	}
	buckets := make([][]int32, int(maxDist)+2)
	for i := int32(0); i < int32(n); i++ {
		if hops[i].class != ClassNone {
			buckets[hops[i].dist] = append(buckets[hops[i].dist], i)
		}
	}
	for d := 0; d < len(buckets); d++ {
		bucket := buckets[d]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		for _, u := range bucket {
			if int(hops[u].dist) != d || hops[u].class == ClassNone {
				continue // stale queue entry
			}
			nd := uint16(d) + 1
			for _, c := range e.down[u] {
				cand := hop{via: u, viaIXP: noIXP, class: ClassProvider, dist: nd}
				if better(c, cand) {
					hops[c] = cand
					for len(buckets) <= int(nd) {
						buckets = append(buckets, nil)
					}
					buckets[nd] = append(buckets[nd], c)
				}
			}
		}
	}

	return &Tree{e: e, dest: dest, destIdx: di, hops: hops, exporters: exporters}
}
