// Package propagate computes BGP route propagation over the synthetic
// topology: for every destination AS it builds the Gao-Rexford routing
// tree (customer routes up, one peer hop — bilateral or via a route
// server — then down to customers), tracks where route-server
// communities are attached, and reconstructs the routes any vantage
// point would see, including whether communities survive to it.
//
// This is the substrate that stands in for the live Internet: collector
// archives, looking-glass output and the public AS-path view are all
// derived from these trees.
//
// The engine is built for bulk tree computation: adjacency is stored as
// flat compressed-sparse-row arrays sorted once at construction, route
// server filter pairs are precomputed into bitsets, and per-destination
// working memory comes from reusable scratch arenas, so computing one
// tree performs no sorting and near-zero allocation.
package propagate

import (
	"math/bits"
	"slices"
	"sync"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// Class ranks how a route was learned, in increasing preference.
type Class uint8

// Route classes. Higher is preferred (standard local-pref policy).
const (
	ClassNone     Class = iota // no route
	ClassProvider              // learned from a provider
	ClassPeer                  // learned from a peer (bilateral or RS)
	ClassCustomer              // learned from a customer
	ClassOrigin                // self-originated
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassProvider:
		return "provider"
	case ClassPeer:
		return "peer"
	case ClassCustomer:
		return "customer"
	case ClassOrigin:
		return "origin"
	default:
		return "none"
	}
}

const (
	noVia int32 = -1
	noIXP int16 = -1
)

// hop is one AS's state in a routing tree.
type hop struct {
	via       int32 // next-hop AS index toward the destination
	viaIXP    int16 // index into Engine.ixps when the edge is via an RS
	bilateral bool  // the edge is a bilateral peer edge
	class     Class
	dist      uint16
}

// csr is a compressed-sparse-row adjacency list: every node's neighbor
// list, concatenated into one backing array. Node i's neighbors are
// adj[off[i]:off[i+1]], sorted ascending at build time so traversal
// order is deterministic without any per-tree sorting.
type csr struct {
	off []int32
	adj []int32
}

func (c *csr) row(i int32) []int32 { return c.adj[c.off[i]:c.off[i+1]] }

// ixpState is one IXP's route-server configuration in dense,
// member-slot-indexed form. A "slot" is a member's position in the
// ascending-ASN member list; slotOf maps AS index -> slot (-1 when the
// AS is not an RS member here).
type ixpState struct {
	info    *ixp.Info
	members []int32 // AS indices, ascending (== ascending ASN)
	slotOf  []int32 // dense AS index -> member slot, -1 if not a member

	hasExport []bool
	hasImport []bool
	exports   []ixp.ExportFilter
	imports   []ixp.ExportFilter
	comms     []bgp.Communities

	// allowed is a per-exporter bitset over importer slots: bit v of row
	// e is set iff member e has an export filter allowing member v AND
	// member v has an import filter allowing member e (and v != e). It
	// folds the two map lookups and two filter evaluations of the
	// member-pair inner loop into a single word scan.
	allowed []uint64
	words   int // words per bitset row: ceil(len(members)/64)
}

// allowedBit reports whether exporter slot e may send to importer slot v.
func (st *ixpState) allowedBit(e, v int32) bool {
	return st.allowed[int(e)*st.words+int(v)>>6]&(1<<(uint(v)&63)) != 0
}

// scratch is the per-worker arena reused across tree computations:
// frontier queues for the BFS phases, the score table, and distance
// buckets for the downward phase. It never escapes a single compute
// call.
type scratch struct {
	frontier []int32
	next     []int32
	inNext   []bool
	scores   []uint64
	buckets  [][]int32
}

// Route preference packed into one comparable word, so every relaxation
// is a single load and compare. Higher score = more preferred, with the
// fields laid out in the engine's preference order:
//
//	bits 49..51  class (higher better)
//	bit  48      bilateral, set only when the node prefers bilateral
//	bits 32..47  ^dist (lower distance better)
//	bits  0..31  ^via  (lower next-hop index breaks ties)
//
// A strictly greater score is exactly the old field-by-field "better"
// comparison; equality keeps the incumbent.
const (
	scoreClassShift = 49
	scoreBilBit     = uint64(1) << 48
	scoreDistShift  = 32
	// noRouteScore is the score of the initial "no route" state:
	// class None, dist 0, via noVia.
	noRouteScore = uint64(0xFFFF) << scoreDistShift
)

// Engine computes and caches routing trees for a fixed topology.
// It is safe for concurrent use.
type Engine struct {
	topo *topology.Topology

	idx  map[bgp.ASN]int32
	asns []bgp.ASN

	up      csr // providers plus siblings: customer routes travel here
	down    csr // customers plus siblings
	peers   csr
	strips  []bool
	prefBil []bool

	ixps         []*ixpState
	ixpsByName   map[string]int16
	totalMembers int // sum of RS member counts, sizes exporter arrays

	shards    []cacheShard
	shardMask uint32

	scratchPool sync.Pool
	treePool    sync.Pool

	// Grow-only slabs for cached-tree planes: cached trees are never
	// pooled, so carving their hop/exporter-offset storage from shared
	// blocks is safe and removes two allocations per tree. Fully
	// consumed blocks are referenced only by the trees carved from
	// them, so dropping the trees still releases the memory.
	slabMu sync.Mutex
	//mlplint:guardedby slabMu
	hopSlab []hop
	//mlplint:guardedby slabMu
	expOffSlab []int32
}

// cacheShard is one stripe of the tree cache: an LRU keyed by
// destination plus a singleflight table so concurrent Tree calls for the
// same destination compute it once.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	//mlplint:guardedby mu
	entries map[bgp.ASN]*lruEntry
	head    *lruEntry // most recently used; guarded by mu
	tail    *lruEntry // least recently used; guarded by mu
	//mlplint:guardedby mu
	inflight map[bgp.ASN]*inflightTree
}

type lruEntry struct {
	key        bgp.ASN
	tr         *Tree
	prev, next *lruEntry
}

type inflightTree struct {
	wg sync.WaitGroup
	tr *Tree
}

// NewEngine builds an engine over topo. cacheCap bounds the number of
// routing trees kept in memory (0 means a generous default).
func NewEngine(topo *topology.Topology, cacheCap int) *Engine {
	if cacheCap <= 0 {
		cacheCap = 4096
	}
	n := len(topo.Order)
	e := &Engine{
		topo:       topo,
		asns:       make([]bgp.ASN, n),
		strips:     make([]bool, n),
		prefBil:    make([]bool, n),
		ixpsByName: make(map[string]int16),
	}
	copy(e.asns, topo.Order)
	if idx := topo.DenseIndex(); idx != nil {
		// Builder-generated worlds already carry the ASN -> dense-id map
		// (id == position in Order); share it instead of rebuilding.
		e.idx = idx
	} else {
		e.idx = make(map[bgp.ASN]int32, n)
		for i, asn := range topo.Order {
			e.idx[asn] = int32(i)
		}
	}
	for i, asn := range topo.Order {
		as := topo.ASes[asn]
		e.strips[i] = as.StripsCommunities
		e.prefBil[i] = as.PrefersBilateral
	}

	// Flat CSR adjacency, each row sorted ascending once here so the
	// propagation phases never sort again.
	e.up = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Providers, as.Siblings })
	e.down = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Customers, as.Siblings })
	e.peers = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Peers, nil })

	for _, info := range topo.IXPs {
		st := e.buildIXPState(info)
		e.ixpsByName[info.Name] = int16(len(e.ixps))
		e.ixps = append(e.ixps, st)
		e.totalMembers += len(st.members)
	}

	// Shard the cache only when it is big enough for striping to matter;
	// small caps keep strict single-shard LRU semantics.
	shardCount := 1
	if cacheCap >= 256 {
		shardCount = 8
	}
	perShard := (cacheCap + shardCount - 1) / shardCount
	e.shards = make([]cacheShard, shardCount)
	e.shardMask = uint32(shardCount - 1)
	for i := range e.shards {
		e.shards[i].capacity = perShard
		e.shards[i].entries = make(map[bgp.ASN]*lruEntry)
		e.shards[i].inflight = make(map[bgp.ASN]*inflightTree)
	}

	e.scratchPool.New = func() any {
		return &scratch{inNext: make([]bool, n), scores: make([]uint64, n)}
	}
	// Pool trees are transient (recycled per ForEachTree window), so
	// they use plain allocation; the grow-only slabs are reserved for
	// cached trees, which live until invalidated.
	e.treePool.New = func() any { return e.newTreePlain() }
	return e
}

// buildCSR assembles one flat adjacency over the engine's topology,
// each row sorted ascending so the propagation phases never sort.
func (e *Engine) buildCSR(pick func(*topology.AS) ([]bgp.ASN, []bgp.ASN)) csr {
	topo := e.topo
	n := len(topo.Order)
	c := csr{off: make([]int32, n+1)}
	var buf []int32
	for i, asn := range topo.Order {
		a, b := pick(topo.ASes[asn])
		buf = buf[:0]
		for _, x := range a {
			if j, ok := e.idx[x]; ok {
				buf = append(buf, j)
			}
		}
		for _, x := range b {
			if j, ok := e.idx[x]; ok {
				buf = append(buf, j)
			}
		}
		slices.Sort(buf)
		c.adj = append(c.adj, buf...)
		c.off[i+1] = int32(len(c.adj))
	}
	return c
}

// buildIXPState assembles one IXP's dense route-server state (member
// slots, filters, communities, allowed-pair bitsets) from the current
// ground truth. Called at construction and again by Apply for IXPs a
// delta mutated.
func (e *Engine) buildIXPState(info *ixp.Info) *ixpState {
	topo := e.topo
	n := len(e.asns)
	st := &ixpState{info: info, slotOf: make([]int32, n)}
	for i := range st.slotOf {
		st.slotOf[i] = -1
	}
	for _, m := range info.SortedRSMembers() {
		mi, ok := e.idx[m]
		if !ok {
			continue
		}
		st.slotOf[mi] = int32(len(st.members))
		st.members = append(st.members, mi)
	}
	nm := len(st.members)
	st.hasExport = make([]bool, nm)
	st.hasImport = make([]bool, nm)
	st.exports = make([]ixp.ExportFilter, nm)
	st.imports = make([]ixp.ExportFilter, nm)
	st.comms = make([]bgp.Communities, nm)
	for s, mi := range st.members {
		m := e.asns[mi]
		if f, ok := topo.ExportFilter(info.Name, m); ok {
			st.exports[s] = f
			st.hasExport[s] = true
		}
		if f, ok := topo.ImportFilter(info.Name, m); ok {
			st.imports[s] = f
			st.hasImport[s] = true
		}
		if cs, ok := topo.MemberCommunities(info.Name, m); ok {
			st.comms[s] = cs
		}
	}
	// Precompute the allowed-pair bitsets.
	st.words = (nm + 63) / 64
	st.allowed = make([]uint64, nm*st.words)
	for es := 0; es < nm; es++ {
		if !st.hasExport[es] {
			continue
		}
		ef := st.exports[es]
		eASN := e.asns[st.members[es]]
		row := st.allowed[es*st.words : (es+1)*st.words]
		for vs := 0; vs < nm; vs++ {
			if vs == es || !st.hasImport[vs] {
				continue
			}
			vASN := e.asns[st.members[vs]]
			if ef.Allows(vASN) && st.imports[vs].Allows(eASN) {
				row[vs>>6] |= 1 << (uint(vs) & 63)
			}
		}
	}
	return st
}

// newTreePlain allocates a tree with its own backing arrays, for the
// recycled ForEachTree pool.
func (e *Engine) newTreePlain() *Tree {
	return &Tree{
		e:      e,
		hops:   make([]hop, len(e.asns)),
		expOff: make([]int32, len(e.ixps)+1),
	}
}

// newTree allocates a tree for this topology, carving the hop and
// exporter-offset planes from the engine's grow-only slabs: cached
// trees live until evicted and are never pooled, so slab storage is
// safe, and one block allocation serves many trees.
func (e *Engine) newTree() *Tree {
	n := len(e.asns)
	nx := len(e.ixps) + 1
	e.slabMu.Lock()
	if len(e.hopSlab) < n {
		block := 16 * n
		if block < 1<<14 {
			block = 1 << 14
		}
		e.hopSlab = make([]hop, block)
	}
	hops := e.hopSlab[:n:n]
	e.hopSlab = e.hopSlab[n:]
	if len(e.expOffSlab) < nx {
		block := 64 * nx
		if block < 1<<12 {
			block = 1 << 12
		}
		e.expOffSlab = make([]int32, block)
	}
	expOff := e.expOffSlab[:nx:nx]
	e.expOffSlab = e.expOffSlab[nx:]
	e.slabMu.Unlock()
	return &Tree{e: e, hops: hops, expOff: expOff}
}

// Topology returns the engine's world.
func (e *Engine) Topology() *topology.Topology { return e.topo }

func (e *Engine) shard(dest bgp.ASN) *cacheShard {
	h := uint32(dest) * 0x9E3779B1 // Fibonacci hashing spreads dense ASN ranges
	return &e.shards[(h>>16)&e.shardMask]
}

// lookupLocked returns the cached tree for key and marks it most
// recently used. Caller holds sh.mu.
func (sh *cacheShard) lookupLocked(key bgp.ASN) *Tree {
	ent, ok := sh.entries[key]
	if !ok {
		return nil
	}
	sh.moveToFrontLocked(ent)
	return ent.tr
}

func (sh *cacheShard) moveToFrontLocked(ent *lruEntry) {
	if sh.head == ent {
		return
	}
	// Unlink.
	if ent.prev != nil {
		ent.prev.next = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	}
	if sh.tail == ent {
		sh.tail = ent.prev
	}
	// Push front.
	ent.prev = nil
	ent.next = sh.head
	if sh.head != nil {
		sh.head.prev = ent
	}
	sh.head = ent
	if sh.tail == nil {
		sh.tail = ent
	}
}

// insertLocked adds a computed tree, evicting the least recently used
// entry when the shard is full. Caller holds sh.mu.
func (sh *cacheShard) insertLocked(key bgp.ASN, tr *Tree) {
	if ent, ok := sh.entries[key]; ok {
		ent.tr = tr
		sh.moveToFrontLocked(ent)
		return
	}
	if len(sh.entries) >= sh.capacity && sh.tail != nil {
		ev := sh.tail
		delete(sh.entries, ev.key)
		sh.tail = ev.prev
		if sh.tail != nil {
			sh.tail.next = nil
		} else {
			sh.head = nil
		}
	}
	ent := &lruEntry{key: key, tr: tr}
	sh.entries[key] = ent
	ent.next = sh.head
	if sh.head != nil {
		sh.head.prev = ent
	}
	sh.head = ent
	if sh.tail == nil {
		sh.tail = ent
	}
}

// Tree returns the routing tree toward dest, computing and caching it
// on first use. Concurrent callers asking for the same destination
// share one computation. It returns nil for an unknown destination.
func (e *Engine) Tree(dest bgp.ASN) *Tree {
	di, ok := e.idx[dest]
	if !ok {
		return nil
	}
	sh := e.shard(dest)
	sh.mu.Lock()
	if tr := sh.lookupLocked(dest); tr != nil {
		sh.mu.Unlock()
		return tr
	}
	if c, ok := sh.inflight[dest]; ok {
		sh.mu.Unlock()
		c.wg.Wait()
		return c.tr
	}
	c := &inflightTree{}
	c.wg.Add(1)
	sh.inflight[dest] = c
	sh.mu.Unlock()

	t := e.newTree() // cached trees live arbitrarily long: never pooled
	s := e.scratchPool.Get().(*scratch)
	e.compute(di, t, s)
	e.scratchPool.Put(s)

	c.tr = t
	sh.mu.Lock()
	delete(sh.inflight, dest)
	sh.insertLocked(dest, t)
	sh.mu.Unlock()
	c.wg.Done()
	return t
}

// ForEachTree computes the tree of every destination in ascending ASN
// order using workers goroutines, invoking fn sequentially (fn needs no
// locking). Trees are not cached, and the *Tree passed to fn is only
// valid for the duration of the call: its buffers are recycled for
// later destinations, so fn must copy out anything it wants to keep.
func (e *Engine) ForEachTree(workers int, fn func(*Tree)) {
	if workers <= 0 {
		workers = 4
	}
	dests := e.asns
	out := make([]*Tree, len(dests))
	var next int
	var nextMu sync.Mutex
	// Compute in windows so memory stays bounded while fn consumes
	// trees in deterministic destination order.
	const window = 256
	for start := 0; start < len(dests); start += window {
		end := start + window
		if end > len(dests) {
			end = len(dests)
		}
		next = start
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				s := e.scratchPool.Get().(*scratch)
				defer e.scratchPool.Put(s)
				for {
					nextMu.Lock()
					i := next
					if i >= end {
						nextMu.Unlock()
						return
					}
					next++
					nextMu.Unlock()
					t := e.treePool.Get().(*Tree)
					e.compute(int32(i), t, s)
					out[i] = t
				}
			}()
		}
		wg.Wait()
		for i := start; i < end; i++ {
			fn(out[i])
			e.treePool.Put(out[i])
			out[i] = nil
		}
	}
}

// compute fills t with the routing tree toward the destination at index
// di, using s as working memory. Every phase resolves ties by lowest
// next-hop index, so the result is independent of visit order and no
// frontier or bucket ever needs sorting. Relaxations compare packed
// preference scores (see scoreClassShift): cand > scores[v] is exactly
// the engine's class / bilateral-quirk / distance / next-hop order.
//
// compute is the sanctioned builder for frozen Trees, and the packed
// relaxation loops are the hottest path in the repo: steady-state
// (arena-warm) calls must not allocate.
//
//mlplint:frozen
//mlplint:allocfree
func (e *Engine) compute(di int32, t *Tree, s *scratch) {
	n := len(e.asns)
	t.dest = e.asns[di]
	t.destIdx = di
	if cap(t.hops) < n {
		//mlplint:allocfree grow-only: fires once when the topology outgrew the tree
		t.hops = make([]hop, n)
	}
	t.hops = t.hops[:n]
	hops := t.hops
	for i := range hops {
		hops[i] = hop{via: noVia, viaIXP: noIXP}
	}
	scores := s.scores
	for i := range scores {
		scores[i] = noRouteScore
	}
	hops[di] = hop{via: noVia, viaIXP: noIXP, class: ClassOrigin, dist: 0}
	scores[di] = uint64(ClassOrigin)<<scoreClassShift | noRouteScore

	// Phase 1: customer routes propagate up provider (and sibling)
	// edges, breadth first. A node's final via is the minimum-index
	// parent at its discovery level, so frontier order cannot change the
	// outcome.
	upOff, upAdj := e.up.off, e.up.adj
	frontier := append(s.frontier[:0], di)
	next := s.next[:0]
	inNext := s.inNext
	for dist := uint16(1); len(frontier) > 0; dist++ {
		next = next[:0]
		base := uint64(ClassCustomer)<<scoreClassShift | uint64(^dist)<<scoreDistShift
		for _, u := range frontier {
			cand := base | uint64(^uint32(u))
			for _, p := range upAdj[upOff[u]:upOff[u+1]] {
				sc := scores[p]
				if cand <= sc {
					continue
				}
				wasRouted := Class(sc>>scoreClassShift) == ClassCustomer
				hops[p] = hop{via: u, viaIXP: noIXP, class: ClassCustomer, dist: dist}
				scores[p] = cand
				if !wasRouted && !inNext[p] {
					inNext[p] = true
					next = append(next, p)
				}
			}
		}
		for _, p := range next {
			inNext[p] = false
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next

	// Phase 2a: bilateral peer edges, one hop.
	peerOff, peerAdj := e.peers.off, e.peers.adj
	for u := int32(0); u < int32(n); u++ {
		if Class(scores[u]>>scoreClassShift) < ClassCustomer {
			continue
		}
		d := hops[u].dist + 1
		base := uint64(ClassPeer)<<scoreClassShift | uint64(^d)<<scoreDistShift | uint64(^uint32(u))
		for _, v := range peerAdj[peerOff[u]:peerOff[u+1]] {
			cand := base
			if e.prefBil[v] {
				cand |= scoreBilBit
			}
			if cand > scores[v] {
				hops[v] = hop{via: u, viaIXP: noIXP, bilateral: true, class: ClassPeer, dist: d}
				scores[v] = cand
			}
		}
	}

	// Phase 2b: route servers. Members with customer/origin routes
	// export them to the RS; every member whose filters line up (one
	// precomputed bitset row per exporter) receives a peer-class route.
	// The exporter list per IXP is kept on the tree, flat, for RS-RIB
	// construction. Netnod-style community-stripping servers still
	// reflect routes; only the communities are gone, handled at
	// reconstruction.
	if cap(t.expOff) < len(e.ixps)+1 {
		//mlplint:allocfree grow-only: fires once when IXPs were added under the tree
		t.expOff = make([]int32, len(e.ixps)+1)
	}
	t.expOff = t.expOff[:len(e.ixps)+1]
	expFlat := t.expFlat[:0]
	for xi, st := range e.ixps {
		t.expOff[xi] = int32(len(expFlat))
		for _, m := range st.members {
			if Class(scores[m]>>scoreClassShift) >= ClassCustomer {
				expFlat = append(expFlat, m)
			}
		}
		for _, eIdx := range expFlat[t.expOff[xi]:] {
			es := st.slotOf[eIdx]
			if !st.hasExport[es] {
				continue
			}
			d := hops[eIdx].dist + 1
			cand := uint64(ClassPeer)<<scoreClassShift | uint64(^d)<<scoreDistShift | uint64(^uint32(eIdx))
			row := st.allowed[int(es)*st.words : (int(es)+1)*st.words]
			for w, word := range row {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << b
					v := st.members[w<<6|b]
					if cand > scores[v] {
						hops[v] = hop{via: eIdx, viaIXP: int16(xi), class: ClassPeer, dist: d}
						scores[v] = cand
					}
				}
			}
		}
	}
	t.expOff[len(e.ixps)] = int32(len(expFlat))
	t.expFlat = expFlat

	// Phase 3: everything propagates down customer (and sibling) edges,
	// processed in distance buckets. The initial fill walks indexes
	// ascending so each bucket starts sorted; relaxations only ever push
	// into strictly later buckets, and a node's final via is again the
	// minimum-index parent, so processing order is immaterial.
	downOff, downAdj := e.down.off, e.down.adj
	buckets := s.buckets
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for i := int32(0); i < int32(n); i++ {
		if hops[i].class != ClassNone {
			d := int(hops[i].dist)
			for len(buckets) <= d {
				buckets = append(buckets, nil)
			}
			buckets[d] = append(buckets[d], i)
		}
	}
	for d := 0; d < len(buckets); d++ {
		for _, u := range buckets[d] {
			if int(hops[u].dist) != d || hops[u].class == ClassNone {
				continue // stale queue entry
			}
			nd := uint16(d) + 1
			base := uint64(ClassProvider)<<scoreClassShift | uint64(^nd)<<scoreDistShift | uint64(^uint32(u))
			for _, c := range downAdj[downOff[u]:downOff[u+1]] {
				if base > scores[c] {
					hops[c] = hop{via: u, viaIXP: noIXP, class: ClassProvider, dist: nd}
					scores[c] = base
					for len(buckets) <= int(nd) {
						buckets = append(buckets, nil)
					}
					buckets[nd] = append(buckets[nd], c)
				}
			}
		}
	}
	s.buckets = buckets
}
