package propagate

import "mlpeering/internal/bgp"

const (
	routeChunk = 256
	hopChunk   = 4096
)

// RouteArena slab-allocates reconstructed vantage routes and their path
// storage for bulk consumers (the collector writing a full RIB dump, the
// route-server RIB builder). Chunks are never grown in place, so routes
// handed out earlier stay valid until Reset. Not safe for concurrent
// use.
//
// Routes reconstructed into an arena share the engine's community
// slices instead of cloning them; callers must treat every field as
// read-only.
type RouteArena struct {
	routes [][]VantageRoute
	ri     int
	hops   [][]bgp.ASN
	hi     int
}

// Reset rewinds the arena, invalidating every route it handed out while
// keeping the allocated chunks for reuse.
func (a *RouteArena) Reset() {
	for i := range a.routes {
		a.routes[i] = a.routes[i][:0]
	}
	for i := range a.hops {
		a.hops[i] = a.hops[i][:0]
	}
	a.ri, a.hi = 0, 0
}

// newRoute carves one zeroed VantageRoute.
func (a *RouteArena) newRoute() *VantageRoute {
	if a.ri == len(a.routes) {
		a.routes = append(a.routes, make([]VantageRoute, 0, routeChunk))
	}
	cur := a.routes[a.ri]
	if len(cur) == cap(cur) {
		a.ri++
		return a.newRoute()
	}
	cur = cur[:len(cur)+1]
	a.routes[a.ri] = cur
	r := &cur[len(cur)-1]
	*r = VantageRoute{}
	return r
}

// pathSlice carves a zero-length path slice with capacity at least n.
func (a *RouteArena) pathSlice(n int) []bgp.ASN {
	if a.hi == len(a.hops) {
		c := hopChunk
		if n > c {
			c = n
		}
		a.hops = append(a.hops, make([]bgp.ASN, 0, c))
	}
	cur := a.hops[a.hi]
	if len(cur)+n > cap(cur) {
		a.hi++
		return a.pathSlice(n)
	}
	s := cur[len(cur) : len(cur) : len(cur)+n]
	a.hops[a.hi] = cur[:len(cur)+n]
	return s
}
