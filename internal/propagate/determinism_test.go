package propagate

import (
	"sort"
	"sync"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/topology"
)

// refEngine is a reference implementation of tree computation kept
// deliberately naive: slices-of-slices adjacency, map-based route-server
// state and explicit sorting at every step. The optimized engine must
// produce byte-identical hop tables for every destination.
type refEngine struct {
	idx     map[bgp.ASN]int32
	asns    []bgp.ASN
	up      [][]int32
	down    [][]int32
	peers   [][]int32
	prefBil []bool

	ixps []*refIXP
}

type refIXP struct {
	members []int32
	exports map[int32]func(bgp.ASN) bool
	imports map[int32]func(bgp.ASN) bool
}

func newRefEngine(topo *topology.Topology) *refEngine {
	n := len(topo.Order)
	r := &refEngine{
		idx:     make(map[bgp.ASN]int32, n),
		asns:    make([]bgp.ASN, n),
		up:      make([][]int32, n),
		down:    make([][]int32, n),
		peers:   make([][]int32, n),
		prefBil: make([]bool, n),
	}
	for i, asn := range topo.Order {
		r.idx[asn] = int32(i)
		r.asns[i] = asn
	}
	toIdx := func(asns []bgp.ASN) []int32 {
		out := make([]int32, 0, len(asns))
		for _, a := range asns {
			if j, ok := r.idx[a]; ok {
				out = append(out, j)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for i, asn := range topo.Order {
		as := topo.ASes[asn]
		r.up[i] = toIdx(append(append([]bgp.ASN(nil), as.Providers...), as.Siblings...))
		r.down[i] = toIdx(append(append([]bgp.ASN(nil), as.Customers...), as.Siblings...))
		r.peers[i] = toIdx(as.Peers)
		r.prefBil[i] = as.PrefersBilateral
	}
	for _, info := range topo.IXPs {
		x := &refIXP{
			exports: make(map[int32]func(bgp.ASN) bool),
			imports: make(map[int32]func(bgp.ASN) bool),
		}
		for _, m := range info.SortedRSMembers() {
			mi, ok := r.idx[m]
			if !ok {
				continue
			}
			x.members = append(x.members, mi)
			if f, ok := topo.ExportFilter(info.Name, m); ok {
				x.exports[mi] = f.Allows
			}
			if f, ok := topo.ImportFilter(info.Name, m); ok {
				x.imports[mi] = f.Allows
			}
		}
		r.ixps = append(r.ixps, x)
	}
	return r
}

// compute is the original, sort-heavy tree computation.
func (r *refEngine) compute(dest bgp.ASN) ([]hop, [][]int32) {
	n := len(r.asns)
	di := r.idx[dest]
	hops := make([]hop, n)
	for i := range hops {
		hops[i] = hop{via: noVia, viaIXP: noIXP}
	}
	hops[di] = hop{via: noVia, viaIXP: noIXP, class: ClassOrigin, dist: 0}

	frontier := []int32{di}
	inNext := make([]bool, n)
	for dist := uint16(1); len(frontier) > 0; dist++ {
		var next []int32
		for _, u := range frontier {
			for _, p := range r.up[u] {
				h := &hops[p]
				if h.class > ClassCustomer {
					continue
				}
				if h.class == ClassCustomer {
					if h.dist < dist || (h.dist == dist && h.via <= u) {
						continue
					}
				}
				wasRouted := h.class == ClassCustomer
				hops[p] = hop{via: u, viaIXP: noIXP, class: ClassCustomer, dist: dist}
				if !wasRouted && !inNext[p] {
					inNext[p] = true
					next = append(next, p)
				}
			}
		}
		for _, p := range next {
			inNext[p] = false
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}

	better := func(v int32, cand hop) bool {
		cur := hops[v]
		if cand.class != cur.class {
			return cand.class > cur.class
		}
		if cand.class == ClassPeer && r.prefBil[v] && cand.bilateral != cur.bilateral {
			return cand.bilateral
		}
		if cand.dist != cur.dist {
			return cand.dist < cur.dist
		}
		return cand.via < cur.via
	}

	for u := int32(0); u < int32(n); u++ {
		if hops[u].class < ClassCustomer {
			continue
		}
		d := hops[u].dist + 1
		for _, v := range r.peers[u] {
			cand := hop{via: u, viaIXP: noIXP, bilateral: true, class: ClassPeer, dist: d}
			if better(v, cand) {
				hops[v] = cand
			}
		}
	}

	exporters := make([][]int32, len(r.ixps))
	for xi, st := range r.ixps {
		var exp []int32
		for _, m := range st.members {
			if hops[m].class >= ClassCustomer {
				exp = append(exp, m)
			}
		}
		exporters[xi] = exp
		for _, eIdx := range exp {
			ef, ok := st.exports[eIdx]
			if !ok {
				continue
			}
			d := hops[eIdx].dist + 1
			eASN := r.asns[eIdx]
			for _, v := range st.members {
				if v == eIdx {
					continue
				}
				imf, ok := st.imports[v]
				if !ok {
					continue
				}
				if !ef(r.asns[v]) || !imf(eASN) {
					continue
				}
				cand := hop{via: eIdx, viaIXP: int16(xi), class: ClassPeer, dist: d}
				if better(v, cand) {
					hops[v] = cand
				}
			}
		}
	}

	maxDist := uint16(0)
	for i := range hops {
		if hops[i].class != ClassNone && hops[i].dist > maxDist {
			maxDist = hops[i].dist
		}
	}
	buckets := make([][]int32, int(maxDist)+2)
	for i := int32(0); i < int32(n); i++ {
		if hops[i].class != ClassNone {
			buckets[hops[i].dist] = append(buckets[hops[i].dist], i)
		}
	}
	for d := 0; d < len(buckets); d++ {
		bucket := buckets[d]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		for _, u := range bucket {
			if int(hops[u].dist) != d || hops[u].class == ClassNone {
				continue
			}
			nd := uint16(d) + 1
			for _, c := range r.down[u] {
				cand := hop{via: u, viaIXP: noIXP, class: ClassProvider, dist: nd}
				if better(c, cand) {
					hops[c] = cand
					for len(buckets) <= int(nd) {
						buckets = append(buckets, nil)
					}
					buckets[nd] = append(buckets[nd], c)
				}
			}
		}
	}
	return hops, exporters
}

// snapshot is a deep copy of one tree's observable state.
type snapshot struct {
	dest      bgp.ASN
	hops      []hop
	exporters [][]int32
}

func snapshotTree(t *Tree) snapshot {
	s := snapshot{
		dest:      t.dest,
		hops:      append([]hop(nil), t.hops...),
		exporters: make([][]int32, len(t.e.ixps)),
	}
	for xi := range t.e.ixps {
		s.exporters[xi] = append([]int32(nil), t.exportersAt(int16(xi))...)
	}
	return s
}

func diffSnapshots(t *testing.T, what string, a, b snapshot) {
	t.Helper()
	if a.dest != b.dest {
		t.Fatalf("%s: dest %s != %s", what, a.dest, b.dest)
	}
	for i := range a.hops {
		if a.hops[i] != b.hops[i] {
			t.Fatalf("%s: dest %s: hop[%d] differs: %+v != %+v", what, a.dest, i, a.hops[i], b.hops[i])
		}
	}
	if len(a.exporters) != len(b.exporters) {
		t.Fatalf("%s: dest %s: exporter IXP count %d != %d", what, a.dest, len(a.exporters), len(b.exporters))
	}
	for xi := range a.exporters {
		ea, eb := a.exporters[xi], b.exporters[xi]
		if len(ea) != len(eb) {
			t.Fatalf("%s: dest %s: IXP %d exporter count %d != %d", what, a.dest, xi, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s: dest %s: IXP %d exporter[%d] %d != %d", what, a.dest, xi, j, ea[j], eb[j])
			}
		}
	}
}

// TestComputeMatchesReference checks, over a full generated world, that
// the optimized engine produces hop tables and exporter lists
// byte-identical to the naive reference for every destination — via
// Tree and via ForEachTree at several worker counts.
func TestComputeMatchesReference(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefEngine(topo)
	e := NewEngine(topo, 0)

	want := make(map[bgp.ASN]snapshot, len(topo.Order))
	for _, dest := range topo.Order {
		hops, exps := ref.compute(dest)
		for len(exps) < len(e.ixps) {
			exps = append(exps, nil)
		}
		want[dest] = snapshot{dest: dest, hops: hops, exporters: exps}
	}

	// Via Tree (cached path).
	for _, dest := range topo.Order {
		diffSnapshots(t, "Tree", want[dest], snapshotTree(e.Tree(dest)))
	}

	// Via ForEachTree at several worker counts. Snapshots must be taken
	// inside fn: the tree is recycled afterward.
	for _, workers := range []int{1, 3, 8} {
		e2 := NewEngine(topo, 0)
		count := 0
		e2.ForEachTree(workers, func(tr *Tree) {
			diffSnapshots(t, "ForEachTree", want[tr.Dest()], snapshotTree(tr))
			count++
		})
		if count != len(topo.Order) {
			t.Fatalf("ForEachTree(%d) visited %d of %d destinations", workers, count, len(topo.Order))
		}
	}
}

// TestComputeMatchesReferenceSmallWorld runs the same comparison over
// the hand-wired test topology, where failures are easy to read.
func TestComputeMatchesReferenceSmallWorld(t *testing.T) {
	topo := buildWorld()
	ref := newRefEngine(topo)
	e := NewEngine(topo, 0)
	for _, dest := range topo.Order {
		hops, exps := ref.compute(dest)
		for len(exps) < len(e.ixps) {
			exps = append(exps, nil)
		}
		want := snapshot{dest: dest, hops: hops, exporters: exps}
		diffSnapshots(t, "Tree", want, snapshotTree(e.Tree(dest)))
	}
}

// TestTreeSingleflight checks that concurrent Tree calls for one
// destination share a single computation and result.
func TestTreeSingleflight(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	const goroutines = 16
	trees := make([]*Tree, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			trees[g] = e.Tree(1001)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if trees[g] != trees[0] {
			t.Fatalf("goroutine %d got a different tree pointer", g)
		}
	}
}
