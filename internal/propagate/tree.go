package propagate

import (
	"slices"

	"mlpeering/internal/bgp"
)

// Tree is the routing tree toward one destination AS.
//
// Trees returned by Engine.Tree are immutable and safe for concurrent
// use. Trees passed to Engine.ForEachTree are recycled after the
// callback returns; see that method's contract. Either way a tree is
// only ever (re)filled inside Engine.compute, the annotated builder.
//
//mlplint:frozen
type Tree struct {
	e       *Engine
	dest    bgp.ASN
	destIdx int32
	hops    []hop
	// Exporters per IXP, flattened: expFlat[expOff[xi]:expOff[xi+1]]
	// lists the RS members (by AS index, ascending) exporting a
	// customer/origin route toward dest at IXP xi.
	expFlat []int32
	expOff  []int32
}

// Dest returns the destination AS.
func (t *Tree) Dest() bgp.ASN { return t.dest }

// exportersAt returns the exporting member indices at IXP xi.
func (t *Tree) exportersAt(xi int16) []int32 {
	return t.expFlat[t.expOff[xi]:t.expOff[xi+1]]
}

// Class returns how asn reaches the destination (ClassNone if it
// cannot).
func (t *Tree) Class(asn bgp.ASN) Class {
	i, ok := t.e.idx[asn]
	if !ok {
		return ClassNone
	}
	return t.hops[i].class
}

// Dist returns the AS-hop distance from asn to the destination; ok is
// false when there is no route.
func (t *Tree) Dist(asn bgp.ASN) (int, bool) {
	i, ok := t.e.idx[asn]
	if !ok || t.hops[i].class == ClassNone {
		return 0, false
	}
	return int(t.hops[i].dist), true
}

// Exporters returns the RS members exporting a route toward the
// destination at the named IXP, ascending by ASN. This is the "which
// members advertise this destination's prefixes to the RS" relation
// behind Fig. 5 and the RS looking glass.
func (t *Tree) Exporters(ixpName string) []bgp.ASN {
	xi, ok := t.e.ixpsByName[ixpName]
	if !ok {
		return nil
	}
	// Exporting also requires a non-empty export filter: a member that
	// announces to nobody contributes nothing to the RS RIB. The flat
	// exporter list is built in ascending member order, so no sort is
	// needed here.
	st := t.e.ixps[xi]
	var out []bgp.ASN
	for _, m := range t.exportersAt(xi) {
		if st.hasExport[st.slotOf[m]] {
			out = append(out, t.e.asns[m])
		}
	}
	return out
}

// VantageRoute is a route as seen at one vantage AS: the reconstructed
// AS path (vantage first, destination last), the communities that
// survived to the vantage, and bookkeeping about the route-server
// crossing if any.
type VantageRoute struct {
	Path        []bgp.ASN
	Communities bgp.Communities
	Class       Class
	Bilateral   bool   // first hop is a bilateral peer edge
	ViaIXP      string // IXP name when the path crosses a route server
	RSSetter    bgp.ASN
	Best        bool
}

// PathFrom returns the best AS path from vantage to the destination
// (vantage first), or nil when the vantage has no route. Non-transparent
// route servers appear in the path.
func (t *Tree) PathFrom(vantage bgp.ASN) []bgp.ASN {
	r := t.RouteFrom(vantage)
	if r == nil {
		return nil
	}
	return r.Path
}

// RouteFrom returns the best route at the vantage AS, or nil.
func (t *Tree) RouteFrom(vantage bgp.ASN) *VantageRoute {
	return t.RouteFromArena(vantage, nil)
}

// RouteFromArena returns the best route at the vantage AS, or nil,
// slab-allocating the route and its path from arena when it is non-nil.
// An arena route is valid only until the arena's next Reset, and its
// Communities are shared with the engine rather than cloned: callers
// must treat the whole route as read-only.
func (t *Tree) RouteFromArena(vantage bgp.ASN, arena *RouteArena) *VantageRoute {
	vi, ok := t.e.idx[vantage]
	if !ok || t.hops[vi].class == ClassNone {
		return nil
	}
	return t.reconstruct(vi, arena)
}

// reconstruct follows via pointers from vi to the destination.
func (t *Tree) reconstruct(vi int32, arena *RouteArena) *VantageRoute {
	e := t.e
	h0 := t.hops[vi]
	var r *VantageRoute
	if arena != nil {
		r = arena.newRoute()
	} else {
		r = &VantageRoute{}
	}
	r.Class = h0.class
	r.Bilateral = h0.bilateral
	r.Best = true
	// dist counts AS hops to the destination; +2 leaves room for a
	// non-transparent RS ASN insertion.
	if arena != nil {
		r.Path = arena.pathSlice(int(h0.dist) + 2)
	} else {
		r.Path = make([]bgp.ASN, 0, int(h0.dist)+2)
	}
	// Walk the chain. dist strictly decreases along via pointers, so
	// this terminates. Community survival is tracked inline: communities
	// attached by the RS exporter survive to the vantage iff no AS
	// between the vantage (exclusive) and the importer (inclusive)
	// strips them on export.
	var rsExporter int32 = noVia
	var rsIXP int16 = noIXP
	rsSurvives := false
	stripsSeen := false
	cur := vi
	for {
		r.Path = append(r.Path, e.asns[cur])
		if len(r.Path) > 1 && e.strips[cur] {
			stripsSeen = true
		}
		h := t.hops[cur]
		if h.via == noVia {
			break
		}
		if h.viaIXP != noIXP {
			rsExporter = h.via
			rsIXP = h.viaIXP
			rsSurvives = !stripsSeen
			st := e.ixps[h.viaIXP]
			if !st.info.Transparent {
				r.Path = append(r.Path, st.info.Scheme.RSASN)
			}
		}
		cur = h.via
	}
	if rsIXP != noIXP {
		st := e.ixps[rsIXP]
		r.ViaIXP = st.info.Name
		r.RSSetter = e.asns[rsExporter]
		if !st.info.StripsCommunities && rsSurvives {
			cs := st.comms[st.slotOf[rsExporter]]
			if arena != nil {
				// Arena routes are read-only by contract; share the
				// engine's community set instead of cloning it.
				r.Communities = cs
			} else {
				r.Communities = cs.Clone()
			}
		}
	}
	return r
}

// AvailableRoutesFrom enumerates every route the vantage AS has in its
// Adj-RIB-In toward the destination, best first: the view an all-paths
// looking glass prints. Alternatives whose path would traverse the
// vantage itself are suppressed (BGP loop prevention).
func (t *Tree) AvailableRoutesFrom(vantage bgp.ASN) []*VantageRoute {
	return t.AvailableRoutesFromArena(vantage, nil, nil)
}

// AvailableRoutesFromArena is AvailableRoutesFrom with the routes and
// their path storage slab-allocated from arena when it is non-nil, and
// the result appended to buf (which may be nil). Arena routes are valid
// only until the arena's next Reset and share the engine's community
// slices instead of cloning them: callers must treat them as read-only.
func (t *Tree) AvailableRoutesFromArena(vantage bgp.ASN, arena *RouteArena, buf []*VantageRoute) []*VantageRoute {
	e := t.e
	vi, ok := e.idx[vantage]
	if !ok {
		return nil
	}
	out := buf[:0]

	newRoute := func() *VantageRoute {
		if arena != nil {
			return arena.newRoute()
		}
		return &VantageRoute{}
	}
	newPath := func(n int) []bgp.ASN {
		if arena != nil {
			return arena.pathSlice(n)
		}
		return make([]bgp.ASN, 0, n)
	}

	add := func(nb int32, class Class, bilateral bool, viaIXPIdx int16) {
		sub := t.hops[nb]
		if sub.class == ClassNone {
			return
		}
		nbRoute := t.reconstruct(nb, arena)
		for _, a := range nbRoute.Path {
			if a == vantage {
				return // loop
			}
		}
		r := newRoute()
		r.Class = class
		r.Bilateral = bilateral
		path := newPath(len(nbRoute.Path) + 2)
		path = append(path, vantage)
		if viaIXPIdx != noIXP {
			st := e.ixps[viaIXPIdx]
			r.ViaIXP = st.info.Name
			r.RSSetter = e.asns[nb]
			if !st.info.Transparent {
				path = append(path, st.info.Scheme.RSASN)
			}
			if !st.info.StripsCommunities {
				cs := st.comms[st.slotOf[nb]]
				if arena != nil {
					r.Communities = cs
				} else {
					r.Communities = cs.Clone()
				}
			}
		} else {
			// Communities on the neighbor's route survive to the
			// vantage iff the neighbor itself does not strip.
			if nbRoute.Communities != nil && !e.strips[nb] {
				r.Communities = nbRoute.Communities
				r.ViaIXP = nbRoute.ViaIXP
				r.RSSetter = nbRoute.RSSetter
			}
		}
		r.Path = append(path, nbRoute.Path...)
		out = append(out, r)
	}

	if t.hops[vi].class == ClassOrigin {
		r := newRoute()
		r.Class = ClassOrigin
		r.Best = true
		r.Path = append(newPath(1), vantage)
		return append(out, r)
	}

	as := e.topo.ASes[vantage]
	// Customer routes: customers export their customer/origin routes.
	for _, c := range as.Customers {
		ci, ok := e.idx[c]
		if !ok {
			continue
		}
		if t.hops[ci].class >= ClassCustomer {
			add(ci, ClassCustomer, false, noIXP)
		}
	}
	// Sibling routes: siblings export everything; classify like customers.
	for _, s := range as.Siblings {
		si, ok := e.idx[s]
		if !ok {
			continue
		}
		if t.hops[si].class != ClassNone {
			add(si, ClassCustomer, false, noIXP)
		}
	}
	// Bilateral peers export customer/origin routes.
	for _, p := range as.Peers {
		pi, ok := e.idx[p]
		if !ok {
			continue
		}
		if t.hops[pi].class >= ClassCustomer {
			add(pi, ClassPeer, true, noIXP)
		}
	}
	// Route server peers: the precomputed allowed-pair bitset already
	// folds in export/import filter existence and both Allows checks.
	for xi, st := range e.ixps {
		vs := st.slotOf[vi]
		if vs < 0 || !st.hasImport[vs] {
			continue
		}
		for _, ei := range t.exportersAt(int16(xi)) {
			if ei == vi {
				continue
			}
			if !st.allowedBit(st.slotOf[ei], vs) {
				continue
			}
			add(ei, ClassPeer, false, int16(xi))
		}
	}
	// Providers export their full table.
	for _, p := range as.Providers {
		pi, ok := e.idx[p]
		if !ok {
			continue
		}
		if t.hops[pi].class != ClassNone {
			add(pi, ClassProvider, false, noIXP)
		}
	}

	// Generic sort: sort.SliceStable's reflection path allocates, which
	// would void the arena's zero-alloc contract.
	slices.SortStableFunc(out, func(a, b *VantageRoute) int {
		switch {
		case t.routeLess(vi, a, b):
			return -1
		case t.routeLess(vi, b, a):
			return 1
		default:
			return 0
		}
	})
	if len(out) > 0 {
		out[0].Best = true
	}
	return out
}

// routeLess orders candidate routes at a vantage by the same preference
// the engine applies: class, the bilateral quirk, path length, then
// neighbor ASN.
func (t *Tree) routeLess(vi int32, a, b *VantageRoute) bool {
	if a.Class != b.Class {
		return a.Class > b.Class
	}
	if a.Class == ClassPeer && t.e.prefBil[vi] && a.Bilateral != b.Bilateral {
		return a.Bilateral
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	if len(a.Path) > 1 && len(b.Path) > 1 {
		return a.Path[1] < b.Path[1]
	}
	return false
}
