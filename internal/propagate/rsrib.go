package propagate

import (
	"sort"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
)

// RSEntry is one member's advertisement of a prefix to a route server.
type RSEntry struct {
	Member      bgp.ASN
	Path        []bgp.ASN // member first, origin last
	Communities bgp.Communities
}

// RSRIB is the routing table of one IXP's route server: everything its
// members currently advertise to it. This is the state an IXP looking
// glass exposes and the object the active inference algorithm queries.
type RSRIB struct {
	IXP     *ixp.Info
	Entries map[bgp.Prefix][]RSEntry
}

// Prefixes returns all prefixes in deterministic order.
func (r *RSRIB) Prefixes() []bgp.Prefix {
	out := make([]bgp.Prefix, 0, len(r.Entries))
	for p := range r.Entries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return bgp.ComparePrefixes(out[i], out[j]) < 0 })
	return out
}

// PrefixesFrom returns the prefixes advertised by one member, in
// deterministic order: the "show ip bgp neighbor <addr> routes" data.
func (r *RSRIB) PrefixesFrom(member bgp.ASN) []bgp.Prefix {
	var out []bgp.Prefix
	for p, es := range r.Entries {
		for _, e := range es {
			if e.Member == member {
				out = append(out, p)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return bgp.ComparePrefixes(out[i], out[j]) < 0 })
	return out
}

// AdvertiserCount returns, for every prefix, how many members advertise
// it (the Fig. 5 distribution).
func (r *RSRIB) AdvertiserCount() map[bgp.Prefix]int {
	out := make(map[bgp.Prefix]int, len(r.Entries))
	for p, es := range r.Entries {
		out[p] = len(es)
	}
	return out
}

// Members returns the connected members observed in the RIB (ascending).
func (r *RSRIB) Members() []bgp.ASN {
	seen := make(map[bgp.ASN]bool)
	for _, es := range r.Entries {
		for _, e := range es {
			seen[e.Member] = true
		}
	}
	out := make([]bgp.ASN, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildRSRIBs computes the route server RIBs of every IXP in one pass
// over all destination trees.
func BuildRSRIBs(e *Engine, workers int) map[string]*RSRIB {
	out := make(map[string]*RSRIB, len(e.ixps))
	for _, st := range e.ixps {
		out[st.info.Name] = &RSRIB{IXP: st.info, Entries: make(map[bgp.Prefix][]RSEntry)}
	}
	// RSEntry.Path references the reconstructed route's path for the
	// RIBs' whole lifetime, so routes come from a never-reset arena the
	// entries keep alive: slab allocation without a copy.
	var arena RouteArena
	e.ForEachTree(workers, func(tr *Tree) {
		dest := e.topo.ASes[tr.Dest()]
		if len(dest.Prefixes) == 0 {
			return
		}
		for _, st := range e.ixps {
			rib := out[st.info.Name]
			exps := tr.Exporters(st.info.Name)
			if len(exps) == 0 {
				continue
			}
			for _, m := range exps {
				mi := e.idx[m]
				var comms bgp.Communities
				if !st.info.StripsCommunities {
					comms = st.comms[st.slotOf[mi]]
				}
				route := tr.RouteFromArena(m, &arena)
				if route == nil {
					continue
				}
				for _, p := range dest.Prefixes {
					rib.Entries[p] = append(rib.Entries[p], RSEntry{
						Member:      m,
						Path:        route.Path,
						Communities: comms,
					})
				}
			}
		}
	})
	return out
}
