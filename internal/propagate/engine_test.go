package propagate

import (
	"sort"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// buildWorld assembles a small hand-wired topology:
//
//	    T1 ---- T2          (tier-1 clique, p2p)
//	   /  \       \
//	  P1   P2      P3       (transit, customers of tier-1s)
//	 /  \    \    /  \
//	A    B    C  D    E     (stubs)
//
// P1, P2, P3 and C are RS members of IXP "TIX" (RS ASN 6695).
// P1 bilaterally peers with P3 as well.
// Export filters: P1 excludes C; others open. Imports open.
func buildWorld() *topology.Topology {
	t := &topology.Topology{
		ASes:          make(map[bgp.ASN]*topology.AS),
		ExportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
		ImportFilters: make(map[string]map[bgp.ASN]ixp.ExportFilter),
		BilateralIXP:  make(map[topology.LinkKey][]string),
		MemberLGs:     make(map[string][]topology.LGHost),
		PrefixRegions: make(map[bgp.Prefix]ixp.Region),
		MemberComms:   make(map[string]map[bgp.ASN]bgp.Communities),
	}
	add := func(asn bgp.ASN, tier topology.Tier) *topology.AS {
		as := &topology.AS{ASN: asn, Tier: tier, Region: ixp.RegionWestEU}
		t.ASes[asn] = as
		t.Order = append(t.Order, asn)
		return as
	}
	const (
		T1 bgp.ASN = 10
		T2 bgp.ASN = 20
		P1 bgp.ASN = 100
		P2 bgp.ASN = 200
		P3 bgp.ASN = 300
		A  bgp.ASN = 1001
		B  bgp.ASN = 1002
		C  bgp.ASN = 1003
		D  bgp.ASN = 1004
		E  bgp.ASN = 1005
	)
	add(T1, topology.Tier1)
	add(T2, topology.Tier1)
	add(P1, topology.Tier2)
	add(P2, topology.Tier2)
	add(P3, topology.Tier2)
	for _, s := range []bgp.ASN{A, B, C, D, E} {
		add(s, topology.TierStub)
	}
	sort.Slice(t.Order, func(i, j int) bool { return t.Order[i] < t.Order[j] })

	link := func(c, p bgp.ASN) {
		t.ASes[c].Providers = append(t.ASes[c].Providers, p)
		t.ASes[p].Customers = append(t.ASes[p].Customers, c)
	}
	peer := func(a, b bgp.ASN) {
		t.ASes[a].Peers = append(t.ASes[a].Peers, b)
		t.ASes[b].Peers = append(t.ASes[b].Peers, a)
	}
	peer(T1, T2)
	link(P1, T1)
	link(P2, T1)
	link(P3, T2)
	link(A, P1)
	link(B, P1)
	link(C, P2)
	link(D, P3)
	link(E, P3)
	peer(P1, P3) // bilateral private peering

	for _, as := range t.ASes {
		sort.Slice(as.Providers, func(i, j int) bool { return as.Providers[i] < as.Providers[j] })
		sort.Slice(as.Customers, func(i, j int) bool { return as.Customers[i] < as.Customers[j] })
		sort.Slice(as.Peers, func(i, j int) bool { return as.Peers[i] < as.Peers[j] })
	}

	// Prefixes: one per AS, 30.<idx>.0.0/16.
	for i, asn := range t.Order {
		p := bgp.MustPrefix("30." + itoa(i) + ".0.0/16")
		t.ASes[asn].Prefixes = []bgp.Prefix{p}
		t.PrefixRegions[p] = ixp.RegionWestEU
	}

	scheme := ixp.StandardScheme(6695)
	info := &ixp.Info{
		Name:                "TIX",
		Region:              ixp.RegionWestEU,
		Scheme:              scheme,
		Members:             []bgp.ASN{P1, P2, P3, C},
		RSMembers:           []bgp.ASN{P1, P2, P3, C},
		HasLG:               true,
		PublishesMemberList: true,
		Transparent:         true,
	}
	t.IXPs = append(t.IXPs, info)

	exp := map[bgp.ASN]ixp.ExportFilter{
		P1: ixp.NewExportFilter(ixp.ModeAllExcept, C),
		P2: ixp.OpenFilter(),
		P3: ixp.OpenFilter(),
		C:  ixp.OpenFilter(),
	}
	imp := map[bgp.ASN]ixp.ExportFilter{
		P1: ixp.OpenFilter(), P2: ixp.OpenFilter(), P3: ixp.OpenFilter(), C: ixp.OpenFilter(),
	}
	t.ExportFilters["TIX"] = exp
	t.ImportFilters["TIX"] = imp
	comms := make(map[bgp.ASN]bgp.Communities)
	for m, f := range exp {
		cs, err := f.Communities(&info.Scheme)
		if err != nil {
			panic(err)
		}
		comms[m] = cs
	}
	t.MemberComms["TIX"] = comms
	return t
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestPhase1CustomerRoutes(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	tr := e.Tree(1001) // stub A, customer of P1

	if tr.Class(100) != ClassCustomer {
		t.Fatalf("P1 class = %v", tr.Class(100))
	}
	if tr.Class(10) != ClassCustomer {
		t.Fatalf("T1 class = %v", tr.Class(10))
	}
	if d, _ := tr.Dist(10); d != 2 {
		t.Fatalf("T1 dist = %d", d)
	}
	path := tr.PathFrom(10)
	if len(path) != 3 || path[0] != 10 || path[1] != 100 || path[2] != 1001 {
		t.Fatalf("T1 path = %v", path)
	}
	if tr.Class(1001) != ClassOrigin {
		t.Fatal("origin class")
	}
}

func TestPeerAndProviderClasses(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	tr := e.Tree(1001) // origin A under P1

	// T2 hears A via its peer T1 (peer class, one hop across the clique).
	if tr.Class(20) != ClassPeer {
		t.Fatalf("T2 class = %v", tr.Class(20))
	}
	// B (stub under P1) hears via provider.
	if tr.Class(1002) != ClassProvider {
		t.Fatalf("B class = %v", tr.Class(1002))
	}
	// E under P3: P3 has peer routes (bilateral with P1 and RS);
	// E gets a provider route through P3.
	if tr.Class(1005) != ClassProvider {
		t.Fatalf("E class = %v", tr.Class(1005))
	}
	path := tr.PathFrom(1005)
	if path[0] != 1005 || path[len(path)-1] != 1001 {
		t.Fatalf("E path = %v", path)
	}
}

func TestValleyFree(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	// Destination D (stub under P3). P1 hears via bilateral peer P3 or
	// the RS. P2 must NOT hear via P1 (peer routes don't propagate to
	// peers), only via the RS exporter P3 or via T1 -> T2 -> P3 if RS
	// filtering blocked it.
	tr := e.Tree(1004)
	r := e.Tree(1004).RouteFrom(200)
	if r == nil {
		t.Fatal("P2 has no route to D")
	}
	// P2 is an open RS member; P3 exports D to the RS; so P2's best is
	// the RS peer route P2-P3-D.
	if r.Class != ClassPeer || r.ViaIXP != "TIX" {
		t.Fatalf("P2 route = %+v", r)
	}
	wantPath := []bgp.ASN{200, 300, 1004}
	for i, a := range wantPath {
		if r.Path[i] != a {
			t.Fatalf("P2 path = %v", r.Path)
		}
	}
	// The vantage path of T1 must go down through its customer... T1
	// hears D as customer route? No: D is not in T1's cone. T1 hears
	// from peer T2 (T2's customer P3 originates the path up).
	if tr.Class(10) != ClassPeer {
		t.Fatalf("T1 class = %v", tr.Class(10))
	}
}

func TestRSFilterBlocksExcludedMember(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	// Destination A (cone of P1). P1 exports to RS but excludes C.
	tr := e.Tree(1001)

	// C's route must not be the RS route via P1: it falls back to its
	// provider P2 (provider class).
	r := tr.RouteFrom(1003)
	if r == nil {
		t.Fatal("C unreachable")
	}
	if r.Class == ClassPeer {
		t.Fatalf("C got an RS route despite being excluded: %+v", r)
	}
	// P3 however hears A over the RS from P1 — or over the bilateral
	// link; both are peer class length 3; bilateral via=100 equals RS
	// via=100... the engine prefers the bilateral edge only for
	// PrefersBilateral ASes; both candidates have via P1, the first
	// offered (bilateral phase runs first) wins.
	r3 := tr.RouteFrom(300)
	if r3 == nil || r3.Class != ClassPeer {
		t.Fatalf("P3 route = %+v", r3)
	}
}

func TestRSCommunitiesVisibleAtImporter(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	tr := e.Tree(1001) // origin A, exporter P1 (excludes C)

	r := tr.RouteFrom(200) // P2 imports from RS
	if r == nil || r.ViaIXP != "TIX" {
		t.Fatalf("P2 route = %+v", r)
	}
	if r.RSSetter != 100 {
		t.Fatalf("RS setter = %v", r.RSSetter)
	}
	want, _ := bgp.ParseCommunities("6695:6695 0:1003")
	if !r.Communities.Equal(want) {
		t.Fatalf("communities = %v, want %v", r.Communities, want)
	}
}

func TestCommunityStripping(t *testing.T) {
	topo := buildWorld()
	// P2 strips communities on export; its customer C must not see them.
	topo.ASes[200].StripsCommunities = true
	e := NewEngine(topo, 0)
	tr := e.Tree(1001)

	rC := tr.RouteFrom(1003) // C hears via provider P2
	if rC == nil {
		t.Fatal("C unreachable")
	}
	if rC.Class != ClassProvider {
		t.Fatalf("C class = %v", rC.Class)
	}
	if len(rC.Communities) != 0 {
		t.Fatalf("communities leaked through stripping AS: %v", rC.Communities)
	}

	// P2 itself (the importer) still sees them.
	rP2 := tr.RouteFrom(200)
	if len(rP2.Communities) == 0 {
		t.Fatal("importer must see communities")
	}
}

func TestCommunitiesPropagateDownstream(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	tr := e.Tree(1001)

	// C hears A via provider P2 whose best route is the RS route; P2
	// does not strip, so C sees P1's RS communities.
	rC := tr.RouteFrom(1003)
	if rC == nil || rC.Class != ClassProvider {
		t.Fatalf("C route = %+v", rC)
	}
	if rC.ViaIXP != "TIX" || rC.RSSetter != 100 {
		t.Fatalf("RS metadata lost downstream: %+v", rC)
	}
	want, _ := bgp.ParseCommunities("6695:6695 0:1003")
	if !rC.Communities.Equal(want) {
		t.Fatalf("C communities = %v", rC.Communities)
	}
}

func TestExporters(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)

	// Destination A: only P1 has A in its cone among RS members.
	exp := e.Tree(1001).Exporters("TIX")
	if len(exp) != 1 || exp[0] != 100 {
		t.Fatalf("exporters = %v", exp)
	}
	// Destination C (a member itself, under P2): C and P2 both export.
	exp = e.Tree(1003).Exporters("TIX")
	if len(exp) != 2 || exp[0] != 200 || exp[1] != 1003 {
		t.Fatalf("exporters = %v", exp)
	}
	if e.Tree(1001).Exporters("NOPE") != nil {
		t.Fatal("unknown IXP must have no exporters")
	}
}

func TestAvailableRoutes(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	tr := e.Tree(1004) // destination D under P3

	// At P1: bilateral route via P3, RS route via P3, provider route via
	// T1. The customer-free paths must be found, loops suppressed.
	routes := tr.AvailableRoutesFrom(100)
	if len(routes) < 3 {
		t.Fatalf("routes at P1 = %d: %+v", len(routes), routes)
	}
	if !routes[0].Best {
		t.Fatal("first route must be marked best")
	}
	// Best is peer class (bilateral or RS), path length 3.
	if routes[0].Class != ClassPeer || len(routes[0].Path) != 3 {
		t.Fatalf("best at P1 = %+v", routes[0])
	}
	// Provider route via T1 present.
	foundProvider := false
	for _, r := range routes {
		if r.Class == ClassProvider && r.Path[1] == 10 {
			foundProvider = true
		}
		if r.Path[0] != 100 || r.Path[len(r.Path)-1] != 1004 {
			t.Fatalf("malformed path %v", r.Path)
		}
	}
	if !foundProvider {
		t.Fatal("provider alternative missing")
	}

	// At the origin the only route is itself.
	origin := tr.AvailableRoutesFrom(1004)
	if len(origin) != 1 || origin[0].Class != ClassOrigin {
		t.Fatalf("origin routes = %+v", origin)
	}
}

func TestPrefersBilateralQuirk(t *testing.T) {
	topo := buildWorld()
	topo.ASes[100].PrefersBilateral = true
	e := NewEngine(topo, 0)
	tr := e.Tree(1004) // D under P3; P1 has bilateral and RS routes via P3

	r := tr.RouteFrom(100)
	if r == nil || r.Class != ClassPeer {
		t.Fatalf("P1 route = %+v", r)
	}
	if !r.Bilateral {
		t.Fatalf("PrefersBilateral not honored: %+v", r)
	}
	// And the available-routes ranking agrees.
	routes := tr.AvailableRoutesFrom(100)
	if !routes[0].Bilateral {
		t.Fatalf("ranking disagrees: %+v", routes[0])
	}
}

func TestNonTransparentRS(t *testing.T) {
	topo := buildWorld()
	topo.IXPs[0].Transparent = false
	e := NewEngine(topo, 0)
	tr := e.Tree(1001)

	r := tr.RouteFrom(200)
	if r == nil || r.ViaIXP != "TIX" {
		t.Fatalf("route = %+v", r)
	}
	// Path must contain the RS ASN 6695 between importer and exporter.
	if len(r.Path) != 4 || r.Path[1] != 6695 {
		t.Fatalf("path = %v", r.Path)
	}
}

func TestRSStripsCommunities(t *testing.T) {
	topo := buildWorld()
	topo.IXPs[0].StripsCommunities = true
	e := NewEngine(topo, 0)
	tr := e.Tree(1001)

	r := tr.RouteFrom(200)
	if r == nil || r.ViaIXP != "TIX" {
		t.Fatalf("route should still exist via RS: %+v", r)
	}
	if len(r.Communities) != 0 {
		t.Fatalf("Netnod-style RS leaked communities: %v", r.Communities)
	}
}

func TestForEachTreeCoversAllDestinations(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 0)
	var got []bgp.ASN
	e.ForEachTree(3, func(tr *Tree) {
		got = append(got, tr.Dest())
	})
	if len(got) != len(topo.Order) {
		t.Fatalf("trees = %d, want %d", len(got), len(topo.Order))
	}
	for i := range got {
		if got[i] != topo.Order[i] {
			t.Fatalf("order violated at %d: %v", i, got[i])
		}
	}
}

func TestTreeCacheAndUnknownDest(t *testing.T) {
	topo := buildWorld()
	e := NewEngine(topo, 2)
	if e.Tree(9999) != nil {
		t.Fatal("unknown destination must return nil")
	}
	a := e.Tree(1001)
	if e.Tree(1001) != a {
		t.Fatal("cache miss on repeat")
	}
	e.Tree(1002)
	e.Tree(1003) // evicts something, must not crash
	if e.Tree(1001) == nil {
		t.Fatal("recompute after eviction failed")
	}
}

func TestGeneratedWorldPropagates(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(topo, 0)
	// Every AS must reach a tier-1-originated destination (global
	// reachability sanity).
	var t1 bgp.ASN
	for _, asn := range topo.Order {
		if topo.ASes[asn].Tier == topology.Tier1 {
			t1 = asn
			break
		}
	}
	tr := e.Tree(t1)
	for _, asn := range topo.Order {
		if tr.Class(asn) == ClassNone {
			t.Fatalf("AS%s cannot reach tier-1 %s", asn, t1)
		}
	}

	// And RS communities must be visible somewhere: find an IXP member
	// destination and check at least one other member sees communities.
	info := topo.IXPs[0]
	seen := false
	for _, dst := range info.RSMembers[:10] {
		tr := e.Tree(dst)
		for _, v := range info.RSMembers {
			if v == dst {
				continue
			}
			if r := tr.RouteFrom(v); r != nil && len(r.Communities) > 0 {
				seen = true
				break
			}
		}
		if seen {
			break
		}
	}
	if !seen {
		t.Fatal("no RS communities visible anywhere in generated world")
	}
}
