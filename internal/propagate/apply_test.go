package propagate

import (
	"bytes"
	"math/rand"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// randomDelta samples one epoch of churn directly from the topology:
// a bilateral flap, an RS leave, an RS join of a non-RS member, a
// filter edit, and a prefix move. It mirrors internal/churn without
// importing it (churn depends on this package).
func randomDelta(t *testing.T, topo *topology.Topology, rng *rand.Rand, epoch int) *Delta {
	t.Helper()
	d := &Delta{Epoch: epoch}

	// Peer flap: tear down one bilateral link, light one new session.
	links := topo.BilateralLinks()
	if len(links) > 0 {
		l := links[rng.Intn(len(links))]
		d.Peers = append(d.Peers, PeerOp{A: l.A, B: l.B, Add: false})
	}
	info := topo.IXPs[rng.Intn(len(topo.IXPs))]
	members := info.SortedMembers()
	for tries := 0; tries < 16; tries++ {
		a := members[rng.Intn(len(members))]
		b := members[rng.Intn(len(members))]
		if a == b {
			continue
		}
		if _, related := topo.RelationshipOf(a, b); related {
			continue
		}
		d.Peers = append(d.Peers, PeerOp{A: a, B: b, Add: true})
		break
	}

	// Membership: leave a random RS member; join a non-RS member openly.
	rs := info.SortedRSMembers()
	if len(rs) > 5 {
		d.Members = append(d.Members, MemberOp{IXP: info.Name, Member: rs[rng.Intn(len(rs))], Join: false})
	}
	for _, m := range members {
		if !info.IsRSMember(m) {
			open := ixp.OpenFilter()
			cs, err := open.Communities(&info.Scheme)
			if err != nil {
				t.Fatal(err)
			}
			d.Members = append(d.Members, MemberOp{
				IXP: info.Name, Member: m, Join: true,
				Export: open, Import: ixp.OpenFilter(), Comms: cs,
			})
			break
		}
	}

	// Filter edit: add an exclude to a member not otherwise scheduled.
	x2 := topo.IXPs[(rng.Intn(len(topo.IXPs)))]
	rs2 := x2.SortedRSMembers()
	for tries := 0; tries < 16; tries++ {
		m := rs2[rng.Intn(len(rs2))]
		scheduled := false
		for _, op := range d.Members {
			if op.IXP == x2.Name && op.Member == m {
				scheduled = true
			}
		}
		if scheduled {
			continue
		}
		ef, ok := topo.ExportFilter(x2.Name, m)
		if !ok || ef.Mode != ixp.ModeAllExcept {
			continue
		}
		victim := rs2[rng.Intn(len(rs2))]
		if victim == m || ef.Peers[victim] {
			continue
		}
		nf := ixp.NewExportFilter(ixp.ModeAllExcept, append(ef.PeerList(), victim)...)
		imp, _ := topo.ImportFilter(x2.Name, m)
		cs, err := nf.Communities(&x2.Scheme)
		if err != nil {
			continue
		}
		d.Filters = append(d.Filters, FilterOp{IXP: x2.Name, Member: m, Export: nf, Import: imp, Comms: cs})
		break
	}

	// Prefix move.
	for tries := 0; tries < 16; tries++ {
		from := topo.Order[rng.Intn(len(topo.Order))]
		if len(topo.ASes[from].Prefixes) == 0 {
			continue
		}
		to := topo.Order[rng.Intn(len(topo.Order))]
		if to == from {
			continue
		}
		p := topo.ASes[from].Prefixes[0]
		d.Prefixes = append(d.Prefixes, PrefixOp{Prefix: p, From: from, To: to})
		break
	}
	return d
}

// TestApplyEquivalence pins the incremental engine to a fresh rebuild:
// after every epoch's Apply, every tree — retained, recomputed, or
// computed on demand — must be byte-identical to one from an engine
// built from scratch on the mutated topology.
func TestApplyEquivalence(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, 8*len(topo.Order))
	// Warm the cache for every destination so retained-tree correctness
	// is fully exercised.
	for _, d := range topo.Order {
		if eng.Tree(d) == nil {
			t.Fatalf("nil tree for %s", d)
		}
	}

	rng := rand.New(rand.NewSource(42))
	var a, b []byte
	for epoch := 0; epoch < 4; epoch++ {
		delta := randomDelta(t, topo, rng, epoch)
		if delta.Empty() {
			t.Fatalf("epoch %d: empty delta", epoch)
		}
		prev := make(map[bgp.ASN]*Tree)
		for _, dst := range topo.Order {
			prev[dst] = eng.Tree(dst)
		}
		dirty, err := eng.Apply(delta)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(dirty) == 0 {
			t.Fatalf("epoch %d: no dirty destinations for %d ops", epoch, delta.Ops())
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("epoch %d: mutated world invalid: %v", epoch, err)
		}
		dirtySet := make(map[bgp.ASN]bool, len(dirty))
		for _, dst := range dirty {
			dirtySet[dst] = true
		}

		fresh := NewEngine(topo, len(topo.Order))
		for _, dst := range topo.Order {
			ta := eng.Tree(dst)
			tb := fresh.Tree(dst)
			a = ta.AppendState(a[:0])
			b = tb.AppendState(b[:0])
			if !bytes.Equal(a, b) {
				t.Fatalf("epoch %d: tree for %s diverges from fresh engine (dirty=%v)",
					epoch, dst, dirtySet[dst])
			}
			// Clean destinations must keep their cached tree: that is
			// the incrementality being claimed.
			if !dirtySet[dst] && ta != prev[dst] {
				t.Errorf("epoch %d: clean destination %s was invalidated", epoch, dst)
			}
		}
	}
}

// TestApplyDirtyIsConservative checks the other direction of the dirty
// contract: every destination whose tree actually changed is reported
// dirty.
func TestApplyDirtyIsConservative(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, 8*len(topo.Order))
	before := make(map[bgp.ASN][]byte)
	for _, dst := range topo.Order {
		before[dst] = eng.Tree(dst).AppendState(nil)
	}

	rng := rand.New(rand.NewSource(7))
	delta := randomDelta(t, topo, rng, 0)
	dirty, err := eng.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	dirtySet := make(map[bgp.ASN]bool, len(dirty))
	for _, dst := range dirty {
		dirtySet[dst] = true
	}
	fresh := NewEngine(topo, len(topo.Order))
	changed := 0
	for _, dst := range topo.Order {
		after := fresh.Tree(dst).AppendState(nil)
		if !bytes.Equal(before[dst], after) {
			changed++
			if !dirtySet[dst] {
				t.Fatalf("destination %s changed but was not reported dirty", dst)
			}
		}
	}
	if changed == 0 {
		t.Fatal("delta changed no trees; test is vacuous")
	}
}

// TestApplyPartialFailureRepairs pins the error contract: when a delta
// fails mid-application (after earlier ops already mutated the
// topology), the engine rebuilds itself so every subsequent tree still
// matches a freshly built engine on the half-mutated world.
func TestApplyPartialFailureRepairs(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, 8*len(topo.Order))
	for _, d := range topo.Order {
		eng.Tree(d)
	}

	// First op: a valid peer teardown. Second op: joining an existing
	// RS member, which fails at the topology level only after the first
	// op has landed.
	links := topo.BilateralLinks()
	info := topo.IXPs[0]
	member := info.SortedRSMembers()[0]
	delta := &Delta{
		Peers:   []PeerOp{{A: links[0].A, B: links[0].B, Add: false}},
		Members: []MemberOp{{IXP: info.Name, Member: member, Join: true, Export: ixp.OpenFilter(), Import: ixp.OpenFilter()}},
	}
	if _, err := eng.Apply(delta); err == nil {
		t.Fatal("joining an existing RS member must fail")
	}
	if topo.ASes[links[0].A].HasPeer(links[0].B) {
		t.Fatal("first op did not land; test premise broken")
	}

	fresh := NewEngine(topo, 0)
	var a, b []byte
	for _, dst := range topo.Order {
		a = eng.Tree(dst).AppendState(a[:0])
		b = fresh.Tree(dst).AppendState(b[:0])
		if !bytes.Equal(a, b) {
			t.Fatalf("after failed Apply, tree for %s diverges from fresh engine", dst)
		}
	}
}

// downCone walks the engine's dirty-propagation relation (customers
// plus siblings) from asn: the per-seed dirty contribution.
func downCone(topo *topology.Topology, asn bgp.ASN, into map[bgp.ASN]bool) {
	if into[asn] {
		return
	}
	into[asn] = true
	if as := topo.ASes[asn]; as != nil {
		for _, c := range as.Customers {
			downCone(topo, c, into)
		}
		for _, s := range as.Siblings {
			downCone(topo, s, into)
		}
	}
}

// TestApplyTightenedDirtySets pins the bitset tightening for RS
// membership ops: the dirty set must stay inside the old conservative
// rule (the mutated member's cone plus every co-member's cone) and,
// when the departing member's filters are restrictive, exclude the
// cones of exporters that never had an allowed pair with it.
func TestApplyTightenedDirtySets(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Pick the RS member with the most restrictive import policy
	// (NoneExcept with the fewest includes) at an IXP with enough
	// members for the tightening to matter.
	var pickIXP string
	var pickMember bgp.ASN
	bestIncludes := 1 << 30
	for _, info := range topo.IXPs {
		members := info.SortedRSMembers()
		if len(members) < 8 {
			continue
		}
		for _, m := range members {
			imp, ok := topo.ImportFilter(info.Name, m)
			if !ok || imp.Mode != ixp.ModeNoneExcept {
				continue
			}
			if n := len(imp.Peers); n < bestIncludes {
				pickIXP, pickMember, bestIncludes = info.Name, m, n
			}
		}
	}
	if pickIXP == "" {
		t.Skip("generated world has no restrictive RS importer")
	}

	// Conservative rule: member cone + every co-member cone.
	conservative := make(map[bgp.ASN]bool)
	info := topo.IXPByName(pickIXP)
	for _, m := range info.SortedRSMembers() {
		downCone(topo, m, conservative)
	}

	eng := NewEngine(topo, 0)
	dirty, err := eng.Apply(&Delta{Members: []MemberOp{{IXP: pickIXP, Member: pickMember, Join: false}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("leave produced no dirty destinations")
	}
	for _, d := range dirty {
		if !conservative[d] {
			t.Fatalf("dirty destination %s outside the conservative cone union", d)
		}
	}
	if len(dirty) >= len(conservative) {
		t.Fatalf("tightened dirty set (%d dests) did not shrink the conservative rule (%d dests) for restrictive importer %s@%s",
			len(dirty), len(conservative), pickMember, pickIXP)
	}
	t.Logf("dirty %d of conservative %d dests (importer %s@%s, %d includes)",
		len(dirty), len(conservative), pickMember, pickIXP, bestIncludes)
}

// TestApplyUnknownRefs rejects deltas referencing unknown ASes or IXPs.
func TestApplyUnknownRefs(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(topo, 64)
	if _, err := eng.Apply(&Delta{Peers: []PeerOp{{A: 4200000001, B: topo.Order[0], Add: true}}}); err == nil {
		t.Fatal("unknown AS accepted")
	}
	if _, err := eng.Apply(&Delta{Members: []MemberOp{{IXP: "NO-SUCH-IXP", Member: topo.Order[0]}}}); err == nil {
		t.Fatal("unknown IXP accepted")
	}
}
