package propagate

import (
	"reflect"
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/topology"
)

// arenaWorld builds a moderately sized world once for the arena tests.
func arenaWorld(t testing.TB) (*topology.Topology, *Engine) {
	t.Helper()
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewEngine(topo, 0)
}

// TestAvailableRoutesFromArenaIdentity pins the arena path to the
// allocating path: identical routes, field for field, over every
// validation-LG vantage and a spread of destinations.
func TestAvailableRoutesFromArenaIdentity(t *testing.T) {
	topo, engine := arenaWorld(t)
	var arena RouteArena
	var buf []*VantageRoute
	dests := topo.Order
	checked := 0
	for i := 0; i < len(dests); i += 37 {
		tr := engine.Tree(dests[i])
		for _, lg := range topo.ValidationLGs {
			plain := tr.AvailableRoutesFrom(lg.ASN)
			arena.Reset()
			buf = tr.AvailableRoutesFromArena(lg.ASN, &arena, buf)
			if len(plain) != len(buf) {
				t.Fatalf("dest %s vantage %s: %d plain routes vs %d arena routes",
					dests[i], lg.ASN, len(plain), len(buf))
			}
			for j := range plain {
				p, a := plain[j], buf[j]
				if !reflect.DeepEqual(p.Path, a.Path) || p.Class != a.Class ||
					p.Bilateral != a.Bilateral || p.ViaIXP != a.ViaIXP ||
					p.RSSetter != a.RSSetter || p.Best != a.Best ||
					!reflect.DeepEqual(p.Communities, a.Communities) {
					t.Fatalf("dest %s vantage %s route %d differs:\nplain %+v\narena %+v",
						dests[i], lg.ASN, j, p, a)
				}
			}
			checked += len(plain)
		}
	}
	if checked == 0 {
		t.Fatal("no routes compared")
	}
}

// TestAvailableRoutesFromArenaAllocs asserts the point of the arena: a
// warm arena enumeration allocates far less than the plain one.
func TestAvailableRoutesFromArenaAllocs(t *testing.T) {
	topo, engine := arenaWorld(t)
	// Pick the (destination, vantage) pair with the most routes among a
	// sample, so the comparison measures real enumeration work.
	var tr *Tree
	var vantage bgp.ASN
	best := 0
	for i := 0; i < len(topo.Order); i += 53 {
		c := engine.Tree(topo.Order[i])
		for _, lg := range topo.ValidationLGs {
			if n := len(c.AvailableRoutesFrom(lg.ASN)); n > best {
				best, tr, vantage = n, c, lg.ASN
			}
		}
	}
	if best < 2 {
		t.Fatalf("best vantage has only %d routes", best)
	}

	plain := testing.AllocsPerRun(50, func() {
		if len(tr.AvailableRoutesFrom(vantage)) == 0 {
			t.Fatal("no routes")
		}
	})
	var arena RouteArena
	var buf []*VantageRoute
	// Warm the arena chunks once so steady-state is measured.
	buf = tr.AvailableRoutesFromArena(vantage, &arena, buf)
	arenaAllocs := testing.AllocsPerRun(50, func() {
		arena.Reset()
		buf = tr.AvailableRoutesFromArena(vantage, &arena, buf)
		if len(buf) == 0 {
			t.Fatal("no routes")
		}
	})
	if arenaAllocs > 1 {
		t.Errorf("warm arena enumeration allocates %.1f times per run, want <= 1", arenaAllocs)
	}
	if plain < 4*(arenaAllocs+1) {
		t.Errorf("alloc drop too small: plain %.1f vs arena %.1f allocs/run", plain, arenaAllocs)
	}
}
