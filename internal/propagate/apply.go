// Epochal topology mutation: Delta describes one epoch's worth of
// route-churn events (bilateral session flaps, route-server membership
// and filter churn, prefix-origin moves) and Engine.Apply patches the
// engine in place — rebuilding only the peer adjacency and the mutated
// IXPs' route-server state, and invalidating only the cached trees whose
// destination is reachable through a mutated edge or IXP — instead of
// discarding everything with a fresh NewEngine per epoch.
//
// The dirty-set rule exploits the Gao-Rexford structure of the trees:
// a bilateral or route-server edge at node u carries routes toward a
// destination only while u holds a customer-or-better route, i.e. only
// while the destination lies in u's customer cone. None of the churn
// operations touch transit (provider/customer) edges, so cones are
// invariant under Apply and one BFS over the down CSR per mutated node
// yields a conservative, provably sufficient dirty destination set.
// Route-server ops tighten the seed set further with the precomputed
// allowed-pair bitsets: instead of every co-member's cone, only the
// exporters actually allowed to reach the mutated member (before or
// after the delta) are seeded — with restrictive filters most
// co-members never were, and their cones stay clean.
package propagate

import (
	"fmt"
	"slices"

	"mlpeering/internal/bgp"
	"mlpeering/internal/ixp"
	"mlpeering/internal/topology"
)

// PeerOp flaps one bilateral p2p session.
type PeerOp struct {
	A, B bgp.ASN
	Add  bool // true: session established; false: session torn down
	// IXPs optionally names the exchange fabrics the session runs
	// across; on Add they are restored into Topology.BilateralIXP so a
	// flapped IXP bilateral keeps its ground-truth attribution.
	IXPs []string
}

// MemberOp connects a member to, or disconnects it from, an IXP's route
// server. On Join the policies below become the member's ground truth;
// on Leave they are ignored.
type MemberOp struct {
	IXP    string
	Member bgp.ASN
	Join   bool
	Export ixp.ExportFilter
	Import ixp.ExportFilter
	Comms  bgp.Communities
}

// FilterOp replaces an existing RS member's export/import policy and its
// community encoding.
type FilterOp struct {
	IXP    string
	Member bgp.ASN
	Export ixp.ExportFilter
	Import ixp.ExportFilter
	Comms  bgp.Communities
}

// PrefixOp re-homes an originated prefix. It never changes any routing
// tree (trees are per destination AS), but both origins' announcements
// change, so both are reported dirty for collector diffing.
type PrefixOp struct {
	Prefix   bgp.Prefix
	From, To bgp.ASN
}

// Delta is one epoch's batch of mutations. Apply lands the operations
// in order and then patches the engine once; if an operation fails, the
// topology may be left partially mutated, but the engine rebuilds all
// derived state so it always stays consistent with the topology.
type Delta struct {
	Epoch    int
	Peers    []PeerOp
	Members  []MemberOp
	Filters  []FilterOp
	Prefixes []PrefixOp
}

// Empty reports whether the delta carries no operations.
func (d *Delta) Empty() bool {
	return len(d.Peers) == 0 && len(d.Members) == 0 && len(d.Filters) == 0 && len(d.Prefixes) == 0
}

// Ops returns the total operation count.
func (d *Delta) Ops() int {
	return len(d.Peers) + len(d.Members) + len(d.Filters) + len(d.Prefixes)
}

// ApplyToTopology lands every operation of d on topo without involving
// an engine: the full-rebuild path (mutate, then NewEngine) used as the
// baseline the incremental Engine.Apply is benchmarked against.
func (d *Delta) ApplyToTopology(topo *topology.Topology) error {
	for _, op := range d.Peers {
		var err error
		if op.Add {
			err = topo.AddPeerLink(op.A, op.B)
			if err == nil && len(op.IXPs) > 0 {
				if topo.BilateralIXP == nil {
					topo.BilateralIXP = make(map[topology.LinkKey][]string)
				}
				topo.BilateralIXP[topology.MakeLinkKey(op.A, op.B)] = append([]string(nil), op.IXPs...)
			}
		} else {
			err = topo.RemovePeerLink(op.A, op.B)
		}
		if err != nil {
			return err
		}
	}
	for _, op := range d.Members {
		var err error
		if op.Join {
			err = topo.JoinRouteServer(op.IXP, op.Member, op.Export, op.Import, op.Comms)
		} else {
			err = topo.LeaveRouteServer(op.IXP, op.Member)
		}
		if err != nil {
			return err
		}
	}
	for _, op := range d.Filters {
		if err := topo.SetRSFilters(op.IXP, op.Member, op.Export, op.Import, op.Comms); err != nil {
			return err
		}
	}
	for _, op := range d.Prefixes {
		if err := topo.MovePrefix(op.Prefix, op.From, op.To); err != nil {
			return err
		}
	}
	return nil
}

// Apply lands d on the engine's topology and patches the engine
// incrementally: the peer CSR is rebuilt only when sessions flapped,
// route-server state only for the IXPs the delta touched, and cached
// trees are invalidated only when their destination lies in the dirty
// set. The returned slice lists every destination whose announced routes
// may have changed (ascending ASN): the exact set a collector diff needs
// to re-examine. Trees for destinations outside it — cached or
// recomputed — are byte-identical to a freshly built engine's.
//
// Apply requires exclusive access: no Tree/ForEachTree call may run
// concurrently, and Trees obtained before Apply for dirty destinations
// are stale afterwards.
func (e *Engine) Apply(d *Delta) ([]bgp.ASN, error) {
	n := len(e.asns)
	seeds := make([]int32, 0, 8)       // cone roots
	point := make([]int32, 0, 4)       // dirty without cone expansion (prefix moves)
	touchedIXP := make(map[int16]bool) // ixps to rebuild

	seedASN := func(a bgp.ASN) error {
		i, ok := e.idx[a]
		if !ok {
			return fmt.Errorf("propagate: delta references unknown AS %s", a)
		}
		seeds = append(seeds, i)
		return nil
	}

	// Resolve every reference up front (errors must leave the engine
	// untouched) and remember the RS ops: their import-side seeding
	// needs both the pre- and post-mutation allowed-pair bitsets.
	type rsRef struct {
		xi int16
		mi int32
	}
	var memberOps, filterOps []rsRef
	for _, op := range d.Peers {
		if err := seedASN(op.A); err != nil {
			return nil, err
		}
		if err := seedASN(op.B); err != nil {
			return nil, err
		}
	}
	for _, op := range d.Members {
		xi, ok := e.ixpsByName[op.IXP]
		if !ok {
			return nil, fmt.Errorf("propagate: delta references unknown IXP %s", op.IXP)
		}
		touchedIXP[xi] = true
		if err := seedASN(op.Member); err != nil {
			return nil, err
		}
		memberOps = append(memberOps, rsRef{xi: xi, mi: e.idx[op.Member]})
	}
	for _, op := range d.Filters {
		xi, ok := e.ixpsByName[op.IXP]
		if !ok {
			return nil, fmt.Errorf("propagate: delta references unknown IXP %s", op.IXP)
		}
		touchedIXP[xi] = true
		if err := seedASN(op.Member); err != nil {
			return nil, err
		}
		filterOps = append(filterOps, rsRef{xi: xi, mi: e.idx[op.Member]})
	}
	for _, op := range d.Prefixes {
		for _, a := range []bgp.ASN{op.From, op.To} {
			i, ok := e.idx[a]
			if !ok {
				return nil, fmt.Errorf("propagate: delta references unknown AS %s", a)
			}
			point = append(point, i)
		}
	}

	// Snapshot the mutated IXPs' pre-delta state: the bitset diff below
	// compares allowed pairs before and after.
	oldIXP := make(map[int16]*ixpState, len(touchedIXP))
	for xi := range touchedIXP {
		oldIXP[xi] = e.ixps[xi]
	}

	if err := d.ApplyToTopology(e.topo); err != nil {
		// The delta may have landed partially; rebuild every derived
		// structure and drop the whole cache so the engine stays
		// consistent with whatever the topology now holds.
		e.rebuildAll()
		return nil, err
	}

	// Patch engine state: peer adjacency if sessions flapped, RS state
	// per touched IXP. Transit adjacency (up/down) is invariant under
	// churn deltas.
	if len(d.Peers) > 0 {
		e.peers = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Peers, nil })
	}
	for xi := range touchedIXP {
		st := e.buildIXPState(e.ixps[xi].info)
		e.totalMembers += len(st.members) - len(e.ixps[xi].members)
		e.ixps[xi] = st
	}

	// Import-side seeds, tightened by the allowed-pair bitsets: member
	// m's received RS routes can change only through exporters e whose
	// allowed(e→m) bit is set — in the old state for pairs that existed
	// (leaves, import narrowing), the new state for pairs created
	// (joins, import widening). m's own cone, seeded above, covers the
	// export side (m→v pairs only carry destinations m can export). A
	// pair between two unmutated members is untouched by the delta, so
	// nothing else can change and the old every-member-cone union is
	// provably over-conservative.
	seedAllowedInto := func(st *ixpState, mi int32) {
		s := st.slotOf[mi]
		if s < 0 {
			return
		}
		for es, ei := range st.members {
			if ei != mi && st.allowedBit(int32(es), s) {
				seeds = append(seeds, ei)
			}
		}
	}
	for _, r := range memberOps {
		seedAllowedInto(oldIXP[r.xi], r.mi) // leave: pairs that existed
		seedAllowedInto(e.ixps[r.xi], r.mi) // join: pairs created
	}
	for _, r := range filterOps {
		// A filter edit keeps membership (and member slots) intact:
		// seed only the exporters whose bit toward the member flipped.
		oldSt, newSt := oldIXP[r.xi], e.ixps[r.xi]
		so, sn := oldSt.slotOf[r.mi], newSt.slotOf[r.mi]
		for es, ei := range newSt.members {
			if ei == r.mi {
				continue
			}
			var ob, nb bool
			if so >= 0 {
				if eo := oldSt.slotOf[ei]; eo >= 0 {
					ob = oldSt.allowedBit(eo, so)
				}
			}
			if sn >= 0 {
				nb = newSt.allowedBit(int32(es), sn)
			}
			if ob != nb {
				seeds = append(seeds, ei)
			}
		}
	}

	// Dirty set: the union of the seeds' customer cones (down-CSR BFS)
	// plus the point-dirty destinations.
	dirty := make([]bool, n)
	queue := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !dirty[s] {
			dirty[s] = true
			queue = append(queue, s)
		}
	}
	downOff, downAdj := e.down.off, e.down.adj
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, c := range downAdj[downOff[u]:downOff[u+1]] {
			if !dirty[c] {
				dirty[c] = true
				queue = append(queue, c)
			}
		}
	}
	for _, i := range point {
		dirty[i] = true
	}

	// Invalidate dirty cached trees and collect the dirty ASN list.
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		for key, ent := range sh.entries {
			if dirty[ent.tr.destIdx] {
				sh.removeLocked(ent)
				delete(sh.entries, key)
			}
		}
		sh.mu.Unlock()
	}
	out := make([]bgp.ASN, 0, 64)
	for i := 0; i < n; i++ {
		if dirty[i] {
			out = append(out, e.asns[i])
		}
	}
	slices.Sort(out)
	return out, nil
}

// rebuildAll re-derives every topology-dependent structure and empties
// the tree cache: the recovery path when a delta failed mid-application
// and the precise extent of the mutation is unknown.
func (e *Engine) rebuildAll() {
	e.peers = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Peers, nil })
	e.up = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Providers, as.Siblings })
	e.down = e.buildCSR(func(as *topology.AS) ([]bgp.ASN, []bgp.ASN) { return as.Customers, as.Siblings })
	e.totalMembers = 0
	for xi := range e.ixps {
		e.ixps[xi] = e.buildIXPState(e.ixps[xi].info)
		e.totalMembers += len(e.ixps[xi].members)
	}
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		sh.entries = make(map[bgp.ASN]*lruEntry)
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

// removeLocked unlinks ent from the shard's LRU list. Caller holds
// sh.mu and deletes the map entry itself.
func (sh *cacheShard) removeLocked(ent *lruEntry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		sh.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		sh.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

// AppendState appends a canonical byte encoding of the tree — the
// destination, every node's hop state, and the per-IXP exporter lists —
// to dst. Two trees over the same topology are identical iff their
// encodings are equal; the incremental-apply equivalence tests pin
// patched engines to freshly built ones with it.
func (t *Tree) AppendState(dst []byte) []byte {
	dst = append(dst, byte(t.dest>>24), byte(t.dest>>16), byte(t.dest>>8), byte(t.dest))
	for _, h := range t.hops {
		dst = append(dst,
			byte(h.via>>24), byte(h.via>>16), byte(h.via>>8), byte(h.via),
			byte(h.viaIXP>>8), byte(h.viaIXP),
			byte(h.class), byte(h.dist>>8), byte(h.dist))
		if h.bilateral {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	for xi := range t.e.ixps {
		dst = append(dst, 0xFE)
		for _, m := range t.exportersAt(int16(xi)) {
			dst = append(dst, byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
		}
	}
	return dst
}
