package propagate

import (
	"testing"

	"mlpeering/internal/bgp"
	"mlpeering/internal/topology"
)

// TestValleyFreeInvariant checks, over a full generated world, that
// every reconstructed best path obeys the Gao-Rexford export rules: at
// most one peer-class edge, positioned at the top of the path, with
// only customer->provider edges before it (reading from the origin) and
// only provider->customer edges after it. Sibling edges may appear
// anywhere.
func TestValleyFreeInvariant(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(topo, 0)

	// edgeKind classifies the directed hop a->b as seen walking from
	// the vantage toward the origin.
	const (
		kindDown    = iota // a provider of b: traffic later flows up b->a
		kindUp             // a customer of b
		kindPeer           // bilateral p2p or RS
		kindSibling        // sibling
		kindUnknown        // no direct edge: must be an RS crossing
	)
	classify := func(a, b bgp.ASN) int {
		rel, ok := topo.RelationshipOf(a, b)
		if !ok {
			return kindUnknown
		}
		switch rel {
		case topology.RelP2C:
			return kindDown
		case topology.RelC2P:
			return kindUp
		case topology.RelP2P:
			return kindPeer
		default:
			return kindSibling
		}
	}

	checked, rsPaths := 0, 0
	for i, dest := range topo.Order {
		if i%17 != 0 {
			continue // sample destinations to keep the test quick
		}
		tr := e.Tree(dest)
		for j, vantage := range topo.Order {
			if j%23 != 0 || vantage == dest {
				continue
			}
			r := tr.RouteFrom(vantage)
			if r == nil {
				continue
			}
			checked++
			if r.Path[0] != vantage || r.Path[len(r.Path)-1] != dest {
				t.Fatalf("path endpoints wrong: %v (vantage %s dest %s)", r.Path, vantage, dest)
			}
			if d, _ := tr.Dist(vantage); d != len(r.Path)-1 {
				t.Fatalf("dist %d disagrees with path %v", d, r.Path)
			}
			if r.ViaIXP != "" {
				rsPaths++
			}
			// Walk from vantage to origin. Reading in that direction,
			// a valley-free path climbs provider edges first, crosses
			// at most one peer (or route-server) edge at the top, and
			// then only descends customer edges: up* (peer)? down*.
			const (
				ascending  = 0
				descending = 1
			)
			phase := ascending
			for k := 0; k+1 < len(r.Path); k++ {
				switch classify(r.Path[k], r.Path[k+1]) {
				case kindUp:
					if phase == descending {
						t.Fatalf("climb after descent in path %v at hop %d (dest %s)", r.Path, k, dest)
					}
				case kindPeer, kindUnknown:
					// RS crossings have no direct topology edge. Either
					// way the top may be crossed only once.
					if phase == descending {
						t.Fatalf("second peak crossing in path %v at hop %d (dest %s)", r.Path, k, dest)
					}
					phase = descending
				case kindDown:
					phase = descending
				case kindSibling:
					// allowed anywhere
				}
			}
			// Communities imply an RS crossing and vice versa only when
			// no hop stripped them; the one-directional implication
			// must hold.
			if len(r.Communities) > 0 && r.ViaIXP == "" {
				t.Fatalf("communities without RS crossing: %v", r.Path)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
	if rsPaths == 0 {
		t.Fatal("sample contained no route-server paths; widen the sample")
	}
}

// TestAvailableRoutesInvariants verifies that the all-paths view is a
// superset of the best path and loop-free at every sampled vantage.
func TestAvailableRoutesInvariants(t *testing.T) {
	topo, err := topology.Generate(topology.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(topo, 0)

	checked := 0
	for i, dest := range topo.Order {
		if i%53 != 0 {
			continue
		}
		tr := e.Tree(dest)
		for j, vantage := range topo.Order {
			if j%67 != 0 || vantage == dest {
				continue
			}
			best := tr.RouteFrom(vantage)
			all := tr.AvailableRoutesFrom(vantage)
			if best == nil {
				if len(all) != 0 {
					t.Fatalf("alternatives without a best route at %s", vantage)
				}
				continue
			}
			checked++
			if len(all) == 0 {
				t.Fatalf("best route but no alternatives at %s toward %s", vantage, dest)
			}
			if !all[0].Best {
				t.Fatalf("first alternative not marked best at %s", vantage)
			}
			// The engine's best class matches the ranking's best class.
			if all[0].Class != best.Class {
				t.Fatalf("class mismatch at %s: ranked %v vs engine %v", vantage, all[0].Class, best.Class)
			}
			for _, r := range all {
				seen := map[bgp.ASN]bool{}
				for _, a := range r.Path {
					if seen[a] {
						t.Fatalf("loop in alternative %v at %s", r.Path, vantage)
					}
					seen[a] = true
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no vantages checked")
	}
}
