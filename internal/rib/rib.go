// Package rib implements routing information bases: route records, the
// BGP decision process, and the per-peer adjacency RIBs used by route
// servers, looking glasses and collectors.
package rib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"mlpeering/internal/bgp"
)

// Route is one path toward a prefix as learned from a specific peer.
type Route struct {
	Prefix bgp.Prefix
	Attrs  *bgp.PathAttrs

	// PeerASN and PeerAddr identify the BGP neighbor the route was
	// learned from (the route server member, the collector feeder, ...).
	PeerASN  bgp.ASN
	PeerAddr netip.Addr

	// Learned is when the route was installed.
	Learned time.Time

	// Best marks the route currently selected by the decision process.
	Best bool
}

// OriginASN returns the originating AS of the route's path.
func (r *Route) OriginASN() (bgp.ASN, bool) {
	if r.Attrs == nil {
		return 0, false
	}
	return r.Attrs.ASPath.Origin()
}

// LocalPref returns the route's LOCAL_PREF or the protocol default 100.
func (r *Route) LocalPref() uint32 {
	if r.Attrs != nil && r.Attrs.HasLocPref {
		return r.Attrs.LocalPref
	}
	return 100
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	if r == nil {
		return nil
	}
	out := *r
	out.Attrs = r.Attrs.Clone()
	return &out
}

// String renders the route in a compact single-line form.
func (r *Route) String() string {
	path := ""
	if r.Attrs != nil {
		path = r.Attrs.ASPath.String()
	}
	return fmt.Sprintf("%s via AS%s path [%s]", r.Prefix, r.PeerASN, path)
}

// Compare implements the BGP decision process, returning a negative
// value when a is preferred over b, positive when b wins, zero when the
// tie-break falls through to arrival order:
//
//  1. higher LOCAL_PREF
//  2. shorter AS_PATH
//  3. lower ORIGIN (IGP < EGP < INCOMPLETE)
//  4. lower MED (compared across all neighbors, i.e. always-compare-med,
//     which is how route servers are commonly configured)
//  5. lower peer address
func Compare(a, b *Route) int {
	if lp, lpo := a.LocalPref(), b.LocalPref(); lp != lpo {
		if lp > lpo {
			return -1
		}
		return 1
	}
	al, bl := 0, 0
	if a.Attrs != nil {
		al = a.Attrs.ASPath.Len()
	}
	if b.Attrs != nil {
		bl = b.Attrs.ASPath.Len()
	}
	if al != bl {
		if al < bl {
			return -1
		}
		return 1
	}
	ao, bo := uint8(0), uint8(0)
	if a.Attrs != nil {
		ao = a.Attrs.Origin
	}
	if b.Attrs != nil {
		bo = b.Attrs.Origin
	}
	if ao != bo {
		if ao < bo {
			return -1
		}
		return 1
	}
	am, bm := uint32(0), uint32(0)
	if a.Attrs != nil && a.Attrs.HasMED {
		am = a.Attrs.MED
	}
	if b.Attrs != nil && b.Attrs.HasMED {
		bm = b.Attrs.MED
	}
	if am != bm {
		if am < bm {
			return -1
		}
		return 1
	}
	return a.PeerAddr.Compare(b.PeerAddr)
}

// Table is a concurrency-safe RIB holding all paths per prefix and
// maintaining best-path marks. It serves as Adj-RIB-In aggregate for a
// route server and as the data source behind a looking glass.
type Table struct {
	mu sync.RWMutex
	//mlplint:guardedby mu
	routes map[bgp.Prefix][]*Route
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{routes: make(map[bgp.Prefix][]*Route)}
}

// key identifies the slot a route occupies: one route per (prefix, peer).
func routeSlot(routes []*Route, peerASN bgp.ASN, peerAddr netip.Addr) int {
	for i, r := range routes {
		if r.PeerASN == peerASN && r.PeerAddr == peerAddr {
			return i
		}
	}
	return -1
}

// Add installs or replaces the route from (route.PeerASN, route.PeerAddr)
// for route.Prefix and recomputes the best path.
func (t *Table) Add(route *Route) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := t.routes[route.Prefix]
	if i := routeSlot(rs, route.PeerASN, route.PeerAddr); i >= 0 {
		rs[i] = route
	} else {
		rs = append(rs, route)
	}
	recomputeBest(rs)
	t.routes[route.Prefix] = rs
}

// Withdraw removes the route for prefix learned from the given peer.
// It reports whether a route was actually removed.
func (t *Table) Withdraw(prefix bgp.Prefix, peerASN bgp.ASN, peerAddr netip.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := t.routes[prefix]
	i := routeSlot(rs, peerASN, peerAddr)
	if i < 0 {
		return false
	}
	rs = append(rs[:i], rs[i+1:]...)
	if len(rs) == 0 {
		delete(t.routes, prefix)
	} else {
		recomputeBest(rs)
		t.routes[prefix] = rs
	}
	return true
}

// WithdrawPeer removes every route learned from the peer, returning the
// number of prefixes affected. Used when a member session goes down.
func (t *Table) WithdrawPeer(peerASN bgp.ASN, peerAddr netip.Addr) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for pfx, rs := range t.routes {
		i := routeSlot(rs, peerASN, peerAddr)
		if i < 0 {
			continue
		}
		rs = append(rs[:i], rs[i+1:]...)
		n++
		if len(rs) == 0 {
			delete(t.routes, pfx)
		} else {
			recomputeBest(rs)
			t.routes[pfx] = rs
		}
	}
	return n
}

func recomputeBest(rs []*Route) {
	if len(rs) == 0 {
		return
	}
	best := 0
	for i := 1; i < len(rs); i++ {
		if Compare(rs[i], rs[best]) < 0 {
			best = i
		}
	}
	for i, r := range rs {
		r.Best = i == best
	}
}

// Lookup returns all paths for prefix, best first, or nil.
func (t *Table) Lookup(prefix bgp.Prefix) []*Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rs := t.routes[prefix]
	if len(rs) == 0 {
		return nil
	}
	out := make([]*Route, len(rs))
	copy(out, rs)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Best != out[j].Best {
			return out[i].Best
		}
		return Compare(out[i], out[j]) < 0
	})
	return out
}

// Best returns the selected path for prefix, or nil.
func (t *Table) Best(prefix bgp.Prefix) *Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.routes[prefix] {
		if r.Best {
			return r
		}
	}
	return nil
}

// LongestMatch returns the best route of the most-specific prefix
// containing addr, or nil.
func (t *Table) LongestMatch(addr netip.Addr) *Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var bestPfx bgp.Prefix
	found := false
	for pfx := range t.routes {
		if pfx.Contains(addr) && (!found || pfx.Bits() > bestPfx.Bits()) {
			bestPfx, found = pfx, true
		}
	}
	if !found {
		return nil
	}
	for _, r := range t.routes[bestPfx] {
		if r.Best {
			return r
		}
	}
	return nil
}

// Prefixes returns all prefixes in deterministic order.
func (t *Table) Prefixes() []bgp.Prefix {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]bgp.Prefix, 0, len(t.routes))
	for p := range t.routes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return bgp.ComparePrefixes(out[i], out[j]) < 0 })
	return out
}

// PrefixesFrom returns the prefixes advertised by the given peer ASN,
// in deterministic order. This is the data behind the looking glass
// command "show ip bgp neighbor <addr> routes".
func (t *Table) PrefixesFrom(peerASN bgp.ASN) []bgp.Prefix {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []bgp.Prefix
	for p, rs := range t.routes {
		for _, r := range rs {
			if r.PeerASN == peerASN {
				out = append(out, p)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return bgp.ComparePrefixes(out[i], out[j]) < 0 })
	return out
}

// Peers returns the distinct (ASN, address) pairs present in the table,
// ordered by ASN then address. This is the data behind "show ip bgp
// summary".
func (t *Table) Peers() []struct {
	ASN  bgp.ASN
	Addr netip.Addr
} {
	t.mu.RLock()
	defer t.mu.RUnlock()
	type pk struct {
		asn  bgp.ASN
		addr netip.Addr
	}
	seen := make(map[pk]bool)
	for _, rs := range t.routes {
		for _, r := range rs {
			seen[pk{r.PeerASN, r.PeerAddr}] = true
		}
	}
	out := make([]struct {
		ASN  bgp.ASN
		Addr netip.Addr
	}, 0, len(seen))
	for k := range seen {
		out = append(out, struct {
			ASN  bgp.ASN
			Addr netip.Addr
		}{k.asn, k.addr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].Addr.Compare(out[j].Addr) < 0
	})
	return out
}

// Len returns the number of prefixes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.routes)
}

// RouteCount returns the total number of paths across all prefixes.
func (t *Table) RouteCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, rs := range t.routes {
		n += len(rs)
	}
	return n
}

// Walk calls fn for every (prefix, routes) pair in deterministic prefix
// order; the routes slice is ordered best-first. fn must not retain the
// slice. Returning false stops the walk.
func (t *Table) Walk(fn func(prefix bgp.Prefix, routes []*Route) bool) {
	for _, pfx := range t.Prefixes() {
		if !fn(pfx, t.Lookup(pfx)) {
			return
		}
	}
}
