package rib

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"mlpeering/internal/bgp"
)

func mkRoute(pfx string, peer bgp.ASN, addr string, path ...bgp.ASN) *Route {
	return &Route{
		Prefix:   bgp.MustPrefix(pfx),
		Attrs:    &bgp.PathAttrs{ASPath: bgp.NewASPath(path...), NextHop: netip.MustParseAddr(addr)},
		PeerASN:  peer,
		PeerAddr: netip.MustParseAddr(addr),
		Learned:  time.Unix(1368000000, 0),
	}
}

func TestRouteAccessors(t *testing.T) {
	r := mkRoute("10.0.0.0/8", 1, "192.0.2.1", 1, 2, 3)
	if o, ok := r.OriginASN(); !ok || o != 3 {
		t.Fatalf("OriginASN = %v, %v", o, ok)
	}
	if r.LocalPref() != 100 {
		t.Fatalf("default LocalPref = %d", r.LocalPref())
	}
	r.Attrs.HasLocPref = true
	r.Attrs.LocalPref = 250
	if r.LocalPref() != 250 {
		t.Fatal("explicit LocalPref ignored")
	}
	var nilAttr Route
	if _, ok := nilAttr.OriginASN(); ok {
		t.Fatal("nil attrs origin")
	}
}

func TestCompareDecisionProcess(t *testing.T) {
	base := func() *Route { return mkRoute("10.0.0.0/8", 1, "192.0.2.1", 1, 2) }

	// Higher local pref wins.
	a, b := base(), base()
	a.Attrs.HasLocPref, a.Attrs.LocalPref = true, 200
	if Compare(a, b) >= 0 {
		t.Fatal("local pref")
	}

	// Shorter path wins.
	a, b = base(), mkRoute("10.0.0.0/8", 2, "192.0.2.2", 2, 3, 4)
	if Compare(a, b) >= 0 {
		t.Fatal("path length")
	}

	// Lower origin wins.
	a, b = base(), base()
	b.Attrs.Origin = bgp.OriginIncomplete
	if Compare(a, b) >= 0 {
		t.Fatal("origin")
	}

	// Lower MED wins.
	a, b = base(), base()
	a.Attrs.HasMED, a.Attrs.MED = true, 5
	b.Attrs.HasMED, b.Attrs.MED = true, 10
	if Compare(a, b) >= 0 {
		t.Fatal("med")
	}

	// Lower peer address is the final tiebreak.
	a, b = mkRoute("10.0.0.0/8", 1, "192.0.2.1", 1, 2), mkRoute("10.0.0.0/8", 2, "192.0.2.9", 3, 4)
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 {
		t.Fatal("peer address tiebreak")
	}
	if Compare(a, a) != 0 {
		t.Fatal("self compare")
	}
}

func TestTableAddBestWithdraw(t *testing.T) {
	tbl := NewTable()
	pfx := bgp.MustPrefix("193.0.0.0/21")

	r1 := mkRoute("193.0.0.0/21", 100, "192.0.2.1", 100, 50)
	r2 := mkRoute("193.0.0.0/21", 200, "192.0.2.2", 200, 60, 50)
	tbl.Add(r1)
	tbl.Add(r2)

	if tbl.Len() != 1 || tbl.RouteCount() != 2 {
		t.Fatalf("Len=%d RouteCount=%d", tbl.Len(), tbl.RouteCount())
	}
	best := tbl.Best(pfx)
	if best == nil || best.PeerASN != 100 {
		t.Fatalf("best = %+v", best)
	}
	all := tbl.Lookup(pfx)
	if len(all) != 2 || !all[0].Best || all[0].PeerASN != 100 {
		t.Fatalf("lookup order: %v", all)
	}

	// Replacing a route from the same peer does not duplicate.
	r1b := mkRoute("193.0.0.0/21", 100, "192.0.2.1", 100, 70, 60, 50)
	tbl.Add(r1b)
	if tbl.RouteCount() != 2 {
		t.Fatalf("replace duplicated: %d", tbl.RouteCount())
	}
	// Now peer 200 has the shorter path and becomes best.
	if best := tbl.Best(pfx); best.PeerASN != 200 {
		t.Fatalf("best after replace = %+v", best)
	}

	if !tbl.Withdraw(pfx, 200, netip.MustParseAddr("192.0.2.2")) {
		t.Fatal("withdraw failed")
	}
	if best := tbl.Best(pfx); best.PeerASN != 100 {
		t.Fatal("best not recomputed after withdraw")
	}
	if tbl.Withdraw(pfx, 999, netip.MustParseAddr("192.0.2.9")) {
		t.Fatal("withdraw of unknown peer must report false")
	}
	tbl.Withdraw(pfx, 100, netip.MustParseAddr("192.0.2.1"))
	if tbl.Len() != 0 || tbl.Best(pfx) != nil {
		t.Fatal("table not empty after final withdraw")
	}
}

func TestTableWithdrawPeer(t *testing.T) {
	tbl := NewTable()
	addr := netip.MustParseAddr("192.0.2.5")
	for i := 0; i < 5; i++ {
		r := mkRoute("10.0.0.0/8", 500, "192.0.2.5", 500)
		r.Prefix = bgp.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
		tbl.Add(r)
	}
	tbl.Add(mkRoute("10.0.0.0/16", 600, "192.0.2.6", 600)) // same prefix as i=0, different peer

	if n := tbl.WithdrawPeer(500, addr); n != 5 {
		t.Fatalf("WithdrawPeer = %d", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("remaining prefixes = %d", tbl.Len())
	}
	if best := tbl.Best(bgp.MustPrefix("10.0.0.0/16")); best == nil || best.PeerASN != 600 {
		t.Fatalf("surviving route: %+v", best)
	}
}

func TestTablePrefixesDeterministic(t *testing.T) {
	tbl := NewTable()
	for _, s := range []string{"10.2.0.0/16", "10.1.0.0/16", "10.1.0.0/24", "9.0.0.0/8"} {
		r := mkRoute(s, 1, "192.0.2.1", 1)
		tbl.Add(r)
	}
	got := tbl.Prefixes()
	want := []string{"9.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "10.2.0.0/16"}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestTablePrefixesFromAndPeers(t *testing.T) {
	tbl := NewTable()
	tbl.Add(mkRoute("10.0.0.0/8", 100, "192.0.2.1", 100))
	tbl.Add(mkRoute("10.1.0.0/16", 100, "192.0.2.1", 100))
	tbl.Add(mkRoute("10.0.0.0/8", 200, "192.0.2.2", 200))

	from := tbl.PrefixesFrom(100)
	if len(from) != 2 {
		t.Fatalf("PrefixesFrom = %v", from)
	}
	peers := tbl.Peers()
	if len(peers) != 2 || peers[0].ASN != 100 || peers[1].ASN != 200 {
		t.Fatalf("Peers = %v", peers)
	}
}

func TestLongestMatch(t *testing.T) {
	tbl := NewTable()
	tbl.Add(mkRoute("10.0.0.0/8", 1, "192.0.2.1", 1))
	tbl.Add(mkRoute("10.1.0.0/16", 2, "192.0.2.2", 2))

	r := tbl.LongestMatch(netip.MustParseAddr("10.1.2.3"))
	if r == nil || r.PeerASN != 2 {
		t.Fatalf("LongestMatch = %+v", r)
	}
	r = tbl.LongestMatch(netip.MustParseAddr("10.9.2.3"))
	if r == nil || r.PeerASN != 1 {
		t.Fatalf("LongestMatch fallback = %+v", r)
	}
	if tbl.LongestMatch(netip.MustParseAddr("11.0.0.1")) != nil {
		t.Fatal("LongestMatch false positive")
	}
}

func TestWalkStops(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 10; i++ {
		r := mkRoute("10.0.0.0/8", 1, "192.0.2.1", 1)
		r.Prefix = bgp.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
		tbl.Add(r)
	}
	n := 0
	tbl.Walk(func(bgp.Prefix, []*Route) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("walk visited %d", n)
	}
}

func TestBestInvariantProperty(t *testing.T) {
	// Property: after any sequence of adds, exactly one route per prefix
	// is marked best, and no other route would beat it under Compare.
	f := func(peers []uint16, lprefs []uint8) bool {
		if len(peers) == 0 {
			return true
		}
		tbl := NewTable()
		pfx := bgp.MustPrefix("203.0.113.0/24")
		for i, p := range peers {
			addr := netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})
			r := &Route{
				Prefix:   pfx,
				Attrs:    &bgp.PathAttrs{ASPath: bgp.NewASPath(bgp.ASN(p) + 1)},
				PeerASN:  bgp.ASN(p) + 1,
				PeerAddr: addr,
			}
			if i < len(lprefs) {
				r.Attrs.HasLocPref = true
				r.Attrs.LocalPref = uint32(lprefs[i])
			}
			tbl.Add(r)
		}
		routes := tbl.Lookup(pfx)
		bestCount := 0
		var best *Route
		for _, r := range routes {
			if r.Best {
				bestCount++
				best = r
			}
		}
		if bestCount != 1 {
			return false
		}
		for _, r := range routes {
			if r != best && Compare(r, best) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentTableAccess(t *testing.T) {
	tbl := NewTable()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r := mkRoute("10.0.0.0/8", bgp.ASN(i%7+1), "192.0.2.1", bgp.ASN(i%7+1))
			r.PeerAddr = netip.AddrFrom4([4]byte{192, 0, 2, byte(i%7 + 1)})
			tbl.Add(r)
		}
	}()
	for i := 0; i < 500; i++ {
		tbl.Lookup(bgp.MustPrefix("10.0.0.0/8"))
		tbl.Prefixes()
		tbl.RouteCount()
	}
	<-done
}
