package mrt

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"mlpeering/internal/bgp"
)

func samplePeerIndex() *PeerIndexTable {
	return &PeerIndexTable{
		CollectorID: netip.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("192.0.2.1"), ASN: 11666},
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("2001:db8::2"), ASN: 196615},
		},
	}
}

func sampleAttrs(path ...bgp.ASN) *bgp.PathAttrs {
	return &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.NewASPath(path...),
		NextHop: netip.MustParseAddr("192.0.2.1"),
		Communities: bgp.Communities{
			bgp.MakeCommunity(0, 6695),
			bgp.MakeCommunity(6695, 8359),
		},
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	in := samplePeerIndex()
	body, err := MarshalPeerIndexTable(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalPeerIndexTable(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.CollectorID != in.CollectorID || out.ViewName != in.ViewName {
		t.Fatalf("header: %+v", out)
	}
	if len(out.Peers) != 2 {
		t.Fatalf("peers: %d", len(out.Peers))
	}
	for i := range in.Peers {
		if out.Peers[i] != in.Peers[i] {
			t.Fatalf("peer %d: %+v vs %+v", i, out.Peers[i], in.Peers[i])
		}
	}
}

func TestPeerIndexTableEmpty(t *testing.T) {
	in := &PeerIndexTable{ViewName: ""}
	body, err := MarshalPeerIndexTable(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalPeerIndexTable(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Peers) != 0 || out.ViewName != "" {
		t.Fatalf("%+v", out)
	}
}

func TestUnmarshalPeerIndexTableErrors(t *testing.T) {
	good, _ := MarshalPeerIndexTable(samplePeerIndex())
	for cut := 1; cut < len(good); cut += 7 {
		if _, err := UnmarshalPeerIndexTable(good[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestRIBRecordRoundTrip(t *testing.T) {
	in := &RIBRecord{
		Sequence: 42,
		Prefix:   bgp.MustPrefix("193.0.0.0/21"),
		Entries: []RIBEntry{
			{PeerIndex: 0, Originated: time.Unix(1368000000, 0).UTC(), Attrs: sampleAttrs(11666, 3356, 6695)},
			{PeerIndex: 1, Originated: time.Unix(1368000500, 0).UTC(), Attrs: sampleAttrs(196615, 8359)},
		},
	}
	body, err := MarshalRIBRecord(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalRIBRecord(body, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sequence != 42 || out.Prefix != in.Prefix || len(out.Entries) != 2 {
		t.Fatalf("%+v", out)
	}
	for i := range in.Entries {
		if out.Entries[i].PeerIndex != in.Entries[i].PeerIndex {
			t.Fatalf("entry %d peer index", i)
		}
		if !out.Entries[i].Originated.Equal(in.Entries[i].Originated) {
			t.Fatalf("entry %d originated %v", i, out.Entries[i].Originated)
		}
		if !out.Entries[i].Attrs.ASPath.Equal(in.Entries[i].Attrs.ASPath) {
			t.Fatalf("entry %d path", i)
		}
		if !out.Entries[i].Attrs.Communities.Equal(in.Entries[i].Attrs.Communities) {
			t.Fatalf("entry %d communities", i)
		}
	}
}

func TestRIBRecordTrailingGarbage(t *testing.T) {
	in := &RIBRecord{Prefix: bgp.MustPrefix("10.0.0.0/8"), Entries: []RIBEntry{{Attrs: sampleAttrs(1)}}}
	body, _ := MarshalRIBRecord(in)
	if _, err := UnmarshalRIBRecord(append(body, 0xAA), false); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	upd := &bgp.Update{
		Attrs: sampleAttrs(11666, 3356),
		NLRI:  []bgp.Prefix{bgp.MustPrefix("203.0.113.0/24")},
	}
	in := &BGP4MPMessage{
		PeerASN:   196615,
		LocalASN:  6447,
		PeerAddr:  netip.MustParseAddr("192.0.2.9"),
		LocalAddr: netip.MustParseAddr("192.0.2.10"),
		Message:   upd,
		AS4:       true,
	}
	body, err := MarshalBGP4MP(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalBGP4MP(body, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.PeerASN != in.PeerASN || out.LocalASN != in.LocalASN || out.PeerAddr != in.PeerAddr {
		t.Fatalf("%+v", out)
	}
	gotUpd, ok := out.Message.(*bgp.Update)
	if !ok {
		t.Fatalf("message type %T", out.Message)
	}
	if !gotUpd.Attrs.ASPath.Equal(upd.Attrs.ASPath) || gotUpd.NLRI[0] != upd.NLRI[0] {
		t.Fatalf("update: %+v", gotUpd)
	}
}

func TestBGP4MPLegacy2Byte(t *testing.T) {
	// Legacy subtype truncates 32-bit ASNs; the encoder writes the low
	// 16 bits, which is what old collectors did before AS4 support.
	in := &BGP4MPMessage{
		PeerASN:  6695,
		LocalASN: 6447,
		Message:  bgp.Keepalive{},
		AS4:      false,
	}
	body, err := MarshalBGP4MP(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalBGP4MP(body, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.PeerASN != 6695 || out.AS4 {
		t.Fatalf("%+v", out)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ribPath := filepath.Join(dir, "rib.mrt")
	updPath := filepath.Join(dir, "updates.mrt")

	var ribBuf, updBuf bytes.Buffer
	w := NewWriter(&ribBuf)
	ts := time.Unix(1368000000, 0).UTC()
	if err := w.WritePeerIndexTable(ts, samplePeerIndex()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rib := &RIBRecord{
			Sequence: uint32(i),
			Prefix:   bgp.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			Entries:  []RIBEntry{{PeerIndex: 0, Originated: ts, Attrs: sampleAttrs(11666, bgp.ASN(100+i))}},
		}
		if err := w.WriteRIB(ts, rib); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	uw := NewWriter(&updBuf)
	for i := 0; i < 5; i++ {
		m := &BGP4MPMessage{
			PeerASN:  11666,
			LocalASN: 6447,
			Message: &bgp.Update{
				Attrs: sampleAttrs(11666, bgp.ASN(200+i)),
				NLRI:  []bgp.Prefix{bgp.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 24)},
			},
			AS4: true,
		}
		if err := uw.WriteBGP4MP(ts.Add(time.Duration(i)*time.Minute), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := uw.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := writeFile(ribPath, ribBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(updPath, updBuf.Bytes()); err != nil {
		t.Fatal(err)
	}

	dump, err := ReadDumpFile(ribPath)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Index == nil || len(dump.Index.Peers) != 2 {
		t.Fatalf("index: %+v", dump.Index)
	}
	if len(dump.RIBs) != 10 {
		t.Fatalf("ribs: %d", len(dump.RIBs))
	}
	if dump.RIBs[3].Sequence != 3 {
		t.Fatalf("sequence order: %d", dump.RIBs[3].Sequence)
	}

	ups, err := ReadUpdatesFile(updPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 5 {
		t.Fatalf("updates: %d", len(ups))
	}
	if ups[2].Message.(*bgp.Update).Attrs.ASPath.String() != "11666 202" {
		t.Fatalf("update 2 path: %v", ups[2].Message.(*bgp.Update).Attrs.ASPath)
	}
}

func TestReadDumpRejectsOrphanRIBs(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rib := &RIBRecord{Prefix: bgp.MustPrefix("10.0.0.0/8"), Entries: []RIBEntry{{Attrs: sampleAttrs(1)}}}
	if err := w.WriteRIB(time.Now(), rib); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if _, err := ReadDump(&buf); err == nil {
		t.Fatal("RIBs without index must error")
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(time.Now(), samplePeerIndex()); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	r := NewReader(bytes.NewReader(full[:len(full)-3]))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated body must error")
	}

	// Truncation inside the header is a distinct error.
	r2 := NewReader(bytes.NewReader(full[:5]))
	if _, err := r2.Next(); err != ErrShortHeader {
		t.Fatalf("want ErrShortHeader, got %v", err)
	}
}

func TestTimestampPrecision(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	if err := w.WriteRecord(ts, TypeBGP4MP, SubtypeBGP4MPMessageAS4, nil); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Timestamp.Equal(ts) {
		t.Fatalf("timestamp %v, want %v", rec.Timestamp, ts)
	}
}

func TestRIBRecordRoundTripProperty(t *testing.T) {
	f := func(seq uint32, a, b, c uint8, bits uint8, peerIdx uint16) bool {
		r := &RIBRecord{
			Sequence: seq,
			Prefix:   bgp.PrefixFrom(netip.AddrFrom4([4]byte{a, b, c, 0}), int(bits%25)),
			Entries: []RIBEntry{{
				PeerIndex:  peerIdx,
				Originated: time.Unix(1368000000, 0).UTC(),
				Attrs:      sampleAttrs(bgp.ASN(a)+1, bgp.ASN(b)+1),
			}},
		}
		body, err := MarshalRIBRecord(r)
		if err != nil {
			return false
		}
		out, err := UnmarshalRIBRecord(body, false)
		if err != nil {
			return false
		}
		return out.Sequence == seq && out.Prefix == r.Prefix && out.Entries[0].PeerIndex == peerIdx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}

func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
