// Package mrt implements the MRT export format (RFC 6396) used by the
// Route Views and RIPE RIS collector archives: TABLE_DUMP_V2 RIB dumps
// and BGP4MP update traces.
//
// The inference pipeline in internal/core consumes these records exactly
// as it would consume records downloaded from a real collector archive,
// so community transitivity, AS-path encoding and peer indexing are all
// exercised end to end.
package mrt

import (
	"fmt"
	"net/netip"
	"time"

	"mlpeering/internal/bgp"
)

// MRT record types and subtypes used here (RFC 6396 §4).
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeRIBIPv6Unicast = 4

	SubtypeBGP4MPMessage    = 1
	SubtypeBGP4MPMessageAS4 = 4
)

// Record is a raw MRT record: common header plus undecoded body.
type Record struct {
	Timestamp time.Time
	Type      uint16
	Subtype   uint16
	Body      []byte
}

// Peer describes one collector peer in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID netip.Addr
	Addr  netip.Addr
	ASN   bgp.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 PEER_INDEX_TABLE record.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// RIBEntry is one path for a prefix in a RIB record, attributed to the
// collector peer that advertised it.
type RIBEntry struct {
	PeerIndex  uint16
	Originated time.Time
	Attrs      *bgp.PathAttrs
}

// RIBRecord is a TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record.
type RIBRecord struct {
	Sequence uint32
	Prefix   bgp.Prefix
	Entries  []RIBEntry
}

// BGP4MPMessage is a BGP4MP_MESSAGE(_AS4) record carrying one BGP
// message heard from a collector peer. Timestamp is the MRT record
// header's collection time: it is not part of the message body on the
// wire, but the windowed passive pipeline needs it to bucket updates,
// so ReadUpdates carries it through.
type BGP4MPMessage struct {
	Timestamp time.Time
	PeerASN   bgp.ASN
	LocalASN  bgp.ASN
	Interface uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	Message   bgp.Message
	AS4       bool
}

func put16(dst []byte, v uint16) []byte { return append(dst, byte(v>>8), byte(v)) }
func put32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func get16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func get32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// need guards slice accesses during decoding.
func need(b []byte, n int, what string) error {
	if len(b) < n {
		return fmt.Errorf("mrt: truncated %s: need %d bytes, have %d", what, n, len(b))
	}
	return nil
}

// MarshalPeerIndexTable encodes the table into an MRT record body.
func MarshalPeerIndexTable(t *PeerIndexTable) ([]byte, error) {
	return AppendPeerIndexTable(nil, t)
}

// AppendPeerIndexTable appends the encoded table to b and returns the
// extended slice, reusing b's capacity.
func AppendPeerIndexTable(b []byte, t *PeerIndexTable) ([]byte, error) {
	if len(t.Peers) > 0xFFFF {
		return nil, fmt.Errorf("mrt: %d peers exceed peer index table capacity", len(t.Peers))
	}
	cid := t.CollectorID
	if !cid.IsValid() {
		cid = netip.AddrFrom4([4]byte{})
	}
	b = append(b, cid.AsSlice()...)
	if len(t.ViewName) > 0xFFFF {
		return nil, fmt.Errorf("mrt: view name too long")
	}
	b = put16(b, uint16(len(t.ViewName)))
	b = append(b, t.ViewName...)
	b = put16(b, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		var ptype byte = 0x02 // AS4 always
		if p.Addr.Is6() {
			ptype |= 0x01
		}
		b = append(b, ptype)
		id := p.BGPID
		if !id.IsValid() {
			id = netip.AddrFrom4([4]byte{})
		}
		b = append(b, id.AsSlice()...)
		b = append(b, p.Addr.AsSlice()...)
		b = put32(b, uint32(p.ASN))
	}
	return b, nil
}

// UnmarshalPeerIndexTable decodes a PEER_INDEX_TABLE body.
func UnmarshalPeerIndexTable(b []byte) (*PeerIndexTable, error) {
	if err := need(b, 6, "peer index header"); err != nil {
		return nil, err
	}
	t := &PeerIndexTable{CollectorID: netip.AddrFrom4([4]byte(b[:4]))}
	nameLen := int(get16(b[4:]))
	b = b[6:]
	if err := need(b, nameLen+2, "view name"); err != nil {
		return nil, err
	}
	t.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	count := int(get16(b))
	b = b[2:]
	t.Peers = make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if err := need(b, 5, "peer entry"); err != nil {
			return nil, err
		}
		ptype := b[0]
		b = b[1:]
		var p Peer
		p.BGPID = netip.AddrFrom4([4]byte(b[:4]))
		b = b[4:]
		addrLen := 4
		if ptype&0x01 != 0 {
			addrLen = 16
		}
		asnLen := 2
		if ptype&0x02 != 0 {
			asnLen = 4
		}
		if err := need(b, addrLen+asnLen, "peer address+ASN"); err != nil {
			return nil, err
		}
		addr, _ := netip.AddrFromSlice(b[:addrLen])
		p.Addr = addr
		b = b[addrLen:]
		if asnLen == 4 {
			p.ASN = bgp.ASN(get32(b))
		} else {
			p.ASN = bgp.ASN(get16(b))
		}
		b = b[asnLen:]
		t.Peers = append(t.Peers, p)
	}
	return t, nil
}

// MarshalRIBRecord encodes a RIB_IPVx_UNICAST body.
func MarshalRIBRecord(r *RIBRecord) ([]byte, error) {
	return AppendRIBRecord(nil, r)
}

// AppendRIBRecord appends the encoded record to b and returns the
// extended slice. Attributes are serialized in place with their length
// backpatched, so encoding one record performs no allocation beyond
// growing b.
func AppendRIBRecord(b []byte, r *RIBRecord) ([]byte, error) {
	if len(r.Entries) > 0xFFFF {
		return nil, fmt.Errorf("mrt: %d RIB entries exceed capacity", len(r.Entries))
	}
	b = put32(b, r.Sequence)
	b = r.Prefix.AppendWire(b)
	b = put16(b, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		b = put16(b, e.PeerIndex)
		b = put32(b, uint32(e.Originated.Unix()))
		lenAt := len(b)
		b = append(b, 0, 0) // attribute length, backpatched below
		var err error
		b, err = e.Attrs.AppendWire(b, true)
		if err != nil {
			return nil, err
		}
		alen := len(b) - lenAt - 2
		if alen > 0xFFFF {
			return nil, fmt.Errorf("mrt: attributes too long (%d)", alen)
		}
		b[lenAt], b[lenAt+1] = byte(alen>>8), byte(alen)
	}
	return b, nil
}

// DumpArena slab-allocates everything a decoded RIB dump retains:
// records, entry arrays, and (via the embedded bgp.AttrArena) the
// decoded path attributes. One archive decodes into one arena, cutting
// the retained allocations per RIB entry from ~4 to amortized zero.
// Chunks are never grown in place, so previously returned records stay
// valid. Not safe for concurrent use.
type DumpArena struct {
	attrs   bgp.AttrArena
	recs    []RIBRecord
	entries []RIBEntry
}

const (
	arenaRecChunk   = 1024
	arenaEntryChunk = 4096
)

// newRecord carves one zeroed RIBRecord.
func (a *DumpArena) newRecord() *RIBRecord {
	if len(a.recs) == cap(a.recs) {
		a.recs = make([]RIBRecord, 0, arenaRecChunk)
	}
	a.recs = a.recs[:len(a.recs)+1]
	return &a.recs[len(a.recs)-1]
}

// entrySlice carves a zero-length, capacity-n entry slice.
func (a *DumpArena) entrySlice(n int) []RIBEntry {
	if len(a.entries)+n > cap(a.entries) {
		c := arenaEntryChunk
		if n > c {
			c = n
		}
		a.entries = make([]RIBEntry, 0, c)
	}
	s := a.entries[len(a.entries) : len(a.entries) : len(a.entries)+n]
	a.entries = a.entries[:len(a.entries)+n]
	return s
}

// UnmarshalRIBRecord decodes a RIB_IPVx_UNICAST body. v6 selects the
// address family of the embedded prefix.
func UnmarshalRIBRecord(b []byte, v6 bool) (*RIBRecord, error) {
	return UnmarshalRIBRecordArena(b, v6, nil)
}

// UnmarshalRIBRecordArena decodes a RIB_IPVx_UNICAST body,
// slab-allocating the record, its entries and their attributes from
// arena when it is non-nil.
func UnmarshalRIBRecordArena(b []byte, v6 bool, arena *DumpArena) (*RIBRecord, error) {
	if err := need(b, 5, "RIB header"); err != nil {
		return nil, err
	}
	var r *RIBRecord
	if arena != nil {
		r = arena.newRecord()
	} else {
		r = &RIBRecord{}
	}
	r.Sequence = get32(b)
	b = b[4:]
	pfxs, err := bgp.DecodePrefixes(b[:1+int(b[0]+7)/8], v6)
	if err != nil {
		return nil, err
	}
	r.Prefix = pfxs[0]
	b = b[1+(int(pfxs[0].Bits())+7)/8:]
	if err := need(b, 2, "RIB entry count"); err != nil {
		return nil, err
	}
	count := int(get16(b))
	b = b[2:]
	var attrArena *bgp.AttrArena
	if arena != nil {
		r.Entries = arena.entrySlice(count)
		attrArena = &arena.attrs
	} else {
		r.Entries = make([]RIBEntry, 0, count)
	}
	for i := 0; i < count; i++ {
		if err := need(b, 8, "RIB entry header"); err != nil {
			return nil, err
		}
		e := RIBEntry{
			PeerIndex:  get16(b),
			Originated: time.Unix(int64(get32(b[2:])), 0).UTC(),
		}
		alen := int(get16(b[6:]))
		b = b[8:]
		if err := need(b, alen, "RIB entry attributes"); err != nil {
			return nil, err
		}
		e.Attrs, err = bgp.DecodeAttrsArena(b[:alen], true, attrArena)
		if err != nil {
			return nil, err
		}
		b = b[alen:]
		r.Entries = append(r.Entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mrt: %d trailing bytes after RIB record", len(b))
	}
	return r, nil
}

// MarshalBGP4MP encodes a BGP4MP_MESSAGE(_AS4) body.
func MarshalBGP4MP(m *BGP4MPMessage) ([]byte, error) {
	return AppendBGP4MP(nil, m)
}

// AppendBGP4MP appends the encoded body to b and returns the extended
// slice, reusing b's capacity.
func AppendBGP4MP(b []byte, m *BGP4MPMessage) ([]byte, error) {
	if m.AS4 {
		b = put32(b, uint32(m.PeerASN))
		b = put32(b, uint32(m.LocalASN))
	} else {
		b = put16(b, uint16(m.PeerASN))
		b = put16(b, uint16(m.LocalASN))
	}
	b = put16(b, m.Interface)
	afi := uint16(1)
	peer, local := m.PeerAddr, m.LocalAddr
	if !peer.IsValid() {
		peer = netip.AddrFrom4([4]byte{})
	}
	if !local.IsValid() {
		local = netip.AddrFrom4([4]byte{})
	}
	if peer.Is6() {
		afi = 2
	}
	b = put16(b, afi)
	b = append(b, peer.AsSlice()...)
	b = append(b, local.AsSlice()...)
	msg, err := bgp.Encode(m.Message)
	if err != nil {
		return nil, err
	}
	return append(b, msg...), nil
}

// UnmarshalBGP4MP decodes a BGP4MP_MESSAGE(_AS4) body.
func UnmarshalBGP4MP(b []byte, as4 bool) (*BGP4MPMessage, error) {
	m := &BGP4MPMessage{AS4: as4}
	asnLen := 2
	if as4 {
		asnLen = 4
	}
	if err := need(b, 2*asnLen+4, "BGP4MP header"); err != nil {
		return nil, err
	}
	if as4 {
		m.PeerASN = bgp.ASN(get32(b))
		m.LocalASN = bgp.ASN(get32(b[4:]))
	} else {
		m.PeerASN = bgp.ASN(get16(b))
		m.LocalASN = bgp.ASN(get16(b[2:]))
	}
	b = b[2*asnLen:]
	m.Interface = get16(b)
	afi := get16(b[2:])
	b = b[4:]
	addrLen := 4
	if afi == 2 {
		addrLen = 16
	}
	if err := need(b, 2*addrLen, "BGP4MP addresses"); err != nil {
		return nil, err
	}
	peer, _ := netip.AddrFromSlice(b[:addrLen])
	local, _ := netip.AddrFromSlice(b[addrLen : 2*addrLen])
	m.PeerAddr, m.LocalAddr = peer, local
	b = b[2*addrLen:]
	msg, err := bgp.Decode(b, as4)
	if err != nil {
		return nil, err
	}
	m.Message = msg
	return m, nil
}
