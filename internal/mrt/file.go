package mrt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrShortHeader is returned by Reader.Next when the stream ends inside
// a record header (a cleanly-ended archive returns io.EOF instead).
var ErrShortHeader = errors.New("mrt: truncated record header")

// bodyPool recycles record-body encode buffers across writers: one dump
// writes thousands of records, and without reuse every record body is a
// fresh allocation.
var bodyPool = sync.Pool{New: func() any { return new([]byte) }}

// Writer writes MRT records to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	buf *[]byte // scratch body buffer, from bodyPool; released on Flush
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// body returns the writer's scratch buffer, length zero, fetching one
// from the pool on first use after construction or Flush.
func (w *Writer) body() []byte {
	if w.buf == nil {
		w.buf = bodyPool.Get().(*[]byte)
	}
	return (*w.buf)[:0]
}

// keepBody stores the (possibly grown) scratch back on the writer.
func (w *Writer) keepBody(b []byte) { *w.buf = b }

// WriteRecord writes one record with the common MRT header.
func (w *Writer) WriteRecord(ts time.Time, typ, subtype uint16, body []byte) error {
	if w.err != nil {
		return w.err
	}
	var hdr [12]byte
	sec := uint32(ts.Unix())
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(sec>>24), byte(sec>>16), byte(sec>>8), byte(sec)
	hdr[4], hdr[5] = byte(typ>>8), byte(typ)
	hdr[6], hdr[7] = byte(subtype>>8), byte(subtype)
	l := uint32(len(body))
	hdr[8], hdr[9], hdr[10], hdr[11] = byte(l>>24), byte(l>>16), byte(l>>8), byte(l)
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WritePeerIndexTable marshals and writes t.
func (w *Writer) WritePeerIndexTable(ts time.Time, t *PeerIndexTable) error {
	body, err := AppendPeerIndexTable(w.body(), t)
	if err != nil {
		return err
	}
	w.keepBody(body)
	return w.WriteRecord(ts, TypeTableDumpV2, SubtypePeerIndexTable, body)
}

// WriteRIB marshals and writes r, choosing the subtype from the prefix
// address family.
func (w *Writer) WriteRIB(ts time.Time, r *RIBRecord) error {
	body, err := AppendRIBRecord(w.body(), r)
	if err != nil {
		return err
	}
	w.keepBody(body)
	sub := uint16(SubtypeRIBIPv4Unicast)
	if r.Prefix.Addr().Is6() {
		sub = SubtypeRIBIPv6Unicast
	}
	return w.WriteRecord(ts, TypeTableDumpV2, sub, body)
}

// WriteBGP4MP marshals and writes m.
func (w *Writer) WriteBGP4MP(ts time.Time, m *BGP4MPMessage) error {
	body, err := AppendBGP4MP(w.body(), m)
	if err != nil {
		return err
	}
	w.keepBody(body)
	sub := uint16(SubtypeBGP4MPMessage)
	if m.AS4 {
		sub = SubtypeBGP4MPMessageAS4
	}
	return w.WriteRecord(ts, TypeBGP4MP, sub, body)
}

// Flush flushes buffered records to the underlying writer and returns
// the scratch encode buffer to the pool.
func (w *Writer) Flush() error {
	if w.buf != nil {
		bodyPool.Put(w.buf)
		w.buf = nil
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads MRT records from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next raw record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (*Record, error) {
	rec := &Record{}
	if err := r.readInto(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// readInto reads the next record into rec, reusing rec.Body's capacity.
// The bulk readers (ReadDump, ReadUpdates) decode each record before
// fetching the next, so one record's worth of body buffer serves a
// whole archive.
func (r *Reader) readInto(rec *Record) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return ErrShortHeader
	}
	rec.Timestamp = time.Unix(int64(get32(hdr[:])), 0).UTC()
	rec.Type = get16(hdr[4:])
	rec.Subtype = get16(hdr[6:])
	length := int(get32(hdr[8:]))
	const maxRecord = 64 << 20
	if length > maxRecord {
		return fmt.Errorf("mrt: record length %d exceeds %d", length, maxRecord)
	}
	if cap(rec.Body) < length {
		rec.Body = make([]byte, length)
	}
	rec.Body = rec.Body[:length]
	if _, err := io.ReadFull(r.r, rec.Body); err != nil {
		return fmt.Errorf("mrt: truncated record body: %w", err)
	}
	return nil
}

// Dump is the decoded contents of a TABLE_DUMP_V2 archive.
type Dump struct {
	Index *PeerIndexTable
	RIBs  []*RIBRecord
}

// ReadDump decodes a full TABLE_DUMP_V2 archive from r. BGP4MP records
// interleaved in the stream are ignored. Records, entries and decoded
// attributes are slab-allocated from one arena owned by the returned
// Dump, so the whole archive retains a handful of chunk allocations.
func ReadDump(r io.Reader) (*Dump, error) {
	rd := NewReader(r)
	d := &Dump{}
	var arena DumpArena
	var rec Record // body buffer reused across records
	for {
		err := rd.readInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != TypeTableDumpV2 {
			continue
		}
		switch rec.Subtype {
		case SubtypePeerIndexTable:
			idx, err := UnmarshalPeerIndexTable(rec.Body)
			if err != nil {
				return nil, err
			}
			d.Index = idx
		case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
			rib, err := UnmarshalRIBRecordArena(rec.Body, rec.Subtype == SubtypeRIBIPv6Unicast, &arena)
			if err != nil {
				return nil, err
			}
			d.RIBs = append(d.RIBs, rib)
		}
	}
	if d.Index == nil && len(d.RIBs) > 0 {
		return nil, errors.New("mrt: RIB records without a peer index table")
	}
	return d, nil
}

// ReadDumpFile opens path and decodes it with ReadDump.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadDump(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// ReadUpdates decodes all BGP4MP message records from r, skipping
// TABLE_DUMP_V2 records.
func ReadUpdates(r io.Reader) ([]*BGP4MPMessage, error) {
	rd := NewReader(r)
	var out []*BGP4MPMessage
	var rec Record // body buffer reused across records
	for {
		err := rd.readInto(&rec)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != TypeBGP4MP {
			continue
		}
		switch rec.Subtype {
		case SubtypeBGP4MPMessage, SubtypeBGP4MPMessageAS4:
			m, err := UnmarshalBGP4MP(rec.Body, rec.Subtype == SubtypeBGP4MPMessageAS4)
			if err != nil {
				return nil, err
			}
			m.Timestamp = rec.Timestamp
			out = append(out, m)
		}
	}
}

// ReadUpdatesFile opens path and decodes it with ReadUpdates.
func ReadUpdatesFile(path string) ([]*BGP4MPMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ms, err := ReadUpdates(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ms, nil
}
