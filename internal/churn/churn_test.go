package churn

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"
	"time"

	"mlpeering/internal/bgp"
	"mlpeering/internal/collector"
	"mlpeering/internal/mrt"
	"mlpeering/internal/propagate"
	"mlpeering/internal/topology"
)

var testStart = time.Date(2013, 5, 1, 2, 0, 0, 0, time.UTC)

func buildWorld(t testing.TB, cfg topology.Config) (*topology.Topology, *propagate.Engine) {
	t.Helper()
	topo, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo, propagate.NewEngine(topo, 0)
}

// runOnce builds a fresh world and runs a full churn schedule over it,
// returning the schedule description and the raw MRT update bytes.
func runOnce(t testing.TB, seed int64) (string, []byte, *Trace) {
	t.Helper()
	topo, eng := buildWorld(t, topology.TestConfig())
	cfg := DefaultConfig(seed)
	cfg.Epochs = 4
	r := NewRunner(eng, cfg)
	col := collector.New("rrc-churn", eng, nil, 2)

	// Capture the schedule by regenerating it on a twin runner over a
	// twin world: NextDelta consumes shared state, so the description
	// comes from a separate pass that must (and does) agree.
	topo2, eng2 := buildWorld(t, topology.TestConfig())
	r2 := NewRunner(eng2, cfg)
	var sched strings.Builder
	for k := 0; k < cfg.Epochs; k++ {
		d := r2.NextDelta()
		sched.WriteString(DescribeDelta(d))
		sched.WriteByte('\n')
		if _, err := eng2.Apply(d); err != nil {
			t.Fatalf("twin epoch %d: %v", k, err)
		}
	}
	_ = topo2

	var buf bytes.Buffer
	tr, err := r.Run(&buf, col, testStart)
	if err != nil {
		t.Fatal(err)
	}
	_ = topo
	return sched.String(), buf.Bytes(), tr
}

// TestScheduleAndStreamDeterministic pins the golden property: the same
// seed over the same world yields a byte-identical epoch schedule and a
// byte-identical MRT update stream.
func TestScheduleAndStreamDeterministic(t *testing.T) {
	sched1, bytes1, tr1 := runOnce(t, 99)
	sched2, bytes2, tr2 := runOnce(t, 99)
	if sched1 != sched2 {
		t.Fatalf("schedules diverge:\n%s\n---\n%s", sched1, sched2)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatalf("MRT streams diverge: %x vs %x", sha256.Sum256(bytes1), sha256.Sum256(bytes2))
	}
	if len(tr1.Epochs) != len(tr2.Epochs) {
		t.Fatalf("trace lengths diverge")
	}
	for k := range tr1.Epochs {
		if tr1.Epochs[k] != tr2.Epochs[k] {
			t.Fatalf("epoch %d stats diverge: %+v vs %+v", k, tr1.Epochs[k], tr2.Epochs[k])
		}
	}
	// A different seed must actually churn differently.
	sched3, _, _ := runOnce(t, 100)
	if sched1 == sched3 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestStreamCarriesWithdrawals verifies the per-epoch diff emits true
// announce+withdraw sequences with sane shape: monotone timestamps per
// epoch window, withdrawn-only updates present, and counts matching the
// trace stats.
func TestStreamCarriesWithdrawals(t *testing.T) {
	_, raw, tr := runOnce(t, 5)
	ups, err := mrt.ReadUpdates(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) == 0 {
		t.Fatal("no updates")
	}
	var ann, wd, wdOnly int
	last := time.Time{}
	for _, u := range ups {
		if u.Timestamp.Before(last) {
			t.Fatalf("timestamps regress: %v after %v", u.Timestamp, last)
		}
		last = u.Timestamp
		upd, ok := u.Message.(*bgp.Update)
		if !ok {
			t.Fatalf("unexpected message %T", u.Message)
		}
		ann += len(upd.NLRI)
		wd += len(upd.Withdrawn)
		if len(upd.NLRI) == 0 && len(upd.Withdrawn) > 0 {
			if upd.Attrs != nil {
				t.Fatal("withdrawn-only update carries attributes")
			}
			wdOnly++
		}
	}
	if wd == 0 || wdOnly == 0 {
		t.Fatalf("stream has no withdrawals (wd=%d, wdOnly=%d)", wd, wdOnly)
	}
	var wantAnn, wantWd int
	for _, e := range tr.Epochs {
		wantAnn += e.Announced
		wantWd += e.Withdrawn
	}
	if ann != wantAnn || wd != wantWd {
		t.Fatalf("stream counts (%d ann, %d wd) disagree with trace (%d, %d)", ann, wd, wantAnn, wantWd)
	}
	// Every epoch's messages must land inside its window.
	for _, u := range ups {
		off := u.Timestamp.Sub(testStart)
		k := int(off / tr.Interval)
		if k < 0 || k >= len(tr.Epochs) {
			t.Fatalf("message at %v outside all epoch windows", u.Timestamp)
		}
	}
}

// TestPeerFlapsSpanEpochs guards against self-cancelling flaps: a
// session torn down in an epoch must never be restored inside the same
// delta, and teardowns must actually change the world — while some
// later epoch restores an earlier teardown.
func TestPeerFlapsSpanEpochs(t *testing.T) {
	topo, eng := buildWorld(t, topology.TestConfig())
	cfg := DefaultConfig(3)
	cfg.Epochs = 6
	r := NewRunner(eng, cfg)

	initial := make(map[topology.LinkKey]bool)
	for _, l := range topo.BilateralLinks() {
		initial[topology.MakeLinkKey(l.A, l.B)] = true
	}
	downed := make(map[topology.LinkKey]int) // link -> epoch torn down
	restoredAcross := false
	for k := 0; k < cfg.Epochs; k++ {
		d := r.NextDelta()
		seen := make(map[topology.LinkKey]int)
		for _, op := range d.Peers {
			key := topology.MakeLinkKey(op.A, op.B)
			seen[key]++
			if seen[key] > 1 {
				t.Fatalf("epoch %d: link %v scheduled twice (self-cancelling flap)", k, key)
			}
			if op.Add {
				if when, ok := downed[key]; ok {
					if when == k {
						t.Fatalf("epoch %d: link %v restored in its teardown epoch", k, key)
					}
					restoredAcross = true
					delete(downed, key)
				}
			} else {
				downed[key] = k
			}
		}
		if _, err := eng.Apply(d); err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		// Torn-down links must really be gone from the world.
		for key := range downed {
			if topo.ASes[key.A].HasPeer(key.B) {
				t.Fatalf("epoch %d: link %v still up after teardown", k, key)
			}
		}
	}
	if len(downed) == 0 {
		t.Fatal("no link stayed down across an epoch boundary")
	}
	if !restoredAcross {
		t.Fatal("no teardown was ever restored in a later epoch")
	}
}

// TestChurnDirtySetsTightened drives the real churn schedule and checks
// the bitset-tightened dirty rule epoch by epoch: every dirty
// destination stays inside the old conservative bound (cones of the
// delta's endpoints plus, for RS ops, every co-member's cone), and at
// least one epoch with RS churn comes in strictly below it.
func TestChurnDirtySetsTightened(t *testing.T) {
	topo, eng := buildWorld(t, topology.TestConfig())
	cfg := DefaultConfig(29)
	cfg.Epochs = 6
	r := NewRunner(eng, cfg)

	var coneInto func(a bgp.ASN, into map[bgp.ASN]bool)
	coneInto = func(a bgp.ASN, into map[bgp.ASN]bool) {
		if into[a] {
			return
		}
		into[a] = true
		if as := topo.ASes[a]; as != nil {
			for _, c := range as.Customers {
				coneInto(c, into)
			}
			for _, s := range as.Siblings {
				coneInto(s, into)
			}
		}
	}

	shrank := false
	for k := 0; k < cfg.Epochs; k++ {
		d := r.NextDelta()
		// Conservative bound, computed against the pre-apply world (RS
		// membership as the old rule read it).
		bound := make(map[bgp.ASN]bool)
		rsChurn := false
		for _, op := range d.Peers {
			coneInto(op.A, bound)
			coneInto(op.B, bound)
		}
		for _, op := range d.Members {
			rsChurn = true
			coneInto(op.Member, bound)
			if info := topo.IXPByName(op.IXP); info != nil {
				for _, m := range info.SortedRSMembers() {
					coneInto(m, bound)
				}
			}
		}
		for _, op := range d.Filters {
			rsChurn = true
			coneInto(op.Member, bound)
			if info := topo.IXPByName(op.IXP); info != nil {
				for _, m := range info.SortedRSMembers() {
					coneInto(m, bound)
				}
			}
		}
		for _, op := range d.Prefixes {
			bound[op.From] = true
			bound[op.To] = true
		}

		dirty, err := eng.Apply(d)
		if err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		for _, dst := range dirty {
			if !bound[dst] {
				t.Fatalf("epoch %d: dirty destination %s outside the conservative bound", k, dst)
			}
		}
		if rsChurn && len(dirty) < len(bound) {
			shrank = true
		}
	}
	if !shrank {
		t.Fatal("no RS-churn epoch shrank the conservative bound; tightening is inert")
	}
}

// TestChurnEquivalenceTestScale drives the real churn schedule and pins
// the incrementally patched engine to a fresh rebuild after every epoch,
// over every destination.
func TestChurnEquivalenceTestScale(t *testing.T) {
	topo, eng := buildWorld(t, topology.TestConfig())
	cfg := DefaultConfig(17)
	cfg.Epochs = 3
	r := NewRunner(eng, cfg)

	// Warm every destination.
	for _, d := range topo.Order {
		eng.Tree(d)
	}
	var a, b []byte
	for k := 0; k < cfg.Epochs; k++ {
		d := r.NextDelta()
		if _, err := eng.Apply(d); err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("epoch %d: invalid world: %v", k, err)
		}
		fresh := propagate.NewEngine(topo, 0)
		for _, dst := range topo.Order {
			a = eng.Tree(dst).AppendState(a[:0])
			b = fresh.Tree(dst).AppendState(b[:0])
			if !bytes.Equal(a, b) {
				t.Fatalf("epoch %d: tree for %s diverges", k, dst)
			}
		}
	}
}

// TestChurnEquivalenceScale10 repeats the equivalence check on the
// scaled-world@Scale-10 topology (33 IXPs, ~16k ASes): the cache is
// warmed with a deterministic destination sample, three churn epochs are
// applied incrementally, and every sampled tree — retained or
// recomputed — must match a freshly built engine.
func TestChurnEquivalenceScale10(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled world equivalence skipped in -short mode")
	}
	cfg := topology.DefaultConfig()
	cfg.Scenario = "scaled-world"
	cfg.Scale = 10
	topo, eng := buildWorld(t, cfg)

	// Deterministic sample: every 16th destination.
	var sample []bgp.ASN
	for i := 0; i < len(topo.Order); i += 16 {
		sample = append(sample, topo.Order[i])
	}
	for _, d := range sample {
		eng.Tree(d)
	}

	ccfg := DefaultConfig(23)
	ccfg.Epochs = 3
	r := NewRunner(eng, ccfg)
	var a, b []byte
	for k := 0; k < ccfg.Epochs; k++ {
		d := r.NextDelta()
		if _, err := eng.Apply(d); err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
		fresh := propagate.NewEngine(topo, 0)
		for _, dst := range sample {
			a = eng.Tree(dst).AppendState(a[:0])
			b = fresh.Tree(dst).AppendState(b[:0])
			if !bytes.Equal(a, b) {
				t.Fatalf("epoch %d: tree for %s diverges", k, dst)
			}
		}
	}
}
